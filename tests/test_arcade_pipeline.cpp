// Integration tests: the reactive-modules translation agrees with the
// native compiler, end to end (the paper's Fig. 1 pipeline).
#include <gtest/gtest.h>

#include "arcade/compiler.hpp"
#include "arcade/measures.hpp"
#include "arcade/modules_compiler.hpp"
#include "ctmc/steady_state.hpp"
#include "logic/csl.hpp"
#include "modules/explorer.hpp"
#include "prism/prism_parser.hpp"
#include "prism/prism_writer.hpp"
#include "support/errors.hpp"
#include "watertree/watertree.hpp"

namespace core = arcade::core;
namespace wt = arcade::watertree;
namespace modules = arcade::modules;

namespace {

double modules_availability(const modules::ExploredModel& explored) {
    return arcade::ctmc::steady_state_probability(explored.chain,
                                                  explored.chain.label("operational"));
}

}  // namespace

// Strategy-parameterised pipeline equivalence.
class PipelineEquivalence : public ::testing::TestWithParam<const char*> {
protected:
    [[nodiscard]] wt::Strategy strategy() const {
        for (const auto& s : wt::paper_strategies()) {
            if (s.name == GetParam()) return s;
        }
        throw std::runtime_error("unknown strategy");
    }
};

TEST_P(PipelineEquivalence, ModulesTranslationMatchesNativeCompiler) {
    const auto model = wt::line2(strategy());
    core::CompileOptions full;  // structural full-chain comparison
    full.symmetry = core::SymmetryPolicy::Off;
    modules::ExploreOptions full_explore;
    full_explore.symmetry = arcade::engine::SymmetryPolicy::Off;
    const auto native = core::compile(model, full);
    const auto explored =
        modules::explore(core::to_reactive_modules(model), full_explore);

    EXPECT_EQ(explored.chain.state_count(), native.state_count());
    EXPECT_EQ(explored.chain.transition_count(), native.transition_count());
    EXPECT_NEAR(modules_availability(explored), core::availability(native), 1e-9);
}

TEST_P(PipelineEquivalence, CostRewardsAgree) {
    const auto model = wt::line2(strategy());
    const auto native = core::compile(model);
    const auto explored = modules::explore(core::to_reactive_modules(model));
    const auto& reward = explored.reward_structures.at("cost");
    // compare the steady-state expected cost (state orders differ, so compare
    // the measure rather than per-state vectors)
    const auto pi_native = arcade::ctmc::steady_state(native.chain());
    double native_cost = 0.0;
    for (std::size_t s = 0; s < pi_native.size(); ++s) {
        native_cost += pi_native[s] * native.cost_reward().state_rates()[s];
    }
    const auto pi_mod = arcade::ctmc::steady_state(explored.chain);
    double mod_cost = 0.0;
    for (std::size_t s = 0; s < pi_mod.size(); ++s) {
        mod_cost += pi_mod[s] * reward.state_rates()[s];
    }
    EXPECT_NEAR(native_cost, mod_cost, 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Strategies, PipelineEquivalence,
                         ::testing::Values("DED", "FRF-1", "FRF-2", "FFF-1", "FFF-2"));

TEST(Pipeline, PrismExportReimportsToTheSameChain) {
    const auto model = wt::line2(wt::paper_strategies()[1]);  // FRF-1
    const auto system = core::to_reactive_modules(model);
    const auto reparsed = arcade::prism::parse_prism(arcade::prism::write_prism(system));
    const auto a = modules::explore(system);
    const auto b = modules::explore(reparsed);
    EXPECT_EQ(a.chain.state_count(), b.chain.state_count());
    EXPECT_EQ(a.chain.transition_count(), b.chain.transition_count());
    EXPECT_NEAR(modules_availability(a), modules_availability(b), 1e-10);
}

TEST(Pipeline, CslQueriesOnTheTranslatedCaseStudy) {
    const auto model = wt::line2(wt::paper_strategies()[0]);  // DED
    const auto explored = modules::explore(core::to_reactive_modules(model));
    arcade::logic::CheckerOptions options;
    options.reward_structures = explored.reward_structures;
    // Table 2, DED line 2
    const auto avail = arcade::logic::check(explored.chain, "S=? [ \"operational\" ]",
                                            options);
    EXPECT_NEAR(*avail.value, 0.8186317, 5e-7);
    // cost rate in the all-up state is the 9 idle crews
    const auto cost = arcade::logic::check(explored.chain, "R{\"cost\"}=? [ I=0 ]", options);
    EXPECT_NEAR(*cost.value, 9.0, 1e-9);
}

TEST(Pipeline, ModulesTranslationRejectsUnsupportedFeatures) {
    auto strat = wt::paper_strategies()[1];
    strat.preemptive = true;
    EXPECT_THROW(core::to_reactive_modules(wt::line2(strat)), arcade::ModelError);
    auto many_crews = wt::paper_strategies()[1];
    many_crews.crews = 3;
    EXPECT_THROW(core::to_reactive_modules(wt::line2(many_crews)), arcade::ModelError);
}
