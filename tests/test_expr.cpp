// Unit tests: expression AST, parser and evaluator.
#include <gtest/gtest.h>

#include <map>

#include "expr/expr.hpp"
#include "support/errors.hpp"

namespace expr = arcade::expr;

namespace {

class MapEnv final : public expr::Environment {
public:
    std::map<std::string, expr::Value> values;
    [[nodiscard]] expr::Value lookup(const std::string& name) const override {
        const auto it = values.find(name);
        if (it == values.end()) throw arcade::ModelError("unknown " + name);
        return it->second;
    }
};

expr::Value eval(const std::string& text, const MapEnv& env = {}) {
    return expr::parse_expression(text).evaluate(env);
}

}  // namespace

TEST(ExprParser, ArithmeticPrecedence) {
    EXPECT_EQ(eval("1 + 2 * 3").as_int(), 7);
    EXPECT_EQ(eval("(1 + 2) * 3").as_int(), 9);
    EXPECT_EQ(eval("10 - 4 - 3").as_int(), 3);  // left assoc
    EXPECT_NEAR(eval("7 / 2").as_double(), 3.5, 1e-15);  // PRISM: / is real division
    EXPECT_EQ(eval("-3 + 5").as_int(), 2);
    EXPECT_EQ(eval("2 * -3").as_int(), -6);
}

TEST(ExprParser, IntegersStayIntegersDoublesInfect) {
    EXPECT_TRUE(eval("2 + 3").is_int());
    EXPECT_TRUE(eval("2 + 3.0").is_double());
    EXPECT_TRUE(eval("2.5").is_double());
    EXPECT_TRUE(eval("1e3").is_double());
    EXPECT_NEAR(eval("1e3").as_double(), 1000.0, 1e-12);
}

TEST(ExprParser, BooleanOperatorsAndPrecedence) {
    EXPECT_TRUE(eval("true | false & false").as_bool());   // & binds tighter
    EXPECT_FALSE(eval("(true | false) & false").as_bool());
    EXPECT_TRUE(eval("!false").as_bool());
    EXPECT_TRUE(eval("false => true").as_bool());
    EXPECT_TRUE(eval("true <=> true").as_bool());
    EXPECT_FALSE(eval("true <=> false").as_bool());
}

TEST(ExprParser, Comparisons) {
    EXPECT_TRUE(eval("2 < 3").as_bool());
    EXPECT_TRUE(eval("3 <= 3").as_bool());
    EXPECT_TRUE(eval("3 = 3").as_bool());
    EXPECT_TRUE(eval("3 != 4").as_bool());
    EXPECT_FALSE(eval("3 > 4").as_bool());
    EXPECT_TRUE(eval("1 + 1 = 2").as_bool());  // comparison binds looser than +
}

TEST(ExprParser, TernaryAndCalls) {
    EXPECT_EQ(eval("true ? 1 : 2").as_int(), 1);
    EXPECT_EQ(eval("1 < 0 ? 1 : 2").as_int(), 2);
    EXPECT_EQ(eval("min(4, 2, 3)").as_int(), 2);
    EXPECT_EQ(eval("max(4, 2, 3)").as_int(), 4);
    EXPECT_EQ(eval("floor(2.7)").as_int(), 2);
    EXPECT_EQ(eval("ceil(2.2)").as_int(), 3);
    EXPECT_NEAR(eval("pow(2, 10)").as_double(), 1024.0, 1e-12);
    // nested ternary (right associative)
    EXPECT_EQ(eval("false ? 1 : true ? 2 : 3").as_int(), 2);
}

TEST(ExprParser, VariablesThroughEnvironment) {
    MapEnv env;
    env.values.emplace("x", expr::Value(3LL));
    env.values.emplace("flag", expr::Value(true));
    EXPECT_EQ(eval("x * x", env).as_int(), 9);
    EXPECT_TRUE(eval("flag & x = 3", env).as_bool());
}

TEST(ExprParser, ShortCircuitProtectsGuards) {
    // RHS would throw (unknown identifier) if evaluated.
    MapEnv env;
    EXPECT_FALSE(eval("false & missing_var", env).as_bool());
    EXPECT_TRUE(eval("true | missing_var", env).as_bool());
}

TEST(ExprParser, Errors) {
    EXPECT_THROW(expr::parse_expression("1 +"), arcade::ParseError);
    EXPECT_THROW(expr::parse_expression("(1"), arcade::ParseError);
    EXPECT_THROW(expr::parse_expression("foo(1)"), arcade::ParseError);  // unknown fn
    EXPECT_THROW(expr::parse_expression("min(1)"), arcade::ParseError);  // arity
    EXPECT_THROW(eval("1 / 0"), arcade::ModelError);
    EXPECT_THROW(eval("1 & true"), arcade::ModelError);  // type error
}

TEST(ExprParser, RoundTripsThroughToString) {
    for (const char* text :
         {"(1 + (2 * x))", "min(a, b)", "(x >= 3 ? 0 : (y + 1))", "!(p & q)"}) {
        const auto e = expr::parse_expression(text);
        const auto e2 = expr::parse_expression(e.to_string());
        MapEnv env;
        env.values.emplace("x", expr::Value(5LL));
        env.values.emplace("y", expr::Value(2LL));
        env.values.emplace("a", expr::Value(7LL));
        env.values.emplace("b", expr::Value(4LL));
        env.values.emplace("p", expr::Value(true));
        env.values.emplace("q", expr::Value(false));
        EXPECT_TRUE(e.evaluate(env) == e2.evaluate(env)) << text;
    }
}

// Construction-time constant folding: literal subtrees collapse while
// building the AST, visible through to_string (which still round-trips).
TEST(ExprParser, LiteralSubtreesFoldAtConstruction) {
    EXPECT_EQ(expr::parse_expression("2 * 0.5").to_string(), "1");
    EXPECT_EQ(expr::parse_expression("1 + 2 * 3").to_string(), "7");
    EXPECT_EQ(expr::parse_expression("-(3)").to_string(), "-3");
    EXPECT_EQ(expr::parse_expression("true & g").to_string(), "g");
    EXPECT_EQ(expr::parse_expression("false & g").to_string(), "false");
    EXPECT_EQ(expr::parse_expression("true | g").to_string(), "true");
    EXPECT_EQ(expr::parse_expression("false | g").to_string(), "g");
    EXPECT_EQ(expr::parse_expression("true ? a : b").to_string(), "a");
    EXPECT_EQ(expr::parse_expression("false ? a : b").to_string(), "b");

    // NOT folded: a literal rhs must keep evaluating (and erroring on) the
    // lhs, and ill-typed literal folds keep their node so errors stay at
    // evaluation time.
    EXPECT_EQ(expr::parse_expression("g & false").to_string(), "(g & false)");
    EXPECT_EQ(expr::parse_expression("1 / 0").to_string(), "(1 / 0)");
    EXPECT_EQ(expr::parse_expression("!(3)").to_string(), "!(3)");
    EXPECT_THROW(eval("1 / 0"), arcade::ModelError);
}

TEST(ExprParser, FreeVariables) {
    const auto e = expr::parse_expression("x + y * x");
    const auto vars = e.free_variables();
    EXPECT_EQ(vars.size(), 3u);  // with multiplicity
}
