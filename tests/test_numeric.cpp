// Unit tests: Fox–Glynn Poisson weights and the iterative linear solvers.
#include <gtest/gtest.h>

#include <cmath>

#include "linalg/csr_matrix.hpp"
#include "numeric/fox_glynn.hpp"
#include "numeric/linear_solvers.hpp"

namespace num = arcade::numeric;
namespace la = arcade::linalg;

TEST(FoxGlynn, DegenerateAtZeroRate) {
    const auto w = num::fox_glynn(0.0, 1e-12);
    EXPECT_EQ(w.left, 0u);
    EXPECT_EQ(w.right, 0u);
    EXPECT_DOUBLE_EQ(w.weight(0), 1.0);
}

// Property sweep: weights match the exact pmf and sum to ~1 across many rates.
class FoxGlynnSweep : public ::testing::TestWithParam<double> {};

TEST_P(FoxGlynnSweep, WeightsMatchExactPmf) {
    const double q = GetParam();
    const auto w = num::fox_glynn(q, 1e-12);
    double total = 0.0;
    for (std::size_t k = w.left; k <= w.right; ++k) {
        const double exact = num::poisson_pmf(q, k);
        EXPECT_NEAR(w.weight(k), exact, 1e-12 + 1e-9 * exact) << "q=" << q << " k=" << k;
        total += w.weight(k);
    }
    EXPECT_NEAR(total, 1.0, 1e-12);
    // window covers the requested mass
    EXPECT_GE(w.total_before_norm, 1.0 - 1e-10);
}

TEST_P(FoxGlynnSweep, WindowContainsTheMode) {
    const double q = GetParam();
    const auto w = num::fox_glynn(q, 1e-12);
    const std::size_t mode = static_cast<std::size_t>(q);
    EXPECT_LE(w.left, mode);
    EXPECT_GE(w.right, mode);
}

INSTANTIATE_TEST_SUITE_P(Rates, FoxGlynnSweep,
                         ::testing::Values(0.01, 0.5, 1.0, 4.2, 25.0, 100.0, 1000.0, 10000.0));

TEST(FoxGlynn, LargeRateCapturesRequestedMass) {
    // Regression: the widening loop used to give up at a fixed width and
    // silently return under-covering weights once q·t grew large.
    for (double q : {1.0e5, 1.0e6, 2.0e7}) {
        const auto w = num::fox_glynn(q, 1e-12);
        EXPECT_GE(w.total_before_norm, 1.0 - 1e-12) << "q=" << q;
        double total = 0.0;
        for (double x : w.weights) total += x;
        EXPECT_NEAR(total, 1.0, 1e-9) << "q=" << q;
    }
}

TEST(PoissonPmf, MatchesDirectFormulaForSmallK) {
    EXPECT_NEAR(num::poisson_pmf(2.0, 0), std::exp(-2.0), 1e-15);
    EXPECT_NEAR(num::poisson_pmf(2.0, 1), 2.0 * std::exp(-2.0), 1e-15);
    EXPECT_NEAR(num::poisson_pmf(2.0, 2), 2.0 * std::exp(-2.0), 1e-15);
}

TEST(PoissonPmf, NoUnderflowAtLargeRate) {
    // Naive e^-q * q^k/k! underflows at q=2000; the log form must not.
    const double p = num::poisson_pmf(2000.0, 2000);
    EXPECT_GT(p, 0.0);
    EXPECT_NEAR(p, 1.0 / std::sqrt(2 * M_PI * 2000.0), 1e-5);  // Stirling
}

namespace {

/// Two-state availability chain: fail rate l, repair rate m.
la::CsrMatrix two_state(double l, double m) {
    la::CsrBuilder b(2, 2);
    b.add(0, 1, l);
    b.add(1, 0, m);
    return b.build();
}

}  // namespace

TEST(SteadyStateSolvers, TwoStateClosedForm) {
    const double l = 1.0 / 500.0;
    const double m = 1.0;
    const auto rates = two_state(l, m);
    std::vector<double> pi(2, 0.0);
    num::steady_state_gauss_seidel(rates, pi);
    EXPECT_NEAR(pi[0], m / (l + m), 1e-10);
    EXPECT_NEAR(pi[1], l / (l + m), 1e-10);

    std::vector<double> pi2(2, 0.0);
    num::steady_state_power(rates, pi2);
    EXPECT_NEAR(pi2[0], m / (l + m), 1e-8);
}

TEST(SteadyStateSolvers, BirthDeathChainClosedForm) {
    // M/M/1/4 queue: arrival 1, service 2 => pi_k ~ (1/2)^k.
    const int n = 5;
    la::CsrBuilder b(n, n);
    for (int i = 0; i + 1 < n; ++i) {
        b.add(i, i + 1, 1.0);
        b.add(i + 1, i, 2.0);
    }
    std::vector<double> pi(n, 0.0);
    num::steady_state_gauss_seidel(b.build(), pi);
    double norm = 0.0;
    for (int k = 0; k < n; ++k) norm += std::pow(0.5, k);
    for (int k = 0; k < n; ++k) {
        EXPECT_NEAR(pi[k], std::pow(0.5, k) / norm, 1e-10) << "k=" << k;
    }
}

TEST(FixpointSolver, SolvesGamblersRuin) {
    // x_i = 0.5 x_{i-1} + 0.5 x_{i+1}, absorbing at 0 (loss) and 3 (win);
    // b contributes the win transition: from state index i in {1,2}
    // (interior), P(win) = i/3.
    la::CsrBuilder a(2, 2);     // interior states 1,2 -> local 0,1
    a.add(0, 1, 0.5);           // 1 -> 2
    a.add(1, 0, 0.5);           // 2 -> 1
    std::vector<double> b{0.0, 0.5};  // 2 -> win
    std::vector<double> x(2, 0.0);
    num::fixpoint_gauss_seidel(a.build(), b, x);
    EXPECT_NEAR(x[0], 1.0 / 3.0, 1e-10);
    EXPECT_NEAR(x[1], 2.0 / 3.0, 1e-10);
}

TEST(FixpointSolver, HandlesDiagonalEntries) {
    // x = 0.5 x + 0.25  =>  x = 0.5
    la::CsrBuilder a(1, 1);
    a.add(0, 0, 0.5);
    std::vector<double> b{0.25};
    std::vector<double> x(1, 0.0);
    num::fixpoint_gauss_seidel(a.build(), b, x);
    EXPECT_NEAR(x[0], 0.5, 1e-12);
}

TEST(FoxGlynnCache, CachedWeightsAreTheUncachedWeightsExactly) {
    // The cache stores the result of the very computation fox_glynn() runs,
    // so a cached lookup must be indistinguishable — same window, same
    // weights bit for bit, same total — from calling fox_glynn() directly.
    num::fox_glynn_cache_clear();
    const double q = 37.25;
    const double epsilon = 1e-12;
    const auto direct = num::fox_glynn(q, epsilon);
    const auto cached = num::fox_glynn_cached(q, epsilon);
    ASSERT_NE(cached, nullptr);
    EXPECT_EQ(cached->left, direct.left);
    EXPECT_EQ(cached->right, direct.right);
    ASSERT_EQ(cached->weights.size(), direct.weights.size());
    for (std::size_t k = 0; k < direct.weights.size(); ++k) {
        EXPECT_EQ(cached->weights[k], direct.weights[k]) << k;
    }
    EXPECT_EQ(cached->total_before_norm, direct.total_before_norm);
}

TEST(FoxGlynnCache, HitsAndMissesAreCountedAndSharedAcrossCallers) {
    num::fox_glynn_cache_clear();
    const auto before = num::fox_glynn_cache_stats();
    EXPECT_EQ(before.hits, 0u);
    EXPECT_EQ(before.misses, 0u);

    const auto first = num::fox_glynn_cached(12.5, 1e-12);   // miss
    const auto second = num::fox_glynn_cached(12.5, 1e-12);  // hit, same object
    EXPECT_EQ(first.get(), second.get());
    const auto other = num::fox_glynn_cached(12.5, 1e-10);   // different epsilon: miss
    EXPECT_NE(first.get(), other.get());

    const auto after = num::fox_glynn_cache_stats();
    EXPECT_EQ(after.misses, 2u);
    EXPECT_EQ(after.hits, 1u);

    num::fox_glynn_cache_clear();
    const auto cleared = num::fox_glynn_cache_stats();
    EXPECT_EQ(cleared.hits, 0u);
    EXPECT_EQ(cleared.misses, 0u);
}
