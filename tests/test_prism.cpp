// Unit tests: PRISM-language parser and writer (round trip).
#include <gtest/gtest.h>

#include "ctmc/steady_state.hpp"
#include "modules/explorer.hpp"
#include "prism/prism_parser.hpp"
#include "prism/prism_writer.hpp"
#include "support/errors.hpp"

namespace prism = arcade::prism;
namespace modules = arcade::modules;

namespace {

const char* kTwoComponentModel = R"(
// availability model with shared repair
ctmc

const double lambda = 1/100;
const double mu = 0.5;
const int N = 2;

formula both_up = x=0 & y=0;

module comp_x
  x : [0..1] init 0;
  [] x=0 -> lambda : (x'=1);
  [] x=1 -> mu : (x'=0);
endmodule

module comp_y
  y : [0..1] init 0;
  [] y=0 -> 2*lambda : (y'=1);
  [] y=1 -> mu : (y'=0);
endmodule

label "up" = both_up;
label "deg" = x+y = 1;

rewards "downtime"
  !both_up : 1;
endrewards
)";

}  // namespace

TEST(PrismParser, ParsesConstantsFormulasModulesLabelsRewards) {
    const auto sys = prism::parse_prism(kTwoComponentModel);
    EXPECT_EQ(sys.modules.size(), 2u);
    EXPECT_EQ(sys.constants.size(), 3u);
    EXPECT_NEAR(sys.constants.at("lambda").as_double(), 0.01, 1e-15);
    EXPECT_EQ(sys.constants.at("N").as_int(), 2);
    EXPECT_EQ(sys.labels.size(), 2u);
    EXPECT_EQ(sys.rewards.size(), 1u);

    const auto explored = modules::explore(sys);
    EXPECT_EQ(explored.chain.state_count(), 4u);
    EXPECT_EQ(explored.chain.transition_count(), 8u);
    // closed-form availability of the two independent components
    const double ax = 0.5 / (0.5 + 0.01);
    const double ay = 0.5 / (0.5 + 0.02);
    EXPECT_NEAR(arcade::ctmc::steady_state_probability(explored.chain,
                                                       explored.chain.label("up")),
                ax * ay, 1e-9);
}

TEST(PrismParser, SynchronisedActions) {
    const char* text = R"(
ctmc
module a
  x : [0..1] init 0;
  [tick] x=0 -> 2 : (x'=1);
endmodule
module b
  y : [0..1] init 0;
  [tick] y=0 -> 3 : (y'=1);
endmodule
)";
    const auto explored = modules::explore(prism::parse_prism(text));
    EXPECT_EQ(explored.chain.state_count(), 2u);
    EXPECT_NEAR(explored.chain.rates().at(0, 1), 6.0, 1e-12);
}

TEST(PrismParser, BoolVariablesAndTrueUpdates) {
    const char* text = R"(
ctmc
module m
  b : bool init false;
  [] !b -> 1.5 : (b'=true);
  [] b -> 1 : true;
endmodule
)";
    const auto explored = modules::explore(prism::parse_prism(text));
    EXPECT_EQ(explored.chain.state_count(), 2u);
    // "true" update is a rate self-loop, dropped in the CTMC
    EXPECT_EQ(explored.chain.transition_count(), 1u);
}

TEST(PrismParser, ProbabilisticAlternativesWithPlus) {
    const char* text = R"(
ctmc
module m
  x : [0..2] init 0;
  [] x=0 -> 1 : (x'=1) + 3 : (x'=2);
endmodule
)";
    const auto explored = modules::explore(prism::parse_prism(text));
    EXPECT_NEAR(explored.chain.rates().at(0, 1), 1.0, 1e-12);
    EXPECT_NEAR(explored.chain.rates().at(0, 2), 3.0, 1e-12);
}

TEST(PrismParser, MalformedInputsAreParseErrors) {
    // missing semicolon after the init clause
    EXPECT_THROW(prism::parse_prism("ctmc\nmodule m\n  x : [0..1] init 0\nendmodule\n"),
                 arcade::ParseError);
    EXPECT_THROW(prism::parse_prism("dtmc\n"), arcade::ParseError);      // wrong model type
    EXPECT_THROW(prism::parse_prism("ctmc\nmodule m\n"), arcade::ParseError);  // unterminated
    // unterminated label string
    EXPECT_THROW(prism::parse_prism("ctmc\nlabel \"up = true;\n"), arcade::ParseError);
}

TEST(PrismParser, MissingSemicolonErrorsMentionLocation) {
    try {
        prism::parse_prism("ctmc\nmodule m\n  x : [0..1] init 0\nendmodule\n");
        FAIL() << "expected ParseError";
    } catch (const arcade::ParseError& e) {
        EXPECT_NE(std::string(e.what()).find("line"), std::string::npos);
    }
}

TEST(PrismWriter, RoundTripPreservesSemantics) {
    const auto sys = prism::parse_prism(kTwoComponentModel);
    const std::string text = prism::write_prism(sys);
    const auto sys2 = prism::parse_prism(text);
    const auto a = modules::explore(sys);
    const auto b = modules::explore(sys2);
    ASSERT_EQ(a.chain.state_count(), b.chain.state_count());
    ASSERT_EQ(a.chain.transition_count(), b.chain.transition_count());
    EXPECT_NEAR(arcade::ctmc::steady_state_probability(a.chain, a.chain.label("up")),
                arcade::ctmc::steady_state_probability(b.chain, b.chain.label("up")),
                1e-10);
    // rewards survive the round trip
    EXPECT_EQ(b.reward_structures.count("downtime"), 1u);
}

TEST(PrismWriter, EmitsParsableGuardsWithArrowsAndMinus) {
    // guards containing '-' and nested parens must survive
    const char* text = R"(
ctmc
const int N = 3;
module m
  x : [0..3] init 0;
  [] x < N - 1 -> 1 : (x'=x+1);
  [] x > 0 -> 2 : (x'=x-1);
endmodule
)";
    const auto sys = prism::parse_prism(text);
    const auto sys2 = prism::parse_prism(prism::write_prism(sys));
    EXPECT_EQ(modules::explore(sys).chain.state_count(),
              modules::explore(sys2).chain.state_count());
}
