// CSL properties as first-class sweep measures: every paper measure
// re-expressed as a formula (watertree::properties / sweep::paper::
// properties) must reproduce the measure pipeline's rows byte-identically
// through the sweep runner — with reduction Off AND Auto — because both
// paths run the very same kernels on the very same masks and distributions.
// Plus: grid validation, dedup keys, CSV property column and shard
// byte-identity, and the property cache counters under the runner.
#include <gtest/gtest.h>

#include <cstring>
#include <sstream>

#include "support/errors.hpp"
#include "sweep/sweep.hpp"
#include "watertree/properties.hpp"

namespace core = arcade::core;
namespace engine = arcade::engine;
namespace sweep = arcade::sweep;
namespace wp = arcade::watertree::properties;

namespace {

sweep::MeasureSpec property_measure(std::string formula, sweep::DisasterKind disaster,
                                    std::vector<double> times, bool strip_repair = false) {
    sweep::MeasureSpec m;
    m.kind = sweep::MeasureKind::Property;
    m.disaster = disaster;
    m.times = std::move(times);
    m.property = std::move(formula);
    m.strip_repair = strip_repair;
    return m;
}

sweep::SweepReport run(const sweep::ScenarioGrid& grid, core::ReductionPolicy reduction,
                       engine::AnalysisSession& session) {
    sweep::RunnerOptions options;
    options.reduction = reduction;
    return sweep::SweepRunner(session, options).run(grid);
}

/// Bitwise equality of two value arrays (the acceptance criterion: a
/// re-expressed measure reproduces its row byte for byte).
void expect_bitwise(const std::vector<double>& a, const std::vector<double>& b,
                    const std::string& what) {
    ASSERT_EQ(a.size(), b.size()) << what;
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(std::memcmp(&a[i], &b[i], sizeof(double)), 0)
            << what << " at " << i << ": " << a[i] << " vs " << b[i];
    }
}

}  // namespace

TEST(PropertySweep, PropertiesGridReproducesEverythingByteIdentically) {
    // paper::properties() mirrors paper::everything() measure for measure,
    // so the expanded work lists align cell for cell — and every value must
    // match bitwise, under both reduction policies.
    const auto measures = sweep::paper::everything();
    const auto properties = sweep::paper::properties();
    ASSERT_EQ(sweep::expand(measures).size(), sweep::expand(properties).size());

    for (const auto reduction :
         {core::ReductionPolicy::Off, core::ReductionPolicy::Auto}) {
        engine::AnalysisSession session_measures;
        engine::AnalysisSession session_properties;
        const auto baseline = run(measures, reduction, session_measures);
        const auto expressed = run(properties, reduction, session_properties);
        ASSERT_EQ(baseline.results.size(), expressed.results.size());
        for (std::size_t i = 0; i < baseline.results.size(); ++i) {
            const auto& m = baseline.results[i];
            const auto& p = expressed.results[i];
            ASSERT_EQ(m.item.line, p.item.line);
            ASSERT_EQ(m.item.strategy, p.item.strategy);
            ASSERT_EQ(m.item.measure.disaster, p.item.measure.disaster);
            EXPECT_EQ(m.model_states, p.model_states);
            expect_bitwise(m.values, p.values,
                           p.item.key() + (reduction == core::ReductionPolicy::Auto
                                               ? " [auto]"
                                               : " [off]"));
        }
    }
}

TEST(PropertySweep, ReliabilityPropertyStripsRepairsAndMatchesByteIdentically) {
    // P=?[G<=t !"down"] with strip_repair is the Reliability measure: the
    // same repair-free compile (model_key carries /norepair) and the same
    // 1 - P(U<=t) arithmetic.
    auto measure_grid = sweep::paper::fig3();
    auto property_grid = measure_grid;
    property_grid.measures = {property_measure(
        wp::reliability_formula(1000.0), sweep::DisasterKind::None,
        measure_grid.measures.front().times, /*strip_repair=*/true)};

    for (const auto reduction :
         {core::ReductionPolicy::Off, core::ReductionPolicy::Auto}) {
        engine::AnalysisSession session_measures;
        engine::AnalysisSession session_properties;
        const auto baseline = run(measure_grid, reduction, session_measures);
        const auto expressed = run(property_grid, reduction, session_properties);
        ASSERT_EQ(baseline.results.size(), expressed.results.size());
        for (std::size_t i = 0; i < baseline.results.size(); ++i) {
            EXPECT_EQ(baseline.results[i].model_states, expressed.results[i].model_states)
                << "the property must compile the same repair-free model";
            expect_bitwise(baseline.results[i].values, expressed.results[i].values,
                           "reliability line " +
                               std::to_string(baseline.results[i].item.line));
        }
    }
}

TEST(PropertySweep, SteadyStateCostPropertyMatchesByteIdentically) {
    sweep::ScenarioGrid grid;
    grid.lines = {2};
    grid.strategies = {"DED", "FRF-1"};
    grid.measures = {
        {sweep::MeasureKind::SteadyStateCost, sweep::DisasterKind::None, 1.0, {}},
        property_measure(wp::steady_cost_formula(), sweep::DisasterKind::None, {}),
    };
    for (const auto reduction :
         {core::ReductionPolicy::Off, core::ReductionPolicy::Auto}) {
        engine::AnalysisSession session;
        const auto report = run(grid, reduction, session);
        ASSERT_EQ(report.results.size(), 4u);  // 2 strategies x 2 measures
        for (std::size_t s = 0; s < 2; ++s) {
            expect_bitwise(report.results[2 * s].values, report.results[2 * s + 1].values,
                           "steady-state cost " + report.results[2 * s].item.strategy);
        }
    }
}

TEST(PropertySweep, ExpandValidatesPropertySpecsEagerly) {
    sweep::ScenarioGrid grid;
    grid.lines = {2};
    grid.strategies = {"DED"};

    // Malformed formula text fails at expand(), not mid-run.
    grid.measures = {property_measure("P=? [ true U ]", sweep::DisasterKind::None, {})};
    EXPECT_THROW((void)sweep::expand(grid), arcade::InvalidArgument);

    // Malformed thresholds too (the InvalidArgument taxonomy).
    grid.measures = {
        property_measure("P>=1.5 [ F<=1 \"down\" ]", sweep::DisasterKind::None, {})};
    EXPECT_THROW((void)sweep::expand(grid), arcade::InvalidArgument);

    // A time grid demands a time-parametric quantitative top level.
    grid.measures = {property_measure("S=? [ \"operational\" ]",
                                      sweep::DisasterKind::None, {0.0, 1.0})};
    EXPECT_THROW((void)sweep::expand(grid), arcade::InvalidArgument);

    // Scalar (steady-state) properties cannot take a disaster.
    grid.measures = {
        property_measure("S=? [ \"operational\" ]", sweep::DisasterKind::Mixed, {})};
    EXPECT_THROW((void)sweep::expand(grid), arcade::InvalidArgument);

    // Formula text / strip_repair are property-measure fields only.
    sweep::MeasureSpec stray;
    stray.kind = sweep::MeasureKind::Availability;
    stray.property = "S=? [ \"operational\" ]";
    grid.measures = {stray};
    EXPECT_THROW((void)sweep::expand(grid), arcade::InvalidArgument);

    // Two property cells differing only in their formula both survive.
    grid.measures = {
        property_measure(wp::survivability_formula(1.0 / 3.0, 10.0),
                         sweep::DisasterKind::Mixed, {0.0, 5.0, 10.0}),
        property_measure(wp::survivability_formula(2.0 / 3.0, 10.0),
                         sweep::DisasterKind::Mixed, {0.0, 5.0, 10.0}),
    };
    EXPECT_EQ(sweep::expand(grid).size(), 2u);
}

TEST(PropertySweep, CsvGrowsPropertyColumnAndShardsConcatenateByteIdentically) {
    sweep::ScenarioGrid grid;
    grid.lines = {2};
    grid.strategies = {"DED", "FRF-1"};
    grid.measures = {
        property_measure(wp::availability_formula(), sweep::DisasterKind::None, {}),
        property_measure(wp::survivability_formula(1.0 / 3.0, 10.0),
                         sweep::DisasterKind::Mixed, {0.0, 5.0, 10.0}),
    };

    engine::AnalysisSession unsharded_session;
    sweep::SweepRunner unsharded(unsharded_session);
    std::ostringstream whole;
    const auto report = unsharded.run(grid);
    sweep::write_csv(report, grid, whole);

    // The property grid's CSV carries the trailing formula column.
    EXPECT_NE(whole.str().find(",property\n"), std::string::npos);
    EXPECT_NE(whole.str().find("S=? [ \"\"operational\"\" ]"), std::string::npos)
        << "formula quotes must be RFC-4180 escaped";

    // Per-shard CSVs (header on shard 1 only) concatenate byte-identically.
    std::ostringstream concatenated;
    for (std::size_t i = 1; i <= 2; ++i) {
        engine::AnalysisSession shard_session;
        sweep::RunnerOptions options;
        options.shard = {i, 2};
        sweep::SweepRunner runner(shard_session, options);
        sweep::CsvOptions csv;
        csv.header = i == 1;
        sweep::write_csv(runner.run(grid), grid, concatenated, csv);
    }
    EXPECT_EQ(whole.str(), concatenated.str());

    // The JSON export names the formula on every result row.
    std::ostringstream json;
    sweep::write_json(report, grid, json);
    EXPECT_NE(json.str().find("\"formula\": \"S=? [ \\\"operational\\\" ]\""),
              std::string::npos);
    EXPECT_NE(json.str().find("\"property_misses\""), std::string::npos);
}

TEST(PropertySweep, RepeatedPropertySweepHitsThePropertyCache) {
    sweep::ScenarioGrid grid;
    grid.lines = {2};
    grid.strategies = {"DED"};
    grid.measures = {
        property_measure(wp::availability_formula(), sweep::DisasterKind::None, {})};

    engine::AnalysisSession session;
    sweep::SweepRunner runner(session);
    const auto first = runner.run(grid);
    EXPECT_EQ(first.stats.property_misses, 1u);
    EXPECT_EQ(first.stats.property_hits, 0u);
    const auto second = runner.run(grid);
    EXPECT_EQ(second.stats.property_misses, 0u);
    EXPECT_EQ(second.stats.property_hits, 1u);
    expect_bitwise(first.results.front().values, second.results.front().values,
                   "cached property row");
}
