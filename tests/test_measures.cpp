// Unit tests: the measures layer — guards, combination rules, steady-state
// cost, and property-style sweeps over strategies.
#include <gtest/gtest.h>

#include "arcade/compiler.hpp"
#include "arcade/measures.hpp"
#include "support/errors.hpp"
#include "support/series.hpp"
#include "watertree/watertree.hpp"

namespace core = arcade::core;
namespace wt = arcade::watertree;

TEST(Measures, CombinedAvailabilityInclusionExclusion) {
    EXPECT_DOUBLE_EQ(core::combined_availability(0.5, 0.5), 0.75);
    EXPECT_DOUBLE_EQ(core::combined_availability(1.0, 0.3), 1.0);
    EXPECT_DOUBLE_EQ(core::combined_availability(0.0, 0.3), 0.3);
}

TEST(Measures, ReliabilityRefusesRepairableModels) {
    core::ModelBuilder builder("guard");
    builder.add_redundant_phase("c", 1, 10, 1);
    builder.with_repair(core::RepairPolicy::Dedicated);
    const auto compiled = core::compile(builder.build());
    const std::vector<double> times{0.0, 1.0};
    EXPECT_THROW(core::reliability_series(compiled, times), arcade::ModelError);
}

TEST(Measures, SteadyStateCostOfDedicatedLineIsAnalytic) {
    // DED: components independent; crews idle exactly when their component
    // is up.  E[cost] = sum_c (3 * P(down_c) + 1 * P(up_c)).
    const auto model = wt::line2(wt::paper_strategies()[0]);
    core::CompileOptions lumped;
    lumped.encoding = core::Encoding::Lumped;
    const auto compiled = core::compile(model, lumped);
    double expected = 0.0;
    for (const auto& c : model.components) {
        const double p_down = c.mttr / (c.mttf + c.mttr);
        expected += 3.0 * p_down + 1.0 * (1.0 - p_down);
    }
    EXPECT_NEAR(core::steady_state_cost(compiled), expected, 1e-8);
}

TEST(Measures, SurvivabilityAtServiceZeroIsImmediate) {
    // Every state has service >= 0, so recovery to level 0 is instant.
    const auto compiled = core::compile(wt::line2(wt::paper_strategies()[1]));
    const auto disaster = wt::disaster2();
    EXPECT_NEAR(core::survivability(compiled, disaster, 0.0, 0.0), 1.0, 1e-12);
}

// Property sweep over all strategies: basic sanity bounds that must hold
// for ANY correct implementation.
class StrategySweep : public ::testing::TestWithParam<const char*> {
protected:
    [[nodiscard]] static wt::Strategy strategy(const std::string& name) {
        for (const auto& s : wt::paper_strategies()) {
            if (s.name == name) return s;
        }
        throw std::runtime_error("unknown");
    }
};

TEST_P(StrategySweep, AvailabilityIsAProbability) {
    core::CompileOptions lumped;
    lumped.encoding = core::Encoding::Lumped;
    const auto compiled = core::compile(wt::line2(strategy(GetParam())), lumped);
    const double a = core::availability(compiled);
    EXPECT_GT(a, 0.0);
    EXPECT_LT(a, 1.0);
}

TEST_P(StrategySweep, SurvivabilityMonotoneInTimeAndAntitoneInLevel) {
    core::CompileOptions lumped;
    lumped.encoding = core::Encoding::Lumped;
    const auto compiled = core::compile(wt::line2(strategy(GetParam())), lumped);
    const auto disaster = wt::disaster2();
    const auto times = arcade::time_grid(60.0, 7);
    double prev_level_value = 1.0;
    for (double x : wt::service_interval_bounds(compiled.model())) {
        const auto curve = core::survivability_series(compiled, disaster, x, times);
        for (std::size_t i = 1; i < curve.size(); ++i) {
            EXPECT_GE(curve[i] + 1e-12, curve[i - 1]) << x;
            EXPECT_GE(curve[i], -1e-12);
            EXPECT_LE(curve[i], 1.0 + 1e-12);
        }
        // higher level is harder to reach by the same deadline
        EXPECT_LE(curve.back(), prev_level_value + 1e-9) << x;
        prev_level_value = curve.back();
    }
}

TEST_P(StrategySweep, AccumulatedCostIsNondecreasingAndBounded) {
    core::CompileOptions lumped;
    lumped.encoding = core::Encoding::Lumped;
    const auto compiled = core::compile(wt::line2(strategy(GetParam())), lumped);
    const auto disaster = wt::disaster2();
    const auto times = arcade::time_grid(50.0, 6);
    const auto acc = core::accumulated_cost_series(compiled, disaster, times);
    const auto inst = core::instantaneous_cost_series(compiled, disaster, times);
    double max_rate = 0.0;
    for (double r : compiled.cost_reward().state_rates()) max_rate = std::max(max_rate, r);
    for (std::size_t i = 1; i < acc.size(); ++i) {
        EXPECT_GE(acc[i] + 1e-9, acc[i - 1]);
        // accumulated cost can never exceed max rate * time
        EXPECT_LE(acc[i], max_rate * times[i] + 1e-6);
        EXPECT_GE(inst[i], 0.0);
    }
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, StrategySweep,
                         ::testing::Values("DED", "FRF-1", "FRF-2", "FFF-1", "FFF-2"));
