// Unit tests: Markov reward measures against closed forms.
#include <gtest/gtest.h>

#include <cmath>

#include "ctmc/ctmc.hpp"
#include "rewards/rewards.hpp"
#include "support/errors.hpp"

namespace ctmc = arcade::ctmc;
namespace rw = arcade::rewards;
namespace la = arcade::linalg;

namespace {

ctmc::Ctmc two_state(double l, double m) {
    la::CsrBuilder b(2, 2);
    b.add(0, 1, l);
    b.add(1, 0, m);
    return ctmc::Ctmc(b.build(), {1.0, 0.0});
}

}  // namespace

TEST(Rewards, InstantaneousTwoStateClosedForm) {
    // reward 1 in the down state: E[rho(X_t)] = p_down(t).
    const double l = 0.4;
    const double m = 1.1;
    const auto chain = two_state(l, m);
    const rw::RewardStructure reward("down_time", {0.0, 1.0});
    for (double t : {0.2, 1.0, 6.0}) {
        const double p_down = l / (l + m) * (1.0 - std::exp(-(l + m) * t));
        EXPECT_NEAR(
            rw::instantaneous_reward(chain, chain.initial_distribution(), reward, t),
            p_down, 1e-10)
            << t;
    }
}

TEST(Rewards, AccumulatedIsIntegralOfInstantaneous) {
    // E[∫ rho] for the two-state chain has the closed form
    //   (l/(l+m)) * ( t - (1 - e^{-(l+m)t})/(l+m) ).
    const double l = 0.4;
    const double m = 1.1;
    const auto chain = two_state(l, m);
    const rw::RewardStructure reward("down_time", {0.0, 1.0});
    for (double t : {0.5, 2.0, 10.0}) {
        const double s = l + m;
        const double expected = l / s * (t - (1.0 - std::exp(-s * t)) / s);
        EXPECT_NEAR(
            rw::accumulated_reward(chain, chain.initial_distribution(), reward, t),
            expected, 1e-9)
            << t;
    }
}

TEST(Rewards, AccumulatedOfConstantRewardIsTime) {
    // rho = c everywhere => E[∫_0^t rho] = c*t regardless of dynamics.
    const auto chain = two_state(0.9, 0.3);
    const rw::RewardStructure reward("const", {2.5, 2.5});
    for (double t : {0.1, 1.0, 13.0}) {
        EXPECT_NEAR(
            rw::accumulated_reward(chain, chain.initial_distribution(), reward, t),
            2.5 * t, 1e-9)
            << t;
    }
}

TEST(Rewards, SeriesAgreesWithPointSolvesAndIsMonotone) {
    const auto chain = two_state(0.6, 0.8);
    const rw::RewardStructure reward("r", {1.0, 3.0});
    const std::vector<double> times{0.0, 0.4, 1.0, 2.5, 8.0};
    const auto acc = rw::accumulated_reward_series(chain, chain.initial_distribution(),
                                                   reward, times);
    const auto inst = rw::instantaneous_reward_series(chain, chain.initial_distribution(),
                                                      reward, times);
    for (std::size_t i = 0; i < times.size(); ++i) {
        EXPECT_NEAR(acc[i],
                    rw::accumulated_reward(chain, chain.initial_distribution(), reward,
                                           times[i]),
                    1e-8);
        EXPECT_NEAR(inst[i],
                    rw::instantaneous_reward(chain, chain.initial_distribution(), reward,
                                             times[i]),
                    1e-9);
        if (i > 0) EXPECT_GT(acc[i], acc[i - 1]);  // positive rewards accumulate
    }
    EXPECT_NEAR(acc[0], 0.0, 1e-12);
}

TEST(Rewards, SeriesClampsDuplicateGridPoints) {
    // An exactly-duplicated grid point is a zero-length interval: the series
    // value must repeat and equal the scalar solve at that time bit-for-bit
    // (the raw t - prev of a duplicate can be -0.0-ish and must be clamped,
    // never fed into the interval accumulator).
    const auto chain = two_state(0.7, 1.3);
    const rw::RewardStructure reward("r", {1.0, 4.0});
    const std::vector<double> times{0.0, 1.0, 1.0, 2.5};
    const auto acc = rw::accumulated_reward_series(chain, chain.initial_distribution(),
                                                   reward, times);
    ASSERT_EQ(acc.size(), times.size());
    EXPECT_EQ(acc[1], acc[2]);
    EXPECT_EQ(acc[1],
              rw::accumulated_reward(chain, chain.initial_distribution(), reward, 1.0));
    // A point within the duplicate tolerance clamps too...
    const std::vector<double> nudged{1.0, 1.0 - 1e-13};
    const auto clamped = rw::accumulated_reward_series(chain, chain.initial_distribution(),
                                                       reward, nudged);
    EXPECT_EQ(clamped[0], clamped[1]);
    // ...but a genuinely decreasing grid is a caller error.
    const std::vector<double> decreasing{1.0, 0.5};
    EXPECT_THROW((void)rw::accumulated_reward_series(chain, chain.initial_distribution(),
                                                     reward, decreasing),
                 arcade::InvalidArgument);
}

TEST(Rewards, SteadyStateReward) {
    const double l = 0.25;
    const double m = 1.0;
    const auto chain = two_state(l, m);
    const rw::RewardStructure reward("r", {1.0, 5.0});
    const double pi_down = l / (l + m);
    EXPECT_NEAR(rw::steady_state_reward(chain, reward),
                (1.0 - pi_down) * 1.0 + pi_down * 5.0, 1e-9);
}

TEST(Rewards, InstantaneousConvergesToSteadyState) {
    const auto chain = two_state(0.5, 0.7);
    const rw::RewardStructure reward("r", {2.0, 9.0});
    const double at_large_t =
        rw::instantaneous_reward(chain, chain.initial_distribution(), reward, 200.0);
    EXPECT_NEAR(at_large_t, rw::steady_state_reward(chain, reward), 1e-8);
}
