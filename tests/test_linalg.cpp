// Unit tests: sparse matrices and vector helpers.
#include <gtest/gtest.h>

#include "linalg/csr_matrix.hpp"
#include "linalg/vector_ops.hpp"
#include "support/errors.hpp"

namespace la = arcade::linalg;

TEST(CsrMatrix, BuildsSortedRowsAndSumsDuplicates) {
    la::CsrBuilder b(3, 3);
    b.add(1, 2, 4.0);
    b.add(1, 0, 1.0);
    b.add(1, 2, 0.5);  // duplicate coordinate: summed
    b.add(0, 1, 2.0);
    const la::CsrMatrix m = b.build();
    EXPECT_EQ(m.nonzeros(), 3u);
    EXPECT_DOUBLE_EQ(m.at(1, 2), 4.5);
    EXPECT_DOUBLE_EQ(m.at(1, 0), 1.0);
    EXPECT_DOUBLE_EQ(m.at(0, 1), 2.0);
    EXPECT_DOUBLE_EQ(m.at(2, 2), 0.0);
    const auto cols = m.row_columns(1);
    ASSERT_EQ(cols.size(), 2u);
    EXPECT_LT(cols[0], cols[1]);  // sorted
}

TEST(CsrMatrix, MultiplyLeftMatchesManualComputation) {
    // M = [[0,2],[3,0]];  x = [1, 10];  x*M = [30, 2]
    la::CsrBuilder b(2, 2);
    b.add(0, 1, 2.0);
    b.add(1, 0, 3.0);
    const la::CsrMatrix m = b.build();
    std::vector<double> x{1.0, 10.0};
    std::vector<double> y(2, 0.0);
    m.multiply_left(x, y);
    EXPECT_DOUBLE_EQ(y[0], 30.0);
    EXPECT_DOUBLE_EQ(y[1], 2.0);
}

TEST(CsrMatrix, MultiplyRightMatchesManualComputation) {
    la::CsrBuilder b(2, 2);
    b.add(0, 1, 2.0);
    b.add(1, 0, 3.0);
    const la::CsrMatrix m = b.build();
    std::vector<double> x{1.0, 10.0};
    std::vector<double> y(2, 0.0);
    m.multiply_right(x, y);  // M*x = [20, 3]
    EXPECT_DOUBLE_EQ(y[0], 20.0);
    EXPECT_DOUBLE_EQ(y[1], 3.0);
}

TEST(CsrMatrix, TransposeRoundTrips) {
    la::CsrBuilder b(2, 3);
    b.add(0, 2, 5.0);
    b.add(1, 1, 7.0);
    const la::CsrMatrix m = b.build();
    const la::CsrMatrix t = m.transposed();
    EXPECT_EQ(t.rows(), 3u);
    EXPECT_EQ(t.cols(), 2u);
    EXPECT_DOUBLE_EQ(t.at(2, 0), 5.0);
    EXPECT_DOUBLE_EQ(t.at(1, 1), 7.0);
    const la::CsrMatrix tt = t.transposed();
    EXPECT_DOUBLE_EQ(tt.at(0, 2), 5.0);
    EXPECT_EQ(tt.nonzeros(), m.nonzeros());
}

TEST(CsrMatrix, RowSumAndOutOfRangeGuard) {
    la::CsrBuilder b(2, 2);
    b.add(0, 0, 1.0);
    b.add(0, 1, 2.0);
    const la::CsrMatrix m = b.build();
    EXPECT_DOUBLE_EQ(m.row_sum(0), 3.0);
    EXPECT_DOUBLE_EQ(m.row_sum(1), 0.0);
}

TEST(VectorOps, DistancesAndDot) {
    std::vector<double> a{1.0, 2.0, 3.0};
    std::vector<double> b{1.5, 2.0, 2.0};
    EXPECT_DOUBLE_EQ(la::l1_distance(a, b), 1.5);
    EXPECT_DOUBLE_EQ(la::linf_distance(a, b), 1.0);
    EXPECT_DOUBLE_EQ(la::dot(a, b), 1.5 + 4.0 + 6.0);
    EXPECT_DOUBLE_EQ(la::sum(a), 6.0);
}

TEST(VectorOps, NormalizeAndGuard) {
    std::vector<double> v{1.0, 3.0};
    la::normalize(v);
    EXPECT_DOUBLE_EQ(v[0], 0.25);
    EXPECT_DOUBLE_EQ(v[1], 0.75);
    std::vector<double> zero{0.0, 0.0};
    EXPECT_THROW(la::normalize(zero), arcade::ModelError);
}

TEST(VectorOps, Axpy) {
    std::vector<double> x{1.0, 2.0};
    std::vector<double> y{10.0, 20.0};
    la::axpy(0.5, x, y);
    EXPECT_DOUBLE_EQ(y[0], 10.5);
    EXPECT_DOUBLE_EQ(y[1], 21.0);
}
