// Unit tests: sparse matrices and vector helpers.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "linalg/csr_matrix.hpp"
#include "linalg/kernels.hpp"
#include "linalg/vector_ops.hpp"
#include "support/errors.hpp"

namespace la = arcade::linalg;

TEST(CsrMatrix, BuildsSortedRowsAndSumsDuplicates) {
    la::CsrBuilder b(3, 3);
    b.add(1, 2, 4.0);
    b.add(1, 0, 1.0);
    b.add(1, 2, 0.5);  // duplicate coordinate: summed
    b.add(0, 1, 2.0);
    const la::CsrMatrix m = b.build();
    EXPECT_EQ(m.nonzeros(), 3u);
    EXPECT_DOUBLE_EQ(m.at(1, 2), 4.5);
    EXPECT_DOUBLE_EQ(m.at(1, 0), 1.0);
    EXPECT_DOUBLE_EQ(m.at(0, 1), 2.0);
    EXPECT_DOUBLE_EQ(m.at(2, 2), 0.0);
    const auto cols = m.row_columns(1);
    ASSERT_EQ(cols.size(), 2u);
    EXPECT_LT(cols[0], cols[1]);  // sorted
}

TEST(CsrMatrix, MultiplyLeftMatchesManualComputation) {
    // M = [[0,2],[3,0]];  x = [1, 10];  x*M = [30, 2]
    la::CsrBuilder b(2, 2);
    b.add(0, 1, 2.0);
    b.add(1, 0, 3.0);
    const la::CsrMatrix m = b.build();
    std::vector<double> x{1.0, 10.0};
    std::vector<double> y(2, 0.0);
    m.multiply_left(x, y);
    EXPECT_DOUBLE_EQ(y[0], 30.0);
    EXPECT_DOUBLE_EQ(y[1], 2.0);
}

TEST(CsrMatrix, MultiplyRightMatchesManualComputation) {
    la::CsrBuilder b(2, 2);
    b.add(0, 1, 2.0);
    b.add(1, 0, 3.0);
    const la::CsrMatrix m = b.build();
    std::vector<double> x{1.0, 10.0};
    std::vector<double> y(2, 0.0);
    m.multiply_right(x, y);  // M*x = [20, 3]
    EXPECT_DOUBLE_EQ(y[0], 20.0);
    EXPECT_DOUBLE_EQ(y[1], 3.0);
}

TEST(CsrMatrix, TransposeRoundTrips) {
    la::CsrBuilder b(2, 3);
    b.add(0, 2, 5.0);
    b.add(1, 1, 7.0);
    const la::CsrMatrix m = b.build();
    const la::CsrMatrix t = m.transposed();
    EXPECT_EQ(t.rows(), 3u);
    EXPECT_EQ(t.cols(), 2u);
    EXPECT_DOUBLE_EQ(t.at(2, 0), 5.0);
    EXPECT_DOUBLE_EQ(t.at(1, 1), 7.0);
    const la::CsrMatrix tt = t.transposed();
    EXPECT_DOUBLE_EQ(tt.at(0, 2), 5.0);
    EXPECT_EQ(tt.nonzeros(), m.nonzeros());
}

TEST(CsrMatrix, RowSumAndOutOfRangeGuard) {
    la::CsrBuilder b(2, 2);
    b.add(0, 0, 1.0);
    b.add(0, 1, 2.0);
    const la::CsrMatrix m = b.build();
    EXPECT_DOUBLE_EQ(m.row_sum(0), 3.0);
    EXPECT_DOUBLE_EQ(m.row_sum(1), 0.0);
}

TEST(VectorOps, DistancesAndDot) {
    std::vector<double> a{1.0, 2.0, 3.0};
    std::vector<double> b{1.5, 2.0, 2.0};
    EXPECT_DOUBLE_EQ(la::l1_distance(a, b), 1.5);
    EXPECT_DOUBLE_EQ(la::linf_distance(a, b), 1.0);
    EXPECT_DOUBLE_EQ(la::dot(a, b), 1.5 + 4.0 + 6.0);
    EXPECT_DOUBLE_EQ(la::sum(a), 6.0);
}

TEST(VectorOps, NormalizeAndGuard) {
    std::vector<double> v{1.0, 3.0};
    la::normalize(v);
    EXPECT_DOUBLE_EQ(v[0], 0.25);
    EXPECT_DOUBLE_EQ(v[1], 0.75);
    std::vector<double> zero{0.0, 0.0};
    EXPECT_THROW(la::normalize(zero), arcade::ModelError);
}

TEST(VectorOps, Axpy) {
    std::vector<double> x{1.0, 2.0};
    std::vector<double> y{10.0, 20.0};
    la::axpy(0.5, x, y);
    EXPECT_DOUBLE_EQ(y[0], 10.5);
    EXPECT_DOUBLE_EQ(y[1], 21.0);
}

TEST(VectorOps, NeumaierSumCompensatesCancellation) {
    // A naive left-to-right sum of these is 0.0; the compensation term
    // recovers the unit that cancellation swallows.
    const std::vector<double> v{1.0e16, 1.0, -1.0e16};
    EXPECT_DOUBLE_EQ(la::neumaier_sum(v), 1.0);
    const std::vector<double> plain{0.25, 0.5, 0.125};
    EXPECT_DOUBLE_EQ(la::neumaier_sum(plain), la::sum(plain));
    EXPECT_DOUBLE_EQ(la::neumaier_sum({}), 0.0);
}

// --- Kernel-mode bitwise identity on deliberately awkward inputs ----------
//
// The SIMD variants' whole contract is "same bits, fewer cycles": every
// mode must agree byte for byte on empty rows, single-entry rows, rows
// longer than any unroll width, dimensions that are not a multiple of the
// vector width, and NaN/inf payloads.  One IEEE caveat shapes the inputs:
// when BOTH operands of an add are NaNs with different payloads the result
// takes the payload of whichever operand the compiler put first, so the
// identity only covers inputs whose NaNs all share one payload.  The tests
// therefore exercise two special classes separately — ±inf (every NaN they
// generate is the arch's default quiet NaN) and injected quiet NaNs (all
// bit-identical) — rather than mixing the two payloads in one reduction.

namespace {

/// RAII mode switch so a failing assertion cannot leak a non-default
/// kernel mode into later tests.
class KernelModeGuard {
public:
    explicit KernelModeGuard(la::KernelMode mode) : saved_(la::kernel_mode()) {
        la::set_kernel_mode(mode);
    }
    ~KernelModeGuard() { la::set_kernel_mode(saved_); }
    KernelModeGuard(const KernelModeGuard&) = delete;
    KernelModeGuard& operator=(const KernelModeGuard&) = delete;

private:
    la::KernelMode saved_;
};

bool same_bits(std::span<const double> a, std::span<const double> b) {
    return a.size() == b.size() &&
           std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

bool same_bits(double a, double b) { return std::memcmp(&a, &b, sizeof a) == 0; }

/// 23x23 (not a multiple of any vector width) with empty rows, one-entry
/// rows, long rows and a mix of rows with and without a stored diagonal.
la::CsrMatrix edge_matrix() {
    constexpr std::size_t n = 23;
    la::CsrBuilder b(n, n);
    for (std::size_t r = 0; r < n; ++r) {
        const std::size_t len = (r * 5) % 9;  // row lengths 0..8
        for (std::size_t k = 0; k < len; ++k) {
            const std::size_t c = (r + 3 * k + 1) % n;
            const double sign = k % 2 == 0 ? 1.0 : -1.0;
            b.add(r, c, sign * (1.0 + 0.25 * static_cast<double>(k) +
                                0.125 * static_cast<double>(r)));
        }
        if (r % 2 == 0 && len > 0) b.add(r, r, 2.0 + 0.5 * static_cast<double>(r));
    }
    return b.build();
}

enum class Specials { None, Inf, NaN };

std::vector<double> edge_vector(std::size_t n, Specials specials) {
    std::vector<double> v(n);
    for (std::size_t i = 0; i < n; ++i) {
        v[i] = 0.25 * static_cast<double>(i) - 2.0;
    }
    if (n > 0) v[0] = 0.0;  // exercises the uniformised in[i]==0 row skip
    if (n >= 18) {
        switch (specials) {
            case Specials::Inf:
                v[3] = std::numeric_limits<double>::infinity();
                v[11] = -std::numeric_limits<double>::infinity();
                break;
            case Specials::NaN:
                v[3] = std::numeric_limits<double>::quiet_NaN();
                v[17] = std::numeric_limits<double>::quiet_NaN();
                break;
            case Specials::None: break;
        }
    }
    return v;
}

constexpr la::KernelMode kModes[] = {la::KernelMode::Scalar, la::KernelMode::Blocked,
                                     la::KernelMode::Simd};

const char* mode_name(la::KernelMode mode) {
    switch (mode) {
        case la::KernelMode::Scalar: return "scalar";
        case la::KernelMode::Blocked: return "blocked";
        default: return "simd";
    }
}

void expect_all_modes_identical(Specials specials) {
    const la::CsrMatrix m = edge_matrix();
    const std::size_t n = m.rows();
    const std::vector<double> x = edge_vector(n, specials);
    const double lambda = 3.5;

    std::vector<double> ref_left(n), ref_right(n), ref_uleft(n), ref_uright(n);
    {
        const KernelModeGuard guard(la::KernelMode::Scalar);
        la::multiply_left(m, x, ref_left);
        la::multiply_right(m, x, ref_right);
        la::uniformised_multiply_left(m, lambda, x, ref_uleft);
        la::uniformised_multiply_right(m, lambda, x, ref_uright);
    }

    for (const la::KernelMode mode : kModes) {
        const KernelModeGuard guard(mode);
        std::vector<double> y(n, 0.5);  // poisoned: kernels must overwrite
        la::multiply_left(m, x, y);
        EXPECT_TRUE(same_bits(y, ref_left)) << "multiply_left " << mode_name(mode);
        la::multiply_right(m, x, y);
        EXPECT_TRUE(same_bits(y, ref_right)) << "multiply_right " << mode_name(mode);
        la::uniformised_multiply_left(m, lambda, x, y);
        EXPECT_TRUE(same_bits(y, ref_uleft))
            << "uniformised_multiply_left " << mode_name(mode);
        la::uniformised_multiply_right(m, lambda, x, y);
        EXPECT_TRUE(same_bits(y, ref_uright))
            << "uniformised_multiply_right " << mode_name(mode);
    }
}

}  // namespace

TEST(Kernels, AllModesBitwiseIdenticalOnEdgeShapes) {
    expect_all_modes_identical(Specials::None);
}

TEST(Kernels, InfinitiesPropagateIdenticallyAcrossModes) {
    expect_all_modes_identical(Specials::Inf);
}

TEST(Kernels, NansPropagateIdenticallyAcrossModes) {
    expect_all_modes_identical(Specials::NaN);
}

TEST(Kernels, GatherHelpersAgreeAcrossModes) {
    // Row shapes 0, 1, 2 and 7 entries; x carries NaN and inf so the fold
    // order is observable in the bits.
    const std::vector<std::size_t> cols{0, 2, 3, 5, 6, 7, 9};
    const std::vector<double> vals{0.5, -1.25, 2.0, 0.375, -0.75, 4.0, 1.5};
    std::vector<double> x(10);
    for (std::size_t i = 0; i < x.size(); ++i) x[i] = 1.0 / (static_cast<double>(i) + 0.5);
    x[5] = std::numeric_limits<double>::infinity();
    x[9] = std::numeric_limits<double>::quiet_NaN();

    for (const std::size_t len : {std::size_t{0}, std::size_t{1}, std::size_t{2},
                                  std::size_t{7}}) {
        const std::span<const std::size_t> c(cols.data(), len);
        const std::span<const double> v(vals.data(), len);
        for (const std::size_t skip : {std::size_t{3}, std::size_t{21}}) {
            double ref_skip = 0.0;
            double ref_cap = 0.0;
            double ref_diag = 0.0;
            {
                const KernelModeGuard guard(la::KernelMode::Scalar);
                ref_skip = la::gather_skip_diag(c, v, x, skip, 0.0625);
                ref_cap = la::gather_capture_diag(c, v, x, skip, 0.0625, ref_diag);
            }
            for (const la::KernelMode mode : kModes) {
                const KernelModeGuard guard(mode);
                double diag = -1.0;
                EXPECT_TRUE(same_bits(la::gather_skip_diag(c, v, x, skip, 0.0625),
                                      ref_skip))
                    << "gather_skip_diag " << mode_name(mode) << " len " << len;
                EXPECT_TRUE(same_bits(
                    la::gather_capture_diag(c, v, x, skip, 0.0625, diag), ref_cap))
                    << "gather_capture_diag " << mode_name(mode) << " len " << len;
                EXPECT_TRUE(same_bits(diag, ref_diag))
                    << "captured diagonal " << mode_name(mode) << " len " << len;
            }
        }
    }
}

TEST(Kernels, VectorOpsAgreeAcrossModesOnAwkwardLengths) {
    for (const Specials specials : {Specials::None, Specials::Inf, Specials::NaN}) {
        for (const std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{2},
                                    std::size_t{3}, std::size_t{5}, std::size_t{18}}) {
            const std::vector<double> a = edge_vector(n, specials);
            std::vector<double> b(n);
            for (std::size_t i = 0; i < n; ++i) {
                b[i] = 0.125 * static_cast<double>(i) + 0.5;
            }

            double ref_l1 = 0.0;
            double ref_dot = 0.0;
            std::vector<double> ref_axpy = b;
            {
                const KernelModeGuard guard(la::KernelMode::Scalar);
                ref_l1 = la::l1_distance(a, b);
                ref_dot = la::dot(a, b);
                la::axpy(-0.75, a, ref_axpy);
            }
            for (const la::KernelMode mode : kModes) {
                const KernelModeGuard guard(mode);
                EXPECT_TRUE(same_bits(la::l1_distance(a, b), ref_l1))
                    << "l1_distance " << mode_name(mode) << " n " << n;
                EXPECT_TRUE(same_bits(la::dot(a, b), ref_dot))
                    << "dot " << mode_name(mode) << " n " << n;
                std::vector<double> y = b;
                la::axpy(-0.75, a, y);
                EXPECT_TRUE(same_bits(y, ref_axpy))
                    << "axpy " << mode_name(mode) << " n " << n;
            }
        }
    }
}

TEST(Kernels, SimdModeAlwaysDispatchable) {
    // Whether or not the CPU has the extension, Simd mode must be safe to
    // select (it resolves to Blocked when simd_available() is false).
    const KernelModeGuard guard(la::KernelMode::Simd);
    const la::CsrMatrix m = edge_matrix();
    std::vector<double> x(m.cols(), 1.0);
    std::vector<double> y(m.rows(), 0.0);
    la::multiply_right(m, x, y);
    SUCCEED() << (la::simd_available() ? "simd bodies" : "blocked fallback");
}

// ---------------------------------------------------------------------------
// Batch (multi-RHS) kernels.  The contract mirrors the single-vector one,
// per column: extracting column c of a batch result must reproduce, bit for
// bit, the single-vector kernel applied to column c alone — in every mode,
// at every width, including the strided-layout edge widths (1, odd, vector
// width, vector width + 1, 2× vector width) and the ±inf / quiet-NaN payload
// classes.  Columns are made distinct (different zero positions, different
// scales) so a kernel that mixed columns up, skipped the wrong column's
// zero, or reused one column's q-scaling for another would be caught.
// ---------------------------------------------------------------------------

namespace {

constexpr std::size_t kBatchWidths[] = {1, 3, 4, 5, 8};

/// Column c of the batch input: the edge vector, per-column scaled, with a
/// column-dependent extra zero so the per-column zero-skip is observable.
std::vector<double> batch_column(std::size_t n, std::size_t c, Specials specials) {
    std::vector<double> v = edge_vector(n, specials);
    const double scale = 1.0 + 0.5 * static_cast<double>(c);
    for (std::size_t i = 0; i < n; ++i) {
        if (std::isfinite(v[i])) v[i] *= scale;  // leave special payloads untouched
    }
    if (n > 0) v[(2 * c + 1) % n] = 0.0;
    return v;
}

/// Row-major interleave: block[s*width + c] = columns[c][s].
std::vector<double> interleave(const std::vector<std::vector<double>>& columns) {
    const std::size_t width = columns.size();
    const std::size_t n = columns.empty() ? 0 : columns[0].size();
    std::vector<double> block(n * width);
    for (std::size_t s = 0; s < n; ++s) {
        for (std::size_t c = 0; c < width; ++c) block[s * width + c] = columns[c][s];
    }
    return block;
}

std::vector<double> deinterleave_column(std::span<const double> block, std::size_t width,
                                        std::size_t c) {
    std::vector<double> column(block.size() / width);
    for (std::size_t s = 0; s < column.size(); ++s) column[s] = block[s * width + c];
    return column;
}

void expect_batch_matches_single(Specials specials) {
    const la::CsrMatrix m = edge_matrix();
    const std::size_t n = m.rows();
    const double lambda = 3.5;

    for (const std::size_t width : kBatchWidths) {
        std::vector<std::vector<double>> columns;
        columns.reserve(width);
        for (std::size_t c = 0; c < width; ++c) columns.push_back(batch_column(n, c, specials));
        const std::vector<double> block = interleave(columns);

        for (const la::KernelMode mode : kModes) {
            const KernelModeGuard guard(mode);
            // Per-column references from the single-vector kernels in the
            // SAME mode (themselves bitwise identical across modes, by the
            // tests above).
            std::vector<std::vector<double>> ref_left(width, std::vector<double>(n));
            std::vector<std::vector<double>> ref_right(width, std::vector<double>(n));
            std::vector<std::vector<double>> ref_uleft(width, std::vector<double>(n));
            for (std::size_t c = 0; c < width; ++c) {
                la::multiply_left(m, columns[c], ref_left[c]);
                la::multiply_right(m, columns[c], ref_right[c]);
                la::uniformised_multiply_left(m, lambda, columns[c], ref_uleft[c]);
            }

            std::vector<double> out(n * width, 0.5);  // poisoned: must overwrite
            la::multiply_left_batch(m, block, out, width);
            for (std::size_t c = 0; c < width; ++c) {
                EXPECT_TRUE(same_bits(deinterleave_column(out, width, c), ref_left[c]))
                    << "multiply_left_batch " << mode_name(mode) << " width " << width
                    << " column " << c;
            }
            std::fill(out.begin(), out.end(), 0.5);
            la::multiply_right_batch(m, block, out, width);
            for (std::size_t c = 0; c < width; ++c) {
                EXPECT_TRUE(same_bits(deinterleave_column(out, width, c), ref_right[c]))
                    << "multiply_right_batch " << mode_name(mode) << " width " << width
                    << " column " << c;
            }
            std::fill(out.begin(), out.end(), 0.5);
            la::uniformised_multiply_left_batch(m, lambda, block, out, width);
            for (std::size_t c = 0; c < width; ++c) {
                EXPECT_TRUE(same_bits(deinterleave_column(out, width, c), ref_uleft[c]))
                    << "uniformised_multiply_left_batch " << mode_name(mode) << " width "
                    << width << " column " << c;
            }
        }
    }
}

}  // namespace

TEST(BatchKernels, ColumnsBitwiseIdenticalToSingleVectorKernels) {
    expect_batch_matches_single(Specials::None);
}

TEST(BatchKernels, InfinitiesPropagateIdenticallyPerColumn) {
    expect_batch_matches_single(Specials::Inf);
}

TEST(BatchKernels, NansPropagateIdenticallyPerColumn) {
    expect_batch_matches_single(Specials::NaN);
}

TEST(BatchKernels, WidthOneMatchesSingleVectorExactly) {
    // Degenerate width: the strided layout collapses to the plain one and
    // the batch kernels must be drop-in equal to their single-vector twins.
    const la::CsrMatrix m = edge_matrix();
    const std::size_t n = m.rows();
    const std::vector<double> x = edge_vector(n, Specials::None);
    for (const la::KernelMode mode : kModes) {
        const KernelModeGuard guard(mode);
        std::vector<double> single(n), batch(n, 0.5);
        la::uniformised_multiply_left(m, 3.5, x, single);
        la::uniformised_multiply_left_batch(m, 3.5, x, batch, 1);
        EXPECT_TRUE(same_bits(batch, single)) << mode_name(mode);
    }
}
