// Integration tests: steady-state availability against the paper's Table 2.
//
// Tolerances are tiered (see DESIGN.md §1):
// * DED rows are exact product-form quantities — we match to 5e-7.
// * Two-crew rows match to 2e-4.
// * One-crew rows: the paper's own table contains a semantic impossibility
//   (FFF-2 on Line 2 exceeds DED although dedicated repair dominates every
//   strategy), so those digits carry solver noise; we check to 3e-3 and
//   additionally assert the exact semantic invariants.
#include <gtest/gtest.h>

#include "arcade/measures.hpp"
#include "watertree/watertree.hpp"

namespace wt = arcade::watertree;
namespace core = arcade::core;

namespace {

double line_availability(const core::ArcadeModel& model,
                         core::Encoding encoding = core::Encoding::Lumped) {
    core::CompileOptions options;
    options.encoding = encoding;
    const auto compiled = core::compile(model, options);
    return core::availability(compiled);
}

const wt::Strategy& strategy_named(const std::string& name) {
    static const auto all = wt::paper_strategies();
    for (const auto& s : all) {
        if (s.name == name) return s;
    }
    throw std::runtime_error("unknown strategy " + name);
}

}  // namespace

TEST(WatertreeAvailability, DedicatedMatchesPaperExactly) {
    const double a1 = line_availability(wt::line1(strategy_named("DED")));
    const double a2 = line_availability(wt::line2(strategy_named("DED")));
    EXPECT_NEAR(a1, 0.7442018, 5e-7);
    EXPECT_NEAR(a2, 0.8186317, 5e-7);
    EXPECT_NEAR(core::combined_availability(a1, a2), 0.9536063, 5e-7);
}

TEST(WatertreeAvailability, DedicatedMatchesProductForm) {
    // Closed form: independent 2-state components.
    const auto avail = [](double mttf, double mttr) { return mttf / (mttf + mttr); };
    const double st = avail(2000, 5);
    const double sf = avail(1000, 100);
    const double res = avail(6000, 12);
    const double p = avail(500, 1);
    const double pumps1 = p * p * p * p + 4 * p * p * p * (1 - p);  // >=3 of 4
    const double expected1 = st * st * st * sf * sf * sf * res * pumps1;
    EXPECT_NEAR(line_availability(wt::line1(strategy_named("DED"))), expected1, 1e-9);

    const double pumps2 = p * p * p + 3 * p * p * (1 - p);  // >=2 of 3
    const double expected2 = st * st * st * sf * sf * res * pumps2;
    EXPECT_NEAR(line_availability(wt::line2(strategy_named("DED"))), expected2, 1e-9);
}

TEST(WatertreeAvailability, TwoCrewRowsMatchPaper) {
    EXPECT_NEAR(line_availability(wt::line2(strategy_named("FRF-2"))), 0.8186312, 2e-4);
    EXPECT_NEAR(line_availability(wt::line2(strategy_named("FFF-2"))), 0.8186662, 2e-4);
    EXPECT_NEAR(line_availability(wt::line1(strategy_named("FRF-2"))), 0.7439214, 2e-4);
    EXPECT_NEAR(line_availability(wt::line1(strategy_named("FFF-2"))), 0.7440022, 2e-4);
}

TEST(WatertreeAvailability, OneCrewRowsMatchPaperCoarsely) {
    EXPECT_NEAR(line_availability(wt::line2(strategy_named("FRF-1"))), 0.8101931, 3e-3);
    EXPECT_NEAR(line_availability(wt::line2(strategy_named("FFF-1"))), 0.8120302, 3e-3);
    EXPECT_NEAR(line_availability(wt::line1(strategy_named("FRF-1"))), 0.7225597, 3e-3);
    // The paper's FFF-1 row deviates most from the exact solution: with a
    // work-conserving single crew the ST/SF/RES order provably has little
    // effect on availability, so FFF-1 ~ FRF-1 in any exact solution
    // (ours: 0.72163 vs 0.72240).  See EXPERIMENTS.md.
    EXPECT_NEAR(line_availability(wt::line1(strategy_named("FFF-1"))), 0.7273540, 7e-3);
}

TEST(WatertreeAvailability, OneCrewPoliciesNearlyTie) {
    // The work-conservation argument (DESIGN.md §1): with one crew the line
    // is up only when the whole backlog except one pump is cleared, so the
    // service order among always-required components barely matters.
    const double frf1 = line_availability(wt::line1(strategy_named("FRF-1")));
    const double fff1 = line_availability(wt::line1(strategy_named("FFF-1")));
    EXPECT_NEAR(frf1, fff1, 2e-3);
}

TEST(WatertreeAvailability, DedicatedDominatesEveryStrategy) {
    // Semantic invariant the paper's Table 2 itself violates (FFF-2 line 2):
    // dedicated repair is an upper bound on availability.
    const double ded = line_availability(wt::line2(strategy_named("DED")));
    for (const auto& s : wt::paper_strategies()) {
        if (s.name == "DED") continue;
        EXPECT_LE(line_availability(wt::line2(s)), ded + 1e-9) << s.name;
    }
}

TEST(WatertreeAvailability, TwoCrewsBeatOneCrew) {
    EXPECT_GT(line_availability(wt::line2(strategy_named("FRF-2"))),
              line_availability(wt::line2(strategy_named("FRF-1"))));
    EXPECT_GT(line_availability(wt::line2(strategy_named("FFF-2"))),
              line_availability(wt::line2(strategy_named("FFF-1"))));
}

TEST(WatertreeAvailability, LumpedAgreesWithIndividualEncoding) {
    for (const auto& name : {"DED", "FRF-1", "FRF-2", "FFF-1", "FFF-2"}) {
        const auto model = wt::line2(strategy_named(name));
        const double lumped = line_availability(model, core::Encoding::Lumped);
        const double individual = line_availability(model, core::Encoding::Individual);
        EXPECT_NEAR(lumped, individual, 1e-9) << name;
    }
}
