// Golden comparisons for the sweep migration: every paper figure/table that
// bench/ renders through a declarative ScenarioGrid must emit rows
// byte-identical to the hand-rolled measure loops the harnesses carried
// before the migration.  Each test renders the sweep report through
// sweep::paper::render_* and rebuilds the expected text with direct
// compile_line / *_series calls — the exact code shape of the pre-migration
// harness — in an independent session.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "arcade/measures.hpp"
#include "support/series.hpp"
#include "sweep/sweep.hpp"

namespace core = arcade::core;
namespace engine = arcade::engine;
namespace sweep = arcade::sweep;
namespace wt = arcade::watertree;

namespace {

using Renderer = void (*)(const sweep::SweepReport&, std::ostream&);

/// Evaluates `grid` through the runner (its own session) and renders it.
std::string rendered_by_sweep(const sweep::ScenarioGrid& grid, Renderer render) {
    engine::AnalysisSession session;
    sweep::SweepRunner runner(session);
    const auto report = runner.run(grid);
    std::ostringstream os;
    render(report, os);
    return os.str();
}

std::string figure_text(const arcade::Figure& fig) {
    std::ostringstream os;
    fig.print(os);
    return os.str();
}

/// The hand-rolled shape shared by figs 4–11: compile each strategy's line
/// (session-cached, lumped), seed the disaster, walk one series per curve.
std::string handrolled_figure(int line, const std::vector<const char*>& strategies,
                              sweep::MeasureKind kind, double service_level,
                              const std::vector<double>& times, const std::string& title,
                              const std::string& x_label, const std::string& y_label) {
    engine::AnalysisSession session;
    const auto transient = core::session_transient(session);
    arcade::Figure fig(title, x_label, y_label);
    fig.set_times(times);
    for (const auto* name : strategies) {
        const auto model = wt::compile_line(session, line, wt::strategy(name),
                                            core::Encoding::Lumped);
        const auto disaster = line == 2 ? wt::disaster2() : wt::disaster1(model->model());
        switch (kind) {
            case sweep::MeasureKind::Survivability:
                fig.add_series(name, core::survivability_series(*model, disaster,
                                                                service_level, times,
                                                                transient));
                break;
            case sweep::MeasureKind::InstantaneousCost:
                fig.add_series(name, core::instantaneous_cost_series(*model, disaster,
                                                                     times, transient));
                break;
            case sweep::MeasureKind::AccumulatedCost:
                fig.add_series(name, core::accumulated_cost_series(*model, disaster,
                                                                   times, transient));
                break;
            default:
                ADD_FAILURE() << "unsupported hand-rolled measure";
        }
    }
    return figure_text(fig);
}

}  // namespace

TEST(SweepGolden, Fig3ReliabilityRowsAreByteIdentical) {
    const auto times = arcade::time_grid(1000.0, 101);
    engine::AnalysisSession session;
    const auto transient = core::session_transient(session);
    core::CompileOptions lumped;
    lumped.encoding = core::Encoding::Lumped;
    const auto& ded = wt::strategy("DED");  // strategy irrelevant without repair
    const auto l1 = session.compile(core::without_repair(wt::line1(ded)), lumped);
    const auto l2 = session.compile(core::without_repair(wt::line2(ded)), lumped);

    arcade::Figure fig("Figure 3: reliability over time", "t in hours", "Probability (S)");
    fig.set_times(times);
    fig.add_series("Reliability_line1", core::reliability_series(*l1, times, transient));
    fig.add_series("Reliability_line2", core::reliability_series(*l2, times, transient));

    EXPECT_EQ(rendered_by_sweep(sweep::paper::fig3(), sweep::paper::render_fig3),
              figure_text(fig));
}

TEST(SweepGolden, Fig4SurvivabilityRowsAreByteIdentical) {
    EXPECT_EQ(rendered_by_sweep(sweep::paper::fig4(), sweep::paper::render_fig4),
              handrolled_figure(
                  1, {"DED", "FRF-1", "FRF-2"}, sweep::MeasureKind::Survivability,
                  1.0 / 3.0, arcade::time_grid(4.5, 91),
                  "Figure 4: survivability Line 1, Disaster 1, X1 (service >= 1/3)",
                  "t in hours", "Probability (S)"));
}

TEST(SweepGolden, Fig5SurvivabilityRowsAreByteIdentical) {
    EXPECT_EQ(rendered_by_sweep(sweep::paper::fig5(), sweep::paper::render_fig5),
              handrolled_figure(
                  1, {"DED", "FRF-1", "FRF-2"}, sweep::MeasureKind::Survivability,
                  2.0 / 3.0, arcade::time_grid(4.5, 91),
                  "Figure 5: survivability Line 1, Disaster 1, X2 (service >= 2/3)",
                  "t in hours", "Probability (S)"));
}

TEST(SweepGolden, Fig6InstantaneousCostRowsAreByteIdentical) {
    EXPECT_EQ(rendered_by_sweep(sweep::paper::fig6(), sweep::paper::render_fig6),
              handrolled_figure(1, {"DED", "FRF-1", "FRF-2"},
                                sweep::MeasureKind::InstantaneousCost, 1.0,
                                arcade::time_grid(4.5, 91),
                                "Figure 6: instantaneous cost Line 1, Disaster 1",
                                "t in hours", "Impuls Costs (I)"));
}

TEST(SweepGolden, Fig7AccumulatedCostRowsAreByteIdentical) {
    EXPECT_EQ(rendered_by_sweep(sweep::paper::fig7(), sweep::paper::render_fig7),
              handrolled_figure(1, {"DED", "FRF-1", "FRF-2"},
                                sweep::MeasureKind::AccumulatedCost, 1.0,
                                arcade::time_grid(10.0, 101),
                                "Figure 7: accumulated cost Line 1, Disaster 1",
                                "t in hours", "Cumulative costs (I)"));
}

TEST(SweepGolden, Fig8SurvivabilityRowsAreByteIdentical) {
    EXPECT_EQ(rendered_by_sweep(sweep::paper::fig8(), sweep::paper::render_fig8),
              handrolled_figure(
                  2, {"DED", "FFF-1", "FFF-2", "FRF-1", "FRF-2"},
                  sweep::MeasureKind::Survivability, 1.0 / 3.0,
                  arcade::time_grid(100.0, 101),
                  "Figure 8: survivability Line 2, Disaster 2, X1 (service >= 1/3)",
                  "t in hours", "Probability (S)"));
}

TEST(SweepGolden, Fig9SurvivabilityRowsAreByteIdentical) {
    EXPECT_EQ(rendered_by_sweep(sweep::paper::fig9(), sweep::paper::render_fig9),
              handrolled_figure(
                  2, {"DED", "FFF-1", "FFF-2", "FRF-1", "FRF-2"},
                  sweep::MeasureKind::Survivability, 2.0 / 3.0,
                  arcade::time_grid(100.0, 101),
                  "Figure 9: survivability Line 2, Disaster 2, X3 (service >= 2/3)",
                  "t in hours", "Probability (S)"));
}

TEST(SweepGolden, Fig10InstantaneousCostRowsAreByteIdentical) {
    EXPECT_EQ(rendered_by_sweep(sweep::paper::fig10(), sweep::paper::render_fig10),
              handrolled_figure(2, {"FFF-1", "FFF-2", "FRF-1", "FRF-2"},
                                sweep::MeasureKind::InstantaneousCost, 1.0,
                                arcade::time_grid(50.0, 101),
                                "Figure 10: instantaneous cost Line 2, Disaster 2",
                                "t in hours", "Impuls costs (I)"));
}

TEST(SweepGolden, Fig11AccumulatedCostRowsAreByteIdentical) {
    EXPECT_EQ(rendered_by_sweep(sweep::paper::fig11(), sweep::paper::render_fig11),
              handrolled_figure(2, {"FFF-1", "FFF-2", "FRF-1", "FRF-2"},
                                sweep::MeasureKind::AccumulatedCost, 1.0,
                                arcade::time_grid(50.0, 101),
                                "Figure 11: accumulated cost Line 2, Disaster 2",
                                "t in hours", "Cumulative costs (I)"));
}

TEST(SweepGolden, Table1StateSpaceRowsAreByteIdentical) {
    // The pre-migration harness: per strategy, individual + lumped compiles
    // of both lines, rendered with the paper's values in parentheses.
    engine::AnalysisSession session;
    core::CompileOptions lumped;
    lumped.encoding = core::Encoding::Lumped;

    struct PaperRow {
        const char* name;
        std::size_t s1, t1, s2, t2;
    };
    const PaperRow paper[] = {
        {"DED", 2048, 22528, 512, 4606},
        {"FRF-1", 111809, 388478, 8129, 25838},
        {"FRF-2", 111809, 500275, 8129, 33957},
        {"FFF-1", 111809, 367106, 8129, 23354},
        {"FFF-2", 111809, 478903, 8129, 31473},
    };
    std::ostringstream expected;
    expected << "=== Table 1: state space for repair strategies ===\n";
    expected << "(paper values in parentheses; states must match exactly;\n"
                " FRF/FFF transition counts are PRISM-encoding artifacts in the\n"
                " paper — our encoding is policy-independent, see DESIGN.md)\n\n";
    arcade::Table table({"Strategy", "L1 states", "L1 trans.", "L2 states", "L2 trans.",
                         "L1 lumped", "L2 lumped"});
    for (const auto& row : paper) {
        const auto& strat = wt::strategy(row.name);
        const auto l1 = session.compile(wt::line1(strat));
        const auto l2 = session.compile(wt::line2(strat));
        const auto l1_lumped = session.compile(wt::line1(strat), lumped);
        const auto l2_lumped = session.compile(wt::line2(strat), lumped);
        table.add_row({row.name,
                       std::to_string(l1->state_count()) + " (" + std::to_string(row.s1) + ")",
                       std::to_string(l1->transition_count()) + " (" + std::to_string(row.t1) +
                           ")",
                       std::to_string(l2->state_count()) + " (" + std::to_string(row.s2) + ")",
                       std::to_string(l2->transition_count()) + " (" + std::to_string(row.t2) +
                           ")",
                       std::to_string(l1_lumped->state_count()),
                       std::to_string(l2_lumped->state_count())});
    }
    table.print(expected);

    EXPECT_EQ(rendered_by_sweep(sweep::paper::table1(), sweep::paper::render_table1),
              expected.str());
}

TEST(SweepGolden, AblationEncodingsRowsAreByteIdentical) {
    // The pre-migration harness: per line and strategy, session-cached
    // individual + lumped compiles, availability off each, hand-formatted.
    engine::AnalysisSession session;
    core::CompileOptions lumped;
    lumped.encoding = core::Encoding::Lumped;
    std::ostringstream expected;
    expected << "=== Ablation: individual vs lumped encoding ===\n\n";
    arcade::Table table({"Model", "Indiv. states", "Lumped states", "Reduction",
                         "Indiv. avail", "Lumped avail", "|diff|"});
    char buf[64];
    for (const auto* line : {"line1", "line2"}) {
        for (const auto* name : {"DED", "FRF-1", "FRF-2", "FFF-1", "FFF-2"}) {
            const auto model = std::string(line) == "line1"
                                   ? wt::line1(wt::strategy(name))
                                   : wt::line2(wt::strategy(name));
            const auto individual = session.compile(model);
            const auto lumped_model = session.compile(model, lumped);
            const double ai = core::availability(session, individual);
            const double al = core::availability(session, lumped_model);
            std::vector<std::string> cells;
            cells.emplace_back(std::string(line) + " " + name);
            cells.emplace_back(std::to_string(individual->state_count()));
            cells.emplace_back(std::to_string(lumped_model->state_count()));
            std::snprintf(buf, sizeof buf, "%.1fx",
                          static_cast<double>(individual->state_count()) /
                              static_cast<double>(lumped_model->state_count()));
            cells.emplace_back(buf);
            std::snprintf(buf, sizeof buf, "%.7f", ai);
            cells.emplace_back(buf);
            std::snprintf(buf, sizeof buf, "%.7f", al);
            cells.emplace_back(buf);
            std::snprintf(buf, sizeof buf, "%.1e", std::abs(ai - al));
            cells.emplace_back(buf);
            table.add_row(std::move(cells));
        }
    }
    table.print(expected);
    expected << "\n(measures agree to solver precision; the lumped encoding is the\n"
                " 'drastic reduction' the paper's conclusion anticipates)\n";

    engine::AnalysisSession sweep_session;
    sweep::SweepRunner runner(sweep_session);
    const auto report = runner.run(sweep::studies::ablation_encodings());
    std::ostringstream actual;
    sweep::studies::render_ablation_encodings(report, actual);
    EXPECT_EQ(actual.str(), expected.str());
}

TEST(SweepGolden, AblationPreemptionRowsAreByteIdentical) {
    // The pre-migration harness: lumped line-2 compiles of each strategy
    // and its preemptive twin, availability + survivability to full
    // service at 10 h after Disaster 2, plus the individual-encoding
    // state-count footnote.
    engine::AnalysisSession session;
    core::CompileOptions lumped;
    lumped.encoding = core::Encoding::Lumped;
    const auto compile_variant = [&](const char* policy_name, bool preemptive) {
        auto strat = wt::strategy(policy_name);
        strat.preemptive = preemptive;
        strat.name += preemptive ? "-pre" : "";
        return session.compile(wt::line2(strat), lumped);
    };
    std::ostringstream expected;
    expected << "=== Ablation: non-preemptive (paper) vs preemptive scheduling ===\n\n";
    arcade::Table table({"Strategy", "Avail (non-pre)", "Avail (preempt)",
                         "Surv@10h X4 (non-pre)", "Surv@10h X4 (preempt)"});
    const auto disaster = wt::disaster2();
    char buf[64];
    for (const auto* name : {"FRF-1", "FRF-2", "FFF-1", "FFF-2"}) {
        const auto np = compile_variant(name, false);
        const auto pre = compile_variant(name, true);
        std::vector<std::string> cells;
        cells.emplace_back(name);
        std::snprintf(buf, sizeof buf, "%.7f", core::availability(session, np));
        cells.emplace_back(buf);
        std::snprintf(buf, sizeof buf, "%.7f", core::availability(session, pre));
        cells.emplace_back(buf);
        std::snprintf(buf, sizeof buf, "%.5f", core::survivability(*np, disaster, 1.0, 10.0));
        cells.emplace_back(buf);
        std::snprintf(buf, sizeof buf, "%.5f",
                      core::survivability(*pre, disaster, 1.0, 10.0));
        cells.emplace_back(buf);
        table.add_row(std::move(cells));
    }
    table.print(expected);
    expected << "\n(state spaces also differ: preemption needs no tracked in-repair\n"
                " slot, so the individual encoding shrinks from 8129 states to "
             << [&] {
                    auto strat = wt::strategy("FRF-1");
                    strat.preemptive = true;
                    strat.name += "-pre";
                    return session.compile(wt::line2(strat))->state_count();
                }()
             << ")\n";

    engine::AnalysisSession sweep_session;
    sweep::SweepRunner runner(sweep_session);
    const auto report = runner.run(sweep::studies::ablation_preemption());
    const auto sizes = runner.run(sweep::studies::ablation_preemption_sizes());
    std::ostringstream actual;
    sweep::studies::render_ablation_preemption(report, sizes, actual);
    EXPECT_EQ(actual.str(), expected.str());
}

TEST(SweepGolden, Table2AvailabilityRowsAreByteIdentical) {
    engine::AnalysisSession session;
    core::CompileOptions lumped;
    lumped.encoding = core::Encoding::Lumped;

    struct PaperRow {
        const char* name;
        double line1, line2, combined;
    };
    const PaperRow paper[] = {
        {"DED", 0.7442018, 0.8186317, 0.9536063},
        {"FRF-1", 0.7225597, 0.8101931, 0.9473399},
        {"FRF-2", 0.7439214, 0.8186312, 0.9535554},
        {"FFF-1", 0.7273540, 0.8120302, 0.9487508},
        {"FFF-2", 0.7440022, 0.8186662, 0.9535790},
    };
    std::ostringstream expected;
    expected << "=== Table 2: availability for repair strategies ===\n";
    expected << "(paper values in parentheses; DED matches to 1e-7, two-crew\n"
                " rows to ~1e-4; the paper's one-crew digits carry solver noise —\n"
                " its own FFF-2 line-2 exceeds DED, which is semantically\n"
                " impossible.  See EXPERIMENTS.md.)\n\n";
    arcade::Table table({"Strategy", "Line 1 (paper)", "Line 2 (paper)", "Combined (paper)"});
    char buf[128];
    for (const auto& row : paper) {
        const auto& strat = wt::strategy(row.name);
        const double a1 =
            core::availability(session, session.compile(wt::line1(strat), lumped));
        const double a2 =
            core::availability(session, session.compile(wt::line2(strat), lumped));
        const double combined = core::combined_availability(a1, a2);
        std::vector<std::string> cells;
        cells.emplace_back(row.name);
        std::snprintf(buf, sizeof buf, "%.7f (%.7f)", a1, row.line1);
        cells.emplace_back(buf);
        std::snprintf(buf, sizeof buf, "%.7f (%.7f)", a2, row.line2);
        cells.emplace_back(buf);
        std::snprintf(buf, sizeof buf, "%.7f (%.7f)", combined, row.combined);
        cells.emplace_back(buf);
        table.add_row(std::move(cells));
    }
    table.print(expected);

    EXPECT_EQ(rendered_by_sweep(sweep::paper::table2(), sweep::paper::render_table2),
              expected.str());
}
