// Unit tests: the XML DOM parser/writer and the Arcade-XML model format.
#include <gtest/gtest.h>

#include "arcade/compiler.hpp"
#include "arcade/measures.hpp"
#include "arcade/xml_io.hpp"
#include "support/errors.hpp"
#include "watertree/watertree.hpp"
#include "xml/xml.hpp"

namespace xml = arcade::xml;
namespace core = arcade::core;
namespace wt = arcade::watertree;

TEST(Xml, ParsesElementsAttributesText) {
    const auto root = xml::parse_document(
        "<?xml version=\"1.0\"?>\n"
        "<root a=\"1\" b='two'>\n"
        "  <child>hello</child>\n"
        "  <empty/>\n"
        "</root>");
    EXPECT_EQ(root->name(), "root");
    EXPECT_EQ(root->attribute("a"), "1");
    EXPECT_EQ(root->attribute("b"), "two");
    ASSERT_EQ(root->children().size(), 2u);
    EXPECT_EQ(root->first_child("child")->text(), "hello");
    EXPECT_TRUE(root->first_child("empty")->children().empty());
}

TEST(Xml, DecodesEntitiesAndCdata) {
    const auto root = xml::parse_document(
        "<r attr=\"a&lt;b&amp;c\">x &gt; y <![CDATA[<raw&stuff>]]></r>");
    EXPECT_EQ(root->attribute("attr"), "a<b&c");
    EXPECT_NE(root->text().find("x > y"), std::string::npos);
    EXPECT_NE(root->text().find("<raw&stuff>"), std::string::npos);
}

TEST(Xml, SkipsCommentsAndDoctype) {
    const auto root = xml::parse_document(
        "<!-- header --><!DOCTYPE whatever><r><!-- inner --><c/></r>");
    EXPECT_EQ(root->name(), "r");
    EXPECT_EQ(root->children().size(), 1u);
}

TEST(Xml, RejectsMalformedDocuments) {
    EXPECT_THROW(xml::parse_document("<a><b></a></b>"), arcade::ParseError);  // mismatch
    EXPECT_THROW(xml::parse_document("<a>"), arcade::ParseError);             // unterminated
    EXPECT_THROW(xml::parse_document("<a attr=1/>"), arcade::ParseError);     // unquoted
    EXPECT_THROW(xml::parse_document("<a/><b/>"), arcade::ParseError);        // two roots
    EXPECT_THROW(xml::parse_document("plain text"), arcade::ParseError);
    EXPECT_THROW(xml::parse_document("<a>&unknown;</a>"), arcade::ParseError);
}

TEST(Xml, WriteParseRoundTrip) {
    xml::Element root("config");
    root.set_attribute("version", "1");
    auto child = root.add_child("item");
    child->set_attribute("name", "a<b");  // must be escaped
    child->set_text("5 & 6");
    const std::string text = xml::write_document(root);
    const auto back = xml::parse_document(text);
    EXPECT_EQ(back->attribute("version"), "1");
    EXPECT_EQ(back->first_child("item")->attribute("name"), "a<b");
    EXPECT_EQ(back->first_child("item")->text(), "5 & 6");
}

TEST(ArcadeXml, WaterTreatmentRoundTripPreservesEverything) {
    for (const auto& strat : wt::paper_strategies()) {
        const auto original = wt::line2(strat);
        const auto restored = core::model_from_xml(core::model_to_xml(original));
        ASSERT_EQ(restored.components.size(), original.components.size());
        ASSERT_EQ(restored.repair_units.size(), original.repair_units.size());
        ASSERT_EQ(restored.phases.size(), original.phases.size());
        EXPECT_EQ(restored.repair_units[0].policy, original.repair_units[0].policy);
        EXPECT_EQ(restored.repair_units[0].crews, original.repair_units[0].crews);
        // the restored model compiles to the same chain
        const auto a = core::compile(original);
        const auto b = core::compile(restored);
        EXPECT_EQ(a.state_count(), b.state_count()) << strat.name;
        EXPECT_EQ(a.transition_count(), b.transition_count()) << strat.name;
    }
}

TEST(ArcadeXml, HandWrittenModelParses) {
    const char* text = R"(<?xml version="1.0"?>
<arcade name="tiny">
  <components>
    <component name="cpu" mttf="100" mttr="2"/>
    <component name="disk1" mttf="200" mttr="8" failedCostRate="5"/>
    <component name="disk2" mttf="200" mttr="8" failedCostRate="5"/>
  </components>
  <repairUnits>
    <repairUnit name="crew" policy="priority" crews="1">
      <serves component="cpu" priority="0"/>
      <serves component="disk1" priority="1"/>
      <serves component="disk2" priority="1"/>
    </repairUnit>
  </repairUnits>
  <spareUnits>
    <spareUnit name="disks" required="1">
      <manages component="disk1"/>
      <manages component="disk2"/>
    </spareUnit>
  </spareUnits>
  <serviceModel>
    <phase name="compute" required="1">
      <member component="cpu"/>
    </phase>
    <phase name="storage" required="1" spareManaged="true">
      <member component="disk1"/>
      <member component="disk2"/>
    </phase>
  </serviceModel>
</arcade>)";
    const auto model = core::model_from_xml(text);
    EXPECT_EQ(model.components.size(), 3u);
    EXPECT_EQ(model.repair_units[0].policy, core::RepairPolicy::Priority);
    EXPECT_EQ(model.components[1].failed_cost_rate, 5.0);
    const auto compiled = core::compile(model);
    EXPECT_GT(compiled.state_count(), 0u);
    EXPECT_GT(core::availability(compiled), 0.9);
}

TEST(ArcadeXml, MissingSectionsAreErrors) {
    EXPECT_THROW(core::model_from_xml("<arcade/>"), arcade::ParseError);
    EXPECT_THROW(core::model_from_xml("<other/>"), arcade::ParseError);
    EXPECT_THROW(
        core::model_from_xml("<arcade><components/><serviceModel/></arcade>"),
        arcade::Error);
}
