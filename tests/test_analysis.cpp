// Unit tests: abstract interpretation (analysis/interval.hpp), the model
// linter (analysis/lint.hpp) with its planted-bug fixtures, expression byte
// offsets, and the watertree lint-clean golden.
#include <gtest/gtest.h>

#include <string>

#include "analysis/interval.hpp"
#include "analysis/lint.hpp"
#include "arcade/compiler.hpp"
#include "arcade/modules_compiler.hpp"
#include "expr/expr.hpp"
#include "prism/prism_parser.hpp"
#include "support/errors.hpp"
#include "watertree/watertree.hpp"

namespace analysis = arcade::analysis;
namespace core = arcade::core;
namespace expr = arcade::expr;
namespace prism = arcade::prism;
namespace watertree = arcade::watertree;

namespace {

analysis::LintReport lint_prism(const std::string& source) {
    prism::PrismParseInfo info;
    const auto system = prism::parse_prism(source, &info);
    analysis::LintOptions options;
    options.unused_formulas = std::move(info.unused_formulas);
    return analysis::lint(system, options);
}

/// Asserts the report holds exactly one diagnostic, with the given check ID
/// and severity; returns it for further inspection.
analysis::Diagnostic expect_single(const analysis::LintReport& report,
                                   const std::string& id,
                                   analysis::Severity severity) {
    EXPECT_EQ(report.diagnostics.size(), 1u) << report.to_string();
    if (report.diagnostics.size() != 1) return {};
    const auto& d = report.diagnostics.front();
    EXPECT_EQ(d.id, id) << d.to_string();
    EXPECT_EQ(static_cast<int>(d.severity), static_cast<int>(severity))
        << d.to_string();
    return d;
}

}  // namespace

// ---------------------------------------------------------------------------
// Abstract interpretation
// ---------------------------------------------------------------------------

TEST(Interval, LiteralAndIdentifier) {
    analysis::AbstractEnv env;
    env["x"] = analysis::AbstractValue::numeric(0, 3, true);
    const auto v = analysis::abstract_eval(expr::parse_expression("x + 1"), env);
    EXPECT_TRUE(v.has_numeric);
    EXPECT_EQ(v.lo, 1.0);
    EXPECT_EQ(v.hi, 4.0);
    EXPECT_TRUE(v.integral);
    EXPECT_FALSE(v.may_fail);
    EXPECT_FALSE(v.has_bool());

    // Unknown identifiers evaluate to top: anything, including failure.
    const auto t = analysis::abstract_eval(expr::parse_expression("mystery"), env);
    EXPECT_TRUE(t.has_numeric);
    EXPECT_TRUE(t.has_bool());
    EXPECT_TRUE(t.may_fail);
}

TEST(Interval, MultiplicationTakesCornerExtremes) {
    analysis::AbstractEnv env;
    env["x"] = analysis::AbstractValue::numeric(-2, 3, true);
    env["y"] = analysis::AbstractValue::numeric(-5, 1, true);
    const auto v = analysis::abstract_eval(expr::parse_expression("x * y"), env);
    EXPECT_EQ(v.lo, -15.0);  // 3 * -5
    EXPECT_EQ(v.hi, 10.0);   // -2 * -5
}

TEST(Interval, DivisionByIntervalContainingZeroMayFail) {
    analysis::AbstractEnv env;
    env["x"] = analysis::AbstractValue::numeric(0, 3, true);
    const auto v = analysis::abstract_eval(expr::parse_expression("1 / x"), env);
    EXPECT_TRUE(v.may_fail);  // x = 0 divides by zero
    EXPECT_TRUE(v.has_numeric);

    env["x"] = analysis::AbstractValue::numeric(1, 4, true);
    const auto w = analysis::abstract_eval(expr::parse_expression("1 / x"), env);
    EXPECT_FALSE(w.may_fail);
    EXPECT_EQ(w.lo, 0.25);
    EXPECT_EQ(w.hi, 1.0);
    EXPECT_FALSE(w.integral);  // 1/2 is not whole
}

TEST(Interval, ComparisonsAndBooleans) {
    analysis::AbstractEnv env;
    env["x"] = analysis::AbstractValue::numeric(0, 3, true);
    const auto lt = analysis::abstract_eval(expr::parse_expression("x < 2"), env);
    EXPECT_TRUE(lt.can_true);
    EXPECT_TRUE(lt.can_false);

    const auto always = analysis::abstract_eval(expr::parse_expression("x >= 0"), env);
    EXPECT_TRUE(always.can_true);
    EXPECT_FALSE(always.can_false);

    const auto never = analysis::abstract_eval(expr::parse_expression("x > 5"), env);
    EXPECT_FALSE(never.can_true);
    EXPECT_TRUE(never.can_false);
}

TEST(Interval, ShortCircuitAndSkipsUnreachableRhsFailure) {
    analysis::AbstractEnv env;
    env["x"] = analysis::AbstractValue::numeric(1, 2, true);
    // Lhs is provably false, so the failing rhs (numeric in a boolean
    // position) is never evaluated — exactly the concrete semantics.
    const auto v = analysis::abstract_eval(expr::parse_expression("x > 5 & x"), env);
    EXPECT_FALSE(v.can_true);
    EXPECT_TRUE(v.can_false);
    EXPECT_FALSE(v.may_fail);
}

TEST(Interval, RefineTightensByWholeUnits) {
    analysis::AbstractEnv env;
    env["s"] = analysis::AbstractValue::numeric(0, 2, true);
    env["q"] = analysis::AbstractValue::numeric(0, 5, true);
    const auto cond = expr::parse_expression("s = 1 & q > 1");
    const auto refined = analysis::refine(env, cond, true);
    EXPECT_EQ(refined.at("s").lo, 1.0);
    EXPECT_EQ(refined.at("s").hi, 1.0);
    EXPECT_EQ(refined.at("q").lo, 2.0);  // q > 1 over integers is q >= 2
    EXPECT_EQ(refined.at("q").hi, 5.0);

    // The watertree dequeue-shift pattern: q-1 under the refined env stays
    // inside the declared [0, 5].
    const auto shifted =
        analysis::abstract_eval(expr::parse_expression("q - 1"), refined);
    EXPECT_EQ(shifted.lo, 1.0);
    EXPECT_EQ(shifted.hi, 4.0);
}

TEST(Interval, RefineFalseAssumptionAndEmptyIntervals) {
    analysis::AbstractEnv env;
    env["x"] = analysis::AbstractValue::numeric(0, 3, true);
    // Assuming !(x < 2) leaves x in [2, 3].
    const auto refined =
        analysis::refine(env, expr::parse_expression("x < 2"), false);
    EXPECT_EQ(refined.at("x").lo, 2.0);
    EXPECT_EQ(refined.at("x").hi, 3.0);

    // An impossible assumption empties the interval entirely.
    const auto empty = analysis::refine(env, expr::parse_expression("x > 5"), true);
    EXPECT_FALSE(empty.at("x").has_numeric);
}

TEST(Interval, IteJoinsOnlyReachableBranches) {
    analysis::AbstractEnv env;
    env["x"] = analysis::AbstractValue::numeric(0, 3, true);
    const auto v = analysis::abstract_eval(
        expr::parse_expression("x > 0 ? x - 1 : x"), env);
    EXPECT_EQ(v.lo, 0.0);
    EXPECT_EQ(v.hi, 2.0);  // then: [0,2] under x in [1,3]; else: [0,0]
    EXPECT_FALSE(v.may_fail);
}

// ---------------------------------------------------------------------------
// Planted-bug fixtures: each triggers exactly one check
// ---------------------------------------------------------------------------

TEST(Lint, AR001UnknownIdentifier) {
    const auto d = expect_single(lint_prism(R"(
ctmc
module m
  x : [0..3] init 0;
  [] x<3 & z>0 -> 1.0 : (x'=x+1);
endmodule
)"),
                                 "AR001", analysis::Severity::Error);
    EXPECT_NE(d.message.find("'z'"), std::string::npos) << d.to_string();
}

TEST(Lint, AR002UnsatisfiableGuard) {
    const auto d = expect_single(lint_prism(R"(
ctmc
module m
  x : [0..3] init 0;
  [] x>5 -> 1.0 : (x'=0);
endmodule
)"),
                                 "AR002", analysis::Severity::Warning);
    EXPECT_NE(d.message.find("never satisfiable"), std::string::npos);
}

TEST(Lint, AR003OverlappingSynchronisedGuards) {
    const auto d = expect_single(lint_prism(R"(
ctmc
module m
  x : [0..10] init 0;
  [step] x<5 -> 1.0 : (x'=x+1);
  [step] x>2 -> 1.0 : (x'=x-1);
endmodule
)"),
                                 "AR003", analysis::Severity::Warning);
    EXPECT_NE(d.message.find("witness: x=3"), std::string::npos) << d.to_string();
}

TEST(Lint, AR003NotRaisedForInterleavedOrDisjointGuards) {
    // Same commands, empty action: interleaved racing is legitimate CTMC
    // semantics.
    EXPECT_TRUE(lint_prism(R"(
ctmc
module m
  x : [0..10] init 0;
  [] x<5 -> 1.0 : (x'=x+1);
  [] x>2 -> 1.0 : (x'=x-1);
endmodule
)")
                    .clean());
    // Synchronised but disjoint guards are fine too.
    EXPECT_TRUE(lint_prism(R"(
ctmc
module m
  x : [0..10] init 0;
  [step] x<5 -> 1.0 : (x'=x+1);
  [step] x>6 -> 1.0 : (x'=x-1);
endmodule
)")
                    .clean());
}

TEST(Lint, AR004NegativeRate) {
    const auto d = expect_single(lint_prism(R"(
ctmc
module m
  x : [0..3] init 0;
  [] x=2 -> (1-x) : (x'=1);
endmodule
)"),
                                 "AR004", analysis::Severity::Error);
    EXPECT_NE(d.message.find("evaluates to -1"), std::string::npos) << d.to_string();
    EXPECT_NE(d.message.find("witness: x=2"), std::string::npos);
}

TEST(Lint, AR004ZeroRateIsAWarning) {
    const auto d = expect_single(lint_prism(R"(
ctmc
module m
  x : [0..3] init 0;
  [] x=2 -> (2-x) : (x'=1);
endmodule
)"),
                                 "AR004", analysis::Severity::Warning);
    EXPECT_NE(d.message.find("zero rate"), std::string::npos) << d.to_string();
}

TEST(Lint, AR005OutOfRangeAssignment) {
    const std::string source = R"(
ctmc
module m
  x : [0..3] init 0;
  [] x<3 -> 1.0 : (x'=x+2);
endmodule
)";
    const auto d =
        expect_single(lint_prism(source), "AR005", analysis::Severity::Error);
    EXPECT_NE(d.message.find("drives 'x' to 4"), std::string::npos) << d.to_string();
    EXPECT_NE(d.message.find("2-bit state field"), std::string::npos);
    EXPECT_NE(d.message.find("witness: x=2"), std::string::npos);
    // The diagnostic anchors at the assignment expression in the source.
    ASSERT_NE(d.offset, expr::Expr::npos);
    EXPECT_EQ(source.find("x+2"), d.offset);
}

TEST(Lint, AR006DeadAssignment) {
    const auto d = expect_single(lint_prism(R"(
ctmc
module m
  x : [0..1] init 0;
  [] x=0 -> 1.0 : (x'=x);
endmodule
)"),
                                 "AR006", analysis::Severity::Note);
    EXPECT_NE(d.message.find("no effect"), std::string::npos);
}

TEST(Lint, AR007UnusedVariable) {
    const auto d = expect_single(lint_prism(R"(
ctmc
module m
  x : [0..1] init 0;
  y : [0..1] init 0;
  [] x=0 -> 1.0 : (x'=1);
endmodule
)"),
                                 "AR007", analysis::Severity::Warning);
    EXPECT_NE(d.message.find("never read"), std::string::npos);
    EXPECT_EQ(d.where, "variable 'y'");
}

TEST(Lint, AR008ConstantLabel) {
    const auto d = expect_single(lint_prism(R"(
ctmc
module m
  x : [0..1] init 0;
  [] x=0 -> 1.0 : (x'=1);
  [] x=1 -> 1.0 : (x'=0);
endmodule
label "always" = x>=0;
)"),
                                 "AR008", analysis::Severity::Note);
    EXPECT_NE(d.message.find("constantly true"), std::string::npos);
}

TEST(Lint, AR009ConstantExpressionThatAlwaysFails) {
    const auto d = expect_single(lint_prism(R"(
ctmc
module m
  x : [0..1] init 0;
  [] x=0 -> 1/0 : (x'=1);
endmodule
)"),
                                 "AR009", analysis::Severity::Error);
    EXPECT_NE(d.message.find("always fails"), std::string::npos) << d.to_string();
}

TEST(Lint, AR010UnusedFormula) {
    const auto d = expect_single(lint_prism(R"(
ctmc
formula spare = x>0;
module m
  x : [0..1] init 0;
  [] x=0 -> 1.0 : (x'=1);
endmodule
)"),
                                 "AR010", analysis::Severity::Warning);
    EXPECT_EQ(d.where, "formula 'spare'");
}

TEST(Lint, AR010SeesTransitiveFormulaUse) {
    // `base` is referenced only through `derived`, which a label uses:
    // neither is unused.
    EXPECT_TRUE(lint_prism(R"(
ctmc
formula base = x>0;
formula derived = base & x<2;
module m
  x : [0..2] init 0;
  [] x<2 -> 1.0 : (x'=x+1);
endmodule
label "mid" = derived;
)")
                    .clean());
}

TEST(Lint, CleanModelProducesNoDiagnostics) {
    EXPECT_TRUE(lint_prism(R"(
ctmc
const double lambda = 1/100;
module comp
  x : [0..1] init 0;
  b : bool init false;
  [] x=0 -> lambda : (x'=1) & (b'=true);
  [] x=1 -> 0.5 : (x'=0) & (b'=false);
endmodule
label "up" = x=0 & !b;
rewards "down"
  x=1 : 1;
endrewards
)")
                    .clean());
}

// ---------------------------------------------------------------------------
// Byte offsets
// ---------------------------------------------------------------------------

TEST(Offsets, ParserStampsByteOffsets) {
    EXPECT_EQ(expr::parse_expression("q").offset(), 0u);
    EXPECT_EQ(expr::parse_expression("q", 42).offset(), 42u);
    const auto sum = expr::parse_expression("  x + y", 10);
    EXPECT_EQ(sum.offset(), 12u);  // at the expression, past the whitespace
}

TEST(Offsets, PrismGuardsPointIntoTheSource) {
    const std::string source = R"(
ctmc
module m
  x : [0..3] init 0;
  [] x<3 -> 1.0 : (x'=x+1);
endmodule
)";
    const auto system = prism::parse_prism(source);
    const auto& guard = system.modules.at(0).commands.at(0).guard;
    ASSERT_NE(guard.offset(), expr::Expr::npos);
    EXPECT_EQ(source.find("x<3"), guard.offset());
}

// ---------------------------------------------------------------------------
// Lint levels and report plumbing
// ---------------------------------------------------------------------------

TEST(LintLevel, ParsesAliases) {
    using analysis::LintLevel;
    EXPECT_EQ(analysis::parse_lint_level("off"), LintLevel::Off);
    EXPECT_EQ(analysis::parse_lint_level("0"), LintLevel::Off);
    EXPECT_EQ(analysis::parse_lint_level("WARN"), LintLevel::Warn);
    EXPECT_EQ(analysis::parse_lint_level("on"), LintLevel::Warn);
    EXPECT_EQ(analysis::parse_lint_level("error"), LintLevel::Error);
    EXPECT_EQ(analysis::parse_lint_level("strict"), LintLevel::Error);
    EXPECT_FALSE(analysis::parse_lint_level("bogus").has_value());
    EXPECT_EQ(analysis::lint_level_name(LintLevel::Error), "error");
}

TEST(LintLevel, ReportCountsBySeverity) {
    const auto report = lint_prism(R"(
ctmc
module m
  x : [0..3] init 0;
  y : [0..1] init 0;
  [] x<3 -> 1.0 : (x'=x+2);
endmodule
)");
    // AR005 error (x+2 escapes) + AR007 warning (y unused).
    EXPECT_EQ(report.errors, 1);
    EXPECT_EQ(report.warnings, 1);
    EXPECT_EQ(report.notes, 0);
    EXPECT_EQ(report.diagnostics.size(), 2u);
    EXPECT_FALSE(report.clean());
}

// ---------------------------------------------------------------------------
// Watertree golden: the paper models lint clean at `error` level
// ---------------------------------------------------------------------------

TEST(WatertreeLint, AllPaperModelsLintClean) {
    for (int line = 1; line <= 2; ++line) {
        for (const auto& strategy : watertree::paper_strategies()) {
            const auto system =
                core::to_reactive_modules(watertree::line(line, strategy));
            const auto report = analysis::lint(system);
            EXPECT_EQ(report.errors, 0)
                << "line " << line << " " << strategy.name << ":\n"
                << report.to_string();
            EXPECT_EQ(report.warnings, 0)
                << "line " << line << " " << strategy.name << ":\n"
                << report.to_string();
            EXPECT_EQ(report.notes, 0)
                << "line " << line << " " << strategy.name << ":\n"
                << report.to_string();
        }
    }
}

TEST(WatertreeLint, CompilesAtErrorLevelUnderBothEncodings) {
    const auto& strategy = watertree::strategy("DED");
    const auto model = watertree::line(2, strategy);
    for (const auto encoding : {core::Encoding::Individual, core::Encoding::Lumped}) {
        core::CompileOptions options;
        options.encoding = encoding;
        options.lint = analysis::LintLevel::Error;
        const auto compiled = core::compile(model, options);
        EXPECT_EQ(compiled.lint_errors(), 0);
        EXPECT_EQ(compiled.lint_warnings(), 0);
        EXPECT_GT(compiled.chain().state_count(), 0u);
    }
}

TEST(CompileLint, ErrorLevelThrowsOnLintErrors) {
    // An Arcade model cannot easily plant a lint error (the translation is
    // correct by construction), so exercise the throwing path through the
    // linter directly plus compile's level contract: Off and Warn never
    // throw for clean models.
    const auto& strategy = watertree::strategy("DED");
    const auto model = watertree::line(2, strategy);
    for (const auto level :
         {analysis::LintLevel::Off, analysis::LintLevel::Warn}) {
        core::CompileOptions options;
        options.encoding = core::Encoding::Lumped;
        options.lint = level;
        EXPECT_NO_THROW({ const auto c = core::compile(model, options); });
    }
}
