// Unit tests: Arcade model validation, fault/service trees, and the
// compiler's semantics on systems with closed-form answers.
#include <gtest/gtest.h>

#include <cmath>

#include "arcade/compiler.hpp"
#include "arcade/fault_tree.hpp"
#include "arcade/measures.hpp"
#include "arcade/types.hpp"
#include "ctmc/steady_state.hpp"
#include "support/errors.hpp"

namespace core = arcade::core;

TEST(ArcadeModel, ValidationCatchesStructuralErrors) {
    core::ArcadeModel m;
    EXPECT_THROW(m.validate(), arcade::ModelError);  // no components

    core::ModelBuilder ok("ok");
    ok.add_redundant_phase("a", 2, 10, 1);
    ok.with_repair(core::RepairPolicy::Dedicated);
    EXPECT_NO_THROW(ok.build());

    // duplicate coverage by two repair units
    auto model = ok.build();
    model.repair_units.push_back(model.repair_units[0]);
    EXPECT_THROW(model.validate(), arcade::ModelError);

    // bad priorities arity
    core::ModelBuilder prio("prio");
    prio.add_redundant_phase("a", 2, 10, 1);
    core::RepairUnit ru;
    ru.name = "ru";
    ru.policy = core::RepairPolicy::Priority;
    ru.components = {0, 1};
    ru.priorities = {1};  // wrong length
    prio.with_repair_unit(ru);
    EXPECT_THROW(prio.build(), arcade::ModelError);
}

TEST(ArcadeModel, PolicyStringsRoundTrip) {
    using core::RepairPolicy;
    for (auto p : {RepairPolicy::None, RepairPolicy::Dedicated,
                   RepairPolicy::FirstComeFirstServe, RepairPolicy::FastestRepairFirst,
                   RepairPolicy::FastestFailureFirst, RepairPolicy::Priority}) {
        EXPECT_EQ(core::repair_policy_from_string(core::to_string(p)), p);
    }
    EXPECT_THROW(core::repair_policy_from_string("bogus"), arcade::InvalidArgument);
}

TEST(FaultTree, QualitativeGateSemantics) {
    using FT = core::FaultTree;
    const auto tree = FT::any_of({FT::literal(0), FT::all_of({FT::literal(1), FT::literal(2)}),
                                  FT::k_of_n(2, {FT::literal(3), FT::literal(4), FT::literal(5)})});
    // all up
    EXPECT_FALSE(tree.failed({true, true, true, true, true, true}));
    // OR literal
    EXPECT_TRUE(tree.failed({false, true, true, true, true, true}));
    // AND needs both
    EXPECT_FALSE(tree.failed({true, false, true, true, true, true}));
    EXPECT_TRUE(tree.failed({true, false, false, true, true, true}));
    // 2-of-3
    EXPECT_FALSE(tree.failed({true, true, true, false, true, true}));
    EXPECT_TRUE(tree.failed({true, true, true, false, false, true}));
}

TEST(FaultTree, QuantitativeDualGates) {
    using FT = core::FaultTree;
    // Fault-AND of 3 literals -> service mean: 2 of 3 up => 2/3.
    const auto and3 = FT::all_of({FT::literal(0), FT::literal(1), FT::literal(2)});
    EXPECT_NEAR(and3.service_level({true, true, false}), 2.0 / 3.0, 1e-12);
    // Fault-OR -> service min.
    const auto or2 = FT::any_of({FT::literal(0), FT::literal(1)});
    EXPECT_NEAR(or2.service_level({true, false}), 0.0, 1e-12);
    EXPECT_NEAR(or2.service_level({true, true}), 1.0, 1e-12);
    // 2-of-4 fault gate -> spare gate min(1, up/3).
    const auto spare =
        FT::k_of_n(2, {FT::literal(0), FT::literal(1), FT::literal(2), FT::literal(3)});
    EXPECT_NEAR(spare.service_level({true, true, true, true}), 1.0, 1e-12);
    EXPECT_NEAR(spare.service_level({true, true, true, false}), 1.0, 1e-12);
    EXPECT_NEAR(spare.service_level({true, true, false, false}), 2.0 / 3.0, 1e-12);
}

TEST(FaultTree, PhaseTreesAgreeWithPhaseServiceLevel) {
    core::ModelBuilder builder("line");
    builder.add_redundant_phase("st", 3, 2000, 5);
    builder.add_redundant_phase("res", 1, 6000, 12);
    builder.add_spare_phase("pump", 4, 3, 500, 1);
    builder.with_repair(core::RepairPolicy::Dedicated);
    const auto model = builder.build();
    const auto down = core::FaultTree::down_tree(model);
    const auto total = core::FaultTree::total_failure_tree(model);

    // enumerate all 2^8 component-status combinations
    const std::size_t n = model.components.size();
    for (std::size_t mask = 0; mask < (1u << n); ++mask) {
        std::vector<bool> up(n);
        for (std::size_t c = 0; c < n; ++c) up[c] = ((mask >> c) & 1u) != 0;
        std::vector<std::size_t> per_phase(model.phases.size(), 0);
        for (std::size_t p = 0; p < model.phases.size(); ++p) {
            for (std::size_t c : model.phases[p].components) {
                if (up[c]) ++per_phase[p];
            }
        }
        const double service = core::phase_service_level(model, per_phase);
        // down tree == "not fully operational" == service < 1
        EXPECT_EQ(down.failed(up), service < 1.0 - 1e-12) << mask;
        // total failure tree == no service at all
        EXPECT_EQ(total.failed(up), service <= 1e-12) << mask;
        // quantitative dual of the total-failure tree equals phase service
        EXPECT_NEAR(total.service_level(up), service, 1e-12) << mask;
    }
}

TEST(FaultTree, AttainableLevelsMatchEnumeration) {
    core::ModelBuilder builder("line");
    builder.add_redundant_phase("a", 3, 100, 1);
    builder.add_spare_phase("b", 3, 2, 100, 1);
    builder.with_repair(core::RepairPolicy::Dedicated);
    const auto model = builder.build();
    const auto levels = core::phase_service_levels(model);
    // a: {0,1/3,2/3,1}; b: {0,1/2,1}; min-combinations: {0,1/3,1/2,2/3,1}
    ASSERT_EQ(levels.size(), 5u);
    EXPECT_NEAR(levels[1], 1.0 / 3.0, 1e-12);
    EXPECT_NEAR(levels[2], 1.0 / 2.0, 1e-12);
    EXPECT_NEAR(levels[3], 2.0 / 3.0, 1e-12);
}

TEST(Compiler, SingleComponentIsTwoStateChain) {
    core::ModelBuilder builder("single");
    builder.add_redundant_phase("c", 1, 100.0, 4.0);
    builder.with_repair(core::RepairPolicy::Dedicated);
    const auto compiled = core::compile(builder.build());
    EXPECT_EQ(compiled.state_count(), 2u);
    EXPECT_NEAR(core::availability(compiled), 100.0 / 104.0, 1e-10);
}

TEST(Compiler, FcfsOnIdenticalComponentsMatchesMm1kQueue) {
    // 3 identical components, 1 FCFS crew: the failed-count process is an
    // M/M/1/3-like birth-death chain with state-dependent birth rates
    // (n-k)*lambda and constant death rate mu.
    const double mttf = 50.0;
    const double mttr = 2.0;
    core::ModelBuilder builder("fcfs");
    builder.add_redundant_phase("c", 3, mttf, mttr);
    builder.with_repair(core::RepairPolicy::FirstComeFirstServe, 1);
    const auto compiled = core::compile(builder.build());

    const double lambda = 1.0 / mttf;
    const double mu = 1.0 / mttr;
    // birth-death closed form
    double p[4];
    p[0] = 1.0;
    p[1] = p[0] * 3 * lambda / mu;
    p[2] = p[1] * 2 * lambda / mu;
    p[3] = p[2] * 1 * lambda / mu;
    const double z = p[0] + p[1] + p[2] + p[3];
    EXPECT_NEAR(core::availability(compiled), p[0] / z, 1e-9);
}

TEST(Compiler, CostRatesCountFailedComponentsAndIdleCrews) {
    core::ModelBuilder builder("cost");
    builder.add_redundant_phase("c", 2, 100.0, 1.0);
    builder.with_repair(core::RepairPolicy::FastestRepairFirst, 2);
    const auto compiled = core::compile(builder.build());
    // all-up state: 2 idle crews -> cost 2
    EXPECT_DOUBLE_EQ(compiled.cost_reward().state_rates()[compiled.initial_state()], 2.0);
    // a disaster with both components down: cost 2*3 + 0 idle = 6
    core::Disaster d;
    d.name = "both";
    d.failed_per_phase = {2};
    EXPECT_DOUBLE_EQ(compiled.cost_reward().state_rates()[compiled.disaster_state(d)], 6.0);
}

TEST(Compiler, DisasterStateHasPolicyBestInRepair) {
    // FRF: fastest repair = phase "fast" (mttr 1) over "slow" (mttr 10).
    core::ModelBuilder builder("d");
    builder.add_redundant_phase("fast", 1, 100.0, 1.0);
    builder.add_redundant_phase("slow", 1, 100.0, 10.0);
    builder.with_repair(core::RepairPolicy::FastestRepairFirst, 1);
    const auto compiled = core::compile(builder.build());
    core::Disaster d;
    d.name = "both";
    d.failed_per_phase = {1, 1};
    const auto& encoded = compiled.encoded_state(compiled.disaster_state(d));
    // layout: [status fast, status slow, rank fast, rank slow]
    EXPECT_EQ(encoded[0], 2);  // fast component is in repair
    EXPECT_EQ(encoded[1], 1);  // slow component waits
}

TEST(Compiler, PreemptiveNeedsNoTrackedSlot) {
    core::ModelBuilder np("np");
    np.add_redundant_phase("a", 2, 100, 1);
    np.add_redundant_phase("b", 2, 100, 10);
    np.with_repair(core::RepairPolicy::FastestRepairFirst, 1, /*preemptive=*/false);
    core::ModelBuilder pre("pre");
    pre.add_redundant_phase("a", 2, 100, 1);
    pre.add_redundant_phase("b", 2, 100, 10);
    pre.with_repair(core::RepairPolicy::FastestRepairFirst, 1, /*preemptive=*/true);
    const auto np_model = core::compile(np.build());
    const auto pre_model = core::compile(pre.build());
    EXPECT_LT(pre_model.state_count(), np_model.state_count());
}

TEST(Compiler, WithoutRepairRemovesAllRepairTransitions) {
    core::ModelBuilder builder("r");
    builder.add_redundant_phase("c", 3, 100.0, 1.0);
    builder.with_repair(core::RepairPolicy::Dedicated);
    core::CompileOptions full;  // pins the full 2^3 chain, not its quotient
    full.symmetry = core::SymmetryPolicy::Off;
    const auto stripped = core::compile(core::without_repair(builder.build()), full);
    EXPECT_EQ(stripped.state_count(), 8u);
    // only failure transitions: 3 * 2^3 / 2 ... every up component can fail:
    // sum over states of #up = 3*4 = 12
    EXPECT_EQ(stripped.transition_count(), 12u);
    // the all-down state is absorbing
    core::Disaster d;
    d.name = "all";
    d.failed_per_phase = {3};
    EXPECT_DOUBLE_EQ(stripped.chain().exit_rate(stripped.disaster_state(d)), 0.0);
}

TEST(Compiler, UnreachableDisasterIsAnError) {
    core::ModelBuilder builder("u");
    builder.add_redundant_phase("c", 2, 100.0, 1.0);
    builder.with_repair(core::RepairPolicy::Dedicated);
    const auto compiled = core::compile(builder.build());
    core::Disaster d;
    d.name = "too-many";
    d.failed_per_phase = {3};  // more than exist
    EXPECT_THROW(compiled.disaster_state(d), arcade::Error);
}
