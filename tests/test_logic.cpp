// Unit tests: CSL/CSRL parser and model checker — plus the canonical
// printer (print -> parse round trips, over every formula in the
// watertree::properties pack), formula fingerprints, byte-offset parse
// errors, and the InvalidArgument threshold taxonomy.
#include <gtest/gtest.h>

#include <cmath>

#include "ctmc/ctmc.hpp"
#include "logic/csl.hpp"
#include "support/errors.hpp"
#include "watertree/properties.hpp"

namespace logic = arcade::logic;
namespace ctmc = arcade::ctmc;
namespace la = arcade::linalg;

namespace {

/// Two-state availability chain with labels and a cost reward.
struct Fixture {
    ctmc::Ctmc chain;
    logic::CheckerOptions options;

    static Fixture make(double l = 0.5, double m = 2.0) {
        la::CsrBuilder b(2, 2);
        b.add(0, 1, l);
        b.add(1, 0, m);
        ctmc::Ctmc chain(b.build(), {1.0, 0.0});
        chain.set_label("up", {true, false});
        chain.set_label("down", {false, true});
        logic::CheckerOptions options;
        options.reward_structures.emplace(
            "cost", arcade::rewards::RewardStructure("cost", {0.0, 3.0}));
        return Fixture{std::move(chain), std::move(options)};
    }
};

}  // namespace

TEST(Csl, BoundedUntilQueryMatchesClosedForm) {
    const auto f = Fixture::make();
    // P(fail by t) from up = 1 - closed-form p_up with ONLY failure... no:
    // true U<=t down on the transformed chain (down absorbing): first-passage
    // time is exp(l): P = 1 - e^{-l t}.
    const auto result = logic::check(f.chain, "P=? [ true U<=2 \"down\" ]", f.options);
    ASSERT_TRUE(result.value.has_value());
    EXPECT_NEAR(*result.value, 1.0 - std::exp(-0.5 * 2.0), 1e-10);
}

TEST(Csl, FIsSugarForTrueUntil) {
    const auto f = Fixture::make();
    const auto a = logic::check(f.chain, "P=? [ F<=2 \"down\" ]", f.options);
    const auto b = logic::check(f.chain, "P=? [ true U<=2 \"down\" ]", f.options);
    EXPECT_NEAR(*a.value, *b.value, 1e-12);
}

TEST(Csl, GloballyIsDualOfFinally) {
    const auto f = Fixture::make();
    const auto g = logic::check(f.chain, "P=? [ G<=2 \"up\" ]", f.options);
    const auto fd = logic::check(f.chain, "P=? [ F<=2 \"down\" ]", f.options);
    EXPECT_NEAR(*g.value + *fd.value, 1.0, 1e-10);
}

TEST(Csl, NestedGloballyAppliesDualityAtItsOwnOperator) {
    const auto f = Fixture::make();
    // A G nested under another operator must desugar at ITS OWN P node:
    // P>=p [G<=t f]  ==  P<=1-p [true U<=t !f], with every enclosing bound
    // untouched (regression: a parser-global flag used to flip the outer
    // bound instead and leave the nested one inverted).
    const auto nested =
        logic::check(f.chain, "S=? [ P>=0.5 [ G<=2 \"up\" ] ]", f.options);
    const auto nested_dual =
        logic::check(f.chain, "S=? [ P<=0.5 [ true U<=2 !\"up\" ] ]", f.options);
    EXPECT_NEAR(*nested.value, *nested_dual.value, 1e-12);

    const auto outer = logic::check(
        f.chain, "P=? [ true U<=5 P>=0.25 [ G<=2 \"up\" ] ]", f.options);
    const auto outer_dual = logic::check(
        f.chain, "P=? [ true U<=5 P<=0.75 [ true U<=2 !\"up\" ] ]", f.options);
    EXPECT_NEAR(*outer.value, *outer_dual.value, 1e-12);

    // And a conjunction where only one side holds a G.
    const auto mixed = logic::check(
        f.chain, "P>=0.9 [ true U<=3 \"up\" ] & P>=0.25 [ G<=2 \"up\" ]", f.options);
    const auto mixed_dual = logic::check(
        f.chain, "P>=0.9 [ true U<=3 \"up\" ] & P<=0.75 [ true U<=2 !\"up\" ]",
        f.options);
    EXPECT_EQ(mixed.satisfaction, mixed_dual.satisfaction);
}

TEST(Csl, UnboundedUntil) {
    const auto f = Fixture::make();
    // down is eventually reached with probability 1 in this chain.
    const auto result = logic::check(f.chain, "P=? [ true U \"down\" ]", f.options);
    EXPECT_NEAR(*result.value, 1.0, 1e-9);
}

TEST(Csl, NextOperator) {
    // 0 -> 1 rate 1, 0 -> 2 rate 3: P(X "two") = 3/4.
    la::CsrBuilder b(3, 3);
    b.add(0, 1, 1.0);
    b.add(0, 2, 3.0);
    ctmc::Ctmc chain(b.build(), {1.0, 0.0, 0.0});
    chain.set_label("two", {false, false, true});
    const auto result = logic::check(chain, "P=? [ X \"two\" ]");
    EXPECT_NEAR(*result.value, 0.75, 1e-12);
}

TEST(Csl, SteadyStateQueryAndBound) {
    const auto f = Fixture::make(0.5, 2.0);
    const auto q = logic::check(f.chain, "S=? [ \"up\" ]", f.options);
    EXPECT_NEAR(*q.value, 2.0 / 2.5, 1e-9);
    EXPECT_TRUE(*logic::check(f.chain, "S>=0.7 [ \"up\" ]", f.options).holds);
    EXPECT_FALSE(*logic::check(f.chain, "S>=0.9 [ \"up\" ]", f.options).holds);
}

TEST(Csl, ProbabilityBoundsEvaluatePerState) {
    const auto f = Fixture::make();
    // From "down", recovery within 1h has probability 1-e^{-2} ~ 0.86.
    const auto result =
        logic::check(f.chain, "P>=0.8 [ true U<=1 \"up\" ]", f.options);
    ASSERT_EQ(result.satisfaction.size(), 2u);
    EXPECT_TRUE(result.satisfaction[0]);  // already up: trivially satisfied
    EXPECT_TRUE(result.satisfaction[1]);
    const auto strict =
        logic::check(f.chain, "P>=0.99 [ true U<=1 \"up\" ]", f.options);
    EXPECT_FALSE(strict.satisfaction[1]);
}

TEST(Csrl, InstantaneousAndCumulativeRewards) {
    const auto f = Fixture::make(0.5, 2.0);
    const double t = 1.5;
    const double s = 2.5;
    const double p_down = 0.5 / s * (1.0 - std::exp(-s * t));
    const auto inst = logic::check(f.chain, "R{\"cost\"}=? [ I=1.5 ]", f.options);
    EXPECT_NEAR(*inst.value, 3.0 * p_down, 1e-9);

    const double integral = 0.5 / s * (t - (1.0 - std::exp(-s * t)) / s);
    const auto cum = logic::check(f.chain, "R{\"cost\"}=? [ C<=1.5 ]", f.options);
    EXPECT_NEAR(*cum.value, 3.0 * integral, 1e-9);
}

TEST(Csrl, SteadyStateReward) {
    const auto f = Fixture::make(0.5, 2.0);
    const auto result = logic::check(f.chain, "R{\"cost\"}=? [ S ]", f.options);
    EXPECT_NEAR(*result.value, 3.0 * 0.5 / 2.5, 1e-9);
}

TEST(Csl, BooleanConnectivesOverLabels) {
    const auto f = Fixture::make();
    EXPECT_TRUE(*logic::check(f.chain, "\"up\" | \"down\"", f.options).holds);
    EXPECT_TRUE(*logic::check(f.chain, "!(\"up\" & \"down\")", f.options).holds);
    // initial state is up
    EXPECT_TRUE(*logic::check(f.chain, "\"up\"", f.options).holds);
    EXPECT_FALSE(*logic::check(f.chain, "\"down\"", f.options).holds);
}

TEST(Csl, NestedProbabilisticOperators) {
    const auto f = Fixture::make();
    // states from which quick recovery is likely — used as an until target
    const auto result = logic::check(
        f.chain, "P=? [ true U<=10 ( \"down\" & P>=0.5 [ true U<=1 \"up\" ] ) ]",
        f.options);
    EXPECT_GT(*result.value, 0.9);
}

TEST(Csl, ParseErrors) {
    EXPECT_THROW(logic::parse_csl("P=? [ true U ]"), arcade::ParseError);
    EXPECT_THROW(logic::parse_csl("P [ F \"x\" ]"), arcade::ParseError);
    EXPECT_THROW(logic::parse_csl("R=? [ X=1 ]"), arcade::ParseError);
    EXPECT_THROW(logic::parse_csl("P=? [ F \"x\" ] trailing"), arcade::ParseError);
}

TEST(Csl, ParseErrorsReportByteOffsets) {
    const auto offset_in = [](const std::string& text) -> std::string {
        try {
            (void)logic::parse_csl(text);
        } catch (const arcade::ParseError& e) {
            const std::string what = e.what();
            const auto at = what.find("byte offset ");
            if (at == std::string::npos) return "";
            return what.substr(at + 12);
        }
        return "";
    };
    // Offset of the offending token, not of the whole formula.
    EXPECT_EQ(offset_in("P [ F \"x\" ]"), "2");             // bound expected at '['
    EXPECT_EQ(offset_in("P=? [ true U ]"), "13");          // rhs label expected at ']'
    EXPECT_EQ(offset_in("P=? [ F \"x\" ] junk"), "14");    // trailing input at 'junk'
    EXPECT_EQ(offset_in("S=? [ \"unterminated ]"), "6");   // the opening quote
    EXPECT_EQ(offset_in("P<=x [ F \"a\" ]"), "3");         // number expected at 'x'
}

TEST(Csl, MalformedThresholdsThrowInvalidArgument) {
    const auto f = Fixture::make();
    // Probability bounds outside [0, 1] are caller mistakes, not model
    // defects: InvalidArgument, matching the library-wide taxonomy.
    EXPECT_THROW((void)logic::check(f.chain, "P>=1.5 [ F<=1 \"up\" ]", f.options),
                 arcade::InvalidArgument);
    EXPECT_THROW((void)logic::check(f.chain, "S<=-0.25 [ \"up\" ]", f.options),
                 arcade::InvalidArgument);
    EXPECT_THROW((void)logic::check(f.chain, "P=? [ true U<=-3 \"down\" ]", f.options),
                 arcade::InvalidArgument);
    EXPECT_THROW((void)logic::check(f.chain, "R{\"cost\"}>=-1 [ S ]", f.options),
                 arcade::InvalidArgument);

    logic::CheckerOptions bad = f.options;
    bad.epsilon = 0.0;
    EXPECT_THROW((void)logic::check(f.chain, "\"up\"", bad), arcade::InvalidArgument);
    bad.epsilon = 2.0;
    EXPECT_THROW((void)logic::check(f.chain, "\"up\"", bad), arcade::InvalidArgument);
}

TEST(Csl, PrintParseRoundTripsOnPaperPropertyPack) {
    // Print -> parse -> print must be the identity for every formula the
    // watertree property pack ships (G re-parses via its Until desugaring).
    for (const auto& property : arcade::watertree::properties::paper_pack()) {
        const auto parsed = logic::parse_csl(property.formula);
        const std::string printed = logic::to_string(*parsed);
        const auto reparsed = logic::parse_csl(printed);
        EXPECT_EQ(logic::to_string(*reparsed), printed) << property.name;
        EXPECT_EQ(logic::fingerprint(*reparsed), logic::fingerprint(*parsed))
            << property.name;
    }
}

TEST(Csl, PrintParseRoundTripsOnNestedFormulas) {
    for (const char* text : {
             "P>=0.5 [ (\"up\" | \"down\") U<=2.5 !\"down\" ]",
             "P=? [ X (\"up\" & P>0.25 [ true U \"down\" ]) ]",
             "S>=0.75 [ P>=0.5 [ true U<=1 \"up\" ] ]",
             "R{\"cost\"}<=3 [ I=1.5 ]",
             "P=? [ G<=2 \"up\" ]",
         }) {
        const auto parsed = logic::parse_csl(text);
        const std::string printed = logic::to_string(*parsed);
        EXPECT_EQ(logic::to_string(*logic::parse_csl(printed)), printed) << text;
    }
}

TEST(Csl, FingerprintSeparatesFormulasAndStreams) {
    const auto a = logic::parse_csl("P=? [ true U<=2 \"down\" ]");
    const auto b = logic::parse_csl("P=? [ true U<=3 \"down\" ]");
    EXPECT_NE(logic::fingerprint(*a), logic::fingerprint(*b));
    EXPECT_EQ(logic::fingerprint(*a), logic::fingerprint(*logic::parse_csl(
                                          "P=? [ true U<=2 \"down\" ]")));
    // Independent hash streams back the double-keyed property cache.
    EXPECT_NE(logic::fingerprint(*a, 0), logic::fingerprint(*a, 1));
}

TEST(Csl, ContainsNextScansEveryPosition) {
    EXPECT_TRUE(logic::contains_next(*logic::parse_csl("P=? [ X \"up\" ]")));
    EXPECT_TRUE(logic::contains_next(
        *logic::parse_csl("S=? [ P>=0.5 [ X \"up\" ] ]")));
    EXPECT_TRUE(logic::contains_next(
        *logic::parse_csl("P=? [ true U<=1 P>=0.5 [ X \"up\" ] ]")));
    EXPECT_FALSE(logic::contains_next(
        *logic::parse_csl("P=? [ true U<=1 (\"up\" & S>=0.5 [ \"down\" ]) ]")));
    EXPECT_FALSE(logic::contains_next(*logic::parse_csl("R{\"cost\"}=? [ C<=1 ]")));
}

TEST(Csl, UnknownLabelAndRewardErrors) {
    const auto f = Fixture::make();
    EXPECT_THROW(logic::check(f.chain, "\"nonexistent\"", f.options), arcade::ModelError);
    EXPECT_THROW(logic::check(f.chain, "R{\"missing\"}=? [ S ]", f.options),
                 arcade::ModelError);
}
