// On-the-fly symmetry reduction: the StateSymmetry canonicalisation kernel,
// the compiler's orbit detection over interchangeable components, the
// module-level symmetry analysis, and the policy threading through session,
// sweep and scaling study.
//
//  * canonicalize sorts instance tuples and orbit_size counts permutations
//    modulo repeated tuples;
//  * the individual-encoding watertree lines explored as quotients land
//    EXACTLY on the paper's hand-lumped Table 1 sizes (449 / 257), and the
//    full-chain counts recovered from orbit sizes equal the actually
//    explored full chains (111809 / 8129);
//  * every measure agrees between the quotient and the full chain to solver
//    precision, on both encodings, with and without post-hoc lumping;
//  * module systems with interchangeable instances are detected, asymmetric
//    rates or asymmetric labels block the (conservative) detection;
//  * the sweep's pump-scaling axis reports quotient vs full-chain sizes,
//    with a >= 10x reduction at the paper's own 4-pump line.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <vector>

#include "arcade/compiler.hpp"
#include "arcade/measures.hpp"
#include "ctmc/steady_state.hpp"
#include "engine/session.hpp"
#include "engine/symmetry.hpp"
#include "expr/expr.hpp"
#include "modules/explorer.hpp"
#include "modules/symmetry.hpp"
#include "sweep/sweep.hpp"
#include "watertree/watertree.hpp"

namespace core = arcade::core;
namespace engine = arcade::engine;
namespace expr = arcade::expr;
namespace modules = arcade::modules;
namespace sweep = arcade::sweep;
namespace wt = arcade::watertree;

namespace {

expr::Expr E(const std::string& text) { return expr::parse_expression(text); }

/// Two-state fail/repair module owning one variable (the replicated-pump
/// shape of the watertree translation).
modules::Module pump_module(const std::string& var, double fail, double repair) {
    modules::Module m;
    m.name = "m_" + var;
    m.variables.push_back({var, modules::VarType::Int, 0, 1, 0});
    m.commands.push_back({"", E(var + "=0"), {{expr::Expr::real(fail), {{var, E("1")}}}}});
    m.commands.push_back(
        {"", E(var + "=1"), {{expr::Expr::real(repair), {{var, E("0")}}}}});
    return m;
}

engine::StateSymmetry three_pairs() {
    // One orbit of three instances, each an adjacent (status, rank) pair
    // over a 6-field layout.
    engine::SymmetryOrbit orbit;
    orbit.instances = {{0, 1}, {2, 3}, {4, 5}};
    return engine::StateSymmetry({orbit});
}

}  // namespace

TEST(StateSymmetry, CanonicalizeSortsInstanceTuplesLexicographically) {
    const auto symmetry = three_pairs();
    ASSERT_FALSE(symmetry.trivial());
    EXPECT_EQ(symmetry.orbit_count(), 1u);

    std::vector<std::int64_t> values{2, 0, 1, 9, 1, 3};
    symmetry.canonicalize(values);
    EXPECT_EQ(values, (std::vector<std::int64_t>{1, 3, 1, 9, 2, 0}));
    EXPECT_TRUE(symmetry.is_canonical(values));

    // Already sorted stays put.
    std::vector<std::int64_t> sorted{0, 0, 0, 1, 1, 0};
    const auto copy = sorted;
    symmetry.canonicalize(sorted);
    EXPECT_EQ(sorted, copy);

    // Fields outside every orbit are untouched (orbit over fields 0..3 of 5).
    engine::SymmetryOrbit partial;
    partial.instances = {{0, 1}, {2, 3}};
    const engine::StateSymmetry sym2({partial});
    std::vector<std::int64_t> v{7, 7, 1, 2, 42};
    sym2.canonicalize(v);
    EXPECT_EQ(v, (std::vector<std::int64_t>{1, 2, 7, 7, 42}));
}

TEST(StateSymmetry, OrbitSizeCountsPermutationsModuloRepeats) {
    const auto symmetry = three_pairs();
    // Three distinct tuples: 3! orbits members.
    EXPECT_DOUBLE_EQ(symmetry.orbit_size(std::vector<std::int64_t>{0, 1, 2, 3, 4, 5}),
                     6.0);
    // Two identical tuples: 3!/2!.
    EXPECT_DOUBLE_EQ(symmetry.orbit_size(std::vector<std::int64_t>{0, 1, 0, 1, 4, 5}),
                     3.0);
    // All identical: a fixed point of every permutation.
    EXPECT_DOUBLE_EQ(symmetry.orbit_size(std::vector<std::int64_t>{0, 1, 0, 1, 0, 1}),
                     1.0);
}

TEST(StateSymmetry, TrivialWithoutTwoInstances) {
    EXPECT_TRUE(engine::StateSymmetry().trivial());
    engine::SymmetryOrbit lone;
    lone.instances = {{0, 1}};
    EXPECT_TRUE(engine::StateSymmetry({lone}).trivial());
}

TEST(CompilerSymmetry, QuotientLandsOnHandLumpedTable1Sizes) {
    core::CompileOptions quotient_options;
    quotient_options.encoding = core::Encoding::Individual;
    quotient_options.symmetry = core::SymmetryPolicy::Auto;

    const auto l1 = core::compile(wt::line1(wt::strategy("FRF-1")), quotient_options);
    ASSERT_TRUE(l1.symmetry_reduced());
    // The quotient over interchangeable components is exactly the paper's
    // hand-lumped Table 1 size, and the full-chain count is recovered
    // exactly from orbit sizes without exploring it.
    EXPECT_EQ(l1.state_count(), 449u);
    EXPECT_DOUBLE_EQ(l1.symmetry_full_states(), 111809.0);
    EXPECT_GE(l1.symmetry_ratio(), 10.0);  // 249x at the paper's 4 pumps

    const auto l2 = core::compile(wt::line2(wt::strategy("FRF-1")), quotient_options);
    ASSERT_TRUE(l2.symmetry_reduced());
    EXPECT_EQ(l2.state_count(), 257u);
    EXPECT_DOUBLE_EQ(l2.symmetry_full_states(), 8129.0);

    // Off is the seed behaviour: the full chain, with full_states falling
    // back to the explored count.
    core::CompileOptions full_options;
    full_options.encoding = core::Encoding::Individual;
    full_options.symmetry = core::SymmetryPolicy::Off;
    const auto full = core::compile(wt::line2(wt::strategy("FRF-1")), full_options);
    EXPECT_FALSE(full.symmetry_reduced());
    EXPECT_EQ(full.state_count(), 8129u);
    EXPECT_DOUBLE_EQ(full.symmetry_full_states(), 8129.0);
    EXPECT_DOUBLE_EQ(full.symmetry_ratio(), 1.0);

    // The lumped encoding already aggregates the interchangeable copies, so
    // there is nothing left to permute.
    core::CompileOptions lumped_options;
    lumped_options.encoding = core::Encoding::Lumped;
    lumped_options.symmetry = core::SymmetryPolicy::Auto;
    const auto lumped = core::compile(wt::line2(wt::strategy("FRF-1")), lumped_options);
    EXPECT_FALSE(lumped.symmetry_reduced());
}

TEST(CompilerSymmetry, MeasuresAgreeWithFullChainOnBothEncodings) {
    for (const auto encoding : {core::Encoding::Individual, core::Encoding::Lumped}) {
        for (const char* strategy : {"DED", "FRF-1", "FFF-2"}) {
            for (const int line : {1, 2}) {
                core::CompileOptions off;
                off.encoding = encoding;
                off.symmetry = core::SymmetryPolicy::Off;
                core::CompileOptions on = off;
                on.symmetry = core::SymmetryPolicy::Auto;

                const auto model = wt::line(line, wt::strategy(strategy));
                const auto full = core::compile(model, off);
                const auto quotient = core::compile(model, on);
                const std::string what = "line" + std::to_string(line) + " " + strategy;

                EXPECT_NEAR(core::availability(full), core::availability(quotient),
                            1e-9)
                    << what;
                EXPECT_NEAR(core::steady_state_cost(full),
                            core::steady_state_cost(quotient), 1e-9)
                    << what;
            }
        }
    }
}

TEST(CompilerSymmetry, DisasterMeasuresCanonicaliseTheLookup) {
    // Disaster states are looked up by encoded valuation; under symmetry the
    // valuation must canonicalise to its representative first or the lookup
    // misses.  Survivability after Disaster 1 exercises exactly that.
    core::CompileOptions off;
    off.encoding = core::Encoding::Individual;
    off.symmetry = core::SymmetryPolicy::Off;
    core::CompileOptions on = off;
    on.symmetry = core::SymmetryPolicy::Auto;

    const auto model = wt::line1(wt::strategy("FRF-1"));
    const auto full = core::compile(model, off);
    const auto quotient = core::compile(model, on);
    const auto disaster = wt::disaster1(model);
    for (const double t : {1.0, 10.0}) {
        EXPECT_NEAR(core::survivability(full, disaster, 1.0, t),
                    core::survivability(quotient, disaster, 1.0, t), 1e-9)
            << "t=" << t;
    }
}

TEST(CompilerSymmetry, ComposesWithPostHocLumping) {
    // Symmetry first, splitter-queue refinement on the residual: the doubly
    // reduced model still reproduces the full-chain availability, and the
    // session keys quotient and full variants apart.
    engine::AnalysisSession session;
    const auto strategy = wt::strategy("FRF-1");

    const auto full = wt::compile_line(session, 2, strategy, core::Encoding::Individual,
                                       {}, true, core::ReductionPolicy::Auto,
                                       core::SymmetryPolicy::Off);
    const auto reduced = wt::compile_line(session, 2, strategy,
                                          core::Encoding::Individual, {}, true,
                                          core::ReductionPolicy::Auto,
                                          core::SymmetryPolicy::Auto);
    ASSERT_NE(full.get(), reduced.get());  // distinct cache entries
    EXPECT_EQ(full->state_count(), 8129u);
    EXPECT_EQ(reduced->state_count(), 257u);
    EXPECT_NEAR(core::availability(session, full), core::availability(session, reduced),
                1e-9);

    const auto stats = session.stats();
    EXPECT_EQ(stats.symmetry_states_in, 8129u);
    EXPECT_EQ(stats.symmetry_states_out, 257u);
    EXPECT_GT(stats.symmetry_ratio(), 10.0);
}

TEST(CompilerSymmetry, ScaledLineExploresTinyQuotientOfHugeChain) {
    // The acceptance scenario: >= 4 pumps, quotient >= 10x smaller than the
    // recovered full-chain count.  Line 1 with one extra spare pump has 5
    // pumps; the full chain (562817 states) is never explored.
    core::CompileOptions options;
    options.encoding = core::Encoding::Individual;
    options.symmetry = core::SymmetryPolicy::Auto;
    const auto scaled =
        core::compile(wt::line1(wt::strategy("FRF-1"), {}, /*extra_pumps=*/1), options);
    ASSERT_TRUE(scaled.symmetry_reduced());
    EXPECT_EQ(scaled.state_count(), 545u);
    EXPECT_DOUBLE_EQ(scaled.symmetry_full_states(), 562817.0);
    EXPECT_GE(scaled.symmetry_ratio(), 10.0);
}

TEST(ModulesSymmetry, DetectsInterchangeableInstances) {
    modules::ModuleSystem sys;
    sys.modules.push_back(pump_module("x", 0.5, 2.0));
    sys.modules.push_back(pump_module("y", 0.5, 2.0));
    sys.modules.push_back(pump_module("z", 0.5, 2.0));
    // Symmetric idioms: a sum-threshold label and a sum-rate reward.
    sys.labels.emplace("mostly_up", E("x+y+z<=1"));
    sys.rewards.push_back({"failed", {{E("x+y+z>=1"), E("x+y+z")}}});

    const auto analysis = modules::analyze_symmetry(sys);
    ASSERT_EQ(analysis.orbits.size(), 1u);
    EXPECT_EQ(analysis.orbits[0].modules, (std::vector<std::size_t>{0, 1, 2}));

    modules::ExploreOptions off;
    off.symmetry = engine::SymmetryPolicy::Off;
    modules::ExploreOptions on;
    on.symmetry = engine::SymmetryPolicy::Auto;
    const auto full = modules::explore(sys, off);
    const auto quotient = modules::explore(sys, on);
    EXPECT_FALSE(full.symmetry_reduced);
    ASSERT_TRUE(quotient.symmetry_reduced);
    EXPECT_EQ(full.state_count(), 8u);   // 2^3
    EXPECT_EQ(quotient.state_count(), 4u);  // failed-count 0..3
    EXPECT_DOUBLE_EQ(quotient.symmetry_full_states, 8.0);

    // The quotient is an exact lumping: the label measure agrees.
    const double p_full = arcade::ctmc::steady_state_probability(
        full.chain, full.chain.label("mostly_up"));
    const double p_quot = arcade::ctmc::steady_state_probability(
        quotient.chain, quotient.chain.label("mostly_up"));
    EXPECT_NEAR(p_full, p_quot, 1e-12);

    // Thread-count invariance survives canonicalisation.
    modules::ExploreOptions threaded = on;
    threaded.threads = 4;
    const auto parallel = modules::explore(sys, threaded);
    EXPECT_EQ(parallel.state_count(), quotient.state_count());
    EXPECT_EQ(parallel.chain.transition_count(), quotient.chain.transition_count());
}

TEST(ModulesSymmetry, AsymmetricRateBlocksDetection) {
    modules::ModuleSystem sys;
    sys.modules.push_back(pump_module("x", 0.5, 2.0));
    sys.modules.push_back(pump_module("y", 0.5, 2.0));
    sys.modules.push_back(pump_module("z", 0.7, 2.0));  // different failure rate
    const auto analysis = modules::analyze_symmetry(sys);
    ASSERT_EQ(analysis.orbits.size(), 1u);  // x and y still interchange
    EXPECT_EQ(analysis.orbits[0].modules, (std::vector<std::size_t>{0, 1}));
}

TEST(ModulesSymmetry, AsymmetricLabelBlocksDetection) {
    modules::ModuleSystem sys;
    sys.modules.push_back(pump_module("x", 0.5, 2.0));
    sys.modules.push_back(pump_module("y", 0.5, 2.0));
    sys.labels.emplace("first_up", E("x=0"));  // singles x out
    EXPECT_TRUE(modules::analyze_symmetry(sys).trivial());

    // A symmetric label over the same modules is fine (the normal form
    // flattens and sorts the +-chain, so x+y = y+x).
    modules::ModuleSystem sym;
    sym.modules.push_back(pump_module("x", 0.5, 2.0));
    sym.modules.push_back(pump_module("y", 0.5, 2.0));
    sym.labels.emplace("any_up", E("x+y<=1"));
    EXPECT_FALSE(modules::analyze_symmetry(sym).trivial());
}

TEST(ModulesSymmetry, SynchronisingModulesStayOutOfTheFragment) {
    // Synchronisation couples instances; the conservative fragment excludes
    // them even when the programs look alike.
    modules::ModuleSystem sys;
    for (const char* var : {"x", "y"}) {
        modules::Module m = pump_module(var, 0.5, 2.0);
        m.commands.push_back(
            {"tick", E(std::string(var) + "=0"),
             {{expr::Expr::real(1.0), {{var, E(std::string(var))}}}}});
        sys.modules.push_back(std::move(m));
    }
    EXPECT_TRUE(modules::analyze_symmetry(sys).trivial());
}

TEST(SweepSymmetry, PumpScalingReportsQuotientAndFullStates) {
    engine::AnalysisSession session;
    const auto grid = sweep::studies::pump_scaling(/*max_extra_pumps=*/1);
    sweep::RunnerOptions options;
    options.symmetry = core::SymmetryPolicy::Auto;
    sweep::SweepRunner runner(session, options);
    const auto report = runner.run(grid);
    ASSERT_EQ(report.results.size(), 4u);  // 2 lines x 2 scales

    for (const auto& r : report.results) {
        EXPECT_GE(r.model_full_states, static_cast<double>(r.model_states));
        EXPECT_GE(r.model_full_states / static_cast<double>(r.model_states), 10.0)
            << r.item.key();
    }

    std::ostringstream table;
    sweep::studies::render_pump_scaling(report, grid, table);
    EXPECT_NE(table.str().find("Full states"), std::string::npos);
    EXPECT_NE(table.str().find("111809"), std::string::npos);  // line1 paper full
    EXPECT_NE(table.str().find("562817"), std::string::npos);  // line1 +1 pump full

    // The scaled grid carries the scale column; CSV rows stay sorted by
    // work-item index and self-describe their scale.
    std::ostringstream csv;
    sweep::write_csv(report, grid, csv);
    EXPECT_NE(csv.str().find(",scale"), std::string::npos);
    EXPECT_NE(csv.str().find("pumps+1"), std::string::npos);
}

TEST(SweepSymmetry, UnscaledGridsKeepTheirSchemaAndKeys) {
    // The default scale adds no column, no key suffix and no JSON field —
    // the paper grids stay byte-identical with symmetry off.
    const auto grid = sweep::paper::table1();
    const auto items = sweep::expand(grid);
    ASSERT_FALSE(items.empty());
    for (const auto& item : items) {
        EXPECT_EQ(item.key().find("/sc="), std::string::npos);
        EXPECT_EQ(item.model_key().find("/+"), std::string::npos);
    }

    engine::AnalysisSession session;
    sweep::RunnerOptions off;
    off.symmetry = core::SymmetryPolicy::Off;
    sweep::SweepRunner runner(session, off);
    const auto report = runner.run(grid);
    std::ostringstream csv;
    sweep::write_csv(report, grid, csv);
    EXPECT_NE(csv.str().find("line,strategy,parameters,variant,measure,disaster,"
                             "service_level,t,value\n"),
              std::string::npos);
    EXPECT_EQ(csv.str().find("scale"), std::string::npos);
}

TEST(SweepSymmetry, SymmetryCountersRideTheExports) {
    engine::AnalysisSession session;
    sweep::ScenarioGrid grid;
    grid.lines = {2};
    grid.strategies = {"FRF-1"};
    grid.variants = {sweep::individual_variant()};
    grid.measures = {{sweep::MeasureKind::Availability, sweep::DisasterKind::None, 1.0,
                      {}}};
    sweep::RunnerOptions options;
    options.symmetry = core::SymmetryPolicy::Auto;
    sweep::SweepRunner runner(session, options);
    const auto report = runner.run(grid);
    EXPECT_EQ(report.stats.symmetry_states_in, 8129u);
    EXPECT_EQ(report.stats.symmetry_states_out, 257u);

    std::ostringstream json;
    sweep::write_json(report, grid, json);
    EXPECT_NE(json.str().find("\"symmetry_states_in\": 8129"), std::string::npos);
    EXPECT_NE(json.str().find("\"symmetry_ratio\""), std::string::npos);

    std::ostringstream csv;
    sweep::CsvOptions with_footer;
    with_footer.footer = true;
    sweep::write_csv(report, grid, csv, with_footer);
    EXPECT_NE(csv.str().find("symmetry_states_in=8129"), std::string::npos);
    EXPECT_NE(csv.str().find("symmetry_ratio="), std::string::npos);
}
