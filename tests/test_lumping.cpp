// The automatic-reduction layer: coarsest strong-bisimulation lumping
// (graph::coarsest_lumping), the quotient chain (ctmc::QuotientCtmc), and
// the ReductionPolicy threading through compiler, session and sweep.
//
//  * planted-symmetry chains: the refinement recovers exactly the planted
//    blocks and every solver (transient, steady-state, bounded until,
//    instantaneous + accumulated rewards) agrees between original and
//    quotient;
//  * signature sensitivity: a distinguishing label prevents merging;
//  * the paper's Table 1: auto-lumping the individual-encoding watertree
//    models reaches (or beats) the hand-lumped state counts;
//  * every sweep::paper grid renders numerically identical rows with
//    ReductionPolicy::Auto and ::Off.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <vector>

#include "arcade/compiler.hpp"
#include "arcade/measures.hpp"
#include "ctmc/bounded_until.hpp"
#include "ctmc/quotient.hpp"
#include "ctmc/steady_state.hpp"
#include "ctmc/transient.hpp"
#include "graph/lumping.hpp"
#include "rewards/rewards.hpp"
#include "support/errors.hpp"
#include "sweep/sweep.hpp"
#include "watertree/watertree.hpp"

namespace core = arcade::core;
namespace ctmc = arcade::ctmc;
namespace engine = arcade::engine;
namespace graph = arcade::graph;
namespace sweep = arcade::sweep;
namespace wt = arcade::watertree;

namespace {

/// A chain built to be lumpable by construction: `blocks` macro-states with
/// random inter-block rates, each expanded into `copies` states.  Every copy
/// sends each inter-block rate to ONE random member of the target block (so
/// per-block outgoing sums are bitwise equal across copies) and random
/// intra-block rates are sprinkled in (ordinary lumpability must ignore
/// them).
struct Planted {
    ctmc::Ctmc chain;
    std::vector<std::size_t> block_of;
    std::vector<double> state_values;  ///< block id as a signature value row
    std::size_t blocks;
};

Planted make_planted(std::size_t blocks, std::size_t copies, unsigned seed) {
    std::mt19937 rng(seed);
    std::uniform_real_distribution<double> rate(0.2, 2.0);
    std::uniform_int_distribution<std::size_t> pick(0, copies - 1);
    const std::size_t n = blocks * copies;
    arcade::linalg::CsrBuilder builder(n, n);
    const auto state = [copies](std::size_t block, std::size_t copy) {
        return block * copies + copy;
    };
    for (std::size_t b = 0; b < blocks; ++b) {
        for (std::size_t c = 0; c < blocks; ++c) {
            if (b == c) continue;
            const double r = rate(rng);
            for (std::size_t i = 0; i < copies; ++i) {
                builder.add(state(b, i), state(c, pick(rng)), r);
            }
        }
        // Intra-block noise, different per copy: must not affect lumping.
        for (std::size_t i = 0; i + 1 < copies; ++i) {
            builder.add(state(b, i), state(b, i + 1), rate(rng));
        }
    }
    std::vector<double> initial(n, 1.0 / static_cast<double>(n));
    Planted out{ctmc::Ctmc(builder.build(), std::move(initial)), {}, {}, blocks};
    out.block_of.resize(n);
    out.state_values.resize(n);
    for (std::size_t s = 0; s < n; ++s) {
        out.block_of[s] = s / copies;
        out.state_values[s] = static_cast<double>(s / copies);
    }
    return out;
}

ctmc::LumpSignature planted_signature(const Planted& planted) {
    ctmc::LumpSignature signature;
    signature.values = {planted.state_values};
    return signature;
}

void expect_near_rel(const std::vector<double>& a, const std::vector<double>& b,
                     double tolerance, const std::string& what) {
    ASSERT_EQ(a.size(), b.size()) << what;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const double scale = std::max({1.0, std::abs(a[i]), std::abs(b[i])});
        EXPECT_NEAR(a[i], b[i], tolerance * scale) << what << " at " << i;
    }
}

}  // namespace

TEST(CoarsestLumping, TrivialPartitionIsAlwaysLumpable) {
    // Ordinary lumpability does not constrain intra-block rates, so the
    // one-block partition is a fixed point of the refinement: without a
    // signature everything collapses.  (This is why QuotientCtmc demands a
    // signature to be observationally meaningful.)
    const auto planted = make_planted(5, 4, /*seed=*/7);
    std::vector<std::size_t> initial(planted.chain.state_count(), 0);
    EXPECT_EQ(graph::coarsest_lumping(planted.chain.rates(), initial).count, 1u);
}

TEST(CoarsestLumping, RecoversPlantedBlocksFromACoarserSeedPartition) {
    const auto planted = make_planted(5, 4, /*seed=*/7);
    // Seed the refinement with a partition strictly coarser than the
    // planted one (block parity); the pairwise-distinct random inter-block
    // rates force the splits to cascade until exactly the planted blocks
    // remain — never finer (intra-block noise must be ignored).
    std::vector<std::size_t> initial(planted.chain.state_count());
    for (std::size_t s = 0; s < initial.size(); ++s) {
        initial[s] = planted.block_of[s] % 2;
    }
    const auto partition = graph::coarsest_lumping(planted.chain.rates(), initial);
    ASSERT_EQ(partition.count, planted.blocks);
    for (std::size_t s = 0; s < planted.chain.state_count(); ++s) {
        EXPECT_EQ(partition.block_of[s],
                  partition.block_of[planted.block_of[s] * 4])  // block representative
            << s;
    }
}

TEST(CoarsestLumping, SplitterQueueMatchesRoundsOnPlantedAndRandomChains) {
    // Acceptance: the splitter-queue refinement returns the *identical*
    // partition (same block_of array after first-occurrence renumbering) as
    // the round-based reference, on every test chain.
    const auto identical = [](const ctmc::Ctmc& chain,
                              const std::vector<std::size_t>& initial,
                              const std::string& what) {
        graph::LumpingStats splitter_stats;
        graph::LumpingStats rounds_stats;
        const auto splitter =
            graph::coarsest_lumping(chain.rates(), initial,
                                    graph::LumpingAlgorithm::SplitterQueue,
                                    &splitter_stats);
        const auto rounds = graph::coarsest_lumping(
            chain.rates(), initial, graph::LumpingAlgorithm::Rounds, &rounds_stats);
        EXPECT_EQ(splitter.count, rounds.count) << what;
        EXPECT_EQ(splitter.block_of, rounds.block_of) << what;
        EXPECT_EQ(splitter_stats.blocks, rounds_stats.blocks) << what;
    };

    for (const unsigned seed : {3u, 7u, 11u, 23u}) {
        const auto planted = make_planted(5, 4, seed);
        // Signature partition (the planted blocks), a coarser seed (parity),
        // and the trivial partition.
        identical(planted.chain, planted.block_of, "planted seed " + std::to_string(seed));
        std::vector<std::size_t> parity(planted.chain.state_count());
        for (std::size_t s = 0; s < parity.size(); ++s) parity[s] = planted.block_of[s] % 2;
        identical(planted.chain, parity, "parity seed " + std::to_string(seed));
        identical(planted.chain,
                  std::vector<std::size_t>(planted.chain.state_count(), 0),
                  "trivial seed " + std::to_string(seed));
    }

    // Fully random chains: every rate distinct, the refinement shatters the
    // partition — the two algorithms must shatter it identically.
    std::mt19937 rng(99);
    std::uniform_real_distribution<double> rate(0.1, 3.0);
    for (int round = 0; round < 3; ++round) {
        const std::size_t n = 40;
        arcade::linalg::CsrBuilder builder(n, n);
        std::uniform_int_distribution<std::size_t> pick(0, n - 1);
        for (std::size_t s = 0; s < n; ++s) {
            for (int k = 0; k < 4; ++k) {
                const std::size_t t = pick(rng);
                if (t != s) builder.add(s, t, rate(rng));
            }
        }
        ctmc::Ctmc chain(builder.build(), std::vector<double>(n, 1.0 / n));
        identical(chain, std::vector<std::size_t>(n, 0), "random " + std::to_string(round));
    }
}

TEST(CoarsestLumping, SplitterQueueMatchesRoundsOnWatertreeEncodings) {
    // The acceptance chains that matter: the paper's compiled models.  The
    // initial partition is the model's measure signature (labels + service
    // levels + cost rates), rebuilt here by exact-value grouping.
    core::CompileOptions lumped;
    lumped.encoding = core::Encoding::Lumped;
    for (const char* name : {"DED", "FRF-1", "FFF-2"}) {
        for (const bool individual : {true, false}) {
            const auto model = individual
                                   ? core::compile(wt::line2(wt::strategy(name)))
                                   : core::compile(wt::line2(wt::strategy(name)), lumped);
            // Group states by their full signature rows.
            std::map<std::vector<std::uint64_t>, std::size_t> ids;
            std::vector<std::size_t> initial(model.state_count());
            const auto signature = model.lump_signature();
            for (std::size_t s = 0; s < model.state_count(); ++s) {
                std::vector<std::uint64_t> key;
                for (const auto& label : signature.labels) {
                    key.push_back(model.chain().label(label)[s] ? 1 : 0);
                }
                for (const auto& row : signature.values) {
                    key.push_back(graph::double_bits(row[s]));
                }
                initial[s] = ids.emplace(std::move(key), ids.size()).first->second;
            }
            graph::LumpingStats splitter_stats;
            graph::LumpingStats rounds_stats;
            const auto splitter = graph::coarsest_lumping(
                model.chain().rates(), initial,
                graph::LumpingAlgorithm::SplitterQueue, &splitter_stats);
            const auto rounds =
                graph::coarsest_lumping(model.chain().rates(), initial,
                                        graph::LumpingAlgorithm::Rounds, &rounds_stats);
            EXPECT_EQ(splitter.block_of, rounds.block_of)
                << name << (individual ? " individual" : " lumped");
            // The point of the rewrite: the splitter queue scans a fraction
            // of the edges the round-based sweeps do on the individual
            // encoding (deterministic, so this is a hard invariant).
            if (individual) {
                EXPECT_LT(splitter_stats.edges_scanned, rounds_stats.edges_scanned)
                    << name;
            }
        }
    }
}

TEST(CoarsestLumping, InitialPartitionIsNeverCoarsened) {
    // Two bitwise-identical halves forced apart by the initial partition.
    arcade::linalg::CsrBuilder builder(4, 4);
    builder.add(0, 1, 1.0);
    builder.add(1, 0, 1.0);
    builder.add(2, 3, 1.0);
    builder.add(3, 2, 1.0);
    const auto rates = builder.build();
    EXPECT_EQ(graph::coarsest_lumping(rates, {0, 0, 0, 0}).count, 1u);
    EXPECT_EQ(graph::coarsest_lumping(rates, {0, 0, 1, 1}).count, 2u);
}

TEST(CoarsestLumping, DegenerateInputsAgreeBitwiseAcrossAlgorithms) {
    // The worklist refinement and the round-based reference must return the
    // identical partition on the degenerate shapes too: a single-state
    // chain, states with no transitions at all, and disconnected components.
    const auto both = [](const arcade::linalg::CsrMatrix& rates,
                         const std::vector<std::size_t>& initial,
                         const std::string& what) {
        graph::LumpingStats splitter_stats;
        graph::LumpingStats rounds_stats;
        const auto splitter =
            graph::coarsest_lumping(rates, initial,
                                    graph::LumpingAlgorithm::SplitterQueue,
                                    &splitter_stats);
        const auto rounds = graph::coarsest_lumping(
            rates, initial, graph::LumpingAlgorithm::Rounds, &rounds_stats);
        EXPECT_EQ(splitter.count, rounds.count) << what;
        EXPECT_EQ(splitter.block_of, rounds.block_of) << what;
        EXPECT_EQ(splitter_stats.blocks, rounds_stats.blocks) << what;
        return splitter;
    };

    // Single-state chain: one block, trivially.
    {
        arcade::linalg::CsrBuilder builder(1, 1);
        const auto partition = both(builder.build(), {0}, "single state");
        EXPECT_EQ(partition.count, 1u);
        EXPECT_EQ(partition.block_of, std::vector<std::size_t>{0});
    }
    // No transitions: the initial partition is already the answer, in
    // first-occurrence numbering.
    {
        arcade::linalg::CsrBuilder builder(4, 4);
        const auto partition = both(builder.build(), {3, 1, 3, 1}, "no transitions");
        EXPECT_EQ(partition.count, 2u);
        EXPECT_EQ(partition.block_of, (std::vector<std::size_t>{0, 1, 0, 1}));
    }
    // Disconnected chain: two 2-cycles with different rates plus two
    // isolated states.
    {
        arcade::linalg::CsrBuilder builder(6, 6);
        builder.add(0, 1, 1.0);
        builder.add(1, 0, 1.0);
        builder.add(2, 3, 2.0);
        builder.add(3, 2, 2.0);
        const auto rates = builder.build();
        // Intra-block rates are unconstrained by ordinary lumpability, so
        // the trivial initial partition is already lumpable — a single
        // absorbing macro state, no matter how disconnected the chain is.
        EXPECT_EQ(both(rates, {0, 0, 0, 0, 0, 0}, "disconnected trivial").count, 1u);
        // Disconnected components never exchange rate, so an initial
        // partition separating only the components cannot refine further.
        EXPECT_EQ(both(rates, {0, 0, 0, 0, 0, 1}, "disconnected sticky").count, 2u);
        // Putting the cycle targets into their own block forces cascading
        // splits: {0,2,4,5} separates by rate into {1,3} (1.0 vs 2.0 vs
        // nothing — an absent edge is a different signature than a zero
        // sum), and the refined blocks then split {1,3} apart in turn.
        const auto partition = both(rates, {0, 1, 0, 1, 0, 0}, "disconnected cascade");
        EXPECT_EQ(partition.count, 5u);
        EXPECT_EQ(partition.block_of[4], partition.block_of[5]);
        EXPECT_NE(partition.block_of[0], partition.block_of[2]);
        EXPECT_NE(partition.block_of[0], partition.block_of[4]);
        EXPECT_NE(partition.block_of[1], partition.block_of[3]);
    }
}

TEST(QuotientCtmc, AgreesWithOriginalOnEverySolver) {
    const auto planted = make_planted(6, 3, /*seed=*/11);
    const ctmc::QuotientCtmc quotient(planted.chain, planted_signature(planted));
    ASSERT_EQ(quotient.block_count(), planted.blocks);
    EXPECT_DOUBLE_EQ(quotient.reduction_ratio(), 3.0);

    const auto& initial = planted.chain.initial_distribution();
    const auto q_initial = quotient.project(initial);

    // Transient distributions project exactly.
    for (const double t : {0.5, 2.0, 10.0}) {
        const auto full = ctmc::transient_distribution(planted.chain, initial, t);
        const auto lumped = ctmc::transient_distribution(quotient.chain(), q_initial, t);
        expect_near_rel(quotient.project(full), lumped, 1e-10,
                        "transient t=" + std::to_string(t));
    }

    // Steady state projects exactly.
    expect_near_rel(quotient.project(ctmc::steady_state(planted.chain)),
                    ctmc::steady_state(quotient.chain()), 1e-8, "steady state");

    // Bounded until with block-constant masks.
    std::vector<bool> phi(planted.chain.state_count());
    std::vector<bool> psi(planted.chain.state_count());
    for (std::size_t s = 0; s < phi.size(); ++s) {
        phi[s] = planted.block_of[s] != 1;  // avoid block 1 ...
        psi[s] = planted.block_of[s] == 4;  // ... until block 4
    }
    for (const double t : {0.25, 1.0, 4.0}) {
        const double full = ctmc::bounded_until_probability(planted.chain, initial, phi,
                                                            psi, t);
        const double lumped = ctmc::bounded_until_probability(
            quotient.chain(), q_initial, quotient.project_mask(phi),
            quotient.project_mask(psi), t);
        EXPECT_NEAR(full, lumped, 1e-10) << "bounded until t=" << t;
    }

    // Markov rewards with a block-constant structure.
    const arcade::rewards::RewardStructure reward("value", planted.state_values);
    const arcade::rewards::RewardStructure q_reward(
        "value", quotient.project_values(planted.state_values));
    for (const double t : {0.5, 3.0}) {
        EXPECT_NEAR(
            arcade::rewards::instantaneous_reward(planted.chain, initial, reward, t),
            arcade::rewards::instantaneous_reward(quotient.chain(), q_initial, q_reward, t),
            1e-9)
            << "instantaneous reward t=" << t;
        EXPECT_NEAR(
            arcade::rewards::accumulated_reward(planted.chain, initial, reward, t),
            arcade::rewards::accumulated_reward(quotient.chain(), q_initial, q_reward, t),
            1e-9)
            << "accumulated reward t=" << t;
    }
}

TEST(QuotientCtmc, LiftAndProjectRoundTripBlockMasses) {
    const auto planted = make_planted(4, 5, /*seed=*/3);
    const ctmc::QuotientCtmc quotient(planted.chain, planted_signature(planted));
    const auto pi = ctmc::steady_state(quotient.chain());
    const auto lifted = quotient.lift(pi);
    EXPECT_EQ(lifted.size(), planted.chain.state_count());
    // Lifting spreads each block's mass uniformly; projecting back returns
    // the block masses exactly and preserves the total.
    expect_near_rel(quotient.project(lifted), pi, 1e-12, "project(lift)");
    double total = 0.0;
    for (const double p : lifted) total += p;
    EXPECT_NEAR(total, 1.0, 1e-9);

    // Per-state series lift: one lifted distribution per grid point.
    const std::vector<double> times{0.0, 1.0, 2.5};
    const auto series = ctmc::transient_series(
        quotient.chain(), quotient.chain().initial_distribution(), times);
    const auto lifted_series = quotient.lift_series(series);
    ASSERT_EQ(lifted_series.size(), times.size());
    for (std::size_t i = 0; i < times.size(); ++i) {
        expect_near_rel(quotient.project(lifted_series[i]), series[i], 1e-12,
                        "project(lift_series)");
    }
}

TEST(QuotientCtmc, SignatureLabelPreventsMerging) {
    // Two states with identical dynamics: mergeable with an empty
    // signature, split by a label that distinguishes them.
    arcade::linalg::CsrBuilder builder(2, 2);
    builder.add(0, 1, 1.5);
    builder.add(1, 0, 1.5);
    ctmc::Ctmc chain(builder.build(), {0.5, 0.5});
    chain.set_label("special", {true, false});

    EXPECT_EQ(ctmc::QuotientCtmc(chain, {}).block_count(), 1u);

    ctmc::LumpSignature with_label;
    with_label.labels = {"special"};
    EXPECT_EQ(ctmc::QuotientCtmc(chain, with_label).block_count(), 2u);

    ctmc::LumpSignature unknown;
    unknown.labels = {"missing"};
    EXPECT_THROW((void)ctmc::QuotientCtmc(chain, unknown), arcade::InvalidArgument);
}

TEST(QuotientCtmc, NonConstantProjectionsAreRejected) {
    const auto planted = make_planted(3, 2, /*seed=*/5);
    const ctmc::QuotientCtmc quotient(planted.chain, planted_signature(planted));
    ASSERT_GT(planted.chain.state_count(), quotient.block_count());

    std::vector<bool> mask(planted.chain.state_count(), false);
    mask[0] = true;  // splits block 0 (copies 0 and 1 share it)
    EXPECT_THROW((void)quotient.project_mask(mask), arcade::InvalidArgument);

    std::vector<double> values(planted.chain.state_count(), 0.0);
    values[0] = 1.0;
    EXPECT_THROW((void)quotient.project_values(values), arcade::InvalidArgument);
}

TEST(AutoLumping, ReachesHandLumpedTable1SizesOnLine2) {
    // Acceptance: auto-lumping the paper's (individual) encoding must reach
    // the hand-lumped encoding's Table 1 state counts — or beat them, since
    // the refinement computes the *coarsest* quotient for the measure
    // signature while the hand encoding keeps queue detail the measures
    // never read.
    core::CompileOptions lumped;
    lumped.encoding = core::Encoding::Lumped;
    for (const char* name : {"DED", "FRF-1", "FRF-2", "FFF-1", "FFF-2"}) {
        const auto individual = core::compile(wt::line2(wt::strategy(name)));
        const auto hand = core::compile(wt::line2(wt::strategy(name)), lumped);
        const auto quotient = individual.quotient().first;
        EXPECT_LE(quotient->block_count(), hand.state_count()) << name;
        EXPECT_LE(quotient->chain().transition_count(), hand.transition_count()) << name;
        // Spot-check exactness: availability through the quotient equals the
        // hand-lumped availability.
        EXPECT_NEAR(ctmc::steady_state_probability(quotient->chain(),
                                                   quotient->chain().label("operational")),
                    core::availability(hand), 1e-9)
            << name;
    }
}

TEST(AutoLumping, ReachesHandLumpedTable1SizesOnLine1) {
    // Line 1's 111809-state FRF chain is the paper's largest model; one
    // strategy per policy keeps the test affordable.
    core::CompileOptions lumped;
    lumped.encoding = core::Encoding::Lumped;
    for (const char* name : {"DED", "FRF-1"}) {
        const auto individual = core::compile(wt::line1(wt::strategy(name)));
        const auto hand = core::compile(wt::line1(wt::strategy(name)), lumped);
        const auto quotient = individual.quotient().first;
        EXPECT_LE(quotient->block_count(), hand.state_count()) << name;
    }
}

TEST(AutoLumping, SessionCountsLumpCacheTraffic) {
    engine::AnalysisSession session;
    core::CompileOptions options;
    options.encoding = core::Encoding::Individual;
    options.reduction = core::ReductionPolicy::Auto;
    options.symmetry = core::SymmetryPolicy::Off;  // counters pin the full chain
    const auto model = session.compile(wt::line2(wt::strategy("FRF-1")), options);

    const auto first = session.quotient(model);
    const auto second = session.quotient(model);
    EXPECT_EQ(first.get(), second.get());
    const auto stats = session.stats();
    EXPECT_EQ(stats.lump_misses, 1u);
    EXPECT_EQ(stats.lump_hits, 1u);
    EXPECT_EQ(stats.lump_states_in, model->state_count());
    EXPECT_EQ(stats.lump_states_out, first->block_count());
    // The individual encoding lumps by orders of magnitude (Table 1).
    EXPECT_GT(stats.reduction_ratio(), 10.0);

    // The session's steady-state cache serves the lifted quotient solve.
    const double avail = core::availability(session, model);
    core::CompileOptions off = options;
    off.reduction = core::ReductionPolicy::Off;
    engine::AnalysisSession plain;
    EXPECT_NEAR(avail,
                core::availability(plain, plain.compile(wt::line2(wt::strategy("FRF-1")),
                                                        off)),
                1e-9);
}

TEST(AutoLumping, PaperGridsRenderIdenticalRowsWithReductionOnAndOff) {
    // Acceptance: every sweep::paper grid produces numerically identical
    // rows with reduction on and off.
    using GridFn = sweep::ScenarioGrid (*)();
    const std::pair<const char*, GridFn> grids[] = {
        {"fig3", sweep::paper::fig3},   {"fig4", sweep::paper::fig4},
        {"fig5", sweep::paper::fig5},   {"fig6", sweep::paper::fig6},
        {"fig7", sweep::paper::fig7},   {"fig8", sweep::paper::fig8},
        {"fig9", sweep::paper::fig9},   {"fig10", sweep::paper::fig10},
        {"fig11", sweep::paper::fig11}, {"table1", sweep::paper::table1},
        {"table2", sweep::paper::table2},
        {"everything", sweep::paper::everything},
    };
    engine::AnalysisSession session_off;
    engine::AnalysisSession session_auto;
    sweep::RunnerOptions off;
    off.reduction = core::ReductionPolicy::Off;
    sweep::RunnerOptions automatic;
    automatic.reduction = core::ReductionPolicy::Auto;
    sweep::SweepRunner runner_off(session_off, off);
    sweep::SweepRunner runner_auto(session_auto, automatic);

    for (const auto& [name, fn] : grids) {
        const auto grid = fn();
        const auto baseline = runner_off.run(grid);
        const auto reduced = runner_auto.run(grid);
        ASSERT_EQ(baseline.results.size(), reduced.results.size()) << name;
        for (std::size_t i = 0; i < baseline.results.size(); ++i) {
            const auto& a = baseline.results[i];
            const auto& b = reduced.results[i];
            ASSERT_EQ(a.item.key(), b.item.key()) << name;
            // Model sizes describe the *compiled* model either way; the
            // reduction happens at analysis time.
            EXPECT_EQ(a.model_states, b.model_states) << name;
            expect_near_rel(a.values, b.values, 1e-8,
                            std::string(name) + " " + a.item.key());
        }
    }
    // The auto runner actually lumped.  The paper grids analyse hand-lumped
    // models, which turn out to be exactly the coarsest quotient for the
    // full measure signature — so the aggregate ratio here is 1.0, the
    // strongest possible endorsement of the hand encoding (and the
    // individual-encoding reduction is asserted in
    // SessionCountsLumpCacheTraffic and the Table 1 parity tests).
    const auto stats = session_auto.stats();
    EXPECT_GT(stats.lump_misses, 0u);
    EXPECT_GE(stats.reduction_ratio(), 1.0);
}
