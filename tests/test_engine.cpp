// Engine layer: packed state store, deterministic parallel exploration,
// analysis-session caching, workspace pooling.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "arcade/compiler.hpp"
#include "arcade/measures.hpp"
#include "arcade/modules_compiler.hpp"
#include "ctmc/transient.hpp"
#include "engine/explore.hpp"
#include "engine/session.hpp"
#include "engine/state_store.hpp"
#include "engine/workspace.hpp"
#include "modules/explorer.hpp"
#include "support/errors.hpp"
#include "watertree/watertree.hpp"

namespace engine = arcade::engine;
namespace core = arcade::core;
namespace modules = arcade::modules;
namespace wt = arcade::watertree;

namespace {

std::vector<std::int64_t> roundtrip(const engine::StateLayout& layout,
                                    const std::vector<std::int64_t>& values) {
    std::vector<std::uint64_t> words(layout.words_per_state());
    layout.pack(std::span<const std::int64_t>(values), words.data());
    std::vector<std::int64_t> out(layout.field_count());
    layout.unpack(words.data(), std::span<std::int64_t>(out));
    return out;
}

}  // namespace

TEST(StateLayout, RoundTripBasicRanges) {
    const engine::StateLayout layout({{0, 2}, {0, 9}, {0, 1}, {0, 255}});
    const std::vector<std::int64_t> values{2, 7, 1, 200};
    EXPECT_EQ(roundtrip(layout, values), values);
    EXPECT_EQ(layout.words_per_state(), 1u);
}

TEST(StateLayout, RoundTripNegativeLowerBounds) {
    const engine::StateLayout layout({{-5, 3}, {-100, -50}, {-1, 1}});
    for (const auto& values : std::vector<std::vector<std::int64_t>>{
             {-5, -100, -1}, {3, -50, 1}, {0, -77, 0}}) {
        EXPECT_EQ(roundtrip(layout, values), values);
    }
}

TEST(StateLayout, SingleValueRangesCostZeroBits) {
    // All-constant fields still produce a valid (1-word) layout.
    const engine::StateLayout constant({{7, 7}, {-3, -3}});
    EXPECT_EQ(constant.words_per_state(), 1u);
    EXPECT_EQ(roundtrip(constant, {7, -3}), (std::vector<std::int64_t>{7, -3}));

    // A single-value field between wide fields costs nothing: 2x32 bits
    // plus the constant still fit one word.
    const engine::StateLayout mixed({{0, (1ll << 32) - 1}, {42, 42}, {0, (1ll << 32) - 1}});
    EXPECT_EQ(mixed.words_per_state(), 1u);
    const std::vector<std::int64_t> values{123456789, 42, 987654321};
    EXPECT_EQ(roundtrip(mixed, values), values);
}

TEST(StateLayout, ZeroWidthFieldAfterExactlyFullWord) {
    // 32 two-bit fields fill word 0 exactly; the zero-width field after them
    // must not be assigned shift 64 (which would shift a uint64 by 64, UB).
    std::vector<engine::FieldSpec> fields(32, engine::FieldSpec{0, 3});
    fields.push_back(engine::FieldSpec{5, 5});
    fields.push_back(engine::FieldSpec{0, 1});
    const engine::StateLayout layout(fields);
    std::vector<std::int64_t> values(32, 2);
    values.push_back(5);
    values.push_back(1);
    EXPECT_EQ(roundtrip(layout, values), values);
    std::vector<std::uint64_t> words(layout.words_per_state());
    layout.pack(std::span<const std::int64_t>(values), words.data());
    EXPECT_EQ(layout.extract(words.data(), 32), 5);
    EXPECT_EQ(layout.extract(words.data(), 33), 1);
}

TEST(StateLayout, FieldsNeverStraddleWords) {
    // 40 + 40 bits cannot share a word: second field starts word 1.
    const engine::StateLayout layout({{0, (1ll << 40) - 1}, {0, (1ll << 40) - 1}});
    EXPECT_EQ(layout.words_per_state(), 2u);
    const std::vector<std::int64_t> values{(1ll << 40) - 1, (1ll << 39) + 17};
    EXPECT_EQ(roundtrip(layout, values), values);
}

TEST(StateLayout, ExtractSingleField) {
    const engine::StateLayout layout({{-5, 3}, {0, 100}, {7, 7}});
    std::vector<std::uint64_t> words(layout.words_per_state());
    layout.pack(std::span<const std::int64_t>(std::vector<std::int64_t>{-2, 55, 7}), words.data());
    EXPECT_EQ(layout.extract(words.data(), 0), -2);
    EXPECT_EQ(layout.extract(words.data(), 1), 55);
    EXPECT_EQ(layout.extract(words.data(), 2), 7);
}

TEST(StateLayout, PackRejectsOutOfRangeValues) {
    const engine::StateLayout layout({{0, 2}});
    std::vector<std::uint64_t> words(layout.words_per_state());
    EXPECT_THROW(layout.pack(std::span<const std::int64_t>(std::vector<std::int64_t>{3}), words.data()),
                 arcade::ModelError);
    EXPECT_THROW(layout.pack(std::span<const std::int64_t>(std::vector<std::int64_t>{-1}), words.data()),
                 arcade::ModelError);
    EXPECT_THROW(engine::StateLayout({{2, 1}}), arcade::InvalidArgument);
}

TEST(StateStore, InternDeduplicatesAndSurvivesRehash) {
    const engine::StateLayout layout({{0, 1 << 20}});
    engine::StateStore store(layout);
    std::vector<std::uint64_t> words(layout.words_per_state());
    // Enough states to force several table growths past the initial 1024.
    const std::int64_t n = 5000;
    for (std::int64_t v = 0; v < n; ++v) {
        layout.pack(std::span<const std::int64_t>(std::vector<std::int64_t>{v}), words.data());
        const auto [index, inserted] = store.intern(words.data());
        EXPECT_TRUE(inserted);
        EXPECT_EQ(index, static_cast<std::size_t>(v));
    }
    EXPECT_EQ(store.size(), static_cast<std::size_t>(n));
    for (std::int64_t v = 0; v < n; ++v) {
        layout.pack(std::span<const std::int64_t>(std::vector<std::int64_t>{v}), words.data());
        const auto [index, inserted] = store.intern(words.data());
        EXPECT_FALSE(inserted);
        EXPECT_EQ(index, static_cast<std::size_t>(v));
        EXPECT_EQ(store.find(words.data()), static_cast<std::size_t>(v));
        EXPECT_EQ(store.value(index, 0), v);
    }
    layout.pack(std::span<const std::int64_t>(std::vector<std::int64_t>{n + 1}), words.data());
    EXPECT_EQ(store.find(words.data()), SIZE_MAX);
}

namespace {

/// Asserts two compiled models are structurally identical: state count,
/// canonical per-state encodings, and the exact rate matrix.
void expect_identical(const core::CompiledModel& a, const core::CompiledModel& b) {
    ASSERT_EQ(a.state_count(), b.state_count());
    ASSERT_EQ(a.transition_count(), b.transition_count());
    for (std::size_t s = 0; s < a.state_count(); ++s) {
        ASSERT_EQ(a.encoded_state(s), b.encoded_state(s)) << "state " << s;
    }
    EXPECT_EQ(a.chain().rates().row_ptr(), b.chain().rates().row_ptr());
    EXPECT_EQ(a.chain().rates().col_idx(), b.chain().rates().col_idx());
    EXPECT_EQ(a.chain().rates().values(), b.chain().rates().values());
    EXPECT_EQ(a.service_levels(), b.service_levels());
}

}  // namespace

TEST(ParallelExploration, CompileMatchesSerialOnLine2) {
    const auto model = wt::line2(wt::strategy("FRF-1"));
    core::CompileOptions serial;
    serial.threads = 1;
    serial.symmetry = core::SymmetryPolicy::Off;  // this test pins the full chain
    const auto reference = core::compile(model, serial);
    EXPECT_EQ(reference.state_count(), 8129u);  // paper Table 1

    for (const unsigned threads : {2u, 4u}) {
        core::CompileOptions parallel;
        parallel.threads = threads;
        parallel.symmetry = core::SymmetryPolicy::Off;
        expect_identical(reference, core::compile(model, parallel));
    }
}

TEST(ParallelExploration, LumpedEncodingMatchesSerial) {
    const auto model = wt::line1(wt::strategy("FFF-2"));
    core::CompileOptions serial;
    serial.encoding = core::Encoding::Lumped;
    serial.threads = 1;
    core::CompileOptions parallel = serial;
    parallel.threads = 3;
    expect_identical(core::compile(model, serial), core::compile(model, parallel));
}

TEST(ParallelExploration, ModuleExplorerMatchesSerialOnLine2) {
    const auto system = core::to_reactive_modules(wt::line2(wt::strategy("FRF-1")));
    modules::ExploreOptions serial;
    serial.threads = 1;
    const auto reference = modules::explore(system, serial);

    modules::ExploreOptions parallel;
    parallel.threads = 2;
    const auto explored = modules::explore(system, parallel);

    ASSERT_EQ(reference.chain.state_count(), explored.chain.state_count());
    ASSERT_EQ(reference.chain.transition_count(), explored.chain.transition_count());
    for (std::size_t s = 0; s < reference.state_count(); ++s) {
        ASSERT_EQ(reference.valuation(s), explored.valuation(s)) << "state " << s;
    }
    EXPECT_EQ(reference.chain.rates().row_ptr(), explored.chain.rates().row_ptr());
    EXPECT_EQ(reference.chain.rates().col_idx(), explored.chain.rates().col_idx());
    EXPECT_EQ(reference.chain.rates().values(), explored.chain.rates().values());
    for (const auto& name : reference.chain.label_names()) {
        EXPECT_EQ(reference.chain.label(name), explored.chain.label(name));
    }
}

TEST(ExploredModel, StatesAdapterMaterialisesValuations) {
    const auto system = core::to_reactive_modules(wt::line2(wt::strategy("DED")));
    const auto explored = modules::explore(system);
    const auto states = explored.states();
    ASSERT_EQ(states.size(), explored.state_count());
    for (std::size_t s = 0; s < states.size(); ++s) {
        EXPECT_EQ(states[s], explored.valuation(s));
    }
}

TEST(AnalysisSession, CompileCacheHitsArePointerIdentical) {
    engine::AnalysisSession session;
    const auto first = session.compile(wt::line2(wt::strategy("FRF-1")));
    const auto second = session.compile(wt::line2(wt::strategy("FRF-1")));
    EXPECT_EQ(first.get(), second.get());

    // A different strategy, encoding or max_states is a different entry.
    const auto other = session.compile(wt::line2(wt::strategy("FFF-1")));
    EXPECT_NE(first.get(), other.get());
    core::CompileOptions lumped;
    lumped.encoding = core::Encoding::Lumped;
    const auto third = session.compile(wt::line2(wt::strategy("FRF-1")), lumped);
    EXPECT_NE(first.get(), third.get());

    const auto stats = session.stats();
    EXPECT_EQ(stats.compile_hits, 1u);
    EXPECT_EQ(stats.compile_misses, 3u);
}

TEST(AnalysisSession, ExploreCacheHitsArePointerIdentical) {
    engine::AnalysisSession session;
    const auto system = core::to_reactive_modules(wt::line2(wt::strategy("DED")));
    const auto first = session.explore(system);
    const auto second = session.explore(system);
    EXPECT_EQ(first.get(), second.get());
    EXPECT_EQ(session.stats().explore_hits, 1u);
}

TEST(AnalysisSession, SteadyStateSolvedOncePerModel) {
    engine::AnalysisSession session;
    core::CompileOptions lumped;
    lumped.encoding = core::Encoding::Lumped;
    const auto model = session.compile(wt::line2(wt::strategy("FRF-1")), lumped);

    const double a1 = session.availability(model);
    const double cost = session.steady_state_cost(model);
    const double a2 = session.availability(model);
    EXPECT_EQ(a1, a2);
    EXPECT_GT(cost, 0.0);
    EXPECT_NEAR(a1, core::availability(*model), 1e-12);

    const auto stats = session.stats();
    EXPECT_EQ(stats.steady_state_misses, 1u);
    EXPECT_EQ(stats.steady_state_hits, 2u);

    session.clear();
    EXPECT_EQ(session.stats().steady_state_misses, 0u);
}

TEST(Workspace, PoolReusesBuffersAndPreservesResults) {
    engine::AnalysisSession session;
    core::CompileOptions lumped;
    lumped.encoding = core::Encoding::Lumped;
    const auto model = session.compile(wt::line2(wt::strategy("FRF-2")), lumped);
    const auto disaster = wt::disaster2();
    const std::vector<double> times{0.0, 10.0, 25.0, 50.0};

    const auto plain = core::survivability_series(*model, disaster, 1.0 / 3.0, times);
    const auto pooled = core::survivability_series(*model, disaster, 1.0 / 3.0, times,
                                                   core::session_transient(session));
    ASSERT_EQ(plain.size(), pooled.size());
    for (std::size_t i = 0; i < plain.size(); ++i) {
        EXPECT_NEAR(plain[i], pooled[i], 1e-14);
    }
    EXPECT_GT(session.workspace().acquire_count(), 0u);

    // A second curve on the same model reuses the released buffers.
    (void)core::survivability_series(*model, disaster, 2.0 / 3.0, times,
                                     core::session_transient(session));
    EXPECT_GT(session.workspace().reuse_count(), 0u);
}

