// Unit tests: CTMC transient/steady-state/bounded-until against closed forms.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <memory>
#include <random>
#include <span>

#include "ctmc/bounded_until.hpp"
#include "ctmc/ctmc.hpp"
#include "ctmc/steady_state.hpp"
#include "ctmc/transient.hpp"
#include "ctmc/transient_batch.hpp"
#include "support/errors.hpp"

namespace ctmc = arcade::ctmc;
namespace la = arcade::linalg;

namespace {

ctmc::Ctmc two_state(double l, double m) {
    la::CsrBuilder b(2, 2);
    b.add(0, 1, l);
    if (m > 0.0) b.add(1, 0, m);
    return ctmc::Ctmc(b.build(), {1.0, 0.0});
}

/// Erlang chain: k sequential exp(rate) stages 0 -> 1 -> ... -> k.
ctmc::Ctmc erlang(int k, double rate) {
    la::CsrBuilder b(k + 1, k + 1);
    for (int i = 0; i < k; ++i) b.add(i, i + 1, rate);
    std::vector<double> init(k + 1, 0.0);
    init[0] = 1.0;
    return ctmc::Ctmc(b.build(), std::move(init));
}

}  // namespace

TEST(Transient, PureDeathMatchesExponential) {
    const auto chain = two_state(0.5, 0.0);
    for (double t : {0.1, 1.0, 5.0}) {
        const auto dist =
            ctmc::transient_distribution(chain, chain.initial_distribution(), t);
        EXPECT_NEAR(dist[0], std::exp(-0.5 * t), 1e-10) << t;
        EXPECT_NEAR(dist[1], 1.0 - std::exp(-0.5 * t), 1e-10) << t;
    }
}

TEST(Transient, TwoStateClosedForm) {
    // p_up(t) = m/(l+m) + l/(l+m) e^{-(l+m)t}
    const double l = 0.2;
    const double m = 1.5;
    const auto chain = two_state(l, m);
    for (double t : {0.3, 2.0, 10.0}) {
        const auto dist =
            ctmc::transient_distribution(chain, chain.initial_distribution(), t);
        const double expected = m / (l + m) + l / (l + m) * std::exp(-(l + m) * t);
        EXPECT_NEAR(dist[0], expected, 1e-10) << t;
    }
}

TEST(Transient, SeriesSteppingAgreesWithDirectSolves) {
    const auto chain = two_state(0.7, 0.9);
    const std::vector<double> times{0.0, 0.5, 1.0, 2.5, 7.0};
    const auto series =
        ctmc::transient_series(chain, chain.initial_distribution(), times);
    for (std::size_t i = 0; i < times.size(); ++i) {
        const auto direct =
            ctmc::transient_distribution(chain, chain.initial_distribution(), times[i]);
        EXPECT_NEAR(series[i][0], direct[0], 1e-9) << "t=" << times[i];
        EXPECT_NEAR(series[i][1], direct[1], 1e-9);
    }
}

TEST(Transient, ErlangStageDistributionIsPoissonTruncated) {
    // P(X_t in stage j) for the Erlang chain = Poisson pmf / tail.
    const int k = 4;
    const double rate = 2.0;
    const double t = 1.3;
    const auto chain = erlang(k, rate);
    const auto dist = ctmc::transient_distribution(chain, chain.initial_distribution(), t);
    double tail = 1.0;
    for (int j = 0; j < k; ++j) {
        const double pmf = std::exp(-rate * t) * std::pow(rate * t, j) / std::tgamma(j + 1.0);
        EXPECT_NEAR(dist[j], pmf, 1e-10) << j;
        tail -= pmf;
    }
    EXPECT_NEAR(dist[k], tail, 1e-10);
}

TEST(SteadyState, IrreducibleTwoState) {
    const double l = 1.0 / 100.0;
    const double m = 0.5;
    const auto chain = two_state(l, m);
    const auto pi = ctmc::steady_state(chain);
    EXPECT_NEAR(pi[0], m / (l + m), 1e-10);
}

TEST(SteadyState, AbsorbingChainConcentratesInBsccs) {
    // 0 -> 1 (rate 1) and 0 -> 2 (rate 3); 1, 2 absorbing.
    la::CsrBuilder b(3, 3);
    b.add(0, 1, 1.0);
    b.add(0, 2, 3.0);
    const ctmc::Ctmc chain(b.build(), {1.0, 0.0, 0.0});
    const auto pi = ctmc::steady_state(chain);
    EXPECT_NEAR(pi[0], 0.0, 1e-12);
    EXPECT_NEAR(pi[1], 0.25, 1e-9);
    EXPECT_NEAR(pi[2], 0.75, 1e-9);
}

TEST(SteadyState, MixtureOfInitialStates) {
    // Two disconnected 2-state chains; initial mass 0.3 / 0.7.
    la::CsrBuilder b(4, 4);
    b.add(0, 1, 1.0);
    b.add(1, 0, 1.0);   // chain A: pi = (1/2, 1/2)
    b.add(2, 3, 1.0);
    b.add(3, 2, 3.0);   // chain B: pi = (3/4, 1/4)
    const ctmc::Ctmc chain(b.build(), {0.3, 0.0, 0.7, 0.0});
    const auto pi = ctmc::steady_state(chain);
    EXPECT_NEAR(pi[0], 0.15, 1e-9);
    EXPECT_NEAR(pi[1], 0.15, 1e-9);
    EXPECT_NEAR(pi[2], 0.525, 1e-9);
    EXPECT_NEAR(pi[3], 0.175, 1e-9);
}

TEST(ReachabilityProbability, BranchingClosedForm) {
    // 0 -> 1 rate 1, 0 -> 2 rate 3; target {2}: p = 3/4 from 0.
    la::CsrBuilder b(3, 3);
    b.add(0, 1, 1.0);
    b.add(0, 2, 3.0);
    const ctmc::Ctmc chain(b.build(), {1.0, 0.0, 0.0});
    std::vector<bool> allowed(3, true);
    std::vector<bool> target{false, false, true};
    const auto p = ctmc::reachability_probability(chain, allowed, target);
    EXPECT_NEAR(p[0], 0.75, 1e-10);
    EXPECT_NEAR(p[1], 0.0, 1e-12);
    EXPECT_NEAR(p[2], 1.0, 1e-12);
}

TEST(BoundedUntil, ErlangFirstPassageClosedForm) {
    // P(reach final stage of Erlang(2, r) by t) = 1 - e^{-rt}(1 + rt).
    const double r = 1.7;
    const auto chain = erlang(2, r);
    std::vector<bool> phi(3, true);
    std::vector<bool> psi{false, false, true};
    for (double t : {0.5, 1.0, 3.0}) {
        const double expected = 1.0 - std::exp(-r * t) * (1.0 + r * t);
        EXPECT_NEAR(ctmc::bounded_until_probability(chain, chain.initial_distribution(),
                                                    phi, psi, t),
                    expected, 1e-10)
            << t;
    }
}

TEST(BoundedUntil, PhiRestrictionBlocksDetours) {
    // 0 -> 1 -> 2, but phi excludes 1: P(0 |= phi U<=t {2}) = 0.
    la::CsrBuilder b(3, 3);
    b.add(0, 1, 1.0);
    b.add(1, 2, 1.0);
    const ctmc::Ctmc chain(b.build(), {1.0, 0.0, 0.0});
    std::vector<bool> phi{true, false, true};
    std::vector<bool> psi{false, false, true};
    EXPECT_NEAR(
        ctmc::bounded_until_probability(chain, chain.initial_distribution(), phi, psi, 50.0),
        0.0, 1e-12);
}

TEST(BoundedUntil, AllStatesBackwardAgreesWithForward) {
    const auto chain = erlang(3, 0.9);
    std::vector<bool> phi(4, true);
    std::vector<bool> psi{false, false, false, true};
    const double t = 2.2;
    const auto per_state = ctmc::bounded_until_all_states(chain, phi, psi, t);
    for (std::size_t s = 0; s < 4; ++s) {
        const auto init = ctmc::Ctmc::point_distribution(4, s);
        EXPECT_NEAR(per_state[s],
                    ctmc::bounded_until_probability(chain, init, phi, psi, t), 1e-9)
            << s;
    }
}

TEST(BoundedUntil, SeriesIsMonotoneAndMatchesPointSolves) {
    const auto chain = erlang(2, 1.0);
    std::vector<bool> phi(3, true);
    std::vector<bool> psi{false, false, true};
    const std::vector<double> times{0.0, 0.5, 1.0, 2.0, 4.0};
    const auto series = ctmc::bounded_until_series(chain, chain.initial_distribution(), phi,
                                                   psi, times);
    for (std::size_t i = 1; i < series.size(); ++i) {
        EXPECT_GE(series[i] + 1e-12, series[i - 1]);  // monotone in t
    }
    EXPECT_NEAR(series[0], 0.0, 1e-12);
}

TEST(Transient, AdvanceToDuplicateTimeIsANoOp) {
    const auto chain = two_state(0.7, 0.9);
    ctmc::TransientEvolver evolver(chain, chain.initial_distribution());
    evolver.advance_to(1.0);
    const auto at_one = evolver.distribution();
    evolver.advance_to(1.0);             // exact duplicate
    evolver.advance_to(1.0 - 0.5e-12);   // duplicate within tolerance
    EXPECT_DOUBLE_EQ(evolver.time(), 1.0);  // time never moves backwards
    EXPECT_EQ(evolver.distribution(), at_one);
}

TEST(Transient, AdvanceToDecreasingTimeThrows) {
    const auto chain = two_state(0.7, 0.9);
    ctmc::TransientEvolver evolver(chain, chain.initial_distribution());
    evolver.advance_to(2.0);
    EXPECT_THROW(evolver.advance_to(1.0), arcade::InvalidArgument);
    EXPECT_DOUBLE_EQ(evolver.time(), 2.0);  // failed call left the state alone
}

TEST(BoundedUntil, AllStatesOnZeroRateChainIsExactIndicator) {
    // With phi empty every state of the transformed chain is absorbing: the
    // result must be the exact psi indicator, not a near-zero-rate
    // uniformisation approximation of it.
    la::CsrBuilder b(3, 3);
    b.add(0, 1, 1.0);
    b.add(1, 2, 2.0);
    const ctmc::Ctmc chain(b.build(), {1.0, 0.0, 0.0});
    std::vector<bool> phi{false, false, false};
    std::vector<bool> psi{true, false, true};
    const auto v = ctmc::bounded_until_all_states(chain, phi, psi, 10.0);
    EXPECT_DOUBLE_EQ(v[0], 1.0);
    EXPECT_DOUBLE_EQ(v[1], 0.0);
    EXPECT_DOUBLE_EQ(v[2], 1.0);
}

TEST(BoundedUntil, ForwardBackwardAgreeOnRandomChains) {
    // Property: for any chain, bounded_until_probability from a point
    // distribution at s equals bounded_until_all_states(...)[s].
    std::mt19937 rng(20260729);
    std::uniform_real_distribution<double> rate(0.1, 3.0);
    std::uniform_real_distribution<double> unit(0.0, 1.0);
    for (int trial = 0; trial < 8; ++trial) {
        const std::size_t n = 3 + static_cast<std::size_t>(trial) % 4;
        la::CsrBuilder b(n, n);
        for (std::size_t i = 0; i < n; ++i) {
            for (std::size_t j = 0; j < n; ++j) {
                if (i != j && unit(rng) < 0.5) b.add(i, j, rate(rng));
            }
        }
        const ctmc::Ctmc chain(b.build(), ctmc::Ctmc::point_distribution(n, 0));
        std::vector<bool> phi(n), psi(n);
        for (std::size_t s = 0; s < n; ++s) {
            phi[s] = unit(rng) < 0.7;
            psi[s] = unit(rng) < 0.3;
        }
        const double t = 0.25 + 2.0 * unit(rng);
        const auto per_state = ctmc::bounded_until_all_states(chain, phi, psi, t);
        for (std::size_t s = 0; s < n; ++s) {
            const auto init = ctmc::Ctmc::point_distribution(n, s);
            EXPECT_NEAR(per_state[s],
                        ctmc::bounded_until_probability(chain, init, phi, psi, t), 1e-9)
                << "trial=" << trial << " s=" << s;
        }
    }
}

TEST(Ctmc, MakeAbsorbingDropsTransitions) {
    const auto chain = two_state(1.0, 2.0);
    std::vector<bool> absorbing{false, true};
    const auto transformed = chain.make_absorbing(absorbing);
    EXPECT_EQ(transformed.transition_count(), 1u);
    EXPECT_DOUBLE_EQ(transformed.exit_rate(1), 0.0);
}

TEST(Ctmc, ValidationRejectsBadInputs) {
    la::CsrBuilder b(2, 2);
    b.add(0, 1, 1.0);
    EXPECT_NO_THROW(ctmc::Ctmc(b.build(), {1.0, 0.0}));
    la::CsrBuilder b2(2, 2);
    b2.add(0, 1, 1.0);
    EXPECT_THROW(ctmc::Ctmc(b2.build(), {0.7, 0.0}), std::exception);  // mass != 1
}

TEST(Ctmc, ExitRatesAreCachedAtConstructionAndIgnoreDiagonal) {
    la::CsrBuilder b(3, 3);
    b.add(0, 1, 1.5);
    b.add(0, 2, 2.5);
    b.add(0, 0, 7.0);  // diagonal entries never count towards exit rates
    b.add(1, 2, 0.25);
    const ctmc::Ctmc chain(b.build(), {1.0, 0.0, 0.0});
    EXPECT_DOUBLE_EQ(chain.exit_rate(0), 4.0);
    EXPECT_DOUBLE_EQ(chain.exit_rate(1), 0.25);
    EXPECT_DOUBLE_EQ(chain.exit_rate(2), 0.0);
    EXPECT_DOUBLE_EQ(chain.max_exit_rate(), 4.0);
    // Derived chains recompute their own cache.
    const auto absorbed = chain.make_absorbing({true, false, false});
    EXPECT_DOUBLE_EQ(absorbed.exit_rate(0), 0.0);
    EXPECT_DOUBLE_EQ(absorbed.max_exit_rate(), 0.25);
}

// ---------------------------------------------------------------------------
// BatchTransientEvolver: per-column bitwise identity with TransientEvolver.
// The batch engine is only allowed to amortise structure (one matrix
// traversal, one Fox–Glynn sequence per step) — never arithmetic, so every
// column it carries must hold exactly the bytes a single-vector evolver
// produces for that initial vector.  This is the property the sweep
// runner's fusion pass (and the byte-identical-CSV guarantee) stands on.
// ---------------------------------------------------------------------------

namespace {

bool same_column_bits(std::span<const double> a, std::span<const double> b) {
    return a.size() == b.size() &&
           std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

/// A random irreducible-ish chain and a set of distinct initial columns.
ctmc::Ctmc random_chain(std::mt19937& rng, std::size_t n) {
    std::uniform_real_distribution<double> rate(0.1, 3.0);
    std::uniform_real_distribution<double> unit(0.0, 1.0);
    la::CsrBuilder b(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            if (i != j && unit(rng) < 0.5) b.add(i, j, rate(rng));
        }
    }
    return ctmc::Ctmc(b.build(), ctmc::Ctmc::point_distribution(n, 0));
}

}  // namespace

TEST(BatchTransient, ColumnsBitwiseIdenticalToSingleEvolvers) {
    std::mt19937 rng(20260807);
    const std::vector<double> times{0.0, 0.25, 0.25, 1.0, 2.5, 7.0};
    for (const std::size_t width : {std::size_t{1}, std::size_t{3}, std::size_t{4},
                                    std::size_t{5}, std::size_t{8}}) {
        const std::size_t n = 6;
        const auto chain = random_chain(rng, n);
        // Distinct columns: point distributions and a couple of mixtures,
        // so a column mix-up cannot cancel out.
        std::vector<std::vector<double>> columns;
        for (std::size_t c = 0; c < width; ++c) {
            std::vector<double> init(n, 0.0);
            if (c % 2 == 0) {
                init[c % n] = 1.0;
            } else {
                init[c % n] = 0.5;
                init[(c + 2) % n] = 0.5;
            }
            columns.push_back(std::move(init));
        }

        ctmc::BatchTransientEvolver batch(chain, columns);
        std::vector<std::unique_ptr<ctmc::TransientEvolver>> singles;
        for (const auto& init : columns) {
            singles.push_back(std::make_unique<ctmc::TransientEvolver>(chain, init));
        }

        std::vector<double> column(n);
        for (const double t : times) {
            batch.advance_to(t);
            for (std::size_t c = 0; c < width; ++c) {
                singles[c]->advance_to(t);
                batch.extract_column(c, column);
                EXPECT_TRUE(same_column_bits(column, singles[c]->distribution()))
                    << "width=" << width << " c=" << c << " t=" << t;
                EXPECT_TRUE(same_column_bits(batch.column(c), singles[c]->distribution()))
                    << "width=" << width << " c=" << c << " t=" << t << " (column())";
            }
        }
        EXPECT_EQ(batch.width(), width);
        EXPECT_DOUBLE_EQ(batch.time(), times.back());
    }
}

TEST(BatchTransient, AdvanceToDuplicateTimeIsANoOp) {
    const auto chain = two_state(0.7, 0.9);
    const std::vector<std::vector<double>> columns{chain.initial_distribution(),
                                                   {0.0, 1.0}};
    ctmc::BatchTransientEvolver evolver(chain, columns);
    evolver.advance_to(1.0);
    const std::vector<double> before = evolver.block();
    evolver.advance_to(1.0);                     // exact duplicate
    evolver.advance_to(1.0 - 5e-13);             // within kTimeTolerance
    EXPECT_EQ(evolver.block(), before);
    EXPECT_DOUBLE_EQ(evolver.time(), 1.0);
}

TEST(BatchTransient, AdvanceToDecreasingTimeThrows) {
    const auto chain = two_state(0.7, 0.9);
    const std::vector<std::vector<double>> columns{chain.initial_distribution()};
    ctmc::BatchTransientEvolver evolver(chain, columns);
    evolver.advance_to(2.0);
    EXPECT_THROW(evolver.advance_to(1.0), arcade::InvalidArgument);
}
