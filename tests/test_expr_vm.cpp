// Unit tests: the expression bytecode VM against the tree interpreter.
//
// The contract under test is bitwise identity: for any expression — well- or
// ill-typed — Program::run over a slot vector must produce exactly the value
// Expr::evaluate produces over the equivalent environment, or throw a
// ModelError with exactly the same message.  A deterministic fuzzer
// generates thousands of random trees over mixed int/double/bool slots to
// exercise every operator, short-circuit path and error route; targeted
// tests pin the compile-time and construction-time constant folds.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>
#include <random>
#include <span>
#include <string>
#include <vector>

#include "expr/codegen.hpp"
#include "expr/expr.hpp"
#include "expr/vm.hpp"
#include "support/errors.hpp"

namespace expr = arcade::expr;

namespace {

class MapEnv final : public expr::Environment {
public:
    std::map<std::string, expr::Value> values;
    [[nodiscard]] expr::Value lookup(const std::string& name) const override {
        const auto it = values.find(name);
        if (it == values.end()) throw arcade::ModelError("unknown " + name);
        return it->second;
    }
};

/// Result of one evaluation: either a value or a ModelError message.
struct Outcome {
    bool threw = false;
    std::string error;
    expr::Value value{false};
};

bool bitwise_equal(const expr::Value& a, const expr::Value& b) {
    if (a.is_bool() != b.is_bool() || a.is_int() != b.is_int() ||
        a.is_double() != b.is_double()) {
        return false;
    }
    if (a.is_bool()) return a.as_bool() == b.as_bool();
    if (a.is_int()) return a.as_int() == b.as_int();
    const double x = a.as_double();
    const double y = b.as_double();
    return std::memcmp(&x, &y, sizeof x) == 0;
}

Outcome run_interp(const expr::Expr& e, const MapEnv& env) {
    Outcome out;
    try {
        out.value = e.evaluate(env);
    } catch (const arcade::ModelError& err) {
        out.threw = true;
        out.error = err.what();
    }
    return out;
}

Outcome run_vm(const expr::Expr& e, const expr::SlotMap& map,
               std::span<const expr::Value> slots) {
    Outcome out;
    try {
        const expr::Program program = expr::compile(e, map);
        out.value = program.run(slots);
    } catch (const arcade::ModelError& err) {
        out.threw = true;
        out.error = err.what();
    }
    return out;
}

void expect_same(const expr::Expr& e, const MapEnv& env, const expr::SlotMap& map,
                 std::span<const expr::Value> slots) {
    const Outcome a = run_interp(e, env);
    const Outcome b = run_vm(e, map, slots);
    ASSERT_EQ(a.threw, b.threw) << e.to_string() << "\n interp: "
                                << (a.threw ? a.error : a.value.to_string())
                                << "\n vm:     " << (b.threw ? b.error : b.value.to_string());
    if (a.threw) {
        EXPECT_EQ(a.error, b.error) << e.to_string();
    } else {
        EXPECT_TRUE(bitwise_equal(a.value, b.value))
            << e.to_string() << "\n interp: " << a.value.to_string()
            << "\n vm:     " << b.value.to_string();
    }
}

/// Random expression trees over five typed slots, all operators included.
/// Many trees are ill-typed on purpose — the error route is half the
/// contract.
class Fuzzer {
public:
    explicit Fuzzer(std::uint32_t seed) : rng_(seed) {}

    expr::Expr gen(int depth) {
        const int leaf_cut = depth <= 0 ? 100 : 35;
        const int roll = pick(100);
        if (roll < leaf_cut) return leaf();
        if (roll < leaf_cut + 15) {
            static constexpr expr::UnaryOp kUnary[] = {
                expr::UnaryOp::Neg, expr::UnaryOp::Not, expr::UnaryOp::Floor,
                expr::UnaryOp::Ceil};
            return expr::Expr::unary(kUnary[pick(4)], gen(depth - 1));
        }
        if (roll < leaf_cut + 55) {
            static constexpr expr::BinaryOp kBinary[] = {
                expr::BinaryOp::Add,     expr::BinaryOp::Sub, expr::BinaryOp::Mul,
                expr::BinaryOp::Div,     expr::BinaryOp::Min, expr::BinaryOp::Max,
                expr::BinaryOp::Pow,     expr::BinaryOp::Eq,  expr::BinaryOp::Ne,
                expr::BinaryOp::Lt,      expr::BinaryOp::Le,  expr::BinaryOp::Gt,
                expr::BinaryOp::Ge,      expr::BinaryOp::And, expr::BinaryOp::Or,
                expr::BinaryOp::Implies, expr::BinaryOp::Iff};
            return expr::Expr::binary(kBinary[pick(17)], gen(depth - 1), gen(depth - 1));
        }
        return expr::Expr::ite(gen(depth - 1), gen(depth - 1), gen(depth - 1));
    }

private:
    expr::Expr leaf() {
        switch (pick(6)) {
            case 0: return expr::Expr::integer(static_cast<long long>(pick(7)) - 3);
            case 1: return expr::Expr::real((static_cast<double>(pick(41)) - 20.0) / 4.0);
            case 2: return expr::Expr::boolean(pick(2) == 0);
            default: break;
        }
        static const char* kNames[] = {"i0", "i1", "d0", "b0", "b1"};
        return expr::Expr::identifier(kNames[pick(5)]);
    }

    int pick(int n) { return static_cast<int>(rng_() % static_cast<std::uint32_t>(n)); }

    std::mt19937 rng_;
};

}  // namespace

TEST(ExprVm, FuzzMatchesInterpreterBitwise) {
    MapEnv env;
    env.values.emplace("i0", expr::Value(3LL));
    env.values.emplace("i1", expr::Value(-2LL));
    env.values.emplace("d0", expr::Value(0.75));
    env.values.emplace("b0", expr::Value(true));
    env.values.emplace("b1", expr::Value(false));

    expr::SlotMap map;
    std::vector<expr::Value> slots;
    for (const auto& [name, value] : env.values) {
        map.slots.emplace(name, static_cast<std::uint32_t>(slots.size()));
        slots.push_back(value);
    }

    Fuzzer fuzz(0xa5c4de);
    int value_cases = 0;
    int error_cases = 0;
    for (int i = 0; i < 20000; ++i) {
        const expr::Expr e = fuzz.gen(5);
        const Outcome oracle = run_interp(e, env);
        (oracle.threw ? error_cases : value_cases)++;
        expect_same(e, env, map, slots);
        if (HasFatalFailure()) return;
    }
    // The generator must exercise both routes heavily or the test is hollow.
    EXPECT_GT(value_cases, 2000);
    EXPECT_GT(error_cases, 2000);
}

TEST(ExprVm, SlotLoadsAndConstants) {
    expr::SlotMap map;
    map.slots.emplace("x", 0);
    std::map<std::string, expr::Value> consts;
    consts.emplace("N", expr::Value(5LL));
    map.constants = &consts;

    const auto program = expr::compile(expr::parse_expression("x + N"), map);
    const std::vector<expr::Value> slots{expr::Value(7LL)};
    EXPECT_EQ(program.run(slots).as_int(), 12);

    // Unknown identifiers fail at compile time, not at run time.
    EXPECT_THROW(expr::compile(expr::parse_expression("x + missing"), map),
                 arcade::ModelError);
}

TEST(ExprVm, ConstantSubtreesFoldToASingleLoad) {
    expr::SlotMap map;
    map.slots.emplace("g", 0);

    // Literal arithmetic folds at construction already; the program is one
    // LoadConst either way.
    const auto folded = expr::compile(expr::parse_expression("2 * 0.5"), map);
    EXPECT_TRUE(folded.is_constant());
    const std::vector<expr::Value> slots{expr::Value(true)};
    EXPECT_EQ(folded.run(slots).as_double(), 1.0);

    // Named constants resolve and fold through operators at compile time.
    std::map<std::string, expr::Value> consts;
    consts.emplace("N", expr::Value(4LL));
    map.constants = &consts;
    const auto named = expr::compile(expr::parse_expression("N * 2 + 1"), map);
    EXPECT_TRUE(named.is_constant());
    EXPECT_EQ(named.run(slots).as_int(), 9);

    // true & g reduces to g itself: a single slot load.
    const auto guard = expr::compile(expr::parse_expression("true & g"), map);
    ASSERT_EQ(guard.code().size(), 1u);
    EXPECT_EQ(guard.code().front().op, expr::OpCode::LoadSlot);
    EXPECT_TRUE(guard.run(slots).as_bool());
}

TEST(ExprVm, ShortCircuitSkipsRhsErrors) {
    expr::SlotMap map;
    map.slots.emplace("g", 0);
    const std::vector<expr::Value> t{expr::Value(true)};
    const std::vector<expr::Value> f{expr::Value(false)};

    // g & 1/0 = 0.5: rhs only evaluates when g holds.
    const auto guarded = expr::compile(expr::parse_expression("g & 1/0 = 0.5"), map);
    EXPECT_FALSE(guarded.run(f).as_bool());
    EXPECT_THROW(guarded.run(t), arcade::ModelError);

    // g | ... dually.
    const auto escape = expr::compile(expr::parse_expression("g | 1/0 = 0.5"), map);
    EXPECT_TRUE(escape.run(t).as_bool());
    EXPECT_THROW(escape.run(f), arcade::ModelError);
}

TEST(ExprVm, IllTypedFoldsErrorAtRunLikeTheInterpreter) {
    const expr::SlotMap map;
    const std::vector<expr::Value> none;
    MapEnv env;
    for (const char* text : {"1/0", "!3", "1 < true", "floor(true)", "-(false)",
                             "3 ? 1 : 2", "true + 1"}) {
        const expr::Expr e = expr::parse_expression(text);
        const auto program = expr::compile(e, map);
        std::string interp_error;
        try {
            e.evaluate(env);
            FAIL() << text << " should throw";
        } catch (const arcade::ModelError& err) {
            interp_error = err.what();
        }
        try {
            program.run(none);
            FAIL() << text << " should throw";
        } catch (const arcade::ModelError& err) {
            EXPECT_EQ(interp_error, std::string(err.what())) << text;
        }
    }
}

TEST(ExprVm, DefaultModeHonoursEnvironment) {
    // The env variable is read once per process; all this test can assert
    // portably is that the default is one of the two modes and stable.
    const expr::EvalMode mode = expr::default_eval_mode();
    EXPECT_EQ(mode, expr::default_eval_mode());
}

// The native backend's contract mirrors the VM's: for every program a
// successful try_run returns the bit-identical Value the VM computes, and
// every evaluation the VM would abort with a ModelError reports failure
// instead (the caller re-runs the VM to raise it).  One fuzzed unit of many
// programs checks both routes over several raw state valuations.
TEST(ExprCodegen, NativeMatchesVmBitwise) {
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
    GTEST_SKIP() << "codegen dlopens uninstrumented objects; skipped under sanitizers";
#else
    // Slots mirror the explorer's packing: int64 raw values, bool slots
    // decoded as state[i] != 0.  No double slot — module variables are
    // ints and bools — so fuzzed trees naming d0 fail to compile and are
    // simply re-rolled.
    expr::SlotMap map;
    map.slots.emplace("i0", 0u);
    map.slots.emplace("i1", 1u);
    map.slots.emplace("b0", 2u);
    map.slots.emplace("b1", 3u);
    const std::vector<bool> is_bool{false, false, true, true};

    Fuzzer fuzz(0xc0de9e);
    std::vector<expr::Expr> exprs;
    std::vector<expr::Program> programs;
    while (programs.size() < 300) {
        expr::Expr e = fuzz.gen(5);
        try {
            programs.push_back(expr::compile(e, map));
        } catch (const arcade::ModelError&) {
            continue;  // names the slotless d0
        }
        exprs.push_back(std::move(e));
    }
    std::vector<const expr::Program*> ptrs;
    ptrs.reserve(programs.size());
    for (const auto& p : programs) ptrs.push_back(&p);

    const auto unit = expr::build_native_unit(ptrs, is_bool);
    if (unit == nullptr) {
        GTEST_SKIP() << "no host toolchain / dlopen available";
    }
    ASSERT_EQ(unit->size(), programs.size());

    const std::int64_t states[][4] = {{3, -2, 1, 0},
                                      {0, 0, 0, 1},
                                      {-3, 7, 1, 1},
                                      {2, 1, 0, 0},
                                      {-1, -1, 1, 0}};
    int value_cases = 0;
    int error_cases = 0;
    for (const auto& state : states) {
        const std::vector<expr::Value> slots{
            expr::Value(static_cast<long long>(state[0])),
            expr::Value(static_cast<long long>(state[1])),
            expr::Value(state[2] != 0), expr::Value(state[3] != 0)};
        for (std::size_t i = 0; i < programs.size(); ++i) {
            Outcome vm;
            try {
                vm.value = programs[i].run(slots);
            } catch (const arcade::ModelError& err) {
                vm.threw = true;
                vm.error = err.what();
            }
            expr::Value native{false};
            const bool ok =
                unit->try_run(i, std::span<const std::int64_t>(state, 4), native);
            ASSERT_EQ(ok, !vm.threw)
                << exprs[i].to_string() << "\n vm: "
                << (vm.threw ? vm.error : vm.value.to_string());
            if (ok) {
                ++value_cases;
                EXPECT_TRUE(bitwise_equal(native, vm.value))
                    << exprs[i].to_string() << "\n native: " << native.to_string()
                    << "\n vm:     " << vm.value.to_string();
            } else {
                ++error_cases;
            }
        }
        if (HasFatalFailure()) return;
    }
    // Both routes must be exercised heavily or the differential is hollow.
    EXPECT_GT(value_cases, 300);
    EXPECT_GT(error_cases, 100);
#endif
}

// Without a working compiler build_native_unit must return nullptr and count
// a fallback, never throw.  The compile fails before any dlopen, so this is
// safe under sanitizers too.
TEST(ExprCodegen, GracefulFallbackWithoutToolchain) {
    const char* old_cxx = std::getenv("ARCADE_CXX");
    const std::string saved_cxx = old_cxx != nullptr ? old_cxx : "";
    const char* old_cache = std::getenv("ARCADE_CODEGEN_CACHE");
    const std::string saved_cache = old_cache != nullptr ? old_cache : "";

    const auto cache_dir =
        std::filesystem::temp_directory_path() / "arcade-codegen-fallback-test";
    std::filesystem::remove_all(cache_dir);
    ::setenv("ARCADE_CXX", "/nonexistent/arcade-no-such-compiler", 1);
    ::setenv("ARCADE_CODEGEN_CACHE", cache_dir.string().c_str(), 1);

    // A source shape nothing else in this binary builds successfully, so
    // neither the in-memory unit cache nor the fresh on-disk cache can
    // satisfy it and the bogus compiler is genuinely reached.
    expr::SlotMap map;
    map.slots.emplace("i0", 0u);
    const expr::Program program =
        expr::compile(expr::parse_expression("i0 * 48271 + 16807"), map);
    const expr::Program* ptr = &program;

    const std::size_t before = expr::codegen_counters().fallbacks;
    const auto unit = expr::build_native_unit(
        std::span<const expr::Program* const>(&ptr, 1), std::vector<bool>{false});
    EXPECT_EQ(unit, nullptr);
    EXPECT_GE(expr::codegen_counters().fallbacks, before + 1);

    if (!saved_cxx.empty()) {
        ::setenv("ARCADE_CXX", saved_cxx.c_str(), 1);
    } else {
        ::unsetenv("ARCADE_CXX");
    }
    if (!saved_cache.empty()) {
        ::setenv("ARCADE_CODEGEN_CACHE", saved_cache.c_str(), 1);
    } else {
        ::unsetenv("ARCADE_CODEGEN_CACHE");
    }
    std::filesystem::remove_all(cache_dir);
}
