// Unit tests: the expression bytecode VM against the tree interpreter.
//
// The contract under test is bitwise identity: for any expression — well- or
// ill-typed — Program::run over a slot vector must produce exactly the value
// Expr::evaluate produces over the equivalent environment, or throw a
// ModelError with exactly the same message.  A deterministic fuzzer
// generates thousands of random trees over mixed int/double/bool slots to
// exercise every operator, short-circuit path and error route; targeted
// tests pin the compile-time and construction-time constant folds.
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <random>
#include <string>
#include <vector>

#include "expr/expr.hpp"
#include "expr/vm.hpp"
#include "support/errors.hpp"

namespace expr = arcade::expr;

namespace {

class MapEnv final : public expr::Environment {
public:
    std::map<std::string, expr::Value> values;
    [[nodiscard]] expr::Value lookup(const std::string& name) const override {
        const auto it = values.find(name);
        if (it == values.end()) throw arcade::ModelError("unknown " + name);
        return it->second;
    }
};

/// Result of one evaluation: either a value or a ModelError message.
struct Outcome {
    bool threw = false;
    std::string error;
    expr::Value value{false};
};

bool bitwise_equal(const expr::Value& a, const expr::Value& b) {
    if (a.is_bool() != b.is_bool() || a.is_int() != b.is_int() ||
        a.is_double() != b.is_double()) {
        return false;
    }
    if (a.is_bool()) return a.as_bool() == b.as_bool();
    if (a.is_int()) return a.as_int() == b.as_int();
    const double x = a.as_double();
    const double y = b.as_double();
    return std::memcmp(&x, &y, sizeof x) == 0;
}

Outcome run_interp(const expr::Expr& e, const MapEnv& env) {
    Outcome out;
    try {
        out.value = e.evaluate(env);
    } catch (const arcade::ModelError& err) {
        out.threw = true;
        out.error = err.what();
    }
    return out;
}

Outcome run_vm(const expr::Expr& e, const expr::SlotMap& map,
               std::span<const expr::Value> slots) {
    Outcome out;
    try {
        const expr::Program program = expr::compile(e, map);
        out.value = program.run(slots);
    } catch (const arcade::ModelError& err) {
        out.threw = true;
        out.error = err.what();
    }
    return out;
}

void expect_same(const expr::Expr& e, const MapEnv& env, const expr::SlotMap& map,
                 std::span<const expr::Value> slots) {
    const Outcome a = run_interp(e, env);
    const Outcome b = run_vm(e, map, slots);
    ASSERT_EQ(a.threw, b.threw) << e.to_string() << "\n interp: "
                                << (a.threw ? a.error : a.value.to_string())
                                << "\n vm:     " << (b.threw ? b.error : b.value.to_string());
    if (a.threw) {
        EXPECT_EQ(a.error, b.error) << e.to_string();
    } else {
        EXPECT_TRUE(bitwise_equal(a.value, b.value))
            << e.to_string() << "\n interp: " << a.value.to_string()
            << "\n vm:     " << b.value.to_string();
    }
}

/// Random expression trees over five typed slots, all operators included.
/// Many trees are ill-typed on purpose — the error route is half the
/// contract.
class Fuzzer {
public:
    explicit Fuzzer(std::uint32_t seed) : rng_(seed) {}

    expr::Expr gen(int depth) {
        const int leaf_cut = depth <= 0 ? 100 : 35;
        const int roll = pick(100);
        if (roll < leaf_cut) return leaf();
        if (roll < leaf_cut + 15) {
            static constexpr expr::UnaryOp kUnary[] = {
                expr::UnaryOp::Neg, expr::UnaryOp::Not, expr::UnaryOp::Floor,
                expr::UnaryOp::Ceil};
            return expr::Expr::unary(kUnary[pick(4)], gen(depth - 1));
        }
        if (roll < leaf_cut + 55) {
            static constexpr expr::BinaryOp kBinary[] = {
                expr::BinaryOp::Add,     expr::BinaryOp::Sub, expr::BinaryOp::Mul,
                expr::BinaryOp::Div,     expr::BinaryOp::Min, expr::BinaryOp::Max,
                expr::BinaryOp::Pow,     expr::BinaryOp::Eq,  expr::BinaryOp::Ne,
                expr::BinaryOp::Lt,      expr::BinaryOp::Le,  expr::BinaryOp::Gt,
                expr::BinaryOp::Ge,      expr::BinaryOp::And, expr::BinaryOp::Or,
                expr::BinaryOp::Implies, expr::BinaryOp::Iff};
            return expr::Expr::binary(kBinary[pick(17)], gen(depth - 1), gen(depth - 1));
        }
        return expr::Expr::ite(gen(depth - 1), gen(depth - 1), gen(depth - 1));
    }

private:
    expr::Expr leaf() {
        switch (pick(6)) {
            case 0: return expr::Expr::integer(static_cast<long long>(pick(7)) - 3);
            case 1: return expr::Expr::real((static_cast<double>(pick(41)) - 20.0) / 4.0);
            case 2: return expr::Expr::boolean(pick(2) == 0);
            default: break;
        }
        static const char* kNames[] = {"i0", "i1", "d0", "b0", "b1"};
        return expr::Expr::identifier(kNames[pick(5)]);
    }

    int pick(int n) { return static_cast<int>(rng_() % static_cast<std::uint32_t>(n)); }

    std::mt19937 rng_;
};

}  // namespace

TEST(ExprVm, FuzzMatchesInterpreterBitwise) {
    MapEnv env;
    env.values.emplace("i0", expr::Value(3LL));
    env.values.emplace("i1", expr::Value(-2LL));
    env.values.emplace("d0", expr::Value(0.75));
    env.values.emplace("b0", expr::Value(true));
    env.values.emplace("b1", expr::Value(false));

    expr::SlotMap map;
    std::vector<expr::Value> slots;
    for (const auto& [name, value] : env.values) {
        map.slots.emplace(name, static_cast<std::uint32_t>(slots.size()));
        slots.push_back(value);
    }

    Fuzzer fuzz(0xa5c4de);
    int value_cases = 0;
    int error_cases = 0;
    for (int i = 0; i < 20000; ++i) {
        const expr::Expr e = fuzz.gen(5);
        const Outcome oracle = run_interp(e, env);
        (oracle.threw ? error_cases : value_cases)++;
        expect_same(e, env, map, slots);
        if (HasFatalFailure()) return;
    }
    // The generator must exercise both routes heavily or the test is hollow.
    EXPECT_GT(value_cases, 2000);
    EXPECT_GT(error_cases, 2000);
}

TEST(ExprVm, SlotLoadsAndConstants) {
    expr::SlotMap map;
    map.slots.emplace("x", 0);
    std::map<std::string, expr::Value> consts;
    consts.emplace("N", expr::Value(5LL));
    map.constants = &consts;

    const auto program = expr::compile(expr::parse_expression("x + N"), map);
    const std::vector<expr::Value> slots{expr::Value(7LL)};
    EXPECT_EQ(program.run(slots).as_int(), 12);

    // Unknown identifiers fail at compile time, not at run time.
    EXPECT_THROW(expr::compile(expr::parse_expression("x + missing"), map),
                 arcade::ModelError);
}

TEST(ExprVm, ConstantSubtreesFoldToASingleLoad) {
    expr::SlotMap map;
    map.slots.emplace("g", 0);

    // Literal arithmetic folds at construction already; the program is one
    // LoadConst either way.
    const auto folded = expr::compile(expr::parse_expression("2 * 0.5"), map);
    EXPECT_TRUE(folded.is_constant());
    const std::vector<expr::Value> slots{expr::Value(true)};
    EXPECT_EQ(folded.run(slots).as_double(), 1.0);

    // Named constants resolve and fold through operators at compile time.
    std::map<std::string, expr::Value> consts;
    consts.emplace("N", expr::Value(4LL));
    map.constants = &consts;
    const auto named = expr::compile(expr::parse_expression("N * 2 + 1"), map);
    EXPECT_TRUE(named.is_constant());
    EXPECT_EQ(named.run(slots).as_int(), 9);

    // true & g reduces to g itself: a single slot load.
    const auto guard = expr::compile(expr::parse_expression("true & g"), map);
    ASSERT_EQ(guard.code().size(), 1u);
    EXPECT_EQ(guard.code().front().op, expr::OpCode::LoadSlot);
    EXPECT_TRUE(guard.run(slots).as_bool());
}

TEST(ExprVm, ShortCircuitSkipsRhsErrors) {
    expr::SlotMap map;
    map.slots.emplace("g", 0);
    const std::vector<expr::Value> t{expr::Value(true)};
    const std::vector<expr::Value> f{expr::Value(false)};

    // g & 1/0 = 0.5: rhs only evaluates when g holds.
    const auto guarded = expr::compile(expr::parse_expression("g & 1/0 = 0.5"), map);
    EXPECT_FALSE(guarded.run(f).as_bool());
    EXPECT_THROW(guarded.run(t), arcade::ModelError);

    // g | ... dually.
    const auto escape = expr::compile(expr::parse_expression("g | 1/0 = 0.5"), map);
    EXPECT_TRUE(escape.run(t).as_bool());
    EXPECT_THROW(escape.run(f), arcade::ModelError);
}

TEST(ExprVm, IllTypedFoldsErrorAtRunLikeTheInterpreter) {
    const expr::SlotMap map;
    const std::vector<expr::Value> none;
    MapEnv env;
    for (const char* text : {"1/0", "!3", "1 < true", "floor(true)", "-(false)",
                             "3 ? 1 : 2", "true + 1"}) {
        const expr::Expr e = expr::parse_expression(text);
        const auto program = expr::compile(e, map);
        std::string interp_error;
        try {
            e.evaluate(env);
            FAIL() << text << " should throw";
        } catch (const arcade::ModelError& err) {
            interp_error = err.what();
        }
        try {
            program.run(none);
            FAIL() << text << " should throw";
        } catch (const arcade::ModelError& err) {
            EXPECT_EQ(interp_error, std::string(err.what())) << text;
        }
    }
}

TEST(ExprVm, DefaultModeHonoursEnvironment) {
    // The env variable is read once per process; all this test can assert
    // portably is that the default is one of the two modes and stable.
    const expr::EvalMode mode = expr::default_eval_mode();
    EXPECT_EQ(mode, expr::default_eval_mode());
}
