// Unit tests: string utilities and table/series output.
#include <gtest/gtest.h>

#include <iomanip>
#include <sstream>

#include "support/series.hpp"
#include "support/strings.hpp"

namespace arc = arcade;

TEST(Strings, SplitKeepsEmptyFields) {
    const auto parts = arc::split("a,,b,", ',');
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[1], "");
    EXPECT_EQ(parts[2], "b");
    EXPECT_EQ(parts[3], "");
}

TEST(Strings, TrimAndStartsWith) {
    EXPECT_EQ(arc::trim("  x y \t\n"), "x y");
    EXPECT_EQ(arc::trim(""), "");
    EXPECT_EQ(arc::trim("   "), "");
    EXPECT_TRUE(arc::starts_with("hello", "he"));
    EXPECT_FALSE(arc::starts_with("he", "hello"));
}

TEST(Strings, JoinAndLower) {
    EXPECT_EQ(arc::join({"a", "b", "c"}, ", "), "a, b, c");
    EXPECT_EQ(arc::join({}, ","), "");
    EXPECT_EQ(arc::to_lower("MiXeD"), "mixed");
}

TEST(Strings, FormatDoubleRoundTrips) {
    for (double v : {0.0, 1.0, 0.1, 1.0 / 3.0, 1e-12, 12345.6789, -2.5e17}) {
        const std::string text = arc::format_double(v);
        EXPECT_DOUBLE_EQ(std::stod(text), v) << text;
    }
}

TEST(Series, TimeGridEndpoints) {
    const auto grid = arc::time_grid(10.0, 5);
    ASSERT_EQ(grid.size(), 5u);
    EXPECT_DOUBLE_EQ(grid.front(), 0.0);
    EXPECT_DOUBLE_EQ(grid.back(), 10.0);
    EXPECT_DOUBLE_EQ(grid[1], 2.5);
}

TEST(Series, FigurePrintsHeaderAndRows) {
    arc::Figure fig("test", "t", "y");
    fig.set_times({0.0, 1.0});
    fig.add_series("a", {0.5, 0.6});
    std::ostringstream os;
    fig.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("# test"), std::string::npos);
    EXPECT_NE(out.find("0.5"), std::string::npos);
    EXPECT_NE(out.find("\ta"), std::string::npos);
}

TEST(Series, PrintRestoresTheCallersStreamState) {
    // Figure::print uses setprecision(7) and Table::print std::left/setw for
    // their own rows; neither may leak onto the caller's stream — a harness
    // printing elapsed seconds afterwards must keep its own formatting.
    arc::Figure fig("test", "t", "y");
    fig.set_times({0.0, 1.0});
    fig.add_series("a", {0.123456789012, 0.6});
    std::ostringstream os;
    os << std::setprecision(12);
    const std::ios::fmtflags before = os.flags();
    fig.print(os);
    EXPECT_EQ(os.precision(), 12);
    EXPECT_EQ(os.flags(), before);

    arc::Table table({"name", "value"});
    table.add_row({"x", "1"});
    table.print(os);
    EXPECT_EQ(os.precision(), 12);
    EXPECT_EQ(os.flags(), before);
    os << 0.123456789012;
    EXPECT_NE(os.str().find("0.123456789012"), std::string::npos);
}

TEST(Series, TablePrintsAlignedColumns) {
    arc::Table table({"name", "value"});
    table.add_row({"x", "1"});
    table.add_row({"longer", "2"});
    std::ostringstream os;
    table.print(os);
    EXPECT_NE(os.str().find("longer"), std::string::npos);
    EXPECT_EQ(table.rows(), 2u);
}
