// Whole-pipeline identity tests for the two performance rewirings of the
// evaluation stack:
//
//  * the expr bytecode VM vs the tree interpreter — and the native codegen
//    backend vs the VM — must explore IDENTICAL chains: same states in the
//    same order, bitwise-equal rates, equal label bitsets and reward
//    vectors, on every watertree line/strategy's reactive-modules
//    translation;
//  * the blocked and simd CSR kernels vs the scalar reference must render
//    the whole paper evaluation (sweep::paper::everything()) to a
//    byte-identical CSV.
//
// These are the guarantees that make ARCADE_EVAL / ARCADE_KERNELS pure
// performance toggles rather than numerics knobs.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "arcade/modules_compiler.hpp"
#include "expr/codegen.hpp"
#include "expr/vm.hpp"
#include "linalg/kernels.hpp"
#include "modules/explorer.hpp"
#include "sweep/sweep.hpp"
#include "watertree/watertree.hpp"

namespace core = arcade::core;
namespace engine = arcade::engine;
namespace expr = arcade::expr;
namespace linalg = arcade::linalg;
namespace modules = arcade::modules;
namespace sweep = arcade::sweep;
namespace wt = arcade::watertree;

namespace {

bool same_double_bits(double a, double b) {
    return std::memcmp(&a, &b, sizeof a) == 0;
}

modules::ExploredModel explore_with(const modules::ModuleSystem& system,
                                    expr::EvalMode eval) {
    modules::ExploreOptions options;
    options.eval = eval;
    return modules::explore(system, options);
}

void expect_identical_chains(const modules::ExploredModel& a,
                             const modules::ExploredModel& b, const std::string& what) {
    ASSERT_EQ(a.state_count(), b.state_count()) << what;
    for (std::size_t s = 0; s < a.state_count(); ++s) {
        ASSERT_EQ(a.valuation(s), b.valuation(s)) << what << " state " << s;
    }

    const auto& ra = a.chain.rates();
    const auto& rb = b.chain.rates();
    ASSERT_EQ(ra.row_ptr(), rb.row_ptr()) << what;
    ASSERT_EQ(ra.col_idx(), rb.col_idx()) << what;
    ASSERT_EQ(ra.values().size(), rb.values().size()) << what;
    for (std::size_t k = 0; k < ra.values().size(); ++k) {
        ASSERT_TRUE(same_double_bits(ra.values()[k], rb.values()[k]))
            << what << " rate entry " << k;
    }

    auto names_a = a.chain.label_names();
    auto names_b = b.chain.label_names();
    std::sort(names_a.begin(), names_a.end());
    std::sort(names_b.begin(), names_b.end());
    ASSERT_EQ(names_a, names_b) << what;
    for (const auto& name : names_a) {
        ASSERT_EQ(a.chain.label(name), b.chain.label(name)) << what << " label " << name;
    }

    ASSERT_EQ(a.reward_structures.size(), b.reward_structures.size()) << what;
    for (const auto& [name, ra_struct] : a.reward_structures) {
        const auto it = b.reward_structures.find(name);
        ASSERT_NE(it, b.reward_structures.end()) << what << " reward " << name;
        const auto& va = ra_struct.state_rates();
        const auto& vb = it->second.state_rates();
        ASSERT_EQ(va.size(), vb.size()) << what << " reward " << name;
        for (std::size_t s = 0; s < va.size(); ++s) {
            ASSERT_TRUE(same_double_bits(va[s], vb[s]))
                << what << " reward " << name << " state " << s;
        }
    }
}

/// everything() rendered to CSV with the requested kernel mode, in a fresh
/// session so no cached artefact crosses between the two runs.
std::string paper_csv(linalg::KernelMode mode) {
    const linalg::KernelMode before = linalg::kernel_mode();
    linalg::set_kernel_mode(mode);
    engine::AnalysisSession session;
    sweep::SweepRunner runner(session);
    const auto grid = sweep::paper::everything();
    const auto report = runner.run(grid);
    linalg::set_kernel_mode(before);
    std::ostringstream os;
    sweep::write_csv(report, grid, os);
    return os.str();
}

}  // namespace

TEST(EvalRewire, InterpAndVmExploreIdenticalChains) {
    for (const char* name : {"DED", "FRF-1", "FRF-2", "FFF-1", "FFF-2"}) {
        for (int line = 1; line <= 2; ++line) {
            const auto model = line == 1 ? wt::line1(wt::strategy(name))
                                         : wt::line2(wt::strategy(name));
            const auto system = core::to_reactive_modules(model);
            const auto vm = explore_with(system, expr::EvalMode::Vm);
            const auto interp = explore_with(system, expr::EvalMode::Interp);
            expect_identical_chains(vm, interp,
                                    std::string(name) + " line " + std::to_string(line));
        }
    }
}

TEST(EvalRewire, CodegenAndVmExploreIdenticalChains) {
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
    GTEST_SKIP() << "codegen dlopens uninstrumented objects; skipped under sanitizers";
#else
    // The native backend must reproduce the VM's chains bit for bit.  The
    // identity holds even without a toolchain — the graceful fallback IS
    // the VM — so this test doubles as the no-toolchain smoke when run
    // with a stripped PATH.
    const auto before = expr::codegen_counters();
    for (const char* name : {"DED", "FRF-1", "FRF-2", "FFF-1", "FFF-2"}) {
        for (int line = 1; line <= 2; ++line) {
            const auto model = line == 1 ? wt::line1(wt::strategy(name))
                                         : wt::line2(wt::strategy(name));
            const auto system = core::to_reactive_modules(model);
            const auto vm = explore_with(system, expr::EvalMode::Vm);
            const auto native = explore_with(system, expr::EvalMode::Codegen);
            expect_identical_chains(vm, native,
                                    std::string(name) + " line " + std::to_string(line) +
                                        " (codegen)");
        }
    }
    const auto after = expr::codegen_counters();
    // Every explore either built/reused a unit or counted a fallback.
    EXPECT_GT(after.builds + after.cache_hits + after.fallbacks,
              before.builds + before.cache_hits + before.fallbacks);
#endif
}

TEST(EvalRewire, StatePredicateAgreesAcrossEvaluators) {
    const auto system = core::to_reactive_modules(wt::line2(wt::strategy("FRF-1")));
    const auto model = explore_with(system, expr::EvalMode::Vm);
    // An ad-hoc predicate over module variables exercises the compiled path.
    const auto predicate = expr::parse_expression(system.labels.begin()->second.to_string());
    const auto vm =
        modules::evaluate_state_predicate(model, system, predicate, expr::EvalMode::Vm);
    const auto interp =
        modules::evaluate_state_predicate(model, system, predicate, expr::EvalMode::Interp);
    EXPECT_EQ(vm, interp);
    EXPECT_EQ(vm, model.chain.label(system.labels.begin()->first));
#if !defined(__SANITIZE_ADDRESS__) && !defined(__SANITIZE_THREAD__)
    const auto native =
        modules::evaluate_state_predicate(model, system, predicate, expr::EvalMode::Codegen);
    EXPECT_EQ(native, vm);
#endif
}

TEST(EvalRewire, BlockedAndScalarKernelsRenderIdenticalPaperCsv) {
    const std::string blocked = paper_csv(linalg::KernelMode::Blocked);
    const std::string scalar = paper_csv(linalg::KernelMode::Scalar);
    ASSERT_FALSE(blocked.empty());
    EXPECT_EQ(blocked, scalar);
}

TEST(EvalRewire, SimdAndBlockedKernelsRenderIdenticalPaperCsv) {
    // Whether the Simd bodies engage or resolve to Blocked (CPU without the
    // extension), the rendered paper evaluation must not move a byte.
    const std::string simd = paper_csv(linalg::KernelMode::Simd);
    const std::string blocked = paper_csv(linalg::KernelMode::Blocked);
    ASSERT_FALSE(simd.empty());
    EXPECT_EQ(simd, blocked);
}

TEST(EvalRewire, KernelModeDefaultsAndOverrides) {
    const linalg::KernelMode before = linalg::kernel_mode();
    linalg::set_kernel_mode(linalg::KernelMode::Scalar);
    EXPECT_EQ(linalg::kernel_mode(), linalg::KernelMode::Scalar);
    linalg::set_kernel_mode(linalg::KernelMode::Blocked);
    EXPECT_EQ(linalg::kernel_mode(), linalg::KernelMode::Blocked);
    linalg::set_kernel_mode(linalg::KernelMode::Simd);
    EXPECT_EQ(linalg::kernel_mode(), linalg::KernelMode::Simd);
    linalg::set_kernel_mode(before);
    EXPECT_EQ(linalg::kernel_mode(), before);
}
