// Unit tests: reactive-module exploration, synchronisation, labels, rewards.
#include <gtest/gtest.h>

#include <cmath>

#include "ctmc/steady_state.hpp"
#include "modules/explorer.hpp"
#include "modules/modules.hpp"
#include "support/errors.hpp"

namespace modules = arcade::modules;
namespace expr = arcade::expr;

namespace {

expr::Expr E(const std::string& text) { return expr::parse_expression(text); }

modules::Module two_state_module(const std::string& var, double fail, double repair) {
    modules::Module m;
    m.name = "m_" + var;
    m.variables.push_back({var, modules::VarType::Int, 0, 1, 0});
    m.commands.push_back({"", E(var + "=0"), {{expr::Expr::real(fail), {{var, E("1")}}}}});
    m.commands.push_back({"", E(var + "=1"), {{expr::Expr::real(repair), {{var, E("0")}}}}});
    return m;
}

}  // namespace

TEST(Explorer, SingleModuleTwoStates) {
    modules::ModuleSystem sys;
    sys.modules.push_back(two_state_module("x", 0.5, 2.0));
    sys.labels.emplace("up", E("x=0"));
    const auto result = modules::explore(sys);
    EXPECT_EQ(result.chain.state_count(), 2u);
    EXPECT_EQ(result.chain.transition_count(), 2u);
    EXPECT_NEAR(arcade::ctmc::steady_state_probability(result.chain,
                                                       result.chain.label("up")),
                2.0 / 2.5, 1e-10);
}

TEST(Explorer, TwoIndependentModulesInterleave) {
    modules::ModuleSystem sys;
    sys.modules.push_back(two_state_module("x", 1.0, 1.0));
    sys.modules.push_back(two_state_module("y", 1.0, 1.0));
    modules::ExploreOptions full;  // the identical modules would otherwise
    full.symmetry = arcade::engine::SymmetryPolicy::Off;  // fold to 3 orbits
    const auto result = modules::explore(sys, full);
    EXPECT_EQ(result.chain.state_count(), 4u);
    EXPECT_EQ(result.chain.transition_count(), 8u);
}

TEST(Explorer, SynchronisationMultipliesRatesAndJoinsUpdates) {
    // Two modules synchronise on "go": rate 2 * 3 = 6, both variables move.
    modules::ModuleSystem sys;
    modules::Module a;
    a.name = "a";
    a.variables.push_back({"x", modules::VarType::Int, 0, 1, 0});
    a.commands.push_back({"go", E("x=0"), {{expr::Expr::real(2.0), {{"x", E("1")}}}}});
    modules::Module b;
    b.name = "b";
    b.variables.push_back({"y", modules::VarType::Int, 0, 1, 0});
    b.commands.push_back({"go", E("y=0"), {{expr::Expr::real(3.0), {{"y", E("1")}}}}});
    sys.modules = {a, b};
    const auto result = modules::explore(sys);
    ASSERT_EQ(result.chain.state_count(), 2u);
    EXPECT_EQ(result.chain.transition_count(), 1u);
    EXPECT_NEAR(result.chain.rates().at(0, 1), 6.0, 1e-12);
    EXPECT_EQ(result.value_of(1, "x"), 1);
    EXPECT_EQ(result.value_of(1, "y"), 1);
}

TEST(Explorer, BlockedSynchronisationProducesNoTransition) {
    // b has "go" in its alphabet but no enabled command in the initial state.
    modules::ModuleSystem sys;
    modules::Module a;
    a.name = "a";
    a.variables.push_back({"x", modules::VarType::Int, 0, 1, 0});
    a.commands.push_back({"go", E("true"), {{expr::Expr::real(2.0), {{"x", E("1")}}}}});
    modules::Module b;
    b.name = "b";
    b.variables.push_back({"y", modules::VarType::Int, 0, 1, 0});
    b.commands.push_back({"go", E("y=1"), {{expr::Expr::real(3.0), {{"y", E("0")}}}}});
    sys.modules = {a, b};
    const auto result = modules::explore(sys);
    EXPECT_EQ(result.chain.state_count(), 1u);
    EXPECT_EQ(result.chain.transition_count(), 0u);
}

TEST(Explorer, ConstantsResolveInGuardsAndRates) {
    modules::ModuleSystem sys;
    sys.constants.emplace("lambda", expr::Value(0.25));
    sys.constants.emplace("N", expr::Value(2LL));
    modules::Module m;
    m.name = "counter";
    m.variables.push_back({"c", modules::VarType::Int, 0, 2, 0});
    m.commands.push_back({"", E("c < N"), {{E("lambda * (c + 1)"), {{"c", E("c+1")}}}}});
    sys.modules.push_back(m);
    const auto result = modules::explore(sys);
    EXPECT_EQ(result.chain.state_count(), 3u);
    EXPECT_NEAR(result.chain.rates().at(0, 1), 0.25, 1e-12);
    EXPECT_NEAR(result.chain.rates().at(1, 2), 0.5, 1e-12);
}

TEST(Explorer, RewardStructuresEvaluatePerState) {
    modules::ModuleSystem sys;
    sys.modules.push_back(two_state_module("x", 1.0, 1.0));
    modules::RewardDecl cost;
    cost.name = "cost";
    cost.items.push_back({E("x=1"), E("3")});
    cost.items.push_back({E("true"), E("0.5")});
    sys.rewards.push_back(cost);
    const auto result = modules::explore(sys);
    const auto& reward = result.reward_structures.at("cost");
    EXPECT_DOUBLE_EQ(reward.state_rates()[0], 0.5);
    EXPECT_DOUBLE_EQ(reward.state_rates()[1], 3.5);
}

TEST(Explorer, BoundViolationIsAnError) {
    modules::ModuleSystem sys;
    modules::Module m;
    m.name = "m";
    m.variables.push_back({"x", modules::VarType::Int, 0, 1, 0});
    m.commands.push_back({"", E("true"), {{E("1"), {{"x", E("x+1")}}}}});
    sys.modules.push_back(m);
    EXPECT_THROW(modules::explore(sys), arcade::ModelError);
}

TEST(Explorer, ProbabilisticAlternativesSplitRates) {
    // One command with two alternatives at different rates.
    modules::ModuleSystem sys;
    modules::Module m;
    m.name = "m";
    m.variables.push_back({"x", modules::VarType::Int, 0, 2, 0});
    m.commands.push_back({"",
                          E("x=0"),
                          {{E("1.5"), {{"x", E("1")}}}, {E("0.5"), {{"x", E("2")}}}}});
    sys.modules.push_back(m);
    const auto result = modules::explore(sys);
    EXPECT_EQ(result.chain.state_count(), 3u);
    EXPECT_NEAR(result.chain.rates().at(0, 1), 1.5, 1e-12);
    EXPECT_NEAR(result.chain.rates().at(0, 2), 0.5, 1e-12);
}

TEST(Explorer, StatePredicateEvaluation) {
    modules::ModuleSystem sys;
    sys.modules.push_back(two_state_module("x", 1.0, 2.0));
    const auto result = modules::explore(sys);
    const auto bits = modules::evaluate_state_predicate(result, sys, E("x=1"));
    ASSERT_EQ(bits.size(), 2u);
    EXPECT_FALSE(bits[0]);
    EXPECT_TRUE(bits[1]);
}
