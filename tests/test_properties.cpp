// Parameterised property tests: invariants that must hold across whole
// parameter families, not just the case-study values.
#include <gtest/gtest.h>

#include <cmath>

#include "arcade/compiler.hpp"
#include "arcade/measures.hpp"
#include "support/series.hpp"

namespace core = arcade::core;

namespace {

struct Params {
    double mttf;
    double mttr;
};

core::ArcadeModel redundant_pair(const Params& p, core::RepairPolicy policy,
                                 std::size_t crews) {
    core::ModelBuilder b("prop");
    b.add_redundant_phase("a", 2, p.mttf, p.mttr);
    b.add_redundant_phase("b", 1, p.mttf * 3.0, p.mttr * 0.5);
    b.with_repair(policy, crews);
    return b.build();
}

}  // namespace

class RateSweep : public ::testing::TestWithParam<Params> {};

TEST_P(RateSweep, DedicatedAvailabilityEqualsProductForm) {
    const Params p = GetParam();
    const auto compiled = core::compile(redundant_pair(p, core::RepairPolicy::Dedicated, 1));
    const double a1 = p.mttf / (p.mttf + p.mttr);
    const double a2 = (3.0 * p.mttf) / (3.0 * p.mttf + 0.5 * p.mttr);
    EXPECT_NEAR(core::availability(compiled), a1 * a1 * a2, 1e-9);
}

TEST_P(RateSweep, DedicatedDominatesSharedCrewAndMoreCrewsHelp) {
    const Params p = GetParam();
    const double ded =
        core::availability(core::compile(redundant_pair(p, core::RepairPolicy::Dedicated, 1)));
    const double frf1 = core::availability(
        core::compile(redundant_pair(p, core::RepairPolicy::FastestRepairFirst, 1)));
    const double frf2 = core::availability(
        core::compile(redundant_pair(p, core::RepairPolicy::FastestRepairFirst, 2)));
    EXPECT_LE(frf1, ded + 1e-9);
    EXPECT_LE(frf2, ded + 1e-9);
    EXPECT_GE(frf2 + 1e-9, frf1);
}

TEST_P(RateSweep, AllPoliciesAgreeOnFullyDedicatedWorkload) {
    // With as many crews as components, every queueing policy behaves like
    // dedicated repair (no contention): the availabilities coincide.
    const Params p = GetParam();
    const double ded =
        core::availability(core::compile(redundant_pair(p, core::RepairPolicy::Dedicated, 1)));
    for (auto policy : {core::RepairPolicy::FastestRepairFirst,
                        core::RepairPolicy::FastestFailureFirst}) {
        const double shared =
            core::availability(core::compile(redundant_pair(p, policy, 3)));
        EXPECT_NEAR(shared, ded, 5e-4) << core::to_string(policy);
    }
}

TEST_P(RateSweep, ReliabilityEqualsNoRepairClosedForm) {
    const Params p = GetParam();
    const auto stripped =
        core::compile(core::without_repair(redundant_pair(p, core::RepairPolicy::Dedicated, 1)));
    const double t = p.mttf / 4.0;
    const std::vector<double> times{0.0, t};
    const double measured = core::reliability_series(stripped, times).back();
    const double expected =
        std::exp(-2.0 * t / p.mttf) * std::exp(-t / (3.0 * p.mttf));
    EXPECT_NEAR(measured, expected, 1e-9);
}

TEST_P(RateSweep, LumpedAndIndividualEncodingsAgree) {
    const Params p = GetParam();
    const auto model = redundant_pair(p, core::RepairPolicy::FastestFailureFirst, 1);
    core::CompileOptions lumped;
    lumped.encoding = core::Encoding::Lumped;
    EXPECT_NEAR(core::availability(core::compile(model)),
                core::availability(core::compile(model, lumped)), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Rates, RateSweep,
                         ::testing::Values(Params{100.0, 1.0}, Params{100.0, 10.0},
                                           Params{1000.0, 50.0}, Params{10.0, 0.1},
                                           Params{500.0, 100.0}));

class CrewSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CrewSweep, MoreCrewsNeverHurtAvailabilityOrRecovery) {
    const std::size_t crews = GetParam();
    core::ModelBuilder b("crews");
    b.add_redundant_phase("x", 3, 200.0, 10.0);
    b.add_spare_phase("y", 3, 2, 100.0, 5.0);
    b.with_repair(core::RepairPolicy::FastestRepairFirst, crews);
    const auto now = core::compile(b.build());

    core::ModelBuilder b2("crews+1");
    b2.add_redundant_phase("x", 3, 200.0, 10.0);
    b2.add_spare_phase("y", 3, 2, 100.0, 5.0);
    b2.with_repair(core::RepairPolicy::FastestRepairFirst, crews + 1);
    const auto more = core::compile(b2.build());

    EXPECT_GE(core::availability(more) + 1e-9, core::availability(now));

    core::Disaster d{"hit", {2, 2}};
    EXPECT_GE(core::survivability(more, d, 1.0, 30.0) + 1e-9,
              core::survivability(now, d, 1.0, 30.0));
}

INSTANTIATE_TEST_SUITE_P(Crews, CrewSweep, ::testing::Values(1u, 2u, 3u));
