// Unit tests: scenario-grid expansion, the work-stealing runner and result
// export — including the sweep-vs-handwritten identity on the paper's
// Table 2 line-2 cell (the sweep layer must subsume the bench harnesses
// bit-for-bit, not just approximately).
#include <gtest/gtest.h>

#include <sstream>

#include "arcade/measures.hpp"
#include "support/errors.hpp"
#include "support/series.hpp"
#include "sweep/sweep.hpp"

namespace core = arcade::core;
namespace engine = arcade::engine;
namespace sweep = arcade::sweep;
namespace wt = arcade::watertree;

namespace {

sweep::ScenarioGrid table2_line2_ded() {
    sweep::ScenarioGrid grid;
    grid.lines = {2};
    grid.strategies = {"DED"};
    grid.measures = {{sweep::MeasureKind::Availability, sweep::DisasterKind::None, 1.0, {}}};
    return grid;
}

}  // namespace

TEST(ScenarioGrid, ExpandIsTheDeduplicatedCrossProduct) {
    sweep::ScenarioGrid grid;
    grid.lines = {1, 2};
    grid.strategies = {"DED", "FRF-1"};
    grid.measures = {
        {sweep::MeasureKind::Availability, sweep::DisasterKind::None, 1.0, {}},
        {sweep::MeasureKind::Availability, sweep::DisasterKind::None, 1.0, {}},  // dup
        {sweep::MeasureKind::SteadyStateCost, sweep::DisasterKind::None, 1.0, {}},
    };
    const auto items = sweep::expand(grid);
    EXPECT_EQ(items.size(), 2u * 2u * 2u);  // duplicate measure dropped
    EXPECT_EQ(items.front().line, 1);
    EXPECT_EQ(items.front().strategy, "DED");
    EXPECT_EQ(items.back().line, 2);
    EXPECT_EQ(items.back().strategy, "FRF-1");
}

TEST(ScenarioGrid, MixedDisasterIsPrunedOffLine1NotAnError) {
    sweep::ScenarioGrid grid;
    grid.lines = {1, 2};
    grid.strategies = {"DED"};
    grid.measures = {{sweep::MeasureKind::Survivability, sweep::DisasterKind::Mixed,
                      1.0 / 3.0, {0.0, 1.0}}};
    const auto items = sweep::expand(grid);
    ASSERT_EQ(items.size(), 1u);
    EXPECT_EQ(items.front().line, 2);
}

TEST(ScenarioGrid, MalformedSpecsThrowEagerly) {
    auto grid = table2_line2_ded();
    grid.strategies = {"NOT-A-STRATEGY"};
    EXPECT_THROW((void)sweep::expand(grid), arcade::InvalidArgument);

    grid = table2_line2_ded();
    grid.lines = {3};
    EXPECT_THROW((void)sweep::expand(grid), arcade::InvalidArgument);

    grid = table2_line2_ded();
    grid.measures = {{sweep::MeasureKind::Survivability, sweep::DisasterKind::Mixed,
                      1.0 / 3.0, {}}};  // series without a time grid
    EXPECT_THROW((void)sweep::expand(grid), arcade::InvalidArgument);

    grid = table2_line2_ded();
    grid.measures = {{sweep::MeasureKind::Survivability, sweep::DisasterKind::Mixed,
                      1.0 / 3.0, {2.0, 1.0}}};  // descending grid
    EXPECT_THROW((void)sweep::expand(grid), arcade::InvalidArgument);

    grid = table2_line2_ded();
    grid.measures = {{sweep::MeasureKind::Reliability, sweep::DisasterKind::AllPumps, 1.0,
                      {0.0, 1.0}}};  // reliability cannot take a disaster
    EXPECT_THROW((void)sweep::expand(grid), arcade::InvalidArgument);

    grid = table2_line2_ded();
    grid.parameters.clear();  // empty parameters: zero items would be silent
    EXPECT_THROW((void)sweep::expand(grid), arcade::InvalidArgument);
}

TEST(SweepRunner, RejectsItemsPointingOutsideTheGridsParameters) {
    engine::AnalysisSession session;
    sweep::SweepRunner runner(session);
    const auto grid = table2_line2_ded();
    auto items = sweep::expand(grid);
    items.front().parameter_index = 7;
    EXPECT_THROW((void)runner.run(grid, items), arcade::InvalidArgument);
}

TEST(SweepRunner, Table2Line2CellMatchesHandwrittenBenchExactly) {
    // The line-2 Table 2 cell, exactly as bench_table2_availability computes
    // it by hand: session-cached lumped compile + cached steady state.  The
    // sweep must return the identical double, not a close one.
    engine::AnalysisSession session;
    sweep::SweepRunner runner(session);
    const auto report = runner.run(table2_line2_ded());
    ASSERT_EQ(report.results.size(), 1u);
    ASSERT_EQ(report.results.front().values.size(), 1u);

    core::CompileOptions lumped;
    lumped.encoding = core::Encoding::Lumped;
    const double by_hand = core::availability(
        session, session.compile(wt::line2(wt::strategy("DED")), lumped));
    EXPECT_EQ(report.results.front().values.front(), by_hand);

    // and it lands on the paper's digits (Table 2, line 2, DED)
    EXPECT_NEAR(report.results.front().values.front(), 0.8186317, 1e-7);
}

TEST(SweepRunner, SurvivabilitySeriesMatchesDirectEvaluation) {
    engine::AnalysisSession session;
    const auto times = arcade::time_grid(10.0, 11);
    sweep::ScenarioGrid grid;
    grid.lines = {2};
    grid.strategies = {"FRF-1"};
    grid.measures = {{sweep::MeasureKind::Survivability, sweep::DisasterKind::Mixed,
                      1.0 / 3.0, times}};
    sweep::SweepRunner runner(session);
    const auto report = runner.run(grid);
    ASSERT_EQ(report.results.size(), 1u);

    const auto model = wt::compile_line(session, 2, wt::strategy("FRF-1"),
                                        core::Encoding::Lumped);
    const auto direct = core::survivability_series(*model, wt::disaster2(), 1.0 / 3.0,
                                                   times, core::session_transient(session));
    EXPECT_EQ(report.results.front().values, direct);
}

TEST(SweepRunner, ResultsAreDeterministicAcrossThreadCounts) {
    const auto times = arcade::time_grid(5.0, 6);
    sweep::ScenarioGrid grid;
    grid.lines = {1, 2};
    grid.strategies = {"DED", "FRF-1", "FFF-2"};
    grid.measures = {
        {sweep::MeasureKind::Availability, sweep::DisasterKind::None, 1.0, {}},
        {sweep::MeasureKind::Survivability, sweep::DisasterKind::AllPumps, 1.0 / 3.0,
         times},
    };
    engine::AnalysisSession serial_session;
    sweep::SweepRunner serial(serial_session, {1u});
    engine::AnalysisSession parallel_session;
    sweep::SweepRunner parallel(parallel_session, {4u});
    const auto a = serial.run(grid);
    const auto b = parallel.run(grid);
    ASSERT_EQ(a.results.size(), b.results.size());
    for (std::size_t i = 0; i < a.results.size(); ++i) {
        EXPECT_EQ(a.results[i].item.key(), b.results[i].item.key()) << i;
        EXPECT_EQ(a.results[i].values, b.results[i].values) << a.results[i].item.key();
    }
}

TEST(SweepRunner, SharedPrefixesCompileOnceAndRepeatSweepsHitCache) {
    engine::AnalysisSession session;
    sweep::ScenarioGrid grid;
    grid.lines = {2};
    grid.strategies = {"DED", "FRF-1"};
    grid.measures = {
        {sweep::MeasureKind::Availability, sweep::DisasterKind::None, 1.0, {}},
        {sweep::MeasureKind::SteadyStateCost, sweep::DisasterKind::None, 1.0, {}},
    };
    sweep::SweepRunner runner(session);
    const auto first = runner.run(grid);
    EXPECT_EQ(first.unique_models, 2u);
    EXPECT_EQ(first.stats.compile_misses, 2u);      // one per unique model
    EXPECT_EQ(first.stats.steady_state_misses, 2u); // shared by both measures
    EXPECT_EQ(first.stats.steady_state_hits, 2u);
    EXPECT_GT(first.cache_hit_rate(), 0.0);

    const auto second = runner.run(grid);
    EXPECT_EQ(second.stats.compile_misses, 0u);  // everything cached now
    EXPECT_EQ(second.stats.steady_state_misses, 0u);
    for (std::size_t i = 0; i < first.results.size(); ++i) {
        EXPECT_EQ(first.results[i].values, second.results[i].values);
    }
}

TEST(SweepExport, CsvAndJsonCarryEveryPointAndTheCounters) {
    engine::AnalysisSession session;
    const std::vector<double> times{0.0, 1.0, 2.0};
    sweep::ScenarioGrid grid;
    grid.lines = {2};
    grid.strategies = {"DED"};
    grid.measures = {
        {sweep::MeasureKind::Availability, sweep::DisasterKind::None, 1.0, {}},
        {sweep::MeasureKind::Survivability, sweep::DisasterKind::Mixed, 1.0 / 3.0, times},
    };
    sweep::SweepRunner runner(session);
    const auto report = runner.run(grid);

    std::ostringstream csv;
    sweep::write_csv(report, grid, csv);
    std::istringstream lines(csv.str());
    std::string line;
    std::size_t rows = 0;
    while (std::getline(lines, line)) ++rows;
    // header + 1 scalar row + 3 series rows + counter comment
    EXPECT_EQ(rows, 1u + 1u + times.size() + 1u);
    EXPECT_NE(csv.str().find("2,DED,paper,availability,none"), std::string::npos);
    EXPECT_NE(csv.str().find("cache_hit_rate="), std::string::npos);

    std::ostringstream json;
    sweep::write_json(report, grid, json);
    EXPECT_NE(json.str().find("\"unique_models\": 1"), std::string::npos);
    EXPECT_NE(json.str().find("\"measure\": \"survivability\""), std::string::npos);
    EXPECT_NE(json.str().find("\"states_per_second\""), std::string::npos);
}

TEST(SweepRunner, ParameterPerturbationsAreDistinctCells) {
    engine::AnalysisSession session;
    sweep::ScenarioGrid grid;
    grid.lines = {2};
    grid.strategies = {"DED"};
    sweep::ParameterSet slow_repair;
    slow_repair.name = "pump-mttr-x10";
    slow_repair.params.pump_mttr = 10.0;
    grid.parameters = {sweep::ParameterSet{}, slow_repair};
    grid.measures = {{sweep::MeasureKind::Availability, sweep::DisasterKind::None, 1.0, {}}};
    sweep::SweepRunner runner(session);
    const auto report = runner.run(grid);
    ASSERT_EQ(report.results.size(), 2u);
    EXPECT_EQ(report.unique_models, 2u);
    // ten-times-slower pump repair must strictly hurt availability
    EXPECT_LT(report.results[1].values.front(), report.results[0].values.front());
}
