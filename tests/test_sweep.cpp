// Unit tests: scenario-grid expansion, the work-stealing runner and result
// export — including the sweep-vs-handwritten identity on the paper's
// Table 2 line-2 cell (the sweep layer must subsume the bench harnesses
// bit-for-bit, not just approximately).
#include <gtest/gtest.h>

#include <cstring>
#include <sstream>

#include "arcade/measures.hpp"
#include "support/errors.hpp"
#include "support/series.hpp"
#include "sweep/sweep.hpp"

namespace core = arcade::core;
namespace engine = arcade::engine;
namespace sweep = arcade::sweep;
namespace wt = arcade::watertree;

namespace {

sweep::ScenarioGrid table2_line2_ded() {
    sweep::ScenarioGrid grid;
    grid.lines = {2};
    grid.strategies = {"DED"};
    grid.measures = {{sweep::MeasureKind::Availability, sweep::DisasterKind::None, 1.0, {}}};
    return grid;
}

}  // namespace

TEST(ScenarioGrid, ExpandIsTheDeduplicatedCrossProduct) {
    sweep::ScenarioGrid grid;
    grid.lines = {1, 2};
    grid.strategies = {"DED", "FRF-1"};
    grid.measures = {
        {sweep::MeasureKind::Availability, sweep::DisasterKind::None, 1.0, {}},
        {sweep::MeasureKind::Availability, sweep::DisasterKind::None, 1.0, {}},  // dup
        {sweep::MeasureKind::SteadyStateCost, sweep::DisasterKind::None, 1.0, {}},
    };
    const auto items = sweep::expand(grid);
    EXPECT_EQ(items.size(), 2u * 2u * 2u);  // duplicate measure dropped
    EXPECT_EQ(items.front().line, 1);
    EXPECT_EQ(items.front().strategy, "DED");
    EXPECT_EQ(items.back().line, 2);
    EXPECT_EQ(items.back().strategy, "FRF-1");
}

TEST(ScenarioGrid, MixedDisasterIsPrunedOffLine1NotAnError) {
    sweep::ScenarioGrid grid;
    grid.lines = {1, 2};
    grid.strategies = {"DED"};
    grid.measures = {{sweep::MeasureKind::Survivability, sweep::DisasterKind::Mixed,
                      1.0 / 3.0, {0.0, 1.0}}};
    const auto items = sweep::expand(grid);
    ASSERT_EQ(items.size(), 1u);
    EXPECT_EQ(items.front().line, 2);
}

TEST(ScenarioGrid, MalformedSpecsThrowEagerly) {
    auto grid = table2_line2_ded();
    grid.strategies = {"NOT-A-STRATEGY"};
    EXPECT_THROW((void)sweep::expand(grid), arcade::InvalidArgument);

    grid = table2_line2_ded();
    grid.lines = {3};
    EXPECT_THROW((void)sweep::expand(grid), arcade::InvalidArgument);

    grid = table2_line2_ded();
    grid.measures = {{sweep::MeasureKind::Survivability, sweep::DisasterKind::Mixed,
                      1.0 / 3.0, {}}};  // series without a time grid
    EXPECT_THROW((void)sweep::expand(grid), arcade::InvalidArgument);

    grid = table2_line2_ded();
    grid.measures = {{sweep::MeasureKind::Survivability, sweep::DisasterKind::Mixed,
                      1.0 / 3.0, {2.0, 1.0}}};  // descending grid
    EXPECT_THROW((void)sweep::expand(grid), arcade::InvalidArgument);

    grid = table2_line2_ded();
    grid.measures = {{sweep::MeasureKind::Reliability, sweep::DisasterKind::AllPumps, 1.0,
                      {0.0, 1.0}}};  // reliability cannot take a disaster
    EXPECT_THROW((void)sweep::expand(grid), arcade::InvalidArgument);

    grid = table2_line2_ded();
    grid.parameters.clear();  // empty parameters: zero items would be silent
    EXPECT_THROW((void)sweep::expand(grid), arcade::InvalidArgument);
}

TEST(SweepRunner, RejectsItemsPointingOutsideTheGridsParameters) {
    engine::AnalysisSession session;
    sweep::SweepRunner runner(session);
    const auto grid = table2_line2_ded();
    auto items = sweep::expand(grid);
    items.front().parameter_index = 7;
    EXPECT_THROW((void)runner.run(grid, items), arcade::InvalidArgument);
}

TEST(SweepRunner, Table2Line2CellMatchesHandwrittenBenchExactly) {
    // The line-2 Table 2 cell, exactly as bench_table2_availability computes
    // it by hand: session-cached lumped compile + cached steady state.  The
    // sweep must return the identical double, not a close one.
    engine::AnalysisSession session;
    sweep::SweepRunner runner(session);
    const auto report = runner.run(table2_line2_ded());
    ASSERT_EQ(report.results.size(), 1u);
    ASSERT_EQ(report.results.front().values.size(), 1u);

    core::CompileOptions lumped;
    lumped.encoding = core::Encoding::Lumped;
    const double by_hand = core::availability(
        session, session.compile(wt::line2(wt::strategy("DED")), lumped));
    EXPECT_EQ(report.results.front().values.front(), by_hand);

    // and it lands on the paper's digits (Table 2, line 2, DED)
    EXPECT_NEAR(report.results.front().values.front(), 0.8186317, 1e-7);
}

TEST(SweepRunner, SurvivabilitySeriesMatchesDirectEvaluation) {
    engine::AnalysisSession session;
    const auto times = arcade::time_grid(10.0, 11);
    sweep::ScenarioGrid grid;
    grid.lines = {2};
    grid.strategies = {"FRF-1"};
    grid.measures = {{sweep::MeasureKind::Survivability, sweep::DisasterKind::Mixed,
                      1.0 / 3.0, times}};
    sweep::SweepRunner runner(session);
    const auto report = runner.run(grid);
    ASSERT_EQ(report.results.size(), 1u);

    const auto model = wt::compile_line(session, 2, wt::strategy("FRF-1"),
                                        core::Encoding::Lumped);
    const auto direct = core::survivability_series(*model, wt::disaster2(), 1.0 / 3.0,
                                                   times, core::session_transient(session));
    EXPECT_EQ(report.results.front().values, direct);
}

TEST(SweepRunner, ResultsAreDeterministicAcrossThreadCounts) {
    const auto times = arcade::time_grid(5.0, 6);
    sweep::ScenarioGrid grid;
    grid.lines = {1, 2};
    grid.strategies = {"DED", "FRF-1", "FFF-2"};
    grid.measures = {
        {sweep::MeasureKind::Availability, sweep::DisasterKind::None, 1.0, {}},
        {sweep::MeasureKind::Survivability, sweep::DisasterKind::AllPumps, 1.0 / 3.0,
         times},
    };
    engine::AnalysisSession serial_session;
    sweep::SweepRunner serial(serial_session, {1u, {}});
    engine::AnalysisSession parallel_session;
    sweep::SweepRunner parallel(parallel_session, {4u, {}});
    const auto a = serial.run(grid);
    const auto b = parallel.run(grid);
    ASSERT_EQ(a.results.size(), b.results.size());
    for (std::size_t i = 0; i < a.results.size(); ++i) {
        EXPECT_EQ(a.results[i].item.key(), b.results[i].item.key()) << i;
        EXPECT_EQ(a.results[i].values, b.results[i].values) << a.results[i].item.key();
    }
}

TEST(SweepRunner, SharedPrefixesCompileOnceAndRepeatSweepsHitCache) {
    engine::AnalysisSession session;
    sweep::ScenarioGrid grid;
    grid.lines = {2};
    grid.strategies = {"DED", "FRF-1"};
    grid.measures = {
        {sweep::MeasureKind::Availability, sweep::DisasterKind::None, 1.0, {}},
        {sweep::MeasureKind::SteadyStateCost, sweep::DisasterKind::None, 1.0, {}},
    };
    sweep::SweepRunner runner(session);
    const auto first = runner.run(grid);
    EXPECT_EQ(first.unique_models, 2u);
    EXPECT_EQ(first.stats.compile_misses, 2u);      // one per unique model
    EXPECT_EQ(first.stats.steady_state_misses, 2u); // shared by both measures
    EXPECT_EQ(first.stats.steady_state_hits, 2u);
    EXPECT_GT(first.cache_hit_rate(), 0.0);

    const auto second = runner.run(grid);
    EXPECT_EQ(second.stats.compile_misses, 0u);  // everything cached now
    EXPECT_EQ(second.stats.steady_state_misses, 0u);
    for (std::size_t i = 0; i < first.results.size(); ++i) {
        EXPECT_EQ(first.results[i].values, second.results[i].values);
    }
}

TEST(SweepExport, CsvAndJsonCarryEveryPointAndTheCounters) {
    engine::AnalysisSession session;
    const std::vector<double> times{0.0, 1.0, 2.0};
    sweep::ScenarioGrid grid;
    grid.lines = {2};
    grid.strategies = {"DED"};
    grid.measures = {
        {sweep::MeasureKind::Availability, sweep::DisasterKind::None, 1.0, {}},
        {sweep::MeasureKind::Survivability, sweep::DisasterKind::Mixed, 1.0 / 3.0, times},
    };
    sweep::SweepRunner runner(session);
    const auto report = runner.run(grid);

    std::ostringstream csv;
    sweep::write_csv(report, grid, csv);
    std::istringstream lines(csv.str());
    std::string line;
    std::size_t rows = 0;
    while (std::getline(lines, line)) ++rows;
    // header + 1 scalar row + 3 series rows; the counter footer is opt-in
    // (comment lines break strict RFC-4180 parsers)
    EXPECT_EQ(rows, 1u + 1u + times.size());
    EXPECT_NE(csv.str().find("2,DED,paper,lumped,availability,none"), std::string::npos);
    EXPECT_EQ(csv.str().find("cache_hit_rate="), std::string::npos);

    sweep::CsvOptions with_footer;
    with_footer.footer = true;
    std::ostringstream footered;
    sweep::write_csv(report, grid, footered, with_footer);
    EXPECT_NE(footered.str().find("# scenarios=2"), std::string::npos);
    EXPECT_NE(footered.str().find("cache_hit_rate="), std::string::npos);

    sweep::CsvOptions headerless;
    headerless.header = false;
    std::ostringstream body;
    sweep::write_csv(report, grid, body, headerless);
    EXPECT_EQ(body.str().find("line,strategy"), std::string::npos);
    EXPECT_EQ(csv.str(), "line,strategy,parameters,variant,measure,disaster,"
                         "service_level,t,value\n" + body.str());

    // The JSON export carries the counters unconditionally.
    std::ostringstream json;
    sweep::write_json(report, grid, json);
    EXPECT_NE(json.str().find("\"unique_models\": 1"), std::string::npos);
    EXPECT_NE(json.str().find("\"measure\": \"survivability\""), std::string::npos);
    EXPECT_NE(json.str().find("\"states_per_second\""), std::string::npos);
    EXPECT_NE(json.str().find("\"cache_hit_rate\""), std::string::npos);
    EXPECT_NE(json.str().find("\"variant\": \"lumped\""), std::string::npos);
}

TEST(ScenarioGrid, VariantAxisSweepsEncodingsAsDistinctCells) {
    sweep::ScenarioGrid grid;
    grid.lines = {2};
    grid.strategies = {"DED"};
    grid.variants = {sweep::individual_variant(), sweep::lumped_variant()};
    grid.measures = {{sweep::MeasureKind::StateSpace, sweep::DisasterKind::None, 1.0, {}}};
    const auto items = sweep::expand(grid);
    ASSERT_EQ(items.size(), 2u);
    EXPECT_EQ(items[0].variant.name, "individual");
    EXPECT_EQ(items[1].variant.name, "lumped");
    EXPECT_NE(items[0].model_key(), items[1].model_key());
    EXPECT_EQ(items[0].index, 0u);
    EXPECT_EQ(items[1].index, 1u);

    // An empty variant axis would silently expand to nothing.
    grid.variants.clear();
    EXPECT_THROW((void)sweep::expand(grid), arcade::InvalidArgument);

    // A state-space cell with a disaster is meaningless, not prunable.
    grid.variants = {sweep::lumped_variant()};
    grid.measures = {{sweep::MeasureKind::StateSpace, sweep::DisasterKind::Mixed, 1.0, {}}};
    EXPECT_THROW((void)sweep::expand(grid), arcade::InvalidArgument);
}

TEST(SweepRunner, StateSpaceMeasureReportsTheCompiledModelSizes) {
    engine::AnalysisSession session;
    sweep::ScenarioGrid grid;
    grid.lines = {2};
    grid.strategies = {"DED"};
    grid.variants = {sweep::individual_variant(), sweep::lumped_variant()};
    grid.measures = {{sweep::MeasureKind::StateSpace, sweep::DisasterKind::None, 1.0, {}}};
    sweep::RunnerOptions full;  // the cells pin Table 1's full sizes
    full.symmetry = core::SymmetryPolicy::Off;
    sweep::SweepRunner runner(session, full);
    const auto report = runner.run(grid);
    ASSERT_EQ(report.results.size(), 2u);

    core::CompileOptions individual_options;
    individual_options.symmetry = core::SymmetryPolicy::Off;
    const auto individual =
        session.compile(wt::line2(wt::strategy("DED")), individual_options);
    core::CompileOptions lumped_options;
    lumped_options.encoding = core::Encoding::Lumped;
    lumped_options.symmetry = core::SymmetryPolicy::Off;
    const auto lumped = session.compile(wt::line2(wt::strategy("DED")), lumped_options);

    EXPECT_EQ(report.results[0].model_states, individual->state_count());
    EXPECT_EQ(report.results[0].model_transitions, individual->transition_count());
    EXPECT_EQ(report.results[0].values.front(),
              static_cast<double>(individual->state_count()));
    EXPECT_EQ(report.results[1].model_states, lumped->state_count());
    EXPECT_EQ(report.results[1].model_transitions, lumped->transition_count());
    // paper Table 1: line 2 has 512 individual states; far fewer lumped
    EXPECT_EQ(report.results[0].model_states, 512u);
    EXPECT_LT(report.results[1].model_states, report.results[0].model_states);
}

TEST(SweepRunner, NoRepairVariantCompilesTheStrippedModel) {
    engine::AnalysisSession session;
    sweep::ScenarioGrid grid;
    grid.lines = {2};
    grid.strategies = {"DED"};
    grid.variants = {{"norepair", core::Encoding::Lumped, false}};
    grid.measures = {{sweep::MeasureKind::StateSpace, sweep::DisasterKind::None, 1.0, {}}};
    sweep::SweepRunner runner(session);
    const auto report = runner.run(grid);
    ASSERT_EQ(report.results.size(), 1u);

    core::CompileOptions lumped_options;
    lumped_options.encoding = core::Encoding::Lumped;
    const auto direct = session.compile(
        core::without_repair(wt::line2(wt::strategy("DED"))), lumped_options);
    EXPECT_EQ(report.results.front().model_states, direct->state_count());
    // The sweep compiled the same artefact the direct call now hits.
    EXPECT_GT(session.stats().compile_hits, 0u);
}

TEST(ShardSpec, ParsesTheCliSpelling) {
    const auto spec = sweep::ShardSpec::parse("2/3");
    EXPECT_EQ(spec.index, 2u);
    EXPECT_EQ(spec.count, 3u);
    EXPECT_TRUE(spec.is_sharded());
    EXPECT_FALSE(sweep::ShardSpec{}.is_sharded());
    for (const char* bad : {"", "2", "0/2", "3/2", "2/0", "x/2", "2/y", "/", "1/3o",
                            "+1/3", " 1/3", "1/3 ", "-1/3"}) {
        EXPECT_THROW((void)sweep::ShardSpec::parse(bad), arcade::InvalidArgument) << bad;
    }
}

TEST(ShardSlice, PartitionsTheWorkListContiguouslyAndExhaustively) {
    const auto grid = sweep::paper::everything();
    const auto items = sweep::expand(grid);
    ASSERT_GT(items.size(), 10u);
    for (std::size_t n = 1; n <= 4; ++n) {
        std::vector<std::string> concatenated;
        std::size_t min_size = items.size();
        std::size_t max_size = 0;
        for (std::size_t i = 1; i <= n; ++i) {
            const auto slice = sweep::shard_slice(items, {i, n});
            min_size = std::min(min_size, slice.size());
            max_size = std::max(max_size, slice.size());
            for (const auto& item : slice) concatenated.push_back(item.key());
        }
        // balanced to within one item, and concatenation == original order
        EXPECT_LE(max_size - min_size, 1u) << n;
        ASSERT_EQ(concatenated.size(), items.size()) << n;
        for (std::size_t k = 0; k < items.size(); ++k) {
            EXPECT_EQ(concatenated[k], items[k].key());
            EXPECT_EQ(items[k].index, k);
        }
    }
    EXPECT_THROW((void)sweep::shard_slice(items, {5, 4}), arcade::InvalidArgument);
}

TEST(ShardSlice, ShardCsvsConcatenateByteIdenticallyForOneTwoThreeShards) {
    // Separate sessions per shard model separate processes: the concatenated
    // per-shard CSVs (header on shard 1 only) must reproduce the unsharded
    // document byte-for-byte, for every shard count in {1, 2, 3}.
    sweep::ScenarioGrid grid;
    grid.lines = {1, 2};
    grid.strategies = {"DED", "FRF-1"};
    grid.variants = {sweep::lumped_variant(), sweep::individual_variant()};
    grid.measures = {
        {sweep::MeasureKind::Availability, sweep::DisasterKind::None, 1.0, {}},
        {sweep::MeasureKind::StateSpace, sweep::DisasterKind::None, 1.0, {}},
        {sweep::MeasureKind::Survivability, sweep::DisasterKind::AllPumps, 1.0 / 3.0,
         arcade::time_grid(5.0, 6)},
    };

    engine::AnalysisSession unsharded_session;
    sweep::SweepRunner unsharded(unsharded_session);
    std::ostringstream whole;
    sweep::write_csv(unsharded.run(grid), grid, whole);

    for (std::size_t n = 1; n <= 3; ++n) {
        std::string concatenated;
        for (std::size_t i = 1; i <= n; ++i) {
            engine::AnalysisSession shard_session;
            sweep::SweepRunner runner(shard_session, {0u, {i, n}});
            std::ostringstream os;
            sweep::CsvOptions options;
            options.header = i == 1;
            sweep::write_csv(runner.run(grid), grid, os, options);
            concatenated += os.str();
        }
        EXPECT_EQ(concatenated, whole.str()) << n << " shards";
    }
}

TEST(SweepExport, CsvAndJsonEscapingRoundTripsHostileNames) {
    // Names with separators, quotes and newlines must round-trip through the
    // quoted/escaped forms unchanged.
    const std::vector<std::string> hostile = {
        "plain", "comma,name", "quote\"name", "line\nbreak", "cr\rname",
        "back\\slash", "all,of\"it\\\nat once",
    };
    for (const auto& s : hostile) {
        // CSV: strip the surrounding quotes, fold doubled quotes.
        const std::string field = sweep::csv_field(s);
        std::string parsed;
        if (!field.empty() && field.front() == '"') {
            for (std::size_t i = 1; i + 1 < field.size(); ++i) {
                if (field[i] == '"') {
                    ASSERT_LT(i + 1, field.size()) << s;
                    ASSERT_EQ(field[i + 1], '"') << s;
                    ++i;
                }
                parsed.push_back(field[i]);
            }
        } else {
            parsed = field;
        }
        EXPECT_EQ(parsed, s);

        // JSON: undo \\, \" and \u00xx control escapes.
        const std::string escaped = sweep::json_escape(s);
        std::string unescaped;
        for (std::size_t i = 0; i < escaped.size(); ++i) {
            if (escaped[i] != '\\') {
                unescaped.push_back(escaped[i]);
                continue;
            }
            ASSERT_LT(i + 1, escaped.size()) << s;
            if (escaped[i + 1] == 'u') {
                ASSERT_LE(i + 6, escaped.size()) << s;
                unescaped.push_back(static_cast<char>(
                    std::stoi(escaped.substr(i + 2, 4), nullptr, 16)));
                i += 5;
            } else {
                unescaped.push_back(escaped[i + 1]);
                ++i;
            }
        }
        EXPECT_EQ(unescaped, s);
    }

    // And end to end: a hostile parameter-set name lands quoted in the CSV
    // and escaped in the JSON without corrupting either document.
    engine::AnalysisSession session;
    sweep::ScenarioGrid grid;
    grid.lines = {2};
    grid.strategies = {"DED"};
    sweep::ParameterSet nasty;
    nasty.name = "mttr,\"x10\"\nfast";
    grid.parameters = {nasty};
    grid.measures = {{sweep::MeasureKind::Availability, sweep::DisasterKind::None, 1.0, {}}};
    sweep::SweepRunner runner(session);
    const auto report = runner.run(grid);

    std::ostringstream csv;
    sweep::write_csv(report, grid, csv);
    EXPECT_NE(csv.str().find("\"mttr,\"\"x10\"\"\nfast\""), std::string::npos);
    std::ostringstream json;
    sweep::write_json(report, grid, json);
    EXPECT_NE(json.str().find("mttr,\\\"x10\\\"\\u000afast"), std::string::npos);
}

TEST(SweepRunner, ParameterPerturbationsAreDistinctCells) {
    engine::AnalysisSession session;
    sweep::ScenarioGrid grid;
    grid.lines = {2};
    grid.strategies = {"DED"};
    sweep::ParameterSet slow_repair;
    slow_repair.name = "pump-mttr-x10";
    slow_repair.params.pump_mttr = 10.0;
    grid.parameters = {sweep::ParameterSet{}, slow_repair};
    grid.measures = {{sweep::MeasureKind::Availability, sweep::DisasterKind::None, 1.0, {}}};
    sweep::SweepRunner runner(session);
    const auto report = runner.run(grid);
    ASSERT_EQ(report.results.size(), 2u);
    EXPECT_EQ(report.unique_models, 2u);
    // ten-times-slower pump repair must strictly hurt availability
    EXPECT_LT(report.results[1].values.front(), report.results[0].values.front());
}

TEST(Studies, MttrSensitivityBaselineReproducesThePaperCells) {
    // The 1.00x parameter set divides every MTTR by exactly 1.0, so its
    // cells are the paper's models — fingerprint-identical to a direct
    // compile — while the perturbed sets are distinct cells.
    const auto grid = sweep::studies::mttr_sensitivity({0.5, 1.0, 2.0});
    ASSERT_EQ(grid.parameters.size(), 3u);
    EXPECT_EQ(grid.parameters[1].name, "repair-rate-1.00x");

    engine::AnalysisSession session;
    sweep::SweepRunner runner(session);
    const auto report = runner.run(grid);
    core::CompileOptions lumped;
    lumped.encoding = core::Encoding::Lumped;
    const double direct = core::availability(
        session, session.compile(wt::line2(wt::strategy("DED")), lumped));
    const sweep::ScenarioResult* baseline = nullptr;
    const sweep::ScenarioResult* slow = nullptr;
    const sweep::ScenarioResult* fast = nullptr;
    for (const auto& r : report.results) {
        if (r.item.line != 2 || r.item.strategy != "DED" ||
            r.item.measure.kind != sweep::MeasureKind::Availability) {
            continue;
        }
        if (r.item.parameter_index == 0) slow = &r;
        if (r.item.parameter_index == 1) baseline = &r;
        if (r.item.parameter_index == 2) fast = &r;
    }
    ASSERT_NE(baseline, nullptr);
    ASSERT_NE(slow, nullptr);
    ASSERT_NE(fast, nullptr);
    EXPECT_EQ(baseline->values.front(), direct);  // same cached model
    // Halved repair rates hurt availability; doubled rates improve it.
    EXPECT_LT(slow->values.front(), baseline->values.front());
    EXPECT_GT(fast->values.front(), baseline->values.front());

    // The renderer needs every (line, strategy, parameter) cell; smoke it.
    std::ostringstream os;
    sweep::studies::render_mttr_sensitivity(report, grid, os);
    EXPECT_NE(os.str().find("repair-rate-2.00x"), std::string::npos);
    EXPECT_NE(os.str().find("L2 FFF-2"), std::string::npos);

    EXPECT_THROW((void)sweep::studies::mttr_sensitivity({}), arcade::InvalidArgument);
    EXPECT_THROW((void)sweep::studies::mttr_sensitivity({-1.0}), arcade::InvalidArgument);
}

TEST(Studies, PreemptiveStrategyVariantsResolveByName) {
    const auto& pre = wt::strategy("FRF-2-pre");
    EXPECT_TRUE(pre.preemptive);
    EXPECT_EQ(pre.crews, 2u);
    EXPECT_EQ(pre.policy, core::RepairPolicy::FastestRepairFirst);
    // The paper's own strategy list is unchanged.
    EXPECT_EQ(wt::paper_strategies().size(), 5u);
    EXPECT_THROW((void)wt::strategy("DED-pre"), arcade::InvalidArgument);
}

TEST(SweepRunner, BatchedRunIsByteIdenticalToSequentialRun) {
    // Two survivability cells (same level, same grid, different disasters)
    // and two instantaneous-cost cells on one model: under BatchPolicy::Auto
    // each pair fuses into one width-2 batched evolution.  The fused run
    // must produce byte-for-byte the values — and the CSV bytes — of the
    // cell-at-a-time run, and must say so in the batch counters.
    const auto times = arcade::time_grid(4.5, 10);
    sweep::ScenarioGrid grid;
    grid.lines = {2};
    grid.strategies = {"FRF-1"};
    grid.measures = {
        {sweep::MeasureKind::Survivability, sweep::DisasterKind::AllPumps, 1.0 / 3.0,
         times},
        {sweep::MeasureKind::Survivability, sweep::DisasterKind::Mixed, 1.0 / 3.0, times},
        {sweep::MeasureKind::InstantaneousCost, sweep::DisasterKind::AllPumps, 1.0, times},
        {sweep::MeasureKind::InstantaneousCost, sweep::DisasterKind::Mixed, 1.0, times},
        // A different level does NOT fuse with the first pair (different
        // until-transform) and, alone, demotes to the solo path.
        {sweep::MeasureKind::Survivability, sweep::DisasterKind::Mixed, 2.0 / 3.0, times},
    };

    engine::AnalysisSession off_session;
    sweep::RunnerOptions off_options;
    off_options.batch = core::BatchPolicy::Off;
    sweep::SweepRunner off_runner(off_session, off_options);
    const auto off = off_runner.run(grid);

    engine::AnalysisSession auto_session;
    sweep::RunnerOptions auto_options;
    auto_options.batch = core::BatchPolicy::Auto;
    sweep::SweepRunner auto_runner(auto_session, auto_options);
    const auto batched = auto_runner.run(grid);

    ASSERT_EQ(off.results.size(), batched.results.size());
    for (std::size_t i = 0; i < off.results.size(); ++i) {
        EXPECT_EQ(off.results[i].item.key(), batched.results[i].item.key()) << i;
        ASSERT_EQ(off.results[i].values.size(), batched.results[i].values.size()) << i;
        for (std::size_t k = 0; k < off.results[i].values.size(); ++k) {
            const double a = off.results[i].values[k];
            const double b = batched.results[i].values[k];
            EXPECT_EQ(std::memcmp(&a, &b, sizeof a), 0)
                << off.results[i].item.key() << " point " << k;
        }
        EXPECT_EQ(off.results[i].model_states, batched.results[i].model_states) << i;
    }

    // Counter contract: Off fuses nothing; Auto fused the two pairs (four
    // cells as two two-column batches) and ran the odd level solo.
    EXPECT_EQ(off.stats.batch_cells_fused, 0u);
    EXPECT_EQ(batched.stats.batch_cells_fused, 4u);
    EXPECT_EQ(batched.stats.batch_columns, 4u);
    EXPECT_GE(batched.stats.batch_seconds, 0.0);

    // And the exported CSVs (sans footer — the footer's timing counters
    // differ run to run by design) are byte-identical.
    std::ostringstream off_csv, auto_csv;
    sweep::write_csv(off, grid, off_csv);
    sweep::write_csv(batched, grid, auto_csv);
    EXPECT_EQ(off_csv.str(), auto_csv.str());
}
