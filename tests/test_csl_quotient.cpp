// Quotient-checker identity: CSL/CSRL verdicts and values computed through
// the reduction-aware engine path must agree with checking the full chain.
//
//  * on planted labelled chains, raw-checking the hand-built QuotientCtmc
//    and lifting agrees with raw-checking the full chain: satisfaction
//    (verdict) vectors bitwise-identical, quantitative vectors to 1e-9
//    relative (two different linear-algebra runs cannot be bitwise);
//  * on both watertree encodings, the engine path under ReductionPolicy::
//    Auto agrees with ::Off the same way, for nested P/S/R formulas;
//  * the engine path under Auto IS the lifted quotient check, bit for bit
//    (same computation — this is the bitwise guarantee of the lift);
//  * formulas containing Next fall back to the full chain under Auto, so
//    Auto and Off are bitwise-identical there;
//  * the session memoises results keyed by (model fingerprint, formula
//    fingerprint): repeated checks return the same shared result.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "arcade/compiler.hpp"
#include "ctmc/quotient.hpp"
#include "engine/session.hpp"
#include "logic/csl.hpp"
#include "logic/csl_compiled.hpp"
#include "support/errors.hpp"
#include "watertree/properties.hpp"
#include "watertree/watertree.hpp"

namespace core = arcade::core;
namespace ctmc = arcade::ctmc;
namespace engine = arcade::engine;
namespace logic = arcade::logic;
namespace wt = arcade::watertree;

namespace {

/// A lumpable labelled chain: `blocks` macro-states expanded into `copies`
/// bitwise-exchangeable states (identical per-block rate multisets), with
/// intra-block noise ordinary lumpability must ignore, block-constant labels
/// "a"/"b" and a block-constant "cost" reward.
struct Planted {
    ctmc::Ctmc chain;
    std::vector<double> cost;
    std::vector<std::size_t> block_of;
    ctmc::LumpSignature signature;
    logic::CheckerOptions options;
};

Planted make_planted(std::size_t blocks, std::size_t copies, unsigned seed) {
    std::mt19937 rng(seed);
    std::uniform_real_distribution<double> rate(0.2, 2.0);
    std::uniform_int_distribution<std::size_t> pick(0, copies - 1);
    const std::size_t n = blocks * copies;
    arcade::linalg::CsrBuilder builder(n, n);
    const auto state = [copies](std::size_t block, std::size_t copy) {
        return block * copies + copy;
    };
    for (std::size_t b = 0; b < blocks; ++b) {
        for (std::size_t c = 0; c < blocks; ++c) {
            if (b == c) continue;
            const double r = rate(rng);
            for (std::size_t i = 0; i < copies; ++i) {
                builder.add(state(b, i), state(c, pick(rng)), r);
            }
        }
        for (std::size_t i = 0; i + 1 < copies; ++i) {
            builder.add(state(b, i), state(b, i + 1), rate(rng));
        }
    }
    std::vector<double> initial(n, 0.0);
    initial[0] = 1.0;
    Planted out{ctmc::Ctmc(builder.build(), std::move(initial)), {}, {}, {}, {}};
    out.block_of.resize(n);
    out.cost.resize(n);
    std::vector<bool> a(n);
    std::vector<bool> b_label(n);
    std::vector<double> block_row(n);
    for (std::size_t s = 0; s < n; ++s) {
        const std::size_t b = s / copies;
        out.block_of[s] = b;
        out.cost[s] = static_cast<double>(b % 3);
        a[s] = b % 2 == 0;
        b_label[s] = b + 1 == blocks;
        block_row[s] = static_cast<double>(b);
    }
    out.chain.set_label("a", std::move(a));
    out.chain.set_label("b", std::move(b_label));
    out.signature.labels = {"a", "b"};
    out.signature.values = {out.cost, block_row};
    out.options.reward_structures.emplace(
        "cost", arcade::rewards::RewardStructure("cost", out.cost));
    return out;
}

/// Raw-checks `formula` on the quotient chain (projected rewards) and lifts
/// the per-state vectors back — the by-hand version of the engine path.
logic::CheckResult check_lifted(const Planted& planted, const ctmc::QuotientCtmc& q,
                                const std::string& formula) {
    logic::CheckerOptions options;
    options.reward_structures.emplace(
        "cost",
        arcade::rewards::RewardStructure("cost", q.project_values(planted.cost)));
    logic::CheckResult result = logic::check(q.chain(), formula, options);
    if (!result.values.empty()) result.values = q.lift_values(result.values);
    if (!result.satisfaction.empty()) {
        std::vector<bool> sat(result.satisfaction);
        result.satisfaction = q.lift_mask(sat);
    }
    return result;
}

void expect_near_rel(const std::vector<double>& a, const std::vector<double>& b,
                     double tolerance, const std::string& what) {
    ASSERT_EQ(a.size(), b.size()) << what;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const double scale = std::max({1.0, std::abs(a[i]), std::abs(b[i])});
        EXPECT_NEAR(a[i], b[i], tolerance * scale) << what << " at " << i;
    }
}

/// Nested P/S/R formulas over the planted chain's vocabulary.  Thresholds
/// sit far from the computed probabilities, so Off/Auto verdicts cannot
/// flip on solver noise.
const char* const kPlantedFormulas[] = {
    "P=? [ \"a\" U<=2 \"b\" ]",
    "P>=0.9999 [ true U<=0.001 \"b\" ]",
    "P=? [ true U \"b\" ]",
    "P=? [ true U<=3 (\"b\" & P>=0.0001 [ true U<=1 \"a\" ]) ]",
    "S=? [ \"a\" ]",
    "S>=0.999999 [ P<=0.999999 [ true U<=2 \"b\" ] | \"b\" ]",
    "R{\"cost\"}=? [ C<=2 ]",
    "R{\"cost\"}=? [ I=1.5 ]",
    "R{\"cost\"}=? [ S ]",
    "P=? [ G<=2 !\"b\" ]",
};

}  // namespace

TEST(CslQuotient, LiftedQuotientCheckAgreesWithFullChainOnPlantedChains) {
    for (const unsigned seed : {5u, 17u}) {
        const auto planted = make_planted(6, 3, seed);
        const ctmc::QuotientCtmc q(planted.chain, planted.signature);
        ASSERT_EQ(q.block_count(), 6u);
        for (const char* formula : kPlantedFormulas) {
            const auto full = logic::check(planted.chain, formula, planted.options);
            const auto lifted = check_lifted(planted, q, formula);
            const std::string what = std::string(formula) + " seed " + std::to_string(seed);
            // Verdicts are bitwise: boolean vectors either agree exactly or
            // the quotient is wrong.
            EXPECT_EQ(full.satisfaction, lifted.satisfaction) << what;
            ASSERT_EQ(full.holds.has_value(), lifted.holds.has_value()) << what;
            if (full.holds) EXPECT_EQ(*full.holds, *lifted.holds) << what;
            // Values are two different linear-algebra runs (6 blocks vs 18
            // states): equal to tight tolerance, never bitwise.
            expect_near_rel(full.values, lifted.values, 1e-9, what);
            ASSERT_EQ(full.value.has_value(), lifted.value.has_value()) << what;
            if (full.value) EXPECT_NEAR(*full.value, *lifted.value, 1e-9) << what;
        }
    }
}

TEST(CslQuotient, EnginePathUnderAutoIsTheLiftedQuotientCheckBitwise) {
    // The engine path under ReductionPolicy::Auto must BE the lifted
    // quotient evaluation — same kernels, same lift — so comparing the two
    // is bitwise, not approximate.  (S / R[S] queries route through the
    // session's cached steady-state solve instead and are covered below.)
    engine::AnalysisSession session;
    core::CompileOptions options;
    options.encoding = core::Encoding::Individual;
    options.reduction = core::ReductionPolicy::Auto;
    options.symmetry = core::SymmetryPolicy::Off;  // the lift targets the full chain
    const auto model = session.compile(wt::line2(wt::strategy("FRF-1")), options);
    const auto q = session.quotient(model);
    ASSERT_LT(q->block_count(), model->state_count());

    for (const std::string formula :
         {std::string("P=? [ true U<=10 \"down\" ]"),
          std::string("P>=0.5 [ true U<=100 \"operational\" ]"),
          wt::properties::survivability_formula(2.0 / 3.0, 50.0)}) {
        logic::CheckerOptions checker;
        checker.reward_structures.emplace(
            "cost", arcade::rewards::RewardStructure(
                        "cost", q->project_values(model->cost_reward().state_rates())));
        logic::CheckResult by_hand = logic::check(q->chain(), formula, checker);
        const auto engine_result = logic::check(session, model, formula);
        if (!by_hand.values.empty()) {
            EXPECT_EQ(engine_result.values, q->lift_values(by_hand.values)) << formula;
        }
        if (!by_hand.satisfaction.empty()) {
            EXPECT_EQ(engine_result.satisfaction, q->lift_mask(by_hand.satisfaction))
                << formula;
        }
    }
}

TEST(CslQuotient, AutoAgreesWithOffOnBothWatertreeEncodings) {
    for (const core::Encoding encoding :
         {core::Encoding::Individual, core::Encoding::Lumped}) {
        engine::AnalysisSession session_off;
        engine::AnalysisSession session_auto;
        core::CompileOptions off;
        off.encoding = encoding;
        off.reduction = core::ReductionPolicy::Off;
        core::CompileOptions automatic = off;
        automatic.reduction = core::ReductionPolicy::Auto;
        const auto model_off = session_off.compile(wt::line2(wt::strategy("FFF-1")), off);
        const auto model_auto =
            session_auto.compile(wt::line2(wt::strategy("FFF-1")), automatic);

        const std::string x2 = wt::properties::survivability_formula(2.0 / 3.0, 25.0);
        for (const std::string formula :
             {std::string("P=? [ true U<=10 \"down\" ]"),
              std::string("S=? [ \"operational\" ]"),
              std::string("R{\"cost\"}=? [ S ]"),
              std::string("P=? [ !\"total_failure\" U<=50 \"operational\" ]"),
              std::string("S>=0.000001 [ P>=0.5 [ true U<=1 \"operational\" ] ]"), x2}) {
            const auto a = logic::check(session_off, model_off, formula);
            const auto b = logic::check(session_auto, model_auto, formula);
            const std::string what =
                formula + (encoding == core::Encoding::Individual ? " individual"
                                                                  : " lumped");
            EXPECT_EQ(a.satisfaction, b.satisfaction) << what;
            if (a.holds) EXPECT_EQ(*a.holds, *b.holds) << what;
            expect_near_rel(a.values, b.values, 1e-8, what);
            if (a.value) EXPECT_NEAR(*a.value, *b.value, 1e-8) << what;
        }
    }
}

TEST(CslQuotient, NextFallsBackToTheFullChainBitwise) {
    // X is not invariant under ordinary lumping (jump probabilities read
    // intra-block rates), so the engine path evaluates Next-containing
    // formulas on the full chain — Auto and Off become the same computation.
    engine::AnalysisSession session_off;
    engine::AnalysisSession session_auto;
    core::CompileOptions off;
    off.encoding = core::Encoding::Lumped;
    off.reduction = core::ReductionPolicy::Off;
    core::CompileOptions automatic = off;
    automatic.reduction = core::ReductionPolicy::Auto;
    const auto model_off = session_off.compile(wt::line2(wt::strategy("DED")), off);
    const auto model_auto = session_auto.compile(wt::line2(wt::strategy("DED")), automatic);

    const std::string formula = "P=? [ X \"down\" ]";
    const auto a = logic::check(session_off, model_off, formula);
    const auto b = logic::check(session_auto, model_auto, formula);
    EXPECT_EQ(a.values, b.values);  // bitwise: both ran the full chain
    ASSERT_TRUE(a.value && b.value);
    EXPECT_EQ(*a.value, *b.value);
}

TEST(CslQuotient, SteadyStatePropertiesReuseTheSessionSolveByteIdentically) {
    // S=?["operational"] must BE the availability measure and R{"cost"}=?[S]
    // the long-run cost — same cached distribution, same summation order.
    engine::AnalysisSession session;
    core::CompileOptions options;
    options.reduction = core::ReductionPolicy::Auto;
    const auto model = session.compile(wt::line2(wt::strategy("FRF-2")), options);

    const auto availability = logic::check(session, model, "S=? [ \"operational\" ]");
    ASSERT_TRUE(availability.value.has_value());
    EXPECT_EQ(*availability.value, session.availability(model));

    const auto cost = logic::check(session, model, "R{\"cost\"}=? [ S ]");
    ASSERT_TRUE(cost.value.has_value());
    EXPECT_EQ(*cost.value, session.steady_state_cost(model));

    // One steady-state solve served all four consumers.
    EXPECT_EQ(session.stats().steady_state_misses, 1u);
}

TEST(CslQuotient, SessionMemoisesPropertyResults) {
    engine::AnalysisSession session;
    core::CompileOptions options;
    options.reduction = core::ReductionPolicy::Auto;
    const auto model = session.compile(wt::line2(wt::strategy("DED")), options);

    const auto formula = logic::parse_csl("P=? [ true U<=10 \"down\" ]");
    const auto first = session.check_property(model, *formula);
    const auto second = session.check_property(model, *formula);
    EXPECT_EQ(first.get(), second.get());  // the memoised shared result
    // An equal formula parsed from different text hits the same entry.
    const auto third = session.check_property(model, "P=? [ true U<=10 \"down\" ]");
    EXPECT_EQ(first.get(), third.get());
    // A different formula (or epsilon) misses.
    (void)session.check_property(model, "P=? [ true U<=20 \"down\" ]");
    (void)session.check_property(model, *formula, /*epsilon=*/1e-10);
    const auto stats = session.stats();
    EXPECT_EQ(stats.property_hits, 2u);
    EXPECT_EQ(stats.property_misses, 3u);

    session.clear();
    EXPECT_EQ(session.stats().property_misses, 0u);
}

TEST(CslQuotient, UnreferencedNonLumpableRewardStructuresDoNotAbortChecks) {
    // Caller-supplied reward structures project lazily at use site: a
    // structure that is NOT block-constant w.r.t. the model's lump
    // signature must not abort a check that never reads it — and must
    // throw InvalidArgument only when actually referenced on the quotient.
    engine::AnalysisSession session;
    core::CompileOptions options;
    options.reduction = core::ReductionPolicy::Auto;
    options.symmetry = core::SymmetryPolicy::Off;  // the guard needs a lumpable chain
    const auto model = session.compile(wt::line2(wt::strategy("DED")), options);
    ASSERT_LT(session.quotient(model)->block_count(), model->state_count());

    logic::CheckerOptions checker;
    std::vector<double> per_state(model->state_count());
    for (std::size_t s = 0; s < per_state.size(); ++s) {
        per_state[s] = static_cast<double>(s);  // splits every block
    }
    checker.reward_structures.emplace(
        "perstate", arcade::rewards::RewardStructure("perstate", per_state));

    const auto unrelated =
        logic::check(session, model, "P=? [ true U<=1 \"down\" ]", checker);
    EXPECT_TRUE(unrelated.value.has_value());

    EXPECT_THROW(
        (void)logic::check(session, model, "R{\"perstate\"}=? [ C<=1 ]", checker),
        arcade::InvalidArgument);
}

TEST(CslQuotient, CheckSeriesRejectsNonTimeParametricTopLevels) {
    engine::AnalysisSession session;
    const auto model = session.compile(wt::line2(wt::strategy("DED")));
    const std::vector<double> times{0.0, 1.0, 2.0};
    const std::vector<double> initial = model->chain().initial_distribution();
    for (const char* formula : {"S=? [ \"operational\" ]", "R{\"cost\"}=? [ S ]",
                                "P>=0.5 [ true U<=1 \"down\" ]", "\"operational\"",
                                "P=? [ true U \"down\" ]"}) {
        EXPECT_THROW((void)logic::check_series(session, model, *logic::parse_csl(formula),
                                               times, initial),
                     arcade::InvalidArgument)
            << formula;
    }
}
