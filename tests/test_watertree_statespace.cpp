// Integration tests: the case study's state spaces against the paper's
// Table 1 — the state counts must match EXACTLY (the encoding was
// reverse-engineered from these numbers).
#include <gtest/gtest.h>

#include "arcade/compiler.hpp"
#include "watertree/watertree.hpp"

namespace wt = arcade::watertree;
namespace core = arcade::core;

namespace {

struct Table1Row {
    const char* strategy;
    std::size_t line1_states;
    std::size_t line2_states;
};

// Paper, Table 1 (states).
const Table1Row kTable1[] = {
    {"DED", 2048, 512},
    {"FRF-1", 111809, 8129},
    {"FRF-2", 111809, 8129},
    {"FFF-1", 111809, 8129},
    {"FFF-2", 111809, 8129},
};

/// These tests pin the FULL individual encoding against Table 1, so the
/// symmetry quotient must stay off even under ARCADE_SYMMETRY=auto.
core::CompileOptions full_encoding() {
    core::CompileOptions options;
    options.symmetry = core::SymmetryPolicy::Off;
    return options;
}

const wt::Strategy& strategy_named(const std::string& name) {
    static const auto all = wt::paper_strategies();
    for (const auto& s : all) {
        if (s.name == name) return s;
    }
    throw std::runtime_error("unknown strategy " + name);
}

}  // namespace

TEST(WatertreeStateSpace, Line2MatchesTable1Exactly) {
    for (const auto& row : kTable1) {
        const auto model = wt::line2(strategy_named(row.strategy));
        const auto compiled = core::compile(model, full_encoding());
        EXPECT_EQ(compiled.state_count(), row.line2_states)
            << "strategy " << row.strategy << " (line 2)";
    }
}

TEST(WatertreeStateSpace, Line1MatchesTable1Exactly) {
    for (const auto& row : kTable1) {
        const auto model = wt::line1(strategy_named(row.strategy));
        const auto compiled = core::compile(model, full_encoding());
        EXPECT_EQ(compiled.state_count(), row.line1_states)
            << "strategy " << row.strategy << " (line 1)";
    }
}

TEST(WatertreeStateSpace, DedicatedTransitionCountsMatchTable1) {
    // DED transitions: every component can fail or be repaired in every
    // state: n * 2^n.  Paper: 22528 (line 1); line 2 prints 4606, which is
    // 2 short of 9*512 — we take the analytic value as authoritative.
    const auto ded = strategy_named("DED");
    EXPECT_EQ(core::compile(wt::line1(ded), full_encoding()).transition_count(), 22528u);
    EXPECT_EQ(core::compile(wt::line2(ded), full_encoding()).transition_count(), 4608u);
}

TEST(WatertreeStateSpace, SecondCrewAddsOneTransitionPerQueueingState) {
    // Paper: FRF-2 has exactly 111797 (line 1) / 8119 (line 2) more
    // transitions than FRF-1 — one extra repair transition in every state
    // with a non-empty waiting queue.
    const auto frf1_l2 = core::compile(wt::line2(strategy_named("FRF-1")), full_encoding());
    const auto frf2_l2 = core::compile(wt::line2(strategy_named("FRF-2")), full_encoding());
    EXPECT_EQ(frf2_l2.transition_count() - frf1_l2.transition_count(), 8119u);

    const auto fff1_l2 = core::compile(wt::line2(strategy_named("FFF-1")), full_encoding());
    const auto fff2_l2 = core::compile(wt::line2(strategy_named("FFF-2")), full_encoding());
    EXPECT_EQ(fff2_l2.transition_count() - fff1_l2.transition_count(), 8119u);
}

TEST(WatertreeStateSpace, LumpedEncodingIsOrdersOfMagnitudeSmaller) {
    core::CompileOptions lumped;
    lumped.encoding = core::Encoding::Lumped;
    const auto frf1 = core::compile(wt::line2(strategy_named("FRF-1")), lumped);
    EXPECT_LT(frf1.state_count(), 1000u);
    const auto ded = core::compile(wt::line2(strategy_named("DED")), lumped);
    EXPECT_LT(ded.state_count(), 200u);
}

TEST(WatertreeStateSpace, ServiceIntervalsMatchPaper) {
    const auto l1 = wt::line1(strategy_named("DED"));
    const auto bounds1 = wt::service_interval_bounds(l1);
    // Line 1: X1=[1/3,..), X2=[2/3,..), X3=[1,1]
    ASSERT_EQ(bounds1.size(), 3u);
    EXPECT_NEAR(bounds1[0], 1.0 / 3.0, 1e-12);
    EXPECT_NEAR(bounds1[1], 2.0 / 3.0, 1e-12);
    EXPECT_NEAR(bounds1[2], 1.0, 1e-12);

    const auto l2 = wt::line2(strategy_named("DED"));
    const auto bounds2 = wt::service_interval_bounds(l2);
    // Line 2: X1=1/3, X2=1/2, X3=2/3, X4=1
    ASSERT_EQ(bounds2.size(), 4u);
    EXPECT_NEAR(bounds2[0], 1.0 / 3.0, 1e-12);
    EXPECT_NEAR(bounds2[1], 1.0 / 2.0, 1e-12);
    EXPECT_NEAR(bounds2[2], 2.0 / 3.0, 1e-12);
    EXPECT_NEAR(bounds2[3], 1.0, 1e-12);
}
