// Integration tests: survivability and cost curves against the paper's
// Figures 3–11 (shape claims, endpoints, and the cross-strategy orderings
// the paper's Section 5 discusses).
#include <gtest/gtest.h>

#include <cmath>

#include "arcade/compiler.hpp"
#include "arcade/measures.hpp"
#include "support/series.hpp"
#include "watertree/watertree.hpp"

namespace core = arcade::core;
namespace wt = arcade::watertree;

namespace {

const wt::Strategy& strategy(const std::string& name) {
    static const auto all = wt::paper_strategies();
    for (const auto& s : all) {
        if (s.name == name) return s;
    }
    throw std::runtime_error("unknown strategy " + name);
}

core::CompiledModel lumped(const core::ArcadeModel& model) {
    core::CompileOptions options;
    options.encoding = core::Encoding::Lumped;
    return core::compile(model, options);
}

}  // namespace

TEST(Fig3Reliability, Line2DominatesLine1AndDecays) {
    const auto times = arcade::time_grid(1000.0, 21);
    const auto l1 = lumped(core::without_repair(wt::line1(strategy("DED"))));
    const auto l2 = lumped(core::without_repair(wt::line2(strategy("DED"))));
    const auto r1 = core::reliability_series(l1, times);
    const auto r2 = core::reliability_series(l2, times);
    EXPECT_NEAR(r1.front(), 1.0, 1e-9);
    EXPECT_NEAR(r2.front(), 1.0, 1e-9);
    for (std::size_t i = 1; i < times.size(); ++i) {
        EXPECT_LE(r1[i], r1[i - 1] + 1e-12);            // monotone decay
        EXPECT_GT(r2[i] + 1e-12, r1[i]) << times[i];    // paper: line 2 more reliable
    }
    EXPECT_LT(r1.back(), 0.01);  // ~0 at 1000 h (paper's figure)
}

TEST(Fig3Reliability, MatchesIndependentComponentClosedForm) {
    // Without repair the components are independent; R(t) has a product form.
    const auto l2 = lumped(core::without_repair(wt::line2(strategy("DED"))));
    const double t = 200.0;
    const std::vector<double> times{0.0, t};
    const double measured = core::reliability_series(l2, times).back();
    const double e_st = std::exp(-3.0 * t / 2000.0);
    const double e_sf = std::exp(-2.0 * t / 1000.0);
    const double e_res = std::exp(-t / 6000.0);
    const double p = std::exp(-t / 500.0);
    const double pumps = p * p * p + 3.0 * p * p * (1.0 - p);  // >= 2 of 3 up
    EXPECT_NEAR(measured, e_st * e_sf * e_res * pumps, 1e-9);
}

TEST(Fig4And5Survivability, OrderingsAndLimits) {
    const auto times = arcade::time_grid(4.5, 10);
    const auto disaster = wt::disaster1(wt::line1(strategy("DED")));
    const auto ded = lumped(wt::line1(strategy("DED")));
    const auto frf1 = lumped(wt::line1(strategy("FRF-1")));
    const auto frf2 = lumped(wt::line1(strategy("FRF-2")));
    for (double x : {1.0 / 3.0, 2.0 / 3.0}) {
        const auto s_ded = core::survivability_series(ded, disaster, x, times);
        const auto s1 = core::survivability_series(frf1, disaster, x, times);
        const auto s2 = core::survivability_series(frf2, disaster, x, times);
        for (std::size_t i = 1; i < times.size(); ++i) {
            // paper: DED fastest, FRF-2 faster than FRF-1
            EXPECT_GE(s_ded[i] + 1e-9, s2[i]) << times[i];
            EXPECT_GE(s2[i] + 1e-9, s1[i]) << times[i];
            // monotone in t
            EXPECT_GE(s1[i] + 1e-12, s1[i - 1]);
        }
        // starts at 0 (disaster state has no pumps)
        EXPECT_NEAR(s1.front(), 0.0, 1e-12);
    }
    // recovery to X1 needs one pump repair (1 h): near-complete by 4.5 h
    EXPECT_GT(core::survivability(ded, disaster, 1.0 / 3.0, 4.5), 0.95);
}

TEST(Fig4Survivability, X2SlowerThanX1) {
    const auto disaster = wt::disaster1(wt::line1(strategy("FRF-1")));
    const auto frf1 = lumped(wt::line1(strategy("FRF-1")));
    for (double t : {0.5, 1.0, 2.0, 4.0}) {
        EXPECT_GE(core::survivability(frf1, disaster, 1.0 / 3.0, t) + 1e-9,
                  core::survivability(frf1, disaster, 2.0 / 3.0, t))
            << t;
    }
}

TEST(Fig4Survivability, DedMatchesErlangClosedForm) {
    // DED, Disaster 1, X1: need >=1 of 4 pumps back, each repairing at rate
    // 1/h in parallel, while other components may fail.  Other phases only
    // LOWER service below 1/3 if a whole phase dies (prob ~0 in 4.5 h), so
    // P ~ P(min of 4 exp(1) <= t) = 1 - e^{-4t}.
    const auto ded = lumped(wt::line1(strategy("DED")));
    const auto disaster = wt::disaster1(ded.model());
    for (double t : {0.25, 0.5, 1.0}) {
        EXPECT_NEAR(core::survivability(ded, disaster, 1.0 / 3.0, t),
                    1.0 - std::exp(-4.0 * t), 5e-3)
            << t;
    }
}

TEST(Fig8Survivability, Fff1SlowestToX1) {
    // Paper: "FFF-1 clearly provides the slowest recovery to X1" because the
    // reservoir is repaired last under FFF.
    const auto disaster = wt::disaster2();
    const auto times = arcade::time_grid(100.0, 11);
    const double x1 = 1.0 / 3.0;
    const auto fff1 = core::survivability_series(lumped(wt::line2(strategy("FFF-1"))),
                                                 disaster, x1, times);
    for (const auto* other : {"DED", "FRF-1", "FRF-2", "FFF-2"}) {
        const auto s = core::survivability_series(lumped(wt::line2(strategy(other))),
                                                  disaster, x1, times);
        for (std::size_t i = 2; i < times.size(); ++i) {
            EXPECT_GE(s[i] + 1e-9, fff1[i]) << other << " t=" << times[i];
        }
    }
}

TEST(Fig9Survivability, OrderingFlipsAtX3) {
    // Paper: at X3 the sand filter matters more than the reservoir, so FFF
    // (sand filter early) beats FRF (sand filter last).
    const auto disaster = wt::disaster2();
    const double x3 = 2.0 / 3.0;
    for (double t : {40.0, 60.0, 80.0, 100.0}) {
        const double fff2 =
            core::survivability(lumped(wt::line2(strategy("FFF-2"))), disaster, x3, t);
        const double frf2 =
            core::survivability(lumped(wt::line2(strategy("FRF-2"))), disaster, x3, t);
        EXPECT_GT(fff2 + 1e-9, frf2) << t;
    }
    // For one crew the exact solution makes the two curves essentially
    // coincide (within 1e-2 absolute): both policies schedule the softener
    // repair — which X3 does not need — before the last needed repair, so
    // the work to reach X3 is identical.  The paper's visible FFF-1 lead is
    // another instance of its one-crew solver noise; see EXPERIMENTS.md.
    for (double t : {30.0, 60.0, 100.0}) {
        const double fff1 =
            core::survivability(lumped(wt::line2(strategy("FFF-1"))), disaster, x3, t);
        const double frf1 =
            core::survivability(lumped(wt::line2(strategy("FRF-1"))), disaster, x3, t);
        EXPECT_NEAR(fff1, frf1, 1e-2) << t;
    }
}

TEST(Fig6InstCost, StartLevelsAndAsymptotes) {
    const auto disaster = wt::disaster1(wt::line1(strategy("DED")));
    const std::vector<double> t0{0.0};
    const std::vector<double> t_inf{0.0, 400.0};

    // t=0: four failed pumps cost 12; DED has 7 idle crews (11 - 4 busy).
    const auto ded = lumped(wt::line1(strategy("DED")));
    EXPECT_NEAR(core::instantaneous_cost_series(ded, disaster, t0).front(), 19.0, 1e-9);
    const auto frf1 = lumped(wt::line1(strategy("FRF-1")));
    EXPECT_NEAR(core::instantaneous_cost_series(frf1, disaster, t0).front(), 12.0, 1e-9);
    const auto frf2 = lumped(wt::line1(strategy("FRF-2")));
    EXPECT_NEAR(core::instantaneous_cost_series(frf2, disaster, t0).front(), 12.0, 1e-9);

    // t -> inf: cost converges towards the steady-state level, dominated by
    // the idle-crew rates (11 / 1 / 2) plus the small failed-component term.
    const double ded_inf = core::instantaneous_cost_series(ded, disaster, t_inf).back();
    EXPECT_NEAR(ded_inf, core::steady_state_cost(ded), 0.05);
    EXPECT_GT(ded_inf, 10.5);
    const double frf1_inf = core::instantaneous_cost_series(frf1, disaster, t_inf).back();
    EXPECT_LT(frf1_inf, 3.0);  // ~1 idle crew + failed-component residue
    const double frf2_inf = core::instantaneous_cost_series(frf2, disaster, t_inf).back();
    EXPECT_GT(frf2_inf, frf1_inf);  // second idle crew costs more at rest
}

TEST(Fig7AccCost, DedHighestAndLinearTail) {
    const auto disaster = wt::disaster1(wt::line1(strategy("DED")));
    const auto times = arcade::time_grid(10.0, 11);
    const auto ded = core::accumulated_cost_series(lumped(wt::line1(strategy("DED"))),
                                                   disaster, times);
    const auto frf1 = core::accumulated_cost_series(lumped(wt::line1(strategy("FRF-1"))),
                                                    disaster, times);
    const auto frf2 = core::accumulated_cost_series(lumped(wt::line1(strategy("FRF-2"))),
                                                    disaster, times);
    EXPECT_NEAR(ded.front(), 0.0, 1e-12);
    for (std::size_t i = 1; i < times.size(); ++i) {
        EXPECT_GT(ded[i], frf1[i]);  // paper: DED most expensive
        EXPECT_GT(ded[i], frf2[i]);
    }
    // paper figure: DED accumulates ~110-120 over 10 h
    EXPECT_GT(ded.back(), 100.0);
    EXPECT_LT(ded.back(), 130.0);
    // FRF-2 cheaper than FRF-1 during recovery (paper Section 5)
    EXPECT_LT(frf2[2], frf1[2] + 1.0);
}

TEST(Fig10And11Costs, Fff1ConvergesSlowestAndCostsMost) {
    const auto disaster = wt::disaster2();
    const std::vector<double> t0{0.0};
    const auto times = arcade::time_grid(50.0, 11);
    // all strategies start at 15 = 5 failed components x 3/h (no idle crew)
    for (const auto* name : {"FFF-1", "FFF-2", "FRF-1", "FRF-2"}) {
        const auto model = lumped(wt::line2(strategy(name)));
        EXPECT_NEAR(core::instantaneous_cost_series(model, disaster, t0).front(), 15.0,
                    1e-9)
            << name;
    }
    const auto fff1 = core::accumulated_cost_series(lumped(wt::line2(strategy("FFF-1"))),
                                                    disaster, times);
    const auto frf2 = core::accumulated_cost_series(lumped(wt::line2(strategy("FRF-2"))),
                                                    disaster, times);
    // paper: FFF-1 accumulates the most, FRF-2 the least
    EXPECT_GT(fff1.back(), frf2.back());
}

TEST(Survivability, LumpedAgreesWithIndividualEncoding) {
    const auto disaster = wt::disaster2();
    for (const auto* name : {"DED", "FRF-1", "FRF-2", "FFF-1", "FFF-2"}) {
        const auto model = wt::line2(strategy(name));
        const auto ind = core::compile(model);
        const auto lmp = lumped(model);
        for (double x : {1.0 / 3.0, 2.0 / 3.0, 1.0}) {
            EXPECT_NEAR(core::survivability(ind, disaster, x, 20.0),
                        core::survivability(lmp, disaster, x, 20.0), 1e-9)
                << name << " x=" << x;
        }
    }
}

TEST(Costs, LumpedAgreesWithIndividualEncoding) {
    const auto disaster = wt::disaster2();
    const std::vector<double> times{0.0, 5.0, 25.0};
    for (const auto* name : {"FRF-1", "FFF-2"}) {
        const auto model = wt::line2(strategy(name));
        const auto a = core::accumulated_cost_series(core::compile(model), disaster, times);
        const auto b = core::accumulated_cost_series(lumped(model), disaster, times);
        for (std::size_t i = 0; i < times.size(); ++i) {
            EXPECT_NEAR(a[i], b[i], 1e-8) << name << " t=" << times[i];
        }
    }
}
