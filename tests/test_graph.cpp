// Unit tests: SCC decomposition, BSCC detection, reachability closures.
#include <gtest/gtest.h>

#include "graph/scc.hpp"

namespace la = arcade::linalg;
namespace graph = arcade::graph;

namespace {

la::CsrMatrix make_graph(std::size_t n, const std::vector<std::pair<int, int>>& edges) {
    la::CsrBuilder b(n, n);
    for (const auto& [u, v] : edges) b.add(u, v, 1.0);
    return b.build();
}

}  // namespace

TEST(Scc, TwoCyclesAndABridge) {
    // 0 <-> 1 -> 2 <-> 3 ; SCCs {0,1}, {2,3}; only {2,3} is bottom.
    const auto g = make_graph(4, {{0, 1}, {1, 0}, {1, 2}, {2, 3}, {3, 2}});
    const auto scc = graph::strongly_connected_components(g);
    EXPECT_EQ(scc.count, 2u);
    EXPECT_EQ(scc.component[0], scc.component[1]);
    EXPECT_EQ(scc.component[2], scc.component[3]);
    EXPECT_NE(scc.component[0], scc.component[2]);
    EXPECT_FALSE(scc.bottom[scc.component[0]]);
    EXPECT_TRUE(scc.bottom[scc.component[2]]);
}

TEST(Scc, SingletonsAndSelfLoops) {
    // 0 -> 1 -> 2 (chain), 2 has a self-loop; each is its own SCC; 2 bottom.
    const auto g = make_graph(3, {{0, 1}, {1, 2}, {2, 2}});
    const auto scc = graph::strongly_connected_components(g);
    EXPECT_EQ(scc.count, 3u);
    EXPECT_TRUE(scc.bottom[scc.component[2]]);
    EXPECT_FALSE(scc.bottom[scc.component[0]]);
    EXPECT_FALSE(scc.bottom[scc.component[1]]);
}

TEST(Scc, BigCycleIsOneComponent) {
    std::vector<std::pair<int, int>> edges;
    const int n = 100;
    for (int i = 0; i < n; ++i) edges.push_back({i, (i + 1) % n});
    const auto scc = graph::strongly_connected_components(make_graph(n, edges));
    EXPECT_EQ(scc.count, 1u);
    EXPECT_TRUE(scc.bottom[0]);
}

TEST(Scc, DeepChainDoesNotOverflowTheStack) {
    // 30k-vertex path exercises the iterative Tarjan implementation.
    std::vector<std::pair<int, int>> edges;
    const int n = 30000;
    for (int i = 0; i + 1 < n; ++i) edges.push_back({i, i + 1});
    const auto scc = graph::strongly_connected_components(make_graph(n, edges));
    EXPECT_EQ(scc.count, static_cast<std::size_t>(n));
}

TEST(Reachability, ForwardAndBackwardClosures) {
    const auto g = make_graph(5, {{0, 1}, {1, 2}, {3, 4}});
    std::vector<bool> sources(5, false);
    sources[0] = true;
    const auto fwd = graph::forward_reachable(g, sources);
    EXPECT_TRUE(fwd[0] && fwd[1] && fwd[2]);
    EXPECT_FALSE(fwd[3] || fwd[4]);

    const auto gt = g.transposed();
    std::vector<bool> targets(5, false);
    targets[2] = true;
    const auto bwd = graph::backward_reachable(gt, targets);
    EXPECT_TRUE(bwd[0] && bwd[1] && bwd[2]);
    EXPECT_FALSE(bwd[3] || bwd[4]);
}

TEST(Reachability, AlmostSureReach) {
    // 0 -> 1 (target), 0 -> 2 (trap), so from 0 reach is NOT almost sure;
    // 3 -> 1 only, so from 3 it is.
    const auto g = make_graph(4, {{0, 1}, {0, 2}, {2, 2}, {3, 1}});
    const auto gt = g.transposed();
    std::vector<bool> allowed(4, true);
    std::vector<bool> target(4, false);
    target[1] = true;
    const auto sure = graph::almost_sure_reach(g, gt, allowed, target);
    EXPECT_FALSE(sure[0]);
    EXPECT_TRUE(sure[1]);
    EXPECT_FALSE(sure[2]);
    EXPECT_TRUE(sure[3]);
}
