// Ablation A2: non-preemptive (paper) vs preemptive repair scheduling.
// The paper's conclusion singles out NON-preemptive priority scheduling;
// this ablation quantifies what preemption would change: availability is
// nearly unaffected (work conservation), but recovery trajectories differ —
// under preemptive FRF the long sand-filter repair is interrupted by every
// pump failure, delaying full recovery.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"

namespace core = arcade::core;
namespace wt = arcade::watertree;

namespace {

bench::ModelPtr compile_variant(const char* policy_name, bool preemptive) {
    auto strat = bench::strategy(policy_name);
    strat.preemptive = preemptive;
    strat.name += preemptive ? "-pre" : "";
    return bench::compile_lumped(wt::line2(strat));
}

}  // namespace

int main() {
    std::cout << "=== Ablation: non-preemptive (paper) vs preemptive scheduling ===\n\n";
    arcade::Table table({"Strategy", "Avail (non-pre)", "Avail (preempt)",
                         "Surv@10h X4 (non-pre)", "Surv@10h X4 (preempt)"});
    const auto disaster = wt::disaster2();
    char buf[64];
    for (const auto* name : {"FRF-1", "FRF-2", "FFF-1", "FFF-2"}) {
        const auto np = compile_variant(name, false);
        const auto pre = compile_variant(name, true);
        std::vector<std::string> cells;
        cells.emplace_back(name);
        std::snprintf(buf, sizeof buf, "%.7f", core::availability(bench::session(), np));
        cells.emplace_back(buf);
        std::snprintf(buf, sizeof buf, "%.7f", core::availability(bench::session(), pre));
        cells.emplace_back(buf);
        std::snprintf(buf, sizeof buf, "%.5f", core::survivability(*np, disaster, 1.0, 10.0));
        cells.emplace_back(buf);
        std::snprintf(buf, sizeof buf, "%.5f", core::survivability(*pre, disaster, 1.0, 10.0));
        cells.emplace_back(buf);
        table.add_row(std::move(cells));
    }
    table.print(std::cout);
    std::cout << "\n(state spaces also differ: preemption needs no tracked in-repair\n"
                 " slot, so the individual encoding shrinks from 8129 states to "
              << [] {
                     auto strat = bench::strategy("FRF-1");
                     strat.preemptive = true;
                     return bench::compile_individual(wt::line2(strat))->state_count();
                 }()
              << ")\n";
    return 0;
}
