// Ablation A2: non-preemptive (paper) vs preemptive repair scheduling,
// expressed as a declarative sweep over the "-pre" strategy variants
// (sweep::studies).  The paper's conclusion singles out NON-preemptive
// priority scheduling; this ablation quantifies what preemption would
// change: availability is nearly unaffected (work conservation), but
// recovery trajectories differ — under preemptive FRF the long sand-filter
// repair is interrupted by every pump failure, delaying full recovery.
// Rendered rows are byte-identical to the pre-migration hand-rolled loop
// (asserted by test_sweep_golden).
#include <iostream>

#include "bench_common.hpp"
#include "sweep/sweep.hpp"

namespace sweep = arcade::sweep;

int main() {
    sweep::SweepRunner runner(bench::session());
    const auto report = runner.run(sweep::studies::ablation_preemption());
    const auto sizes = runner.run(sweep::studies::ablation_preemption_sizes());
    sweep::studies::render_ablation_preemption(report, sizes, std::cout);
    return 0;
}
