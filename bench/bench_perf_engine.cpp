// Engine micro-benchmarks (google-benchmark): the numerical kernels behind
// every experiment — state-space construction, sparse matvec, Fox–Glynn,
// transient uniformisation, steady-state Gauss–Seidel, bounded until.
#include <benchmark/benchmark.h>

#include "arcade/compiler.hpp"
#include "arcade/measures.hpp"
#include "ctmc/bounded_until.hpp"
#include "ctmc/steady_state.hpp"
#include "ctmc/transient.hpp"
#include "numeric/fox_glynn.hpp"
#include "watertree/watertree.hpp"

namespace core = arcade::core;
namespace wt = arcade::watertree;

namespace {

const wt::Strategy& strategy(const char* name) {
    static const auto all = wt::paper_strategies();
    for (const auto& s : all) {
        if (s.name == name) return s;
    }
    std::abort();
}

const core::CompiledModel& line2_frf1() {
    static const auto model = core::compile(wt::line2(strategy("FRF-1")));
    return model;
}

const core::CompiledModel& line2_frf1_lumped() {
    static const auto model = [] {
        core::CompileOptions options;
        options.encoding = core::Encoding::Lumped;
        return core::compile(wt::line2(strategy("FRF-1")), options);
    }();
    return model;
}

void BM_StateSpaceLine2Individual(benchmark::State& state) {
    const auto model = wt::line2(strategy("FRF-1"));
    for (auto _ : state) {
        benchmark::DoNotOptimize(core::compile(model).state_count());
    }
}
BENCHMARK(BM_StateSpaceLine2Individual)->Unit(benchmark::kMillisecond);

void BM_StateSpaceLine1Individual(benchmark::State& state) {
    const auto model = wt::line1(strategy("FRF-1"));
    for (auto _ : state) {
        benchmark::DoNotOptimize(core::compile(model).state_count());
    }
}
BENCHMARK(BM_StateSpaceLine1Individual)->Unit(benchmark::kMillisecond);

void BM_FoxGlynn(benchmark::State& state) {
    const double q = static_cast<double>(state.range(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(arcade::numeric::fox_glynn(q, 1e-12).weights.size());
    }
}
BENCHMARK(BM_FoxGlynn)->Arg(10)->Arg(100)->Arg(1000);

void BM_SparseMatvec(benchmark::State& state) {
    const auto& model = line2_frf1();
    std::vector<double> x(model.state_count(), 1.0 / model.state_count());
    std::vector<double> y(model.state_count(), 0.0);
    for (auto _ : state) {
        model.chain().rates().multiply_left(x, y);
        benchmark::DoNotOptimize(y.data());
    }
}
BENCHMARK(BM_SparseMatvec);

void BM_TransientLine2(benchmark::State& state) {
    const auto& model = line2_frf1();
    const auto init = model.chain().initial_distribution();
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            arcade::ctmc::transient_distribution(model.chain(), init, 10.0).front());
    }
}
BENCHMARK(BM_TransientLine2)->Unit(benchmark::kMillisecond);

void BM_SteadyStateLine2(benchmark::State& state) {
    const auto& model = line2_frf1();
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            arcade::ctmc::steady_state_probability(model.chain(), model.operational_states()));
    }
}
BENCHMARK(BM_SteadyStateLine2)->Unit(benchmark::kMillisecond);

void BM_SurvivabilityCurveLumped(benchmark::State& state) {
    const auto& model = line2_frf1_lumped();
    const auto disaster = wt::disaster2();
    const std::vector<double> times{0.0, 25.0, 50.0, 75.0, 100.0};
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            core::survivability_series(model, disaster, 1.0 / 3.0, times).back());
    }
}
BENCHMARK(BM_SurvivabilityCurveLumped)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
