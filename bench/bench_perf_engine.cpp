// Engine micro-benchmarks (google-benchmark): the numerical kernels behind
// every experiment — state-space construction on the packed store (serial
// and sharded-parallel), session cache behaviour, sparse matvec, Fox–Glynn,
// transient uniformisation, steady-state Gauss–Seidel, bounded until.
//
// Reports states/sec for construction and cache-hit counters for the
// session benchmarks.  Unless --benchmark_out is given, results are merged
// into BENCH_engine.json (the perf trajectory file): same-(bench, build,
// commit) rows are replaced in place, other rows are preserved — see
// bench_json.hpp.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <tuple>
#include <unordered_map>
#include <string>
#include <vector>

#include "analysis/lint.hpp"
#include "arcade/compiler.hpp"
#include "arcade/measures.hpp"
#include "arcade/modules_compiler.hpp"
#include "bench_common.hpp"
#include "bench_json.hpp"
#include "ctmc/bounded_until.hpp"
#include "ctmc/quotient.hpp"
#include "ctmc/steady_state.hpp"
#include "ctmc/transient.hpp"
#include "engine/explore.hpp"
#include "engine/session.hpp"
#include "numeric/fox_glynn.hpp"
#include "watertree/watertree.hpp"

namespace core = arcade::core;
namespace engine = arcade::engine;
namespace wt = arcade::watertree;

namespace {

const core::CompiledModel& line2_frf1() {
    static const auto model = core::compile(wt::line2(wt::strategy("FRF-1")));
    return model;
}

const core::CompiledModel& line2_frf1_lumped() {
    static const auto model = [] {
        core::CompileOptions options;
        options.encoding = core::Encoding::Lumped;
        return core::compile(wt::line2(wt::strategy("FRF-1")), options);
    }();
    return model;
}

void report_construction(benchmark::State& state, const core::CompiledModel& model) {
    state.counters["states"] = static_cast<double>(model.state_count());
    state.counters["states/s"] =
        benchmark::Counter(static_cast<double>(model.state_count()),
                           benchmark::Counter::kIsIterationInvariantRate);
    state.counters["store_bytes"] = static_cast<double>(model.state_store().memory_bytes());
}

void BM_StateSpaceLine2Individual(benchmark::State& state) {
    bench::stamp_build_type(state);
    const auto model = wt::line2(wt::strategy("FRF-1"));
    core::CompileOptions options;
    options.threads = static_cast<unsigned>(state.range(0));
    const auto compiled = core::compile(model, options);  // counters only, untimed
    for (auto _ : state) {
        benchmark::DoNotOptimize(core::compile(model, options).state_count());
    }
    report_construction(state, compiled);
}
BENCHMARK(BM_StateSpaceLine2Individual)
    ->Arg(1)
    ->Arg(2)
    ->ArgName("threads")
    ->Unit(benchmark::kMillisecond);

void BM_StateSpaceLine1Individual(benchmark::State& state) {
    bench::stamp_build_type(state);
    const auto model = wt::line1(wt::strategy("FRF-1"));
    core::CompileOptions options;
    options.threads = static_cast<unsigned>(state.range(0));
    const auto compiled = core::compile(model, options);  // counters only, untimed
    for (auto _ : state) {
        benchmark::DoNotOptimize(core::compile(model, options).state_count());
    }
    report_construction(state, compiled);
}
BENCHMARK(BM_StateSpaceLine1Individual)
    ->Arg(1)
    ->Arg(2)
    ->ArgName("threads")
    ->Unit(benchmark::kMillisecond);

void BM_StateSpaceLine1Lumped(benchmark::State& state) {
    bench::stamp_build_type(state);
    const auto model = wt::line1(wt::strategy("FRF-1"));
    core::CompileOptions options;
    options.encoding = core::Encoding::Lumped;
    const auto compiled = core::compile(model, options);  // counters only, untimed
    for (auto _ : state) {
        benchmark::DoNotOptimize(core::compile(model, options).state_count());
    }
    report_construction(state, compiled);
}
BENCHMARK(BM_StateSpaceLine1Lumped)->Unit(benchmark::kMillisecond);

/// The compile pipeline's lint stage in isolation (reactive-modules
/// translation + linter), with its cost relative to a full compile of the
/// same model.  The stage is budgeted at < 5% of compile time on the
/// paper's large model (line 1); the smaller line 2 compiles in a few
/// milliseconds, so its fraction is noisier.
void BM_LintStage(benchmark::State& state) {
    bench::stamp_build_type(state);
    const auto model = state.range(0) == 1 ? wt::line1(wt::strategy("FRF-1"))
                                           : wt::line2(wt::strategy("FRF-1"));
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            arcade::analysis::lint(core::to_reactive_modules(model)).clean());
    }
    const auto lint_start = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(
        arcade::analysis::lint(core::to_reactive_modules(model)).clean());
    const auto lint_end = std::chrono::steady_clock::now();
    core::CompileOptions options;
    options.lint = arcade::analysis::LintLevel::Off;
    const auto compile_start = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(core::compile(model, options).state_count());
    const auto compile_end = std::chrono::steady_clock::now();
    const double lint_seconds =
        std::chrono::duration<double>(lint_end - lint_start).count();
    const double compile_seconds =
        std::chrono::duration<double>(compile_end - compile_start).count();
    state.counters["lint_seconds"] = lint_seconds;
    state.counters["compile_seconds"] = compile_seconds;
    state.counters["lint_fraction"] = lint_seconds / compile_seconds;
}
BENCHMARK(BM_LintStage)->Arg(1)->Arg(2)->ArgName("line")->Unit(benchmark::kMicrosecond);

/// Cold session: every iteration compiles for real (cache miss).
void BM_SessionCompileCold(benchmark::State& state) {
    bench::stamp_build_type(state);
    const auto model = wt::line2(wt::strategy("FRF-1"));
    for (auto _ : state) {
        engine::AnalysisSession session;
        benchmark::DoNotOptimize(session.compile(model)->state_count());
    }
    state.SetLabel("miss per iteration");
}
BENCHMARK(BM_SessionCompileCold)->Unit(benchmark::kMillisecond);

/// Warm session: iterations after the first return the cached instance —
/// this is the repeated-scenario path the figure benches take.
void BM_SessionCompileCached(benchmark::State& state) {
    bench::stamp_build_type(state);
    engine::AnalysisSession session;
    const auto model = wt::line2(wt::strategy("FRF-1"));
    benchmark::DoNotOptimize(session.compile(model)->state_count());
    for (auto _ : state) {
        benchmark::DoNotOptimize(session.compile(model)->state_count());
    }
    const auto stats = session.stats();
    state.counters["cache_hits"] = static_cast<double>(stats.compile_hits);
    state.counters["cache_misses"] = static_cast<double>(stats.compile_misses);
    state.counters["hits/s"] = benchmark::Counter(
        static_cast<double>(stats.compile_hits), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SessionCompileCached);

/// Partition refinement itself: the cost of auto-lumping the paper's
/// individual encoding, with the achieved reduction as counters.
void BM_StateSpaceQuotientLine2Individual(benchmark::State& state) {
    bench::stamp_build_type(state);
    const auto& model = line2_frf1();
    const auto signature = model.lump_signature();
    std::size_t blocks = 0;
    for (auto _ : state) {
        const arcade::ctmc::QuotientCtmc quotient(model.chain(), signature);
        blocks = quotient.block_count();
        benchmark::DoNotOptimize(blocks);
    }
    state.counters["states"] = static_cast<double>(model.state_count());
    state.counters["blocks"] = static_cast<double>(blocks);
    state.counters["reduction_ratio"] =
        static_cast<double>(model.state_count()) / static_cast<double>(blocks);
}
BENCHMARK(BM_StateSpaceQuotientLine2Individual)->Unit(benchmark::kMillisecond);

/// Session-cached quotient: the repeated-scenario path under
/// ReductionPolicy::Auto — every request after the first is a lump hit.
void BM_SessionQuotientCached(benchmark::State& state) {
    bench::stamp_build_type(state);
    engine::AnalysisSession session;
    core::CompileOptions options;
    options.reduction = core::ReductionPolicy::Auto;
    const auto model = session.compile(wt::line2(wt::strategy("FRF-1")), options);
    benchmark::DoNotOptimize(session.quotient(model)->block_count());
    for (auto _ : state) {
        benchmark::DoNotOptimize(session.quotient(model)->block_count());
    }
    const auto stats = session.stats();
    state.counters["lump_hits"] = static_cast<double>(stats.lump_hits);
    state.counters["lump_misses"] = static_cast<double>(stats.lump_misses);
    state.counters["lump_states_in"] = static_cast<double>(stats.lump_states_in);
    state.counters["lump_states_out"] = static_cast<double>(stats.lump_states_out);
    state.counters["reduction_ratio"] = stats.reduction_ratio();
}
BENCHMARK(BM_SessionQuotientCached);

/// Cached steady-state: availability + long-run cost off one solve.
void BM_SessionSteadyStateCached(benchmark::State& state) {
    bench::stamp_build_type(state);
    engine::AnalysisSession session;
    core::CompileOptions lumped;
    lumped.encoding = core::Encoding::Lumped;
    const auto model = session.compile(wt::line2(wt::strategy("FRF-1")), lumped);
    benchmark::DoNotOptimize(session.availability(model));
    for (auto _ : state) {
        benchmark::DoNotOptimize(session.availability(model));
        benchmark::DoNotOptimize(session.steady_state_cost(model));
    }
    const auto stats = session.stats();
    state.counters["steady_hits"] = static_cast<double>(stats.steady_state_hits);
    state.counters["steady_solves"] = static_cast<double>(stats.steady_state_misses);
}
BENCHMARK(BM_SessionSteadyStateCached);

// ---------------------------------------------------------------------------
// Packed store vs the seed's vector-keyed interning, on an identical
// synthetic workload (6-D torus walk, 7^6 = 117649 states): isolates the
// state-storage data structure from model-specific successor costs.
// ---------------------------------------------------------------------------

constexpr std::int64_t kTorusDims = 6;
constexpr std::int64_t kTorusSide = 7;

template <typename Emit>
void torus_successors(std::span<const std::int64_t> s, std::vector<std::int64_t>& buf,
                      Emit&& emit) {
    for (std::int64_t d = 0; d < kTorusDims; ++d) {
        if (s[d] + 1 < kTorusSide) {
            buf.assign(s.begin(), s.end());
            ++buf[d];
            emit(std::span<const std::int64_t>(buf), 1.0);
        }
        if (s[d] > 0) {
            buf.assign(s.begin(), s.end());
            --buf[d];
            emit(std::span<const std::int64_t>(buf), 0.5);
        }
    }
}

void BM_ExploreTorusPackedStore(benchmark::State& state) {
    bench::stamp_build_type(state);
    const engine::StateLayout layout(
        std::vector<engine::FieldSpec>(kTorusDims, {0, kTorusSide - 1}));
    const std::vector<std::int64_t> initial(kTorusDims, 0);
    std::size_t states = 0;
    for (auto _ : state) {
        auto result = engine::explore_bfs(
            layout, initial,
            [] {
                return [buf = std::vector<std::int64_t>()](
                           std::span<const std::int64_t> s, auto&& emit) mutable {
                    torus_successors(s, buf, emit);
                };
            },
            engine::EngineOptions{.max_states = 1'000'000, .threads = 1});
        states = result.store.size();
        benchmark::DoNotOptimize(states);
    }
    state.counters["states"] = static_cast<double>(states);
    state.counters["states/s"] = benchmark::Counter(
        static_cast<double>(states), benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_ExploreTorusPackedStore)->Unit(benchmark::kMillisecond);

/// The seed's storage scheme: std::unordered_map over heap-allocated
/// std::vector valuations (FNV-1a), vector-of-vectors state list.
void BM_ExploreTorusVectorMap(benchmark::State& state) {
    bench::stamp_build_type(state);
    struct VecHash {
        std::size_t operator()(const std::vector<std::int64_t>& s) const noexcept {
            std::size_t h = 1469598103934665603ull;
            for (std::int64_t v : s) {
                h ^= static_cast<std::size_t>(v) + 0x9e3779b97f4a7c15ull;
                h *= 1099511628211ull;
            }
            return h;
        }
    };
    const std::vector<std::int64_t> initial(kTorusDims, 0);
    std::size_t states_count = 0;
    for (auto _ : state) {
        std::unordered_map<std::vector<std::int64_t>, std::size_t, VecHash> index;
        std::vector<std::vector<std::int64_t>> states;
        std::vector<std::tuple<std::size_t, std::size_t, double>> transitions;
        index.emplace(initial, 0);
        states.push_back(initial);
        std::vector<std::int64_t> buf;
        for (std::size_t si = 0; si < states.size(); ++si) {
            const std::vector<std::int64_t> current = states[si];
            torus_successors(current, buf,
                             [&](std::span<const std::int64_t> target, double rate) {
                                 std::vector<std::int64_t> key(target.begin(), target.end());
                                 const auto [it, inserted] =
                                     index.emplace(std::move(key), states.size());
                                 if (inserted) states.push_back(it->first);
                                 transitions.emplace_back(si, it->second, rate);
                             });
        }
        states_count = states.size();
        benchmark::DoNotOptimize(states_count);
        benchmark::DoNotOptimize(transitions.data());
    }
    state.counters["states"] = static_cast<double>(states_count);
    state.counters["states/s"] = benchmark::Counter(
        static_cast<double>(states_count), benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_ExploreTorusVectorMap)->Unit(benchmark::kMillisecond);

void BM_FoxGlynn(benchmark::State& state) {
    bench::stamp_build_type(state);
    const double q = static_cast<double>(state.range(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(arcade::numeric::fox_glynn(q, 1e-12).weights.size());
    }
}
BENCHMARK(BM_FoxGlynn)->Arg(10)->Arg(100)->Arg(1000);

void BM_SparseMatvec(benchmark::State& state) {
    bench::stamp_build_type(state);
    const auto& model = line2_frf1();
    std::vector<double> x(model.state_count(), 1.0 / model.state_count());
    std::vector<double> y(model.state_count(), 0.0);
    for (auto _ : state) {
        model.chain().rates().multiply_left(x, y);
        benchmark::DoNotOptimize(y.data());
    }
}
BENCHMARK(BM_SparseMatvec);

void BM_TransientLine2(benchmark::State& state) {
    bench::stamp_build_type(state);
    const auto& model = line2_frf1();
    const auto init = model.chain().initial_distribution();
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            arcade::ctmc::transient_distribution(model.chain(), init, 10.0).front());
    }
}
BENCHMARK(BM_TransientLine2)->Unit(benchmark::kMillisecond);

/// Same transient solve, but scratch vectors come from a workspace pool.
void BM_TransientLine2Pooled(benchmark::State& state) {
    bench::stamp_build_type(state);
    const auto& model = line2_frf1();
    const auto init = model.chain().initial_distribution();
    engine::WorkspacePool pool;
    arcade::ctmc::TransientOptions options;
    options.workspace = &pool;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            arcade::ctmc::transient_distribution(model.chain(), init, 10.0, options)
                .front());
    }
    state.counters["scratch_reuses"] = static_cast<double>(pool.reuse_count());
}
BENCHMARK(BM_TransientLine2Pooled)->Unit(benchmark::kMillisecond);

void BM_SteadyStateLine2(benchmark::State& state) {
    bench::stamp_build_type(state);
    const auto& model = line2_frf1();
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            arcade::ctmc::steady_state_probability(model.chain(), model.operational_states()));
    }
}
BENCHMARK(BM_SteadyStateLine2)->Unit(benchmark::kMillisecond);

void BM_SurvivabilityCurveLumped(benchmark::State& state) {
    bench::stamp_build_type(state);
    const auto& model = line2_frf1_lumped();
    const auto disaster = wt::disaster2();
    const std::vector<double> times{0.0, 25.0, 50.0, 75.0, 100.0};
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            core::survivability_series(model, disaster, 1.0 / 3.0, times).back());
    }
}
BENCHMARK(BM_SurvivabilityCurveLumped)->Unit(benchmark::kMillisecond);

}  // namespace

// Custom main: unless --benchmark_out is given, results land in a temp JSON
// whose rows are merged into BENCH_engine.json, so every run contributes a
// machine-readable point to the perf trajectory without duplicating (or,
// as the old overwrite did, erasing) other harnesses' rows.
int main(int argc, char** argv) {
    bench::warn_if_not_release();
    bool has_out = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--benchmark_out=", 16) == 0 ||
            std::strcmp(argv[i], "--benchmark_out") == 0) {
            has_out = true;
        }
    }
    static char out_flag[] = "--benchmark_out=BENCH_perf.tmp.json";
    static char fmt_flag[] = "--benchmark_out_format=json";
    std::vector<char*> args(argv, argv + argc);
    if (!has_out) {
        args.push_back(out_flag);
        args.push_back(fmt_flag);
    }
    int args_count = static_cast<int>(args.size());
    benchmark::Initialize(&args_count, args.data());
    if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    if (!has_out) {
        if (bench::merge_benchmarks("BENCH_engine.json", "BENCH_perf.tmp.json",
                                    bench::build_type())) {
            std::remove("BENCH_perf.tmp.json");
            std::printf("merged engine rows into BENCH_engine.json\n");
        } else {
            std::printf("left results in BENCH_perf.tmp.json (no merge target)\n");
        }
    }
    return 0;
}
