// Symmetry-reduction benchmarks: compiling the water-treatment lines as
// their symmetry quotients (ARCADE_SYMMETRY=auto semantics forced on) at
// growing component counts.  Each row times the full compile — symmetry
// detection, quotient exploration with per-emission canonicalisation, and
// the orbit-accounting pass — and reports the explored (quotient) state
// count, the exact full-chain count recovered from orbit sizes, and their
// ratio.  At the paper scale the quotients land exactly on Table 1's
// hand-lumped sizes (449 / 257); each extra spare pump multiplies the full
// chain by ~6x while the quotient grows linearly.
//
// Results are MERGED into BENCH_engine.json like the other perf harnesses
// (bench_json.hpp: same-(bench, build, commit) rows replaced in place).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "arcade/compiler.hpp"
#include "bench_common.hpp"
#include "bench_json.hpp"
#include "watertree/watertree.hpp"

namespace core = arcade::core;
namespace wt = arcade::watertree;

namespace {

void run_symmetry_compile(benchmark::State& state, int line, std::size_t extra_pumps) {
    bench::stamp_build_type(state);
    const core::ArcadeModel model =
        wt::line(line, wt::strategy("FRF-1"), {}, extra_pumps);
    core::CompileOptions options;
    options.encoding = core::Encoding::Individual;
    options.symmetry = core::SymmetryPolicy::Auto;
    std::size_t states = 0;
    double full_states = 0.0;
    double ratio = 1.0;
    for (auto _ : state) {
        const core::CompiledModel compiled = core::compile(model, options);
        states = compiled.state_count();
        full_states = compiled.symmetry_full_states();
        ratio = compiled.symmetry_ratio();
        benchmark::DoNotOptimize(states);
    }
    state.counters["states"] = static_cast<double>(states);
    state.counters["full_states"] = full_states;
    state.counters["reduction_ratio"] = ratio;
    // Throughput over the states actually explored: the quotient is the
    // chain the engine builds, so this is the honest states/sec figure.
    state.counters["states/s"] = benchmark::Counter(
        static_cast<double>(states), benchmark::Counter::kIsIterationInvariantRate);
}

void BM_SymmetryQuotientCompile(benchmark::State& state, int line,
                                std::size_t extra_pumps) {
    run_symmetry_compile(state, line, extra_pumps);
}

BENCHMARK_CAPTURE(BM_SymmetryQuotientCompile, l1_paper, 1, 0u)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_SymmetryQuotientCompile, l1_pumps1, 1, 1u)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_SymmetryQuotientCompile, l1_pumps3, 1, 3u)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_SymmetryQuotientCompile, l2_paper, 2, 0u)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_SymmetryQuotientCompile, l2_pumps3, 2, 3u)
    ->Unit(benchmark::kMillisecond);

/// The baseline the quotient replaces: the same compile with symmetry off
/// (paper scale only — scaled full chains are exactly what the study
/// avoids exploring).
void BM_FullChainCompile(benchmark::State& state, int line) {
    bench::stamp_build_type(state);
    const core::ArcadeModel model = wt::line(line, wt::strategy("FRF-1"));
    core::CompileOptions options;
    options.encoding = core::Encoding::Individual;
    options.symmetry = core::SymmetryPolicy::Off;
    std::size_t states = 0;
    for (auto _ : state) {
        const core::CompiledModel compiled = core::compile(model, options);
        states = compiled.state_count();
        benchmark::DoNotOptimize(states);
    }
    state.counters["states"] = static_cast<double>(states);
    state.counters["states/s"] = benchmark::Counter(
        static_cast<double>(states), benchmark::Counter::kIsIterationInvariantRate);
}

BENCHMARK_CAPTURE(BM_FullChainCompile, l1_paper, 1)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_FullChainCompile, l2_paper, 2)->Unit(benchmark::kMillisecond);

}  // namespace

// Custom main: unless --benchmark_out is given, results land in a temp JSON
// whose rows are merged into BENCH_engine.json, so the symmetry rows ride
// the same perf-trajectory file as the engine benchmarks.
int main(int argc, char** argv) {
    bench::warn_if_not_release();
    bool has_out = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--benchmark_out=", 16) == 0 ||
            std::strcmp(argv[i], "--benchmark_out") == 0) {
            has_out = true;
        }
    }
    static char out_flag[] = "--benchmark_out=BENCH_symmetry.tmp.json";
    static char fmt_flag[] = "--benchmark_out_format=json";
    std::vector<char*> args(argv, argv + argc);
    if (!has_out) {
        args.push_back(out_flag);
        args.push_back(fmt_flag);
    }
    int args_count = static_cast<int>(args.size());
    benchmark::Initialize(&args_count, args.data());
    if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    if (!has_out) {
        if (bench::merge_benchmarks("BENCH_engine.json", "BENCH_symmetry.tmp.json",
                                    bench::build_type())) {
            std::remove("BENCH_symmetry.tmp.json");
            std::printf("merged symmetry rows into BENCH_engine.json\n");
        } else {
            std::printf("left results in BENCH_symmetry.tmp.json (no merge target)\n");
        }
    }
    return 0;
}
