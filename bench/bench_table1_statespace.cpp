// Reproduces Table 1: state-space sizes per repair strategy, both lines,
// using the paper's (individual) encoding, with the lumped encoding shown
// for comparison.
//
// Migrated onto the sweep layer: the table is the declarative
// sweep::paper::table1() grid — a ModelVariant axis sweeps the two
// encodings — evaluated by the work-stealing runner; the rendered rows are
// identical to the hand-rolled compile loop this harness used to carry
// (asserted by test_sweep_golden).
#include <iostream>

#include "bench_common.hpp"
#include "sweep/sweep.hpp"

namespace sweep = arcade::sweep;

int main() {
    bench::Stopwatch watch;
    sweep::SweepRunner runner(bench::session());
    const auto report = runner.run(sweep::paper::table1());

    sweep::paper::render_table1(report, std::cout);
    std::cout << "\n# sweep: " << report.results.size() << " scenarios over "
              << report.unique_models << " compiled models\n";
    std::cout << "elapsed: " << watch.seconds() << " s\n";
    return 0;
}
