// Reproduces Table 1: state-space sizes per repair strategy, both lines,
// using the paper's (individual) encoding, with the lumped encoding shown
// for comparison.
#include <iostream>

#include "bench_common.hpp"

namespace core = arcade::core;
namespace wt = arcade::watertree;

int main() {
    std::cout << "=== Table 1: state space for repair strategies ===\n";
    std::cout << "(paper values in parentheses; states must match exactly;\n"
                 " FRF/FFF transition counts are PRISM-encoding artifacts in the\n"
                 " paper — our encoding is policy-independent, see DESIGN.md)\n\n";

    struct PaperRow {
        const char* name;
        std::size_t s1, t1, s2, t2;
    };
    const PaperRow paper[] = {
        {"DED", 2048, 22528, 512, 4606},
        {"FRF-1", 111809, 388478, 8129, 25838},
        {"FRF-2", 111809, 500275, 8129, 33957},
        {"FFF-1", 111809, 367106, 8129, 23354},
        {"FFF-2", 111809, 478903, 8129, 31473},
    };

    arcade::Table table({"Strategy", "L1 states", "L1 trans.", "L2 states", "L2 trans.",
                         "L1 lumped", "L2 lumped"});
    bench::Stopwatch watch;
    for (const auto& row : paper) {
        const auto& strat = bench::strategy(row.name);
        const auto l1 = bench::compile_individual(wt::line1(strat));
        const auto l2 = bench::compile_individual(wt::line2(strat));
        const auto l1_lumped = bench::compile_lumped(wt::line1(strat));
        const auto l2_lumped = bench::compile_lumped(wt::line2(strat));
        table.add_row({row.name,
                       std::to_string(l1->state_count()) + " (" + std::to_string(row.s1) + ")",
                       std::to_string(l1->transition_count()) + " (" + std::to_string(row.t1) +
                           ")",
                       std::to_string(l2->state_count()) + " (" + std::to_string(row.s2) + ")",
                       std::to_string(l2->transition_count()) + " (" + std::to_string(row.t2) +
                           ")",
                       std::to_string(l1_lumped->state_count()),
                       std::to_string(l2_lumped->state_count())});
    }
    table.print(std::cout);
    std::cout << "\nelapsed: " << watch.seconds() << " s\n";
    return 0;
}
