// Batched multi-vector transient evolution vs sequential single-vector
// evolution, on the paper's Line-2 individual encoding (8129 states, the
// chain behind the Disaster-2 figures) over the Figs 4–6 time grid.
//
// Each width-w pair answers the fusion pass's core question: is ONE
// BatchTransientEvolver over a w-column block faster than w independent
// TransientEvolvers walking the same grid?  The batch amortises the CSR
// traversal and every vals[k]/lambda division across the block while
// keeping every column bitwise identical to its sequential twin (asserted
// by test_ctmc / test_linalg), so the speedup here is pure bandwidth —
// no accuracy is traded.  Width 1 measures the batch engine's overhead on
// degenerate blocks (the reason singleton groups are demoted to the solo
// path in sweep::SweepRunner).
//
// Results are MERGED into BENCH_engine.json (the perf trajectory file the
// engine benchmarks write): the run lands in a temp JSON first and its
// benchmark entries replace same-(bench, build, commit) rows in place —
// see bench_json.hpp.  --benchmark_out overrides as usual.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <vector>

#include "bench_common.hpp"
#include "bench_json.hpp"
#include "ctmc/transient.hpp"
#include "ctmc/transient_batch.hpp"
#include "support/series.hpp"
#include "watertree/watertree.hpp"

namespace core = arcade::core;
namespace ctmc = arcade::ctmc;
namespace wt = arcade::watertree;

namespace {

const bench::ModelPtr& line2_frf1() {
    static const bench::ModelPtr model =
        bench::compile_individual(wt::line2(wt::strategy("FRF-1")));
    return model;
}

/// The Figs 4–6 grid: {0, 0.05, ..., 4.5}.
const std::vector<double>& grid() {
    static const std::vector<double> times = arcade::time_grid(4.5, 91);
    return times;
}

/// Evolved state-points per iteration: states × columns × grid steps, the
/// common work unit of both harness halves (reported as col_states/s).
double work(std::size_t states, std::size_t width) {
    return static_cast<double>(states) * static_cast<double>(width) *
           static_cast<double>(grid().size());
}

void BM_TransientSequential(benchmark::State& state, std::size_t width) {
    bench::stamp_build_type(state);
    const auto& model = line2_frf1();
    const auto initial = model->disaster_distribution(wt::disaster2());
    double sink = 0.0;
    for (auto _ : state) {
        for (std::size_t c = 0; c < width; ++c) {
            ctmc::TransientEvolver evolver(model->chain(), initial, bench::transient());
            for (const double t : grid()) evolver.advance_to(t);
            sink += evolver.distribution()[0];
        }
        benchmark::DoNotOptimize(sink);
    }
    state.counters["states"] = static_cast<double>(model->state_count());
    state.counters["width"] = static_cast<double>(width);
    state.counters["col_states/s"] = benchmark::Counter(
        work(model->state_count(), width), benchmark::Counter::kIsIterationInvariantRate);
}

void BM_TransientBatched(benchmark::State& state, std::size_t width) {
    bench::stamp_build_type(state);
    const auto& model = line2_frf1();
    const std::vector<std::vector<double>> columns(
        width, model->disaster_distribution(wt::disaster2()));
    double sink = 0.0;
    for (auto _ : state) {
        ctmc::BatchTransientEvolver evolver(model->chain(), columns, bench::transient());
        for (const double t : grid()) evolver.advance_to(t);
        sink += evolver.block()[0];
        benchmark::DoNotOptimize(sink);
    }
    state.counters["states"] = static_cast<double>(model->state_count());
    state.counters["width"] = static_cast<double>(width);
    state.counters["col_states/s"] = benchmark::Counter(
        work(model->state_count(), width), benchmark::Counter::kIsIterationInvariantRate);
}

BENCHMARK_CAPTURE(BM_TransientSequential, l2_w1, 1)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_TransientBatched, l2_w1, 1)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_TransientSequential, l2_w2, 2)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_TransientBatched, l2_w2, 2)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_TransientSequential, l2_w4, 4)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_TransientBatched, l2_w4, 4)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_TransientSequential, l2_w8, 8)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_TransientBatched, l2_w8, 8)->Unit(benchmark::kMillisecond);

}  // namespace

// Custom main: unless --benchmark_out is given, results land in a temp JSON
// whose benchmark entries are merged into BENCH_engine.json, so the batch
// rows ride the same perf-trajectory file as the engine benchmarks.
int main(int argc, char** argv) {
    bench::warn_if_not_release();
    bool has_out = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--benchmark_out=", 16) == 0 ||
            std::strcmp(argv[i], "--benchmark_out") == 0) {
            has_out = true;
        }
    }
    static char out_flag[] = "--benchmark_out=BENCH_batch.tmp.json";
    static char fmt_flag[] = "--benchmark_out_format=json";
    std::vector<char*> args(argv, argv + argc);
    if (!has_out) {
        args.push_back(out_flag);
        args.push_back(fmt_flag);
    }
    int args_count = static_cast<int>(args.size());
    benchmark::Initialize(&args_count, args.data());
    if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    if (!has_out) {
        if (bench::merge_benchmarks("BENCH_engine.json", "BENCH_batch.tmp.json",
                                    bench::build_type())) {
            std::remove("BENCH_batch.tmp.json");
            std::printf("merged batch rows into BENCH_engine.json\n");
        } else {
            std::printf("left results in BENCH_batch.tmp.json (no merge target)\n");
        }
    }
    return 0;
}
