// Ablation A1: individual (paper) encoding vs lumped (symmetry-reduced)
// encoding — state-space sizes and measure agreement, expressed as one
// declarative sweep over the ModelVariant axis (sweep::studies).  The
// rendered rows are byte-identical to the pre-migration hand-rolled loop
// (asserted by test_sweep_golden).
#include <iostream>

#include "bench_common.hpp"
#include "sweep/sweep.hpp"

namespace sweep = arcade::sweep;

int main() {
    sweep::SweepRunner runner(bench::session());
    const auto report = runner.run(sweep::studies::ablation_encodings());
    sweep::studies::render_ablation_encodings(report, std::cout);
    return 0;
}
