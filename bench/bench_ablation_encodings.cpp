// Ablation A1: individual (paper) encoding vs lumped (symmetry-reduced)
// encoding — state-space sizes, build times, and measure agreement.
// Motivates the minimisation the paper's conclusion calls for.
#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"

namespace core = arcade::core;
namespace wt = arcade::watertree;

int main() {
    std::cout << "=== Ablation: individual vs lumped encoding ===\n\n";
    arcade::Table table({"Model", "Indiv. states", "Lumped states", "Reduction",
                         "Indiv. avail", "Lumped avail", "|diff|"});
    char buf[64];
    for (const auto* line : {"line1", "line2"}) {
        for (const auto* name : {"DED", "FRF-1", "FRF-2", "FFF-1", "FFF-2"}) {
            const auto model = std::string(line) == "line1"
                                   ? wt::line1(bench::strategy(name))
                                   : wt::line2(bench::strategy(name));
            const auto individual = bench::compile_individual(model);
            const auto lumped = bench::compile_lumped(model);
            const double ai = core::availability(bench::session(), individual);
            const double al = core::availability(bench::session(), lumped);
            std::vector<std::string> cells;
            cells.emplace_back(std::string(line) + " " + name);
            cells.emplace_back(std::to_string(individual->state_count()));
            cells.emplace_back(std::to_string(lumped->state_count()));
            std::snprintf(buf, sizeof buf, "%.1fx",
                          static_cast<double>(individual->state_count()) /
                              static_cast<double>(lumped->state_count()));
            cells.emplace_back(buf);
            std::snprintf(buf, sizeof buf, "%.7f", ai);
            cells.emplace_back(buf);
            std::snprintf(buf, sizeof buf, "%.7f", al);
            cells.emplace_back(buf);
            std::snprintf(buf, sizeof buf, "%.1e", std::abs(ai - al));
            cells.emplace_back(buf);
            table.add_row(std::move(cells));
        }
    }
    table.print(std::cout);
    std::cout << "\n(measures agree to solver precision; the lumped encoding is the\n"
                 " 'drastic reduction' the paper's conclusion anticipates)\n";
    return 0;
}
