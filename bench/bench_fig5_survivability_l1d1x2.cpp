// Reproduces Figure 5: survivability of Line 1 after Disaster 1, recovery
// to service interval X2 (service >= 2/3).  Paper shape: as Figure 4 but
// slower (two pump repairs needed instead of one).
//
// Migrated onto the sweep layer: the figure is the declarative
// sweep::paper::fig5() grid evaluated by the work-stealing runner — the
// result rows are identical to the hand-rolled strategy loop this harness
// used to carry (asserted by test_sweep_golden).
#include <iostream>

#include "bench_common.hpp"
#include "sweep/sweep.hpp"

namespace sweep = arcade::sweep;

int main() {
    bench::Stopwatch watch;
    sweep::SweepRunner runner(bench::session());
    const auto report = runner.run(sweep::paper::fig5());

    sweep::paper::render_fig5(report, std::cout);
    bench::print_session_stats(std::cout);
    std::cout << "# sweep: " << report.results.size() << " scenarios, cache hit rate "
              << report.cache_hit_rate() << ", " << report.states_per_second()
              << " states/sec\n";
    std::cout << "# elapsed: " << watch.seconds() << " s\n";
    return 0;
}
