// Reproduces Figure 5: survivability of Line 1 after Disaster 1, recovery
// to service interval X2 (service >= 2/3).  Paper shape: as Figure 4 but
// slower (two pump repairs needed instead of one).
#include <iostream>

#include "bench_common.hpp"

namespace core = arcade::core;
namespace wt = arcade::watertree;

int main() {
    const auto times = arcade::time_grid(4.5, 91);
    const double x2 = 2.0 / 3.0;

    bench::Stopwatch watch;
    arcade::Figure fig("Figure 5: survivability Line 1, Disaster 1, X2 (service >= 2/3)",
                       "t in hours", "Probability (S)");
    fig.set_times(times);
    for (const auto* name : {"DED", "FRF-1", "FRF-2"}) {
        const auto model = wt::compile_line(bench::session(), 1, bench::strategy(name),
                                            core::Encoding::Lumped);
        const auto disaster = wt::disaster1(model->model());
        fig.add_series(name, core::survivability_series(*model, disaster, x2, times, bench::transient()));
    }
    fig.print(std::cout);
    bench::print_session_stats(std::cout);
    std::cout << "# elapsed: " << watch.seconds() << " s\n";
    return 0;
}
