// Partition-refinement micro-benchmarks: the round-based reference vs the
// splitter-queue (Valmari–Franceschinis) rewrite, on the paper's line-2
// individual encodings (the models behind the Disaster-2 figures; FRF/FFF
// explore 8129 states, DED 512).  Both algorithms start from the model's
// full measure signature and return identical partitions (asserted by
// test_lumping); this harness quantifies the work gap — states/sec,
// refinement passes, final (= peak, counts only grow) block count, and
// edges scanned.
//
// Results are MERGED into BENCH_engine.json (the perf trajectory file the
// engine benchmarks write): the run lands in a temp JSON first and its
// benchmark entries replace same-(bench, build, commit) rows in place —
// see bench_json.hpp.  --benchmark_out overrides as usual.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "arcade/compiler.hpp"
#include "bench_common.hpp"
#include "bench_json.hpp"
#include "graph/lumping.hpp"
#include "watertree/watertree.hpp"

namespace core = arcade::core;
namespace graph = arcade::graph;
namespace wt = arcade::watertree;

namespace {

const core::CompiledModel& line2(const std::string& strategy) {
    static std::map<std::string, core::CompiledModel> cache;
    const auto it = cache.find(strategy);
    if (it != cache.end()) return it->second;
    return cache.emplace(strategy, core::compile(wt::line2(wt::strategy(strategy))))
        .first->second;
}

/// The model's measure-signature partition (what QuotientCtmc seeds the
/// refinement with): states grouped by exact label bits and value rows.
std::vector<std::size_t> signature_partition(const core::CompiledModel& model) {
    const auto signature = model.lump_signature();
    std::map<std::vector<std::uint64_t>, std::size_t> ids;
    std::vector<std::size_t> initial(model.state_count());
    for (std::size_t s = 0; s < model.state_count(); ++s) {
        std::vector<std::uint64_t> key;
        for (const auto& label : signature.labels) {
            key.push_back(model.chain().label(label)[s] ? 1 : 0);
        }
        for (const auto& row : signature.values) {
            key.push_back(graph::double_bits(row[s]));
        }
        initial[s] = ids.emplace(std::move(key), ids.size()).first->second;
    }
    return initial;
}

void run_lumping(benchmark::State& state, const char* strategy,
                 graph::LumpingAlgorithm algorithm) {
    bench::stamp_build_type(state);
    const auto& model = line2(strategy);
    const auto initial = signature_partition(model);
    graph::LumpingStats stats;
    std::size_t blocks = 0;
    for (auto _ : state) {
        stats = graph::LumpingStats{};
        const auto partition =
            graph::coarsest_lumping(model.chain().rates(), initial, algorithm, &stats);
        blocks = partition.count;
        benchmark::DoNotOptimize(blocks);
    }
    state.counters["states"] = static_cast<double>(model.state_count());
    state.counters["blocks"] = static_cast<double>(blocks);  // final == peak
    state.counters["passes"] = static_cast<double>(stats.passes);
    state.counters["edges_scanned"] = static_cast<double>(stats.edges_scanned);
    state.counters["states/s"] =
        benchmark::Counter(static_cast<double>(model.state_count()),
                           benchmark::Counter::kIsIterationInvariantRate);
}

void BM_LumpingRounds(benchmark::State& state, const char* strategy) {
    run_lumping(state, strategy, graph::LumpingAlgorithm::Rounds);
}
void BM_LumpingSplitterQueue(benchmark::State& state, const char* strategy) {
    run_lumping(state, strategy, graph::LumpingAlgorithm::SplitterQueue);
}

BENCHMARK_CAPTURE(BM_LumpingRounds, l2_individual_FRF1, "FRF-1")
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_LumpingSplitterQueue, l2_individual_FRF1, "FRF-1")
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_LumpingRounds, l2_individual_FFF2, "FFF-2")
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_LumpingSplitterQueue, l2_individual_FFF2, "FFF-2")
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_LumpingRounds, l2_individual_DED, "DED")
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_LumpingSplitterQueue, l2_individual_DED, "DED")
    ->Unit(benchmark::kMillisecond);

}  // namespace

// Custom main: unless --benchmark_out is given, results land in a temp JSON
// whose benchmark entries are merged into BENCH_engine.json, so the
// lumping rows ride the same perf-trajectory file as the engine benchmarks.
int main(int argc, char** argv) {
    bench::warn_if_not_release();
    bool has_out = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--benchmark_out=", 16) == 0 ||
            std::strcmp(argv[i], "--benchmark_out") == 0) {
            has_out = true;
        }
    }
    static char out_flag[] = "--benchmark_out=BENCH_lumping.tmp.json";
    static char fmt_flag[] = "--benchmark_out_format=json";
    std::vector<char*> args(argv, argv + argc);
    if (!has_out) {
        args.push_back(out_flag);
        args.push_back(fmt_flag);
    }
    int args_count = static_cast<int>(args.size());
    benchmark::Initialize(&args_count, args.data());
    if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    if (!has_out) {
        if (bench::merge_benchmarks("BENCH_engine.json", "BENCH_lumping.tmp.json",
                                    bench::build_type())) {
            std::remove("BENCH_lumping.tmp.json");
            std::printf("merged lumping rows into BENCH_engine.json\n");
        } else {
            std::printf("left results in BENCH_lumping.tmp.json (no merge target)\n");
        }
    }
    return 0;
}
