// Reproduces Figure 11: accumulated cost of Line 2 after Disaster 2 for
// FFF-1 / FFF-2 / FRF-1 / FRF-2 over [0, 50] h.  Paper shape: FFF-1 highest
// (slowest instantaneous-cost convergence); FRF-2 lowest.
#include <iostream>

#include "bench_common.hpp"

namespace core = arcade::core;
namespace wt = arcade::watertree;

int main() {
    const auto times = arcade::time_grid(50.0, 101);

    bench::Stopwatch watch;
    arcade::Figure fig("Figure 11: accumulated cost Line 2, Disaster 2", "t in hours",
                       "Cumulative costs (I)");
    fig.set_times(times);
    const auto disaster = wt::disaster2();
    for (const auto* name : {"FFF-1", "FFF-2", "FRF-1", "FRF-2"}) {
        const auto model = wt::compile_line(bench::session(), 2, bench::strategy(name),
                                            core::Encoding::Lumped);
        fig.add_series(name, core::accumulated_cost_series(*model, disaster, times, bench::transient()));
    }
    fig.print(std::cout);
    bench::print_session_stats(std::cout);
    std::cout << "# elapsed: " << watch.seconds() << " s\n";
    return 0;
}
