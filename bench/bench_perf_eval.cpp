// Evaluation-pipeline micro-benchmarks: the tree interpreter vs the expr
// bytecode VM vs the native-codegen backend (generated C++, dlopen'ed) on
// full state-space exploration (every paper strategy's line-2
// reactive-modules translation, single-threaded so the numbers isolate
// per-state evaluation cost), and the scalar vs blocked vs SIMD CSR kernels
// on the matvec shapes the numeric core runs (distribution propagation,
// backward gather, uniformised step).  All comparisons are between
// bitwise-identical computations — the speedup is pure evaluation
// mechanics, never a numerics change (asserted by test_eval_rewire).
//
// Results are MERGED into BENCH_engine.json via the same temp-JSON merge
// the lumping harness uses (bench_json.hpp: same-(bench, build, commit)
// rows are replaced in place, never duplicated), so the interp-vs-VM and
// scalar-vs-blocked rows ride the perf trajectory file.  --benchmark_out
// overrides as usual.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "arcade/modules_compiler.hpp"
#include "bench_common.hpp"
#include "bench_json.hpp"
#include "expr/codegen.hpp"
#include "expr/vm.hpp"
#include "linalg/kernels.hpp"
#include "modules/explorer.hpp"
#include "watertree/watertree.hpp"

namespace core = arcade::core;
namespace expr = arcade::expr;
namespace linalg = arcade::linalg;
namespace modules = arcade::modules;
namespace wt = arcade::watertree;

namespace {

const modules::ModuleSystem& line2_system(const std::string& strategy) {
    static std::map<std::string, modules::ModuleSystem> cache;
    const auto it = cache.find(strategy);
    if (it != cache.end()) return it->second;
    return cache
        .emplace(strategy, core::to_reactive_modules(wt::line2(wt::strategy(strategy))))
        .first->second;
}

void run_explore(benchmark::State& state, const char* strategy, expr::EvalMode eval) {
    bench::stamp_build_type(state);
    const auto& system = line2_system(strategy);
    modules::ExploreOptions options;
    options.eval = eval;
    options.threads = 1;  // isolate per-state evaluation cost from sharding
    // Untimed warm-up: under codegen this pays the one-time out-of-process
    // unit compile, so the timed loop measures the steady state (content-
    // addressed cache hit + dlopen per explore, native calls per state).
    std::size_t states = modules::explore(system, options).state_count();
    const expr::CodegenCounters cg_before = expr::codegen_counters();
    for (auto _ : state) {
        states = modules::explore(system, options).state_count();
        benchmark::DoNotOptimize(states);
    }
    const expr::CodegenCounters cg_after = expr::codegen_counters();
    state.counters["states"] = static_cast<double>(states);
    state.counters["states/s"] = benchmark::Counter(
        static_cast<double>(states), benchmark::Counter::kIsIterationInvariantRate);
    if (eval == expr::EvalMode::Codegen) {
        // Honesty counter: non-zero fallbacks would mean the "codegen" rows
        // actually measured the VM (no toolchain on the bench machine).
        state.counters["cg_fallbacks"] =
            static_cast<double>(cg_after.fallbacks - cg_before.fallbacks);
    }
}

void BM_ExploreInterp(benchmark::State& state, const char* strategy) {
    run_explore(state, strategy, expr::EvalMode::Interp);
}
void BM_ExploreVm(benchmark::State& state, const char* strategy) {
    run_explore(state, strategy, expr::EvalMode::Vm);
}
void BM_ExploreCodegen(benchmark::State& state, const char* strategy) {
    run_explore(state, strategy, expr::EvalMode::Codegen);
}

BENCHMARK_CAPTURE(BM_ExploreInterp, l2_DED, "DED")->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ExploreVm, l2_DED, "DED")->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ExploreCodegen, l2_DED, "DED")->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ExploreInterp, l2_FRF1, "FRF-1")->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ExploreVm, l2_FRF1, "FRF-1")->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ExploreCodegen, l2_FRF1, "FRF-1")->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ExploreInterp, l2_FRF2, "FRF-2")->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ExploreVm, l2_FRF2, "FRF-2")->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ExploreCodegen, l2_FRF2, "FRF-2")->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ExploreInterp, l2_FFF1, "FFF-1")->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ExploreVm, l2_FFF1, "FFF-1")->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ExploreCodegen, l2_FFF1, "FFF-1")->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ExploreInterp, l2_FFF2, "FFF-2")->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ExploreVm, l2_FFF2, "FFF-2")->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ExploreCodegen, l2_FFF2, "FFF-2")->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Kernel comparison on the explored FRF-1 line-2 chain (8129 states).
// ---------------------------------------------------------------------------

const linalg::CsrMatrix& frf1_rates() {
    static const linalg::CsrMatrix rates = [] {
        return modules::explore(line2_system("FRF-1")).chain.rates();
    }();
    return rates;
}

template <typename Fn>
void run_kernel(benchmark::State& state, linalg::KernelMode mode, Fn&& fn) {
    bench::stamp_build_type(state);
    const linalg::KernelMode before = linalg::kernel_mode();
    linalg::set_kernel_mode(mode);
    const auto& rates = frf1_rates();
    std::vector<double> x(rates.rows(), 1.0 / static_cast<double>(rates.rows()));
    std::vector<double> y(rates.rows(), 0.0);
    for (auto _ : state) {
        fn(rates, x, y);
        benchmark::DoNotOptimize(y.data());
    }
    linalg::set_kernel_mode(before);
    state.counters["nonzeros"] = static_cast<double>(rates.nonzeros());
    state.counters["nnz/s"] = benchmark::Counter(static_cast<double>(rates.nonzeros()),
                                                 benchmark::Counter::kIsIterationInvariantRate);
    // Matvec throughput at 2 flops per stored entry (multiply + accumulate);
    // the uniformised kernels do a little more per entry, so for them this
    // is a comparable lower bound rather than an exact count.
    state.counters["gflops"] =
        benchmark::Counter(2.0e-9 * static_cast<double>(rates.nonzeros()),
                           benchmark::Counter::kIsIterationInvariantRate);
}

void BM_MatvecLeft(benchmark::State& state, linalg::KernelMode mode) {
    run_kernel(state, mode, [](const auto& m, const auto& x, auto& y) {
        linalg::multiply_left(m, x, y);
    });
}
void BM_MatvecRight(benchmark::State& state, linalg::KernelMode mode) {
    run_kernel(state, mode, [](const auto& m, const auto& x, auto& y) {
        linalg::multiply_right(m, x, y);
    });
}
void BM_UniformisedLeft(benchmark::State& state, linalg::KernelMode mode) {
    run_kernel(state, mode, [](const auto& m, const auto& x, auto& y) {
        linalg::uniformised_multiply_left(m, 100.0, x, y);
    });
}
void BM_UniformisedRight(benchmark::State& state, linalg::KernelMode mode) {
    run_kernel(state, mode, [](const auto& m, const auto& x, auto& y) {
        linalg::uniformised_multiply_right(m, 100.0, x, y);
    });
}

BENCHMARK_CAPTURE(BM_MatvecLeft, scalar, linalg::KernelMode::Scalar);
BENCHMARK_CAPTURE(BM_MatvecLeft, blocked, linalg::KernelMode::Blocked);
BENCHMARK_CAPTURE(BM_MatvecLeft, simd, linalg::KernelMode::Simd);
BENCHMARK_CAPTURE(BM_MatvecRight, scalar, linalg::KernelMode::Scalar);
BENCHMARK_CAPTURE(BM_MatvecRight, blocked, linalg::KernelMode::Blocked);
BENCHMARK_CAPTURE(BM_MatvecRight, simd, linalg::KernelMode::Simd);
BENCHMARK_CAPTURE(BM_UniformisedLeft, scalar, linalg::KernelMode::Scalar);
BENCHMARK_CAPTURE(BM_UniformisedLeft, blocked, linalg::KernelMode::Blocked);
BENCHMARK_CAPTURE(BM_UniformisedLeft, simd, linalg::KernelMode::Simd);
BENCHMARK_CAPTURE(BM_UniformisedRight, scalar, linalg::KernelMode::Scalar);
BENCHMARK_CAPTURE(BM_UniformisedRight, blocked, linalg::KernelMode::Blocked);
BENCHMARK_CAPTURE(BM_UniformisedRight, simd, linalg::KernelMode::Simd);

}  // namespace

// Custom main: unless --benchmark_out is given, results land in a temp JSON
// whose benchmark entries are appended into BENCH_engine.json, so the eval
// rows ride the same perf-trajectory file as the engine benchmarks.
int main(int argc, char** argv) {
    bench::warn_if_not_release();
    bool has_out = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--benchmark_out=", 16) == 0 ||
            std::strcmp(argv[i], "--benchmark_out") == 0) {
            has_out = true;
        }
    }
    static char out_flag[] = "--benchmark_out=BENCH_eval.tmp.json";
    static char fmt_flag[] = "--benchmark_out_format=json";
    std::vector<char*> args(argv, argv + argc);
    if (!has_out) {
        args.push_back(out_flag);
        args.push_back(fmt_flag);
    }
    int args_count = static_cast<int>(args.size());
    benchmark::Initialize(&args_count, args.data());
    if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    if (!has_out) {
        if (bench::merge_benchmarks("BENCH_engine.json", "BENCH_eval.tmp.json",
                                    bench::build_type())) {
            std::remove("BENCH_eval.tmp.json");
            std::printf("merged eval rows into BENCH_engine.json\n");
        } else {
            std::printf("left results in BENCH_eval.tmp.json (no merge target)\n");
        }
    }
    return 0;
}
