// Reproduces Figure 4: survivability of Line 1 after Disaster 1 (all four
// pumps fail), recovery to service interval X1 (service >= 1/3), for
// DED / FRF-1 / FRF-2.  Paper shape: DED fastest, FRF-2 faster than FRF-1,
// all reach ~1 by 4.5 h.
#include <iostream>

#include "bench_common.hpp"

namespace core = arcade::core;
namespace wt = arcade::watertree;

int main() {
    const auto times = arcade::time_grid(4.5, 91);
    const double x1 = 1.0 / 3.0;

    bench::Stopwatch watch;
    arcade::Figure fig("Figure 4: survivability Line 1, Disaster 1, X1 (service >= 1/3)",
                       "t in hours", "Probability (S)");
    fig.set_times(times);
    for (const auto* name : {"DED", "FRF-1", "FRF-2"}) {
        const auto model = wt::compile_line(bench::session(), 1, bench::strategy(name),
                                            core::Encoding::Lumped);
        const auto disaster = wt::disaster1(model->model());
        fig.add_series(name, core::survivability_series(*model, disaster, x1, times, bench::transient()));
    }
    fig.print(std::cout);
    bench::print_session_stats(std::cout);
    std::cout << "# elapsed: " << watch.seconds() << " s\n";
    return 0;
}
