// Reproduces Figure 4: survivability of Line 1 after Disaster 1 (all four
// pumps fail), recovery to service interval X1 (service >= 1/3), for
// DED / FRF-1 / FRF-2.  Paper shape: DED fastest, FRF-2 faster than FRF-1,
// all reach ~1 by 4.5 h.
//
// Migrated onto the sweep layer: the figure is the declarative
// sweep::paper::fig4() grid evaluated by the work-stealing runner — the
// result rows are identical to the hand-rolled strategy loop this harness
// used to carry (asserted by test_sweep_golden).
#include <iostream>

#include "bench_common.hpp"
#include "sweep/sweep.hpp"

namespace sweep = arcade::sweep;

int main() {
    bench::Stopwatch watch;
    sweep::SweepRunner runner(bench::session());
    const auto report = runner.run(sweep::paper::fig4());

    sweep::paper::render_fig4(report, std::cout);
    bench::print_session_stats(std::cout);
    std::cout << "# sweep: " << report.results.size() << " scenarios, cache hit rate "
              << report.cache_hit_rate() << ", " << report.states_per_second()
              << " states/sec\n";
    std::cout << "# elapsed: " << watch.seconds() << " s\n";
    return 0;
}
