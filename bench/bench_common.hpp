// Shared helpers for the experiment harnesses (one binary per paper
// table/figure; see DESIGN.md's experiment index).
//
// Every harness funnels its compilations through the process-wide
// engine::AnalysisSession, so a figure looping over the five strategies
// compiles each (line, strategy, encoding) once and the per-harness
// summary line reports the cache effectiveness.
#ifndef ARCADE_BENCH_COMMON_HPP
#define ARCADE_BENCH_COMMON_HPP

#include <chrono>
#include <iostream>
#include <string>

#include "arcade/compiler.hpp"
#include "arcade/measures.hpp"
#include "engine/session.hpp"
#include "support/errors.hpp"
#include "support/series.hpp"
#include "watertree/watertree.hpp"

namespace bench {

using ModelPtr = arcade::engine::AnalysisSession::CompiledPtr;

inline arcade::engine::AnalysisSession& session() {
    return arcade::engine::AnalysisSession::global();
}

inline const arcade::watertree::Strategy& strategy(const std::string& name) {
    return arcade::watertree::strategy(name);
}

/// Session-cached compile with the paper's (individual) encoding.
inline ModelPtr compile_individual(const arcade::core::ArcadeModel& model) {
    return session().compile(model);
}

/// Session-cached compile with the lumped encoding (identical measures, far
/// fewer states; the equivalence is asserted by the test suite).
inline ModelPtr compile_lumped(const arcade::core::ArcadeModel& model) {
    arcade::core::CompileOptions options;
    options.encoding = arcade::core::Encoding::Lumped;
    return session().compile(model, options);
}

/// Transient options borrowing uniformisation scratch from the session pool.
inline arcade::ctmc::TransientOptions transient() {
    return arcade::core::session_transient(session());
}

/// One-line cache summary for the end of a harness run.
inline void print_session_stats(std::ostream& os) {
    const auto stats = session().stats();
    os << "# session: " << stats.compile_misses << " compiles, " << stats.compile_hits
       << " cache hits; " << stats.steady_state_misses << " steady-state solves, "
       << stats.steady_state_hits << " reuses\n";
}

// ---------------------------------------------------------------------------
// Benchmark provenance.  Perf numbers from non-optimised builds are noise
// at best and misleading at worst, so every harness (a) warns loudly when
// the binary was not built Release, and (b) stamps the build type into each
// appended row — the trajectory file is append-only across runs, so a row
// must carry its own provenance.
// ---------------------------------------------------------------------------

/// CMAKE_BUILD_TYPE baked in at compile time (empty when unset).
inline const char* build_type() {
#ifdef ARCADE_BUILD_TYPE
    return ARCADE_BUILD_TYPE[0] == '\0' ? "unspecified" : ARCADE_BUILD_TYPE;
#else
    return "unknown";
#endif
}

inline bool release_build() {
    const std::string t = build_type();
    return t == "Release" || t == "RelWithDebInfo" || t == "MinSizeRel";
}

/// Prints a hard-to-miss banner when the binary is not an optimised build.
inline void warn_if_not_release() {
    if (release_build()) return;
    std::cerr << "\n"
              << "*** WARNING: benchmark binary built as '" << build_type() << "'.\n"
              << "*** Timings are NOT representative; configure with\n"
              << "***   cmake -DCMAKE_BUILD_TYPE=Release\n"
              << "*** before trusting (or committing) these numbers.\n\n";
}

/// Stamps provenance into one google-benchmark row (templated so this header
/// does not depend on benchmark.h): release_build=1 marks a trustworthy row.
template <typename State>
void stamp_build_type(State& state) {
    state.counters["release_build"] = release_build() ? 1.0 : 0.0;
}

class Stopwatch {
public:
    Stopwatch() : start_(std::chrono::steady_clock::now()) {}
    [[nodiscard]] double seconds() const {
        return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
            .count();
    }

private:
    std::chrono::steady_clock::time_point start_;
};

}  // namespace bench

#endif  // ARCADE_BENCH_COMMON_HPP
