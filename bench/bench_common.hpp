// Shared helpers for the experiment harnesses (one binary per paper
// table/figure; see DESIGN.md's experiment index).
#ifndef ARCADE_BENCH_COMMON_HPP
#define ARCADE_BENCH_COMMON_HPP

#include <chrono>
#include <iostream>
#include <string>

#include "arcade/compiler.hpp"
#include "arcade/measures.hpp"
#include "support/errors.hpp"
#include "support/series.hpp"
#include "watertree/watertree.hpp"

namespace bench {

inline const arcade::watertree::Strategy& strategy(const std::string& name) {
    static const auto all = arcade::watertree::paper_strategies();
    for (const auto& s : all) {
        if (s.name == name) return s;
    }
    throw arcade::InvalidArgument("unknown strategy " + name);
}

/// Compiles with the lumped encoding (identical measures, far fewer states;
/// the equivalence is asserted by the test suite).
inline arcade::core::CompiledModel compile_lumped(const arcade::core::ArcadeModel& model) {
    arcade::core::CompileOptions options;
    options.encoding = arcade::core::Encoding::Lumped;
    return arcade::core::compile(model, options);
}

class Stopwatch {
public:
    Stopwatch() : start_(std::chrono::steady_clock::now()) {}
    [[nodiscard]] double seconds() const {
        return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
            .count();
    }

private:
    std::chrono::steady_clock::time_point start_;
};

}  // namespace bench

#endif  // ARCADE_BENCH_COMMON_HPP
