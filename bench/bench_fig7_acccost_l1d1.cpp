// Reproduces Figure 7: accumulated cost of Line 1 after Disaster 1 for
// DED / FRF-1 / FRF-2 over [0, 10] h.  Paper shape: DED highest
// (~115 at 10 h, slope -> 11/h); FRF-2 slightly below FRF-1 during recovery.
//
// Migrated onto the sweep layer: the figure is the declarative
// sweep::paper::fig7() grid evaluated by the work-stealing runner — the
// result rows are identical to the hand-rolled strategy loop this harness
// used to carry (asserted by test_sweep_golden).
#include <iostream>

#include "bench_common.hpp"
#include "sweep/sweep.hpp"

namespace sweep = arcade::sweep;

int main() {
    bench::Stopwatch watch;
    sweep::SweepRunner runner(bench::session());
    const auto report = runner.run(sweep::paper::fig7());

    sweep::paper::render_fig7(report, std::cout);
    bench::print_session_stats(std::cout);
    std::cout << "# sweep: " << report.results.size() << " scenarios, cache hit rate "
              << report.cache_hit_rate() << ", " << report.states_per_second()
              << " states/sec\n";
    std::cout << "# elapsed: " << watch.seconds() << " s\n";
    return 0;
}
