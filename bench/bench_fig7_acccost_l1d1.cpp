// Reproduces Figure 7: accumulated cost of Line 1 after Disaster 1 for
// DED / FRF-1 / FRF-2 over [0, 10] h.  Paper shape: DED highest
// (~115 at 10 h, slope -> 11/h); FRF-2 slightly below FRF-1 during recovery.
#include <iostream>

#include "bench_common.hpp"

namespace core = arcade::core;
namespace wt = arcade::watertree;

int main() {
    const auto times = arcade::time_grid(10.0, 101);

    bench::Stopwatch watch;
    arcade::Figure fig("Figure 7: accumulated cost Line 1, Disaster 1", "t in hours",
                       "Cumulative costs (I)");
    fig.set_times(times);
    for (const auto* name : {"DED", "FRF-1", "FRF-2"}) {
        const auto model = wt::compile_line(bench::session(), 1, bench::strategy(name),
                                            core::Encoding::Lumped);
        const auto disaster = wt::disaster1(model->model());
        fig.add_series(name, core::accumulated_cost_series(*model, disaster, times, bench::transient()));
    }
    fig.print(std::cout);
    bench::print_session_stats(std::cout);
    std::cout << "# elapsed: " << watch.seconds() << " s\n";
    return 0;
}
