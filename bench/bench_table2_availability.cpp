// Reproduces Table 2: steady-state availability per repair strategy,
// per line and combined (A1 + A2 - A1*A2).
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"

namespace core = arcade::core;
namespace wt = arcade::watertree;

int main() {
    std::cout << "=== Table 2: availability for repair strategies ===\n";
    std::cout << "(paper values in parentheses; DED matches to 1e-7, two-crew\n"
                 " rows to ~1e-4; the paper's one-crew digits carry solver noise —\n"
                 " its own FFF-2 line-2 exceeds DED, which is semantically\n"
                 " impossible.  See EXPERIMENTS.md.)\n\n";

    struct PaperRow {
        const char* name;
        double line1, line2, combined;
    };
    const PaperRow paper[] = {
        {"DED", 0.7442018, 0.8186317, 0.9536063},
        {"FRF-1", 0.7225597, 0.8101931, 0.9473399},
        {"FRF-2", 0.7439214, 0.8186312, 0.9535554},
        {"FFF-1", 0.7273540, 0.8120302, 0.9487508},
        {"FFF-2", 0.7440022, 0.8186662, 0.9535790},
    };

    arcade::Table table({"Strategy", "Line 1 (paper)", "Line 2 (paper)", "Combined (paper)"});
    bench::Stopwatch watch;
    char buf[128];
    for (const auto& row : paper) {
        const auto& strat = bench::strategy(row.name);
        const double a1 = core::availability(bench::session(), bench::compile_lumped(wt::line1(strat)));
        const double a2 = core::availability(bench::session(), bench::compile_lumped(wt::line2(strat)));
        const double combined = core::combined_availability(a1, a2);
        std::vector<std::string> cells;
        cells.emplace_back(row.name);
        std::snprintf(buf, sizeof buf, "%.7f (%.7f)", a1, row.line1);
        cells.emplace_back(buf);
        std::snprintf(buf, sizeof buf, "%.7f (%.7f)", a2, row.line2);
        cells.emplace_back(buf);
        std::snprintf(buf, sizeof buf, "%.7f (%.7f)", combined, row.combined);
        cells.emplace_back(buf);
        table.add_row(std::move(cells));
    }
    table.print(std::cout);
    bench::print_session_stats(std::cout);
    std::cout << "\nelapsed: " << watch.seconds() << " s\n";
    return 0;
}
