// Reproduces Table 2: steady-state availability per repair strategy,
// per line and combined (A1 + A2 - A1*A2).
//
// Migrated onto the sweep layer: the table is the declarative
// sweep::paper::table2() grid evaluated by the work-stealing runner — the
// rendered rows are identical to the hand-rolled strategy loop this harness
// used to carry (asserted by test_sweep_golden).
#include <iostream>

#include "bench_common.hpp"
#include "sweep/sweep.hpp"

namespace sweep = arcade::sweep;

int main() {
    bench::Stopwatch watch;
    sweep::SweepRunner runner(bench::session());
    const auto report = runner.run(sweep::paper::table2());

    sweep::paper::render_table2(report, std::cout);
    bench::print_session_stats(std::cout);
    std::cout << "# sweep: " << report.results.size() << " scenarios, cache hit rate "
              << report.cache_hit_rate() << ", " << report.states_per_second()
              << " states/sec\n";
    std::cout << "\nelapsed: " << watch.seconds() << " s\n";
    return 0;
}
