// Reproduces Figure 10: instantaneous cost of Line 2 after Disaster 2 for
// FFF-1 / FFF-2 / FRF-1 / FRF-2 over [0, 50] h.  Paper shape: all start at
// 15 (five failed components x 3/h); FFF-1 converges slowest (repeated pump
// failures during the long sand-filter repair re-inflate the cost).
//
// Migrated onto the sweep layer: the figure is the declarative
// sweep::paper::fig10() grid evaluated by the work-stealing runner — the
// result rows are identical to the hand-rolled strategy loop this harness
// used to carry (asserted by test_sweep_golden).
#include <iostream>

#include "bench_common.hpp"
#include "sweep/sweep.hpp"

namespace sweep = arcade::sweep;

int main() {
    bench::Stopwatch watch;
    sweep::SweepRunner runner(bench::session());
    const auto report = runner.run(sweep::paper::fig10());

    sweep::paper::render_fig10(report, std::cout);
    bench::print_session_stats(std::cout);
    std::cout << "# sweep: " << report.results.size() << " scenarios, cache hit rate "
              << report.cache_hit_rate() << ", " << report.states_per_second()
              << " states/sec\n";
    std::cout << "# elapsed: " << watch.seconds() << " s\n";
    return 0;
}
