// Reproduces Figure 8: survivability of Line 2 after Disaster 2 (two pumps,
// one softener, one sand filter and the reservoir fail), recovery to X1
// (service >= 1/3), for all five strategies.  Paper shape: FFF-1 clearly
// slowest (the reservoir is repaired last under FFF); DED fastest.
#include <iostream>

#include "bench_common.hpp"

namespace core = arcade::core;
namespace wt = arcade::watertree;

int main() {
    const auto times = arcade::time_grid(100.0, 101);
    const double x1 = 1.0 / 3.0;

    bench::Stopwatch watch;
    arcade::Figure fig("Figure 8: survivability Line 2, Disaster 2, X1 (service >= 1/3)",
                       "t in hours", "Probability (S)");
    fig.set_times(times);
    const auto disaster = wt::disaster2();
    for (const auto* name : {"DED", "FFF-1", "FFF-2", "FRF-1", "FRF-2"}) {
        const auto model = wt::compile_line(bench::session(), 2, bench::strategy(name),
                                            core::Encoding::Lumped);
        fig.add_series(name, core::survivability_series(*model, disaster, x1, times, bench::transient()));
    }
    fig.print(std::cout);
    std::cout << "# paper check: FFF-1 slowest recovery to X1; DED fastest\n";
    bench::print_session_stats(std::cout);
    std::cout << "# elapsed: " << watch.seconds() << " s\n";
    return 0;
}
