// Reproduces Figure 8: survivability of Line 2 after Disaster 2 (two pumps,
// one softener, one sand filter and the reservoir fail), recovery to X1
// (service >= 1/3), for all five strategies.  Paper shape: FFF-1 clearly
// slowest (the reservoir is repaired last under FFF); DED fastest.
//
// Migrated onto the sweep layer: the figure is the declarative
// sweep::paper::fig8() grid evaluated by the work-stealing runner — the
// result rows are identical to the hand-rolled strategy loop this harness
// used to carry (asserted by test_sweep_golden).
#include <iostream>

#include "bench_common.hpp"
#include "sweep/sweep.hpp"

namespace sweep = arcade::sweep;

int main() {
    bench::Stopwatch watch;
    sweep::SweepRunner runner(bench::session());
    const auto report = runner.run(sweep::paper::fig8());

    sweep::paper::render_fig8(report, std::cout);
    std::cout << "# paper check: FFF-1 slowest recovery to X1; DED fastest\n";
    bench::print_session_stats(std::cout);
    std::cout << "# sweep: " << report.results.size() << " scenarios, cache hit rate "
              << report.cache_hit_rate() << ", " << report.states_per_second()
              << " states/sec\n";
    std::cout << "# elapsed: " << watch.seconds() << " s\n";
    return 0;
}
