// Shared BENCH_engine.json maintenance for the perf harnesses.
//
// Every perf main lands its google-benchmark JSON in a temp file and merges
// the run's benchmark entries into the shared trajectory file here.  Merging
// is entry-level and keyed by (benchmark name, build_type, git_describe):
// re-running a harness on the same commit and build type REPLACES its rows
// in place instead of appending duplicates, while rows from other commits,
// build types or harnesses are left untouched — the file stays one
// append-only trajectory across commits with exactly one row per
// (bench, config, commit) point.
//
// Provenance (build_type, git_describe) is injected into each new entry, so
// every row carries its own identity; legacy rows without those fields never
// match a merge key and are preserved as-is.
//
// Release rows are canonical.  Rows measured under any other build type are
// tagged "non_release": true (including legacy rows already in the file),
// a fresh Release row evicts same-(bench, commit) non-Release rows, and a
// fresh non-Release row is dropped when a Release measurement of the same
// (bench, commit) already exists — debug-build noise can mark a trajectory
// but never shadow a real measurement.
#ifndef ARCADE_BENCH_JSON_HPP
#define ARCADE_BENCH_JSON_HPP

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace bench {

/// `git describe --always --dirty` of the working tree ("unknown" outside a
/// repository or without git).
inline std::string git_describe() {
    std::string out;
#if defined(_WIN32)
    FILE* pipe = _popen("git describe --always --dirty 2>NUL", "r");
#else
    FILE* pipe = popen("git describe --always --dirty 2>/dev/null", "r");
#endif
    if (pipe != nullptr) {
        char buf[256];
        while (std::fgets(buf, sizeof buf, pipe) != nullptr) out += buf;
#if defined(_WIN32)
        _pclose(pipe);
#else
        pclose(pipe);
#endif
    }
    while (!out.empty() &&
           std::isspace(static_cast<unsigned char>(out.back())) != 0) {
        out.pop_back();
    }
    return out.empty() ? "unknown" : out;
}

/// Splits the body of a JSON array into its top-level objects.  Quote- and
/// escape-aware and brace-balanced, so names containing braces or quotes
/// cannot derail the scan.
inline std::vector<std::string> split_json_objects(const std::string& body) {
    std::vector<std::string> entries;
    int depth = 0;
    bool in_string = false;
    bool escaped = false;
    std::size_t start = 0;
    for (std::size_t i = 0; i < body.size(); ++i) {
        const char c = body[i];
        if (in_string) {
            if (escaped) escaped = false;
            else if (c == '\\') escaped = true;
            else if (c == '"') in_string = false;
            continue;
        }
        if (c == '"') {
            in_string = true;
        } else if (c == '{') {
            if (depth == 0) start = i;
            ++depth;
        } else if (c == '}') {
            --depth;
            if (depth == 0) entries.push_back(body.substr(start, i - start + 1));
        }
    }
    return entries;
}

/// Value of a top-level string field of one serialised object ("" when
/// absent or not a string).
inline std::string json_string_field(const std::string& entry, const std::string& key) {
    const std::string needle = "\"" + key + "\"";
    std::size_t pos = 0;
    while ((pos = entry.find(needle, pos)) != std::string::npos) {
        std::size_t i = pos + needle.size();
        while (i < entry.size() &&
               std::isspace(static_cast<unsigned char>(entry[i])) != 0) {
            ++i;
        }
        if (i >= entry.size() || entry[i] != ':') {
            pos += needle.size();
            continue;
        }
        ++i;
        while (i < entry.size() &&
               std::isspace(static_cast<unsigned char>(entry[i])) != 0) {
            ++i;
        }
        if (i >= entry.size() || entry[i] != '"') return {};
        std::string value;
        for (++i; i < entry.size(); ++i) {
            if (entry[i] == '\\' && i + 1 < entry.size()) {
                value.push_back(entry[++i]);
            } else if (entry[i] == '"') {
                return value;
            } else {
                value.push_back(entry[i]);
            }
        }
        return {};
    }
    return {};
}

/// Does the serialised object carry a field named `key` (of any type)?
inline bool json_has_field(const std::string& entry, const std::string& key) {
    const std::string needle = "\"" + key + "\"";
    std::size_t pos = 0;
    while ((pos = entry.find(needle, pos)) != std::string::npos) {
        std::size_t i = pos + needle.size();
        while (i < entry.size() &&
               std::isspace(static_cast<unsigned char>(entry[i])) != 0) {
            ++i;
        }
        if (i < entry.size() && entry[i] == ':') return true;
        pos += needle.size();
    }
    return false;
}

/// The entry with a string field prepended right after its opening brace —
/// unless the key is already present, in which case the entry is unchanged.
inline std::string with_json_field(std::string entry, const std::string& key,
                                   const std::string& value) {
    if (!json_string_field(entry, key).empty()) return entry;
    const auto brace = entry.find('{');
    if (brace == std::string::npos) return entry;
    std::string escaped;
    for (const char c : value) {
        if (c == '"' || c == '\\') escaped.push_back('\\');
        escaped.push_back(c);
    }
    entry.insert(brace + 1, "\n      \"" + key + "\": \"" + escaped + "\",");
    return entry;
}

/// Like with_json_field, but the value is spliced in raw (a JSON number or
/// boolean, not a quoted string).  No-op when the key already exists.
inline std::string with_json_raw_field(std::string entry, const std::string& key,
                                       const std::string& raw) {
    if (json_has_field(entry, key)) return entry;
    const auto brace = entry.find('{');
    if (brace == std::string::npos) return entry;
    entry.insert(brace + 1, "\n      \"" + key + "\": " + raw + ",");
    return entry;
}

/// Merge key of one benchmark entry: one row per (bench, config, commit).
inline std::string merge_key(const std::string& entry) {
    return json_string_field(entry, "name") + "\x1f" +
           json_string_field(entry, "build_type") + "\x1f" +
           json_string_field(entry, "git_describe");
}

/// Build-type-blind identity: which (bench, commit) point does a row
/// measure?  Release-preference eviction compares rows on this key.
inline std::string bench_commit_key(const std::string& entry) {
    return json_string_field(entry, "name") + "\x1f" +
           json_string_field(entry, "git_describe");
}

/// Is the row a Release measurement?
inline bool is_release_entry(const std::string& entry) {
    return json_string_field(entry, "build_type") == "Release";
}

/// Merges the benchmark entries of `addition_path` (a fresh google-benchmark
/// JSON document) into `target_path`.  New entries are stamped with
/// `build_type` and the current git describe, then replace any target entry
/// with the same merge key (same bench, same build type, same commit) in
/// place; unmatched entries append.  Returns false when either document does
/// not look like a google-benchmark JSON document (the caller then leaves
/// the temp file for inspection).
inline bool merge_benchmarks(const std::string& target_path,
                             const std::string& addition_path,
                             const std::string& build_type) {
    std::ifstream addition_in(addition_path);
    if (!addition_in) return false;
    std::stringstream addition_buf;
    addition_buf << addition_in.rdbuf();
    const std::string addition = addition_buf.str();

    const std::string marker = "\"benchmarks\": [";
    const auto a_begin = addition.find(marker);
    const auto a_end = addition.rfind(']');
    if (a_begin == std::string::npos || a_end == std::string::npos || a_end < a_begin) {
        return false;
    }
    const std::string describe = git_describe();
    std::vector<std::string> fresh = split_json_objects(
        addition.substr(a_begin + marker.size(), a_end - a_begin - marker.size()));
    for (auto& entry : fresh) {
        entry = with_json_field(entry, "git_describe", describe);
        entry = with_json_field(entry, "build_type", build_type);
        if (!is_release_entry(entry)) {
            entry = with_json_raw_field(entry, "non_release", "true");
        }
    }

    std::vector<std::string> merged;
    std::string prefix;
    std::ifstream target_in(target_path);
    if (target_in) {
        std::stringstream target_buf;
        target_buf << target_in.rdbuf();
        const std::string target = target_buf.str();
        const auto t_begin = target.find(marker);
        const auto t_end = target.rfind(']');
        if (t_begin == std::string::npos || t_end == std::string::npos ||
            t_end < t_begin) {
            return false;
        }
        prefix = target.substr(0, t_begin + marker.size());
        merged = split_json_objects(
            target.substr(t_begin + marker.size(), t_end - t_begin - marker.size()));
        // Retro-tag rows from before the non_release convention: any row
        // that declares a non-Release build type gets the marker (rows
        // without build_type at all are too old to classify — left alone).
        for (auto& existing : merged) {
            const std::string bt = json_string_field(existing, "build_type");
            if (!bt.empty() && bt != "Release") {
                existing = with_json_raw_field(existing, "non_release", "true");
            }
        }
    } else {
        // No trajectory file yet: keep the fresh document's own context block.
        prefix = addition.substr(0, a_begin + marker.size());
    }

    for (const auto& entry : fresh) {
        // Release preference: a Release measurement evicts non-Release rows
        // of the same (bench, commit); a non-Release measurement never
        // lands next to an existing Release row of the same point.
        if (is_release_entry(entry)) {
            const std::string point = bench_commit_key(entry);
            merged.erase(std::remove_if(merged.begin(), merged.end(),
                                        [&](const std::string& existing) {
                                            return !is_release_entry(existing) &&
                                                   bench_commit_key(existing) == point;
                                        }),
                         merged.end());
        } else {
            const std::string point = bench_commit_key(entry);
            const bool shadowed =
                std::any_of(merged.begin(), merged.end(),
                            [&](const std::string& existing) {
                                return is_release_entry(existing) &&
                                       bench_commit_key(existing) == point;
                            });
            if (shadowed) continue;
        }
        const std::string key = merge_key(entry);
        bool replaced = false;
        for (auto& existing : merged) {
            if (merge_key(existing) == key) {
                existing = entry;
                replaced = true;
                break;
            }
        }
        if (!replaced) merged.push_back(entry);
    }

    std::ofstream out(target_path);
    out << prefix;
    for (std::size_t i = 0; i < merged.size(); ++i) {
        out << (i > 0 ? ",\n    " : "\n    ") << merged[i];
    }
    out << "\n  ]\n}\n";
    return static_cast<bool>(out);
}

}  // namespace bench

#endif  // ARCADE_BENCH_JSON_HPP
