// Shared BENCH_engine.json maintenance for the perf harnesses.
//
// Every perf main lands its google-benchmark JSON in a temp file and merges
// the run's benchmark entries into the shared trajectory file here.  Merging
// is entry-level and keyed by (benchmark name, build_type, git_describe):
// re-running a harness on the same commit and build type REPLACES its rows
// in place instead of appending duplicates, while rows from other commits,
// build types or harnesses are left untouched — the file stays one
// append-only trajectory across commits with exactly one row per
// (bench, config, commit) point.
//
// Provenance (build_type, git_describe) is injected into each new entry, so
// every row carries its own identity; legacy rows without those fields never
// match a merge key and are preserved as-is.
#ifndef ARCADE_BENCH_JSON_HPP
#define ARCADE_BENCH_JSON_HPP

#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace bench {

/// `git describe --always --dirty` of the working tree ("unknown" outside a
/// repository or without git).
inline std::string git_describe() {
    std::string out;
#if defined(_WIN32)
    FILE* pipe = _popen("git describe --always --dirty 2>NUL", "r");
#else
    FILE* pipe = popen("git describe --always --dirty 2>/dev/null", "r");
#endif
    if (pipe != nullptr) {
        char buf[256];
        while (std::fgets(buf, sizeof buf, pipe) != nullptr) out += buf;
#if defined(_WIN32)
        _pclose(pipe);
#else
        pclose(pipe);
#endif
    }
    while (!out.empty() &&
           std::isspace(static_cast<unsigned char>(out.back())) != 0) {
        out.pop_back();
    }
    return out.empty() ? "unknown" : out;
}

/// Splits the body of a JSON array into its top-level objects.  Quote- and
/// escape-aware and brace-balanced, so names containing braces or quotes
/// cannot derail the scan.
inline std::vector<std::string> split_json_objects(const std::string& body) {
    std::vector<std::string> entries;
    int depth = 0;
    bool in_string = false;
    bool escaped = false;
    std::size_t start = 0;
    for (std::size_t i = 0; i < body.size(); ++i) {
        const char c = body[i];
        if (in_string) {
            if (escaped) escaped = false;
            else if (c == '\\') escaped = true;
            else if (c == '"') in_string = false;
            continue;
        }
        if (c == '"') {
            in_string = true;
        } else if (c == '{') {
            if (depth == 0) start = i;
            ++depth;
        } else if (c == '}') {
            --depth;
            if (depth == 0) entries.push_back(body.substr(start, i - start + 1));
        }
    }
    return entries;
}

/// Value of a top-level string field of one serialised object ("" when
/// absent or not a string).
inline std::string json_string_field(const std::string& entry, const std::string& key) {
    const std::string needle = "\"" + key + "\"";
    std::size_t pos = 0;
    while ((pos = entry.find(needle, pos)) != std::string::npos) {
        std::size_t i = pos + needle.size();
        while (i < entry.size() &&
               std::isspace(static_cast<unsigned char>(entry[i])) != 0) {
            ++i;
        }
        if (i >= entry.size() || entry[i] != ':') {
            pos += needle.size();
            continue;
        }
        ++i;
        while (i < entry.size() &&
               std::isspace(static_cast<unsigned char>(entry[i])) != 0) {
            ++i;
        }
        if (i >= entry.size() || entry[i] != '"') return {};
        std::string value;
        for (++i; i < entry.size(); ++i) {
            if (entry[i] == '\\' && i + 1 < entry.size()) {
                value.push_back(entry[++i]);
            } else if (entry[i] == '"') {
                return value;
            } else {
                value.push_back(entry[i]);
            }
        }
        return {};
    }
    return {};
}

/// The entry with a string field prepended right after its opening brace —
/// unless the key is already present, in which case the entry is unchanged.
inline std::string with_json_field(std::string entry, const std::string& key,
                                   const std::string& value) {
    if (!json_string_field(entry, key).empty()) return entry;
    const auto brace = entry.find('{');
    if (brace == std::string::npos) return entry;
    std::string escaped;
    for (const char c : value) {
        if (c == '"' || c == '\\') escaped.push_back('\\');
        escaped.push_back(c);
    }
    entry.insert(brace + 1, "\n      \"" + key + "\": \"" + escaped + "\",");
    return entry;
}

/// Merge key of one benchmark entry: one row per (bench, config, commit).
inline std::string merge_key(const std::string& entry) {
    return json_string_field(entry, "name") + "\x1f" +
           json_string_field(entry, "build_type") + "\x1f" +
           json_string_field(entry, "git_describe");
}

/// Merges the benchmark entries of `addition_path` (a fresh google-benchmark
/// JSON document) into `target_path`.  New entries are stamped with
/// `build_type` and the current git describe, then replace any target entry
/// with the same merge key (same bench, same build type, same commit) in
/// place; unmatched entries append.  Returns false when either document does
/// not look like a google-benchmark JSON document (the caller then leaves
/// the temp file for inspection).
inline bool merge_benchmarks(const std::string& target_path,
                             const std::string& addition_path,
                             const std::string& build_type) {
    std::ifstream addition_in(addition_path);
    if (!addition_in) return false;
    std::stringstream addition_buf;
    addition_buf << addition_in.rdbuf();
    const std::string addition = addition_buf.str();

    const std::string marker = "\"benchmarks\": [";
    const auto a_begin = addition.find(marker);
    const auto a_end = addition.rfind(']');
    if (a_begin == std::string::npos || a_end == std::string::npos || a_end < a_begin) {
        return false;
    }
    const std::string describe = git_describe();
    std::vector<std::string> fresh = split_json_objects(
        addition.substr(a_begin + marker.size(), a_end - a_begin - marker.size()));
    for (auto& entry : fresh) {
        entry = with_json_field(entry, "git_describe", describe);
        entry = with_json_field(entry, "build_type", build_type);
    }

    std::vector<std::string> merged;
    std::string prefix;
    std::ifstream target_in(target_path);
    if (target_in) {
        std::stringstream target_buf;
        target_buf << target_in.rdbuf();
        const std::string target = target_buf.str();
        const auto t_begin = target.find(marker);
        const auto t_end = target.rfind(']');
        if (t_begin == std::string::npos || t_end == std::string::npos ||
            t_end < t_begin) {
            return false;
        }
        prefix = target.substr(0, t_begin + marker.size());
        merged = split_json_objects(
            target.substr(t_begin + marker.size(), t_end - t_begin - marker.size()));
    } else {
        // No trajectory file yet: keep the fresh document's own context block.
        prefix = addition.substr(0, a_begin + marker.size());
    }

    for (const auto& entry : fresh) {
        const std::string key = merge_key(entry);
        bool replaced = false;
        for (auto& existing : merged) {
            if (merge_key(existing) == key) {
                existing = entry;
                replaced = true;
                break;
            }
        }
        if (!replaced) merged.push_back(entry);
    }

    std::ofstream out(target_path);
    out << prefix;
    for (std::size_t i = 0; i < merged.size(); ++i) {
        out << (i > 0 ? ",\n    " : "\n    ") << merged[i];
    }
    out << "\n  ]\n}\n";
    return static_cast<bool>(out);
}

}  // namespace bench

#endif  // ARCADE_BENCH_JSON_HPP
