// Reproduces Figure 6: instantaneous cost of Line 1 after Disaster 1 for
// DED / FRF-1 / FRF-2.  Paper shape: DED starts at ~19 (12 failed-pump cost
// + 7 idle crews) and converges to 11 (all crews idle); FRF-1 converges to
// 1 and FRF-2 to 2 (their idle-crew costs); FRF-1 converges slowest.
//
// Migrated onto the sweep layer: the figure is the declarative
// sweep::paper::fig6() grid evaluated by the work-stealing runner — the
// result rows are identical to the hand-rolled strategy loop this harness
// used to carry (asserted by test_sweep_golden).
#include <iostream>

#include "bench_common.hpp"
#include "sweep/sweep.hpp"

namespace sweep = arcade::sweep;

int main() {
    bench::Stopwatch watch;
    sweep::SweepRunner runner(bench::session());
    const auto report = runner.run(sweep::paper::fig6());

    sweep::paper::render_fig6(report, std::cout);
    bench::print_session_stats(std::cout);
    std::cout << "# sweep: " << report.results.size() << " scenarios, cache hit rate "
              << report.cache_hit_rate() << ", " << report.states_per_second()
              << " states/sec\n";
    std::cout << "# elapsed: " << watch.seconds() << " s\n";
    return 0;
}
