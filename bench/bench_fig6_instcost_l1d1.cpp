// Reproduces Figure 6: instantaneous cost of Line 1 after Disaster 1 for
// DED / FRF-1 / FRF-2.  Paper shape: DED starts at ~19 (12 failed-pump cost
// + 7 idle crews) and converges to 11 (all crews idle); FRF-1 converges to
// 1 and FRF-2 to 2 (their idle-crew costs); FRF-1 converges slowest.
#include <iostream>

#include "bench_common.hpp"

namespace core = arcade::core;
namespace wt = arcade::watertree;

int main() {
    const auto times = arcade::time_grid(4.5, 91);

    bench::Stopwatch watch;
    arcade::Figure fig("Figure 6: instantaneous cost Line 1, Disaster 1", "t in hours",
                       "Impuls Costs (I)");
    fig.set_times(times);
    for (const auto* name : {"DED", "FRF-1", "FRF-2"}) {
        const auto model = wt::compile_line(bench::session(), 1, bench::strategy(name),
                                            core::Encoding::Lumped);
        const auto disaster = wt::disaster1(model->model());
        fig.add_series(name, core::instantaneous_cost_series(*model, disaster, times, bench::transient()));
    }
    fig.print(std::cout);
    bench::print_session_stats(std::cout);
    std::cout << "# elapsed: " << watch.seconds() << " s\n";
    return 0;
}
