// Reproduces Figure 3: reliability over time for both lines (no repairs;
// S_down = line not fully operational, one pump failure tolerated).
// Paper shape: both curves decay to ~0 by 1000 h; Line 2 is MORE reliable
// than Line 1 despite less redundancy (fewer pumps exposed to failure).
//
// Migrated onto the sweep layer: the figure is the declarative
// sweep::paper::fig3() grid evaluated by the work-stealing runner — the
// result rows are identical to the hand-rolled per-line loop this harness
// used to carry (asserted by test_sweep_golden).
#include <iostream>

#include "bench_common.hpp"
#include "sweep/sweep.hpp"

namespace sweep = arcade::sweep;

int main() {
    bench::Stopwatch watch;
    sweep::SweepRunner runner(bench::session());
    const auto report = runner.run(sweep::paper::fig3());

    sweep::paper::render_fig3(report, std::cout);
    std::cout << "# paper check: line 2 must dominate line 1 for all t > 0\n";
    bench::print_session_stats(std::cout);
    std::cout << "# sweep: " << report.results.size() << " scenarios, cache hit rate "
              << report.cache_hit_rate() << ", " << report.states_per_second()
              << " states/sec\n";
    std::cout << "# elapsed: " << watch.seconds() << " s\n";
    return 0;
}
