// Reproduces Figure 3: reliability over time for both lines (no repairs;
// S_down = line not fully operational, one pump failure tolerated).
// Paper shape: both curves decay to ~0 by 1000 h; Line 2 is MORE reliable
// than Line 1 despite less redundancy (fewer pumps exposed to failure).
#include <iostream>

#include "bench_common.hpp"

namespace core = arcade::core;
namespace wt = arcade::watertree;

int main() {
    const auto times = arcade::time_grid(1000.0, 101);

    bench::Stopwatch watch;
    const auto& ded = bench::strategy("DED");  // strategy irrelevant without repair
    const auto l1 = bench::compile_lumped(core::without_repair(wt::line1(ded)));
    const auto l2 = bench::compile_lumped(core::without_repair(wt::line2(ded)));

    arcade::Figure fig("Figure 3: reliability over time", "t in hours", "Probability (S)");
    fig.set_times(times);
    fig.add_series("Reliability_line1", core::reliability_series(*l1, times, bench::transient()));
    fig.add_series("Reliability_line2", core::reliability_series(*l2, times, bench::transient()));
    fig.print(std::cout);
    std::cout << "# paper check: line 2 must dominate line 1 for all t > 0\n";
    bench::print_session_stats(std::cout);
    std::cout << "# elapsed: " << watch.seconds() << " s\n";
    return 0;
}
