// Reproduces Figure 9: survivability of Line 2 after Disaster 2, recovery
// to X3 (service >= 2/3).  Paper shape: the ordering flips versus X1 —
// FFF beats FRF because the sand filter (repaired earlier under FFF)
// becomes the bottleneck for X3; curves saturate well below 1 within 100 h
// (the 100 h sand-filter repair dominates).
//
// Migrated onto the sweep layer: the figure is the declarative
// sweep::paper::fig9() grid evaluated by the work-stealing runner — the
// result rows are identical to the hand-rolled strategy loop this harness
// used to carry (asserted by test_sweep_golden).
#include <iostream>

#include "bench_common.hpp"
#include "sweep/sweep.hpp"

namespace sweep = arcade::sweep;

int main() {
    bench::Stopwatch watch;
    sweep::SweepRunner runner(bench::session());
    const auto report = runner.run(sweep::paper::fig9());

    sweep::paper::render_fig9(report, std::cout);
    std::cout << "# paper check: FFF-2 above FRF-2 here (sand filter first)\n";
    bench::print_session_stats(std::cout);
    std::cout << "# sweep: " << report.results.size() << " scenarios, cache hit rate "
              << report.cache_hit_rate() << ", " << report.states_per_second()
              << " states/sec\n";
    std::cout << "# elapsed: " << watch.seconds() << " s\n";
    return 0;
}
