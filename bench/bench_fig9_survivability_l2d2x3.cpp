// Reproduces Figure 9: survivability of Line 2 after Disaster 2, recovery
// to X3 (service >= 2/3).  Paper shape: the ordering flips versus X1 —
// FFF beats FRF because the sand filter (repaired earlier under FFF)
// becomes the bottleneck for X3; curves saturate well below 1 within 100 h
// (the 100 h sand-filter repair dominates).
//
// Migrated onto the sweep layer: the figure is one declarative ScenarioGrid
// evaluated by the work-stealing runner — the result rows are identical to
// the hand-rolled strategy loop this harness used to carry.
#include <iostream>

#include "bench_common.hpp"
#include "sweep/sweep.hpp"

namespace sweep = arcade::sweep;

int main() {
    const auto times = arcade::time_grid(100.0, 101);
    const double x3 = 2.0 / 3.0;

    bench::Stopwatch watch;
    sweep::ScenarioGrid grid;
    grid.lines = {2};
    grid.strategies = {"DED", "FFF-1", "FFF-2", "FRF-1", "FRF-2"};
    grid.measures = {{sweep::MeasureKind::Survivability, sweep::DisasterKind::Mixed, x3,
                      times}};

    sweep::SweepRunner runner(bench::session());
    const auto report = runner.run(grid);

    arcade::Figure fig("Figure 9: survivability Line 2, Disaster 2, X3 (service >= 2/3)",
                       "t in hours", "Probability (S)");
    fig.set_times(times);
    for (const auto& r : report.results) fig.add_series(r.item.strategy, r.values);
    fig.print(std::cout);
    std::cout << "# paper check: FFF-2 above FRF-2 here (sand filter first)\n";
    bench::print_session_stats(std::cout);
    std::cout << "# sweep: " << report.results.size() << " scenarios, cache hit rate "
              << report.cache_hit_rate() << ", " << report.states_per_second()
              << " states/sec\n";
    std::cout << "# elapsed: " << watch.seconds() << " s\n";
    return 0;
}
