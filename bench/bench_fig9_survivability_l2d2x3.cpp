// Reproduces Figure 9: survivability of Line 2 after Disaster 2, recovery
// to X3 (service >= 2/3).  Paper shape: the ordering flips versus X1 —
// FFF beats FRF because the sand filter (repaired earlier under FFF)
// becomes the bottleneck for X3; curves saturate well below 1 within 100 h
// (the 100 h sand-filter repair dominates).
#include <iostream>

#include "bench_common.hpp"

namespace core = arcade::core;
namespace wt = arcade::watertree;

int main() {
    const auto times = arcade::time_grid(100.0, 101);
    const double x3 = 2.0 / 3.0;

    bench::Stopwatch watch;
    arcade::Figure fig("Figure 9: survivability Line 2, Disaster 2, X3 (service >= 2/3)",
                       "t in hours", "Probability (S)");
    fig.set_times(times);
    const auto disaster = wt::disaster2();
    for (const auto* name : {"DED", "FFF-1", "FFF-2", "FRF-1", "FRF-2"}) {
        const auto model = wt::compile_line(bench::session(), 2, bench::strategy(name),
                                            core::Encoding::Lumped);
        fig.add_series(name, core::survivability_series(*model, disaster, x3, times, bench::transient()));
    }
    fig.print(std::cout);
    std::cout << "# paper check: FFF-2 above FRF-2 here (sand filter first)\n";
    bench::print_session_stats(std::cout);
    std::cout << "# elapsed: " << watch.seconds() << " s\n";
    return 0;
}
