// arcade_sweep — the paper's whole evaluation as ONE declarative scenario
// grid.
//
// A single ScenarioGrid spans (both lines) × (all five repair strategies) ×
// (availability + the six figure measures with their time grids).  The
// work-stealing runner expands it to 60 scenarios over 10 compiled models,
// funnels everything through the global AnalysisSession, and this driver
// renders the paper's Table 2 availability column and the Figure 8
// survivability grid from the results — plus cache-hit and states/sec
// counters, and optional CSV/JSON export:
//
//   arcade_sweep [--threads N] [--csv out.csv] [--json out.json]
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "arcade/measures.hpp"
#include "support/series.hpp"
#include "sweep/sweep.hpp"

namespace core = arcade::core;
namespace sweep = arcade::sweep;

namespace {

const sweep::ScenarioResult* find(const sweep::SweepReport& report, int line,
                                  const std::string& strategy, sweep::MeasureKind kind,
                                  sweep::DisasterKind disaster, double service_level) {
    for (const auto& r : report.results) {
        const auto& m = r.item.measure;
        if (r.item.line == line && r.item.strategy == strategy && m.kind == kind &&
            m.disaster == disaster && m.service_level == service_level) {
            return &r;
        }
    }
    return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
    unsigned threads = 0;
    std::string csv_path;
    std::string json_path;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const bool has_value = i + 1 < argc;
        if (arg == "--threads" && has_value) {
            try {
                threads = static_cast<unsigned>(std::stoul(argv[++i]));
            } catch (const std::exception&) {
                std::cerr << "arcade_sweep: --threads needs a number, got '" << argv[i]
                          << "'\n";
                return 2;
            }
        } else if (arg == "--csv" && has_value) {
            csv_path = argv[++i];
        } else if (arg == "--json" && has_value) {
            json_path = argv[++i];
        } else {
            std::cerr << "usage: arcade_sweep [--threads N] [--csv PATH] [--json PATH]\n";
            return 2;
        }
    }

    using sweep::DisasterKind;
    using sweep::MeasureKind;
    const auto short_grid = arcade::time_grid(4.5, 91);    // Figs 4–6
    const auto cost_grid = arcade::time_grid(10.0, 101);   // Fig 7
    const auto long_grid = arcade::time_grid(100.0, 101);  // Figs 8–9
    const double x1 = 1.0 / 3.0;
    const double x2 = 2.0 / 3.0;

    // The whole paper evaluation, declared once.  Disaster-2 measures prune
    // themselves off Line 1 (the paper defines that disaster on Line 2).
    sweep::ScenarioGrid grid;
    grid.lines = {1, 2};
    grid.strategies = {"DED", "FRF-1", "FRF-2", "FFF-1", "FFF-2"};
    grid.measures = {
        {MeasureKind::Availability, DisasterKind::None, 1.0, {}},            // Table 2
        {MeasureKind::Survivability, DisasterKind::AllPumps, x1, short_grid},  // Fig 4
        {MeasureKind::Survivability, DisasterKind::AllPumps, x2, short_grid},  // Fig 5
        {MeasureKind::InstantaneousCost, DisasterKind::AllPumps, 1.0, short_grid},  // Fig 6
        {MeasureKind::AccumulatedCost, DisasterKind::AllPumps, 1.0, cost_grid},     // Fig 7
        {MeasureKind::Survivability, DisasterKind::Mixed, x1, long_grid},    // Fig 8
        {MeasureKind::Survivability, DisasterKind::Mixed, x2, long_grid},    // Fig 9
    };

    sweep::SweepRunner runner(arcade::engine::AnalysisSession::global(), {threads});
    const auto report = runner.run(grid);

    // --- Table 2, availability column -------------------------------------
    std::cout << "=== Sweep: Table 2 availability (from the declarative grid) ===\n";
    arcade::Table table({"Strategy", "Line 1", "Line 2", "Combined"});
    char buf[64];
    for (const auto& name : grid.strategies) {
        const auto* a1 =
            find(report, 1, name, MeasureKind::Availability, DisasterKind::None, 1.0);
        const auto* a2 =
            find(report, 2, name, MeasureKind::Availability, DisasterKind::None, 1.0);
        if (a1 == nullptr || a2 == nullptr) {
            std::cerr << "missing availability cell for " << name << "\n";
            return 1;
        }
        std::vector<std::string> cells{name};
        std::snprintf(buf, sizeof buf, "%.7f", a1->values.front());
        cells.emplace_back(buf);
        std::snprintf(buf, sizeof buf, "%.7f", a2->values.front());
        cells.emplace_back(buf);
        std::snprintf(buf, sizeof buf, "%.7f",
                      core::combined_availability(a1->values.front(), a2->values.front()));
        cells.emplace_back(buf);
        table.add_row(std::move(cells));
    }
    table.print(std::cout);

    // --- Figure 8 grid (survivability, Line 2, Disaster 2, X1) ------------
    std::cout << "\n";
    arcade::Figure fig("Figure 8 (via sweep): survivability Line 2, Disaster 2, X1",
                       "t in hours", "Probability (S)");
    fig.set_times(long_grid);
    for (const auto& name : grid.strategies) {
        const auto* r =
            find(report, 2, name, MeasureKind::Survivability, DisasterKind::Mixed, x1);
        if (r == nullptr) {
            std::cerr << "missing survivability cell for " << name << "\n";
            return 1;
        }
        fig.add_series(name, r->values);
    }
    fig.print(std::cout);

    // --- Counters ---------------------------------------------------------
    std::cout << "\n# sweep: " << report.results.size() << " scenarios over "
              << report.unique_models << " compiled models\n"
              << "# cache: " << report.stats.compile_hits << " compile hits / "
              << report.stats.compile_misses << " misses, "
              << report.stats.steady_state_hits << " steady-state hits / "
              << report.stats.steady_state_misses << " misses  (hit rate ";
    std::snprintf(buf, sizeof buf, "%.3f", report.cache_hit_rate());
    std::cout << buf << ")\n# throughput: " << report.state_points
              << " state-points in ";
    std::snprintf(buf, sizeof buf, "%.3f", report.wall_seconds);
    std::cout << buf << " s (";
    std::snprintf(buf, sizeof buf, "%.3g", report.states_per_second());
    std::cout << buf << " states/sec)\n";

    if (!csv_path.empty()) {
        std::ofstream out(csv_path);
        sweep::write_csv(report, grid, out);
        std::cout << "# wrote " << csv_path << "\n";
    }
    if (!json_path.empty()) {
        std::ofstream out(json_path);
        sweep::write_json(report, grid, out);
        std::cout << "# wrote " << json_path << "\n";
    }
    return report.cache_hit_rate() > 0.0 ? 0 : 1;
}
