// arcade_sweep — the paper's whole evaluation as ONE declarative scenario
// grid (sweep::paper::everything()).
//
// A single ScenarioGrid spans (both lines) × (all five repair strategies) ×
// (availability + the six figure measures with their time grids).  The
// work-stealing runner expands it to 60 scenarios over 10 compiled models,
// funnels everything through the global AnalysisSession, and this driver
// renders the paper's Table 2 availability column and the Figure 8
// survivability grid from the results — plus cache-hit and states/sec
// counters, and optional CSV/JSON export:
//
//   arcade_sweep [--threads N] [--csv out.csv] [--json out.json]
//                [--shard i/n] [--csv-footer] [--reduction off|auto]
//                [--symmetry off|auto] [--batch off|auto] [--mttr-sweep]
//                [--properties] [--pump-scaling N] [--list]
//
// --reduction auto analyses every scenario on the automatic
// strong-bisimulation quotient of its model (see README, "The reduction
// layer"); --mttr-sweep swaps the paper grid for the MTTR-sensitivity study
// (repair rates scaled ±50% around the paper's values via
// ScenarioGrid::parameters) and renders its tables instead; --properties
// swaps in sweep::paper::properties() — the same evaluation with every
// measure expressed as a CSL/CSRL formula (watertree::properties), checked
// through the engine's property cache.
//
// --batch auto fuses cells that share a chain and time grid into one batched
// multi-vector evolution (README, "Batched transient evolution"); the CSV/
// JSON output is byte-identical either way, and the summary reports how many
// cells fused into how many columns.
//
// --symmetry auto explores every model as its symmetry quotient over
// interchangeable components (README, "Symmetry reduction"); --pump-scaling N
// swaps in the state-space scaling study (0..N spare pumps per line) and
// renders its Table-1-style report — symmetry defaults to auto there, since
// the full chains are the thing the study avoids building.  --list prints the
// expanded, deduplicated work list (item index, model variant, measure) of
// whatever grid the other flags select and exits without running anything.
//
// --shard i/n runs only the i-th of n contiguous slices of the expanded
// work list (1-based).  Slices are deterministic, disjoint and exhaustive;
// only shard 1 writes the CSV header, so concatenating the n per-shard CSV
// files in shard order reproduces the unsharded CSV byte-for-byte (sharded
// runs therefore ignore --csv-footer: per-shard footers would interleave
// comment lines mid-file).  Sharded runs skip the human-readable
// table/figure rendering (their cells may live in other shards) and are
// meant to be driven for their CSV/JSON output.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>

#include "arcade/measures.hpp"
#include "support/series.hpp"
#include "sweep/sweep.hpp"

namespace core = arcade::core;
namespace sweep = arcade::sweep;

int main(int argc, char** argv) {
    unsigned threads = 0;
    std::string csv_path;
    std::string json_path;
    sweep::ShardSpec shard;
    bool csv_footer = false;
    bool mttr_sweep = false;
    bool properties_sweep = false;
    bool list_only = false;
    int pump_scaling = -1;  // <0: not requested
    core::ReductionPolicy reduction = core::default_reduction_policy();
    core::SymmetryPolicy symmetry = core::default_symmetry_policy();
    core::BatchPolicy batch = core::default_batch_policy();
    bool symmetry_explicit = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const bool has_value = i + 1 < argc;
        if (arg == "--threads" && has_value) {
            try {
                threads = static_cast<unsigned>(std::stoul(argv[++i]));
            } catch (const std::exception&) {
                std::cerr << "arcade_sweep: --threads needs a number, got '" << argv[i]
                          << "'\n";
                return 2;
            }
        } else if (arg == "--csv" && has_value) {
            csv_path = argv[++i];
        } else if (arg == "--json" && has_value) {
            json_path = argv[++i];
        } else if (arg == "--shard" && has_value) {
            try {
                shard = sweep::ShardSpec::parse(argv[++i]);
            } catch (const std::exception& e) {
                std::cerr << "arcade_sweep: " << e.what() << "\n";
                return 2;
            }
        } else if (arg == "--csv-footer") {
            csv_footer = true;
        } else if (arg == "--mttr-sweep") {
            mttr_sweep = true;
        } else if (arg == "--properties") {
            properties_sweep = true;
        } else if (arg == "--list") {
            list_only = true;
        } else if (arg == "--pump-scaling" && has_value) {
            try {
                pump_scaling = std::stoi(argv[++i]);
                if (pump_scaling < 0) throw std::invalid_argument("negative");
            } catch (const std::exception&) {
                std::cerr << "arcade_sweep: --pump-scaling needs a non-negative "
                             "number of extra pumps, got '" << argv[i] << "'\n";
                return 2;
            }
        } else if (arg == "--symmetry" && has_value) {
            const std::string value = argv[++i];
            if (value == "off") {
                symmetry = core::SymmetryPolicy::Off;
            } else if (value == "auto") {
                symmetry = core::SymmetryPolicy::Auto;
            } else {
                std::cerr << "arcade_sweep: --symmetry takes 'off' or 'auto', got '"
                          << value << "'\n";
                return 2;
            }
            symmetry_explicit = true;
        } else if (arg == "--batch" && has_value) {
            const std::string value = argv[++i];
            if (value == "off") {
                batch = core::BatchPolicy::Off;
            } else if (value == "auto") {
                batch = core::BatchPolicy::Auto;
            } else {
                std::cerr << "arcade_sweep: --batch takes 'off' or 'auto', got '"
                          << value << "'\n";
                return 2;
            }
        } else if (arg == "--reduction" && has_value) {
            const std::string value = argv[++i];
            if (value == "off") {
                reduction = core::ReductionPolicy::Off;
            } else if (value == "auto") {
                reduction = core::ReductionPolicy::Auto;
            } else {
                std::cerr << "arcade_sweep: --reduction takes 'off' or 'auto', got '"
                          << value << "'\n";
                return 2;
            }
        } else {
            std::cerr << "usage: arcade_sweep [--threads N] [--csv PATH] [--json PATH] "
                         "[--shard i/n] [--csv-footer] [--reduction off|auto] "
                         "[--symmetry off|auto] [--batch off|auto] [--mttr-sweep] "
                         "[--properties] [--pump-scaling N] [--list]\n";
            return 2;
        }
    }

    using sweep::DisasterKind;
    using sweep::MeasureKind;
    if (static_cast<int>(mttr_sweep) + static_cast<int>(properties_sweep) +
            static_cast<int>(pump_scaling >= 0) > 1) {
        std::cerr << "arcade_sweep: --mttr-sweep, --properties and --pump-scaling "
                     "are exclusive\n";
        return 2;
    }
    const auto grid =
        mttr_sweep         ? sweep::studies::mttr_sensitivity()
        : properties_sweep ? sweep::paper::properties()
        : pump_scaling >= 0
            ? sweep::studies::pump_scaling(static_cast<std::size_t>(pump_scaling))
            : sweep::paper::everything();
    // The scaling study exists to avoid the full chains: default it to the
    // quotient unless the user explicitly asked for the unreduced run.
    if (pump_scaling >= 0 && !symmetry_explicit) symmetry = core::SymmetryPolicy::Auto;

    if (list_only) {
        const auto items = sweep::shard_slice(sweep::expand(grid), shard);
        for (const auto& item : items) {
            std::cout << item.index << "\t" << item.model_key() << "\t"
                      << sweep::to_string(item.measure.kind) << "\n";
        }
        std::cout << "# " << items.size() << " work items\n";
        return 0;
    }

    sweep::SweepRunner runner(arcade::engine::AnalysisSession::global(),
                              {threads, shard, reduction, symmetry, batch});
    const auto report = runner.run(grid);

    if (shard.is_sharded()) {
        // A shard holds an arbitrary slice of the grid: the table/figure
        // renderings below need cells that may live in other shards.
        std::cout << "# shard " << shard.index << "/" << shard.count << ": "
                  << report.results.size() << " of " << sweep::expand(grid).size()
                  << " work items\n";
    } else if (mttr_sweep) {
        sweep::studies::render_mttr_sensitivity(report, grid, std::cout);
    } else if (pump_scaling >= 0) {
        sweep::studies::render_pump_scaling(report, grid, std::cout);
    } else if (properties_sweep) {
        sweep::paper::render_properties(report, grid, std::cout);
    } else {
        // --- Table 2, availability column ---------------------------------
        std::cout << "=== Sweep: Table 2 availability (from the declarative grid) ===\n";
        arcade::Table table({"Strategy", "Line 1", "Line 2", "Combined"});
        char buf[64];
        for (const auto& name : grid.strategies) {
            const auto* a1 =
                sweep::paper::find(report, 1, name, MeasureKind::Availability, DisasterKind::None, 1.0);
            const auto* a2 =
                sweep::paper::find(report, 2, name, MeasureKind::Availability, DisasterKind::None, 1.0);
            if (a1 == nullptr || a2 == nullptr) {
                std::cerr << "missing availability cell for " << name << "\n";
                return 1;
            }
            std::vector<std::string> cells{name};
            std::snprintf(buf, sizeof buf, "%.7f", a1->values.front());
            cells.emplace_back(buf);
            std::snprintf(buf, sizeof buf, "%.7f", a2->values.front());
            cells.emplace_back(buf);
            std::snprintf(buf, sizeof buf, "%.7f",
                          core::combined_availability(a1->values.front(),
                                                      a2->values.front()));
            cells.emplace_back(buf);
            table.add_row(std::move(cells));
        }
        table.print(std::cout);

        // --- Figure 8 grid (survivability, Line 2, Disaster 2, X1) --------
        std::cout << "\n";
        arcade::Figure fig("Figure 8 (via sweep): survivability Line 2, Disaster 2, X1",
                           "t in hours", "Probability (S)");
        const double x1 = 1.0 / 3.0;
        bool have_times = false;
        for (const auto& name : grid.strategies) {
            const auto* r =
                sweep::paper::find(report, 2, name, MeasureKind::Survivability, DisasterKind::Mixed, x1);
            if (r == nullptr) {
                std::cerr << "missing survivability cell for " << name << "\n";
                return 1;
            }
            if (!have_times) {
                fig.set_times(r->item.measure.times);
                have_times = true;
            }
            fig.add_series(name, r->values);
        }
        fig.print(std::cout);
    }

    // --- Counters ---------------------------------------------------------
    char buf[64];
    std::cout << "\n# sweep: " << report.results.size() << " scenarios over "
              << report.unique_models << " compiled models\n"
              << "# cache: " << report.stats.compile_hits << " compile hits / "
              << report.stats.compile_misses << " misses, "
              << report.stats.steady_state_hits << " steady-state hits / "
              << report.stats.steady_state_misses << " misses  (hit rate ";
    std::snprintf(buf, sizeof buf, "%.3f", report.cache_hit_rate());
    std::cout << buf << ")\n";
    if (reduction == core::ReductionPolicy::Auto) {
        std::cout << "# reduction: " << report.stats.lump_misses << " quotients built / "
                  << report.stats.lump_hits << " reused, "
                  << report.stats.lump_states_in << " states -> "
                  << report.stats.lump_states_out << " blocks (";
        std::snprintf(buf, sizeof buf, "%.1fx", report.stats.reduction_ratio());
        std::cout << buf << ")\n";
    }
    if (symmetry == core::SymmetryPolicy::Auto) {
        std::cout << "# symmetry: " << report.stats.symmetry_states_in
                  << " full states -> " << report.stats.symmetry_states_out
                  << " orbit representatives (";
        std::snprintf(buf, sizeof buf, "%.1fx", report.stats.symmetry_ratio());
        std::cout << buf << ")\n";
    }
    if (batch == core::BatchPolicy::Auto) {
        std::cout << "# batch: " << report.stats.batch_cells_fused
                  << " cells fused into " << report.stats.batch_columns
                  << " columns (";
        std::snprintf(buf, sizeof buf, "%.3f", report.stats.batch_seconds);
        std::cout << buf << " s batched)\n";
    }
    if (properties_sweep) {
        std::cout << "# properties: " << report.stats.property_misses
                  << " checked / " << report.stats.property_hits << " cache hits\n";
    }
    std::cout << "# throughput: " << report.state_points
              << " state-points in ";
    std::snprintf(buf, sizeof buf, "%.3f", report.wall_seconds);
    std::cout << buf << " s (";
    std::snprintf(buf, sizeof buf, "%.3g", report.states_per_second());
    std::cout << buf << " states/sec)\n";

    if (!csv_path.empty()) {
        std::ofstream out(csv_path);
        sweep::CsvOptions options;
        options.header = shard.index == 1;  // later shards concatenate after shard 1
        // A per-shard footer would interleave comment lines mid-file and
        // break the byte-identical concatenation guarantee.
        options.footer = csv_footer && !shard.is_sharded();
        sweep::write_csv(report, grid, out, options);
        std::cout << "# wrote " << csv_path << "\n";
    }
    if (!json_path.empty()) {
        std::ofstream out(json_path);
        sweep::write_json(report, grid, out);
        std::cout << "# wrote " << json_path << "\n";
    }
    return report.cache_hit_rate() > 0.0 ? 0 : 1;
}
