// Quickstart: model a small redundant system with the Arcade API, compile it
// to a CTMC and compute the paper's measures.
//
//   ./example_quickstart
//
// System: two parallel servers (either suffices for some service, both for
// full service) behind a single power feed, repaired by one FRF crew.
#include <iostream>

#include "arcade/compiler.hpp"
#include "engine/session.hpp"
#include "arcade/measures.hpp"
#include "arcade/types.hpp"

namespace core = arcade::core;

int main() {
    // 1. Describe the architecture.
    core::ModelBuilder builder("quickstart");
    builder.add_redundant_phase("server", 2, /*mttf=*/1000.0, /*mttr=*/8.0);
    builder.add_redundant_phase("power", 1, /*mttf=*/5000.0, /*mttr=*/2.0);
    builder.with_repair(core::RepairPolicy::FastestRepairFirst, /*crews=*/1);
    const core::ArcadeModel model = builder.build();

    // 2. Compile to a CTMC.
    const core::CompiledModel compiled = core::compile(model);
    std::cout << "state space: " << compiled.state_count() << " states, "
              << compiled.transition_count() << " transitions\n";

    // 3. Availability (long-run probability of full service).
    std::cout << "availability: " << core::availability(compiled) << "\n";

    // 4. Reliability at 100 h (no repairs).
    const auto unrepaired = core::compile(core::without_repair(model));
    const std::vector<double> times{0.0, 100.0};
    std::cout << "reliability(100h): "
              << core::reliability_series(unrepaired, times).back() << "\n";

    // 5. Survivability: both servers down at t=0, recover half service
    //    (one server) within 12 hours?
    core::Disaster disaster;
    disaster.name = "both-servers-down";
    disaster.failed_per_phase = {2, 0};
    std::cout << "P(recover >=1/2 service within 12h | disaster): "
              << core::survivability(compiled, disaster, 0.5, 12.0) << "\n";

    // 6. Expected repair cost accumulated over the first 24 h after the
    //    disaster (3/h per failed component + 1/h per idle crew).
    const std::vector<double> day{0.0, 24.0};
    std::cout << "E[cost over 24h | disaster]: "
              << core::accumulated_cost_series(compiled, disaster, day).back() << "\n";

    // 7. The same model through an AnalysisSession: the second compile is a
    //    cache hit returning the identical instance.
    auto& session = arcade::engine::AnalysisSession::global();
    const auto first = session.compile(model);
    const auto second = session.compile(model);
    std::cout << "session cache hit: " << (first.get() == second.get() ? "yes" : "no")
              << " (availability " << core::availability(session, second) << ")\n";
    return 0;
}
