// The paper's tool chain made explicit: Arcade model -> stochastic reactive
// modules -> (a) our explorer and (b) PRISM source text for cross-checking
// with the real PRISM model checker, plus a CSL/CSRL query session.
#include <iostream>

#include "arcade/compiler.hpp"
#include "arcade/modules_compiler.hpp"
#include "engine/session.hpp"
#include "logic/csl.hpp"
#include "modules/explorer.hpp"
#include "prism/prism_writer.hpp"
#include "watertree/watertree.hpp"

namespace core = arcade::core;
namespace wt = arcade::watertree;

int main() {
    // Small instance so the PRISM text stays readable: line 2 with FRF-1.
    const auto model = wt::line2(wt::paper_strategies()[1]);

    // (1) Translate to reactive modules.
    const auto system = core::to_reactive_modules(model);
    std::cout << "reactive modules: " << system.modules.size() << " module(s), "
              << system.modules.front().commands.size() << " commands\n\n";

    // (2) Export PRISM source (feed this to the real PRISM to cross-check).
    const std::string prism_text = arcade::prism::write_prism(system);
    std::cout << "--- PRISM export (first 30 lines) ---\n";
    std::size_t lines = 0;
    for (char ch : prism_text) {
        if (lines < 30) std::cout << ch;
        if (ch == '\n' && ++lines == 30) std::cout << "...\n";
    }

    // (3) Explore with our engine and model-check CSL/CSRL formulas
    //     (exactly the queries of the paper's Section 3).
    auto explored = arcade::engine::AnalysisSession::global().explore(system);
    std::cout << "\nexplored: " << explored->chain.state_count() << " states (paper: 8129)\n\n";

    arcade::logic::CheckerOptions options;
    options.reward_structures = explored->reward_structures;

    const char* queries[] = {
        "S=? [ \"operational\" ]",              // availability
        "P=? [ true U<=24 \"down\" ]",          // 24h unreliability-with-repair
        "P=? [ true U<=100 \"total_failure\" ]",
        "R{\"cost\"}=? [ S ]",                  // long-run cost rate
    };
    for (const char* q : queries) {
        const auto result = arcade::logic::check(explored->chain, q, options);
        std::cout << q << "  =  " << *result.value << "\n";
    }
    return 0;
}
