// End-to-end Arcade-XML workflow: write a model to XML, load it back
// (simulating a design-tool hand-off, the paper's Fig. 1 entry point),
// then run a survivability study and print a gnuplot-ready curve.
#include <iostream>

#include "arcade/compiler.hpp"
#include "arcade/measures.hpp"
#include "arcade/xml_io.hpp"
#include "engine/session.hpp"
#include "support/series.hpp"
#include "watertree/watertree.hpp"

namespace core = arcade::core;
namespace wt = arcade::watertree;

int main() {
    // A design tool would emit this file; we generate it from the case study.
    const auto original = wt::line2(wt::paper_strategies()[2]);  // FRF-2
    const std::string xml = core::model_to_xml(original);
    std::cout << "--- Arcade-XML (generated, truncated to 25 lines) ---\n";
    std::size_t lines = 0;
    for (char ch : xml) {
        if (lines < 25) std::cout << ch;
        if (ch == '\n' && ++lines == 25) std::cout << "...\n";
    }

    // Round-trip and analyse.
    const core::ArcadeModel model = core::model_from_xml(xml);
    auto& session = arcade::engine::AnalysisSession::global();
    const auto compiled = session.compile(model);
    std::cout << "\nmodel '" << model.name << "': " << compiled->state_count()
              << " states after XML round-trip\n\n";

    const auto disaster = wt::disaster2();
    const auto times = arcade::time_grid(100.0, 21);
    arcade::Figure fig("Survivability from XML-loaded model (Line 2, Disaster 2)",
                       "t in hours", "Probability");
    fig.set_times(times);
    for (double x : wt::service_interval_bounds(model)) {
        fig.add_series("service>=" + std::to_string(x).substr(0, 4),
                       core::survivability_series(*compiled, disaster, x, times,
                                                  core::session_transient(session)));
    }
    fig.print(std::cout);
    return 0;
}
