// arcade_lint — standalone front-end for the model linter (analysis/lint.hpp).
//
//   arcade_lint [--level off|warn|error] <model>...
//
// Each <model> is either an Arcade XML file (.xml — linted through its
// reactive-modules translation) or a PRISM file (.prism/.pm/.sm — linted
// directly, including the AR010 unused-formula check the parser feeds).
// Diagnostics print to stdout, one line each, prefixed with the file name.
//
// Exit status: 0 when no file produced an error-severity finding (warnings
// and notes are fine; --level off merely parses), 1 when any did, 2 on
// usage or parse failure.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/lint.hpp"
#include "arcade/modules_compiler.hpp"
#include "arcade/xml_io.hpp"
#include "prism/prism_parser.hpp"
#include "support/errors.hpp"

namespace analysis = arcade::analysis;

namespace {

bool ends_with(const std::string& s, const std::string& suffix) {
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::string read_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw arcade::ModelError("cannot open '" + path + "'");
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

/// Lints one file; returns its report.  Throws on parse failure.
analysis::LintReport lint_file(const std::string& path) {
    analysis::LintOptions options;
    arcade::modules::ModuleSystem system;
    if (ends_with(path, ".xml")) {
        system = arcade::core::to_reactive_modules(arcade::core::load_model(path));
    } else {
        arcade::prism::PrismParseInfo info;
        system = arcade::prism::parse_prism(read_file(path), &info);
        options.unused_formulas = std::move(info.unused_formulas);
    }
    return analysis::lint(system, options);
}

}  // namespace

int main(int argc, char** argv) {
    analysis::LintLevel level = analysis::default_lint_level();
    std::vector<std::string> paths;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--level" && i + 1 < argc) {
            const auto parsed = analysis::parse_lint_level(argv[++i]);
            if (!parsed) {
                std::cerr << "arcade_lint: unknown level '" << argv[i]
                          << "' (expected off, warn or error)\n";
                return 2;
            }
            level = *parsed;
        } else if (arg == "--help" || arg == "-h") {
            std::cout << "usage: arcade_lint [--level off|warn|error] <model.xml|model.prism>...\n";
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "arcade_lint: unknown option '" << arg << "'\n";
            return 2;
        } else {
            paths.push_back(arg);
        }
    }
    if (paths.empty()) {
        std::cerr << "usage: arcade_lint [--level off|warn|error] <model.xml|model.prism>...\n";
        return 2;
    }

    int errors = 0;
    int warnings = 0;
    for (const auto& path : paths) {
        analysis::LintReport report;
        try {
            report = lint_file(path);
        } catch (const std::exception& e) {
            std::cerr << path << ": " << e.what() << "\n";
            return 2;
        }
        if (level == analysis::LintLevel::Off) continue;
        errors += report.errors;
        warnings += report.warnings + report.notes;
        for (const auto& d : report.diagnostics) {
            std::cout << path << ": " << d.to_string() << "\n";
        }
    }
    std::printf("%zu file(s) checked, %d error(s), %d warning(s)\n", paths.size(),
                errors, warnings);
    return level != analysis::LintLevel::Off && errors > 0 ? 1 : 0;
}
