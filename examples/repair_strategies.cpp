// Compare repair strategies on a user-defined system — the paper's workflow
// applied to a different architecture (a small data centre), showing that
// the library is not hard-wired to the water-treatment model.
//
// Architecture: 2 web servers (both needed for full capacity), 3 disks
// (2+1 hot spare), 1 network switch.
#include <cstdio>
#include <iostream>

#include "arcade/compiler.hpp"
#include "arcade/measures.hpp"
#include "engine/session.hpp"
#include "support/series.hpp"

namespace core = arcade::core;

namespace {

core::ArcadeModel data_centre(core::RepairPolicy policy, std::size_t crews) {
    core::ModelBuilder builder("datacentre");
    builder.add_redundant_phase("web", 2, /*mttf=*/800.0, /*mttr=*/4.0);
    builder.add_spare_phase("disk", /*total=*/3, /*required=*/2, /*mttf=*/1200.0,
                            /*mttr=*/24.0);
    builder.add_redundant_phase("switch", 1, /*mttf=*/4000.0, /*mttr=*/2.0);
    builder.with_repair(policy, crews);
    return builder.build();
}

}  // namespace

int main() {
    std::cout << "Repair-strategy comparison on a small data centre\n\n";
    auto& session = arcade::engine::AnalysisSession::global();

    struct Candidate {
        const char* name;
        core::RepairPolicy policy;
        std::size_t crews;
    };
    const Candidate candidates[] = {
        {"DED", core::RepairPolicy::Dedicated, 1},
        {"FCFS-1", core::RepairPolicy::FirstComeFirstServe, 1},
        {"FRF-1", core::RepairPolicy::FastestRepairFirst, 1},
        {"FRF-2", core::RepairPolicy::FastestRepairFirst, 2},
        {"FFF-1", core::RepairPolicy::FastestFailureFirst, 1},
        {"FFF-2", core::RepairPolicy::FastestFailureFirst, 2},
    };

    // Disaster: both web servers and one disk down.
    core::Disaster disaster;
    disaster.name = "web-outage";
    disaster.failed_per_phase = {2, 1, 0};

    arcade::Table table({"Strategy", "States", "Availability", "P(full svc in 12h)",
                         "E[cost 24h]", "SS cost/h"});
    char buf[64];
    for (const auto& c : candidates) {
        const auto compiled = session.compile(data_centre(c.policy, c.crews));
        std::vector<std::string> cells{c.name, std::to_string(compiled->state_count())};
        std::snprintf(buf, sizeof buf, "%.6f", core::availability(session, compiled));
        cells.emplace_back(buf);
        std::snprintf(buf, sizeof buf, "%.4f",
                      core::survivability(*compiled, disaster, 1.0, 12.0));
        cells.emplace_back(buf);
        const std::vector<double> day{0.0, 24.0};
        std::snprintf(buf, sizeof buf, "%.2f",
                      core::accumulated_cost_series(*compiled, disaster, day,
                                    core::session_transient(session)).back());
        cells.emplace_back(buf);
        std::snprintf(buf, sizeof buf, "%.3f", core::steady_state_cost(session, compiled));
        cells.emplace_back(buf);
        table.add_row(std::move(cells));
    }
    table.print(std::cout);

    std::cout << "\nReading the table: DED buys the fastest recovery at the highest\n"
                 "steady-state cost (idle crews); FRF-2 is the sweet spot, exactly\n"
                 "as the paper concludes for the water-treatment facility.\n";
    return 0;
}
