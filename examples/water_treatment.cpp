// The paper's full case study in one run: builds both process lines, prints
// the state spaces, availabilities (Table 1/2), the service intervals, and
// a compact survivability/cost summary for both disasters.
#include <cstdio>
#include <iostream>

#include "arcade/compiler.hpp"
#include "engine/session.hpp"
#include "arcade/measures.hpp"
#include "support/series.hpp"
#include "watertree/watertree.hpp"

namespace core = arcade::core;
namespace wt = arcade::watertree;

int main() {
    auto& session = arcade::engine::AnalysisSession::global();
    std::cout << "Water-treatment facility (DSN 2010 case study)\n";
    std::cout << "==============================================\n\n";

    core::CompileOptions lumped;
    lumped.encoding = core::Encoding::Lumped;

    arcade::Table summary(
        {"Strategy", "L1 states", "L2 states", "Avail L1", "Avail L2", "Combined"});
    char buf[64];
    for (const auto& strat : wt::paper_strategies()) {
        const auto l1 = session.compile(wt::line1(strat));
        const auto l2 = session.compile(wt::line2(strat));
        const double a1 = core::availability(session, session.compile(wt::line1(strat), lumped));
        const double a2 = core::availability(session, session.compile(wt::line2(strat), lumped));
        std::vector<std::string> cells{strat.name, std::to_string(l1->state_count()),
                                       std::to_string(l2->state_count())};
        std::snprintf(buf, sizeof buf, "%.7f", a1);
        cells.emplace_back(buf);
        std::snprintf(buf, sizeof buf, "%.7f", a2);
        cells.emplace_back(buf);
        std::snprintf(buf, sizeof buf, "%.7f", core::combined_availability(a1, a2));
        cells.emplace_back(buf);
        summary.add_row(std::move(cells));
    }
    summary.print(std::cout);

    std::cout << "\nService intervals (lower bounds):\n";
    for (const auto* line : {"line1", "line2"}) {
        const auto model = std::string(line) == "line1"
                               ? wt::line1(wt::paper_strategies()[0])
                               : wt::line2(wt::paper_strategies()[0]);
        std::cout << "  " << line << ": ";
        for (double x : wt::service_interval_bounds(model)) std::cout << x << " ";
        std::cout << "\n";
    }

    std::cout << "\nDisaster recovery (P within t, and accumulated cost):\n";
    const auto frf2_l1 = session.compile(wt::line1(wt::paper_strategies()[2]), lumped);
    const auto d1 = wt::disaster1(frf2_l1->model());
    std::cout << "  line 1, disaster 1 (all pumps), FRF-2:\n";
    std::cout << "    P(service>=1/3 within 1h)  = "
              << core::survivability(*frf2_l1, d1, 1.0 / 3.0, 1.0) << "\n";
    std::cout << "    P(full service within 4.5h) = "
              << core::survivability(*frf2_l1, d1, 1.0, 4.5) << "\n";
    const std::vector<double> ten_hours{0.0, 10.0};
    std::cout << "    E[cost over 10h]            = "
              << core::accumulated_cost_series(*frf2_l1, d1, ten_hours,
                                           core::session_transient(session)).back() << "\n";

    const auto frf2_l2 = session.compile(wt::line2(wt::paper_strategies()[2]), lumped);
    const auto d2 = wt::disaster2();
    std::cout << "  line 2, disaster 2 (2 pumps + softener + filter + reservoir), FRF-2:\n";
    std::cout << "    P(service>=1/3 within 20h)  = "
              << core::survivability(*frf2_l2, d2, 1.0 / 3.0, 20.0) << "\n";
    std::cout << "    P(service>=2/3 within 100h) = "
              << core::survivability(*frf2_l2, d2, 2.0 / 3.0, 100.0) << "\n";
    const std::vector<double> fifty_hours{0.0, 50.0};
    std::cout << "    E[cost over 50h]            = "
              << core::accumulated_cost_series(*frf2_l2, d2, fifty_hours,
                                           core::session_transient(session)).back() << "\n";

    const auto stats = session.stats();
    std::cout << "\nsession cache: " << stats.compile_misses << " compiles, "
              << stats.compile_hits << " hits\n";
    std::cout << "\nPaper conclusion check: FRF-2 combines near-dedicated availability\n"
                 "with two crews instead of one crew per component.\n";
    return 0;
}
