// CSL / CSRL formulas and their model checker over labelled CTMCs.
//
// Supported grammar (PRISM-flavoured):
//   state formula  ::= true | false | "label" | !f | f & f | f | f
//                    | P bound [ path ] | S bound [ f ] | R{"name"} bound [ rprop ]
//   bound          ::= =? | <p | <=p | >p | >=p
//   path           ::= X f | f U f | f U<=t f | F f | F<=t f | G<=t f
//   rprop          ::= I=t | C<=t | S
//
// Quantitative queries (=?) are evaluated against the chain's initial
// distribution; boolean bounds compare that value.  Nested P/S/R operators
// are supported by evaluating the inner query per state (satisfaction sets).
#ifndef ARCADE_LOGIC_CSL_HPP
#define ARCADE_LOGIC_CSL_HPP

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "ctmc/ctmc.hpp"
#include "rewards/rewards.hpp"

namespace arcade::logic {

enum class Comparison { Query, Lt, Le, Gt, Ge };

struct Bound {
    Comparison comparison = Comparison::Query;
    double threshold = 0.0;
};

class StateFormula;
using StateFormulaPtr = std::shared_ptr<const StateFormula>;

/// Path formulas for the P operator.
struct NextPath {
    StateFormulaPtr operand;
};
struct UntilPath {
    StateFormulaPtr lhs;
    StateFormulaPtr rhs;
    std::optional<double> time_bound;  ///< nullopt = unbounded
};
using PathFormula = std::variant<NextPath, UntilPath>;

/// Reward properties for the R operator.
struct InstantaneousReward {
    double time = 0.0;
};
struct CumulativeReward {
    double time = 0.0;
};
struct SteadyStateReward {};
using RewardProperty =
    std::variant<InstantaneousReward, CumulativeReward, SteadyStateReward>;

/// State formula node.
struct BoolLiteral {
    bool value = true;
};
struct Label {
    std::string name;
};
struct Negation {
    StateFormulaPtr operand;
};
struct Conjunction {
    StateFormulaPtr lhs;
    StateFormulaPtr rhs;
};
struct Disjunction {
    StateFormulaPtr lhs;
    StateFormulaPtr rhs;
};
struct Probabilistic {
    Bound bound;
    PathFormula path;
};
struct SteadyState {
    Bound bound;
    StateFormulaPtr operand;
};
struct Reward {
    std::string structure;  ///< reward structure name; empty = the only one
    Bound bound;
    RewardProperty property;
};

class StateFormula {
public:
    using Node = std::variant<BoolLiteral, Label, Negation, Conjunction, Disjunction,
                              Probabilistic, SteadyState, Reward>;

    explicit StateFormula(Node node) : node_(std::move(node)) {}
    [[nodiscard]] const Node& node() const noexcept { return node_; }

private:
    Node node_;
};

/// Result of checking a formula: quantitative queries yield `value`,
/// boolean formulas yield `holds` (w.r.t. the initial distribution:
/// a boolean state formula holds iff it holds with probability 1 under the
/// initial distribution).
struct CheckResult {
    std::optional<double> value;
    std::optional<bool> holds;
    std::vector<bool> satisfaction;  ///< per-state satisfaction (boolean formulas)
    std::vector<double> values;      ///< per-state values (quantitative formulas)
};

struct CheckerOptions {
    double epsilon = 1e-12;
    std::map<std::string, rewards::RewardStructure> reward_structures;
};

/// Registry type the checker resolves R{"name"} structures from.  The
/// evaluation context carries one of these by reference — structures are
/// never copied or re-looked-up per recursion level.
using RewardRegistry = std::map<std::string, rewards::RewardStructure>;

/// Validates checker options and the formula's numeric literals before any
/// solver runs: epsilon must lie in (0, 1); P/S thresholds must be finite
/// probabilities in [0, 1]; R thresholds, U/F/G time bounds and reward times
/// must be finite and non-negative.  Malformed values throw InvalidArgument
/// (the library-wide taxonomy for caller mistakes) — never ModelError, which
/// is reserved for chains structurally unsuited to a query.
void validate(const CheckerOptions& options);
void validate(const StateFormula& formula);

/// Canonical textual form of a formula, re-parsable by parse_csl: binary
/// operators fully parenthesised, numbers printed round-trip exact (%.17g).
/// parse → print → parse is the identity on the AST (G re-parses via its
/// Until desugaring), which the round-trip tests pin for every formula in
/// watertree::properties.
[[nodiscard]] std::string to_string(const StateFormula& formula);

/// Structural fingerprint of a formula (FNV-1a over the canonical printed
/// form).  `seed` selects an independent hash stream, mirroring
/// engine::fingerprint: property caches store a second-stream check value
/// and verify it on every hit.
[[nodiscard]] std::uint64_t fingerprint(const StateFormula& formula,
                                        std::uint64_t seed = 0);

/// True when the formula contains a Next (X) path operator anywhere.  Next
/// reads jump probabilities, which depend on intra-block rates that ordinary
/// lumpability leaves unconstrained — the quotient-aware checker falls back
/// to the full chain for such formulas.
[[nodiscard]] bool contains_next(const StateFormula& formula);

/// Parses the textual CSL/CSRL syntax, e.g.
///   P=? [ true U<=100 "down" ]
///   S=? [ "operational" ]
///   R{"cost"}=? [ C<=10 ]
///   P>=0.99 [ F<=24 "recovered" ]
[[nodiscard]] StateFormulaPtr parse_csl(const std::string& text);

/// Model-checks `formula` on `chain`.
[[nodiscard]] CheckResult check(const ctmc::Ctmc& chain, const StateFormula& formula,
                                const CheckerOptions& options = {});

/// Convenience: parse then check.
[[nodiscard]] CheckResult check(const ctmc::Ctmc& chain, const std::string& formula,
                                const CheckerOptions& options = {});

}  // namespace arcade::logic

#endif  // ARCADE_LOGIC_CSL_HPP
