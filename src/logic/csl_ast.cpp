// AST utilities for CSL/CSRL formulas: the canonical printer (round-trip
// exact with the parser), the structural fingerprint the property caches
// key on, validation of numeric literals, and the Next scan the
// quotient-aware checker uses to fall back to the full chain.
#include <cmath>
#include <cstdio>

#include "graph/lumping.hpp"
#include "logic/csl.hpp"
#include "support/errors.hpp"

namespace arcade::logic {

namespace {

/// Round-trip-exact decimal form (matches the sweep exports' fmt()).
std::string fmt(double v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

std::string bound_string(const Bound& b) {
    switch (b.comparison) {
        case Comparison::Query: return "=?";
        case Comparison::Lt: return "<" + fmt(b.threshold);
        case Comparison::Le: return "<=" + fmt(b.threshold);
        case Comparison::Gt: return ">" + fmt(b.threshold);
        case Comparison::Ge: return ">=" + fmt(b.threshold);
    }
    throw InvalidArgument("unknown Comparison");
}

std::string path_string(const PathFormula& path) {
    if (const auto* next = std::get_if<NextPath>(&path)) {
        return "X " + to_string(*next->operand);
    }
    const auto& until = std::get<UntilPath>(path);
    std::string out = to_string(*until.lhs) + " U";
    if (until.time_bound) out += "<=" + fmt(*until.time_bound);
    return out + " " + to_string(*until.rhs);
}

void validate_bound(const Bound& b, bool probability) {
    if (b.comparison == Comparison::Query) return;
    if (!std::isfinite(b.threshold) || b.threshold < 0.0 ||
        (probability && b.threshold > 1.0)) {
        throw InvalidArgument(
            std::string("CSL: ") + (probability ? "P/S" : "R") + " bound threshold " +
            fmt(b.threshold) + (probability ? " is not a probability in [0, 1]"
                                            : " must be finite and non-negative"));
    }
}

void validate_time(double t, const char* what) {
    if (!std::isfinite(t) || t < 0.0) {
        throw InvalidArgument("CSL: " + std::string(what) + " " + fmt(t) +
                              " must be finite and non-negative");
    }
}

}  // namespace

std::string to_string(const StateFormula& formula) {
    if (const auto* lit = std::get_if<BoolLiteral>(&formula.node())) {
        return lit->value ? "true" : "false";
    }
    if (const auto* label = std::get_if<Label>(&formula.node())) {
        return "\"" + label->name + "\"";
    }
    if (const auto* neg = std::get_if<Negation>(&formula.node())) {
        return "!" + to_string(*neg->operand);
    }
    if (const auto* con = std::get_if<Conjunction>(&formula.node())) {
        return "(" + to_string(*con->lhs) + " & " + to_string(*con->rhs) + ")";
    }
    if (const auto* dis = std::get_if<Disjunction>(&formula.node())) {
        return "(" + to_string(*dis->lhs) + " | " + to_string(*dis->rhs) + ")";
    }
    if (const auto* prob = std::get_if<Probabilistic>(&formula.node())) {
        return "P" + bound_string(prob->bound) + " [ " + path_string(prob->path) + " ]";
    }
    if (const auto* ss = std::get_if<SteadyState>(&formula.node())) {
        return "S" + bound_string(ss->bound) + " [ " + to_string(*ss->operand) + " ]";
    }
    const auto& reward = std::get<Reward>(formula.node());
    std::string out = "R";
    if (!reward.structure.empty()) out += "{\"" + reward.structure + "\"}";
    out += bound_string(reward.bound) + " [ ";
    if (const auto* inst = std::get_if<InstantaneousReward>(&reward.property)) {
        out += "I=" + fmt(inst->time);
    } else if (const auto* cum = std::get_if<CumulativeReward>(&reward.property)) {
        out += "C<=" + fmt(cum->time);
    } else {
        out += "S";
    }
    return out + " ]";
}

std::uint64_t fingerprint(const StateFormula& formula, std::uint64_t seed) {
    // The canonical printed form IS the structure (round-trip exact), so
    // hashing it fingerprints the AST; the word mixing is shared with the
    // engine's model fingerprints.
    std::uint64_t h = graph::fnv1a_mix(graph::kFnv1aBasis, seed ^ 0x9e3779b97f4a7c15ull);
    for (const char c : to_string(formula)) {
        h = graph::fnv1a_mix(h, static_cast<unsigned char>(c));
    }
    return h;
}

bool contains_next(const StateFormula& formula) {
    if (const auto* neg = std::get_if<Negation>(&formula.node())) {
        return contains_next(*neg->operand);
    }
    if (const auto* con = std::get_if<Conjunction>(&formula.node())) {
        return contains_next(*con->lhs) || contains_next(*con->rhs);
    }
    if (const auto* dis = std::get_if<Disjunction>(&formula.node())) {
        return contains_next(*dis->lhs) || contains_next(*dis->rhs);
    }
    if (const auto* prob = std::get_if<Probabilistic>(&formula.node())) {
        if (const auto* next = std::get_if<NextPath>(&prob->path)) {
            (void)next;
            return true;
        }
        const auto& until = std::get<UntilPath>(prob->path);
        return contains_next(*until.lhs) || contains_next(*until.rhs);
    }
    if (const auto* ss = std::get_if<SteadyState>(&formula.node())) {
        return contains_next(*ss->operand);
    }
    return false;  // literals, labels, rewards
}

void validate(const CheckerOptions& options) {
    if (!std::isfinite(options.epsilon) || options.epsilon <= 0.0 ||
        options.epsilon >= 1.0) {
        throw InvalidArgument("CSL: CheckerOptions::epsilon must lie in (0, 1), got " +
                              fmt(options.epsilon));
    }
}

void validate(const StateFormula& formula) {
    if (const auto* neg = std::get_if<Negation>(&formula.node())) {
        validate(*neg->operand);
        return;
    }
    if (const auto* con = std::get_if<Conjunction>(&formula.node())) {
        validate(*con->lhs);
        validate(*con->rhs);
        return;
    }
    if (const auto* dis = std::get_if<Disjunction>(&formula.node())) {
        validate(*dis->lhs);
        validate(*dis->rhs);
        return;
    }
    if (const auto* prob = std::get_if<Probabilistic>(&formula.node())) {
        validate_bound(prob->bound, /*probability=*/true);
        if (const auto* next = std::get_if<NextPath>(&prob->path)) {
            validate(*next->operand);
            return;
        }
        const auto& until = std::get<UntilPath>(prob->path);
        if (until.time_bound) validate_time(*until.time_bound, "until time bound");
        validate(*until.lhs);
        validate(*until.rhs);
        return;
    }
    if (const auto* ss = std::get_if<SteadyState>(&formula.node())) {
        validate_bound(ss->bound, /*probability=*/true);
        validate(*ss->operand);
        return;
    }
    if (const auto* reward = std::get_if<Reward>(&formula.node())) {
        validate_bound(reward->bound, /*probability=*/false);
        if (const auto* inst = std::get_if<InstantaneousReward>(&reward->property)) {
            validate_time(inst->time, "instantaneous-reward time");
        } else if (const auto* cum = std::get_if<CumulativeReward>(&reward->property)) {
            validate_time(cum->time, "cumulative-reward horizon");
        }
        return;
    }
}

}  // namespace arcade::logic
