// CSL/CSRL model-checking engine (see csl.hpp for the supported grammar,
// csl_compiled.hpp for the reduction-aware path over compiled models).
//
// One recursive evaluator serves both entry points: the raw overloads run
// it on a bare chain with the caller's reward registry; the compiled
// overloads run it on the model's strong-bisimulation quotient under
// ReductionPolicy::Auto (full chain otherwise, or when the formula contains
// Next), resolve rewards from the model, reuse the session's cached
// steady-state solve for top-level S/R[S] queries, and lift the per-state
// results back to the full state space.
#include <algorithm>
#include <cmath>

#include "ctmc/bounded_until.hpp"
#include "ctmc/steady_state.hpp"
#include "linalg/vector_ops.hpp"
#include "logic/csl.hpp"
#include "logic/csl_compiled.hpp"
#include "support/errors.hpp"

namespace arcade::logic {

namespace {

/// Everything one recursive evaluation reads: the chain to analyse (a full
/// chain or a quotient chain — the recursion cannot tell), the resolved
/// reward registry (by reference: structures are never copied or re-looked-
/// up per recursion level) and the numeric tolerance.  When the evaluation
/// runs on a quotient chain, `quotient`/`projected` are set and reward
/// structures project lazily at use site — only a formula that actually
/// reads a structure pays (or fails) its projection.
struct Context {
    const ctmc::Ctmc& chain;
    const RewardRegistry& rewards;  ///< full-chain sized structures
    double epsilon = 1e-12;
    const ctmc::QuotientCtmc* quotient = nullptr;
    RewardRegistry* projected = nullptr;  ///< per-evaluation projection cache
};

/// Evaluation result inside the recursion: either a satisfaction set or a
/// per-state value vector (for quantitative sub-queries).
struct Evaluated {
    std::vector<bool> sat;
    std::vector<double> values;
    bool quantitative = false;
};

Evaluated eval(const Context& ctx, const StateFormula& f);

std::vector<bool> eval_boolean(const Context& ctx, const StateFormula& f) {
    Evaluated e = eval(ctx, f);
    if (e.quantitative) {
        throw ModelError("expected a boolean sub-formula but found a =? query");
    }
    return e.sat;
}

bool compare(Comparison cmp, double value, double threshold) {
    switch (cmp) {
        case Comparison::Lt: return value < threshold;
        case Comparison::Le: return value <= threshold;
        case Comparison::Gt: return value > threshold;
        case Comparison::Ge: return value >= threshold;
        case Comparison::Query: break;
    }
    throw ModelError("query bound used where a comparison is required");
}

const rewards::RewardStructure& find_reward(const Context& ctx, const std::string& name) {
    const RewardRegistry& all = ctx.rewards;
    if (all.empty()) throw ModelError("no reward structures registered with the checker");
    RewardRegistry::const_iterator it;
    if (name.empty()) {
        if (all.size() != 1) {
            throw ModelError("multiple reward structures: name one explicitly, R{\"name\"}");
        }
        it = all.begin();
    } else {
        it = all.find(name);
        if (it == all.end()) throw ModelError("unknown reward structure '" + name + "'");
    }
    if (ctx.quotient == nullptr) return it->second;
    // Quotient substrate: project on first use and cache per evaluation.
    const auto cached = ctx.projected->find(it->first);
    if (cached != ctx.projected->end()) return cached->second;
    return ctx.projected
        ->emplace(it->first,
                  rewards::RewardStructure(
                      it->second.name(),
                      ctx.quotient->project_values(it->second.state_rates())))
        .first->second;
}

/// Per-state probabilities for a path formula.
std::vector<double> path_probabilities(const Context& ctx, const PathFormula& path) {
    const std::size_t n = ctx.chain.state_count();
    if (const auto* next = std::get_if<NextPath>(&path)) {
        const std::vector<bool> target = eval_boolean(ctx, *next->operand);
        // P(X f) from state s = sum over f-successors rate / exit (embedded jump).
        std::vector<double> out(n, 0.0);
        for (std::size_t s = 0; s < n; ++s) {
            const double exit = ctx.chain.exit_rate(s);
            if (exit <= 0.0) continue;  // absorbing: no next state
            const auto cols = ctx.chain.rates().row_columns(s);
            const auto vals = ctx.chain.rates().row_values(s);
            double p = 0.0;
            for (std::size_t k = 0; k < cols.size(); ++k) {
                if (cols[k] != s && target[cols[k]]) p += vals[k];
            }
            out[s] = p / exit;
        }
        return out;
    }
    const auto& until = std::get<UntilPath>(path);
    const std::vector<bool> phi = eval_boolean(ctx, *until.lhs);
    const std::vector<bool> psi = eval_boolean(ctx, *until.rhs);
    if (until.time_bound) {
        ctmc::TransientOptions topt;
        topt.epsilon = ctx.epsilon;
        return ctmc::bounded_until_all_states(ctx.chain, phi, psi, *until.time_bound, topt);
    }
    return ctmc::reachability_probability(ctx.chain, phi, psi);
}

Evaluated eval(const Context& ctx, const StateFormula& f) {
    const std::size_t n = ctx.chain.state_count();
    Evaluated out;

    if (const auto* lit = std::get_if<BoolLiteral>(&f.node())) {
        out.sat.assign(n, lit->value);
        return out;
    }
    if (const auto* label = std::get_if<Label>(&f.node())) {
        out.sat = ctx.chain.label(label->name);
        return out;
    }
    if (const auto* neg = std::get_if<Negation>(&f.node())) {
        Evaluated inner = eval(ctx, *neg->operand);
        if (inner.quantitative) {
            // numeric complement: 1 - value (used for the G duality)
            out.quantitative = true;
            out.values.resize(n);
            for (std::size_t s = 0; s < n; ++s) out.values[s] = 1.0 - inner.values[s];
            return out;
        }
        out.sat.resize(n);
        for (std::size_t s = 0; s < n; ++s) out.sat[s] = !inner.sat[s];
        return out;
    }
    if (const auto* con = std::get_if<Conjunction>(&f.node())) {
        const auto a = eval_boolean(ctx, *con->lhs);
        const auto b = eval_boolean(ctx, *con->rhs);
        out.sat.resize(n);
        for (std::size_t s = 0; s < n; ++s) out.sat[s] = a[s] && b[s];
        return out;
    }
    if (const auto* dis = std::get_if<Disjunction>(&f.node())) {
        const auto a = eval_boolean(ctx, *dis->lhs);
        const auto b = eval_boolean(ctx, *dis->rhs);
        out.sat.resize(n);
        for (std::size_t s = 0; s < n; ++s) out.sat[s] = a[s] || b[s];
        return out;
    }
    if (const auto* prob = std::get_if<Probabilistic>(&f.node())) {
        const std::vector<double> p = path_probabilities(ctx, prob->path);
        if (prob->bound.comparison == Comparison::Query) {
            out.quantitative = true;
            out.values = p;
            return out;
        }
        out.sat.resize(n);
        for (std::size_t s = 0; s < n; ++s) {
            out.sat[s] = compare(prob->bound.comparison, p[s], prob->bound.threshold);
        }
        return out;
    }
    if (const auto* ss = std::get_if<SteadyState>(&f.node())) {
        const std::vector<bool> target = eval_boolean(ctx, *ss->operand);
        // S applies to the chain as a whole (from the initial distribution).
        const double value = ctmc::steady_state_probability(ctx.chain, target);
        if (ss->bound.comparison == Comparison::Query) {
            out.quantitative = true;
            out.values.assign(n, value);
            return out;
        }
        out.sat.assign(n, compare(ss->bound.comparison, value, ss->bound.threshold));
        return out;
    }
    const auto& reward = std::get<Reward>(f.node());
    const rewards::RewardStructure& structure = find_reward(ctx, reward.structure);
    ctmc::TransientOptions topt;
    topt.epsilon = ctx.epsilon;

    std::vector<double> values(n, 0.0);
    if (const auto* inst = std::get_if<InstantaneousReward>(&reward.property)) {
        for (std::size_t s = 0; s < n; ++s) {
            const auto init = ctmc::Ctmc::point_distribution(n, s);
            values[s] = rewards::instantaneous_reward(ctx.chain, init, structure, inst->time, topt);
        }
    } else if (const auto* cum = std::get_if<CumulativeReward>(&reward.property)) {
        for (std::size_t s = 0; s < n; ++s) {
            const auto init = ctmc::Ctmc::point_distribution(n, s);
            values[s] = rewards::accumulated_reward(ctx.chain, init, structure, cum->time, topt);
        }
    } else {
        const double v = rewards::steady_state_reward(ctx.chain, structure);
        values.assign(n, v);
    }
    if (reward.bound.comparison == Comparison::Query) {
        out.quantitative = true;
        out.values = std::move(values);
        return out;
    }
    out.sat.resize(n);
    for (std::size_t s = 0; s < n; ++s) {
        out.sat[s] = compare(reward.bound.comparison, values[s], reward.bound.threshold);
    }
    return out;
}

CheckResult finish(const Evaluated& e, std::span<const double> initial) {
    CheckResult result;
    if (e.quantitative) {
        result.values = e.values;
        result.value = linalg::dot(initial, e.values);
    } else {
        result.satisfaction = e.sat;
        double mass = 0.0;
        for (std::size_t s = 0; s < e.sat.size(); ++s) {
            if (e.sat[s]) mass += initial[s];
        }
        result.holds = mass > 1.0 - 1e-12;
    }
    return result;
}

// ---------------------------------------------------------------------------
// Compiled-model path (csl_compiled.hpp)
// ---------------------------------------------------------------------------

/// What the compiled-path evaluation runs on: the model's quotient under
/// ReductionPolicy::Auto, the full chain otherwise.  The reward registry
/// always holds full-chain structures — projection happens lazily inside
/// find_reward (into `projected`), so an unreferenced caller structure that
/// is not block-constant never aborts an unrelated check.
struct Substrate {
    std::shared_ptr<const ctmc::QuotientCtmc> quotient;  ///< null = full chain
    const ctmc::Ctmc* chain = nullptr;
    RewardRegistry rewards;    ///< model's cost reward + caller structures
    RewardRegistry projected;  ///< lazily projected copies (quotient runs)

    [[nodiscard]] Context context(double epsilon) {
        return Context{*chain, rewards, epsilon, quotient.get(), &projected};
    }
};

Substrate make_substrate(engine::AnalysisSession& session,
                         const engine::AnalysisSession::CompiledPtr& model,
                         const StateFormula& formula, const CheckerOptions& options) {
    Substrate sub;
    // Next reads jump probabilities, which intra-block rates (unconstrained
    // by ordinary lumpability) can change between bisimilar states — fall
    // back to the full chain for such formulas.
    const bool reduce = model->reduction() == core::ReductionPolicy::Auto &&
                        !contains_next(formula);
    if (reduce) {
        sub.quotient = session.quotient(model);
        sub.chain = &sub.quotient->chain();
    } else {
        sub.chain = &model->chain();
    }
    sub.rewards.emplace(model->cost_reward().name(), model->cost_reward());
    for (const auto& [name, structure] : options.reward_structures) {
        sub.rewards.insert_or_assign(name, structure);
    }
    return sub;
}

/// Shapes a chain-global scalar (steady-state query) into a CheckResult the
/// way the recursive evaluator would: uniform per-state vectors.
CheckResult global_scalar_result(double value, const Bound& bound, std::size_t n) {
    CheckResult result;
    if (bound.comparison == Comparison::Query) {
        result.value = value;
        result.values.assign(n, value);
    } else {
        const bool ok = compare(bound.comparison, value, bound.threshold);
        result.holds = ok;
        result.satisfaction.assign(n, ok);
    }
    return result;
}

}  // namespace

CheckResult check(const ctmc::Ctmc& chain, const StateFormula& formula,
                  const CheckerOptions& options) {
    validate(options);
    validate(formula);
    const Context ctx{chain, options.reward_structures, options.epsilon};
    return finish(eval(ctx, formula), chain.initial_distribution());
}

CheckResult check(const ctmc::Ctmc& chain, const std::string& formula,
                  const CheckerOptions& options) {
    return check(chain, *parse_csl(formula), options);
}

CheckResult check(engine::AnalysisSession& session,
                  const engine::AnalysisSession::CompiledPtr& model,
                  const StateFormula& formula, const CheckerOptions& options) {
    ARCADE_ASSERT(model != nullptr, "CSL check of a null model");
    validate(options);
    validate(formula);
    const std::size_t n = model->state_count();

    // Top-level steady-state queries reuse the session's cached solve — the
    // exact distribution (and summation order) the availability and
    // long-run-cost measures use, so S=?["operational"] IS the availability.
    if (const auto* ss = std::get_if<SteadyState>(&formula.node())) {
        Substrate sub = make_substrate(session, model, *ss->operand, options);
        const Context ctx = sub.context(options.epsilon);
        std::vector<bool> target = eval_boolean(ctx, *ss->operand);
        if (sub.quotient != nullptr) target = sub.quotient->lift_mask(target);
        const auto pi = session.steady_state(model);
        double value = 0.0;
        for (std::size_t s = 0; s < n; ++s) {
            if (target[s]) value += (*pi)[s];
        }
        return global_scalar_result(value, ss->bound, n);
    }
    if (const auto* reward = std::get_if<Reward>(&formula.node())) {
        if (std::holds_alternative<SteadyStateReward>(reward->property)) {
            // Full-chain registry: the dot against the cached (lifted)
            // distribution is the steady-state-cost measure verbatim.
            RewardRegistry registry;
            registry.emplace(model->cost_reward().name(), model->cost_reward());
            for (const auto& [name, structure] : options.reward_structures) {
                registry.insert_or_assign(name, structure);
            }
            const Context ctx{model->chain(), registry, options.epsilon};
            const auto& structure = find_reward(ctx, reward->structure);
            const auto pi = session.steady_state(model);
            const double value = linalg::dot(*pi, structure.state_rates());
            return global_scalar_result(value, reward->bound, n);
        }
    }

    Substrate sub = make_substrate(session, model, formula, options);
    const Context ctx = sub.context(options.epsilon);
    Evaluated e = eval(ctx, formula);
    if (sub.quotient != nullptr) {
        // Per-state CSL functionals are block-constant on bisimilar states:
        // the lift copies each block's value/bit to its members.
        if (e.quantitative) {
            e.values = sub.quotient->lift_values(e.values);
        } else {
            e.sat = sub.quotient->lift_mask(e.sat);
        }
    }
    return finish(e, model->chain().initial_distribution());
}

CheckResult check(engine::AnalysisSession& session,
                  const engine::AnalysisSession::CompiledPtr& model,
                  const std::string& formula, const CheckerOptions& options) {
    return check(session, model, *parse_csl(formula), options);
}

std::vector<double> check_series(engine::AnalysisSession& session,
                                 const engine::AnalysisSession::CompiledPtr& model,
                                 const StateFormula& formula,
                                 std::span<const double> times,
                                 std::span<const double> initial,
                                 const CheckerOptions& options) {
    ARCADE_ASSERT(model != nullptr, "CSL series check of a null model");
    validate(options);
    validate(formula);
    if (initial.size() != model->state_count()) {
        throw InvalidArgument("check_series: initial distribution size mismatch");
    }

    // A leading Negation is the parser's G<=t desugaring: evaluate the dual
    // query and complement the values (1 - p), like the reliability measure.
    const StateFormula* f = &formula;
    bool complement = false;
    if (const auto* neg = std::get_if<Negation>(&formula.node())) {
        f = neg->operand.get();
        complement = true;
    }

    Substrate sub = make_substrate(session, model, *f, options);
    const Context ctx = sub.context(options.epsilon);
    const std::vector<double> init =
        sub.quotient != nullptr ? sub.quotient->project(initial)
                                : std::vector<double>(initial.begin(), initial.end());
    ctmc::TransientOptions topt;
    topt.epsilon = options.epsilon;
    topt.workspace = &session.workspace();

    std::vector<double> values;
    if (const auto* prob = std::get_if<Probabilistic>(&f->node())) {
        const auto* until = std::get_if<UntilPath>(&prob->path);
        if (prob->bound.comparison != Comparison::Query || until == nullptr ||
            !until->time_bound) {
            throw InvalidArgument(
                "check_series: the top level must be a time-bounded quantitative query "
                "(P=? [ phi U<=t psi ], R=? [ I=t ], R=? [ C<=t ], optionally negated)");
        }
        // The formula's own bound is nominal; each grid point replaces it,
        // all advanced by one shared evolver — the survivability/reliability
        // measure kernels verbatim.
        const std::vector<bool> phi = eval_boolean(ctx, *until->lhs);
        const std::vector<bool> psi = eval_boolean(ctx, *until->rhs);
        values = ctmc::bounded_until_series(*sub.chain, init, phi, psi, times, topt);
    } else if (const auto* reward = std::get_if<Reward>(&f->node())) {
        if (reward->bound.comparison != Comparison::Query ||
            std::holds_alternative<SteadyStateReward>(reward->property)) {
            throw InvalidArgument(
                "check_series: the top level must be a time-bounded quantitative query "
                "(P=? [ phi U<=t psi ], R=? [ I=t ], R=? [ C<=t ], optionally negated)");
        }
        const auto& structure = find_reward(ctx, reward->structure);
        values = std::holds_alternative<InstantaneousReward>(reward->property)
                     ? rewards::instantaneous_reward_series(*sub.chain, init, structure,
                                                            times, topt)
                     : rewards::accumulated_reward_series(*sub.chain, init, structure,
                                                          times, topt);
    } else {
        throw InvalidArgument(
            "check_series: the top level must be a time-bounded quantitative query "
            "(P=? [ phi U<=t psi ], R=? [ I=t ], R=? [ C<=t ], optionally negated)");
    }
    if (complement) {
        for (double& v : values) v = 1.0 - v;
    }
    return values;
}

}  // namespace arcade::logic
