// CSL/CSRL model-checking engine (see csl.hpp for the supported grammar).
#include <algorithm>
#include <cmath>

#include "ctmc/bounded_until.hpp"
#include "ctmc/steady_state.hpp"
#include "linalg/vector_ops.hpp"
#include "logic/csl.hpp"
#include "support/errors.hpp"

namespace arcade::logic {

namespace {

struct Context {
    const ctmc::Ctmc& chain;
    const CheckerOptions& options;
};

/// Evaluation result inside the recursion: either a satisfaction set or a
/// per-state value vector (for quantitative sub-queries).
struct Evaluated {
    std::vector<bool> sat;
    std::vector<double> values;
    bool quantitative = false;
};

Evaluated eval(const Context& ctx, const StateFormula& f);

std::vector<bool> eval_boolean(const Context& ctx, const StateFormula& f) {
    Evaluated e = eval(ctx, f);
    if (e.quantitative) {
        throw ModelError("expected a boolean sub-formula but found a =? query");
    }
    return e.sat;
}

bool compare(Comparison cmp, double value, double threshold) {
    switch (cmp) {
        case Comparison::Lt: return value < threshold;
        case Comparison::Le: return value <= threshold;
        case Comparison::Gt: return value > threshold;
        case Comparison::Ge: return value >= threshold;
        case Comparison::Query: break;
    }
    throw ModelError("query bound used where a comparison is required");
}

const rewards::RewardStructure& find_reward(const Context& ctx, const std::string& name) {
    const auto& all = ctx.options.reward_structures;
    if (all.empty()) throw ModelError("no reward structures registered with the checker");
    if (name.empty()) {
        if (all.size() == 1) return all.begin()->second;
        throw ModelError("multiple reward structures: name one explicitly, R{\"name\"}");
    }
    const auto it = all.find(name);
    if (it == all.end()) throw ModelError("unknown reward structure '" + name + "'");
    return it->second;
}

/// Per-state probabilities for a path formula.
std::vector<double> path_probabilities(const Context& ctx, const PathFormula& path) {
    const std::size_t n = ctx.chain.state_count();
    if (const auto* next = std::get_if<NextPath>(&path)) {
        const std::vector<bool> target = eval_boolean(ctx, *next->operand);
        // P(X f) from state s = sum over f-successors rate / exit (embedded jump).
        std::vector<double> out(n, 0.0);
        for (std::size_t s = 0; s < n; ++s) {
            const double exit = ctx.chain.exit_rate(s);
            if (exit <= 0.0) continue;  // absorbing: no next state
            const auto cols = ctx.chain.rates().row_columns(s);
            const auto vals = ctx.chain.rates().row_values(s);
            double p = 0.0;
            for (std::size_t k = 0; k < cols.size(); ++k) {
                if (cols[k] != s && target[cols[k]]) p += vals[k];
            }
            out[s] = p / exit;
        }
        return out;
    }
    const auto& until = std::get<UntilPath>(path);
    const std::vector<bool> phi = eval_boolean(ctx, *until.lhs);
    const std::vector<bool> psi = eval_boolean(ctx, *until.rhs);
    if (until.time_bound) {
        ctmc::TransientOptions topt;
        topt.epsilon = ctx.options.epsilon;
        return ctmc::bounded_until_all_states(ctx.chain, phi, psi, *until.time_bound, topt);
    }
    return ctmc::reachability_probability(ctx.chain, phi, psi);
}

Evaluated eval(const Context& ctx, const StateFormula& f) {
    const std::size_t n = ctx.chain.state_count();
    Evaluated out;

    if (const auto* lit = std::get_if<BoolLiteral>(&f.node())) {
        out.sat.assign(n, lit->value);
        return out;
    }
    if (const auto* label = std::get_if<Label>(&f.node())) {
        out.sat = ctx.chain.label(label->name);
        return out;
    }
    if (const auto* neg = std::get_if<Negation>(&f.node())) {
        Evaluated inner = eval(ctx, *neg->operand);
        if (inner.quantitative) {
            // numeric complement: 1 - value (used for the G duality)
            out.quantitative = true;
            out.values.resize(n);
            for (std::size_t s = 0; s < n; ++s) out.values[s] = 1.0 - inner.values[s];
            return out;
        }
        out.sat.resize(n);
        for (std::size_t s = 0; s < n; ++s) out.sat[s] = !inner.sat[s];
        return out;
    }
    if (const auto* con = std::get_if<Conjunction>(&f.node())) {
        const auto a = eval_boolean(ctx, *con->lhs);
        const auto b = eval_boolean(ctx, *con->rhs);
        out.sat.resize(n);
        for (std::size_t s = 0; s < n; ++s) out.sat[s] = a[s] && b[s];
        return out;
    }
    if (const auto* dis = std::get_if<Disjunction>(&f.node())) {
        const auto a = eval_boolean(ctx, *dis->lhs);
        const auto b = eval_boolean(ctx, *dis->rhs);
        out.sat.resize(n);
        for (std::size_t s = 0; s < n; ++s) out.sat[s] = a[s] || b[s];
        return out;
    }
    if (const auto* prob = std::get_if<Probabilistic>(&f.node())) {
        const std::vector<double> p = path_probabilities(ctx, prob->path);
        if (prob->bound.comparison == Comparison::Query) {
            out.quantitative = true;
            out.values = p;
            return out;
        }
        out.sat.resize(n);
        for (std::size_t s = 0; s < n; ++s) {
            out.sat[s] = compare(prob->bound.comparison, p[s], prob->bound.threshold);
        }
        return out;
    }
    if (const auto* ss = std::get_if<SteadyState>(&f.node())) {
        const std::vector<bool> target = eval_boolean(ctx, *ss->operand);
        // S applies to the chain as a whole (from the initial distribution).
        const double value = ctmc::steady_state_probability(ctx.chain, target);
        if (ss->bound.comparison == Comparison::Query) {
            out.quantitative = true;
            out.values.assign(n, value);
            return out;
        }
        out.sat.assign(n, compare(ss->bound.comparison, value, ss->bound.threshold));
        return out;
    }
    const auto& reward = std::get<Reward>(f.node());
    const rewards::RewardStructure& structure = find_reward(ctx, reward.structure);
    ctmc::TransientOptions topt;
    topt.epsilon = ctx.options.epsilon;

    std::vector<double> values(n, 0.0);
    if (const auto* inst = std::get_if<InstantaneousReward>(&reward.property)) {
        for (std::size_t s = 0; s < n; ++s) {
            const auto init = ctmc::Ctmc::point_distribution(n, s);
            values[s] = rewards::instantaneous_reward(ctx.chain, init, structure, inst->time, topt);
        }
    } else if (const auto* cum = std::get_if<CumulativeReward>(&reward.property)) {
        for (std::size_t s = 0; s < n; ++s) {
            const auto init = ctmc::Ctmc::point_distribution(n, s);
            values[s] = rewards::accumulated_reward(ctx.chain, init, structure, cum->time, topt);
        }
    } else {
        const double v = rewards::steady_state_reward(ctx.chain, structure);
        values.assign(n, v);
    }
    if (reward.bound.comparison == Comparison::Query) {
        out.quantitative = true;
        out.values = std::move(values);
        return out;
    }
    out.sat.resize(n);
    for (std::size_t s = 0; s < n; ++s) {
        out.sat[s] = compare(reward.bound.comparison, values[s], reward.bound.threshold);
    }
    return out;
}

}  // namespace

CheckResult check(const ctmc::Ctmc& chain, const StateFormula& formula,
                  const CheckerOptions& options) {
    Context ctx{chain, options};
    Evaluated e = eval(ctx, formula);
    CheckResult result;
    const auto& init = chain.initial_distribution();
    if (e.quantitative) {
        result.values = e.values;
        result.value = linalg::dot(init, e.values);
    } else {
        result.satisfaction = e.sat;
        double mass = 0.0;
        for (std::size_t s = 0; s < e.sat.size(); ++s) {
            if (e.sat[s]) mass += init[s];
        }
        result.holds = mass > 1.0 - 1e-12;
    }
    return result;
}

CheckResult check(const ctmc::Ctmc& chain, const std::string& formula,
                  const CheckerOptions& options) {
    return check(chain, *parse_csl(formula), options);
}

}  // namespace arcade::logic
