// Recursive-descent parser for the CSL/CSRL textual syntax (see csl.hpp).
#include <cctype>

#include "logic/csl.hpp"
#include "support/errors.hpp"

namespace arcade::logic {

namespace {

class Cursor {
public:
    explicit Cursor(const std::string& text) : text_(text) {}

    void skip() {
        while (i_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[i_])) != 0) {
            ++i_;
        }
    }

    [[nodiscard]] bool done() {
        skip();
        return i_ >= text_.size();
    }

    bool accept(const std::string& token) {
        skip();
        if (text_.compare(i_, token.size(), token) != 0) return false;
        if (std::isalpha(static_cast<unsigned char>(token[0])) != 0) {
            const std::size_t after = i_ + token.size();
            if (after < text_.size() &&
                (std::isalnum(static_cast<unsigned char>(text_[after])) != 0 ||
                 text_[after] == '_')) {
                return false;
            }
        }
        i_ += token.size();
        return true;
    }

    void expect(const std::string& token) {
        if (!accept(token)) {
            throw ParseError("expected '" + token + "' at position " + std::to_string(i_) +
                             " in CSL formula");
        }
    }

    double number() {
        skip();
        std::size_t consumed = 0;
        double v = 0.0;
        try {
            v = std::stod(text_.substr(i_), &consumed);
        } catch (const std::exception&) {
            throw ParseError("expected a number at position " + std::to_string(i_));
        }
        i_ += consumed;
        return v;
    }

    std::string quoted() {
        expect("\"");
        std::size_t j = i_;
        while (j < text_.size() && text_[j] != '"') ++j;
        if (j >= text_.size()) throw ParseError("unterminated label name");
        std::string out = text_.substr(i_, j - i_);
        i_ = j + 1;
        return out;
    }

private:
    const std::string& text_;
    std::size_t i_ = 0;
};

class CslParser {
public:
    explicit CslParser(const std::string& text) : cur_(text) {}

    StateFormulaPtr parse() {
        StateFormulaPtr f = parse_or();
        if (!cur_.done()) throw ParseError("trailing input in CSL formula");
        return f;
    }

private:
    Cursor cur_;

    static StateFormulaPtr make(StateFormula::Node node) {
        return std::make_shared<const StateFormula>(std::move(node));
    }

    StateFormulaPtr parse_or() {
        StateFormulaPtr lhs = parse_and();
        while (cur_.accept("|")) {
            lhs = make(Disjunction{lhs, parse_and()});
        }
        return lhs;
    }

    StateFormulaPtr parse_and() {
        StateFormulaPtr lhs = parse_unary();
        while (cur_.accept("&")) {
            lhs = make(Conjunction{lhs, parse_unary()});
        }
        return lhs;
    }

    Bound parse_bound() {
        Bound b;
        if (cur_.accept("=?")) {
            b.comparison = Comparison::Query;
        } else if (cur_.accept("<=")) {
            b.comparison = Comparison::Le;
            b.threshold = cur_.number();
        } else if (cur_.accept(">=")) {
            b.comparison = Comparison::Ge;
            b.threshold = cur_.number();
        } else if (cur_.accept("<")) {
            b.comparison = Comparison::Lt;
            b.threshold = cur_.number();
        } else if (cur_.accept(">")) {
            b.comparison = Comparison::Gt;
            b.threshold = cur_.number();
        } else {
            throw ParseError("expected a probability/reward bound (=?, <p, <=p, >p, >=p)");
        }
        return b;
    }

    StateFormulaPtr parse_unary() {
        if (cur_.accept("!")) return make(Negation{parse_unary()});
        if (cur_.accept("(")) {
            StateFormulaPtr f = parse_or();
            cur_.expect(")");
            return f;
        }
        if (cur_.accept("true")) return make(BoolLiteral{true});
        if (cur_.accept("false")) return make(BoolLiteral{false});
        if (cur_.accept("P")) {
            Bound b = parse_bound();
            cur_.expect("[");
            PathFormula path = parse_path();
            cur_.expect("]");
            return make(Probabilistic{b, std::move(path)});
        }
        if (cur_.accept("S")) {
            Bound b = parse_bound();
            cur_.expect("[");
            StateFormulaPtr f = parse_or();
            cur_.expect("]");
            return make(SteadyState{b, f});
        }
        if (cur_.accept("R")) {
            std::string structure;
            if (cur_.accept("{")) {
                Cursor& c = cur_;
                structure = c.quoted();
                cur_.expect("}");
            }
            Bound b = parse_bound();
            cur_.expect("[");
            RewardProperty prop = parse_reward_property();
            cur_.expect("]");
            return make(Reward{std::move(structure), b, prop});
        }
        // label
        return make(Label{cur_.quoted()});
    }

    RewardProperty parse_reward_property() {
        if (cur_.accept("I")) {
            cur_.expect("=");
            return InstantaneousReward{cur_.number()};
        }
        if (cur_.accept("C")) {
            cur_.expect("<=");
            return CumulativeReward{cur_.number()};
        }
        if (cur_.accept("S")) {
            return SteadyStateReward{};
        }
        throw ParseError("expected a reward property: I=t, C<=t, or S");
    }

    PathFormula parse_path() {
        if (cur_.accept("X")) {
            return NextPath{parse_or()};
        }
        if (cur_.accept("G")) {
            // G<=t f  ==  ! (true U<=t !f); desugared by the checker via
            // duality, so represent as Until with negated operands marker.
            // We express it directly: G<=t f = 1 - P[true U<=t !f].
            // Keep the parser simple: build the dual Until and wrap in a
            // negation at the state level is not possible inside a path
            // formula, so the checker handles `globally` via this flag.
            std::optional<double> bound;
            if (cur_.accept("<=")) bound = cur_.number();
            StateFormulaPtr f = parse_or();
            // represent G f as  !(true U !f)  at the state level:
            // the caller (parse_unary) wraps in Probabilistic, so encode as
            // Until with swapped/negated shape handled below.
            StateFormulaPtr not_f = std::make_shared<const StateFormula>(Negation{f});
            StateFormulaPtr tru = std::make_shared<const StateFormula>(BoolLiteral{true});
            UntilPath u{tru, not_f, bound};
            globally_ = true;
            return u;
        }
        if (cur_.accept("F")) {
            std::optional<double> bound;
            if (cur_.accept("<=")) bound = cur_.number();
            StateFormulaPtr f = parse_or();
            StateFormulaPtr tru = std::make_shared<const StateFormula>(BoolLiteral{true});
            return UntilPath{tru, f, bound};
        }
        StateFormulaPtr lhs = parse_or();
        cur_.expect("U");
        std::optional<double> bound;
        if (cur_.accept("<=")) bound = cur_.number();
        StateFormulaPtr rhs = parse_or();
        return UntilPath{lhs, rhs, bound};
    }

public:
    /// Set when the last parsed path formula was a G (globally); the checker
    /// applies the duality P(G) = 1 - P(U-dual).  Exposed via the returned
    /// formula by wrapping in the parser below.
    bool globally_ = false;
};

}  // namespace

StateFormulaPtr parse_csl(const std::string& text) {
    CslParser parser(text);
    StateFormulaPtr f = parser.parse();
    if (parser.globally_) {
        // P bound [G ...] was parsed as the dual Until; fix up:
        // P=?[G f] = 1 - P=?[true U !f]  -> wrap in negation of the
        // probabilistic with complemented bound is subtle, so instead
        // signal via a dedicated transformation: the dual holds because
        // the parser already negated the operand; we only need to flip
        // the resulting probability, which the checker does when it sees
        // this wrapper.
        if (const auto* prob = std::get_if<Probabilistic>(&f->node())) {
            Probabilistic flipped = *prob;
            // mark by negating at the state level: P(G f) >= p  <=>  P(U dual) <= 1-p
            Bound b = flipped.bound;
            switch (b.comparison) {
                case Comparison::Query: break;
                case Comparison::Lt: b.comparison = Comparison::Gt; b.threshold = 1.0 - b.threshold; break;
                case Comparison::Le: b.comparison = Comparison::Ge; b.threshold = 1.0 - b.threshold; break;
                case Comparison::Gt: b.comparison = Comparison::Lt; b.threshold = 1.0 - b.threshold; break;
                case Comparison::Ge: b.comparison = Comparison::Le; b.threshold = 1.0 - b.threshold; break;
            }
            flipped.bound = b;
            // For =? queries the checker must return 1 - value; encode via
            // the complement flag on the formula node.
            auto node = StateFormula::Node(Probabilistic{flipped.bound, flipped.path});
            auto inner = std::make_shared<const StateFormula>(std::move(node));
            if (b.comparison == Comparison::Query) {
                // Represent 1 - P=?[...] as Negation(prob) — the checker
                // interprets Negation over a quantitative query numerically.
                return std::make_shared<const StateFormula>(Negation{inner});
            }
            return inner;
        }
    }
    return f;
}

}  // namespace arcade::logic
