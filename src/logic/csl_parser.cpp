// Recursive-descent parser for the CSL/CSRL textual syntax (see csl.hpp).
//
// Every ParseError names the byte offset of the offending token, so tooling
// (and humans staring at generated formulas) can point at the exact spot.
#include <cctype>

#include "logic/csl.hpp"
#include "support/errors.hpp"

namespace arcade::logic {

namespace {

[[noreturn]] void fail(const std::string& what, std::size_t offset) {
    throw ParseError("CSL: " + what + " at byte offset " + std::to_string(offset));
}

class Cursor {
public:
    explicit Cursor(const std::string& text) : text_(text) {}

    void skip() {
        while (i_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[i_])) != 0) {
            ++i_;
        }
    }

    /// Byte offset of the next token (whitespace skipped).
    [[nodiscard]] std::size_t offset() {
        skip();
        return i_;
    }

    [[nodiscard]] bool done() {
        skip();
        return i_ >= text_.size();
    }

    bool accept(const std::string& token) {
        skip();
        if (text_.compare(i_, token.size(), token) != 0) return false;
        if (std::isalpha(static_cast<unsigned char>(token[0])) != 0) {
            const std::size_t after = i_ + token.size();
            if (after < text_.size() &&
                (std::isalnum(static_cast<unsigned char>(text_[after])) != 0 ||
                 text_[after] == '_')) {
                return false;
            }
        }
        i_ += token.size();
        return true;
    }

    void expect(const std::string& token) {
        if (!accept(token)) fail("expected '" + token + "'", offset());
    }

    double number() {
        const std::size_t at = offset();
        std::size_t consumed = 0;
        double v = 0.0;
        try {
            v = std::stod(text_.substr(i_), &consumed);
        } catch (const std::exception&) {
            fail("expected a number", at);
        }
        i_ += consumed;
        return v;
    }

    std::string quoted() {
        const std::size_t at = offset();
        expect("\"");
        std::size_t j = i_;
        while (j < text_.size() && text_[j] != '"') ++j;
        if (j >= text_.size()) fail("unterminated label name", at);
        std::string out = text_.substr(i_, j - i_);
        i_ = j + 1;
        return out;
    }

private:
    const std::string& text_;
    std::size_t i_ = 0;
};

class CslParser {
public:
    explicit CslParser(const std::string& text) : cur_(text) {}

    StateFormulaPtr parse() {
        StateFormulaPtr f = parse_or();
        if (!cur_.done()) fail("trailing input", cur_.offset());
        return f;
    }

private:
    Cursor cur_;

    static StateFormulaPtr make(StateFormula::Node node) {
        return std::make_shared<const StateFormula>(std::move(node));
    }

    /// Builds the P node for a G path parsed as its dual Until:
    /// P(G f) {><} p  <=>  P(U dual) {<>} 1-p, and =? queries complement the
    /// value via a Negation the checker evaluates numerically (1 - value).
    static StateFormulaPtr make_globally(Bound b, PathFormula path) {
        switch (b.comparison) {
            case Comparison::Query: break;
            case Comparison::Lt: b.comparison = Comparison::Gt; b.threshold = 1.0 - b.threshold; break;
            case Comparison::Le: b.comparison = Comparison::Ge; b.threshold = 1.0 - b.threshold; break;
            case Comparison::Gt: b.comparison = Comparison::Lt; b.threshold = 1.0 - b.threshold; break;
            case Comparison::Ge: b.comparison = Comparison::Le; b.threshold = 1.0 - b.threshold; break;
        }
        StateFormulaPtr inner = make(Probabilistic{b, std::move(path)});
        if (b.comparison == Comparison::Query) return make(Negation{inner});
        return inner;
    }

    StateFormulaPtr parse_or() {
        StateFormulaPtr lhs = parse_and();
        while (cur_.accept("|")) {
            lhs = make(Disjunction{lhs, parse_and()});
        }
        return lhs;
    }

    StateFormulaPtr parse_and() {
        StateFormulaPtr lhs = parse_unary();
        while (cur_.accept("&")) {
            lhs = make(Conjunction{lhs, parse_unary()});
        }
        return lhs;
    }

    Bound parse_bound() {
        Bound b;
        if (cur_.accept("=?")) {
            b.comparison = Comparison::Query;
        } else if (cur_.accept("<=")) {
            b.comparison = Comparison::Le;
            b.threshold = cur_.number();
        } else if (cur_.accept(">=")) {
            b.comparison = Comparison::Ge;
            b.threshold = cur_.number();
        } else if (cur_.accept("<")) {
            b.comparison = Comparison::Lt;
            b.threshold = cur_.number();
        } else if (cur_.accept(">")) {
            b.comparison = Comparison::Gt;
            b.threshold = cur_.number();
        } else {
            fail("expected a probability/reward bound (=?, <p, <=p, >p, >=p)",
                 cur_.offset());
        }
        return b;
    }

    StateFormulaPtr parse_unary() {
        if (cur_.accept("!")) return make(Negation{parse_unary()});
        if (cur_.accept("(")) {
            StateFormulaPtr f = parse_or();
            cur_.expect(")");
            return f;
        }
        if (cur_.accept("true")) return make(BoolLiteral{true});
        if (cur_.accept("false")) return make(BoolLiteral{false});
        if (cur_.accept("P")) {
            Bound b = parse_bound();
            cur_.expect("[");
            globally_ = false;
            PathFormula path = parse_path();
            // Consume the flag at THIS P node: a nested P [G ...] inside the
            // path has already consumed its own, so the duality fixup never
            // leaks across operator levels.
            const bool globally = globally_;
            globally_ = false;
            cur_.expect("]");
            if (globally) return make_globally(b, std::move(path));
            return make(Probabilistic{b, std::move(path)});
        }
        if (cur_.accept("S")) {
            Bound b = parse_bound();
            cur_.expect("[");
            StateFormulaPtr f = parse_or();
            cur_.expect("]");
            return make(SteadyState{b, f});
        }
        if (cur_.accept("R")) {
            std::string structure;
            if (cur_.accept("{")) {
                structure = cur_.quoted();
                cur_.expect("}");
            }
            Bound b = parse_bound();
            cur_.expect("[");
            RewardProperty prop = parse_reward_property();
            cur_.expect("]");
            return make(Reward{std::move(structure), b, prop});
        }
        // label
        return make(Label{cur_.quoted()});
    }

    RewardProperty parse_reward_property() {
        if (cur_.accept("I")) {
            cur_.expect("=");
            return InstantaneousReward{cur_.number()};
        }
        if (cur_.accept("C")) {
            cur_.expect("<=");
            return CumulativeReward{cur_.number()};
        }
        if (cur_.accept("S")) {
            return SteadyStateReward{};
        }
        fail("expected a reward property: I=t, C<=t, or S", cur_.offset());
    }

    PathFormula parse_path() {
        if (cur_.accept("X")) {
            return NextPath{parse_or()};
        }
        if (cur_.accept("G")) {
            // G<=t f is the dual of an Until:  P(G f) = 1 - P(true U !f).
            // The parser desugars to the Until and records the complement;
            // the enclosing P node folds it into its formula (flipped
            // bounds, or a numeric Negation for =? queries, make_globally),
            // so the checker never needs a dedicated `globally` node.
            std::optional<double> bound;
            if (cur_.accept("<=")) bound = cur_.number();
            StateFormulaPtr f = parse_or();
            StateFormulaPtr not_f = std::make_shared<const StateFormula>(Negation{f});
            StateFormulaPtr tru = std::make_shared<const StateFormula>(BoolLiteral{true});
            UntilPath u{tru, not_f, bound};
            globally_ = true;
            return u;
        }
        if (cur_.accept("F")) {
            std::optional<double> bound;
            if (cur_.accept("<=")) bound = cur_.number();
            StateFormulaPtr f = parse_or();
            StateFormulaPtr tru = std::make_shared<const StateFormula>(BoolLiteral{true});
            return UntilPath{tru, f, bound};
        }
        StateFormulaPtr lhs = parse_or();
        cur_.expect("U");
        std::optional<double> bound;
        if (cur_.accept("<=")) bound = cur_.number();
        StateFormulaPtr rhs = parse_or();
        return UntilPath{lhs, rhs, bound};
    }

    /// Set by parse_path when the path just parsed was a G (globally),
    /// consumed — and reset — by the immediately enclosing P node.
    bool globally_ = false;
};

}  // namespace

StateFormulaPtr parse_csl(const std::string& text) {
    return CslParser(text).parse();
}

}  // namespace arcade::logic
