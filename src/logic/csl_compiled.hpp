// CSL/CSRL checking on compiled Arcade models, through the analysis engine.
//
// This is the reduction-aware entry into the checker (the raw
// check(Ctmc, ...) overloads in csl.hpp stay available for bare chains):
//
//  * under ReductionPolicy::Auto the whole recursive evaluation runs on the
//    model's shared strong-bisimulation quotient — labels are already
//    projected on the quotient chain, reward structures project through
//    QuotientCtmc::project_values, nested quantitative sub-queries solve on
//    the quotient — and the final satisfaction/value vectors lift back to
//    the full state space (per-state CSL functionals are block-constant, so
//    the lift copies block values; see ctmc/quotient.hpp).  Formulas
//    containing the Next operator fall back to the full chain: X reads jump
//    probabilities, which intra-block rates — unconstrained by ordinary
//    lumpability — can change between bisimilar states.
//  * top-level steady-state queries (S bound [f], R bound [S]) reuse the
//    session's cached steady-state solve, so a property asks for exactly
//    the distribution the availability/long-run-cost measures already
//    solved — byte-identical values, one Gauss–Seidel solve per model.
//  * reward structures resolve from the model (its "cost" reward) plus any
//    caller-supplied CheckerOptions structures (given at full-chain size;
//    projected automatically under Auto).
//
// check_series is the sweep runner's path: it evaluates one time-parametric
// quantitative query over a whole time grid with a single evolver, calling
// the *same* forward-series kernels as the measure pipeline
// (ctmc::bounded_until_series, rewards::*_reward_series) so a paper measure
// re-expressed as a formula reproduces the measure's values bit for bit.
//
// Memoisation lives in engine::AnalysisSession::check_property, keyed by
// (model fingerprint, formula fingerprint); these free functions are the
// evaluators it calls on a miss.
#ifndef ARCADE_LOGIC_CSL_COMPILED_HPP
#define ARCADE_LOGIC_CSL_COMPILED_HPP

#include <span>

#include "engine/session.hpp"
#include "logic/csl.hpp"

namespace arcade::logic {

/// Model-checks `formula` on a compiled model through `session`
/// (quotient-aware under ReductionPolicy::Auto; see the header comment).
/// Satisfaction/value vectors in the result are full-state-space sized.
[[nodiscard]] CheckResult check(engine::AnalysisSession& session,
                                const engine::AnalysisSession::CompiledPtr& model,
                                const StateFormula& formula,
                                const CheckerOptions& options = {});

/// Convenience: parse then check.
[[nodiscard]] CheckResult check(engine::AnalysisSession& session,
                                const engine::AnalysisSession::CompiledPtr& model,
                                const std::string& formula,
                                const CheckerOptions& options = {});

/// Evaluates a time-parametric quantitative query over an ascending time
/// grid: the formula's own (nominal) time bound is replaced by each grid
/// point, all points advanced by one shared evolver.  The top level must be
/// P=? [ phi U<=t psi ], R=? [ I=t ], R=? [ C<=t ], or a Negation of one of
/// these (the parser's G<=t desugaring; values complement to 1 - p) —
/// anything else throws InvalidArgument.  `initial` is the full-chain
/// initial distribution the query starts from (a disaster distribution for
/// the paper's GOOD-model measures); it is projected onto the quotient
/// under ReductionPolicy::Auto.
[[nodiscard]] std::vector<double> check_series(
    engine::AnalysisSession& session, const engine::AnalysisSession::CompiledPtr& model,
    const StateFormula& formula, std::span<const double> times,
    std::span<const double> initial, const CheckerOptions& options = {});

}  // namespace arcade::logic

#endif  // ARCADE_LOGIC_CSL_COMPILED_HPP
