#include "ctmc/bounded_until.hpp"

#include <algorithm>

#include "engine/workspace.hpp"
#include "linalg/kernels.hpp"
#include "numeric/fox_glynn.hpp"
#include "support/errors.hpp"

namespace arcade::ctmc {

Ctmc until_transform(const Ctmc& chain, const std::vector<bool>& phi,
                     const std::vector<bool>& psi) {
    const std::size_t n = chain.state_count();
    ARCADE_ASSERT(phi.size() == n && psi.size() == n, "mask size mismatch");
    std::vector<bool> absorbing(n, false);
    for (std::size_t s = 0; s < n; ++s) {
        absorbing[s] = psi[s] || (!phi[s] && !psi[s]);
    }
    return chain.make_absorbing(absorbing);
}

double mass_in(std::span<const double> dist, const std::vector<bool>& set) {
    double p = 0.0;
    for (std::size_t s = 0; s < dist.size(); ++s) {
        if (set[s]) p += dist[s];
    }
    return p;
}

double bounded_until_probability(const Ctmc& chain, std::span<const double> initial,
                                 const std::vector<bool>& phi, const std::vector<bool>& psi,
                                 double t, const TransientOptions& options) {
    const Ctmc transformed = until_transform(chain, phi, psi);
    const auto dist = transient_distribution(transformed, initial, t, options);
    return mass_in(dist, psi);
}

std::vector<double> bounded_until_series(const Ctmc& chain, std::span<const double> initial,
                                         const std::vector<bool>& phi,
                                         const std::vector<bool>& psi,
                                         std::span<const double> times,
                                         const TransientOptions& options) {
    const Ctmc transformed = until_transform(chain, phi, psi);
    TransientEvolver evolver(transformed, initial, options);
    std::vector<double> out;
    out.reserve(times.size());
    for (double t : times) {
        evolver.advance_to(t);
        out.push_back(mass_in(evolver.distribution(), psi));
    }
    return out;
}

std::vector<double> bounded_until_all_states(const Ctmc& chain, const std::vector<bool>& phi,
                                             const std::vector<bool>& psi, double t,
                                             const TransientOptions& options) {
    const Ctmc transformed = until_transform(chain, phi, psi);
    const std::size_t n = chain.state_count();

    // `cur` can be the return value (the zero-rate short-circuit) and `acc`
    // always is — both escape, so only `next` routes through the pool.
    std::vector<double> cur(n, 0.0);
    for (std::size_t s = 0; s < n; ++s) cur[s] = psi[s] ? 1.0 : 0.0;

    // A zero-rate transformed chain (every phi-state already absorbing) never
    // moves: v(t) is exactly the psi indicator, no uniformisation needed.
    const double max_rate = transformed.max_exit_rate();
    if (max_rate == 0.0) return cur;

    // Backward recurrence: v(t) = sum_k pois_k(q t) * P^k * 1_psi.
    const double lambda = max_rate * 1.02;
    const auto weights = numeric::fox_glynn_cached(lambda * t, options.epsilon);

    std::vector<double> acc(n, 0.0);
    engine::ScratchVector next_scratch(options.workspace, n);
    std::vector<double>& next = next_scratch.get();

    const auto& rates = transformed.rates();
    // next = P * cur  (column-vector form of the uniformised matrix)
    const auto power_step = [&] {
        linalg::uniformised_multiply_right(rates, lambda, cur, next);
        std::swap(cur, next);
    };

    // Below the Fox–Glynn window every weight is zero: advance cur to
    // P^left * 1_psi with bare power iterations, no accumulation pass.
    for (std::size_t k = 0; k < weights->left; ++k) power_step();
    for (std::size_t k = weights->left;; ++k) {
        const double w = weights->weight(k);
        for (std::size_t i = 0; i < n; ++i) acc[i] += w * cur[i];
        if (k == weights->right) break;
        power_step();
    }
    return acc;
}

}  // namespace arcade::ctmc
