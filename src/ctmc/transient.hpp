// Transient analysis of CTMCs by uniformisation with Fox–Glynn weights.
//
// Provides both a single-time solver and an incremental time-series solver
// (stepping from grid point to grid point), which is what the figure
// benchmarks use: stepping re-uses the distribution at the previous grid
// point, so a 200-point curve costs a few thousand sparse matrix-vector
// products instead of hundreds of thousands.
#ifndef ARCADE_CTMC_TRANSIENT_HPP
#define ARCADE_CTMC_TRANSIENT_HPP

#include <span>
#include <vector>

#include "ctmc/ctmc.hpp"
#include "engine/workspace.hpp"

namespace arcade::ctmc {

struct TransientOptions {
    double epsilon = 1e-12;  ///< Fox–Glynn truncation error per solve/step
    /// When set, uniformisation scratch vectors are borrowed from (and
    /// returned to) this pool instead of being allocated per evolver —
    /// an AnalysisSession passes its pool here so repeated curve
    /// evaluations on the same model reuse one set of buffers.
    engine::WorkspacePool* workspace = nullptr;
};

/// Distribution over states at time `t`, starting from `initial`.
[[nodiscard]] std::vector<double> transient_distribution(const Ctmc& chain,
                                                         std::span<const double> initial,
                                                         double t,
                                                         const TransientOptions& options = {});

/// Distribution at each time of the (ascending) grid `times`.
/// Returns one vector per grid point.
[[nodiscard]] std::vector<std::vector<double>> transient_series(
    const Ctmc& chain, std::span<const double> initial, std::span<const double> times,
    const TransientOptions& options = {});

/// Incremental uniformisation engine.  Construct once per (chain, initial),
/// then call advance_to() with non-decreasing times.
class TransientEvolver {
public:
    TransientEvolver(const Ctmc& chain, std::span<const double> initial,
                     TransientOptions options = {});
    ~TransientEvolver();
    TransientEvolver(const TransientEvolver&) = delete;
    TransientEvolver& operator=(const TransientEvolver&) = delete;

    /// Tolerance under which a slightly-earlier `t` counts as a duplicate of
    /// the current grid point rather than a backwards move.
    static constexpr double kTimeTolerance = 1e-12;

    /// Advances the internal distribution to absolute time `t`.  Duplicate
    /// grid points — `t` within kTimeTolerance below the current time — are
    /// a no-op (the time never moves backwards); a `t` earlier than that
    /// throws InvalidArgument.
    void advance_to(double t);

    [[nodiscard]] const std::vector<double>& distribution() const noexcept { return dist_; }
    [[nodiscard]] double time() const noexcept { return time_; }

private:
    const Ctmc& chain_;
    TransientOptions options_;
    double lambda_;                  ///< uniformisation rate
    std::vector<double> dist_;
    std::vector<double> scratch_a_;  ///< pool-borrowed when options_.workspace
    std::vector<double> scratch_b_;
    double time_ = 0.0;

    void step(double dt);
};

}  // namespace arcade::ctmc

#endif  // ARCADE_CTMC_TRANSIENT_HPP
