// Batched transient analysis: one uniformisation drives a whole block of
// distributions.
//
// A BatchTransientEvolver evolves `width` distributions over the same chain
// through ONE Fox–Glynn weight sequence per step, using the multi-RHS
// CSR×dense-block kernels so each matrix traversal (and each vals[k]/lambda
// division) is amortised across the block.  The block is row-major —
// column c of state s lives at block()[s*width + c] — and every column is
// advanced with exactly the arithmetic a single-column TransientEvolver
// would perform, so column c stays bitwise identical to evolving that
// initial vector alone.  This is what lets the sweep runner fuse cells that
// share a chain and time grid without perturbing a single output byte.
#ifndef ARCADE_CTMC_TRANSIENT_BATCH_HPP
#define ARCADE_CTMC_TRANSIENT_BATCH_HPP

#include <span>
#include <vector>

#include "ctmc/ctmc.hpp"
#include "ctmc/transient.hpp"

namespace arcade::ctmc {

/// Incremental uniformisation over a row-major block of distributions.
/// Construct once per (chain, columns), then call advance_to() with
/// non-decreasing times — the same protocol as TransientEvolver, with the
/// same kTimeTolerance duplicate/backwards semantics.
class BatchTransientEvolver {
public:
    /// `columns[c]` is the initial distribution of column c; every column
    /// must have chain.state_count() entries and there must be at least one.
    BatchTransientEvolver(const Ctmc& chain,
                          std::span<const std::vector<double>> columns,
                          TransientOptions options = {});
    ~BatchTransientEvolver();
    BatchTransientEvolver(const BatchTransientEvolver&) = delete;
    BatchTransientEvolver& operator=(const BatchTransientEvolver&) = delete;

    /// Advances every column to absolute time `t` (TransientEvolver
    /// semantics: duplicates within kTimeTolerance are a no-op, genuinely
    /// decreasing times throw InvalidArgument).
    void advance_to(double t);

    [[nodiscard]] std::size_t width() const noexcept { return width_; }
    [[nodiscard]] double time() const noexcept { return time_; }

    /// The current row-major block: state s, column c at [s*width() + c].
    [[nodiscard]] const std::vector<double>& block() const noexcept { return block_; }

    /// Copies column c into `out` (`out.size()` must be state_count()).
    void extract_column(std::size_t c, std::span<double> out) const;

    /// Column c as a fresh vector (convenience over extract_column).
    [[nodiscard]] std::vector<double> column(std::size_t c) const;

private:
    const Ctmc& chain_;
    TransientOptions options_;
    double lambda_;  ///< same uniformisation rate formula as TransientEvolver
    std::size_t width_;
    std::vector<double> block_;
    std::vector<double> scratch_a_;  ///< pool-borrowed when options_.workspace
    std::vector<double> scratch_b_;
    double time_ = 0.0;

    void step(double dt);
};

}  // namespace arcade::ctmc

#endif  // ARCADE_CTMC_TRANSIENT_BATCH_HPP
