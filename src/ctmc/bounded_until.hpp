// Time-bounded until for CTMCs — the workhorse behind the paper's
// reliability (P[true U<=t down]) and survivability (P[true U<=t service])
// measures.
//
// P[Phi U<=t Psi] is computed on a transformed chain where Psi-states and
// (!Phi && !Psi)-states are made absorbing; the answer is the transient
// probability mass in Psi at time t (Baier et al., "Model-Checking
// Algorithms for Continuous-Time Markov Chains", IEEE TSE 2003).
#ifndef ARCADE_CTMC_BOUNDED_UNTIL_HPP
#define ARCADE_CTMC_BOUNDED_UNTIL_HPP

#include <span>
#include <vector>

#include "ctmc/ctmc.hpp"
#include "ctmc/transient.hpp"

namespace arcade::ctmc {

/// The transformed chain the until measures evolve: states in Psi or in
/// neither Phi nor Psi are made absorbing.  Exposed so batched evaluation
/// (the sweep fusion pass) can build the very same chain the per-cell path
/// would and evolve several initial distributions over it at once.
[[nodiscard]] Ctmc until_transform(const Ctmc& chain, const std::vector<bool>& phi,
                                   const std::vector<bool>& psi);

/// Probability mass of `dist` inside `set`, summed in ascending state
/// order — the exact reduction bounded_until_series applies per grid point
/// (exposed for the same reason as until_transform).
[[nodiscard]] double mass_in(std::span<const double> dist, const std::vector<bool>& set);

/// P[Phi U<=t Psi] for every state as initial state... is expensive;
/// this API computes it for one initial distribution, which is what the
/// paper's measures need (GOOD models fix the disaster state).
[[nodiscard]] double bounded_until_probability(const Ctmc& chain,
                                               std::span<const double> initial,
                                               const std::vector<bool>& phi,
                                               const std::vector<bool>& psi, double t,
                                               const TransientOptions& options = {});

/// The same probability evaluated on an ascending time grid, sharing the
/// transformed chain and stepping the transient distribution.
[[nodiscard]] std::vector<double> bounded_until_series(const Ctmc& chain,
                                                       std::span<const double> initial,
                                                       const std::vector<bool>& phi,
                                                       const std::vector<bool>& psi,
                                                       std::span<const double> times,
                                                       const TransientOptions& options = {});

/// Per-state vector of P[Phi U<=t Psi] (computed via the backward
/// (column-vector) recurrence, one uniformisation pass for all states).
[[nodiscard]] std::vector<double> bounded_until_all_states(
    const Ctmc& chain, const std::vector<bool>& phi, const std::vector<bool>& psi, double t,
    const TransientOptions& options = {});

}  // namespace arcade::ctmc

#endif  // ARCADE_CTMC_BOUNDED_UNTIL_HPP
