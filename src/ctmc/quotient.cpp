#include "ctmc/quotient.hpp"

#include <map>
#include <unordered_map>

#include "support/errors.hpp"

namespace arcade::ctmc {

using graph::double_bits;

namespace {

/// Initial partition of the signature: states sharing every label bit and
/// every value entry start in one block (exact, no hashing shortcuts — the
/// unordered_map compares full keys).
std::vector<std::size_t> signature_partition(const Ctmc& chain,
                                             const LumpSignature& signature) {
    const std::size_t n = chain.state_count();
    std::vector<const std::vector<bool>*> labels;
    labels.reserve(signature.labels.size());
    for (const auto& name : signature.labels) {
        if (!chain.has_label(name)) {
            throw InvalidArgument("LumpSignature: chain has no label '" + name + "'");
        }
        labels.push_back(&chain.label(name));
    }
    for (const auto& row : signature.values) {
        if (row.size() != n) {
            throw InvalidArgument("LumpSignature: value row size mismatch");
        }
    }
    std::vector<std::size_t> block_of(n, 0);
    std::unordered_map<std::vector<std::uint64_t>, std::size_t, graph::WordVectorHash> ids;
    std::vector<std::uint64_t> key;
    for (std::size_t s = 0; s < n; ++s) {
        key.clear();
        for (const auto* label : labels) key.push_back((*label)[s] ? 1 : 0);
        for (const auto& row : signature.values) key.push_back(double_bits(row[s]));
        const auto [it, inserted] = ids.emplace(key, ids.size());
        block_of[s] = it->second;
        (void)inserted;
    }
    return block_of;
}

}  // namespace

QuotientCtmc::QuotientCtmc(const Ctmc& original, const LumpSignature& signature)
    : QuotientCtmc(build(original, signature)) {}

QuotientCtmc::Build QuotientCtmc::build(const Ctmc& original,
                                        const LumpSignature& signature) {
    const std::size_t n = original.state_count();
    graph::Partition partition =
        graph::coarsest_lumping(original.rates(), signature_partition(original, signature));
    const std::size_t m = partition.count;

    std::vector<std::size_t> block_sizes(m, 0);
    std::vector<std::size_t> representative(m, n);
    for (std::size_t s = 0; s < n; ++s) {
        const std::size_t b = partition.block_of[s];
        if (block_sizes[b] == 0) representative[b] = s;
        ++block_sizes[b];
    }

    // Quotient rates from block representatives: lumpability makes every
    // member's per-block sums identical (bitwise, by the sorted-sum
    // refinement), so the lowest-index member is canonical.
    linalg::CsrBuilder builder(m, m);
    std::map<std::size_t, double> row;  // ordered: deterministic accumulation
    for (std::size_t b = 0; b < m; ++b) {
        const std::size_t rep = representative[b];
        row.clear();
        const auto cols = original.rates().row_columns(rep);
        const auto vals = original.rates().row_values(rep);
        for (std::size_t k = 0; k < cols.size(); ++k) {
            if (cols[k] == rep) continue;
            const std::size_t target = partition.block_of[cols[k]];
            if (target == b) continue;  // intra-block moves vanish
            row[target] += vals[k];
        }
        for (const auto& [target, rate] : row) builder.add(b, target, rate);
    }

    std::vector<double> initial(m, 0.0);
    const auto& original_initial = original.initial_distribution();
    for (std::size_t s = 0; s < n; ++s) initial[partition.block_of[s]] += original_initial[s];

    Ctmc chain(builder.build(), std::move(initial));
    for (const auto& name : signature.labels) {
        const auto& bits = original.label(name);
        std::vector<bool> projected(m, false);
        for (std::size_t b = 0; b < m; ++b) projected[b] = bits[representative[b]];
        chain.set_label(name, std::move(projected));
    }
    return Build{std::move(partition.block_of), std::move(block_sizes), std::move(chain)};
}

std::vector<double> QuotientCtmc::project(std::span<const double> per_state) const {
    ARCADE_ASSERT(per_state.size() == block_of_.size(), "projection size mismatch");
    std::vector<double> out(block_count(), 0.0);
    for (std::size_t s = 0; s < per_state.size(); ++s) out[block_of_[s]] += per_state[s];
    return out;
}

std::vector<bool> QuotientCtmc::project_mask(const std::vector<bool>& per_state) const {
    ARCADE_ASSERT(per_state.size() == block_of_.size(), "mask size mismatch");
    std::vector<bool> out(block_count(), false);
    std::vector<bool> seen(block_count(), false);
    for (std::size_t s = 0; s < per_state.size(); ++s) {
        const std::size_t b = block_of_[s];
        if (!seen[b]) {
            seen[b] = true;
            out[b] = per_state[s];
        } else if (out[b] != per_state[s]) {
            throw InvalidArgument(
                "QuotientCtmc: mask is not block-constant — the lump signature does not "
                "cover it");
        }
    }
    return out;
}

std::vector<double> QuotientCtmc::project_values(std::span<const double> per_state) const {
    ARCADE_ASSERT(per_state.size() == block_of_.size(), "value row size mismatch");
    std::vector<double> out(block_count(), 0.0);
    std::vector<bool> seen(block_count(), false);
    for (std::size_t s = 0; s < per_state.size(); ++s) {
        const std::size_t b = block_of_[s];
        if (!seen[b]) {
            seen[b] = true;
            out[b] = per_state[s];
        } else if (double_bits(out[b]) != double_bits(per_state[s])) {
            throw InvalidArgument(
                "QuotientCtmc: values are not block-constant — the lump signature does "
                "not cover them");
        }
    }
    return out;
}

std::vector<double> QuotientCtmc::lift(std::span<const double> per_block) const {
    ARCADE_ASSERT(per_block.size() == block_count(), "lift size mismatch");
    std::vector<double> out(block_of_.size(), 0.0);
    for (std::size_t s = 0; s < out.size(); ++s) {
        const std::size_t b = block_of_[s];
        out[s] = per_block[b] / static_cast<double>(block_sizes_[b]);
    }
    return out;
}

std::vector<double> QuotientCtmc::lift_values(std::span<const double> per_block) const {
    ARCADE_ASSERT(per_block.size() == block_count(), "value lift size mismatch");
    std::vector<double> out(block_of_.size(), 0.0);
    for (std::size_t s = 0; s < out.size(); ++s) out[s] = per_block[block_of_[s]];
    return out;
}

std::vector<bool> QuotientCtmc::lift_mask(const std::vector<bool>& per_block) const {
    ARCADE_ASSERT(per_block.size() == block_count(), "mask lift size mismatch");
    std::vector<bool> out(block_of_.size(), false);
    for (std::size_t s = 0; s < out.size(); ++s) out[s] = per_block[block_of_[s]];
    return out;
}

std::vector<std::vector<double>> QuotientCtmc::lift_series(
    const std::vector<std::vector<double>>& per_block_series) const {
    std::vector<std::vector<double>> out;
    out.reserve(per_block_series.size());
    for (const auto& d : per_block_series) out.push_back(lift(d));
    return out;
}

}  // namespace arcade::ctmc
