#include "ctmc/transient.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "linalg/kernels.hpp"
#include "numeric/fox_glynn.hpp"
#include "support/errors.hpp"

namespace arcade::ctmc {

namespace {

/// One application of the uniformised DTMC:  out = in * P  where
/// P = I + Q/lambda (Q = R with diagonal -exit_rate).
void uniformised_step(const Ctmc& chain, double lambda, std::span<const double> in,
                      std::span<double> out) {
    linalg::uniformised_multiply_left(chain.rates(), lambda, in, out);
}

}  // namespace

TransientEvolver::TransientEvolver(const Ctmc& chain, std::span<const double> initial,
                                   TransientOptions options)
    : chain_(chain),
      options_(options),
      lambda_(std::max(chain.max_exit_rate(), 1e-12) * 1.02),
      dist_(initial.begin(), initial.end()) {
    ARCADE_ASSERT(initial.size() == chain.state_count(), "initial size mismatch");
    if (options_.workspace != nullptr) {
        scratch_a_ = options_.workspace->acquire(chain.state_count());
        scratch_b_ = options_.workspace->acquire(chain.state_count());
    } else {
        scratch_a_.assign(chain.state_count(), 0.0);
        scratch_b_.assign(chain.state_count(), 0.0);
    }
}

TransientEvolver::~TransientEvolver() {
    if (options_.workspace != nullptr) {
        options_.workspace->release(std::move(scratch_a_));
        options_.workspace->release(std::move(scratch_b_));
    }
}

void TransientEvolver::step(double dt) {
    if (dt <= 0.0) return;
    const double q = lambda_ * dt;
    // Every evolver stepping the same grid over the same chain asks for the
    // same (q, epsilon): share the weights through the process-wide cache.
    const auto weights = numeric::fox_glynn_cached(q, options_.epsilon);

    // result = sum_k w_k * dist * P^k
    std::vector<double>& acc = scratch_a_;
    std::vector<double>& cur = scratch_b_;
    std::fill(acc.begin(), acc.end(), 0.0);
    cur = dist_;

    // k = 0 .. right
    for (std::size_t k = 0;; ++k) {
        const double w = weights->weight(k);
        if (w != 0.0) {
            for (std::size_t i = 0; i < acc.size(); ++i) acc[i] += w * cur[i];
        }
        if (k == weights->right) break;
        // cur = cur * P; reuse dist_ as the step target then swap.
        uniformised_step(chain_, lambda_, cur, dist_);
        std::swap(cur, dist_);
    }
    dist_ = acc;
}

void TransientEvolver::advance_to(double t) {
    if (t < time_) {
        // Duplicate grid points (within tolerance) clamp to the current
        // time — the distribution is already there and time never moves
        // backwards.  Genuinely decreasing times are a caller error.
        if (t < time_ - kTimeTolerance) {
            throw InvalidArgument("TransientEvolver::advance_to: t=" + std::to_string(t) +
                                  " is before the current time " + std::to_string(time_) +
                                  "; grid times must be non-decreasing");
        }
        return;
    }
    const double dt = t - time_;
    if (dt > 0.0) step(dt);
    time_ = t;
}

std::vector<double> transient_distribution(const Ctmc& chain, std::span<const double> initial,
                                           double t, const TransientOptions& options) {
    ARCADE_ASSERT(t >= 0.0, "negative time");
    TransientEvolver evolver(chain, initial, options);
    evolver.advance_to(t);
    return evolver.distribution();
}

std::vector<std::vector<double>> transient_series(const Ctmc& chain,
                                                  std::span<const double> initial,
                                                  std::span<const double> times,
                                                  const TransientOptions& options) {
    TransientEvolver evolver(chain, initial, options);
    std::vector<std::vector<double>> out;
    out.reserve(times.size());
    for (double t : times) {
        evolver.advance_to(t);
        out.push_back(evolver.distribution());
    }
    return out;
}

}  // namespace arcade::ctmc
