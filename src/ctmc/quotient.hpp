// Automatic CTMC reduction by strong-bisimulation lumping.
//
// A LumpSignature names everything a measure reads off a chain — labels and
// per-state value vectors (reward rates, service levels).  The QuotientCtmc
// is the coarsest ordinary-lumping quotient respecting that signature: every
// signature label and value vector is constant on each block, so any
// transient, steady-state, bounded-until or Markov-reward quantity whose
// state functional is built from the signature evaluates *exactly* on the
// quotient chain (project the initial distribution, run the unchanged
// solver, read block masses).  This is the reduction Table 1 of the paper
// obtains by hand-written lumped encodings, applied automatically to any
// chain — the same state-space move network-recovery MDPs and water-network
// maintenance studies rely on to stay tractable.
//
// lift() spreads block mass uniformly over members.  That is exact for every
// block-constant functional (anything in the signature) but *not* a
// per-state statement: two bisimilar states need not carry equal long-run
// mass.  Consumers that read per-state values outside the signature must
// analyse the original chain.
#ifndef ARCADE_CTMC_QUOTIENT_HPP
#define ARCADE_CTMC_QUOTIENT_HPP

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "ctmc/ctmc.hpp"
#include "graph/lumping.hpp"

namespace arcade::ctmc {

/// The observation surface a quotient must preserve: chain labels by name
/// plus arbitrary per-state value rows.  States differing in any entry are
/// never merged.
struct LumpSignature {
    std::vector<std::string> labels;          ///< labels of the chain to respect
    std::vector<std::vector<double>> values;  ///< per-state rows to respect
};

/// The quotient of a chain under the coarsest lumping respecting a
/// signature.  Owns the block map and a fully-formed quotient Ctmc (rates
/// between blocks, projected initial distribution, projected signature
/// labels) that every existing solver runs on unchanged.
class QuotientCtmc {
public:
    /// Computes the quotient.  Throws InvalidArgument when a signature
    /// label is missing from the chain or a value row has the wrong size.
    QuotientCtmc(const Ctmc& original, const LumpSignature& signature);

    /// The quotient chain (block-level CTMC).
    [[nodiscard]] const Ctmc& chain() const noexcept { return chain_; }

    [[nodiscard]] std::size_t original_state_count() const noexcept {
        return block_of_.size();
    }
    [[nodiscard]] std::size_t block_count() const noexcept { return block_sizes_.size(); }
    [[nodiscard]] std::size_t block_of(std::size_t state) const { return block_of_[state]; }
    [[nodiscard]] const std::vector<std::size_t>& block_map() const noexcept {
        return block_of_;
    }
    [[nodiscard]] const std::vector<std::size_t>& block_sizes() const noexcept {
        return block_sizes_;
    }

    /// States per block — the headline reduction factor (>= 1).
    [[nodiscard]] double reduction_ratio() const noexcept {
        return block_count() > 0 ? static_cast<double>(original_state_count()) /
                                       static_cast<double>(block_count())
                                 : 1.0;
    }

    /// Distribution projection: block mass = sum of member mass.
    [[nodiscard]] std::vector<double> project(std::span<const double> per_state) const;

    /// Mask projection.  Throws InvalidArgument when the mask is not
    /// block-constant (i.e. the signature did not cover it).
    [[nodiscard]] std::vector<bool> project_mask(const std::vector<bool>& per_state) const;

    /// Per-state value projection (reward rates).  Throws InvalidArgument
    /// when the values are not exactly block-constant.
    [[nodiscard]] std::vector<double> project_values(
        std::span<const double> per_state) const;

    /// Distribution lift: block mass spread uniformly over members.  Exact
    /// for block-constant functionals; see the header comment.
    [[nodiscard]] std::vector<double> lift(std::span<const double> per_block) const;

    /// Value lift: every member receives its block's value verbatim (the
    /// inverse of project_values).  This is the lift for per-state
    /// *functionals* — CSL satisfaction probabilities, reward values — which
    /// are block-constant on bisimilar states, unlike distribution mass.
    [[nodiscard]] std::vector<double> lift_values(std::span<const double> per_block) const;

    /// Mask lift: every member receives its block's bit verbatim (the
    /// inverse of project_mask) — CSL satisfaction sets come back this way.
    [[nodiscard]] std::vector<bool> lift_mask(const std::vector<bool>& per_block) const;

    /// Series lift: one lifted distribution per grid point.
    [[nodiscard]] std::vector<std::vector<double>> lift_series(
        const std::vector<std::vector<double>>& per_block_series) const;

private:
    struct Build {
        std::vector<std::size_t> block_of;
        std::vector<std::size_t> block_sizes;
        Ctmc chain;
    };
    explicit QuotientCtmc(Build&& b)
        : block_of_(std::move(b.block_of)),
          block_sizes_(std::move(b.block_sizes)),
          chain_(std::move(b.chain)) {}
    static Build build(const Ctmc& original, const LumpSignature& signature);

    std::vector<std::size_t> block_of_;
    std::vector<std::size_t> block_sizes_;
    Ctmc chain_;
};

}  // namespace arcade::ctmc

#endif  // ARCADE_CTMC_QUOTIENT_HPP
