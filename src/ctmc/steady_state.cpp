#include "ctmc/steady_state.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "graph/scc.hpp"
#include "linalg/vector_ops.hpp"
#include "support/errors.hpp"

namespace arcade::ctmc {

namespace {

/// Steady state within one BSCC, solved on the submatrix.
std::vector<double> bscc_steady_state(const Ctmc& chain, const std::vector<std::size_t>& members,
                                      const numeric::SolverOptions& options) {
    const std::size_t m = members.size();
    if (m == 1) return {1.0};

    std::vector<std::size_t> global_to_local(chain.state_count(),
                                             std::numeric_limits<std::size_t>::max());
    for (std::size_t i = 0; i < m; ++i) global_to_local[members[i]] = i;

    linalg::CsrBuilder b(m, m);
    for (std::size_t i = 0; i < m; ++i) {
        const std::size_t g = members[i];
        const auto cols = chain.rates().row_columns(g);
        const auto vals = chain.rates().row_values(g);
        for (std::size_t k = 0; k < cols.size(); ++k) {
            const std::size_t lj = global_to_local[cols[k]];
            ARCADE_ASSERT(lj != std::numeric_limits<std::size_t>::max(),
                          "BSCC has an escaping transition");
            b.add(i, lj, vals[k]);
        }
    }
    const linalg::CsrMatrix sub = b.build();
    std::vector<double> pi(m, 0.0);
    numeric::steady_state_gauss_seidel(sub, pi, options);
    return pi;
}

}  // namespace

std::vector<double> reachability_probability(const Ctmc& chain, const std::vector<bool>& allowed,
                                             const std::vector<bool>& targets,
                                             const numeric::SolverOptions& options) {
    const std::size_t n = chain.state_count();
    ARCADE_ASSERT(allowed.size() == n && targets.size() == n, "mask size mismatch");

    const linalg::CsrMatrix& rates = chain.rates();
    const linalg::CsrMatrix transposed = rates.transposed();

    // Qualitative precomputation keeps the linear system non-singular:
    // solve only on states that can reach targets via allowed states.
    std::vector<bool> maybe(n, false);
    {
        std::vector<std::size_t> frontier;
        for (std::size_t v = 0; v < n; ++v) {
            if (targets[v]) {
                maybe[v] = true;
                frontier.push_back(v);
            }
        }
        while (!frontier.empty()) {
            const std::size_t v = frontier.back();
            frontier.pop_back();
            for (std::size_t w : transposed.row_columns(v)) {
                if (!maybe[w] && allowed[w] && !targets[w]) {
                    maybe[w] = true;
                    frontier.push_back(w);
                }
            }
        }
    }

    // Embedded DTMC restricted to unknown states: x = A x + b where
    // A[i][j] = p_ij for unknown j, b[i] = sum over target j of p_ij.
    std::vector<std::size_t> unknown;  // maybe && !target
    std::vector<std::size_t> index(n, std::numeric_limits<std::size_t>::max());
    for (std::size_t v = 0; v < n; ++v) {
        if (maybe[v] && !targets[v]) {
            index[v] = unknown.size();
            unknown.push_back(v);
        }
    }

    std::vector<double> result(n, 0.0);
    for (std::size_t v = 0; v < n; ++v) {
        if (targets[v]) result[v] = 1.0;
    }
    if (unknown.empty()) return result;

    linalg::CsrBuilder ab(unknown.size(), unknown.size());
    std::vector<double> b(unknown.size(), 0.0);
    for (std::size_t li = 0; li < unknown.size(); ++li) {
        const std::size_t i = unknown[li];
        const double exit = chain.exit_rate(i);
        ARCADE_ASSERT(exit > 0.0, "unknown state with no exit cannot reach target");
        const auto cols = rates.row_columns(i);
        const auto vals = rates.row_values(i);
        for (std::size_t k = 0; k < cols.size(); ++k) {
            const std::size_t j = cols[k];
            if (j == i) continue;
            const double p = vals[k] / exit;
            if (targets[j]) {
                b[li] += p;
            } else if (index[j] != std::numeric_limits<std::size_t>::max()) {
                ab.add(li, index[j], p);
            }
            // transitions to !maybe states contribute probability 0
        }
    }
    std::vector<double> x(unknown.size(), 0.0);
    numeric::fixpoint_gauss_seidel(ab.build(), b, x, options);
    for (std::size_t li = 0; li < unknown.size(); ++li) {
        result[unknown[li]] = std::clamp(x[li], 0.0, 1.0);
    }
    return result;
}

std::vector<double> steady_state(const Ctmc& chain, const SteadyStateOptions& options) {
    const std::size_t n = chain.state_count();
    const auto scc = graph::strongly_connected_components(chain.rates());

    // Collect BSCC membership.
    std::vector<std::vector<std::size_t>> bsccs;
    std::vector<std::size_t> scc_to_bscc(scc.count, std::numeric_limits<std::size_t>::max());
    for (std::size_t c = 0; c < scc.count; ++c) {
        if (scc.bottom[c]) {
            scc_to_bscc[c] = bsccs.size();
            bsccs.emplace_back();
        }
    }
    for (std::size_t v = 0; v < n; ++v) {
        const std::size_t c = scc.component[v];
        if (scc.bottom[c]) bsccs[scc_to_bscc[c]].push_back(v);
    }
    ARCADE_ASSERT(!bsccs.empty(), "chain without BSCC");

    std::vector<double> pi(n, 0.0);

    if (bsccs.size() == 1 && bsccs[0].size() == n) {
        // Irreducible: single global solve.
        numeric::steady_state_gauss_seidel(chain.rates(), pi, options.solver);
        return pi;
    }

    // Reachability probability of each BSCC from the initial distribution.
    const auto& init = chain.initial_distribution();
    std::vector<bool> trivially_inside(bsccs.size(), false);
    const std::vector<bool> all_allowed(n, true);
    for (std::size_t bi = 0; bi < bsccs.size(); ++bi) {
        std::vector<bool> target(n, false);
        for (std::size_t v : bsccs[bi]) target[v] = true;
        const auto reach = reachability_probability(chain, all_allowed, target, options.solver);
        double mass = 0.0;
        for (std::size_t v = 0; v < n; ++v) mass += init[v] * reach[v];
        if (mass <= 0.0) continue;
        const auto local = bscc_steady_state(chain, bsccs[bi], options.solver);
        for (std::size_t i = 0; i < bsccs[bi].size(); ++i) {
            pi[bsccs[bi][i]] += mass * local[i];
        }
    }
    // Numerical guard: probabilities should already sum to ~1.
    const double total = linalg::sum(pi);
    ARCADE_ASSERT(std::abs(total - 1.0) < 1e-6,
                  "steady-state mass " + std::to_string(total) + " != 1");
    for (double& p : pi) p /= total;
    return pi;
}

double steady_state_probability(const Ctmc& chain, const std::vector<bool>& states,
                                const SteadyStateOptions& options) {
    ARCADE_ASSERT(states.size() == chain.state_count(), "mask size mismatch");
    const auto pi = steady_state(chain, options);
    double p = 0.0;
    for (std::size_t s = 0; s < pi.size(); ++s) {
        if (states[s]) p += pi[s];
    }
    return p;
}

}  // namespace arcade::ctmc
