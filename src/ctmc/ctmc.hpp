// Continuous-time Markov chain with atomic-proposition labelling.
//
// This is the analysis substrate the paper obtains from PRISM: an explicit
// sparse rate matrix over an explored state space, plus named state sets
// (labels) used by the CSL/CSRL layer and the Arcade measures.
#ifndef ARCADE_CTMC_CTMC_HPP
#define ARCADE_CTMC_CTMC_HPP

#include <cstddef>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "linalg/csr_matrix.hpp"

namespace arcade::ctmc {

/// Immutable CTMC: rate matrix R (off-diagonal, R[i][j] = rate i -> j),
/// an initial distribution, and named boolean labellings.
class Ctmc {
public:
    Ctmc(linalg::CsrMatrix rates, std::vector<double> initial_distribution);

    [[nodiscard]] std::size_t state_count() const noexcept { return rates_.rows(); }
    [[nodiscard]] std::size_t transition_count() const noexcept { return rates_.nonzeros(); }

    [[nodiscard]] const linalg::CsrMatrix& rates() const noexcept { return rates_; }
    [[nodiscard]] const std::vector<double>& initial_distribution() const noexcept {
        return initial_;
    }

    /// Total exit rate of `state`.  Cached at construction: uniformisation
    /// reads these on every solver setup, so they must not re-sum CSR rows.
    [[nodiscard]] double exit_rate(std::size_t state) const {
        return exit_rates_[state];
    }
    /// Largest exit rate over all states (uniformisation constant basis).
    [[nodiscard]] double max_exit_rate() const noexcept { return max_exit_rate_; }

    /// Registers a named state set.  Replaces an existing label of that name.
    void set_label(const std::string& name, std::vector<bool> states);
    [[nodiscard]] bool has_label(const std::string& name) const;
    [[nodiscard]] const std::vector<bool>& label(const std::string& name) const;
    /// Sorted snapshot: the registry itself is unordered (hash map on the
    /// hot lookup path), but exporters need a deterministic order.
    [[nodiscard]] std::vector<std::string> label_names() const;

    /// Point distribution helper.
    [[nodiscard]] static std::vector<double> point_distribution(std::size_t n,
                                                                std::size_t state);

    /// Returns a copy where every state in `absorbing` has its outgoing
    /// transitions removed.  Labels and initial distribution are preserved.
    [[nodiscard]] Ctmc make_absorbing(const std::vector<bool>& absorbing) const;

    /// Replaces the initial distribution (must have matching size; normalised
    /// by the caller or it throws).
    void set_initial_distribution(std::vector<double> initial);

private:
    linalg::CsrMatrix rates_;
    std::vector<double> initial_;
    std::vector<double> exit_rates_;  ///< per-state row sums sans diagonal
    double max_exit_rate_ = 0.0;
    std::unordered_map<std::string, std::vector<bool>> labels_;
};

}  // namespace arcade::ctmc

#endif  // ARCADE_CTMC_CTMC_HPP
