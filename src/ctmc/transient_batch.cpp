#include "ctmc/transient_batch.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "linalg/kernels.hpp"
#include "numeric/fox_glynn.hpp"
#include "support/errors.hpp"

namespace arcade::ctmc {

BatchTransientEvolver::BatchTransientEvolver(const Ctmc& chain,
                                             std::span<const std::vector<double>> columns,
                                             TransientOptions options)
    : chain_(chain),
      options_(options),
      lambda_(std::max(chain.max_exit_rate(), 1e-12) * 1.02),
      width_(columns.size()) {
    ARCADE_ASSERT(width_ > 0, "BatchTransientEvolver: no columns");
    const std::size_t n = chain.state_count();
    for (const auto& column : columns) {
        ARCADE_ASSERT(column.size() == n, "BatchTransientEvolver: column size mismatch");
    }
    if (options_.workspace != nullptr) {
        block_ = options_.workspace->acquire(n * width_);
        scratch_a_ = options_.workspace->acquire(n * width_);
        scratch_b_ = options_.workspace->acquire(n * width_);
    } else {
        block_.assign(n * width_, 0.0);
        scratch_a_.assign(n * width_, 0.0);
        scratch_b_.assign(n * width_, 0.0);
    }
    for (std::size_t s = 0; s < n; ++s) {
        for (std::size_t c = 0; c < width_; ++c) block_[s * width_ + c] = columns[c][s];
    }
}

BatchTransientEvolver::~BatchTransientEvolver() {
    if (options_.workspace != nullptr) {
        options_.workspace->release(std::move(block_));
        options_.workspace->release(std::move(scratch_a_));
        options_.workspace->release(std::move(scratch_b_));
    }
}

void BatchTransientEvolver::step(double dt) {
    if (dt <= 0.0) return;
    const double q = lambda_ * dt;
    const auto weights = numeric::fox_glynn_cached(q, options_.epsilon);

    // Per column this is exactly TransientEvolver::step: the weight
    // accumulation is element-wise (so the interleaved layout changes
    // nothing per column) and the batch kernel is bitwise per column.
    std::vector<double>& acc = scratch_a_;
    std::vector<double>& cur = scratch_b_;
    std::fill(acc.begin(), acc.end(), 0.0);
    cur = block_;

    for (std::size_t k = 0;; ++k) {
        const double w = weights->weight(k);
        if (w != 0.0) {
            for (std::size_t i = 0; i < acc.size(); ++i) acc[i] += w * cur[i];
        }
        if (k == weights->right) break;
        linalg::uniformised_multiply_left_batch(chain_.rates(), lambda_, cur, block_,
                                                width_);
        std::swap(cur, block_);
    }
    block_ = acc;
}

void BatchTransientEvolver::advance_to(double t) {
    if (t < time_) {
        if (t < time_ - TransientEvolver::kTimeTolerance) {
            throw InvalidArgument(
                "BatchTransientEvolver::advance_to: t=" + std::to_string(t) +
                " is before the current time " + std::to_string(time_) +
                "; grid times must be non-decreasing");
        }
        return;
    }
    const double dt = t - time_;
    if (dt > 0.0) step(dt);
    time_ = t;
}

void BatchTransientEvolver::extract_column(std::size_t c, std::span<double> out) const {
    ARCADE_ASSERT(c < width_, "BatchTransientEvolver: column out of range");
    ARCADE_ASSERT(out.size() == chain_.state_count(),
                  "BatchTransientEvolver: output size mismatch");
    for (std::size_t s = 0; s < out.size(); ++s) out[s] = block_[s * width_ + c];
}

std::vector<double> BatchTransientEvolver::column(std::size_t c) const {
    std::vector<double> out(chain_.state_count(), 0.0);
    extract_column(c, out);
    return out;
}

}  // namespace arcade::ctmc
