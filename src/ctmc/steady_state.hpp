// Long-run (steady-state) analysis of CTMCs.
//
// Handles the general (reducible) case via BSCC decomposition:
//   pi(s) = sum_B P(reach B from initial) * pi_B(s)
// where pi_B is the conditional steady-state distribution inside BSCC B and
// the reachability probabilities are solved on the embedded DTMC.
#ifndef ARCADE_CTMC_STEADY_STATE_HPP
#define ARCADE_CTMC_STEADY_STATE_HPP

#include <vector>

#include "ctmc/ctmc.hpp"
#include "numeric/linear_solvers.hpp"

namespace arcade::ctmc {

struct SteadyStateOptions {
    numeric::SolverOptions solver;
};

/// Steady-state distribution weighted by the chain's initial distribution.
/// Works for irreducible and reducible chains (absorbing states form
/// singleton BSCCs).
[[nodiscard]] std::vector<double> steady_state(const Ctmc& chain,
                                               const SteadyStateOptions& options = {});

/// Steady-state probability of the given state set (long-run availability
/// when `states` labels the operational states).
[[nodiscard]] double steady_state_probability(const Ctmc& chain,
                                              const std::vector<bool>& states,
                                              const SteadyStateOptions& options = {});

/// Probability of eventually reaching `targets` from each state while
/// remaining inside `allowed` (unbounded until on the embedded DTMC).
/// States outside `allowed` that are not targets have probability 0.
[[nodiscard]] std::vector<double> reachability_probability(
    const Ctmc& chain, const std::vector<bool>& allowed, const std::vector<bool>& targets,
    const numeric::SolverOptions& options = {});

}  // namespace arcade::ctmc

#endif  // ARCADE_CTMC_STEADY_STATE_HPP
