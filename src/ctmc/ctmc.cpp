#include "ctmc/ctmc.hpp"

#include <algorithm>
#include <cmath>

#include "support/errors.hpp"

namespace arcade::ctmc {

Ctmc::Ctmc(linalg::CsrMatrix rates, std::vector<double> initial_distribution)
    : rates_(std::move(rates)), initial_(std::move(initial_distribution)) {
    if (rates_.rows() != rates_.cols()) throw InvalidArgument("rate matrix must be square");
    if (initial_.size() != rates_.rows()) {
        throw InvalidArgument("initial distribution size mismatch");
    }
    double mass = 0.0;
    for (double p : initial_) {
        if (p < -1e-12) throw InvalidArgument("negative initial probability");
        mass += p;
    }
    if (std::abs(mass - 1.0) >= 1e-9) {
        throw InvalidArgument("initial distribution must sum to 1");
    }
    for (double v : rates_.values()) {
        if (v < 0.0) throw InvalidArgument("negative transition rate");
    }
    exit_rates_.resize(rates_.rows());
    for (std::size_t s = 0; s < rates_.rows(); ++s) {
        const auto cols = rates_.row_columns(s);
        const auto vals = rates_.row_values(s);
        double r = 0.0;
        for (std::size_t k = 0; k < cols.size(); ++k) {
            if (cols[k] != s) r += vals[k];
        }
        exit_rates_[s] = r;
        max_exit_rate_ = std::max(max_exit_rate_, r);
    }
}

void Ctmc::set_label(const std::string& name, std::vector<bool> states) {
    ARCADE_ASSERT(states.size() == state_count(), "label size mismatch for '" + name + "'");
    labels_[name] = std::move(states);
}

bool Ctmc::has_label(const std::string& name) const { return labels_.count(name) > 0; }

const std::vector<bool>& Ctmc::label(const std::string& name) const {
    const auto it = labels_.find(name);
    if (it == labels_.end()) throw ModelError("unknown label '" + name + "'");
    return it->second;
}

std::vector<std::string> Ctmc::label_names() const {
    std::vector<std::string> names;
    names.reserve(labels_.size());
    for (const auto& [k, v] : labels_) names.push_back(k);
    std::sort(names.begin(), names.end());
    return names;
}

std::vector<double> Ctmc::point_distribution(std::size_t n, std::size_t state) {
    ARCADE_ASSERT(state < n, "point distribution state out of range");
    std::vector<double> d(n, 0.0);
    d[state] = 1.0;
    return d;
}

Ctmc Ctmc::make_absorbing(const std::vector<bool>& absorbing) const {
    ARCADE_ASSERT(absorbing.size() == state_count(), "absorbing mask size mismatch");
    linalg::CsrBuilder b(state_count(), state_count());
    for (std::size_t s = 0; s < state_count(); ++s) {
        if (absorbing[s]) continue;
        const auto cols = rates_.row_columns(s);
        const auto vals = rates_.row_values(s);
        for (std::size_t k = 0; k < cols.size(); ++k) {
            b.add(s, cols[k], vals[k]);
        }
    }
    Ctmc out(b.build(), initial_);
    out.labels_ = labels_;
    return out;
}

void Ctmc::set_initial_distribution(std::vector<double> initial) {
    ARCADE_ASSERT(initial.size() == state_count(), "initial distribution size mismatch");
    double mass = 0.0;
    for (double p : initial) mass += p;
    if (std::abs(mass - 1.0) > 1e-9) {
        throw InvalidArgument("initial distribution must sum to 1");
    }
    initial_ = std::move(initial);
}

}  // namespace arcade::ctmc
