// Fox–Glynn computation of Poisson probabilities for uniformisation.
//
// Computes weights w_k ∝ e^{-q} q^k / k! for k in [left, right] such that the
// total truncated mass is ≥ 1 - epsilon, without underflow for large q.
// Reference: B. Fox, P. Glynn, "Computing Poisson probabilities", CACM 1988.
#ifndef ARCADE_NUMERIC_FOX_GLYNN_HPP
#define ARCADE_NUMERIC_FOX_GLYNN_HPP

#include <cstddef>
#include <memory>
#include <vector>

namespace arcade::numeric {

/// Truncated, normalised Poisson weight vector.
struct PoissonWeights {
    std::size_t left = 0;               ///< first index with non-negligible mass
    std::size_t right = 0;              ///< last index included
    std::vector<double> weights;        ///< weights[k-left] = P(N=k), normalised
    double total_before_norm = 0.0;     ///< truncated mass before normalisation

    [[nodiscard]] double weight(std::size_t k) const {
        if (k < left || k > right) return 0.0;
        return weights[k - left];
    }
};

/// Computes the Fox–Glynn window and weights for rate `q` ≥ 0 and truncation
/// error `epsilon` (total missing probability mass).  For q == 0 returns the
/// degenerate distribution at k = 0.  The returned window always satisfies
/// total_before_norm ≥ 1 - epsilon; if no double-precision window can (the
/// requested epsilon is below the summation's rounding floor), throws
/// ConvergenceError instead of silently returning under-covering weights.
[[nodiscard]] PoissonWeights fox_glynn(double q, double epsilon);

/// fox_glynn through a small process-wide LRU cache keyed by the exact bit
/// patterns of (q, epsilon).  Uniformisation walks a fixed time grid, so
/// every step of every sweep cell over the same chain asks for the same
/// (lambda·dt, epsilon) pair — the cache turns those recomputations into a
/// shared lookup.  Cached weights are the same values fox_glynn would
/// return (same computation, run once), so byte-identity of every consumer
/// is preserved.  ConvergenceError is propagated, never cached.
/// Thread-safe; callers keep the result alive via the shared_ptr even if
/// the entry is evicted.
[[nodiscard]] std::shared_ptr<const PoissonWeights> fox_glynn_cached(double q,
                                                                     double epsilon);

/// Hit/miss counters of the fox_glynn_cached LRU (process-wide).
struct FoxGlynnCacheStats {
    std::size_t hits = 0;
    std::size_t misses = 0;
};

[[nodiscard]] FoxGlynnCacheStats fox_glynn_cache_stats();

/// Empties the LRU and zeroes its counters (tests).
void fox_glynn_cache_clear();

/// Direct Poisson pmf e^{-q} q^k / k!, numerically stable via logs.
[[nodiscard]] double poisson_pmf(double q, std::size_t k);

}  // namespace arcade::numeric

#endif  // ARCADE_NUMERIC_FOX_GLYNN_HPP
