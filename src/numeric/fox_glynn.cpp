#include "numeric/fox_glynn.hpp"

#include <bit>
#include <cmath>
#include <cstdint>
#include <list>
#include <map>
#include <mutex>
#include <utility>

#include "linalg/vector_ops.hpp"
#include "support/errors.hpp"

namespace arcade::numeric {

double poisson_pmf(double q, std::size_t k) {
    if (q == 0.0) return k == 0 ? 1.0 : 0.0;
    const double log_p =
        -q + static_cast<double>(k) * std::log(q) - std::lgamma(static_cast<double>(k) + 1.0);
    return std::exp(log_p);
}

PoissonWeights fox_glynn(double q, double epsilon) {
    ARCADE_ASSERT(q >= 0.0, "fox_glynn: negative rate");
    ARCADE_ASSERT(epsilon > 0.0 && epsilon < 1.0, "fox_glynn: epsilon out of (0,1)");

    PoissonWeights out;
    if (q == 0.0) {
        out.left = out.right = 0;
        out.weights = {1.0};
        out.total_before_norm = 1.0;
        return out;
    }

    // Choose the window [left, right] around the mode m = floor(q) so that the
    // two tails each hold at most epsilon/2.  For moderate q we simply widen
    // k*sqrt(q) bands; this is simpler than the original paper's bounds and
    // safe because we verify the captured mass below and widen if necessary.
    const double mode = std::floor(q);
    const double sd = std::sqrt(q);

    auto window = [&](double widths) {
        const double lo = mode - widths * sd - 4.0;
        const double hi = mode + widths * sd + 4.0;
        const std::size_t left = lo > 0.0 ? static_cast<std::size_t>(lo) : 0;
        const std::size_t right = static_cast<std::size_t>(hi);
        return std::pair<std::size_t, std::size_t>(left, right);
    };

    // Widen until the captured mass actually meets the bound.  The window
    // grows geometrically, so a handful of iterations suffice for any sane
    // epsilon.  Beyond ~1e3 sigma the true tail mass is below the smallest
    // denormal, so a still-unmet bound means epsilon sits under the
    // summation's own rounding floor: refuse rather than silently return
    // under-covering weights.  Likewise once the window spans the entire
    // effective support ([0, 2·mode + 100]) widening cannot add mass.
    double widths = 5.0;
    for (;; widths *= 1.5) {
        const auto [left, right] = window(widths);
        // Evaluate weights from the mode outwards using the recurrences
        //   p_{k+1} = p_k * q / (k+1),  p_{k-1} = p_k * k / q
        // scaled so the mode has value 1, then normalise by the true total.
        const std::size_t m = static_cast<std::size_t>(mode);
        std::vector<double> w(right - left + 1, 0.0);
        const std::size_t mi = m - left;
        w[mi] = 1.0;
        for (std::size_t k = m; k > left; --k) {
            w[k - 1 - left] = w[k - left] * static_cast<double>(k) / q;
        }
        for (std::size_t k = m; k < right; ++k) {
            w[k + 1 - left] = w[k - left] * q / static_cast<double>(k + 1);
        }
        // Neumaier-compensated sum: the window can hold millions of terms
        // and a naively accumulated total would carry more rounding error
        // than the epsilons we must certify.
        const double total = linalg::neumaier_sum(w);
        // Certify coverage via geometric tail bounds in the same scaled
        // units as the weights.  (total * pmf(mode) is useless here: the
        // log-pmf cancels ~q-sized terms, so its error alone exceeds tight
        // epsilons once q is large.)  For k > right the ratio
        // p_{k+1}/p_k = q/(k+1) <= rr < 1, so the right tail is at most
        // w_right * rr/(1-rr); symmetrically for the left tail with
        // p_{k-1}/p_k = k/q <= rl < 1.
        const double rr = q / (static_cast<double>(right) + 1.0);
        double tail = w[right - left] * rr / (1.0 - rr);
        if (left > 0) {
            const double rl = static_cast<double>(left) / q;
            tail += w[0] * rl / (1.0 - rl);
        }
        const double truncated_mass = 1.0 - tail / total;
        if (truncated_mass >= 1.0 - epsilon) {
            out.left = left;
            out.right = right;
            out.weights.resize(w.size());
            for (std::size_t i = 0; i < w.size(); ++i) out.weights[i] = w[i] / total;
            out.total_before_norm = std::min(truncated_mass, 1.0);
            return out;
        }
        const bool support_covered =
            left == 0 && static_cast<double>(right) >= 2.0 * mode + 100.0;
        if (widths > 1.0e3 || support_covered) {
            throw ConvergenceError(
                "fox_glynn: cannot capture 1 - epsilon of the Poisson mass for q=" +
                std::to_string(q) + ", epsilon=" + std::to_string(epsilon) +
                " (captured " + std::to_string(truncated_mass) + " with window [" +
                std::to_string(left) + ", " + std::to_string(right) + "])");
        }
    }
}

namespace {

// Exact-bits key: distinct doubles (including -0.0 vs +0.0 and NaN payloads)
// get distinct entries, so a cache hit can only ever return weights computed
// from the very same inputs.
using CacheKey = std::pair<std::uint64_t, std::uint64_t>;

struct FoxGlynnCache {
    std::mutex mutex;
    // Most-recent at the front; `index` maps keys to their list position so
    // a hit is one splice, an eviction one pop_back.
    std::list<std::pair<CacheKey, std::shared_ptr<const PoissonWeights>>> lru;
    std::map<CacheKey, decltype(lru)::iterator> index;
    FoxGlynnCacheStats stats;
    static constexpr std::size_t kCapacity = 64;
};

FoxGlynnCache& cache() {
    static FoxGlynnCache instance;
    return instance;
}

}  // namespace

std::shared_ptr<const PoissonWeights> fox_glynn_cached(double q, double epsilon) {
    const CacheKey key{std::bit_cast<std::uint64_t>(q),
                       std::bit_cast<std::uint64_t>(epsilon)};
    FoxGlynnCache& c = cache();
    {
        std::lock_guard<std::mutex> lock(c.mutex);
        const auto it = c.index.find(key);
        if (it != c.index.end()) {
            c.lru.splice(c.lru.begin(), c.lru, it->second);
            ++c.stats.hits;
            return c.lru.front().second;
        }
    }
    // Compute outside the lock: the window search can be expensive and may
    // throw.  Two threads racing on the same key both compute the same
    // deterministic weights; the loser's insert below just finds the entry
    // already present.
    auto weights = std::make_shared<const PoissonWeights>(fox_glynn(q, epsilon));
    std::lock_guard<std::mutex> lock(c.mutex);
    ++c.stats.misses;
    const auto it = c.index.find(key);
    if (it != c.index.end()) {
        c.lru.splice(c.lru.begin(), c.lru, it->second);
        return c.lru.front().second;
    }
    c.lru.emplace_front(key, std::move(weights));
    c.index.emplace(key, c.lru.begin());
    if (c.lru.size() > FoxGlynnCache::kCapacity) {
        c.index.erase(c.lru.back().first);
        c.lru.pop_back();
    }
    return c.lru.front().second;
}

FoxGlynnCacheStats fox_glynn_cache_stats() {
    FoxGlynnCache& c = cache();
    std::lock_guard<std::mutex> lock(c.mutex);
    return c.stats;
}

void fox_glynn_cache_clear() {
    FoxGlynnCache& c = cache();
    std::lock_guard<std::mutex> lock(c.mutex);
    c.lru.clear();
    c.index.clear();
    c.stats = {};
}

}  // namespace arcade::numeric
