#include "numeric/linear_solvers.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/kernels.hpp"
#include "linalg/vector_ops.hpp"
#include "support/errors.hpp"

namespace arcade::numeric {

namespace {

double criterion(double newv, double oldv, bool relative) {
    const double diff = std::abs(newv - oldv);
    if (!relative) return diff;
    const double scale = std::max(std::abs(newv), 1e-300);
    return diff / scale;
}

}  // namespace

SolverResult steady_state_gauss_seidel(const linalg::CsrMatrix& rate_matrix,
                                       std::span<double> pi, const SolverOptions& options) {
    const std::size_t n = rate_matrix.rows();
    ARCADE_ASSERT(rate_matrix.cols() == n, "steady state needs square matrix");
    ARCADE_ASSERT(pi.size() == n, "pi size mismatch");

    // Precompute incoming edges and exit rates.
    const linalg::CsrMatrix incoming = rate_matrix.transposed();
    std::vector<double> exit_rate(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        const auto cols = rate_matrix.row_columns(i);
        const auto vals = rate_matrix.row_values(i);
        for (std::size_t k = 0; k < cols.size(); ++k) {
            if (cols[k] != i) exit_rate[i] += vals[k];
        }
    }

    // Initial guess: uniform.
    const double u = 1.0 / static_cast<double>(n);
    for (double& x : pi) x = u;

    SolverResult res;
    for (std::size_t it = 0; it < options.max_iterations; ++it) {
        double worst = 0.0;
        for (std::size_t j = 0; j < n; ++j) {
            if (exit_rate[j] <= 0.0) continue;  // absorbing: handled by caller
            const double inflow = linalg::gather_skip_diag(
                incoming.row_columns(j), incoming.row_values(j), pi, j, 0.0);
            const double newv = inflow / exit_rate[j];
            worst = std::max(worst, criterion(newv, pi[j], options.relative));
            pi[j] = newv;
        }
        res.iterations = it + 1;
        res.final_error = worst;
        if (worst < options.epsilon) {
            linalg::normalize(pi);
            return res;
        }
    }
    throw ConvergenceError("steady_state_gauss_seidel: no convergence after " +
                           std::to_string(options.max_iterations) + " iterations (err=" +
                           std::to_string(res.final_error) + ")");
}

SolverResult fixpoint_gauss_seidel(const linalg::CsrMatrix& a, std::span<const double> b,
                                   std::span<double> x, const SolverOptions& options) {
    const std::size_t n = a.rows();
    ARCADE_ASSERT(a.cols() == n, "fixpoint needs square matrix");
    ARCADE_ASSERT(b.size() == n && x.size() == n, "rhs/solution size mismatch");

    SolverResult res;
    for (std::size_t it = 0; it < options.max_iterations; ++it) {
        double worst = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            double diag = 0.0;
            const double acc = linalg::gather_capture_diag(a.row_columns(i), a.row_values(i),
                                                           x, i, b[i], diag);
            // x_i = a_ii x_i + acc  =>  x_i = acc / (1 - a_ii)
            ARCADE_ASSERT(diag < 1.0, "fixpoint: diagonal >= 1 is singular");
            const double newv = acc / (1.0 - diag);
            worst = std::max(worst, criterion(newv, x[i], options.relative));
            x[i] = newv;
        }
        res.iterations = it + 1;
        res.final_error = worst;
        if (worst < options.epsilon) return res;
    }
    throw ConvergenceError("fixpoint_gauss_seidel: no convergence after " +
                           std::to_string(options.max_iterations) + " iterations");
}

SolverResult steady_state_power(const linalg::CsrMatrix& rate_matrix, std::span<double> pi,
                                const SolverOptions& options) {
    const std::size_t n = rate_matrix.rows();
    ARCADE_ASSERT(rate_matrix.cols() == n && pi.size() == n, "shape mismatch");

    // Uniformise: P = I + Q/Lambda.
    std::vector<double> exit_rate(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        const auto cols = rate_matrix.row_columns(i);
        const auto vals = rate_matrix.row_values(i);
        for (std::size_t k = 0; k < cols.size(); ++k) {
            if (cols[k] != i) exit_rate[i] += vals[k];
        }
    }
    double lambda = 0.0;
    for (double r : exit_rate) lambda = std::max(lambda, r);
    if (lambda == 0.0) lambda = 1.0;
    lambda *= 1.02;

    const double u = 1.0 / static_cast<double>(n);
    for (double& x : pi) x = u;
    std::vector<double> next(n, 0.0);

    SolverResult res;
    for (std::size_t it = 0; it < options.max_iterations; ++it) {
        linalg::uniformised_multiply_left(rate_matrix, lambda, pi, next);
        const double err = options.relative ? linalg::relative_distance(next, pi)
                                            : linalg::linf_distance(next, pi);
        std::copy(next.begin(), next.end(), pi.begin());
        res.iterations = it + 1;
        res.final_error = err;
        if (err < options.epsilon) {
            linalg::normalize(pi);
            return res;
        }
    }
    throw ConvergenceError("steady_state_power: no convergence");
}

}  // namespace arcade::numeric
