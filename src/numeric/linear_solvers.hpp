// Iterative linear-system solvers used by steady-state and unbounded-until
// computations.  All operate on CSR matrices.
#ifndef ARCADE_NUMERIC_LINEAR_SOLVERS_HPP
#define ARCADE_NUMERIC_LINEAR_SOLVERS_HPP

#include <cstddef>
#include <span>
#include <vector>

#include "linalg/csr_matrix.hpp"

namespace arcade::numeric {

/// Convergence parameters shared by the iterative methods.
struct SolverOptions {
    double epsilon = 1e-12;        ///< termination threshold
    bool relative = true;          ///< relative vs absolute criterion
    std::size_t max_iterations = 1'000'000;
};

struct SolverResult {
    std::size_t iterations = 0;
    double final_error = 0.0;
};

/// Solves x = x P for a stochastic matrix P restricted to an irreducible
/// closed set, via Gauss–Seidel sweeps on the balance equations
///   x_j * (sum of outgoing) = sum_i x_i p_ij  (i != j),
/// then normalises x to sum to 1.
///
/// `rate_matrix` is a CTMC rate matrix (off-diagonal rates; diagonal ignored).
/// Throws ConvergenceError when the iteration budget is exhausted.
SolverResult steady_state_gauss_seidel(const linalg::CsrMatrix& rate_matrix,
                                       std::span<double> pi,
                                       const SolverOptions& options = {});

/// Solves the reachability linear system  x = A x + b  by Gauss–Seidel, where
/// A is sub-stochastic (spectral radius < 1 on the solved subset).
/// Used for unbounded until probabilities on the embedded DTMC.
SolverResult fixpoint_gauss_seidel(const linalg::CsrMatrix& a,
                                   std::span<const double> b, std::span<double> x,
                                   const SolverOptions& options = {});

/// Power iteration x <- x P with normalisation; robust fallback for
/// steady-state computation (slower than Gauss–Seidel but matrix-free order).
SolverResult steady_state_power(const linalg::CsrMatrix& rate_matrix,
                                std::span<double> pi, const SolverOptions& options = {});

}  // namespace arcade::numeric

#endif  // ARCADE_NUMERIC_LINEAR_SOLVERS_HPP
