// Native code generation for compiled expression programs (stage 2 of the
// transition-function compilation pipeline).
//
// `build_native_unit(programs, slot_is_bool)` translates a set of bytecode
// Programs — everything one model evaluates: guards, rates, assignments,
// labels, rewards — into ONE generated C++ translation unit, compiles it
// out of process with the host toolchain ($ARCADE_CXX, then $CXX, then
// `c++`), `dlopen`s the result and returns a NativeUnit exposing one
// callable per program.  Generation starts from the VM bytecode, not the
// Expr trees, so the generated code inherits the VM's constant folding and
// short-circuit lowering, and the emitted operators replicate
// apply_binary/apply_unary statement for statement — a successful native
// call returns the bit-identical Value the VM would.  Failing calls (type
// errors, division by zero) report failure instead of raising: the caller
// re-runs the paired VM program, which throws the identical ModelError.
// The VM is therefore the differential-test oracle for this backend,
// exactly as the tree interpreter is for the VM.
//
// Units are cached at two levels, both content-addressed by an FNV-1a hash
// of the generated source: a process-wide in-memory cache of live dlopen'ed
// handles (repeat explores of one model pay neither compile nor reload),
// and an on-disk cache under $ARCADE_CODEGEN_CACHE (default: a per-user
// directory beneath the system temp dir) whose hits skip the compile and
// only pay a dlopen.  When no toolchain, no dlopen, or no writable
// cache dir is available, build_native_unit returns nullptr and bumps the
// process-wide fallback counter — consumers degrade to the VM gracefully.
#ifndef ARCADE_EXPR_CODEGEN_HPP
#define ARCADE_EXPR_CODEGEN_HPP

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "expr/vm.hpp"

namespace arcade::expr {

/// Process-wide codegen traffic (snapshotted into engine::SessionStats and
/// the sweep counter exports).
struct CodegenCounters {
    std::size_t builds = 0;      ///< units compiled out of process
    std::size_t cache_hits = 0;  ///< units reloaded from the on-disk cache
    std::size_t fallbacks = 0;   ///< failed builds (consumer ran the VM)
};

/// Current process-wide counter values (monotonic).
[[nodiscard]] CodegenCounters codegen_counters();

/// A dlopen'ed unit of natively compiled programs.  Immutable after build;
/// the function pointers are pure over the state span, so one unit is safe
/// to share across the explorer's worker threads.
class NativeUnit {
public:
    NativeUnit(const NativeUnit&) = delete;
    NativeUnit& operator=(const NativeUnit&) = delete;
    ~NativeUnit();

    /// Number of callable programs (== programs.size() at build).
    [[nodiscard]] std::size_t size() const noexcept { return fns_.size(); }

    /// Runs program `fn` over the raw state valuation (`state[i]` is slot
    /// i's packed value; bool slots were declared at build time).  Returns
    /// false when the evaluation would throw — the caller must re-run the
    /// paired VM program to raise the identical ModelError.
    [[nodiscard]] bool try_run(std::size_t fn, std::span<const std::int64_t> state,
                               Value& out) const;

    /// Path of the loaded shared object (diagnostics/tests).
    [[nodiscard]] const std::string& path() const noexcept { return path_; }

private:
    NativeUnit() = default;
    friend std::shared_ptr<const NativeUnit> build_native_unit(
        std::span<const Program* const> programs, const std::vector<bool>& slot_is_bool);

    using Fn = int (*)(const std::int64_t*, long long*, double*);
    void* handle_ = nullptr;
    std::vector<Fn> fns_;
    std::string path_;
};

/// Generates, compiles and loads one native unit for `programs`.
/// `slot_is_bool[i]` declares slot i's type (LoadSlot instructions convert
/// the raw int64 exactly like the explorer's fill_slots).  Every program's
/// LoadSlot indices must be < slot_is_bool.size().  Returns nullptr — and
/// counts a fallback — when the toolchain, dlopen or the cache dir is
/// unavailable; never throws for environmental failures.
[[nodiscard]] std::shared_ptr<const NativeUnit> build_native_unit(
    std::span<const Program* const> programs, const std::vector<bool>& slot_is_bool);

}  // namespace arcade::expr

#endif  // ARCADE_EXPR_CODEGEN_HPP
