#include "expr/vm.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <utility>
#include <variant>

#include "support/errors.hpp"

namespace arcade::expr {

EvalMode default_eval_mode() {
    static const EvalMode mode = [] {
        const char* env = std::getenv("ARCADE_EVAL");
        if (env != nullptr && std::string(env) == "interp") return EvalMode::Interp;
        if (env != nullptr && std::string(env) == "codegen") return EvalMode::Codegen;
        return EvalMode::Vm;
    }();
    return mode;
}

/// Single-expression code generator.  Register allocation is a simple
/// expression-stack discipline: a node's result lands in `dst`, temporaries
/// live above it.  gen() returns the subtree's value when it is known at
/// compile time (after constant resolution), enabling peephole folds that
/// truncate the just-emitted instructions — a fold is only committed when
/// applying the operator does not throw, so ill-typed subtrees keep their
/// instructions and fail at run() exactly like the interpreter.
class Compiler {
public:
    Compiler(const SlotMap& slots, Program& out) : slots_(slots), out_(out) {}

    void compile(const Expr& expr) {
        const std::optional<Value> known = gen(expr, 0);
        if (known.has_value()) {
            out_.code_.clear();
            emit(OpCode::LoadConst, 0, 0, pool_index(*known));
        }
        out_.register_count_ = max_regs_;
    }

private:
    static constexpr std::uint32_t kMaxRegisters = 0xFFFF;

    std::uint32_t pool_index(const Value& v) {
        // Pools are tiny; a linear scan beats hashing Value variants.
        for (std::uint32_t i = 0; i < out_.pool_.size(); ++i) {
            if (bitwise_equal(out_.pool_[i], v)) return i;
        }
        out_.pool_.push_back(v);
        return static_cast<std::uint32_t>(out_.pool_.size() - 1);
    }

    /// Pool deduplication must be bit-exact (0.0 vs -0.0, type-aware).
    static bool bitwise_equal(const Value& a, const Value& b) {
        if (a.is_bool() != b.is_bool() || a.is_int() != b.is_int() ||
            a.is_double() != b.is_double()) {
            return false;
        }
        if (a.is_bool()) return a.as_bool() == b.as_bool();
        if (a.is_int()) return a.as_int() == b.as_int();
        const double x = a.as_double();
        const double y = b.as_double();
        return std::memcmp(&x, &y, sizeof x) == 0;
    }

    void emit(OpCode op, std::uint32_t a, std::uint32_t b, std::uint32_t c) {
        ARCADE_ASSERT(a <= kMaxRegisters && b <= kMaxRegisters, "register overflow");
        out_.code_.push_back(Instr{op, static_cast<std::uint16_t>(a),
                                   static_cast<std::uint16_t>(b), c});
    }

    void touch(std::uint32_t reg) { max_regs_ = std::max(max_regs_, reg + 1); }

    /// Rolls the instruction stream back to `mark` (committing a fold).
    void truncate(std::size_t mark) { out_.code_.resize(mark); }

    std::uint32_t here() const { return static_cast<std::uint32_t>(out_.code_.size()); }

    std::optional<Value> gen_const(const Value& v, std::uint32_t dst, std::size_t mark) {
        truncate(mark);
        emit(OpCode::LoadConst, dst, 0, pool_index(v));
        return v;
    }

    std::optional<Value> gen(const Expr& e, std::uint32_t dst) {
        touch(dst);
        const std::size_t mark = out_.code_.size();
        const auto& n = e.node();
        if (const auto* lit = std::get_if<Literal>(&n)) {
            return gen_const(lit->value, dst, mark);
        }
        if (const auto* id = std::get_if<Identifier>(&n)) {
            const auto it = slots_.slots.find(id->name);
            if (it != slots_.slots.end()) {
                emit(OpCode::LoadSlot, dst, 0, it->second);
                return std::nullopt;
            }
            if (slots_.constants != nullptr) {
                const auto cit = slots_.constants->find(id->name);
                if (cit != slots_.constants->end()) {
                    return gen_const(cit->second, dst, mark);
                }
            }
            throw ModelError("unknown identifier '" + id->name + "' in expression");
        }
        if (const auto* u = std::get_if<Unary>(&n)) {
            const std::optional<Value> k = gen(u->operand, dst);
            if (k.has_value()) {
                try {
                    return gen_const(apply_unary(u->op, *k), dst, mark);
                } catch (const ModelError&) {
                    // keep the instructions: the error belongs to run()
                }
            }
            emit(unary_opcode(u->op), dst, dst, 0);
            return std::nullopt;
        }
        if (const auto* b = std::get_if<Binary>(&n)) {
            if (b->op == BinaryOp::And || b->op == BinaryOp::Or) {
                return gen_short_circuit(*b, dst, mark);
            }
            const std::optional<Value> lk = gen(b->lhs, dst);
            const std::optional<Value> rk = gen(b->rhs, dst + 1);
            if (lk.has_value() && rk.has_value()) {
                try {
                    return gen_const(apply_binary(b->op, *lk, *rk), dst, mark);
                } catch (const ModelError&) {
                }
            }
            emit(binary_opcode(b->op), dst, dst, dst + 1);
            return std::nullopt;
        }
        const auto& ite = std::get<Ite>(n);
        const std::optional<Value> ck = gen(ite.cond, dst);
        if (ck.has_value() && ck->is_bool()) {
            truncate(mark);
            return gen(ck->as_bool() ? ite.then_branch : ite.else_branch, dst);
        }
        // JumpIfFalse raises the interpreter's as_bool error on a non-bool
        // condition, so a known ill-typed condition still compiles.
        const std::uint32_t branch = here();
        emit(OpCode::JumpIfFalse, 0, dst, 0);
        gen(ite.then_branch, dst);
        const std::uint32_t skip = here();
        emit(OpCode::Jump, 0, 0, 0);
        out_.code_[branch].c = here();
        gen(ite.else_branch, dst);
        out_.code_[skip].c = here();
        return std::nullopt;
    }

    /// `&`/`|` with the interpreter's exact short-circuit semantics:
    /// lhs.as_bool() decides; the rhs result passes through as_bool too.
    std::optional<Value> gen_short_circuit(const Binary& b, std::uint32_t dst,
                                           std::size_t mark) {
        const bool is_and = b.op == BinaryOp::And;
        const std::optional<Value> lk = gen(b.lhs, dst);
        if (lk.has_value() && lk->is_bool()) {
            if (lk->as_bool() != is_and) {
                // false & g  /  true | g: the rhs is provably unevaluated.
                return gen_const(Value(!is_and), dst, mark);
            }
            // true & g  /  false | g: the result is g coerced to bool.
            truncate(mark);
            const std::optional<Value> rk = gen(b.rhs, dst);
            if (rk.has_value() && rk->is_bool()) return gen_const(*rk, dst, mark);
            emit(OpCode::CastBool, dst, dst, 0);
            return std::nullopt;
        }
        // General case (also a known non-bool lhs, whose error surfaces at
        // the branch).  On the taken branch dst already holds the lhs bool,
        // which IS the result — no extra load needed.
        const std::uint32_t branch = here();
        emit(is_and ? OpCode::JumpIfFalse : OpCode::JumpIfTrue, 0, dst, 0);
        gen(b.rhs, dst);
        emit(OpCode::CastBool, dst, dst, 0);
        out_.code_[branch].c = here();
        return std::nullopt;
    }

    static OpCode unary_opcode(UnaryOp op) {
        switch (op) {
            case UnaryOp::Neg: return OpCode::Neg;
            case UnaryOp::Not: return OpCode::Not;
            case UnaryOp::Floor: return OpCode::Floor;
            case UnaryOp::Ceil: return OpCode::Ceil;
        }
        throw ModelError("unhandled unary operator");
    }

    static OpCode binary_opcode(BinaryOp op) {
        switch (op) {
            case BinaryOp::Add: return OpCode::Add;
            case BinaryOp::Sub: return OpCode::Sub;
            case BinaryOp::Mul: return OpCode::Mul;
            case BinaryOp::Div: return OpCode::Div;
            case BinaryOp::Min: return OpCode::Min;
            case BinaryOp::Max: return OpCode::Max;
            case BinaryOp::Pow: return OpCode::Pow;
            case BinaryOp::Eq: return OpCode::Eq;
            case BinaryOp::Ne: return OpCode::Ne;
            case BinaryOp::Lt: return OpCode::Lt;
            case BinaryOp::Le: return OpCode::Le;
            case BinaryOp::Gt: return OpCode::Gt;
            case BinaryOp::Ge: return OpCode::Ge;
            case BinaryOp::Implies: return OpCode::Implies;
            case BinaryOp::Iff: return OpCode::Iff;
            case BinaryOp::And:
            case BinaryOp::Or: break;  // handled by gen_short_circuit
        }
        throw ModelError("unhandled binary operator");
    }

    const SlotMap& slots_;
    Program& out_;
    std::uint32_t max_regs_ = 0;
};

namespace {

/// Maps an OpCode in [Add, Iff] back to its BinaryOp for apply_binary.
BinaryOp binary_op_of(OpCode op) {
    switch (op) {
        case OpCode::Add: return BinaryOp::Add;
        case OpCode::Sub: return BinaryOp::Sub;
        case OpCode::Mul: return BinaryOp::Mul;
        case OpCode::Div: return BinaryOp::Div;
        case OpCode::Min: return BinaryOp::Min;
        case OpCode::Max: return BinaryOp::Max;
        case OpCode::Pow: return BinaryOp::Pow;
        case OpCode::Eq: return BinaryOp::Eq;
        case OpCode::Ne: return BinaryOp::Ne;
        case OpCode::Lt: return BinaryOp::Lt;
        case OpCode::Le: return BinaryOp::Le;
        case OpCode::Gt: return BinaryOp::Gt;
        case OpCode::Ge: return BinaryOp::Ge;
        case OpCode::Implies: return BinaryOp::Implies;
        default: return BinaryOp::Iff;
    }
}

constexpr std::size_t kInlineRegisters = 16;

}  // namespace

Program compile(const Expr& expr, const SlotMap& slots) {
    ARCADE_ASSERT(!expr.empty(), "compiling empty expression");
    Program program;
    Compiler(slots, program).compile(expr);
    return program;
}

Value Program::run(std::span<const Value> slots) const {
    Value inline_regs[kInlineRegisters];
    Value* regs = inline_regs;
    if (register_count_ > kInlineRegisters) {
        thread_local std::vector<Value> scratch;
        if (scratch.size() < register_count_) scratch.resize(register_count_);
        regs = scratch.data();
    }

    const Instr* code = code_.data();
    const std::size_t size = code_.size();
    const Value* pool = pool_.data();
    for (std::size_t pc = 0; pc < size;) {
        const Instr& ins = code[pc];
        switch (ins.op) {
            case OpCode::LoadConst:
                regs[ins.a] = pool[ins.c];
                ++pc;
                break;
            case OpCode::LoadSlot:
                ARCADE_ASSERT(ins.c < slots.size(), "slot index out of range");
                regs[ins.a] = slots[ins.c];
                ++pc;
                break;
            case OpCode::Neg:
            case OpCode::Not:
            case OpCode::Floor:
            case OpCode::Ceil: {
                static constexpr UnaryOp kUnary[] = {UnaryOp::Neg, UnaryOp::Not,
                                                     UnaryOp::Floor, UnaryOp::Ceil};
                regs[ins.a] = apply_unary(
                    kUnary[static_cast<int>(ins.op) - static_cast<int>(OpCode::Neg)],
                    regs[ins.b]);
                ++pc;
                break;
            }
            case OpCode::CastBool:
                regs[ins.a] = Value(regs[ins.b].as_bool());
                ++pc;
                break;
            case OpCode::Jump:
                pc = ins.c;
                break;
            case OpCode::JumpIfFalse:
                pc = regs[ins.b].as_bool() ? pc + 1 : ins.c;
                break;
            case OpCode::JumpIfTrue:
                pc = regs[ins.b].as_bool() ? ins.c : pc + 1;
                break;
            default:
                regs[ins.a] = apply_binary(binary_op_of(ins.op), regs[ins.b], regs[ins.c]);
                ++pc;
                break;
        }
    }
    return regs[0];
}

}  // namespace arcade::expr
