// Register-bytecode compiler and evaluator for the expression language.
//
// `compile(expr, slots)` lowers an Expr tree into a flat Program: variable
// reads become slot-indexed loads over an unpacked state vector (no string
// hashing), constants named in the SlotMap fold into the instruction stream,
// and `Program::run(slots)` executes without virtual dispatch, recursion or
// per-evaluation allocation.  Evaluation semantics are bit-identical to
// Expr::evaluate — both share apply_binary/apply_unary, short-circuit `&`/`|`
// the same way, and throw the same ModelErrors on type mismatches — so the
// tree interpreter remains the differential-test oracle (ARCADE_EVAL=interp
// selects it process-wide on the hot paths that honour EvalMode).
#ifndef ARCADE_EXPR_VM_HPP
#define ARCADE_EXPR_VM_HPP

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "expr/expr.hpp"

namespace arcade::expr {

/// Which evaluator the hot consumers (explorer, predicate sweeps) use.
enum class EvalMode {
    Vm,       ///< compiled bytecode programs (default)
    Interp,   ///< the Expr tree walker (differential-test oracle)
    Codegen,  ///< generated C++ compiled out of process + dlopen (expr/codegen)
};

/// Process-wide default, read once from the ARCADE_EVAL environment variable
/// ("interp" selects the tree interpreter, "codegen" the native backend;
/// anything else, or unset, the VM).
[[nodiscard]] EvalMode default_eval_mode();

/// Compile-time name resolution: identifiers listed in `slots` become
/// slot-indexed loads; identifiers found in `constants` fold into the
/// program as literals; anything else makes compile() throw ModelError.
struct SlotMap {
    std::unordered_map<std::string, std::uint32_t> slots;
    const std::map<std::string, Value>* constants = nullptr;
};

enum class OpCode : std::uint8_t {
    LoadConst,    // reg[a] = consts[c]
    LoadSlot,     // reg[a] = slots[c]
    Add, Sub, Mul, Div, Min, Max, Pow,            // reg[a] = reg[b] op reg[c]
    Eq, Ne, Lt, Le, Gt, Ge, Implies, Iff,         // reg[a] = reg[b] op reg[c]
    Neg, Not, Floor, Ceil,                        // reg[a] = op reg[b]
    CastBool,     // reg[a] = Value(reg[b].as_bool())  (the `&`/`|` rhs coercion)
    Jump,         // pc = c
    JumpIfFalse,  // pc = c when !reg[b].as_bool()  (throws on non-bool)
    JumpIfTrue,   // pc = c when reg[b].as_bool()   (throws on non-bool)
};

struct Instr {
    OpCode op;
    std::uint16_t a = 0;  ///< destination register
    std::uint16_t b = 0;  ///< operand register
    std::uint32_t c = 0;  ///< operand register / pool index / jump target
};

/// A compiled expression.  Immutable after compile(); safe to share across
/// the explorer's worker threads (run() only touches thread-local scratch).
class Program {
public:
    /// Evaluates over the slot values (`slots[i]` is the value of the
    /// variable mapped to slot i; the span may be longer than the program
    /// needs).  Stack-free and allocation-free: registers live in a fixed
    /// inline buffer, falling back to a thread-local scratch vector for the
    /// rare program needing more.
    [[nodiscard]] Value run(std::span<const Value> slots) const;

    [[nodiscard]] const std::vector<Instr>& code() const noexcept { return code_; }
    [[nodiscard]] const std::vector<Value>& constant_pool() const noexcept { return pool_; }
    [[nodiscard]] std::uint32_t register_count() const noexcept { return register_count_; }
    /// True when the whole expression folded to a single constant.
    [[nodiscard]] bool is_constant() const noexcept {
        return code_.size() == 1 && code_.front().op == OpCode::LoadConst;
    }

private:
    friend Program compile(const Expr& expr, const SlotMap& slots);
    friend class Compiler;
    std::vector<Instr> code_;
    std::vector<Value> pool_;
    std::uint32_t register_count_ = 0;
};

/// Compiles `expr` against the slot map.  Constant subtrees (including
/// resolved named constants) fold at compile time whenever folding cannot
/// change observable behaviour; ill-typed folds are left in the instruction
/// stream so run() raises the same ModelError the interpreter would.
/// Throws ModelError on identifiers absent from both maps.
[[nodiscard]] Program compile(const Expr& expr, const SlotMap& slots);

}  // namespace arcade::expr

#endif  // ARCADE_EXPR_VM_HPP
