// Typed expression language for stochastic reactive modules.
//
// Supports int, double and bool values; arithmetic, comparison, boolean
// operators, ite(c,a,b), min/max/floor/ceil/pow, and named variables or
// constants resolved through an Environment.  This is the expression subset
// of the PRISM language that the Arcade translation needs.
#ifndef ARCADE_EXPR_EXPR_HPP
#define ARCADE_EXPR_EXPR_HPP

#include <cstddef>
#include <memory>
#include <string>
#include <variant>
#include <vector>

namespace arcade::expr {

/// Runtime value.  Ints stay ints until mixed with doubles.
class Value {
public:
    Value() : data_(false) {}
    explicit Value(bool b) : data_(b) {}
    explicit Value(long long i) : data_(i) {}
    explicit Value(int i) : data_(static_cast<long long>(i)) {}
    explicit Value(double d) : data_(d) {}

    [[nodiscard]] bool is_bool() const noexcept { return std::holds_alternative<bool>(data_); }
    [[nodiscard]] bool is_int() const noexcept {
        return std::holds_alternative<long long>(data_);
    }
    [[nodiscard]] bool is_double() const noexcept {
        return std::holds_alternative<double>(data_);
    }
    [[nodiscard]] bool is_numeric() const noexcept { return is_int() || is_double(); }

    [[nodiscard]] bool as_bool() const;
    [[nodiscard]] long long as_int() const;
    [[nodiscard]] double as_double() const;  ///< widens ints

    [[nodiscard]] std::string to_string() const;

    friend bool operator==(const Value& a, const Value& b);

private:
    std::variant<bool, long long, double> data_;
};

/// Variable/constant lookup interface for evaluation.
class Environment {
public:
    virtual ~Environment() = default;
    /// Throws arcade::ModelError for unknown names.
    [[nodiscard]] virtual Value lookup(const std::string& name) const = 0;
};

enum class BinaryOp {
    Add, Sub, Mul, Div,
    Eq, Ne, Lt, Le, Gt, Ge,
    And, Or, Implies, Iff,
    Min, Max, Pow,
};

enum class UnaryOp { Neg, Not, Floor, Ceil };

struct Literal;
struct Identifier;
struct Unary;
struct Binary;
struct Ite;

/// Wrapper around the node variant so Expr can hold it by forward
/// declaration (the node types contain Expr recursively).
struct Node;

/// Shared-ownership expression handle.  Expressions are immutable after
/// construction, so sharing subtrees is safe and cheap.
class Expr {
public:
    /// "No source offset": expressions built programmatically (the Arcade
    /// translation) carry no anchor; parsed expressions carry the byte
    /// offset of each subexpression in the text they came from.
    static constexpr std::size_t npos = static_cast<std::size_t>(-1);

    Expr() = default;
    explicit Expr(std::shared_ptr<const Node> node) : node_(std::move(node)) {}

    [[nodiscard]] bool empty() const noexcept { return node_ == nullptr; }
    /// The underlying variant; use std::get_if on it.
    [[nodiscard]] const std::variant<Literal, Identifier, Unary, Binary, Ite>& node() const;

    /// Byte offset of this node in the source it was parsed from (mirroring
    /// the byte offsets csl_parser reports in ParseError), or npos when the
    /// expression was built programmatically.  Lint diagnostics use it to
    /// point at the offending subexpression.
    [[nodiscard]] std::size_t offset() const noexcept;

    /// Copy of this expression annotated with a source offset (subtrees keep
    /// their own offsets; sharing is preserved).
    [[nodiscard]] Expr with_offset(std::size_t offset) const;

    /// Evaluates under `env`.  Type errors throw arcade::ModelError.
    [[nodiscard]] Value evaluate(const Environment& env) const;

    /// Pretty-prints with minimal parentheses (round-trips via parse_expression).
    [[nodiscard]] std::string to_string() const;

    /// Names of all identifiers appearing in the expression.
    [[nodiscard]] std::vector<std::string> free_variables() const;

    // Construction helpers.  unary/binary/ite constant-fold literal
    // subtrees (2*0.5 becomes 1, `true & g` becomes g, `false & g` becomes
    // false) — only folds that preserve evaluation semantics exactly are
    // applied: a fold never hides an error the interpreter would raise
    // under short-circuit evaluation, so folded and unfolded trees are
    // observationally identical.
    static Expr literal(Value v);
    static Expr boolean(bool b);
    static Expr integer(long long i);
    static Expr real(double d);
    static Expr identifier(std::string name);
    static Expr unary(UnaryOp op, Expr operand);
    static Expr binary(BinaryOp op, Expr lhs, Expr rhs);
    static Expr ite(Expr cond, Expr then_branch, Expr else_branch);

private:
    std::shared_ptr<const Node> node_;
};

struct Literal {
    Value value;
};
struct Identifier {
    std::string name;
};
struct Unary {
    UnaryOp op;
    Expr operand;
};
struct Binary {
    BinaryOp op;
    Expr lhs;
    Expr rhs;
};
struct Ite {
    Expr cond;
    Expr then_branch;
    Expr else_branch;
};

struct Node {
    std::variant<Literal, Identifier, Unary, Binary, Ite> v;
    /// Source anchor; see Expr::offset().
    std::size_t offset = Expr::npos;
};

/// Applies a binary operator to already-evaluated operands.  Shared by the
/// tree interpreter and the bytecode VM so both produce bit-identical
/// results and throw identical ModelErrors on type mismatches.  Note that
/// And/Or here are the *strict* variants; short-circuiting is the
/// evaluators' responsibility.
[[nodiscard]] Value apply_binary(BinaryOp op, const Value& a, const Value& b);

/// Applies a unary operator (same sharing contract as apply_binary).
[[nodiscard]] Value apply_unary(UnaryOp op, const Value& a);

/// Parses the PRISM-style expression syntax:
///   literals: 3, 2.5, true, false
///   operators: ? :, <=>, =>, |, &, !, = !=, < <= > >=, + -, * /, unary -
///   calls: min(a,b,...), max(a,b,...), floor(x), ceil(x), pow(x,y)
/// Every parsed node is stamped with `base_offset` plus the byte offset of
/// its subexpression in `text`, so diagnostics on slices of a larger source
/// (the PRISM parser) can anchor into the whole file.
[[nodiscard]] Expr parse_expression(const std::string& text, std::size_t base_offset = 0);

}  // namespace arcade::expr

#endif  // ARCADE_EXPR_EXPR_HPP
