// Pratt parser for the PRISM-style expression syntax (see expr.hpp).
#include <cctype>
#include <optional>

#include "expr/expr.hpp"
#include "support/errors.hpp"

namespace arcade::expr {

namespace {

enum class TokenKind {
    Number, Identifier, True, False,
    Plus, Minus, Star, Slash,
    Eq, Ne, Lt, Le, Gt, Ge,
    And, Or, Not, Implies, Iff,
    LParen, RParen, Comma, Question, Colon,
    End,
};

struct Token {
    TokenKind kind;
    std::string text;
    std::size_t pos = 0;
};

class Lexer {
public:
    explicit Lexer(const std::string& text) : text_(text) {}

    Token next() {
        skip_space();
        const std::size_t pos = i_;
        if (i_ >= text_.size()) return {TokenKind::End, "", pos};
        const char c = text_[i_];
        if (std::isdigit(static_cast<unsigned char>(c)) != 0 || c == '.') return number(pos);
        if (std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_') return word(pos);
        ++i_;
        switch (c) {
            case '+': return {TokenKind::Plus, "+", pos};
            case '-': return {TokenKind::Minus, "-", pos};
            case '*': return {TokenKind::Star, "*", pos};
            case '/': return {TokenKind::Slash, "/", pos};
            case '(': return {TokenKind::LParen, "(", pos};
            case ')': return {TokenKind::RParen, ")", pos};
            case ',': return {TokenKind::Comma, ",", pos};
            case '?': return {TokenKind::Question, "?", pos};
            case ':': return {TokenKind::Colon, ":", pos};
            case '&': return {TokenKind::And, "&", pos};
            case '|': return {TokenKind::Or, "|", pos};
            case '=': {
                if (peek('>')) {
                    ++i_;
                    return {TokenKind::Implies, "=>", pos};
                }
                if (peek('=')) ++i_;  // accept both = and ==
                return {TokenKind::Eq, "=", pos};
            }
            case '!':
                if (peek('=')) {
                    ++i_;
                    return {TokenKind::Ne, "!=", pos};
                }
                return {TokenKind::Not, "!", pos};
            case '<':
                if (peek('=')) {
                    ++i_;
                    if (peek('>')) {
                        ++i_;
                        return {TokenKind::Iff, "<=>", pos};
                    }
                    return {TokenKind::Le, "<=", pos};
                }
                return {TokenKind::Lt, "<", pos};
            case '>':
                if (peek('=')) {
                    ++i_;
                    return {TokenKind::Ge, ">=", pos};
                }
                return {TokenKind::Gt, ">", pos};
            default:
                throw ParseError(std::string("unexpected character '") + c + "' in expression",
                                 1, pos + 1);
        }
    }

private:
    const std::string& text_;
    std::size_t i_ = 0;

    void skip_space() {
        while (i_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[i_])) != 0) ++i_;
    }
    [[nodiscard]] bool peek(char c) const { return i_ < text_.size() && text_[i_] == c; }

    Token number(std::size_t pos) {
        std::size_t j = i_;
        bool has_dot = false;
        bool has_exp = false;
        while (j < text_.size()) {
            const char c = text_[j];
            if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
                ++j;
            } else if (c == '.' && !has_dot && !has_exp) {
                has_dot = true;
                ++j;
            } else if ((c == 'e' || c == 'E') && !has_exp && j > i_) {
                has_exp = true;
                ++j;
                if (j < text_.size() && (text_[j] == '+' || text_[j] == '-')) ++j;
            } else {
                break;
            }
        }
        Token t{TokenKind::Number, text_.substr(i_, j - i_), pos};
        i_ = j;
        return t;
    }

    Token word(std::size_t pos) {
        std::size_t j = i_;
        while (j < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[j])) != 0 || text_[j] == '_')) {
            ++j;
        }
        std::string w = text_.substr(i_, j - i_);
        i_ = j;
        if (w == "true") return {TokenKind::True, w, pos};
        if (w == "false") return {TokenKind::False, w, pos};
        return {TokenKind::Identifier, w, pos};
    }
};

class Parser {
public:
    explicit Parser(const std::string& text, std::size_t base_offset)
        : lexer_(text), base_(base_offset) {
        advance();
    }

    Expr parse() {
        Expr e = parse_ternary();
        expect(TokenKind::End, "end of expression");
        return e;
    }

private:
    Lexer lexer_;
    Token current_;
    std::size_t base_ = 0;

    void advance() { current_ = lexer_.next(); }

    /// Stamps a parsed (sub)expression with its source byte offset.  After a
    /// constant fold the composite may BE one of its operands; re-stamping
    /// with the construct's start still points inside the right text.
    Expr at(std::size_t pos, Expr e) const { return e.with_offset(base_ + pos); }

    void expect(TokenKind kind, const std::string& what) {
        if (current_.kind != kind) {
            throw ParseError("expected " + what + " but found '" + current_.text + "'", 1,
                             current_.pos + 1);
        }
        advance();
    }

    Expr parse_ternary() {
        const std::size_t start = current_.pos;
        Expr cond = parse_iff();
        if (current_.kind == TokenKind::Question) {
            advance();
            Expr a = parse_ternary();
            expect(TokenKind::Colon, "':'");
            Expr b = parse_ternary();
            return at(start, Expr::ite(std::move(cond), std::move(a), std::move(b)));
        }
        return cond;
    }

    Expr parse_iff() {
        const std::size_t start = current_.pos;
        Expr lhs = parse_implies();
        while (current_.kind == TokenKind::Iff) {
            advance();
            lhs = at(start, Expr::binary(BinaryOp::Iff, std::move(lhs), parse_implies()));
        }
        return lhs;
    }

    Expr parse_implies() {
        const std::size_t start = current_.pos;
        Expr lhs = parse_or();
        if (current_.kind == TokenKind::Implies) {  // right-associative
            advance();
            return at(start, Expr::binary(BinaryOp::Implies, std::move(lhs), parse_implies()));
        }
        return lhs;
    }

    Expr parse_or() {
        const std::size_t start = current_.pos;
        Expr lhs = parse_and();
        while (current_.kind == TokenKind::Or) {
            advance();
            lhs = at(start, Expr::binary(BinaryOp::Or, std::move(lhs), parse_and()));
        }
        return lhs;
    }

    Expr parse_and() {
        const std::size_t start = current_.pos;
        Expr lhs = parse_not();
        while (current_.kind == TokenKind::And) {
            advance();
            lhs = at(start, Expr::binary(BinaryOp::And, std::move(lhs), parse_not()));
        }
        return lhs;
    }

    Expr parse_not() {
        if (current_.kind == TokenKind::Not) {
            const std::size_t start = current_.pos;
            advance();
            return at(start, Expr::unary(UnaryOp::Not, parse_not()));
        }
        return parse_comparison();
    }

    Expr parse_comparison() {
        const std::size_t start = current_.pos;
        Expr lhs = parse_additive();
        const auto op = [&]() -> std::optional<BinaryOp> {
            switch (current_.kind) {
                case TokenKind::Eq: return BinaryOp::Eq;
                case TokenKind::Ne: return BinaryOp::Ne;
                case TokenKind::Lt: return BinaryOp::Lt;
                case TokenKind::Le: return BinaryOp::Le;
                case TokenKind::Gt: return BinaryOp::Gt;
                case TokenKind::Ge: return BinaryOp::Ge;
                default: return std::nullopt;
            }
        }();
        if (op) {
            advance();
            return at(start, Expr::binary(*op, std::move(lhs), parse_additive()));
        }
        return lhs;
    }

    Expr parse_additive() {
        const std::size_t start = current_.pos;
        Expr lhs = parse_multiplicative();
        while (current_.kind == TokenKind::Plus || current_.kind == TokenKind::Minus) {
            const BinaryOp op =
                current_.kind == TokenKind::Plus ? BinaryOp::Add : BinaryOp::Sub;
            advance();
            lhs = at(start, Expr::binary(op, std::move(lhs), parse_multiplicative()));
        }
        return lhs;
    }

    Expr parse_multiplicative() {
        const std::size_t start = current_.pos;
        Expr lhs = parse_unary();
        while (current_.kind == TokenKind::Star || current_.kind == TokenKind::Slash) {
            const BinaryOp op =
                current_.kind == TokenKind::Star ? BinaryOp::Mul : BinaryOp::Div;
            advance();
            lhs = at(start, Expr::binary(op, std::move(lhs), parse_unary()));
        }
        return lhs;
    }

    Expr parse_unary() {
        if (current_.kind == TokenKind::Minus) {
            const std::size_t start = current_.pos;
            advance();
            return at(start, Expr::unary(UnaryOp::Neg, parse_unary()));
        }
        return parse_primary();
    }

    Expr parse_primary() {
        const std::size_t start = current_.pos;
        switch (current_.kind) {
            case TokenKind::Number: {
                const std::string text = current_.text;
                advance();
                if (text.find('.') == std::string::npos && text.find('e') == std::string::npos &&
                    text.find('E') == std::string::npos) {
                    return at(start, Expr::integer(std::stoll(text)));
                }
                return at(start, Expr::real(std::stod(text)));
            }
            case TokenKind::True:
                advance();
                return at(start, Expr::boolean(true));
            case TokenKind::False:
                advance();
                return at(start, Expr::boolean(false));
            case TokenKind::Identifier: {
                const std::string name = current_.text;
                advance();
                if (current_.kind == TokenKind::LParen) return at(start, parse_call(name));
                return at(start, Expr::identifier(name));
            }
            case TokenKind::LParen: {
                advance();
                Expr e = parse_ternary();
                expect(TokenKind::RParen, "')'");
                return e;
            }
            default:
                throw ParseError("unexpected token '" + current_.text + "'", 1,
                                 current_.pos + 1);
        }
    }

    Expr parse_call(const std::string& name) {
        expect(TokenKind::LParen, "'('");
        std::vector<Expr> args;
        if (current_.kind != TokenKind::RParen) {
            args.push_back(parse_ternary());
            while (current_.kind == TokenKind::Comma) {
                advance();
                args.push_back(parse_ternary());
            }
        }
        expect(TokenKind::RParen, "')'");

        auto fold = [&](BinaryOp op) {
            if (args.size() < 2) {
                throw ParseError(name + "() needs at least two arguments");
            }
            Expr acc = args[0];
            for (std::size_t i = 1; i < args.size(); ++i) {
                acc = Expr::binary(op, std::move(acc), args[i]);
            }
            return acc;
        };
        auto unary1 = [&](UnaryOp op) {
            if (args.size() != 1) throw ParseError(name + "() needs exactly one argument");
            return Expr::unary(op, args[0]);
        };

        if (name == "min") return fold(BinaryOp::Min);
        if (name == "max") return fold(BinaryOp::Max);
        if (name == "floor") return unary1(UnaryOp::Floor);
        if (name == "ceil") return unary1(UnaryOp::Ceil);
        if (name == "pow") {
            if (args.size() != 2) throw ParseError("pow() needs exactly two arguments");
            return Expr::binary(BinaryOp::Pow, args[0], args[1]);
        }
        throw ParseError("unknown function '" + name + "'");
    }
};

}  // namespace

Expr parse_expression(const std::string& text, std::size_t base_offset) {
    return Parser(text, base_offset).parse();
}

}  // namespace arcade::expr
