#include "expr/expr.hpp"

#include <cmath>

#include "support/errors.hpp"
#include "support/strings.hpp"

namespace arcade::expr {

bool Value::as_bool() const {
    if (!is_bool()) throw ModelError("expected boolean value, got " + to_string());
    return std::get<bool>(data_);
}

long long Value::as_int() const {
    if (!is_int()) throw ModelError("expected integer value, got " + to_string());
    return std::get<long long>(data_);
}

double Value::as_double() const {
    if (is_int()) return static_cast<double>(std::get<long long>(data_));
    if (is_double()) return std::get<double>(data_);
    throw ModelError("expected numeric value, got " + to_string());
}

std::string Value::to_string() const {
    if (is_bool()) return std::get<bool>(data_) ? "true" : "false";
    if (is_int()) return std::to_string(std::get<long long>(data_));
    return format_double(std::get<double>(data_));
}

bool operator==(const Value& a, const Value& b) {
    if (a.is_bool() != b.is_bool()) return false;
    if (a.is_bool()) return std::get<bool>(a.data_) == std::get<bool>(b.data_);
    if (a.is_int() && b.is_int()) return std::get<long long>(a.data_) == std::get<long long>(b.data_);
    return a.as_double() == b.as_double();
}

const std::variant<Literal, Identifier, Unary, Binary, Ite>& Expr::node() const {
    ARCADE_ASSERT(node_ != nullptr, "dereferencing empty expression");
    return node_->v;
}

std::size_t Expr::offset() const noexcept { return node_ == nullptr ? npos : node_->offset; }

Expr Expr::with_offset(std::size_t offset) const {
    if (node_ == nullptr || node_->offset == offset) return *this;
    return Expr(std::make_shared<Node>(Node{node_->v, offset}));
}

namespace {

/// The literal value of `e`, or nullptr when `e` is not a literal node.
const Value* literal_value(const Expr& e) {
    if (e.empty()) return nullptr;
    const auto* lit = std::get_if<Literal>(&e.node());
    return lit == nullptr ? nullptr : &lit->value;
}

}  // namespace

Expr Expr::literal(Value v) { return Expr(std::make_shared<Node>(Node{Literal{v}})); }
Expr Expr::boolean(bool b) { return literal(Value(b)); }
Expr Expr::integer(long long i) { return literal(Value(i)); }
Expr Expr::real(double d) { return literal(Value(d)); }
Expr Expr::identifier(std::string name) {
    return Expr(std::make_shared<Node>(Node{Identifier{std::move(name)}}));
}
Expr Expr::unary(UnaryOp op, Expr operand) {
    if (const Value* v = literal_value(operand)) {
        // Ill-typed literals (e.g. !3) keep their node so the error still
        // surfaces at evaluation time.
        try {
            return literal(apply_unary(op, *v));
        } catch (const ModelError&) {
        }
    }
    return Expr(std::make_shared<Node>(Node{Unary{op, std::move(operand)}}));
}
Expr Expr::binary(BinaryOp op, Expr lhs, Expr rhs) {
    const Value* lv = literal_value(lhs);
    // Short-circuit operators fold on a boolean literal lhs only: the rhs of
    // `false & g` is provably never evaluated, and `true & g` reduces to g
    // itself.  A literal rhs must NOT fold (`g & false` still evaluates g
    // first and must keep raising g's errors).
    if (lv != nullptr && lv->is_bool()) {
        if (op == BinaryOp::And) return lv->as_bool() ? rhs : boolean(false);
        if (op == BinaryOp::Or) return lv->as_bool() ? boolean(true) : rhs;
    }
    if (lv != nullptr && op != BinaryOp::And && op != BinaryOp::Or) {
        if (const Value* rv = literal_value(rhs)) {
            try {
                return literal(apply_binary(op, *lv, *rv));
            } catch (const ModelError&) {
                // e.g. 1/0 or 1 < true: keep the node, error stays at eval.
            }
        }
    }
    return Expr(std::make_shared<Node>(Node{Binary{op, std::move(lhs), std::move(rhs)}}));
}
Expr Expr::ite(Expr cond, Expr then_branch, Expr else_branch) {
    if (const Value* cv = literal_value(cond)) {
        if (cv->is_bool()) return cv->as_bool() ? then_branch : else_branch;
    }
    return Expr(std::make_shared<Node>(
        Node{Ite{std::move(cond), std::move(then_branch), std::move(else_branch)}}));
}

Value apply_binary(BinaryOp op, const Value& a, const Value& b) {
    switch (op) {
        case BinaryOp::Add:
        case BinaryOp::Sub:
        case BinaryOp::Mul:
        case BinaryOp::Min:
        case BinaryOp::Max: {
            if (a.is_int() && b.is_int()) {
                const long long x = a.as_int();
                const long long y = b.as_int();
                switch (op) {
                    case BinaryOp::Add: return Value(x + y);
                    case BinaryOp::Sub: return Value(x - y);
                    case BinaryOp::Mul: return Value(x * y);
                    case BinaryOp::Min: return Value(x < y ? x : y);
                    case BinaryOp::Max: return Value(x > y ? x : y);
                    default: break;
                }
            }
            const double x = a.as_double();
            const double y = b.as_double();
            switch (op) {
                case BinaryOp::Add: return Value(x + y);
                case BinaryOp::Sub: return Value(x - y);
                case BinaryOp::Mul: return Value(x * y);
                case BinaryOp::Min: return Value(x < y ? x : y);
                case BinaryOp::Max: return Value(x > y ? x : y);
                default: break;
            }
            break;
        }
        case BinaryOp::Div: {
            const double y = b.as_double();
            if (y == 0.0) throw ModelError("division by zero");
            return Value(a.as_double() / y);
        }
        case BinaryOp::Pow:
            return Value(std::pow(a.as_double(), b.as_double()));
        case BinaryOp::Eq: return Value(a == b);
        case BinaryOp::Ne: return Value(!(a == b));
        case BinaryOp::Lt: return Value(a.as_double() < b.as_double());
        case BinaryOp::Le: return Value(a.as_double() <= b.as_double());
        case BinaryOp::Gt: return Value(a.as_double() > b.as_double());
        case BinaryOp::Ge: return Value(a.as_double() >= b.as_double());
        case BinaryOp::And: return Value(a.as_bool() && b.as_bool());
        case BinaryOp::Or: return Value(a.as_bool() || b.as_bool());
        case BinaryOp::Implies: return Value(!a.as_bool() || b.as_bool());
        case BinaryOp::Iff: return Value(a.as_bool() == b.as_bool());
    }
    throw ModelError("unhandled binary operator");
}

Value apply_unary(UnaryOp op, const Value& a) {
    switch (op) {
        case UnaryOp::Neg:
            if (a.is_int()) return Value(-a.as_int());
            return Value(-a.as_double());
        case UnaryOp::Not: return Value(!a.as_bool());
        case UnaryOp::Floor: return Value(static_cast<long long>(std::floor(a.as_double())));
        case UnaryOp::Ceil: return Value(static_cast<long long>(std::ceil(a.as_double())));
    }
    throw ModelError("unhandled unary operator");
}

namespace {

const char* binary_symbol(BinaryOp op) {
    switch (op) {
        case BinaryOp::Add: return "+";
        case BinaryOp::Sub: return "-";
        case BinaryOp::Mul: return "*";
        case BinaryOp::Div: return "/";
        case BinaryOp::Eq: return "=";
        case BinaryOp::Ne: return "!=";
        case BinaryOp::Lt: return "<";
        case BinaryOp::Le: return "<=";
        case BinaryOp::Gt: return ">";
        case BinaryOp::Ge: return ">=";
        case BinaryOp::And: return "&";
        case BinaryOp::Or: return "|";
        case BinaryOp::Implies: return "=>";
        case BinaryOp::Iff: return "<=>";
        case BinaryOp::Min: return "min";
        case BinaryOp::Max: return "max";
        case BinaryOp::Pow: return "pow";
    }
    return "?";
}

void collect_vars(const Expr& e, std::vector<std::string>& out) {
    if (e.empty()) return;
    const auto& n = e.node();
    if (const auto* id = std::get_if<Identifier>(&n)) {
        out.push_back(id->name);
    } else if (const auto* u = std::get_if<Unary>(&n)) {
        collect_vars(u->operand, out);
    } else if (const auto* b = std::get_if<Binary>(&n)) {
        collect_vars(b->lhs, out);
        collect_vars(b->rhs, out);
    } else if (const auto* i = std::get_if<Ite>(&n)) {
        collect_vars(i->cond, out);
        collect_vars(i->then_branch, out);
        collect_vars(i->else_branch, out);
    }
}

}  // namespace

Value Expr::evaluate(const Environment& env) const {
    const auto& n = node();
    if (const auto* lit = std::get_if<Literal>(&n)) return lit->value;
    if (const auto* id = std::get_if<Identifier>(&n)) return env.lookup(id->name);
    if (const auto* u = std::get_if<Unary>(&n)) {
        return apply_unary(u->op, u->operand.evaluate(env));
    }
    if (const auto* b = std::get_if<Binary>(&n)) {
        // Short-circuit booleans so guards can protect partial expressions.
        if (b->op == BinaryOp::And) {
            if (!b->lhs.evaluate(env).as_bool()) return Value(false);
            return Value(b->rhs.evaluate(env).as_bool());
        }
        if (b->op == BinaryOp::Or) {
            if (b->lhs.evaluate(env).as_bool()) return Value(true);
            return Value(b->rhs.evaluate(env).as_bool());
        }
        // Fixed lhs-then-rhs order (function arguments would be unspecified),
        // so the interpreter and the VM raise errors from the same operand.
        const Value lv = b->lhs.evaluate(env);
        const Value rv = b->rhs.evaluate(env);
        return apply_binary(b->op, lv, rv);
    }
    const auto& ite_node = std::get<Ite>(n);
    return ite_node.cond.evaluate(env).as_bool() ? ite_node.then_branch.evaluate(env)
                                                 : ite_node.else_branch.evaluate(env);
}

std::string Expr::to_string() const {
    if (empty()) return "<empty>";
    const auto& n = node();
    if (const auto* lit = std::get_if<Literal>(&n)) return lit->value.to_string();
    if (const auto* id = std::get_if<Identifier>(&n)) return id->name;
    if (const auto* u = std::get_if<Unary>(&n)) {
        switch (u->op) {
            case UnaryOp::Neg: return "-(" + u->operand.to_string() + ")";
            case UnaryOp::Not: return "!(" + u->operand.to_string() + ")";
            case UnaryOp::Floor: return "floor(" + u->operand.to_string() + ")";
            case UnaryOp::Ceil: return "ceil(" + u->operand.to_string() + ")";
        }
    }
    if (const auto* b = std::get_if<Binary>(&n)) {
        if (b->op == BinaryOp::Min || b->op == BinaryOp::Max || b->op == BinaryOp::Pow) {
            return std::string(binary_symbol(b->op)) + "(" + b->lhs.to_string() + ", " +
                   b->rhs.to_string() + ")";
        }
        return "(" + b->lhs.to_string() + " " + binary_symbol(b->op) + " " +
               b->rhs.to_string() + ")";
    }
    const auto& ite_node = std::get<Ite>(n);
    return "(" + ite_node.cond.to_string() + " ? " + ite_node.then_branch.to_string() + " : " +
           ite_node.else_branch.to_string() + ")";
}

std::vector<std::string> Expr::free_variables() const {
    std::vector<std::string> out;
    collect_vars(*this, out);
    return out;
}

}  // namespace arcade::expr
