#include "linalg/csr_matrix.hpp"

#include <algorithm>

#include "linalg/kernels.hpp"
#include "support/errors.hpp"

namespace arcade::linalg {

CsrBuilder::CsrBuilder(std::size_t rows, std::size_t cols) : rows_(rows), cols_(cols) {}

void CsrBuilder::add(std::size_t row, std::size_t col, double value) {
    ARCADE_ASSERT(row < rows_ && col < cols_,
                  "entry (" + std::to_string(row) + "," + std::to_string(col) +
                      ") outside " + std::to_string(rows_) + "x" + std::to_string(cols_));
    entries_.push_back(Coo{row, col, value});
}

CsrMatrix CsrBuilder::build() const {
    std::vector<Coo> sorted = entries_;
    std::sort(sorted.begin(), sorted.end(), [](const Coo& a, const Coo& b) {
        return a.row != b.row ? a.row < b.row : a.col < b.col;
    });
    std::vector<std::size_t> row_ptr(rows_ + 1, 0);
    std::vector<std::size_t> col_idx;
    std::vector<double> values;
    col_idx.reserve(sorted.size());
    values.reserve(sorted.size());
    std::size_t i = 0;
    for (std::size_t r = 0; r < rows_; ++r) {
        row_ptr[r] = col_idx.size();
        while (i < sorted.size() && sorted[i].row == r) {
            const std::size_t c = sorted[i].col;
            double v = 0.0;
            while (i < sorted.size() && sorted[i].row == r && sorted[i].col == c) {
                v += sorted[i].value;
                ++i;
            }
            col_idx.push_back(c);
            values.push_back(v);
        }
    }
    row_ptr[rows_] = col_idx.size();
    return CsrMatrix(rows_, cols_, std::move(row_ptr), std::move(col_idx), std::move(values));
}

CsrMatrix::CsrMatrix(std::size_t rows, std::size_t cols, std::vector<std::size_t> row_ptr,
                     std::vector<std::size_t> col_idx, std::vector<double> values)
    : rows_(rows),
      cols_(cols),
      row_ptr_(std::move(row_ptr)),
      col_idx_(std::move(col_idx)),
      values_(std::move(values)) {
    ARCADE_ASSERT(row_ptr_.size() == rows_ + 1, "row_ptr size mismatch");
    ARCADE_ASSERT(col_idx_.size() == values_.size(), "col/value size mismatch");
}

std::span<const std::size_t> CsrMatrix::row_columns(std::size_t row) const {
    ARCADE_ASSERT(row < rows_, "row out of range");
    return {col_idx_.data() + row_ptr_[row], row_ptr_[row + 1] - row_ptr_[row]};
}

std::span<const double> CsrMatrix::row_values(std::size_t row) const {
    ARCADE_ASSERT(row < rows_, "row out of range");
    return {values_.data() + row_ptr_[row], row_ptr_[row + 1] - row_ptr_[row]};
}

double CsrMatrix::at(std::size_t row, std::size_t col) const {
    const auto cols = row_columns(row);
    const auto it = std::lower_bound(cols.begin(), cols.end(), col);
    if (it == cols.end() || *it != col) return 0.0;
    return values_[row_ptr_[row] + static_cast<std::size_t>(it - cols.begin())];
}

double CsrMatrix::row_sum(std::size_t row) const {
    double s = 0.0;
    for (double v : row_values(row)) s += v;
    return s;
}

void CsrMatrix::multiply_left(std::span<const double> x, std::span<double> y) const {
    linalg::multiply_left(*this, x, y);
}

void CsrMatrix::multiply_right(std::span<const double> x, std::span<double> y) const {
    linalg::multiply_right(*this, x, y);
}

CsrMatrix CsrMatrix::transposed() const {
    CsrBuilder b(cols_, rows_);
    for (std::size_t r = 0; r < rows_; ++r) {
        const std::size_t begin = row_ptr_[r];
        const std::size_t end = row_ptr_[r + 1];
        for (std::size_t k = begin; k < end; ++k) {
            b.add(col_idx_[k], r, values_[k]);
        }
    }
    return b.build();
}

}  // namespace arcade::linalg
