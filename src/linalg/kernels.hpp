// Blocked and SIMD CSR matvec kernels for the numeric core.
//
// Every kernel here exists in three variants selected by KernelMode:
// Blocked (4-way unrolled inner loops over __restrict pointers, with the
// diagonal split out of the uniformised loops so the hot path is
// branch-free), Simd (runtime-dispatched AVX2 on x86-64 / NEON on aarch64
// vector bodies; resolves to Blocked when the CPU lacks the extension) and
// Scalar (the seed's straightforward loops, kept as the reference).  All
// variants accumulate in the SAME ascending-index order with a single
// sequential accumulator chain, so their results are bitwise identical —
// the unrolling and vectorisation only pipeline the loads, multiplies and
// divisions (the element-wise work), they never reassociate a
// floating-point sum and never contract into FMAs.  ARCADE_KERNELS=
// scalar|blocked|simd selects the variant process-wide; tests and benches
// flip the mode at runtime via set_kernel_mode().
#ifndef ARCADE_LINALG_KERNELS_HPP
#define ARCADE_LINALG_KERNELS_HPP

#include <cstddef>
#include <span>

#include "linalg/csr_matrix.hpp"

namespace arcade::linalg {

enum class KernelMode {
    Blocked,  ///< unrolled kernels (default)
    Scalar,   ///< the seed's reference loops
    Simd,     ///< AVX2/NEON vector bodies (falls back to Blocked at runtime)
};

/// Process-wide default, read once from the ARCADE_KERNELS environment
/// variable ("scalar" selects the reference loops, "simd" the vector
/// bodies; anything else, or unset, the blocked kernels).
[[nodiscard]] KernelMode default_kernel_mode();

/// True when the running CPU supports the SIMD bodies (AVX2 on x86-64,
/// NEON on aarch64).  When false, KernelMode::Simd resolves to Blocked.
[[nodiscard]] bool simd_available();

/// Current mode; initially default_kernel_mode().
[[nodiscard]] KernelMode kernel_mode();

/// Overrides the mode at runtime (atomic; used by identity tests/benches).
void set_kernel_mode(KernelMode mode);

/// y = x^T * M (distribution propagation).  `x.size()==rows`, `y.size()==cols`.
void multiply_left(const CsrMatrix& m, std::span<const double> x, std::span<double> y);

/// y = M * x (backward solutions).  `x.size()==cols`, `y.size()==rows`.
void multiply_right(const CsrMatrix& m, std::span<const double> x, std::span<double> y);

/// One forward application of the uniformised DTMC, out = in * P with
/// P = I + Q/lambda built on the fly from the rate matrix: for each row i
/// the off-diagonal entries scatter in[i]*rate/lambda and the retained mass
/// in[i]*(1 - moved) lands on out[i] afterwards — exactly the seed's
/// transient/power-iteration step, including the in[i]==0 row skip.
/// `out` is overwritten.
void uniformised_multiply_left(const CsrMatrix& rates, double lambda,
                               std::span<const double> in, std::span<double> out);

/// The column-vector (gather) form of the same uniformised matrix,
/// next = P * cur, with the diagonal term (1 - moved)*cur[i] added LAST —
/// matching the seed's bounded-until backward recurrence bit for bit.
void uniformised_multiply_right(const CsrMatrix& rates, double lambda,
                                std::span<const double> cur, std::span<double> next);

// ---------------------------------------------------------------------------
// Multi-RHS (CSR × dense-block) forms of the kernels above.  The block is
// row-major: column c of state s lives at x[s*width + c], so ONE traversal of
// the matrix serves all `width` vectors — the traversal (and, in the
// uniformised kernel, the division vals[k]/lambda) is amortised across the
// block.  Each column is accumulated in the same ascending-index
// sequential-chain order as the single-vector kernel, including the
// per-column in==0.0 row skip, so column c of the result is bitwise
// identical to running the single-vector kernel on column c alone: the
// ARCADE_KERNELS three-mode identity contract extends unchanged.
// ---------------------------------------------------------------------------

/// Y = X^T * M for a row-major block of `width` row vectors.
/// `x.size()==rows*width`, `y.size()==cols*width`.  `y` is overwritten.
void multiply_left_batch(const CsrMatrix& m, std::span<const double> x,
                         std::span<double> y, std::size_t width);

/// Y = M * X for a row-major block of `width` column vectors.
/// `x.size()==cols*width`, `y.size()==rows*width`.  `y` is overwritten.
void multiply_right_batch(const CsrMatrix& m, std::span<const double> x,
                          std::span<double> y, std::size_t width);

/// One forward application of the uniformised DTMC to a row-major block of
/// `width` distributions: column c of `out` equals
/// uniformised_multiply_left(rates, lambda, column c of `in`) bit for bit.
/// `in.size()==out.size()==rates.rows()*width`.  `out` is overwritten.
void uniformised_multiply_left_batch(const CsrMatrix& rates, double lambda,
                                     std::span<const double> in, std::span<double> out,
                                     std::size_t width);

/// acc + sum of vals[k]*x[cols[k]] over entries whose column != skip, in
/// ascending index order (the Gauss–Seidel inflow gather).
[[nodiscard]] double gather_skip_diag(std::span<const std::size_t> cols,
                                      std::span<const double> vals,
                                      std::span<const double> x, std::size_t skip,
                                      double acc);

/// Like gather_skip_diag, but also reports the skipped diagonal value
/// (0.0 when the row stores no diagonal) — the fixpoint Gauss–Seidel shape.
[[nodiscard]] double gather_capture_diag(std::span<const std::size_t> cols,
                                         std::span<const double> vals,
                                         std::span<const double> x, std::size_t row,
                                         double acc, double& diag);

}  // namespace arcade::linalg

#endif  // ARCADE_LINALG_KERNELS_HPP
