// Dense vector helpers for probability vectors.
#ifndef ARCADE_LINALG_VECTOR_OPS_HPP
#define ARCADE_LINALG_VECTOR_OPS_HPP

#include <span>
#include <vector>

namespace arcade::linalg {

/// sum_i |a_i - b_i| (L1 distance).
[[nodiscard]] double l1_distance(std::span<const double> a, std::span<const double> b);

/// max_i |a_i - b_i| (Chebyshev distance).
[[nodiscard]] double linf_distance(std::span<const double> a, std::span<const double> b);

/// max_i |a_i - b_i| / max(|a_i|, floor) — PRISM-style relative criterion.
[[nodiscard]] double relative_distance(std::span<const double> a, std::span<const double> b);

/// sum of entries.
[[nodiscard]] double sum(std::span<const double> v);

/// dot product.
[[nodiscard]] double dot(std::span<const double> a, std::span<const double> b);

/// Scales v so entries sum to 1.  Throws ModelError when the sum is ~0.
void normalize(std::span<double> v);

/// y += alpha * x.
void axpy(double alpha, std::span<const double> x, std::span<double> y);

}  // namespace arcade::linalg

#endif  // ARCADE_LINALG_VECTOR_OPS_HPP
