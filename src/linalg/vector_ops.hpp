// Dense vector helpers for probability vectors.
//
// l1_distance, dot and axpy honour the process-wide kernel mode
// (linalg/kernels.hpp): under KernelMode::Simd their element-wise work
// (subtract/abs/multiply) runs vectorised, with every accumulation chained
// in the same sequential order as the reference loops — bitwise-identical
// results across all modes.  The pure running-sum helpers (sum,
// neumaier_sum, the max-reductions) are inherently sequential and have a
// single variant.
#ifndef ARCADE_LINALG_VECTOR_OPS_HPP
#define ARCADE_LINALG_VECTOR_OPS_HPP

#include <span>
#include <vector>

namespace arcade::linalg {

/// sum_i |a_i - b_i| (L1 distance).
[[nodiscard]] double l1_distance(std::span<const double> a, std::span<const double> b);

/// max_i |a_i - b_i| (Chebyshev distance).
[[nodiscard]] double linf_distance(std::span<const double> a, std::span<const double> b);

/// max_i |a_i - b_i| / max(|a_i|, floor) — PRISM-style relative criterion.
[[nodiscard]] double relative_distance(std::span<const double> a, std::span<const double> b);

/// sum of entries.
[[nodiscard]] double sum(std::span<const double> v);

/// Neumaier-compensated sum of entries: a running total with a separate
/// compensation term that absorbs the rounding error of each add, folded
/// into the total once at the end.  Strictly sequential (the compensation
/// depends on every preceding add), so there is exactly one variant; the
/// Fox–Glynn weight normalisation is built on this.
[[nodiscard]] double neumaier_sum(std::span<const double> v);

/// dot product.
[[nodiscard]] double dot(std::span<const double> a, std::span<const double> b);

/// Scales v so entries sum to 1.  Throws ModelError when the sum is ~0.
void normalize(std::span<double> v);

/// y += alpha * x.
void axpy(double alpha, std::span<const double> x, std::span<double> y);

}  // namespace arcade::linalg

#endif  // ARCADE_LINALG_VECTOR_OPS_HPP
