#include "linalg/kernels.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <string>

#include "support/errors.hpp"

#if defined(__x86_64__) || defined(_M_X64)
#define ARCADE_SIMD_X86 1
#include <immintrin.h>
#elif defined(__aarch64__)
#define ARCADE_SIMD_NEON 1
#include <arm_neon.h>
#endif

#if defined(ARCADE_SIMD_X86) || defined(ARCADE_SIMD_NEON)
#define ARCADE_SIMD_ARCH 1
#endif

namespace arcade::linalg {

KernelMode default_kernel_mode() {
    static const KernelMode mode = [] {
        const char* env = std::getenv("ARCADE_KERNELS");
        if (env != nullptr) {
            const std::string value(env);
            if (value == "scalar") return KernelMode::Scalar;
            if (value == "simd") return KernelMode::Simd;
        }
        return KernelMode::Blocked;
    }();
    return mode;
}

bool simd_available() {
#if defined(ARCADE_SIMD_X86)
    static const bool ok = __builtin_cpu_supports("avx2") != 0;
    return ok;
#elif defined(ARCADE_SIMD_NEON)
    return true;  // NEON is baseline on aarch64
#else
    return false;
#endif
}

namespace {

std::atomic<KernelMode>& mode_slot() {
    static std::atomic<KernelMode> mode{default_kernel_mode()};
    return mode;
}

/// The mode the dispatchers act on: Simd degrades to Blocked when the CPU
/// lacks the extension, so "ARCADE_KERNELS=simd everywhere" is always safe.
KernelMode effective_mode() {
    const KernelMode mode = mode_slot().load(std::memory_order_relaxed);
    if (mode == KernelMode::Simd && !simd_available()) return KernelMode::Blocked;
    return mode;
}

/// Sequential-order dot product of one CSR row range against a dense vector.
/// The unrolled body chains the adds (((acc+t0)+t1)+t2)+t3 — identical
/// association to the scalar loop — while the four loads/multiplies pipeline.
inline double row_dot(const std::size_t* __restrict cols, const double* __restrict vals,
                      const double* __restrict x, std::size_t begin, std::size_t end,
                      double acc) {
    std::size_t k = begin;
    for (; k + 4 <= end; k += 4) {
        const double t0 = vals[k] * x[cols[k]];
        const double t1 = vals[k + 1] * x[cols[k + 1]];
        const double t2 = vals[k + 2] * x[cols[k + 2]];
        const double t3 = vals[k + 3] * x[cols[k + 3]];
        acc = (((acc + t0) + t1) + t2) + t3;
    }
    for (; k < end; ++k) acc += vals[k] * x[cols[k]];
    return acc;
}

/// Index of the diagonal entry in [begin,end), or end when absent.
inline std::size_t find_diag(const std::size_t* cols, std::size_t begin, std::size_t end,
                             std::size_t row) {
    for (std::size_t k = begin; k < end; ++k) {
        if (cols[k] == row) return k;
    }
    return end;
}

void multiply_left_scalar(const CsrMatrix& m, std::span<const double> x,
                          std::span<double> y) {
    std::fill(y.begin(), y.end(), 0.0);
    const auto& row_ptr = m.row_ptr();
    const auto& col_idx = m.col_idx();
    const auto& values = m.values();
    for (std::size_t r = 0; r < m.rows(); ++r) {
        const double xr = x[r];
        if (xr == 0.0) continue;
        for (std::size_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
            y[col_idx[k]] += xr * values[k];
        }
    }
}

void multiply_left_blocked(const CsrMatrix& m, std::span<const double> x,
                           std::span<double> y) {
    std::fill(y.begin(), y.end(), 0.0);
    const std::size_t* __restrict row_ptr = m.row_ptr().data();
    const std::size_t* __restrict cols = m.col_idx().data();
    const double* __restrict vals = m.values().data();
    const double* __restrict xp = x.data();
    double* __restrict yp = y.data();
    for (std::size_t r = 0; r < m.rows(); ++r) {
        const double xr = xp[r];
        if (xr == 0.0) continue;
        std::size_t k = row_ptr[r];
        const std::size_t end = row_ptr[r + 1];
        // Columns are unique within a row, so the four scatters never alias
        // and each y element still receives its contributions in row order.
        for (; k + 4 <= end; k += 4) {
            yp[cols[k]] += xr * vals[k];
            yp[cols[k + 1]] += xr * vals[k + 1];
            yp[cols[k + 2]] += xr * vals[k + 2];
            yp[cols[k + 3]] += xr * vals[k + 3];
        }
        for (; k < end; ++k) yp[cols[k]] += xr * vals[k];
    }
}

void multiply_right_scalar(const CsrMatrix& m, std::span<const double> x,
                           std::span<double> y) {
    const auto& row_ptr = m.row_ptr();
    const auto& col_idx = m.col_idx();
    const auto& values = m.values();
    for (std::size_t r = 0; r < m.rows(); ++r) {
        double acc = 0.0;
        for (std::size_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
            acc += values[k] * x[col_idx[k]];
        }
        y[r] = acc;
    }
}

void multiply_right_blocked(const CsrMatrix& m, std::span<const double> x,
                            std::span<double> y) {
    const std::size_t* __restrict row_ptr = m.row_ptr().data();
    const std::size_t* __restrict cols = m.col_idx().data();
    const double* __restrict vals = m.values().data();
    const double* __restrict xp = x.data();
    double* __restrict yp = y.data();
    const std::size_t rows = m.rows();
    // Four-row blocks give the compiler four independent dependency chains;
    // within each row the dot product stays in ascending order.
    std::size_t r = 0;
    for (; r + 4 <= rows; r += 4) {
        yp[r] = row_dot(cols, vals, xp, row_ptr[r], row_ptr[r + 1], 0.0);
        yp[r + 1] = row_dot(cols, vals, xp, row_ptr[r + 1], row_ptr[r + 2], 0.0);
        yp[r + 2] = row_dot(cols, vals, xp, row_ptr[r + 2], row_ptr[r + 3], 0.0);
        yp[r + 3] = row_dot(cols, vals, xp, row_ptr[r + 3], row_ptr[r + 4], 0.0);
    }
    for (; r < rows; ++r) {
        yp[r] = row_dot(cols, vals, xp, row_ptr[r], row_ptr[r + 1], 0.0);
    }
}

void uniformised_left_scalar(const CsrMatrix& rates, double lambda,
                             std::span<const double> in, std::span<double> out) {
    std::fill(out.begin(), out.end(), 0.0);
    for (std::size_t i = 0; i < rates.rows(); ++i) {
        const double p = in[i];
        if (p == 0.0) continue;
        const auto cols = rates.row_columns(i);
        const auto vals = rates.row_values(i);
        double moved = 0.0;
        for (std::size_t k = 0; k < cols.size(); ++k) {
            if (cols[k] == i) continue;
            const double q = vals[k] / lambda;
            out[cols[k]] += p * q;
            moved += q;
        }
        out[i] += p * (1.0 - moved);
    }
}

/// Off-diagonal scatter over [begin,end): out[col] += p*val/lambda, with the
/// moved-mass accumulator chained sequentially (same order as the scalar
/// loop's ascending walk).
inline double scatter_range(const std::size_t* __restrict cols,
                            const double* __restrict vals, double p, double lambda,
                            double* __restrict out, std::size_t begin, std::size_t end,
                            double moved) {
    std::size_t k = begin;
    for (; k + 4 <= end; k += 4) {
        const double q0 = vals[k] / lambda;
        const double q1 = vals[k + 1] / lambda;
        const double q2 = vals[k + 2] / lambda;
        const double q3 = vals[k + 3] / lambda;
        out[cols[k]] += p * q0;
        out[cols[k + 1]] += p * q1;
        out[cols[k + 2]] += p * q2;
        out[cols[k + 3]] += p * q3;
        moved = (((moved + q0) + q1) + q2) + q3;
    }
    for (; k < end; ++k) {
        const double q = vals[k] / lambda;
        out[cols[k]] += p * q;
        moved += q;
    }
    return moved;
}

void uniformised_left_blocked(const CsrMatrix& rates, double lambda,
                              std::span<const double> in, std::span<double> out) {
    std::fill(out.begin(), out.end(), 0.0);
    const std::size_t* __restrict row_ptr = rates.row_ptr().data();
    const std::size_t* __restrict cols = rates.col_idx().data();
    const double* __restrict vals = rates.values().data();
    double* __restrict op = out.data();
    for (std::size_t i = 0; i < rates.rows(); ++i) {
        const double p = in[i];
        if (p == 0.0) continue;
        const std::size_t begin = row_ptr[i];
        const std::size_t end = row_ptr[i + 1];
        const std::size_t diag = find_diag(cols, begin, end, i);
        double moved = scatter_range(cols, vals, p, lambda, op, begin, diag, 0.0);
        if (diag != end) {
            moved = scatter_range(cols, vals, p, lambda, op, diag + 1, end, moved);
        }
        op[i] += p * (1.0 - moved);
    }
}

// ---------------------------------------------------------------------------
// Batch (multi-RHS) bodies.  The scalar variants literally re-run the
// single-vector scalar loop per column over the strided block — they ARE the
// identity the fast variants must reproduce.  The blocked variants walk the
// matrix once and serve every column from each entry; per-column update
// order is still ascending (r,k), and the per-column zero skip is kept
// (it is semantic, not an optimisation: skipped columns must receive NO
// update at that row, exactly like the single-vector kernel's row skip).
// ---------------------------------------------------------------------------

void multiply_left_batch_scalar(const CsrMatrix& m, std::span<const double> x,
                                std::span<double> y, std::size_t width) {
    std::fill(y.begin(), y.end(), 0.0);
    const auto& row_ptr = m.row_ptr();
    const auto& col_idx = m.col_idx();
    const auto& values = m.values();
    for (std::size_t c = 0; c < width; ++c) {
        for (std::size_t r = 0; r < m.rows(); ++r) {
            const double xr = x[r * width + c];
            if (xr == 0.0) continue;
            for (std::size_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
                y[col_idx[k] * width + c] += xr * values[k];
            }
        }
    }
}

void multiply_left_batch_blocked(const CsrMatrix& m, std::span<const double> x,
                                 std::span<double> y, std::size_t width) {
    std::fill(y.begin(), y.end(), 0.0);
    const std::size_t* __restrict row_ptr = m.row_ptr().data();
    const std::size_t* __restrict cols = m.col_idx().data();
    const double* __restrict vals = m.values().data();
    const double* __restrict xp = x.data();
    double* __restrict yp = y.data();
    for (std::size_t r = 0; r < m.rows(); ++r) {
        const double* __restrict xr = xp + r * width;
        // The per-column guard only protects zero columns (from 0·±inf→NaN
        // and from flipping a -0 accumulator to +0); when the whole row
        // block is live it guards nothing, so the dense path runs the same
        // arithmetic branch-free — which is what lets the compiler
        // vectorise the column loop.
        bool any = false;
        bool all = true;
        for (std::size_t c = 0; c < width; ++c) {
            const bool live = xr[c] != 0.0;
            any = any || live;
            all = all && live;
        }
        if (!any) continue;
        if (all) {
            for (std::size_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
                const double v = vals[k];
                double* __restrict yr = yp + cols[k] * width;
                for (std::size_t c = 0; c < width; ++c) yr[c] += xr[c] * v;
            }
        } else {
            for (std::size_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
                const double v = vals[k];
                double* __restrict yr = yp + cols[k] * width;
                for (std::size_t c = 0; c < width; ++c) {
                    const double p = xr[c];
                    if (p != 0.0) yr[c] += p * v;
                }
            }
        }
    }
}

void multiply_right_batch_scalar(const CsrMatrix& m, std::span<const double> x,
                                 std::span<double> y, std::size_t width) {
    const auto& row_ptr = m.row_ptr();
    const auto& col_idx = m.col_idx();
    const auto& values = m.values();
    for (std::size_t c = 0; c < width; ++c) {
        for (std::size_t r = 0; r < m.rows(); ++r) {
            double acc = 0.0;
            for (std::size_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
                acc += values[k] * x[col_idx[k] * width + c];
            }
            y[r * width + c] = acc;
        }
    }
}

void multiply_right_batch_blocked(const CsrMatrix& m, std::span<const double> x,
                                  std::span<double> y, std::size_t width) {
    const std::size_t* __restrict row_ptr = m.row_ptr().data();
    const std::size_t* __restrict cols = m.col_idx().data();
    const double* __restrict vals = m.values().data();
    const double* __restrict xp = x.data();
    double* __restrict yp = y.data();
    for (std::size_t r = 0; r < m.rows(); ++r) {
        double* __restrict yr = yp + r * width;
        for (std::size_t c = 0; c < width; ++c) yr[c] = 0.0;
        // Per column the accumulation is the plain ascending-k chain — the
        // width independent chains already give the ILP the single-vector
        // kernel needed four-row blocking for.
        for (std::size_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
            const double v = vals[k];
            const double* __restrict xc = xp + cols[k] * width;
            for (std::size_t c = 0; c < width; ++c) yr[c] += v * xc[c];
        }
    }
}

void uniformised_left_batch_scalar(const CsrMatrix& rates, double lambda,
                                   std::span<const double> in, std::span<double> out,
                                   std::size_t width) {
    std::fill(out.begin(), out.end(), 0.0);
    for (std::size_t c = 0; c < width; ++c) {
        for (std::size_t i = 0; i < rates.rows(); ++i) {
            const double p = in[i * width + c];
            if (p == 0.0) continue;
            const auto cols = rates.row_columns(i);
            const auto vals = rates.row_values(i);
            double moved = 0.0;
            for (std::size_t k = 0; k < cols.size(); ++k) {
                if (cols[k] == i) continue;
                const double q = vals[k] / lambda;
                out[cols[k] * width + c] += p * q;
                moved += q;
            }
            out[i * width + c] += p * (1.0 - moved);
        }
    }
}

/// Off-diagonal batch scatter over [begin,end): ONE division per entry
/// serves every column, and `moved` (column-independent) is chained
/// sequentially in the same ascending order as the single-vector loops.
/// kDense = every column of this row block is non-zero: the per-column
/// guard only protects zero columns (from 0·±inf→NaN and from flipping a
/// -0 accumulator to +0), so dropping it for fully-live rows performs the
/// identical arithmetic while letting the compiler vectorise the column
/// loop.  Transient distributions go strictly positive after a few steps,
/// so the dense instantiation is the steady state of every batched sweep.
template <bool kDense>
inline double scatter_range_batch(const std::size_t* __restrict cols,
                                  const double* __restrict vals,
                                  const double* __restrict p, double lambda,
                                  double* __restrict out, std::size_t begin,
                                  std::size_t end, std::size_t width, double moved) {
    for (std::size_t k = begin; k < end; ++k) {
        const double q = vals[k] / lambda;
        double* __restrict o = out + cols[k] * width;
        for (std::size_t c = 0; c < width; ++c) {
            const double pc = p[c];
            if (kDense || pc != 0.0) o[c] += pc * q;
        }
        moved += q;
    }
    return moved;
}

void uniformised_left_batch_blocked(const CsrMatrix& rates, double lambda,
                                    std::span<const double> in, std::span<double> out,
                                    std::size_t width) {
    std::fill(out.begin(), out.end(), 0.0);
    const std::size_t* __restrict row_ptr = rates.row_ptr().data();
    const std::size_t* __restrict cols = rates.col_idx().data();
    const double* __restrict vals = rates.values().data();
    const double* __restrict ip = in.data();
    double* __restrict op = out.data();
    for (std::size_t i = 0; i < rates.rows(); ++i) {
        const double* __restrict p = ip + i * width;
        bool any = false;
        bool all = true;
        for (std::size_t c = 0; c < width; ++c) {
            const bool live = p[c] != 0.0;
            any = any || live;
            all = all && live;
        }
        if (!any) continue;
        const std::size_t begin = row_ptr[i];
        const std::size_t end = row_ptr[i + 1];
        const std::size_t diag = find_diag(cols, begin, end, i);
        double moved;
        if (all) {
            moved = scatter_range_batch<true>(cols, vals, p, lambda, op, begin, diag,
                                              width, 0.0);
            if (diag != end) {
                moved = scatter_range_batch<true>(cols, vals, p, lambda, op, diag + 1,
                                                  end, width, moved);
            }
            double* __restrict oi = op + i * width;
            const double retained = 1.0 - moved;
            for (std::size_t c = 0; c < width; ++c) oi[c] += p[c] * retained;
        } else {
            moved = scatter_range_batch<false>(cols, vals, p, lambda, op, begin, diag,
                                               width, 0.0);
            if (diag != end) {
                moved = scatter_range_batch<false>(cols, vals, p, lambda, op, diag + 1,
                                                   end, width, moved);
            }
            double* __restrict oi = op + i * width;
            const double retained = 1.0 - moved;
            for (std::size_t c = 0; c < width; ++c) {
                if (p[c] != 0.0) oi[c] += p[c] * retained;
            }
        }
    }
}

void uniformised_right_scalar(const CsrMatrix& rates, double lambda,
                              std::span<const double> cur, std::span<double> next) {
    for (std::size_t i = 0; i < rates.rows(); ++i) {
        const auto cols = rates.row_columns(i);
        const auto vals = rates.row_values(i);
        double moved = 0.0;
        double sum = 0.0;
        for (std::size_t k = 0; k < cols.size(); ++k) {
            if (cols[k] == i) continue;
            const double p = vals[k] / lambda;
            sum += p * cur[cols[k]];
            moved += p;
        }
        next[i] = sum + (1.0 - moved) * cur[i];
    }
}

/// Off-diagonal gather over [begin,end): sum += (val/lambda)*cur[col] and
/// moved += val/lambda, both chained sequentially in ascending order.
inline void gather_range(const std::size_t* __restrict cols, const double* __restrict vals,
                         double lambda, const double* __restrict cur, std::size_t begin,
                         std::size_t end, double& sum, double& moved) {
    double s = sum;
    double m = moved;
    std::size_t k = begin;
    for (; k + 4 <= end; k += 4) {
        const double p0 = vals[k] / lambda;
        const double p1 = vals[k + 1] / lambda;
        const double p2 = vals[k + 2] / lambda;
        const double p3 = vals[k + 3] / lambda;
        s = (((s + p0 * cur[cols[k]]) + p1 * cur[cols[k + 1]]) + p2 * cur[cols[k + 2]]) +
            p3 * cur[cols[k + 3]];
        m = (((m + p0) + p1) + p2) + p3;
    }
    for (; k < end; ++k) {
        const double p = vals[k] / lambda;
        s += p * cur[cols[k]];
        m += p;
    }
    sum = s;
    moved = m;
}

void uniformised_right_blocked(const CsrMatrix& rates, double lambda,
                               std::span<const double> cur, std::span<double> next) {
    const std::size_t* __restrict row_ptr = rates.row_ptr().data();
    const std::size_t* __restrict cols = rates.col_idx().data();
    const double* __restrict vals = rates.values().data();
    const double* __restrict cp = cur.data();
    double* __restrict np = next.data();
    for (std::size_t i = 0; i < rates.rows(); ++i) {
        const std::size_t begin = row_ptr[i];
        const std::size_t end = row_ptr[i + 1];
        const std::size_t diag = find_diag(cols, begin, end, i);
        double sum = 0.0;
        double moved = 0.0;
        gather_range(cols, vals, lambda, cp, begin, diag, sum, moved);
        if (diag != end) gather_range(cols, vals, lambda, cp, diag + 1, end, sum, moved);
        np[i] = sum + (1.0 - moved) * cp[i];  // diagonal term last, like the seed
    }
}

// ---------------------------------------------------------------------------
// SIMD primitives.  Only element-wise work is ever vectorised; every
// accumulator is folded lane by lane in the SAME sequential order as the
// scalar/blocked loops, and mul/add stay separate instructions (no FMA
// contraction), so the results are bitwise identical across all three modes.
//
// Which primitives get a vector body is a measured decision, not a uniform
// one.  On AVX2 Skylake-class cores the ordered-fold constraint makes
// gather-based reductions (vpgatherqq + four serial adds) slower than the
// blocked scalar unroll at EVERY row length — gathers cost one load-port
// micro-op per element, exactly like scalar loads, so only ALU work is
// saved and the extra shuffles eat the saving.  Division is the opposite:
// one vdivpd retires four divisions in roughly half the cycles of four
// divsd, a win that survives the lane extraction.  The x86 simd build
// therefore vectorises the division-heavy uniformised primitives and
// reuses the blocked bodies for the multiply-only paths.  NEON pays no
// gather penalty (two-lane vectors load scalars directly), so aarch64
// keeps vector bodies throughout.
// ---------------------------------------------------------------------------

#if defined(ARCADE_SIMD_X86)

/// Blocked body, re-used verbatim: vector mul + lane extraction measured
/// slower than four scalar multiply-adds for this shape (see block comment
/// above).
inline double row_dot_simd(const std::size_t* __restrict cols,
                           const double* __restrict vals, const double* __restrict x,
                           std::size_t begin, std::size_t end, double acc) {
    return row_dot(cols, vals, x, begin, end, acc);
}

/// The four lanes of `v` folded into `acc` strictly left to right —
/// (((acc+v0)+v1)+v2)+v3, the scalar loops' association — via register
/// shuffles (no temp-array round trip through the store buffer).
__attribute__((target("avx2"))) inline double fold_lanes_ordered(__m256d v, double acc) {
    const __m128d lo = _mm256_castpd256_pd128(v);
    const __m128d hi = _mm256_extractf128_pd(v, 1);
    acc += _mm_cvtsd_f64(lo);
    acc += _mm_cvtsd_f64(_mm_unpackhi_pd(lo, lo));
    acc += _mm_cvtsd_f64(hi);
    acc += _mm_cvtsd_f64(_mm_unpackhi_pd(hi, hi));
    return acc;
}

__attribute__((target("avx2"))) double scatter_range_simd(
    const std::size_t* __restrict cols, const double* __restrict vals, double p,
    double lambda, double* __restrict out, std::size_t begin, std::size_t end,
    double moved) {
    std::size_t k = begin;
    const __m256d lam = _mm256_set1_pd(lambda);
    const __m256d pv = _mm256_set1_pd(p);
    for (; k + 4 <= end; k += 4) {
        const __m256d qv = _mm256_div_pd(_mm256_loadu_pd(vals + k), lam);
        const __m256d pq = _mm256_mul_pd(pv, qv);
        const __m128d lo = _mm256_castpd256_pd128(pq);
        const __m128d hi = _mm256_extractf128_pd(pq, 1);
        out[cols[k]] += _mm_cvtsd_f64(lo);
        out[cols[k + 1]] += _mm_cvtsd_f64(_mm_unpackhi_pd(lo, lo));
        out[cols[k + 2]] += _mm_cvtsd_f64(hi);
        out[cols[k + 3]] += _mm_cvtsd_f64(_mm_unpackhi_pd(hi, hi));
        moved = fold_lanes_ordered(qv, moved);
    }
    for (; k < end; ++k) {
        const double q0 = vals[k] / lambda;
        out[cols[k]] += p * q0;
        moved += q0;
    }
    return moved;
}

__attribute__((target("avx2"))) void gather_range_simd(
    const std::size_t* __restrict cols, const double* __restrict vals, double lambda,
    const double* __restrict cur, std::size_t begin, std::size_t end, double& sum,
    double& moved) {
    double s = sum;
    double m = moved;
    std::size_t k = begin;
    const __m256d lam = _mm256_set1_pd(lambda);
    // Vector division, scalar loads of `cur`: vpgatherqq would cost the
    // same load-port micro-ops as four scalar loads and lose the division
    // win to its setup overhead.
    for (; k + 4 <= end; k += 4) {
        const __m256d pv = _mm256_div_pd(_mm256_loadu_pd(vals + k), lam);
        const __m128d lo = _mm256_castpd256_pd128(pv);
        const __m128d hi = _mm256_extractf128_pd(pv, 1);
        const double p0 = _mm_cvtsd_f64(lo);
        const double p1 = _mm_cvtsd_f64(_mm_unpackhi_pd(lo, lo));
        const double p2 = _mm_cvtsd_f64(hi);
        const double p3 = _mm_cvtsd_f64(_mm_unpackhi_pd(hi, hi));
        s = (((s + p0 * cur[cols[k]]) + p1 * cur[cols[k + 1]]) + p2 * cur[cols[k + 2]]) +
            p3 * cur[cols[k + 3]];
        m = (((m + p0) + p1) + p2) + p3;
    }
    for (; k < end; ++k) {
        const double p0 = vals[k] / lambda;
        s += p0 * cur[cols[k]];
        m += p0;
    }
    sum = s;
    moved = m;
}

#elif defined(ARCADE_SIMD_NEON)

double row_dot_simd(const std::size_t* __restrict cols, const double* __restrict vals,
                    const double* __restrict x, std::size_t begin, std::size_t end,
                    double acc) {
    std::size_t k = begin;
    for (; k + 2 <= end; k += 2) {
        const float64x2_t xs = {x[cols[k]], x[cols[k + 1]]};
        const float64x2_t t = vmulq_f64(vld1q_f64(vals + k), xs);
        acc = (acc + vgetq_lane_f64(t, 0)) + vgetq_lane_f64(t, 1);
    }
    for (; k < end; ++k) acc += vals[k] * x[cols[k]];
    return acc;
}

void mul_scatter_simd(const std::size_t* __restrict cols, const double* __restrict vals,
                      double xr, double* __restrict y, std::size_t begin,
                      std::size_t end) {
    std::size_t k = begin;
    const float64x2_t xv = vdupq_n_f64(xr);
    for (; k + 2 <= end; k += 2) {
        const float64x2_t t = vmulq_f64(xv, vld1q_f64(vals + k));
        y[cols[k]] += vgetq_lane_f64(t, 0);
        y[cols[k + 1]] += vgetq_lane_f64(t, 1);
    }
    for (; k < end; ++k) y[cols[k]] += xr * vals[k];
}

double scatter_range_simd(const std::size_t* __restrict cols,
                          const double* __restrict vals, double p, double lambda,
                          double* __restrict out, std::size_t begin, std::size_t end,
                          double moved) {
    std::size_t k = begin;
    const float64x2_t lam = vdupq_n_f64(lambda);
    const float64x2_t pv = vdupq_n_f64(p);
    for (; k + 2 <= end; k += 2) {
        const float64x2_t qv = vdivq_f64(vld1q_f64(vals + k), lam);
        const float64x2_t pq = vmulq_f64(pv, qv);
        out[cols[k]] += vgetq_lane_f64(pq, 0);
        out[cols[k + 1]] += vgetq_lane_f64(pq, 1);
        moved = (moved + vgetq_lane_f64(qv, 0)) + vgetq_lane_f64(qv, 1);
    }
    for (; k < end; ++k) {
        const double q0 = vals[k] / lambda;
        out[cols[k]] += p * q0;
        moved += q0;
    }
    return moved;
}

void gather_range_simd(const std::size_t* __restrict cols, const double* __restrict vals,
                       double lambda, const double* __restrict cur, std::size_t begin,
                       std::size_t end, double& sum, double& moved) {
    double s = sum;
    double m = moved;
    std::size_t k = begin;
    const float64x2_t lam = vdupq_n_f64(lambda);
    for (; k + 2 <= end; k += 2) {
        const float64x2_t pv = vdivq_f64(vld1q_f64(vals + k), lam);
        const float64x2_t cs = {cur[cols[k]], cur[cols[k + 1]]};
        const float64x2_t pc = vmulq_f64(pv, cs);
        s = (s + vgetq_lane_f64(pc, 0)) + vgetq_lane_f64(pc, 1);
        m = (m + vgetq_lane_f64(pv, 0)) + vgetq_lane_f64(pv, 1);
    }
    for (; k < end; ++k) {
        const double p0 = vals[k] / lambda;
        s += p0 * cur[cols[k]];
        m += p0;
    }
    sum = s;
    moved = m;
}

#endif  // SIMD primitives

#if defined(ARCADE_SIMD_ARCH)

// On x86 the uniformised variants carry the avx2 target themselves so the
// range helpers inline into the row loops — that lets the compiler hoist
// the loop-invariant broadcasts (lambda, p) out of the per-row calls, which
// matters when rows are short.  The multiply variants deliberately stay at
// the baseline ISA: their bodies are the blocked scalar loops, and compiling
// those with AVX2 enabled invites the compiler to SLP-vectorise the
// four-unrolled body into the gather + lane-extract pattern this file
// measured as slower.  The dispatchers only reach any of these after
// simd_available(), so the attribute never runs on unsupported hardware.
#if defined(ARCADE_SIMD_X86)
#define ARCADE_SIMD_TARGET __attribute__((target("avx2")))
#else
#define ARCADE_SIMD_TARGET
#endif

#if defined(ARCADE_SIMD_X86)

// The multiply kernels' best bitwise-preserving x86 implementation IS the
// blocked one (measured; see the primitives block comment): dispatch
// straight to the very same functions so simd mode executes identical
// machine code, not a copy at a different address.
void multiply_left_simd(const CsrMatrix& m, std::span<const double> x,
                        std::span<double> y) {
    multiply_left_blocked(m, x, y);
}

void multiply_right_simd(const CsrMatrix& m, std::span<const double> x,
                         std::span<double> y) {
    multiply_right_blocked(m, x, y);
}

#else  // NEON

void multiply_left_simd(const CsrMatrix& m, std::span<const double> x,
                        std::span<double> y) {
    std::fill(y.begin(), y.end(), 0.0);
    const std::size_t* __restrict row_ptr = m.row_ptr().data();
    const std::size_t* __restrict cols = m.col_idx().data();
    const double* __restrict vals = m.values().data();
    const double* __restrict xp = x.data();
    double* __restrict yp = y.data();
    for (std::size_t r = 0; r < m.rows(); ++r) {
        const double xr = xp[r];
        if (xr == 0.0) continue;
        mul_scatter_simd(cols, vals, xr, yp, row_ptr[r], row_ptr[r + 1]);
    }
}

void multiply_right_simd(const CsrMatrix& m, std::span<const double> x,
                         std::span<double> y) {
    const std::size_t* __restrict row_ptr = m.row_ptr().data();
    const std::size_t* __restrict cols = m.col_idx().data();
    const double* __restrict vals = m.values().data();
    const double* __restrict xp = x.data();
    double* __restrict yp = y.data();
    const std::size_t rows = m.rows();
    // Same four-row blocking as the blocked kernel: each row's accumulation
    // is a serial dependency chain, so four independent rows in flight are
    // what keep the vector units busy.
    std::size_t r = 0;
    for (; r + 4 <= rows; r += 4) {
        yp[r] = row_dot_simd(cols, vals, xp, row_ptr[r], row_ptr[r + 1], 0.0);
        yp[r + 1] = row_dot_simd(cols, vals, xp, row_ptr[r + 1], row_ptr[r + 2], 0.0);
        yp[r + 2] = row_dot_simd(cols, vals, xp, row_ptr[r + 2], row_ptr[r + 3], 0.0);
        yp[r + 3] = row_dot_simd(cols, vals, xp, row_ptr[r + 3], row_ptr[r + 4], 0.0);
    }
    for (; r < rows; ++r) {
        yp[r] = row_dot_simd(cols, vals, xp, row_ptr[r], row_ptr[r + 1], 0.0);
    }
}

#endif  // multiply variants

ARCADE_SIMD_TARGET void uniformised_left_simd(const CsrMatrix& rates, double lambda,
                           std::span<const double> in, std::span<double> out) {
    std::fill(out.begin(), out.end(), 0.0);
    const std::size_t* __restrict row_ptr = rates.row_ptr().data();
    const std::size_t* __restrict cols = rates.col_idx().data();
    const double* __restrict vals = rates.values().data();
    double* __restrict op = out.data();
    for (std::size_t i = 0; i < rates.rows(); ++i) {
        const double p = in[i];
        if (p == 0.0) continue;
        const std::size_t begin = row_ptr[i];
        const std::size_t end = row_ptr[i + 1];
        const std::size_t diag = find_diag(cols, begin, end, i);
        double moved = scatter_range_simd(cols, vals, p, lambda, op, begin, diag, 0.0);
        if (diag != end) {
            moved = scatter_range_simd(cols, vals, p, lambda, op, diag + 1, end, moved);
        }
        op[i] += p * (1.0 - moved);
    }
}

ARCADE_SIMD_TARGET void uniformised_right_simd(const CsrMatrix& rates, double lambda,
                            std::span<const double> cur, std::span<double> next) {
    const std::size_t* __restrict row_ptr = rates.row_ptr().data();
    const std::size_t* __restrict cols = rates.col_idx().data();
    const double* __restrict vals = rates.values().data();
    const double* __restrict cp = cur.data();
    double* __restrict np = next.data();
    for (std::size_t i = 0; i < rates.rows(); ++i) {
        const std::size_t begin = row_ptr[i];
        const std::size_t end = row_ptr[i + 1];
        const std::size_t diag = find_diag(cols, begin, end, i);
        double sum = 0.0;
        double moved = 0.0;
        gather_range_simd(cols, vals, lambda, cp, begin, diag, sum, moved);
        if (diag != end) {
            gather_range_simd(cols, vals, lambda, cp, diag + 1, end, sum, moved);
        }
        np[i] = sum + (1.0 - moved) * cp[i];  // diagonal term last, like the seed
    }
}

// Batch simd variants.  The multiply batch kernels dispatch to the blocked
// bodies on both ISAs: the batch layout's inner per-column loop is already
// the element-wise form, contiguous in memory, and the compiler vectorises
// it at the baseline ISA without any reassociation to forbid — a hand
// vector body has nothing left to win.  The uniformised batch kernel keeps
// the division win on x86: vdivpd retires four vals[k]/lambda at once and
// each quotient is then scattered to its columns, with `moved` folded lane
// by lane in scalar order.  On NEON the single division per entry is
// already amortised across the whole block, so the two-lane vdivq trick of
// the single-vector path has no leverage and the blocked body is used.

#if defined(ARCADE_SIMD_X86)

/// kDense as in scatter_range_batch: fully-live rows drop the per-column
/// guard (identical arithmetic, see there) so the scatter loop vectorises.
template <bool kDense>
ARCADE_SIMD_TARGET double scatter_range_batch_simd(
    const std::size_t* __restrict cols, const double* __restrict vals,
    const double* __restrict p, double lambda, double* __restrict out,
    std::size_t begin, std::size_t end, std::size_t width, double moved) {
    std::size_t k = begin;
    const __m256d lam = _mm256_set1_pd(lambda);
    for (; k + 4 <= end; k += 4) {
        const __m256d qv = _mm256_div_pd(_mm256_loadu_pd(vals + k), lam);
        alignas(32) double q[4];
        _mm256_store_pd(q, qv);
        for (int j = 0; j < 4; ++j) {
            const double qj = q[j];
            double* __restrict o = out + cols[k + static_cast<std::size_t>(j)] * width;
            for (std::size_t c = 0; c < width; ++c) {
                const double pc = p[c];
                if (kDense || pc != 0.0) o[c] += pc * qj;
            }
        }
        moved = fold_lanes_ordered(qv, moved);
    }
    for (; k < end; ++k) {
        const double q = vals[k] / lambda;
        double* __restrict o = out + cols[k] * width;
        for (std::size_t c = 0; c < width; ++c) {
            const double pc = p[c];
            if (kDense || pc != 0.0) o[c] += pc * q;
        }
        moved += q;
    }
    return moved;
}

ARCADE_SIMD_TARGET void uniformised_left_batch_simd(const CsrMatrix& rates,
                                                    double lambda,
                                                    std::span<const double> in,
                                                    std::span<double> out,
                                                    std::size_t width) {
    std::fill(out.begin(), out.end(), 0.0);
    const std::size_t* __restrict row_ptr = rates.row_ptr().data();
    const std::size_t* __restrict cols = rates.col_idx().data();
    const double* __restrict vals = rates.values().data();
    const double* __restrict ip = in.data();
    double* __restrict op = out.data();
    for (std::size_t i = 0; i < rates.rows(); ++i) {
        const double* __restrict p = ip + i * width;
        bool any = false;
        bool all = true;
        for (std::size_t c = 0; c < width; ++c) {
            const bool live = p[c] != 0.0;
            any = any || live;
            all = all && live;
        }
        if (!any) continue;
        const std::size_t begin = row_ptr[i];
        const std::size_t end = row_ptr[i + 1];
        const std::size_t diag = find_diag(cols, begin, end, i);
        double moved;
        if (all) {
            moved = scatter_range_batch_simd<true>(cols, vals, p, lambda, op, begin,
                                                   diag, width, 0.0);
            if (diag != end) {
                moved = scatter_range_batch_simd<true>(cols, vals, p, lambda, op,
                                                       diag + 1, end, width, moved);
            }
            double* __restrict oi = op + i * width;
            const double retained = 1.0 - moved;
            for (std::size_t c = 0; c < width; ++c) oi[c] += p[c] * retained;
        } else {
            moved = scatter_range_batch_simd<false>(cols, vals, p, lambda, op, begin,
                                                    diag, width, 0.0);
            if (diag != end) {
                moved = scatter_range_batch_simd<false>(cols, vals, p, lambda, op,
                                                        diag + 1, end, width, moved);
            }
            double* __restrict oi = op + i * width;
            const double retained = 1.0 - moved;
            for (std::size_t c = 0; c < width; ++c) {
                if (p[c] != 0.0) oi[c] += p[c] * retained;
            }
        }
    }
}

#else  // NEON

void uniformised_left_batch_simd(const CsrMatrix& rates, double lambda,
                                 std::span<const double> in, std::span<double> out,
                                 std::size_t width) {
    uniformised_left_batch_blocked(rates, lambda, in, out, width);
}

#endif  // batch simd variants

#endif  // ARCADE_SIMD_ARCH

}  // namespace

KernelMode kernel_mode() { return mode_slot().load(std::memory_order_relaxed); }

void set_kernel_mode(KernelMode mode) {
    mode_slot().store(mode, std::memory_order_relaxed);
}

void multiply_left(const CsrMatrix& m, std::span<const double> x, std::span<double> y) {
    ARCADE_ASSERT(x.size() == m.rows() && y.size() == m.cols(),
                  "multiply_left shape mismatch");
    switch (effective_mode()) {
#if defined(ARCADE_SIMD_ARCH)
        case KernelMode::Simd: multiply_left_simd(m, x, y); return;
#endif
        case KernelMode::Blocked: multiply_left_blocked(m, x, y); return;
        default: multiply_left_scalar(m, x, y); return;
    }
}

void multiply_right(const CsrMatrix& m, std::span<const double> x, std::span<double> y) {
    ARCADE_ASSERT(x.size() == m.cols() && y.size() == m.rows(),
                  "multiply_right shape mismatch");
    switch (effective_mode()) {
#if defined(ARCADE_SIMD_ARCH)
        case KernelMode::Simd: multiply_right_simd(m, x, y); return;
#endif
        case KernelMode::Blocked: multiply_right_blocked(m, x, y); return;
        default: multiply_right_scalar(m, x, y); return;
    }
}

void uniformised_multiply_left(const CsrMatrix& rates, double lambda,
                               std::span<const double> in, std::span<double> out) {
    ARCADE_ASSERT(in.size() == rates.rows() && out.size() == rates.rows(),
                  "uniformised_multiply_left shape mismatch");
    switch (effective_mode()) {
#if defined(ARCADE_SIMD_ARCH)
        case KernelMode::Simd: uniformised_left_simd(rates, lambda, in, out); return;
#endif
        case KernelMode::Blocked: uniformised_left_blocked(rates, lambda, in, out); return;
        default: uniformised_left_scalar(rates, lambda, in, out); return;
    }
}

void uniformised_multiply_right(const CsrMatrix& rates, double lambda,
                                std::span<const double> cur, std::span<double> next) {
    ARCADE_ASSERT(cur.size() == rates.rows() && next.size() == rates.rows(),
                  "uniformised_multiply_right shape mismatch");
    switch (effective_mode()) {
#if defined(ARCADE_SIMD_ARCH)
        case KernelMode::Simd: uniformised_right_simd(rates, lambda, cur, next); return;
#endif
        case KernelMode::Blocked:
            uniformised_right_blocked(rates, lambda, cur, next);
            return;
        default: uniformised_right_scalar(rates, lambda, cur, next); return;
    }
}

void multiply_left_batch(const CsrMatrix& m, std::span<const double> x,
                         std::span<double> y, std::size_t width) {
    ARCADE_ASSERT(width > 0, "multiply_left_batch: zero width");
    ARCADE_ASSERT(x.size() == m.rows() * width && y.size() == m.cols() * width,
                  "multiply_left_batch shape mismatch");
    switch (effective_mode()) {
#if defined(ARCADE_SIMD_ARCH)
        // Dispatches to the blocked body on every ISA (see the batch simd
        // block comment); kept as a case so the mode contract stays total.
        case KernelMode::Simd: multiply_left_batch_blocked(m, x, y, width); return;
#endif
        case KernelMode::Blocked: multiply_left_batch_blocked(m, x, y, width); return;
        default: multiply_left_batch_scalar(m, x, y, width); return;
    }
}

void multiply_right_batch(const CsrMatrix& m, std::span<const double> x,
                          std::span<double> y, std::size_t width) {
    ARCADE_ASSERT(width > 0, "multiply_right_batch: zero width");
    ARCADE_ASSERT(x.size() == m.cols() * width && y.size() == m.rows() * width,
                  "multiply_right_batch shape mismatch");
    switch (effective_mode()) {
#if defined(ARCADE_SIMD_ARCH)
        case KernelMode::Simd: multiply_right_batch_blocked(m, x, y, width); return;
#endif
        case KernelMode::Blocked: multiply_right_batch_blocked(m, x, y, width); return;
        default: multiply_right_batch_scalar(m, x, y, width); return;
    }
}

void uniformised_multiply_left_batch(const CsrMatrix& rates, double lambda,
                                     std::span<const double> in, std::span<double> out,
                                     std::size_t width) {
    ARCADE_ASSERT(width > 0, "uniformised_multiply_left_batch: zero width");
    ARCADE_ASSERT(in.size() == rates.rows() * width && out.size() == rates.rows() * width,
                  "uniformised_multiply_left_batch shape mismatch");
    switch (effective_mode()) {
#if defined(ARCADE_SIMD_ARCH)
        case KernelMode::Simd:
            uniformised_left_batch_simd(rates, lambda, in, out, width);
            return;
#endif
        case KernelMode::Blocked:
            uniformised_left_batch_blocked(rates, lambda, in, out, width);
            return;
        default: uniformised_left_batch_scalar(rates, lambda, in, out, width); return;
    }
}

double gather_skip_diag(std::span<const std::size_t> cols, std::span<const double> vals,
                        std::span<const double> x, std::size_t skip, double acc) {
    const KernelMode mode = effective_mode();
    if (mode == KernelMode::Scalar) {
        for (std::size_t k = 0; k < cols.size(); ++k) {
            if (cols[k] != skip) acc += vals[k] * x[cols[k]];
        }
        return acc;
    }
    const std::size_t diag = find_diag(cols.data(), 0, cols.size(), skip);
#if defined(ARCADE_SIMD_ARCH)
    if (mode == KernelMode::Simd) {
        acc = row_dot_simd(cols.data(), vals.data(), x.data(), 0, diag, acc);
        if (diag != cols.size()) {
            acc = row_dot_simd(cols.data(), vals.data(), x.data(), diag + 1, cols.size(),
                               acc);
        }
        return acc;
    }
#endif
    acc = row_dot(cols.data(), vals.data(), x.data(), 0, diag, acc);
    if (diag != cols.size()) {
        acc = row_dot(cols.data(), vals.data(), x.data(), diag + 1, cols.size(), acc);
    }
    return acc;
}

double gather_capture_diag(std::span<const std::size_t> cols, std::span<const double> vals,
                           std::span<const double> x, std::size_t row, double acc,
                           double& diag) {
    diag = 0.0;
    const KernelMode mode = effective_mode();
    if (mode == KernelMode::Scalar) {
        for (std::size_t k = 0; k < cols.size(); ++k) {
            if (cols[k] == row) {
                diag = vals[k];
            } else {
                acc += vals[k] * x[cols[k]];
            }
        }
        return acc;
    }
    const std::size_t d = find_diag(cols.data(), 0, cols.size(), row);
#if defined(ARCADE_SIMD_ARCH)
    if (mode == KernelMode::Simd) {
        acc = row_dot_simd(cols.data(), vals.data(), x.data(), 0, d, acc);
        if (d != cols.size()) {
            diag = vals[d];
            acc = row_dot_simd(cols.data(), vals.data(), x.data(), d + 1, cols.size(),
                               acc);
        }
        return acc;
    }
#endif
    acc = row_dot(cols.data(), vals.data(), x.data(), 0, d, acc);
    if (d != cols.size()) {
        diag = vals[d];
        acc = row_dot(cols.data(), vals.data(), x.data(), d + 1, cols.size(), acc);
    }
    return acc;
}

}  // namespace arcade::linalg
