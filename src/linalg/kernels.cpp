#include "linalg/kernels.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <string>

#include "support/errors.hpp"

namespace arcade::linalg {

KernelMode default_kernel_mode() {
    static const KernelMode mode = [] {
        const char* env = std::getenv("ARCADE_KERNELS");
        if (env != nullptr && std::string(env) == "scalar") return KernelMode::Scalar;
        return KernelMode::Blocked;
    }();
    return mode;
}

namespace {

std::atomic<KernelMode>& mode_slot() {
    static std::atomic<KernelMode> mode{default_kernel_mode()};
    return mode;
}

/// Sequential-order dot product of one CSR row range against a dense vector.
/// The unrolled body chains the adds (((acc+t0)+t1)+t2)+t3 — identical
/// association to the scalar loop — while the four loads/multiplies pipeline.
inline double row_dot(const std::size_t* __restrict cols, const double* __restrict vals,
                      const double* __restrict x, std::size_t begin, std::size_t end,
                      double acc) {
    std::size_t k = begin;
    for (; k + 4 <= end; k += 4) {
        const double t0 = vals[k] * x[cols[k]];
        const double t1 = vals[k + 1] * x[cols[k + 1]];
        const double t2 = vals[k + 2] * x[cols[k + 2]];
        const double t3 = vals[k + 3] * x[cols[k + 3]];
        acc = (((acc + t0) + t1) + t2) + t3;
    }
    for (; k < end; ++k) acc += vals[k] * x[cols[k]];
    return acc;
}

/// Index of the diagonal entry in [begin,end), or end when absent.
inline std::size_t find_diag(const std::size_t* cols, std::size_t begin, std::size_t end,
                             std::size_t row) {
    for (std::size_t k = begin; k < end; ++k) {
        if (cols[k] == row) return k;
    }
    return end;
}

void multiply_left_scalar(const CsrMatrix& m, std::span<const double> x,
                          std::span<double> y) {
    std::fill(y.begin(), y.end(), 0.0);
    const auto& row_ptr = m.row_ptr();
    const auto& col_idx = m.col_idx();
    const auto& values = m.values();
    for (std::size_t r = 0; r < m.rows(); ++r) {
        const double xr = x[r];
        if (xr == 0.0) continue;
        for (std::size_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
            y[col_idx[k]] += xr * values[k];
        }
    }
}

void multiply_left_blocked(const CsrMatrix& m, std::span<const double> x,
                           std::span<double> y) {
    std::fill(y.begin(), y.end(), 0.0);
    const std::size_t* __restrict row_ptr = m.row_ptr().data();
    const std::size_t* __restrict cols = m.col_idx().data();
    const double* __restrict vals = m.values().data();
    const double* __restrict xp = x.data();
    double* __restrict yp = y.data();
    for (std::size_t r = 0; r < m.rows(); ++r) {
        const double xr = xp[r];
        if (xr == 0.0) continue;
        std::size_t k = row_ptr[r];
        const std::size_t end = row_ptr[r + 1];
        // Columns are unique within a row, so the four scatters never alias
        // and each y element still receives its contributions in row order.
        for (; k + 4 <= end; k += 4) {
            yp[cols[k]] += xr * vals[k];
            yp[cols[k + 1]] += xr * vals[k + 1];
            yp[cols[k + 2]] += xr * vals[k + 2];
            yp[cols[k + 3]] += xr * vals[k + 3];
        }
        for (; k < end; ++k) yp[cols[k]] += xr * vals[k];
    }
}

void multiply_right_scalar(const CsrMatrix& m, std::span<const double> x,
                           std::span<double> y) {
    const auto& row_ptr = m.row_ptr();
    const auto& col_idx = m.col_idx();
    const auto& values = m.values();
    for (std::size_t r = 0; r < m.rows(); ++r) {
        double acc = 0.0;
        for (std::size_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
            acc += values[k] * x[col_idx[k]];
        }
        y[r] = acc;
    }
}

void multiply_right_blocked(const CsrMatrix& m, std::span<const double> x,
                            std::span<double> y) {
    const std::size_t* __restrict row_ptr = m.row_ptr().data();
    const std::size_t* __restrict cols = m.col_idx().data();
    const double* __restrict vals = m.values().data();
    const double* __restrict xp = x.data();
    double* __restrict yp = y.data();
    const std::size_t rows = m.rows();
    // Four-row blocks give the compiler four independent dependency chains;
    // within each row the dot product stays in ascending order.
    std::size_t r = 0;
    for (; r + 4 <= rows; r += 4) {
        yp[r] = row_dot(cols, vals, xp, row_ptr[r], row_ptr[r + 1], 0.0);
        yp[r + 1] = row_dot(cols, vals, xp, row_ptr[r + 1], row_ptr[r + 2], 0.0);
        yp[r + 2] = row_dot(cols, vals, xp, row_ptr[r + 2], row_ptr[r + 3], 0.0);
        yp[r + 3] = row_dot(cols, vals, xp, row_ptr[r + 3], row_ptr[r + 4], 0.0);
    }
    for (; r < rows; ++r) {
        yp[r] = row_dot(cols, vals, xp, row_ptr[r], row_ptr[r + 1], 0.0);
    }
}

void uniformised_left_scalar(const CsrMatrix& rates, double lambda,
                             std::span<const double> in, std::span<double> out) {
    std::fill(out.begin(), out.end(), 0.0);
    for (std::size_t i = 0; i < rates.rows(); ++i) {
        const double p = in[i];
        if (p == 0.0) continue;
        const auto cols = rates.row_columns(i);
        const auto vals = rates.row_values(i);
        double moved = 0.0;
        for (std::size_t k = 0; k < cols.size(); ++k) {
            if (cols[k] == i) continue;
            const double q = vals[k] / lambda;
            out[cols[k]] += p * q;
            moved += q;
        }
        out[i] += p * (1.0 - moved);
    }
}

/// Off-diagonal scatter over [begin,end): out[col] += p*val/lambda, with the
/// moved-mass accumulator chained sequentially (same order as the scalar
/// loop's ascending walk).
inline double scatter_range(const std::size_t* __restrict cols,
                            const double* __restrict vals, double p, double lambda,
                            double* __restrict out, std::size_t begin, std::size_t end,
                            double moved) {
    std::size_t k = begin;
    for (; k + 4 <= end; k += 4) {
        const double q0 = vals[k] / lambda;
        const double q1 = vals[k + 1] / lambda;
        const double q2 = vals[k + 2] / lambda;
        const double q3 = vals[k + 3] / lambda;
        out[cols[k]] += p * q0;
        out[cols[k + 1]] += p * q1;
        out[cols[k + 2]] += p * q2;
        out[cols[k + 3]] += p * q3;
        moved = (((moved + q0) + q1) + q2) + q3;
    }
    for (; k < end; ++k) {
        const double q = vals[k] / lambda;
        out[cols[k]] += p * q;
        moved += q;
    }
    return moved;
}

void uniformised_left_blocked(const CsrMatrix& rates, double lambda,
                              std::span<const double> in, std::span<double> out) {
    std::fill(out.begin(), out.end(), 0.0);
    const std::size_t* __restrict row_ptr = rates.row_ptr().data();
    const std::size_t* __restrict cols = rates.col_idx().data();
    const double* __restrict vals = rates.values().data();
    double* __restrict op = out.data();
    for (std::size_t i = 0; i < rates.rows(); ++i) {
        const double p = in[i];
        if (p == 0.0) continue;
        const std::size_t begin = row_ptr[i];
        const std::size_t end = row_ptr[i + 1];
        const std::size_t diag = find_diag(cols, begin, end, i);
        double moved = scatter_range(cols, vals, p, lambda, op, begin, diag, 0.0);
        if (diag != end) {
            moved = scatter_range(cols, vals, p, lambda, op, diag + 1, end, moved);
        }
        op[i] += p * (1.0 - moved);
    }
}

void uniformised_right_scalar(const CsrMatrix& rates, double lambda,
                              std::span<const double> cur, std::span<double> next) {
    for (std::size_t i = 0; i < rates.rows(); ++i) {
        const auto cols = rates.row_columns(i);
        const auto vals = rates.row_values(i);
        double moved = 0.0;
        double sum = 0.0;
        for (std::size_t k = 0; k < cols.size(); ++k) {
            if (cols[k] == i) continue;
            const double p = vals[k] / lambda;
            sum += p * cur[cols[k]];
            moved += p;
        }
        next[i] = sum + (1.0 - moved) * cur[i];
    }
}

/// Off-diagonal gather over [begin,end): sum += (val/lambda)*cur[col] and
/// moved += val/lambda, both chained sequentially in ascending order.
inline void gather_range(const std::size_t* __restrict cols, const double* __restrict vals,
                         double lambda, const double* __restrict cur, std::size_t begin,
                         std::size_t end, double& sum, double& moved) {
    double s = sum;
    double m = moved;
    std::size_t k = begin;
    for (; k + 4 <= end; k += 4) {
        const double p0 = vals[k] / lambda;
        const double p1 = vals[k + 1] / lambda;
        const double p2 = vals[k + 2] / lambda;
        const double p3 = vals[k + 3] / lambda;
        s = (((s + p0 * cur[cols[k]]) + p1 * cur[cols[k + 1]]) + p2 * cur[cols[k + 2]]) +
            p3 * cur[cols[k + 3]];
        m = (((m + p0) + p1) + p2) + p3;
    }
    for (; k < end; ++k) {
        const double p = vals[k] / lambda;
        s += p * cur[cols[k]];
        m += p;
    }
    sum = s;
    moved = m;
}

void uniformised_right_blocked(const CsrMatrix& rates, double lambda,
                               std::span<const double> cur, std::span<double> next) {
    const std::size_t* __restrict row_ptr = rates.row_ptr().data();
    const std::size_t* __restrict cols = rates.col_idx().data();
    const double* __restrict vals = rates.values().data();
    const double* __restrict cp = cur.data();
    double* __restrict np = next.data();
    for (std::size_t i = 0; i < rates.rows(); ++i) {
        const std::size_t begin = row_ptr[i];
        const std::size_t end = row_ptr[i + 1];
        const std::size_t diag = find_diag(cols, begin, end, i);
        double sum = 0.0;
        double moved = 0.0;
        gather_range(cols, vals, lambda, cp, begin, diag, sum, moved);
        if (diag != end) gather_range(cols, vals, lambda, cp, diag + 1, end, sum, moved);
        np[i] = sum + (1.0 - moved) * cp[i];  // diagonal term last, like the seed
    }
}

}  // namespace

KernelMode kernel_mode() { return mode_slot().load(std::memory_order_relaxed); }

void set_kernel_mode(KernelMode mode) {
    mode_slot().store(mode, std::memory_order_relaxed);
}

void multiply_left(const CsrMatrix& m, std::span<const double> x, std::span<double> y) {
    ARCADE_ASSERT(x.size() == m.rows() && y.size() == m.cols(),
                  "multiply_left shape mismatch");
    if (kernel_mode() == KernelMode::Blocked) {
        multiply_left_blocked(m, x, y);
    } else {
        multiply_left_scalar(m, x, y);
    }
}

void multiply_right(const CsrMatrix& m, std::span<const double> x, std::span<double> y) {
    ARCADE_ASSERT(x.size() == m.cols() && y.size() == m.rows(),
                  "multiply_right shape mismatch");
    if (kernel_mode() == KernelMode::Blocked) {
        multiply_right_blocked(m, x, y);
    } else {
        multiply_right_scalar(m, x, y);
    }
}

void uniformised_multiply_left(const CsrMatrix& rates, double lambda,
                               std::span<const double> in, std::span<double> out) {
    ARCADE_ASSERT(in.size() == rates.rows() && out.size() == rates.rows(),
                  "uniformised_multiply_left shape mismatch");
    if (kernel_mode() == KernelMode::Blocked) {
        uniformised_left_blocked(rates, lambda, in, out);
    } else {
        uniformised_left_scalar(rates, lambda, in, out);
    }
}

void uniformised_multiply_right(const CsrMatrix& rates, double lambda,
                                std::span<const double> cur, std::span<double> next) {
    ARCADE_ASSERT(cur.size() == rates.rows() && next.size() == rates.rows(),
                  "uniformised_multiply_right shape mismatch");
    if (kernel_mode() == KernelMode::Blocked) {
        uniformised_right_blocked(rates, lambda, cur, next);
    } else {
        uniformised_right_scalar(rates, lambda, cur, next);
    }
}

double gather_skip_diag(std::span<const std::size_t> cols, std::span<const double> vals,
                        std::span<const double> x, std::size_t skip, double acc) {
    if (kernel_mode() == KernelMode::Scalar) {
        for (std::size_t k = 0; k < cols.size(); ++k) {
            if (cols[k] != skip) acc += vals[k] * x[cols[k]];
        }
        return acc;
    }
    const std::size_t diag = find_diag(cols.data(), 0, cols.size(), skip);
    acc = row_dot(cols.data(), vals.data(), x.data(), 0, diag, acc);
    if (diag != cols.size()) {
        acc = row_dot(cols.data(), vals.data(), x.data(), diag + 1, cols.size(), acc);
    }
    return acc;
}

double gather_capture_diag(std::span<const std::size_t> cols, std::span<const double> vals,
                           std::span<const double> x, std::size_t row, double acc,
                           double& diag) {
    diag = 0.0;
    if (kernel_mode() == KernelMode::Scalar) {
        for (std::size_t k = 0; k < cols.size(); ++k) {
            if (cols[k] == row) {
                diag = vals[k];
            } else {
                acc += vals[k] * x[cols[k]];
            }
        }
        return acc;
    }
    const std::size_t d = find_diag(cols.data(), 0, cols.size(), row);
    acc = row_dot(cols.data(), vals.data(), x.data(), 0, d, acc);
    if (d != cols.size()) {
        diag = vals[d];
        acc = row_dot(cols.data(), vals.data(), x.data(), d + 1, cols.size(), acc);
    }
    return acc;
}

}  // namespace arcade::linalg
