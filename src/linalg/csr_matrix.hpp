// Compressed-sparse-row matrix — the representation for CTMC rate matrices
// and uniformised probability matrices throughout the library.
#ifndef ARCADE_LINALG_CSR_MATRIX_HPP
#define ARCADE_LINALG_CSR_MATRIX_HPP

#include <cstddef>
#include <span>
#include <vector>

namespace arcade::linalg {

/// One stored entry of a sparse matrix row.
struct Entry {
    std::size_t column;
    double value;
};

class CsrMatrix;

/// Incremental builder: entries may arrive in any order; duplicate
/// coordinates are summed.  `build()` produces a column-sorted CsrMatrix.
class CsrBuilder {
public:
    explicit CsrBuilder(std::size_t rows, std::size_t cols);

    void add(std::size_t row, std::size_t col, double value);

    [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
    [[nodiscard]] std::size_t cols() const noexcept { return cols_; }

    [[nodiscard]] CsrMatrix build() const;

private:
    std::size_t rows_;
    std::size_t cols_;
    struct Coo {
        std::size_t row;
        std::size_t col;
        double value;
    };
    std::vector<Coo> entries_;
};

/// Immutable CSR matrix.  Row entries are sorted by column with no duplicates.
class CsrMatrix {
public:
    CsrMatrix() = default;
    CsrMatrix(std::size_t rows, std::size_t cols, std::vector<std::size_t> row_ptr,
              std::vector<std::size_t> col_idx, std::vector<double> values);

    [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
    [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
    [[nodiscard]] std::size_t nonzeros() const noexcept { return values_.size(); }

    [[nodiscard]] std::span<const std::size_t> row_columns(std::size_t row) const;
    [[nodiscard]] std::span<const double> row_values(std::size_t row) const;

    /// Value at (row, col); 0.0 when not stored.
    [[nodiscard]] double at(std::size_t row, std::size_t col) const;

    /// Sum of stored values in `row`.
    [[nodiscard]] double row_sum(std::size_t row) const;

    /// y = x^T * M   (row-vector times matrix; the propagation direction for
    /// distributions).  `x.size()==rows()`, `y.size()==cols()`.
    void multiply_left(std::span<const double> x, std::span<double> y) const;

    /// y = M * x  (matrix times column vector; used for backward solutions).
    void multiply_right(std::span<const double> x, std::span<double> y) const;

    /// Transposed copy (used to precompute incoming-edge structure).
    [[nodiscard]] CsrMatrix transposed() const;

    [[nodiscard]] const std::vector<std::size_t>& row_ptr() const noexcept { return row_ptr_; }
    [[nodiscard]] const std::vector<std::size_t>& col_idx() const noexcept { return col_idx_; }
    [[nodiscard]] const std::vector<double>& values() const noexcept { return values_; }

private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<std::size_t> row_ptr_;  // size rows_+1
    std::vector<std::size_t> col_idx_;
    std::vector<double> values_;
};

}  // namespace arcade::linalg

#endif  // ARCADE_LINALG_CSR_MATRIX_HPP
