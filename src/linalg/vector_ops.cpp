#include "linalg/vector_ops.hpp"

#include <algorithm>
#include <cmath>

#include "support/errors.hpp"

namespace arcade::linalg {

double l1_distance(std::span<const double> a, std::span<const double> b) {
    ARCADE_ASSERT(a.size() == b.size(), "l1_distance size mismatch");
    double s = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) s += std::abs(a[i] - b[i]);
    return s;
}

double linf_distance(std::span<const double> a, std::span<const double> b) {
    ARCADE_ASSERT(a.size() == b.size(), "linf_distance size mismatch");
    double m = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) m = std::max(m, std::abs(a[i] - b[i]));
    return m;
}

double relative_distance(std::span<const double> a, std::span<const double> b) {
    ARCADE_ASSERT(a.size() == b.size(), "relative_distance size mismatch");
    double m = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const double scale = std::max(std::abs(a[i]), 1e-300);
        m = std::max(m, std::abs(a[i] - b[i]) / scale);
    }
    return m;
}

double sum(std::span<const double> v) {
    double s = 0.0;
    for (double x : v) s += x;
    return s;
}

double dot(std::span<const double> a, std::span<const double> b) {
    ARCADE_ASSERT(a.size() == b.size(), "dot size mismatch");
    double s = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
    return s;
}

void normalize(std::span<double> v) {
    const double s = sum(v);
    if (!(s > 0.0)) throw ModelError("cannot normalize vector with non-positive sum");
    for (double& x : v) x /= s;
}

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
    ARCADE_ASSERT(x.size() == y.size(), "axpy size mismatch");
    for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

}  // namespace arcade::linalg
