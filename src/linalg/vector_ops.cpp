#include "linalg/vector_ops.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/kernels.hpp"
#include "support/errors.hpp"

#if defined(__x86_64__) || defined(_M_X64)
#define ARCADE_SIMD_X86 1
#include <immintrin.h>
#elif defined(__aarch64__)
#define ARCADE_SIMD_NEON 1
#include <arm_neon.h>
#endif

#if defined(ARCADE_SIMD_X86) || defined(ARCADE_SIMD_NEON)
#define ARCADE_SIMD_ARCH 1
#endif

namespace arcade::linalg {

namespace {

/// True when the dispatchers should take the vector bodies.
bool use_simd() { return kernel_mode() == KernelMode::Simd && simd_available(); }

// Vectorised bodies: element-wise subtract/abs/multiply in lanes, every
// accumulation extracted lane by lane and chained in the reference loop's
// sequential order (no FMA contraction) — bitwise identical to the scalar
// bodies below, including NaN/inf propagation (fabs and andnot-with-sign-bit
// agree on every payload).

#if defined(ARCADE_SIMD_X86)

__attribute__((target("avx2"))) double l1_distance_simd(const double* __restrict a,
                                                        const double* __restrict b,
                                                        std::size_t n) {
    double s = 0.0;
    std::size_t i = 0;
    const __m256d sign = _mm256_set1_pd(-0.0);
    alignas(32) double t[4];
    for (; i + 4 <= n; i += 4) {
        const __m256d d = _mm256_sub_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i));
        _mm256_store_pd(t, _mm256_andnot_pd(sign, d));
        s = (((s + t[0]) + t[1]) + t[2]) + t[3];
    }
    for (; i < n; ++i) s += std::abs(a[i] - b[i]);
    return s;
}

__attribute__((target("avx2"))) double dot_simd(const double* __restrict a,
                                                const double* __restrict b,
                                                std::size_t n) {
    double s = 0.0;
    std::size_t i = 0;
    alignas(32) double t[4];
    for (; i + 4 <= n; i += 4) {
        _mm256_store_pd(t, _mm256_mul_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i)));
        s = (((s + t[0]) + t[1]) + t[2]) + t[3];
    }
    for (; i < n; ++i) s += a[i] * b[i];
    return s;
}

__attribute__((target("avx2"))) void axpy_simd(double alpha, const double* __restrict x,
                                               double* __restrict y, std::size_t n) {
    std::size_t i = 0;
    const __m256d av = _mm256_set1_pd(alpha);
    for (; i + 4 <= n; i += 4) {
        const __m256d p = _mm256_mul_pd(av, _mm256_loadu_pd(x + i));
        _mm256_storeu_pd(y + i, _mm256_add_pd(_mm256_loadu_pd(y + i), p));
    }
    for (; i < n; ++i) y[i] += alpha * x[i];
}

#elif defined(ARCADE_SIMD_NEON)

double l1_distance_simd(const double* __restrict a, const double* __restrict b,
                        std::size_t n) {
    double s = 0.0;
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2) {
        const float64x2_t d = vabsq_f64(vsubq_f64(vld1q_f64(a + i), vld1q_f64(b + i)));
        s = (s + vgetq_lane_f64(d, 0)) + vgetq_lane_f64(d, 1);
    }
    for (; i < n; ++i) s += std::abs(a[i] - b[i]);
    return s;
}

double dot_simd(const double* __restrict a, const double* __restrict b, std::size_t n) {
    double s = 0.0;
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2) {
        const float64x2_t p = vmulq_f64(vld1q_f64(a + i), vld1q_f64(b + i));
        s = (s + vgetq_lane_f64(p, 0)) + vgetq_lane_f64(p, 1);
    }
    for (; i < n; ++i) s += a[i] * b[i];
    return s;
}

void axpy_simd(double alpha, const double* __restrict x, double* __restrict y,
               std::size_t n) {
    std::size_t i = 0;
    const float64x2_t av = vdupq_n_f64(alpha);
    for (; i + 2 <= n; i += 2) {
        const float64x2_t p = vmulq_f64(av, vld1q_f64(x + i));
        vst1q_f64(y + i, vaddq_f64(vld1q_f64(y + i), p));
    }
    for (; i < n; ++i) y[i] += alpha * x[i];
}

#endif  // SIMD bodies

}  // namespace

double l1_distance(std::span<const double> a, std::span<const double> b) {
    ARCADE_ASSERT(a.size() == b.size(), "l1_distance size mismatch");
#if defined(ARCADE_SIMD_ARCH)
    if (use_simd()) return l1_distance_simd(a.data(), b.data(), a.size());
#endif
    double s = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) s += std::abs(a[i] - b[i]);
    return s;
}

double linf_distance(std::span<const double> a, std::span<const double> b) {
    ARCADE_ASSERT(a.size() == b.size(), "linf_distance size mismatch");
    double m = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) m = std::max(m, std::abs(a[i] - b[i]));
    return m;
}

double relative_distance(std::span<const double> a, std::span<const double> b) {
    ARCADE_ASSERT(a.size() == b.size(), "relative_distance size mismatch");
    double m = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const double scale = std::max(std::abs(a[i]), 1e-300);
        m = std::max(m, std::abs(a[i] - b[i]) / scale);
    }
    return m;
}

double sum(std::span<const double> v) {
    double s = 0.0;
    for (double x : v) s += x;
    return s;
}

double neumaier_sum(std::span<const double> v) {
    double total = 0.0;
    double comp = 0.0;
    for (const double x : v) {
        const double t = total + x;
        comp += std::abs(total) >= std::abs(x) ? (total - t) + x : (x - t) + total;
        total = t;
    }
    return total + comp;
}

double dot(std::span<const double> a, std::span<const double> b) {
    ARCADE_ASSERT(a.size() == b.size(), "dot size mismatch");
#if defined(ARCADE_SIMD_ARCH)
    if (use_simd()) return dot_simd(a.data(), b.data(), a.size());
#endif
    double s = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
    return s;
}

void normalize(std::span<double> v) {
    const double s = sum(v);
    if (!(s > 0.0)) throw ModelError("cannot normalize vector with non-positive sum");
    for (double& x : v) x /= s;
}

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
    ARCADE_ASSERT(x.size() == y.size(), "axpy size mismatch");
#if defined(ARCADE_SIMD_ARCH)
    if (use_simd()) {
        axpy_simd(alpha, x.data(), y.data(), x.size());
        return;
    }
#endif
    for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

}  // namespace arcade::linalg
