// Packed explicit-state storage — the substrate shared by the reactive-module
// explorer and the Arcade compiler.
//
// Variable ranges are known before exploration starts, so every state packs
// into a few contiguous uint64 words: each field gets bit_width(high - low)
// bits (single-value ranges cost zero bits) and fields never straddle word
// boundaries.  States live back-to-back in one arena vector and are interned
// through an open-addressing (linear-probing) hash table, replacing the
// seed's std::unordered_map over heap-allocated std::vector valuations —
// one allocation-free probe per successor instead of a vector hash, a
// vector compare and a node allocation.
#ifndef ARCADE_ENGINE_STATE_STORE_HPP
#define ARCADE_ENGINE_STATE_STORE_HPP

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace arcade::engine {

/// Closed integer range of one state variable.
struct FieldSpec {
    std::int64_t low = 0;
    std::int64_t high = 0;
};

/// Bit-level layout of a state: field i occupies `bits_i = bit_width(high -
/// low)` bits of some word.  Packing subtracts `low` first, so negative
/// lower bounds cost no sign bit.
class StateLayout {
public:
    StateLayout() = default;
    explicit StateLayout(const std::vector<FieldSpec>& fields);

    [[nodiscard]] std::size_t field_count() const noexcept { return slots_.size(); }
    /// Words per packed state; at least 1 so every state has a non-empty key.
    [[nodiscard]] std::size_t words_per_state() const noexcept { return words_; }
    [[nodiscard]] const FieldSpec& field(std::size_t i) const { return specs_[i]; }

    /// Packs `values` (one per field, each within its range — throws
    /// ModelError otherwise) into `out[0 .. words_per_state())`.  Inline and
    /// generic over the integral source type: this is the per-successor hot
    /// path of exploration.
    template <typename Int>
    void pack(std::span<const Int> values, std::uint64_t* out) const {
        for (std::size_t w = 0; w < words_; ++w) out[w] = 0;
        for (std::size_t i = 0; i < slots_.size(); ++i) {
            const Slot& s = slots_[i];
            // single unsigned compare catches both v < low and v > high
            const std::uint64_t raw = static_cast<std::uint64_t>(
                static_cast<std::int64_t>(values[i])) - static_cast<std::uint64_t>(s.low);
            if (raw > s.range) throw_out_of_range(i, static_cast<std::int64_t>(values[i]));
            out[s.word] |= raw << s.shift;
        }
    }

    /// Inverse of pack.
    template <typename Int>
    void unpack(const std::uint64_t* words, std::span<Int> out) const {
        for (std::size_t i = 0; i < slots_.size(); ++i) {
            const Slot& s = slots_[i];
            const std::uint64_t raw = (words[s.word] >> s.shift) & s.mask;
            out[i] = static_cast<Int>(
                static_cast<std::int64_t>(raw + static_cast<std::uint64_t>(s.low)));
        }
    }

    /// Value of a single field without unpacking the rest.
    [[nodiscard]] std::int64_t extract(const std::uint64_t* words, std::size_t field) const {
        const Slot& s = slots_[field];
        const std::uint64_t raw = (words[s.word] >> s.shift) & s.mask;
        return static_cast<std::int64_t>(raw + static_cast<std::uint64_t>(s.low));
    }

private:
    struct Slot {
        std::int64_t low;
        std::uint64_t range;  // high - low (max raw value)
        std::uint64_t mask;   // (1 << bits) - 1; 0 for zero-width fields
        std::uint32_t word;
        std::uint32_t shift;
    };
    std::vector<Slot> slots_;
    std::vector<FieldSpec> specs_;
    std::size_t words_ = 1;

    [[noreturn]] void throw_out_of_range(std::size_t field, std::int64_t value) const;
};

/// Arena-backed interning table: packed states are appended to one
/// contiguous word vector and indexed by an open-addressing hash table.
/// Indices are dense and assigned in interning order (BFS order when driven
/// by the engine explorer).
class StateStore {
public:
    StateStore() = default;
    explicit StateStore(StateLayout layout);

    [[nodiscard]] const StateLayout& layout() const noexcept { return layout_; }
    [[nodiscard]] std::size_t size() const noexcept { return hashes_.size(); }

    /// Interns a packed state; returns its index and whether it was new.
    std::pair<std::size_t, bool> intern(const std::uint64_t* words);
    /// Index of a packed state, or SIZE_MAX when absent.
    [[nodiscard]] std::size_t find(const std::uint64_t* words) const;

    /// The packed words of state `index` (valid until the next intern).
    [[nodiscard]] const std::uint64_t* words(std::size_t index) const;
    /// Decodes state `index` into `out` (one value per field).
    template <typename Int>
    void unpack(std::size_t index, std::span<Int> out) const {
        layout_.unpack(words(index), out);
    }
    /// Single-field decode of state `index`.
    [[nodiscard]] std::int64_t value(std::size_t index, std::size_t field) const;

    void reserve(std::size_t states);
    /// Arena + table footprint in bytes (for the perf counters).
    [[nodiscard]] std::size_t memory_bytes() const noexcept;

private:
    StateLayout layout_;
    std::size_t wps_ = 1;  // words per state
    std::vector<std::uint64_t> arena_;  // size() * wps_ words
    std::vector<std::size_t> hashes_;   // cached hash per state
    std::vector<std::size_t> slots_;    // open addressing; index + 1, 0 = empty
    std::size_t slot_mask_ = 0;

    [[nodiscard]] static std::size_t hash_words(const std::uint64_t* words, std::size_t n);
    [[nodiscard]] bool equals(std::size_t index, const std::uint64_t* words) const;
    void grow();
};

}  // namespace arcade::engine

#endif  // ARCADE_ENGINE_STATE_STORE_HPP
