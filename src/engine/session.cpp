#include "engine/session.hpp"

#include "ctmc/steady_state.hpp"
#include "expr/codegen.hpp"
#include "graph/lumping.hpp"
#include "linalg/vector_ops.hpp"
#include "logic/csl_compiled.hpp"
#include "support/errors.hpp"

namespace arcade::engine {

namespace {

/// FNV-1a accumulator over heterogeneous fields (word mixing shared with
/// the reduction layer's signature keys — graph/lumping.hpp).
class Fingerprinter {
public:
    explicit Fingerprinter(std::uint64_t seed) {
        mix(static_cast<std::uint64_t>(seed ^ 0x2545f4914f6cdd1dull));
    }
    void mix(std::uint64_t v) { h_ = graph::fnv1a_mix(h_, v); }
    void mix(bool v) { mix(static_cast<std::uint64_t>(v)); }
    void mix(int v) { mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(v))); }
    void mix(double v) { mix(graph::double_bits(v)); }
    void mix(const std::string& s) {
        for (const char c : s) {
            h_ = graph::fnv1a_mix(h_, static_cast<unsigned char>(c));
        }
        mix(static_cast<std::uint64_t>(s.size()));
    }
    template <typename T>
    void mix_all(const std::vector<T>& xs) {
        mix(xs.size());
        for (const auto& x : xs) mix(static_cast<std::uint64_t>(x));
    }

    [[nodiscard]] std::uint64_t value() const noexcept { return h_; }

private:
    std::uint64_t h_ = graph::kFnv1aBasis;
};

std::uint64_t options_key(std::uint64_t model_fp, std::uint64_t encoding,
                          std::size_t max_states, std::uint64_t reduction,
                          std::uint64_t lint = 0, std::uint64_t symmetry = 0,
                          std::uint64_t eval = 0) {
    Fingerprinter fp(0);
    fp.mix(model_fp);
    fp.mix(encoding);
    fp.mix(max_states);
    fp.mix(reduction);
    fp.mix(lint);
    fp.mix(symmetry);
    // Every eval mode produces the bitwise-identical chain, but the key
    // still distinguishes them so mode-comparison consumers (the perf
    // benchmarks) measure a real explore rather than a cache hit.
    fp.mix(eval);
    return fp.value();
}

}  // namespace

std::uint64_t fingerprint(const core::ArcadeModel& model, std::uint64_t seed) {
    Fingerprinter fp(seed);
    fp.mix(model.name);
    fp.mix(model.components.size());
    for (const auto& c : model.components) {
        fp.mix(c.name);
        fp.mix(c.mttf);
        fp.mix(c.mttr);
        fp.mix(c.failed_cost_rate);
    }
    fp.mix(model.repair_units.size());
    for (const auto& ru : model.repair_units) {
        fp.mix(ru.name);
        fp.mix(static_cast<std::uint64_t>(ru.policy));
        fp.mix(ru.crews);
        fp.mix(ru.preemptive);
        fp.mix(ru.idle_cost_rate);
        fp.mix_all(ru.components);
        fp.mix_all(ru.priorities);
    }
    fp.mix(model.spare_units.size());
    for (const auto& su : model.spare_units) {
        fp.mix(su.name);
        fp.mix_all(su.components);
        fp.mix(su.required);
    }
    fp.mix(model.phases.size());
    for (const auto& ph : model.phases) {
        fp.mix(ph.name);
        fp.mix_all(ph.components);
        fp.mix(ph.required);
        fp.mix(ph.spare_managed);
    }
    return fp.value();
}

std::uint64_t fingerprint(const modules::ModuleSystem& system, std::uint64_t seed) {
    Fingerprinter fp(seed);
    fp.mix(system.name);
    fp.mix(system.constants.size());
    for (const auto& [name, value] : system.constants) {  // std::map: sorted
        fp.mix(name);
        fp.mix(value.to_string());
    }
    fp.mix(system.modules.size());
    for (const auto& module : system.modules) {
        fp.mix(module.name);
        fp.mix(module.variables.size());
        for (const auto& v : module.variables) {
            fp.mix(v.name);
            fp.mix(static_cast<std::uint64_t>(v.type));
            fp.mix(static_cast<std::uint64_t>(v.low));
            fp.mix(static_cast<std::uint64_t>(v.high));
            fp.mix(static_cast<std::uint64_t>(v.init));
        }
        fp.mix(module.commands.size());
        for (const auto& cmd : module.commands) {
            fp.mix(cmd.action);
            fp.mix(cmd.guard.to_string());
            fp.mix(cmd.alternatives.size());
            for (const auto& alt : cmd.alternatives) {
                fp.mix(alt.rate.to_string());
                fp.mix(alt.assignments.size());
                for (const auto& asg : alt.assignments) {
                    fp.mix(asg.variable);
                    fp.mix(asg.value.to_string());
                }
            }
        }
    }
    fp.mix(system.labels.size());
    for (const auto& [name, predicate] : system.labels) {  // std::map: sorted
        fp.mix(name);
        fp.mix(predicate.to_string());
    }
    fp.mix(system.rewards.size());
    for (const auto& decl : system.rewards) {
        fp.mix(decl.name);
        fp.mix(decl.items.size());
        for (const auto& item : decl.items) {
            fp.mix(item.guard.to_string());
            fp.mix(item.rate.to_string());
        }
    }
    return fp.value();
}

AnalysisSession::CompiledPtr AnalysisSession::compile(const core::ArcadeModel& model,
                                                      const core::CompileOptions& options) {
    const std::uint64_t key = options_key(
        fingerprint(model), static_cast<std::uint64_t>(options.encoding), options.max_states,
        static_cast<std::uint64_t>(options.reduction),
        static_cast<std::uint64_t>(options.lint),
        static_cast<std::uint64_t>(options.symmetry),
        static_cast<std::uint64_t>(options.eval));
    const std::uint64_t check = options_key(fingerprint(model, /*seed=*/1),
                                            static_cast<std::uint64_t>(options.encoding),
                                            options.max_states,
                                            static_cast<std::uint64_t>(options.reduction),
                                            static_cast<std::uint64_t>(options.lint),
                                            static_cast<std::uint64_t>(options.symmetry),
                                            static_cast<std::uint64_t>(options.eval));
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const auto it = compiled_.find(key);
        if (it != compiled_.end() && it->second.check == check) {
            ++stats_.compile_hits;
            return it->second.value;
        }
    }
    // Compile outside the lock: exploration may take seconds and other
    // threads should not serialise behind it.
    auto fresh = std::make_shared<const core::CompiledModel>(core::compile(model, options));
    std::lock_guard<std::mutex> lock(mutex_);
    auto& entry = compiled_[key];
    if (entry.value != nullptr && entry.check == check) {
        ++stats_.compile_hits;  // lost a benign race; reuse the winner
        return entry.value;
    }
    entry = {check, std::move(fresh)};
    ++stats_.compile_misses;
    stats_.lint_warnings += static_cast<std::size_t>(entry.value->lint_warnings());
    stats_.lint_errors += static_cast<std::size_t>(entry.value->lint_errors());
    if (entry.value->symmetry_reduced()) {
        stats_.symmetry_states_in +=
            static_cast<std::size_t>(entry.value->symmetry_full_states() + 0.5);
        stats_.symmetry_states_out += entry.value->state_count();
        stats_.symmetry_seconds += entry.value->symmetry_seconds();
    }
    return entry.value;
}

AnalysisSession::ExploredPtr AnalysisSession::explore(const modules::ModuleSystem& system,
                                                      const modules::ExploreOptions& options) {
    const std::uint64_t key =
        options_key(fingerprint(system), 0, options.max_states, /*reduction=*/0,
                    /*lint=*/0, static_cast<std::uint64_t>(options.symmetry),
                    static_cast<std::uint64_t>(options.eval));
    const std::uint64_t check =
        options_key(fingerprint(system, /*seed=*/1), 0, options.max_states,
                    /*reduction=*/0, /*lint=*/0,
                    static_cast<std::uint64_t>(options.symmetry),
                    static_cast<std::uint64_t>(options.eval));
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const auto it = explored_.find(key);
        if (it != explored_.end() && it->second.check == check) {
            ++stats_.explore_hits;
            return it->second.value;
        }
    }
    auto fresh =
        std::make_shared<const modules::ExploredModel>(modules::explore(system, options));
    std::lock_guard<std::mutex> lock(mutex_);
    auto& entry = explored_[key];
    if (entry.value != nullptr && entry.check == check) {
        ++stats_.explore_hits;
        return entry.value;
    }
    entry = {check, std::move(fresh)};
    ++stats_.explore_misses;
    if (entry.value->symmetry_reduced) {
        stats_.symmetry_states_in +=
            static_cast<std::size_t>(entry.value->symmetry_full_states + 0.5);
        stats_.symmetry_states_out += entry.value->state_count();
        stats_.symmetry_seconds += entry.value->symmetry_seconds;
    }
    return entry.value;
}

std::shared_ptr<const ctmc::QuotientCtmc> AnalysisSession::quotient(
    const CompiledPtr& model) {
    return quotient_impl(model, /*count_hit=*/true);
}

std::shared_ptr<const ctmc::QuotientCtmc> AnalysisSession::quotient_impl(
    const CompiledPtr& model, bool count_hit) {
    ARCADE_ASSERT(model != nullptr, "quotient of a null model");
    const auto [q, fresh] = model->quotient();
    std::lock_guard<std::mutex> lock(mutex_);
    if (fresh) {
        ++stats_.lump_misses;
        stats_.lump_states_in += q->original_state_count();
        stats_.lump_states_out += q->block_count();
    } else if (count_hit) {
        ++stats_.lump_hits;
    }
    return q;
}

std::shared_ptr<const logic::CheckResult> AnalysisSession::check_property(
    const CompiledPtr& model, const logic::StateFormula& formula, double epsilon) {
    ARCADE_ASSERT(model != nullptr, "check_property of a null model");
    // Key = (model fingerprint + compile shape, formula fingerprint,
    // epsilon); like the compile cache, a second-stream fingerprint is
    // stored and verified so a collision cannot return the wrong result.
    const auto key_of = [&](std::uint64_t seed) {
        Fingerprinter fp(seed);
        fp.mix(fingerprint(model->model(), seed));
        fp.mix(static_cast<std::uint64_t>(model->encoding()));
        fp.mix(static_cast<std::uint64_t>(model->reduction()));
        fp.mix(logic::fingerprint(formula, seed));
        fp.mix(epsilon);
        return fp.value();
    };
    const std::uint64_t key = key_of(0);
    const std::uint64_t check = key_of(1);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const auto it = properties_.find(key);
        if (it != properties_.end() && it->second.check == check) {
            ++stats_.property_hits;
            return it->second.result;
        }
    }
    // Evaluate outside the lock: the checker re-enters the session for the
    // quotient and the cached steady-state solve.
    logic::CheckerOptions options;
    options.epsilon = epsilon;
    auto fresh = std::make_shared<const logic::CheckResult>(
        logic::check(*this, model, formula, options));
    std::lock_guard<std::mutex> lock(mutex_);
    auto& entry = properties_[key];
    if (entry.result != nullptr && entry.check == check) {
        ++stats_.property_hits;  // lost a benign race; reuse the winner
        return entry.result;
    }
    entry = {check, model, std::move(fresh)};
    ++stats_.property_misses;
    return entry.result;
}

std::shared_ptr<const logic::CheckResult> AnalysisSession::check_property(
    const CompiledPtr& model, const std::string& formula, double epsilon) {
    return check_property(model, *logic::parse_csl(formula), epsilon);
}

std::shared_ptr<const std::vector<double>> AnalysisSession::steady_state(
    const CompiledPtr& model) {
    ARCADE_ASSERT(model != nullptr, "steady_state of a null model");
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const auto it = steady_.find(model.get());
        if (it != steady_.end()) {
            ++stats_.steady_state_hits;
            return it->second.pi;
        }
    }
    auto pi = [&] {
        if (model->reduction() == core::ReductionPolicy::Auto) {
            // Internal reuse of an already-requested quotient must not count
            // as extra cache traffic (a fresh build still records the miss).
            const auto q = quotient_impl(model, /*count_hit=*/false);
            return std::make_shared<const std::vector<double>>(
                q->lift(ctmc::steady_state(q->chain())));
        }
        return std::make_shared<const std::vector<double>>(
            ctmc::steady_state(model->chain()));
    }();
    std::lock_guard<std::mutex> lock(mutex_);
    const auto [it, inserted] = steady_.emplace(model.get(), SteadyEntry{model, std::move(pi)});
    if (inserted) {
        ++stats_.steady_state_misses;
    } else {
        ++stats_.steady_state_hits;
    }
    return it->second.pi;
}

double AnalysisSession::availability(const CompiledPtr& model) {
    const auto pi = steady_state(model);
    const auto operational = model->operational_states();
    double p = 0.0;
    for (std::size_t s = 0; s < pi->size(); ++s) {
        if (operational[s]) p += (*pi)[s];
    }
    return p;
}

double AnalysisSession::steady_state_cost(const CompiledPtr& model) {
    const auto pi = steady_state(model);
    return linalg::dot(*pi, model->cost_reward().state_rates());
}

SessionStats AnalysisSession::stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    SessionStats out = stats_;
    // The codegen counters are process-wide (the disk cache and toolchain
    // are shared by every session), so snapshot rather than accumulate:
    // delta-taking consumers (operator-) still see per-batch traffic.
    const expr::CodegenCounters cg = expr::codegen_counters();
    out.codegen_builds = cg.builds;
    out.codegen_cache_hits = cg.cache_hits;
    out.codegen_fallbacks = cg.fallbacks;
    return out;
}

void AnalysisSession::record_batch(std::size_t cells, std::size_t columns,
                                   double seconds) {
    std::lock_guard<std::mutex> lock(mutex_);
    stats_.batch_cells_fused += cells;
    stats_.batch_columns += columns;
    stats_.batch_seconds += seconds;
}

void AnalysisSession::clear() {
    std::lock_guard<std::mutex> lock(mutex_);
    compiled_.clear();
    explored_.clear();
    steady_.clear();
    properties_.clear();
    workspace_.clear();
    stats_ = SessionStats{};
}

AnalysisSession& AnalysisSession::global() {
    static AnalysisSession session;
    return session;
}

}  // namespace arcade::engine
