// AnalysisSession — the memoising facade over the compile/explore/solve
// pipeline.
//
// Every measure, bench and example funnels through the same pipeline:
// Arcade model (or reactive-module system) -> explicit-state exploration ->
// CTMC solvers.  A session caches the expensive artefacts across calls,
// keyed on a structural fingerprint of the model plus the compile options:
//
//   * CompiledModel / ExploredModel instances (identical watertree
//     line+strategy+encoding requests return the same shared_ptr),
//   * steady-state distributions per compiled model (one Gauss–Seidel
//     solve serves availability AND long-run cost),
//   * a WorkspacePool of solver scratch vectors (uniformisation buffers)
//     that TransientOptions::workspace plugs into.
//
// Sessions are thread-safe; the process-wide `global()` session backs the
// convenience paths in bench_common and the examples.
#ifndef ARCADE_ENGINE_SESSION_HPP
#define ARCADE_ENGINE_SESSION_HPP

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "arcade/compiler.hpp"
#include "arcade/types.hpp"
#include "engine/workspace.hpp"
#include "modules/explorer.hpp"
#include "modules/modules.hpp"

namespace arcade::logic {
class StateFormula;
struct CheckResult;
}  // namespace arcade::logic

namespace arcade::engine {

/// Cache effectiveness counters (reported by the perf benchmarks).
struct SessionStats {
    std::size_t compile_hits = 0;
    std::size_t compile_misses = 0;
    std::size_t explore_hits = 0;
    std::size_t explore_misses = 0;
    std::size_t steady_state_hits = 0;
    std::size_t steady_state_misses = 0;
    /// Quotient (lumping) cache: hits return the model's shared quotient,
    /// misses run the partition refinement.
    std::size_t lump_hits = 0;
    std::size_t lump_misses = 0;
    /// Cumulative chain sizes over lump misses: states fed into the
    /// refinement vs blocks out — lump_states_in / lump_states_out is the
    /// session's aggregate reduction ratio.
    std::size_t lump_states_in = 0;
    std::size_t lump_states_out = 0;
    /// CSL property cache: hits return the memoised CheckResult for an
    /// identical (model fingerprint, formula fingerprint, epsilon) request,
    /// misses run the checker (on the quotient under ReductionPolicy::Auto).
    std::size_t property_hits = 0;
    std::size_t property_misses = 0;
    /// Lint-stage findings aggregated over compile misses (warnings include
    /// notes); cached compiles re-report nothing, mirroring the fact that
    /// the stage ran once per model.
    std::size_t lint_warnings = 0;
    std::size_t lint_errors = 0;
    /// On-the-fly symmetry reduction, aggregated over compile/explore misses
    /// whose model carried nontrivial orbits: full-chain states that were
    /// never materialised (recovered exactly from orbit sizes) vs orbit
    /// representatives actually explored, plus the wall seconds spent in the
    /// orbit-accounting pass.  symmetry_states_in / symmetry_states_out is
    /// the aggregate quotient ratio — next to the lump counters because the
    /// two reductions compose (symmetry during exploration, splitter-queue
    /// refinement on the residual).
    std::size_t symmetry_states_in = 0;
    std::size_t symmetry_states_out = 0;
    double symmetry_seconds = 0.0;
    /// Native-codegen backend traffic (expr/codegen.hpp), snapshotted from
    /// the process-wide counters at stats() time: generated units compiled
    /// out of process, units reloaded from the content-addressed disk
    /// cache, and graceful VM fallbacks (no toolchain / no dlopen).  All
    /// zero unless ARCADE_EVAL=codegen (or an explicit EvalMode::Codegen
    /// request) ran in this process.
    std::size_t codegen_builds = 0;
    std::size_t codegen_cache_hits = 0;
    std::size_t codegen_fallbacks = 0;
    /// Batched transient evolution (sweep fusion pass, ARCADE_BATCH=auto):
    /// sweep cells that were evolved inside a fused batch instead of with
    /// their own TransientEvolver, distinct distribution columns those
    /// batches carried, and the wall seconds spent inside batch evaluation.
    /// All zero under BatchPolicy::Off.
    std::size_t batch_cells_fused = 0;
    std::size_t batch_columns = 0;
    double batch_seconds = 0.0;

    /// Aggregate state-space reduction achieved by lumping (>= 1; 1.0 when
    /// nothing was lumped).
    [[nodiscard]] double reduction_ratio() const noexcept {
        return lump_states_out > 0 ? static_cast<double>(lump_states_in) /
                                         static_cast<double>(lump_states_out)
                                   : 1.0;
    }

    /// Aggregate reduction achieved by on-the-fly symmetry (>= 1; 1.0 when
    /// no model was symmetry-reduced).
    [[nodiscard]] double symmetry_ratio() const noexcept {
        return symmetry_states_out > 0 ? static_cast<double>(symmetry_states_in) /
                                             static_cast<double>(symmetry_states_out)
                                       : 1.0;
    }
};

/// Counter delta between two stats() snapshots — how batch consumers (the
/// sweep runner) attribute cache effectiveness to one run of work against
/// a long-lived session.
[[nodiscard]] inline SessionStats operator-(const SessionStats& after,
                                            const SessionStats& before) {
    return SessionStats{after.compile_hits - before.compile_hits,
                        after.compile_misses - before.compile_misses,
                        after.explore_hits - before.explore_hits,
                        after.explore_misses - before.explore_misses,
                        after.steady_state_hits - before.steady_state_hits,
                        after.steady_state_misses - before.steady_state_misses,
                        after.lump_hits - before.lump_hits,
                        after.lump_misses - before.lump_misses,
                        after.lump_states_in - before.lump_states_in,
                        after.lump_states_out - before.lump_states_out,
                        after.property_hits - before.property_hits,
                        after.property_misses - before.property_misses,
                        after.lint_warnings - before.lint_warnings,
                        after.lint_errors - before.lint_errors,
                        after.symmetry_states_in - before.symmetry_states_in,
                        after.symmetry_states_out - before.symmetry_states_out,
                        after.symmetry_seconds - before.symmetry_seconds,
                        after.codegen_builds - before.codegen_builds,
                        after.codegen_cache_hits - before.codegen_cache_hits,
                        after.codegen_fallbacks - before.codegen_fallbacks,
                        after.batch_cells_fused - before.batch_cells_fused,
                        after.batch_columns - before.batch_columns,
                        after.batch_seconds - before.batch_seconds};
}

/// Structural fingerprint of a model (stable across identical rebuilds of
/// the same configuration, e.g. two watertree::line2(FRF-1) calls).
/// `seed` selects an independent hash stream: cache entries store a second
/// fingerprint and verify it on every hit, so a collision in one stream
/// cannot silently return the wrong model.
[[nodiscard]] std::uint64_t fingerprint(const core::ArcadeModel& model,
                                        std::uint64_t seed = 0);
[[nodiscard]] std::uint64_t fingerprint(const modules::ModuleSystem& system,
                                        std::uint64_t seed = 0);

class AnalysisSession {
public:
    using CompiledPtr = std::shared_ptr<const core::CompiledModel>;
    using ExploredPtr = std::shared_ptr<const modules::ExploredModel>;

    /// Compiles `model`, or returns the cached instance for an identical
    /// (model fingerprint, encoding, max_states) request.
    [[nodiscard]] CompiledPtr compile(const core::ArcadeModel& model,
                                      const core::CompileOptions& options = {});

    /// Explores `system`, or returns the cached instance.
    [[nodiscard]] ExploredPtr explore(const modules::ModuleSystem& system,
                                      const modules::ExploreOptions& options = {});

    /// Steady-state distribution of `model`'s chain, solved once per model
    /// and cached for the session.  Returned by shared_ptr so the result
    /// stays valid across concurrent clear() calls.  For models compiled
    /// with ReductionPolicy::Auto the solve runs on the lumped quotient and
    /// the block masses are lifted back (uniformly within blocks — exact
    /// for every functional in the model's lump signature).
    [[nodiscard]] std::shared_ptr<const std::vector<double>> steady_state(
        const CompiledPtr& model);

    /// The model's strong-bisimulation quotient (see CompiledModel::
    /// quotient), with the session accounting the lump cache counters and
    /// reduction sizes: every call counts one request (hit or miss).  The
    /// cache itself is the model's lazily-built quotient over its canonical
    /// signature; since the compile cache deduplicates models by
    /// fingerprint, identical (model, signature) requests share one
    /// refinement.
    [[nodiscard]] std::shared_ptr<const ctmc::QuotientCtmc> quotient(
        const CompiledPtr& model);

    /// Model-checks a CSL/CSRL formula on `model`, memoised for the session
    /// keyed by (model fingerprint, formula fingerprint, epsilon) — the
    /// repeated-scenario path for properties, mirroring steady_state().
    /// Evaluation (logic::check over the session) runs on the model's lumped
    /// quotient under ReductionPolicy::Auto and reuses the cached
    /// steady-state solve for top-level S / R[S] queries; see
    /// logic/csl_compiled.hpp.
    [[nodiscard]] std::shared_ptr<const logic::CheckResult> check_property(
        const CompiledPtr& model, const logic::StateFormula& formula,
        double epsilon = 1e-12);
    [[nodiscard]] std::shared_ptr<const logic::CheckResult> check_property(
        const CompiledPtr& model, const std::string& formula, double epsilon = 1e-12);

    /// Long-run probability of full service, from the cached distribution.
    [[nodiscard]] double availability(const CompiledPtr& model);

    /// Long-run expected cost rate, from the same cached distribution.
    [[nodiscard]] double steady_state_cost(const CompiledPtr& model);

    /// Scratch-buffer pool for transient solvers (TransientOptions::workspace).
    [[nodiscard]] WorkspacePool& workspace() noexcept { return workspace_; }

    [[nodiscard]] SessionStats stats() const;

    /// Records one fused batch evaluation (sweep fusion pass): `cells` work
    /// items served, `columns` distinct distribution columns evolved,
    /// `seconds` wall time spent.
    void record_batch(std::size_t cells, std::size_t columns, double seconds);

    /// Drops every cached artefact (models, distributions, scratch).
    void clear();

    /// Process-wide session used by the convenience helpers in bench/examples.
    [[nodiscard]] static AnalysisSession& global();

private:
    /// Steady-state cache entry: holds the model shared_ptr so the raw
    /// pointer key can never be reused by a different model while cached.
    struct SteadyEntry {
        CompiledPtr model;
        std::shared_ptr<const std::vector<double>> pi;
    };

    /// Property cache entry: pins the model (its quotient backs the result)
    /// and carries the second-stream fingerprint, verified on every hit.
    struct PropertyEntry {
        std::uint64_t check = 0;
        CompiledPtr model;
        std::shared_ptr<const logic::CheckResult> result;
    };

    template <typename Ptr>
    struct CacheEntry {
        std::uint64_t check;  // second-stream fingerprint, verified on hit
        Ptr value;
    };

    /// quotient() with the hit accounting optional: internal consumers
    /// (the steady-state solve) reuse a quotient the caller already
    /// requested, which must not inflate the traffic counters.
    [[nodiscard]] std::shared_ptr<const ctmc::QuotientCtmc> quotient_impl(
        const CompiledPtr& model, bool count_hit);

    mutable std::mutex mutex_;
    std::unordered_map<std::uint64_t, CacheEntry<CompiledPtr>> compiled_;
    std::unordered_map<std::uint64_t, CacheEntry<ExploredPtr>> explored_;
    std::unordered_map<const core::CompiledModel*, SteadyEntry> steady_;
    std::unordered_map<std::uint64_t, PropertyEntry> properties_;
    WorkspacePool workspace_;
    SessionStats stats_;
};

}  // namespace arcade::engine

#endif  // ARCADE_ENGINE_SESSION_HPP
