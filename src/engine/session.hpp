// AnalysisSession — the memoising facade over the compile/explore/solve
// pipeline.
//
// Every measure, bench and example funnels through the same pipeline:
// Arcade model (or reactive-module system) -> explicit-state exploration ->
// CTMC solvers.  A session caches the expensive artefacts across calls,
// keyed on a structural fingerprint of the model plus the compile options:
//
//   * CompiledModel / ExploredModel instances (identical watertree
//     line+strategy+encoding requests return the same shared_ptr),
//   * steady-state distributions per compiled model (one Gauss–Seidel
//     solve serves availability AND long-run cost),
//   * a WorkspacePool of solver scratch vectors (uniformisation buffers)
//     that TransientOptions::workspace plugs into.
//
// Sessions are thread-safe; the process-wide `global()` session backs the
// convenience paths in bench_common and the examples.
#ifndef ARCADE_ENGINE_SESSION_HPP
#define ARCADE_ENGINE_SESSION_HPP

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "arcade/compiler.hpp"
#include "arcade/types.hpp"
#include "engine/workspace.hpp"
#include "modules/explorer.hpp"
#include "modules/modules.hpp"

namespace arcade::engine {

/// Cache effectiveness counters (reported by the perf benchmarks).
struct SessionStats {
    std::size_t compile_hits = 0;
    std::size_t compile_misses = 0;
    std::size_t explore_hits = 0;
    std::size_t explore_misses = 0;
    std::size_t steady_state_hits = 0;
    std::size_t steady_state_misses = 0;
};

/// Counter delta between two stats() snapshots — how batch consumers (the
/// sweep runner) attribute cache effectiveness to one run of work against
/// a long-lived session.
[[nodiscard]] inline SessionStats operator-(const SessionStats& after,
                                            const SessionStats& before) {
    return SessionStats{after.compile_hits - before.compile_hits,
                        after.compile_misses - before.compile_misses,
                        after.explore_hits - before.explore_hits,
                        after.explore_misses - before.explore_misses,
                        after.steady_state_hits - before.steady_state_hits,
                        after.steady_state_misses - before.steady_state_misses};
}

/// Structural fingerprint of a model (stable across identical rebuilds of
/// the same configuration, e.g. two watertree::line2(FRF-1) calls).
/// `seed` selects an independent hash stream: cache entries store a second
/// fingerprint and verify it on every hit, so a collision in one stream
/// cannot silently return the wrong model.
[[nodiscard]] std::uint64_t fingerprint(const core::ArcadeModel& model,
                                        std::uint64_t seed = 0);
[[nodiscard]] std::uint64_t fingerprint(const modules::ModuleSystem& system,
                                        std::uint64_t seed = 0);

class AnalysisSession {
public:
    using CompiledPtr = std::shared_ptr<const core::CompiledModel>;
    using ExploredPtr = std::shared_ptr<const modules::ExploredModel>;

    /// Compiles `model`, or returns the cached instance for an identical
    /// (model fingerprint, encoding, max_states) request.
    [[nodiscard]] CompiledPtr compile(const core::ArcadeModel& model,
                                      const core::CompileOptions& options = {});

    /// Explores `system`, or returns the cached instance.
    [[nodiscard]] ExploredPtr explore(const modules::ModuleSystem& system,
                                      const modules::ExploreOptions& options = {});

    /// Steady-state distribution of `model`'s chain, solved once per model
    /// and cached for the session.  Returned by shared_ptr so the result
    /// stays valid across concurrent clear() calls.
    [[nodiscard]] std::shared_ptr<const std::vector<double>> steady_state(
        const CompiledPtr& model);

    /// Long-run probability of full service, from the cached distribution.
    [[nodiscard]] double availability(const CompiledPtr& model);

    /// Long-run expected cost rate, from the same cached distribution.
    [[nodiscard]] double steady_state_cost(const CompiledPtr& model);

    /// Scratch-buffer pool for transient solvers (TransientOptions::workspace).
    [[nodiscard]] WorkspacePool& workspace() noexcept { return workspace_; }

    [[nodiscard]] SessionStats stats() const;

    /// Drops every cached artefact (models, distributions, scratch).
    void clear();

    /// Process-wide session used by the convenience helpers in bench/examples.
    [[nodiscard]] static AnalysisSession& global();

private:
    /// Steady-state cache entry: holds the model shared_ptr so the raw
    /// pointer key can never be reused by a different model while cached.
    struct SteadyEntry {
        CompiledPtr model;
        std::shared_ptr<const std::vector<double>> pi;
    };

    template <typename Ptr>
    struct CacheEntry {
        std::uint64_t check;  // second-stream fingerprint, verified on hit
        Ptr value;
    };

    mutable std::mutex mutex_;
    std::unordered_map<std::uint64_t, CacheEntry<CompiledPtr>> compiled_;
    std::unordered_map<std::uint64_t, CacheEntry<ExploredPtr>> explored_;
    std::unordered_map<const core::CompiledModel*, SteadyEntry> steady_;
    WorkspacePool workspace_;
    SessionStats stats_;
};

}  // namespace arcade::engine

#endif  // ARCADE_ENGINE_SESSION_HPP
