// On-the-fly symmetry reduction over the packed state layout.
//
// A StateSymmetry describes orbits of interchangeable *instances*: each
// instance is the same ordered tuple of field indices into a StateLayout
// (e.g. one pump's (status, rank) pair), and any permutation of the
// instances inside one orbit is an automorphism of the chain — swapping two
// identical pumps relabels states without changing rates, labels or
// rewards.  canonicalize() maps a state to its orbit representative by
// sorting the instances' value tuples lexicographically; exploring only
// representatives (explore_bfs canonicalises every emitted target before
// interning, EngineOptions::symmetry) makes the explored chain the
// symmetry quotient, with per-orbit rates accumulated by the CSR builder's
// duplicate-coalescing.  The quotient of a chain under a group of
// automorphisms is an exact ordinary lumping, so every measure computed on
// it equals the full-chain value, and the post-hoc lumping layer
// (graph::coarsest_lumping) composes on top: symmetry first, splitter-queue
// refinement on the residual.
//
// Because the automorphism group fixes the (canonical) initial state, the
// reachable set of the full chain is the disjoint union of the orbits of
// the explored representatives — so the full-chain state count is
// recoverable exactly, without ever materialising the full chain, as the
// sum of orbit sizes (orbit_size / full_state_count).
#ifndef ARCADE_ENGINE_SYMMETRY_HPP
#define ARCADE_ENGINE_SYMMETRY_HPP

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace arcade::engine {

/// Whether compile/explore canonicalise states to orbit representatives.
/// Mirrors core::ReductionPolicy: Off explores the full chain (the seed
/// behaviour, byte-identical outputs), Auto explores the symmetry quotient
/// directly whenever nontrivial orbits are detected.
enum class SymmetryPolicy {
    Off,   ///< explore the full chain
    Auto,  ///< canonicalise to orbit representatives during exploration
};

/// Process-wide default, read once from the ARCADE_SYMMETRY environment
/// variable ("auto"/"on"/"1" select Auto; anything else, or unset, Off).
[[nodiscard]] SymmetryPolicy default_symmetry_policy();

/// One orbit of interchangeable instances.  `instances[i]` lists the field
/// indices (into the StateLayout the symmetry was built for) holding
/// instance i's sub-vector; every instance has the same arity, and the
/// field tuples are disjoint.  Any permutation of the instances must be an
/// automorphism of the chain — the *builder* (compiler or module-level
/// analysis) is responsible for proving that.
struct SymmetryOrbit {
    std::vector<std::vector<std::size_t>> instances;
};

/// A set of disjoint orbits over one StateLayout, with the canonicalisation
/// kernel explore_bfs runs per emitted target.  Immutable after
/// construction and safe to share across exploration threads.
class StateSymmetry {
public:
    StateSymmetry() = default;
    explicit StateSymmetry(std::vector<SymmetryOrbit> orbits);

    /// True when no orbit has two or more instances — canonicalisation is
    /// the identity and the quotient is the full chain.
    [[nodiscard]] bool trivial() const noexcept { return orbits_.empty(); }

    [[nodiscard]] std::size_t orbit_count() const noexcept { return orbits_.size(); }

    /// Rewrites `values` (one entry per layout field) in place to the orbit
    /// representative: within every orbit the instance tuples end up in
    /// nondecreasing lexicographic order.  Allocation-free (hot path).
    void canonicalize(std::span<std::int64_t> values) const noexcept;

    /// True when `values` already is its own orbit representative.
    [[nodiscard]] bool is_canonical(std::span<const std::int64_t> values) const noexcept;

    /// Size of the orbit of `values` under the full symmetric groups of the
    /// orbits: the product over orbits of  k! / prod(multiplicity!)  where
    /// the multiplicities count identical instance tuples.  Returned as a
    /// double — orbit sizes at scaled component counts overflow 64-bit
    /// integers long before they overflow a double's 53-bit mantissa
    /// matters for reporting.
    [[nodiscard]] double orbit_size(std::span<const std::int64_t> values) const noexcept;

private:
    // Flattened per-orbit data: fields_ stores each orbit's instances
    // back-to-back, instance-major (instances * arity indices per orbit).
    struct Orbit {
        std::size_t instances = 0;
        std::size_t arity = 0;
        std::size_t offset = 0;  ///< into fields_
    };
    std::vector<Orbit> orbits_;
    std::vector<std::size_t> fields_;
};

}  // namespace arcade::engine

#endif  // ARCADE_ENGINE_SYMMETRY_HPP
