#include "engine/symmetry.hpp"

#include <cstdlib>
#include <string>
#include <utility>

#include "support/errors.hpp"

namespace arcade::engine {

SymmetryPolicy default_symmetry_policy() {
    static const SymmetryPolicy policy = [] {
        const char* raw = std::getenv("ARCADE_SYMMETRY");
        if (raw == nullptr) return SymmetryPolicy::Off;
        const std::string value(raw);
        if (value == "auto" || value == "Auto" || value == "on" || value == "1") {
            return SymmetryPolicy::Auto;
        }
        return SymmetryPolicy::Off;
    }();
    return policy;
}

StateSymmetry::StateSymmetry(std::vector<SymmetryOrbit> orbits) {
    for (auto& orbit : orbits) {
        if (orbit.instances.size() < 2) continue;  // nothing to permute
        const std::size_t arity = orbit.instances.front().size();
        if (arity == 0) continue;
        for (const auto& instance : orbit.instances) {
            if (instance.size() != arity) {
                throw ModelError("symmetry orbit instances must share one arity");
            }
        }
        Orbit compact;
        compact.instances = orbit.instances.size();
        compact.arity = arity;
        compact.offset = fields_.size();
        for (auto& instance : orbit.instances) {
            fields_.insert(fields_.end(), instance.begin(), instance.end());
        }
        orbits_.push_back(compact);
    }
}

void StateSymmetry::canonicalize(std::span<std::int64_t> values) const noexcept {
    for (const Orbit& orbit : orbits_) {
        const std::size_t* fields = fields_.data() + orbit.offset;
        const std::size_t arity = orbit.arity;
        // Insertion sort of instance tuples by lexicographic value order;
        // orbit sizes are component counts (small), so this beats any
        // allocation-based sort on the per-emission hot path.
        for (std::size_t i = 1; i < orbit.instances; ++i) {
            for (std::size_t j = i; j > 0; --j) {
                const std::size_t* lo = fields + (j - 1) * arity;
                const std::size_t* hi = fields + j * arity;
                int cmp = 0;
                for (std::size_t t = 0; t < arity; ++t) {
                    const std::int64_t a = values[lo[t]];
                    const std::int64_t b = values[hi[t]];
                    if (a != b) {
                        cmp = a < b ? -1 : 1;
                        break;
                    }
                }
                if (cmp <= 0) break;
                for (std::size_t t = 0; t < arity; ++t) {
                    std::swap(values[lo[t]], values[hi[t]]);
                }
            }
        }
    }
}

bool StateSymmetry::is_canonical(std::span<const std::int64_t> values) const noexcept {
    for (const Orbit& orbit : orbits_) {
        const std::size_t* fields = fields_.data() + orbit.offset;
        const std::size_t arity = orbit.arity;
        for (std::size_t i = 1; i < orbit.instances; ++i) {
            const std::size_t* lo = fields + (i - 1) * arity;
            const std::size_t* hi = fields + i * arity;
            for (std::size_t t = 0; t < arity; ++t) {
                const std::int64_t a = values[lo[t]];
                const std::int64_t b = values[hi[t]];
                if (a < b) break;
                if (a > b) return false;
            }
        }
    }
    return true;
}

double StateSymmetry::orbit_size(std::span<const std::int64_t> values) const noexcept {
    double total = 1.0;
    for (const Orbit& orbit : orbits_) {
        const std::size_t* fields = fields_.data() + orbit.offset;
        const std::size_t arity = orbit.arity;
        // k! / prod(run-length!) over the (sorted) instance tuples.  On a
        // canonical state equal tuples are adjacent; tolerate non-canonical
        // input by comparing each instance against every earlier one.
        double numerator = 1.0;
        for (std::size_t i = 1; i < orbit.instances; ++i) {
            numerator *= static_cast<double>(i + 1);
        }
        double denominator = 1.0;
        for (std::size_t i = 0; i < orbit.instances; ++i) {
            // multiplicity of instance i's tuple among instances 0..i
            std::size_t run = 1;
            for (std::size_t j = 0; j < i; ++j) {
                const std::size_t* a = fields + i * arity;
                const std::size_t* b = fields + j * arity;
                bool equal = true;
                for (std::size_t t = 0; t < arity; ++t) {
                    if (values[a[t]] != values[b[t]]) {
                        equal = false;
                        break;
                    }
                }
                if (equal) ++run;
            }
            denominator *= static_cast<double>(run);
        }
        total *= numerator / denominator;
    }
    return total;
}

}  // namespace arcade::engine
