// Deterministic parallel breadth-first state-space exploration over the
// packed state store.
//
// The frontier is processed level-synchronously: each BFS level is sharded
// into contiguous chunks, one per std::thread worker.  Workers evaluate
// successors independently (the expensive part: guard/rate evaluation and
// encoder logic) into per-shard triplet buffers — packed target words plus
// rates, grouped by source.  A serial merge then walks the shards in source
// order, interning targets and appending CSR triplets.  Because the merge
// consumes emissions in exactly the order a single-threaded BFS would
// produce them, state numbering and the transition multiset are identical
// for every thread count — parallel exploration is bit-compatible with
// serial, which the tier-1 tests assert.
#ifndef ARCADE_ENGINE_EXPLORE_HPP
#define ARCADE_ENGINE_EXPLORE_HPP

#include <algorithm>
#include <cstdint>
#include <exception>
#include <span>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "engine/state_store.hpp"
#include "engine/symmetry.hpp"
#include "support/errors.hpp"

namespace arcade::engine {

/// One rate-matrix triplet produced by exploration.
struct Transition {
    std::size_t source;
    std::size_t target;
    double rate;
};

struct EngineOptions {
    std::size_t max_states = 50'000'000;  ///< explosion guard
    /// Worker threads; 0 means std::thread::hardware_concurrency().
    unsigned threads = 0;
    /// On-the-fly symmetry reduction: when non-null (and nontrivial), the
    /// initial state and every emitted target are canonicalised to their
    /// orbit representative before interning, so the explored chain is the
    /// symmetry quotient.  The pointee must outlive the exploration; the
    /// caller is responsible for the orbits being genuine automorphisms.
    const StateSymmetry* symmetry = nullptr;
};

/// Result of an exploration: interned states (index order = BFS discovery
/// order) and the transition triplets.
struct Explored {
    StateStore store;
    std::vector<Transition> transitions;
};

/// Resolves an EngineOptions thread request against the hardware.
inline unsigned resolve_threads(unsigned requested) {
    if (requested != 0) return requested;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

/// Explores the reachable state space from `initial`.
///
/// `make_worker()` must return an independent worker per thread; a worker is
/// a callable `worker(std::span<const std::int64_t> state, auto&& emit)`
/// that calls `emit(std::span<const Int> target, double rate)` — any
/// integral element type — for every outgoing transition.  Workers only
/// read shared model data, so the same factory serves the serial and the
/// parallel path.  Zero rates are dropped; negative rates throw ModelError.
template <typename WorkerFactory>
Explored explore_bfs(const StateLayout& layout, std::span<const std::int64_t> initial,
                     WorkerFactory&& make_worker, const EngineOptions& options = {}) {
    Explored result{StateStore(layout), {}};
    StateStore& store = result.store;
    const std::size_t wps = layout.words_per_state();
    const std::size_t fields = layout.field_count();

    const StateSymmetry* symmetry =
        (options.symmetry != nullptr && !options.symmetry->trivial())
            ? options.symmetry
            : nullptr;

    std::vector<std::uint64_t> packed(wps);
    if (symmetry != nullptr) {
        std::vector<std::int64_t> canonical(initial.begin(), initial.end());
        symmetry->canonicalize(canonical);
        layout.pack(std::span<const std::int64_t>(canonical), packed.data());
    } else {
        layout.pack(initial, packed.data());
    }
    store.intern(packed.data());

    const unsigned threads = resolve_threads(options.threads);

    const auto check_explosion = [&options](std::size_t states) {
        if (states > options.max_states) {
            throw ModelError("state-space explosion: more than " +
                             std::to_string(options.max_states) + " states");
        }
    };

    // Per-shard successor buffer: packed target words and rates, plus the
    // number of emissions of every source in the shard (merge ordering key).
    struct Shard {
        std::size_t begin = 0;
        std::size_t end = 0;
        std::vector<std::uint64_t> words;
        std::vector<double> rates;
        std::vector<std::uint32_t> emitted;  // per source in [begin, end)
        std::exception_ptr error;
    };

    struct WorkerState {
        decltype(make_worker()) worker;
        std::vector<std::int64_t> values;
        std::vector<std::uint64_t> packed;
        std::vector<std::int64_t> canonical;  // scratch for symmetry reduction
    };
    std::vector<WorkerState> workers;
    workers.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) {
        workers.push_back(WorkerState{make_worker(), std::vector<std::int64_t>(fields),
                                      std::vector<std::uint64_t>(wps),
                                      std::vector<std::int64_t>(fields)});
    }

    // Packs `target` into w.packed, canonicalising to the orbit
    // representative first when symmetry reduction is on.  Identical in the
    // inline and sharded paths, so numbering stays thread-count-invariant.
    const auto pack_target = [&layout, fields, symmetry](WorkerState& w, auto target) {
        if (symmetry != nullptr) {
            for (std::size_t i = 0; i < fields; ++i) {
                w.canonical[i] = static_cast<std::int64_t>(target[i]);
            }
            symmetry->canonicalize(std::span<std::int64_t>(w.canonical));
            layout.pack(std::span<const std::int64_t>(w.canonical), w.packed.data());
        } else {
            layout.pack(target, w.packed.data());
        }
    };

    // Levels smaller than this per thread are not worth a thread
    // create/join cycle; they run inline on the calling thread.
    constexpr std::size_t kMinShardStates = 128;

    std::size_t level_begin = 0;
    std::vector<Shard> shards(threads);
    while (level_begin < store.size()) {
        check_explosion(store.size());
        const std::size_t level_end = store.size();
        const std::size_t count = level_end - level_begin;
        const auto active = static_cast<unsigned>(std::min<std::size_t>(
            threads, std::max<std::size_t>(1, count / kMinShardStates)));

        if (active <= 1) {
            // Inline path: intern targets as they are emitted — exactly the
            // order the merge below reproduces, so numbering is unaffected.
            WorkerState& w = workers[0];
            for (std::size_t si = level_begin; si < level_end; ++si) {
                store.unpack(si, std::span<std::int64_t>(w.values));
                w.worker(std::span<const std::int64_t>(w.values),
                         [&](auto target, double rate) {
                             if (rate < 0.0) throw ModelError("negative transition rate");
                             if (rate == 0.0) return;
                             pack_target(w, target);
                             const auto [index, inserted] = store.intern(w.packed.data());
                             if (inserted) check_explosion(store.size());
                             result.transitions.push_back(Transition{si, index, rate});
                         });
            }
            level_begin = level_end;
            continue;
        }

        const std::size_t per_shard = (count + active - 1) / active;

        for (unsigned t = 0; t < active; ++t) {
            Shard& shard = shards[t];
            shard.begin = level_begin + std::min<std::size_t>(count, t * per_shard);
            shard.end = level_begin + std::min<std::size_t>(count, (t + 1) * per_shard);
            shard.words.clear();
            shard.rates.clear();
            shard.emitted.assign(shard.end - shard.begin, 0);
            shard.error = nullptr;
        }

        auto run_shard = [&](unsigned t) {
            Shard& shard = shards[t];
            WorkerState& w = workers[t];
            try {
                for (std::size_t si = shard.begin; si < shard.end; ++si) {
                    store.unpack(si, std::span<std::int64_t>(w.values));
                    w.worker(std::span<const std::int64_t>(w.values),
                             [&](auto target, double rate) {
                                 if (rate < 0.0) {
                                     throw ModelError("negative transition rate");
                                 }
                                 if (rate == 0.0) return;
                                 pack_target(w, target);
                                 shard.words.insert(shard.words.end(), w.packed.begin(),
                                                    w.packed.end());
                                 shard.rates.push_back(rate);
                                 ++shard.emitted[si - shard.begin];
                             });
                }
            } catch (...) {
                shard.error = std::current_exception();
            }
        };

        {
            std::vector<std::thread> pool;
            pool.reserve(active - 1);
            for (unsigned t = 1; t < active; ++t) pool.emplace_back(run_shard, t);
            run_shard(0);
            for (auto& th : pool) th.join();
        }
        for (unsigned t = 0; t < active; ++t) {
            if (shards[t].error) std::rethrow_exception(shards[t].error);
        }

        // Serial merge in source order: identical interning order to the
        // serial path.  The explosion guard runs per intern, like the
        // serial path's per-state check, so a blowing-up level cannot
        // intern unboundedly before the ModelError fires.
        for (unsigned t = 0; t < active; ++t) {
            const Shard& shard = shards[t];
            std::size_t cursor = 0;
            for (std::size_t si = shard.begin; si < shard.end; ++si) {
                const std::uint32_t n = shard.emitted[si - shard.begin];
                for (std::uint32_t k = 0; k < n; ++k, ++cursor) {
                    const auto [index, inserted] =
                        store.intern(shard.words.data() + cursor * wps);
                    if (inserted) check_explosion(store.size());
                    result.transitions.push_back(
                        Transition{si, index, shard.rates[cursor]});
                }
            }
        }
        level_begin = level_end;
    }
    return result;
}

}  // namespace arcade::engine

#endif  // ARCADE_ENGINE_EXPLORE_HPP
