// Reusable numeric scratch buffers.
//
// Transient uniformisation and the Gauss–Seidel solvers need a handful of
// state-count-sized double vectors per solve.  A WorkspacePool keeps those
// allocations alive across solves so a figure benchmark evaluating dozens
// of curves on the same model reuses one set of buffers instead of
// reallocating per call.  Header-only and dependency-free so the ctmc layer
// can borrow from it without linking the engine facade.
#ifndef ARCADE_ENGINE_WORKSPACE_HPP
#define ARCADE_ENGINE_WORKSPACE_HPP

#include <cstddef>
#include <mutex>
#include <utility>
#include <vector>

namespace arcade::engine {

/// Thread-safe pool of double vectors bucketed only by "big enough".
class WorkspacePool {
public:
    /// A vector of size `n` (contents unspecified).  Reuses a pooled
    /// allocation when one of sufficient capacity exists.
    [[nodiscard]] std::vector<double> acquire(std::size_t n) {
        std::lock_guard<std::mutex> lock(mutex_);
        ++acquires_;
        for (std::size_t i = 0; i < pool_.size(); ++i) {
            if (pool_[i].capacity() >= n) {
                std::vector<double> out = std::move(pool_[i]);
                pool_.erase(pool_.begin() + static_cast<std::ptrdiff_t>(i));
                out.resize(n);
                ++reuses_;
                return out;
            }
        }
        return std::vector<double>(n);
    }

    /// Returns a buffer to the pool (bounded; surplus buffers are freed).
    void release(std::vector<double>&& v) {
        if (v.capacity() == 0) return;
        std::lock_guard<std::mutex> lock(mutex_);
        if (pool_.size() < kMaxPooled) pool_.push_back(std::move(v));
    }

    [[nodiscard]] std::size_t acquire_count() const {
        std::lock_guard<std::mutex> lock(mutex_);
        return acquires_;
    }
    [[nodiscard]] std::size_t reuse_count() const {
        std::lock_guard<std::mutex> lock(mutex_);
        return reuses_;
    }

    void clear() {
        std::lock_guard<std::mutex> lock(mutex_);
        pool_.clear();
    }

private:
    static constexpr std::size_t kMaxPooled = 16;
    mutable std::mutex mutex_;
    std::vector<std::vector<double>> pool_;
    std::size_t acquires_ = 0;
    std::size_t reuses_ = 0;
};

/// RAII borrow: acquires on construction, releases on destruction.
class ScratchVector {
public:
    ScratchVector(WorkspacePool* pool, std::size_t n)
        : pool_(pool), v_(pool ? pool->acquire(n) : std::vector<double>(n)) {}
    ~ScratchVector() {
        if (pool_) pool_->release(std::move(v_));
    }
    ScratchVector(const ScratchVector&) = delete;
    ScratchVector& operator=(const ScratchVector&) = delete;

    [[nodiscard]] std::vector<double>& get() noexcept { return v_; }
    [[nodiscard]] const std::vector<double>& get() const noexcept { return v_; }

private:
    WorkspacePool* pool_;
    std::vector<double> v_;
};

}  // namespace arcade::engine

#endif  // ARCADE_ENGINE_WORKSPACE_HPP
