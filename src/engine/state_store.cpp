#include "engine/state_store.hpp"

#include <bit>
#include <string>

#include "support/errors.hpp"

namespace arcade::engine {

StateLayout::StateLayout(const std::vector<FieldSpec>& fields) : specs_(fields) {
    slots_.reserve(fields.size());
    std::uint32_t word = 0;
    std::uint32_t used = 0;  // bits consumed in the current word
    for (const FieldSpec& f : fields) {
        if (f.high < f.low) {
            throw InvalidArgument("state field has high < low (" + std::to_string(f.high) +
                                  " < " + std::to_string(f.low) + ")");
        }
        const std::uint64_t range =
            static_cast<std::uint64_t>(f.high) - static_cast<std::uint64_t>(f.low);
        const auto bits = static_cast<std::uint32_t>(std::bit_width(range));
        if (bits > 64 - used) {  // fields never straddle word boundaries
            ++word;
            used = 0;
        }
        Slot slot;
        slot.low = f.low;
        slot.range = range;
        slot.mask = bits == 64 ? ~0ull : ((1ull << bits) - 1ull);
        // Zero-width fields store nothing; pin them to shift 0 so pack/unpack
        // never shift by 64 (UB) when the preceding fields fill the word.
        slot.word = bits == 0 ? 0 : word;
        slot.shift = bits == 0 ? 0 : used;
        slots_.push_back(slot);
        used += bits;
    }
    words_ = static_cast<std::size_t>(word) + 1;
}

void StateLayout::throw_out_of_range(std::size_t field, std::int64_t value) const {
    throw ModelError("pack: value " + std::to_string(value) + " outside field range [" +
                     std::to_string(specs_[field].low) + "," +
                     std::to_string(specs_[field].high) + "]");
}

StateStore::StateStore(StateLayout layout)
    : layout_(std::move(layout)), wps_(layout_.words_per_state()) {
    slots_.assign(1024, 0);
    slot_mask_ = slots_.size() - 1;
}

std::size_t StateStore::hash_words(const std::uint64_t* words, std::size_t n) {
    // splitmix64-style mixing over the packed words.
    std::uint64_t h = 0x9e3779b97f4a7c15ull;
    for (std::size_t i = 0; i < n; ++i) {
        std::uint64_t x = words[i] + 0xbf58476d1ce4e5b9ull * (i + 1);
        x ^= x >> 30;
        x *= 0xbf58476d1ce4e5b9ull;
        x ^= x >> 27;
        x *= 0x94d049bb133111ebull;
        x ^= x >> 31;
        h = (h ^ x) * 0xff51afd7ed558ccdull;
    }
    return static_cast<std::size_t>(h);
}

bool StateStore::equals(std::size_t index, const std::uint64_t* words) const {
    const std::uint64_t* mine = arena_.data() + index * wps_;
    for (std::size_t w = 0; w < wps_; ++w) {
        if (mine[w] != words[w]) return false;
    }
    return true;
}

void StateStore::grow() {
    std::vector<std::size_t> fresh(slots_.size() * 2, 0);
    const std::size_t mask = fresh.size() - 1;
    for (std::size_t i = 0; i < hashes_.size(); ++i) {
        std::size_t pos = hashes_[i] & mask;
        while (fresh[pos] != 0) pos = (pos + 1) & mask;
        fresh[pos] = i + 1;
    }
    slots_ = std::move(fresh);
    slot_mask_ = mask;
}

std::pair<std::size_t, bool> StateStore::intern(const std::uint64_t* words) {
    ARCADE_ASSERT(!slots_.empty(), "intern on a default-constructed StateStore");
    const std::size_t h = hash_words(words, wps_);
    std::size_t pos = h & slot_mask_;
    while (slots_[pos] != 0) {
        const std::size_t index = slots_[pos] - 1;
        if (hashes_[index] == h && equals(index, words)) return {index, false};
        pos = (pos + 1) & slot_mask_;
    }
    const std::size_t index = hashes_.size();
    arena_.insert(arena_.end(), words, words + wps_);
    hashes_.push_back(h);
    slots_[pos] = index + 1;
    // keep the load factor below ~0.7
    if ((hashes_.size() + 1) * 10 > slots_.size() * 7) grow();
    return {index, true};
}

std::size_t StateStore::find(const std::uint64_t* words) const {
    if (slots_.empty()) return SIZE_MAX;
    const std::size_t h = hash_words(words, wps_);
    std::size_t pos = h & slot_mask_;
    while (slots_[pos] != 0) {
        const std::size_t index = slots_[pos] - 1;
        if (hashes_[index] == h && equals(index, words)) return index;
        pos = (pos + 1) & slot_mask_;
    }
    return SIZE_MAX;
}

const std::uint64_t* StateStore::words(std::size_t index) const {
    ARCADE_ASSERT(index < size(), "state index out of range");
    return arena_.data() + index * wps_;
}

std::int64_t StateStore::value(std::size_t index, std::size_t field) const {
    return layout_.extract(words(index), field);
}

void StateStore::reserve(std::size_t states) {
    arena_.reserve(states * wps_);
    hashes_.reserve(states);
}

std::size_t StateStore::memory_bytes() const noexcept {
    return arena_.capacity() * sizeof(std::uint64_t) +
           hashes_.capacity() * sizeof(std::size_t) + slots_.capacity() * sizeof(std::size_t);
}

}  // namespace arcade::engine
