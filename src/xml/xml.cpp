#include "xml/xml.hpp"

#include <cctype>
#include <sstream>

#include "support/errors.hpp"
#include "support/strings.hpp"

namespace arcade::xml {

const std::string& Element::attribute(const std::string& key) const {
    const auto it = attributes_.find(key);
    if (it == attributes_.end()) {
        throw ParseError("element <" + name_ + "> lacks required attribute '" + key + "'");
    }
    return it->second;
}

std::string Element::attribute_or(const std::string& key, const std::string& fallback) const {
    const auto it = attributes_.find(key);
    return it == attributes_.end() ? fallback : it->second;
}

double Element::attribute_as_double(const std::string& key) const {
    const std::string& raw = attribute(key);
    try {
        return std::stod(raw);
    } catch (const std::exception&) {
        throw ParseError("attribute '" + key + "' of <" + name_ + "> is not a number: " + raw);
    }
}

long long Element::attribute_as_int(const std::string& key) const {
    const std::string& raw = attribute(key);
    try {
        return std::stoll(raw);
    } catch (const std::exception&) {
        throw ParseError("attribute '" + key + "' of <" + name_ + "> is not an integer: " + raw);
    }
}

ElementPtr Element::add_child(const std::string& name) {
    auto child = std::make_shared<Element>(name);
    children_.push_back(child);
    return child;
}

std::vector<ElementPtr> Element::children_named(const std::string& name) const {
    std::vector<ElementPtr> out;
    for (const auto& c : children_) {
        if (c->name() == name) out.push_back(c);
    }
    return out;
}

ElementPtr Element::first_child(const std::string& name) const {
    for (const auto& c : children_) {
        if (c->name() == name) return c;
    }
    return nullptr;
}

namespace {

class XmlCursor {
public:
    explicit XmlCursor(const std::string& src) : src_(src) {}

    [[nodiscard]] bool done() const noexcept { return i_ >= src_.size(); }
    [[nodiscard]] char peek() const { return src_[i_]; }
    [[nodiscard]] bool looking_at(const std::string& s) const {
        return src_.compare(i_, s.size(), s) == 0;
    }

    char take() {
        const char c = src_[i_++];
        if (c == '\n') {
            ++line_;
            col_ = 1;
        } else {
            ++col_;
        }
        return c;
    }

    void take_n(std::size_t n) {
        for (std::size_t k = 0; k < n; ++k) take();
    }

    void skip_ws() {
        while (!done() && std::isspace(static_cast<unsigned char>(peek())) != 0) take();
    }

    std::string name() {
        std::string out;
        while (!done()) {
            const char c = peek();
            if (std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_' || c == '-' ||
                c == '.' || c == ':') {
                out += take();
            } else {
                break;
            }
        }
        if (out.empty()) fail("expected a name");
        return out;
    }

    [[noreturn]] void fail(const std::string& message) const {
        throw ParseError("XML: " + message, line_, col_);
    }

    [[nodiscard]] std::size_t pos() const noexcept { return i_; }
    [[nodiscard]] const std::string& source() const noexcept { return src_; }

private:
    const std::string& src_;
    std::size_t i_ = 0;
    std::size_t line_ = 1;
    std::size_t col_ = 1;
};

std::string decode_entities(const std::string& raw, XmlCursor& cur) {
    std::string out;
    out.reserve(raw.size());
    for (std::size_t i = 0; i < raw.size(); ++i) {
        if (raw[i] != '&') {
            out += raw[i];
            continue;
        }
        const std::size_t semi = raw.find(';', i);
        if (semi == std::string::npos) cur.fail("unterminated entity");
        const std::string ent = raw.substr(i + 1, semi - i - 1);
        if (ent == "lt") out += '<';
        else if (ent == "gt") out += '>';
        else if (ent == "amp") out += '&';
        else if (ent == "apos") out += '\'';
        else if (ent == "quot") out += '"';
        else if (!ent.empty() && ent[0] == '#') {
            const long code = std::strtol(ent.c_str() + (ent[1] == 'x' ? 2 : 1), nullptr,
                                          ent[1] == 'x' ? 16 : 10);
            if (code < 0x80) {
                out += static_cast<char>(code);
            } else {
                cur.fail("non-ASCII character references are not supported");
            }
        } else {
            cur.fail("unknown entity '&" + ent + ";'");
        }
        i = semi;
    }
    return out;
}

ElementPtr parse_element(XmlCursor& cur);

void parse_content(XmlCursor& cur, Element& element) {
    std::string text;     // decoded output
    std::string pending;  // raw character data awaiting entity decoding
    const auto flush = [&] {
        if (!pending.empty()) {
            text += decode_entities(pending, cur);
            pending.clear();
        }
    };
    while (!cur.done()) {
        if (cur.looking_at("<!--")) {
            cur.take_n(4);
            while (!cur.done() && !cur.looking_at("-->")) cur.take();
            if (cur.done()) cur.fail("unterminated comment");
            cur.take_n(3);
        } else if (cur.looking_at("<![CDATA[")) {
            flush();
            // CDATA is literal: no entity decoding
            cur.take_n(9);
            while (!cur.done() && !cur.looking_at("]]>")) text += cur.take();
            if (cur.done()) cur.fail("unterminated CDATA");
            cur.take_n(3);
        } else if (cur.looking_at("</")) {
            break;
        } else if (cur.peek() == '<') {
            element.add_child(parse_element(cur));
        } else {
            pending += cur.take();
        }
    }
    flush();
    const std::string trimmed(trim(text));
    if (!trimmed.empty()) element.append_text(trimmed);
}

ElementPtr parse_element(XmlCursor& cur) {
    if (cur.done() || cur.peek() != '<') cur.fail("expected '<'");
    cur.take();  // '<'
    auto element = std::make_shared<Element>(cur.name());
    // attributes
    while (true) {
        cur.skip_ws();
        if (cur.done()) cur.fail("unterminated element <" + element->name() + ">");
        if (cur.looking_at("/>")) {
            cur.take_n(2);
            return element;
        }
        if (cur.peek() == '>') {
            cur.take();
            break;
        }
        const std::string key = cur.name();
        cur.skip_ws();
        if (cur.done() || cur.peek() != '=') cur.fail("expected '=' after attribute name");
        cur.take();
        cur.skip_ws();
        if (cur.done() || (cur.peek() != '"' && cur.peek() != '\'')) {
            cur.fail("expected quoted attribute value");
        }
        const char quote = cur.take();
        std::string value;
        while (!cur.done() && cur.peek() != quote) value += cur.take();
        if (cur.done()) cur.fail("unterminated attribute value");
        cur.take();
        element->set_attribute(key, decode_entities(value, cur));
    }
    // content
    parse_content(cur, *element);
    // closing tag
    if (!cur.looking_at("</")) cur.fail("expected closing tag for <" + element->name() + ">");
    cur.take_n(2);
    const std::string closing = cur.name();
    if (closing != element->name()) {
        cur.fail("mismatched closing tag </" + closing + "> for <" + element->name() + ">");
    }
    cur.skip_ws();
    if (cur.done() || cur.peek() != '>') cur.fail("malformed closing tag");
    cur.take();
    return element;
}

}  // namespace

ElementPtr parse_document(const std::string& source) {
    XmlCursor cur(source);
    cur.skip_ws();
    // prolog: declaration, comments, processing instructions
    while (!cur.done()) {
        if (cur.looking_at("<?")) {
            while (!cur.done() && !cur.looking_at("?>")) cur.take();
            if (cur.done()) cur.fail("unterminated declaration");
            cur.take_n(2);
            cur.skip_ws();
        } else if (cur.looking_at("<!--")) {
            cur.take_n(4);
            while (!cur.done() && !cur.looking_at("-->")) cur.take();
            if (cur.done()) cur.fail("unterminated comment");
            cur.take_n(3);
            cur.skip_ws();
        } else if (cur.looking_at("<!DOCTYPE")) {
            while (!cur.done() && cur.peek() != '>') cur.take();
            if (!cur.done()) cur.take();
            cur.skip_ws();
        } else {
            break;
        }
    }
    if (cur.done()) cur.fail("document has no root element");
    ElementPtr root = parse_element(cur);
    cur.skip_ws();
    if (!cur.done()) cur.fail("content after the root element");
    return root;
}

std::string escape(const std::string& raw) {
    std::string out;
    out.reserve(raw.size());
    for (char c : raw) {
        switch (c) {
            case '<': out += "&lt;"; break;
            case '>': out += "&gt;"; break;
            case '&': out += "&amp;"; break;
            case '"': out += "&quot;"; break;
            case '\'': out += "&apos;"; break;
            default: out += c;
        }
    }
    return out;
}

namespace {

void write_element(std::ostringstream& os, const Element& e, int depth) {
    const std::string indent(static_cast<std::size_t>(depth) * 2, ' ');
    os << indent << "<" << e.name();
    for (const auto& [k, v] : e.attributes()) {
        os << " " << k << "=\"" << escape(v) << "\"";
    }
    if (e.children().empty() && e.text().empty()) {
        os << "/>\n";
        return;
    }
    os << ">";
    if (!e.text().empty()) os << escape(e.text());
    if (!e.children().empty()) {
        os << "\n";
        for (const auto& c : e.children()) write_element(os, *c, depth + 1);
        os << indent;
    }
    os << "</" << e.name() << ">\n";
}

}  // namespace

std::string write_document(const Element& root) {
    std::ostringstream os;
    os << "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n";
    write_element(os, root, 0);
    return os.str();
}

}  // namespace arcade::xml
