// Minimal non-validating XML DOM — enough for the Arcade-XML input format:
// elements, attributes, text, comments, CDATA, declarations.  No namespaces,
// no DTD, no external entities (the five predefined entities are decoded).
#ifndef ARCADE_XML_XML_HPP
#define ARCADE_XML_XML_HPP

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace arcade::xml {

class Element;
using ElementPtr = std::shared_ptr<Element>;

/// An XML element: name, attributes, child elements and concatenated text.
class Element {
public:
    explicit Element(std::string name) : name_(std::move(name)) {}

    [[nodiscard]] const std::string& name() const noexcept { return name_; }

    [[nodiscard]] const std::map<std::string, std::string>& attributes() const noexcept {
        return attributes_;
    }
    void set_attribute(const std::string& key, const std::string& value) {
        attributes_[key] = value;
    }
    [[nodiscard]] bool has_attribute(const std::string& key) const {
        return attributes_.count(key) > 0;
    }
    /// Throws arcade::ParseError when missing.
    [[nodiscard]] const std::string& attribute(const std::string& key) const;
    [[nodiscard]] std::string attribute_or(const std::string& key,
                                           const std::string& fallback) const;
    [[nodiscard]] double attribute_as_double(const std::string& key) const;
    [[nodiscard]] long long attribute_as_int(const std::string& key) const;

    [[nodiscard]] const std::vector<ElementPtr>& children() const noexcept { return children_; }
    ElementPtr add_child(const std::string& name);
    void add_child(ElementPtr child) { children_.push_back(std::move(child)); }

    /// All children with the given element name.
    [[nodiscard]] std::vector<ElementPtr> children_named(const std::string& name) const;
    /// First child with the name, or nullptr.
    [[nodiscard]] ElementPtr first_child(const std::string& name) const;

    [[nodiscard]] const std::string& text() const noexcept { return text_; }
    void append_text(const std::string& t) { text_ += t; }
    void set_text(std::string t) { text_ = std::move(t); }

private:
    std::string name_;
    std::map<std::string, std::string> attributes_;
    std::vector<ElementPtr> children_;
    std::string text_;
};

/// Parses a document and returns its root element.
/// Throws arcade::ParseError with line/column on malformed input.
[[nodiscard]] ElementPtr parse_document(const std::string& source);

/// Serialises `root` with 2-space indentation and an XML declaration.
[[nodiscard]] std::string write_document(const Element& root);

/// Escapes the five predefined entities in attribute/text content.
[[nodiscard]] std::string escape(const std::string& raw);

}  // namespace arcade::xml

#endif  // ARCADE_XML_XML_HPP
