// Strongly-connected-component analysis of the CTMC transition graph.
// Needed for: steady-state of reducible chains (BSCC detection),
// qualitative precomputation for unbounded until, reachability closures.
#ifndef ARCADE_GRAPH_SCC_HPP
#define ARCADE_GRAPH_SCC_HPP

#include <cstddef>
#include <vector>

#include "linalg/csr_matrix.hpp"

namespace arcade::graph {

/// Result of an SCC decomposition.
struct SccDecomposition {
    /// component[v] = SCC index of vertex v.  SCC indices are in reverse
    /// topological order of the condensation (successors have lower index).
    std::vector<std::size_t> component;
    std::size_t count = 0;
    /// bottom[c] = true iff SCC c has no edge leaving it.
    std::vector<bool> bottom;
};

/// Tarjan's algorithm (iterative) on the sparsity pattern of `adjacency`.
/// Zero-valued stored entries are treated as edges; callers should not store
/// structural zeros if that is not wanted.  Self-loops are permitted.
[[nodiscard]] SccDecomposition strongly_connected_components(
    const linalg::CsrMatrix& adjacency);

/// States from which `targets` is reachable (backward closure).
/// `transposed` must be the transpose of the transition adjacency.
[[nodiscard]] std::vector<bool> backward_reachable(const linalg::CsrMatrix& transposed,
                                                   const std::vector<bool>& targets);

/// States reachable from `sources` (forward closure).
[[nodiscard]] std::vector<bool> forward_reachable(const linalg::CsrMatrix& adjacency,
                                                  const std::vector<bool>& sources);

/// States that reach `targets` with probability 1 in the embedded process:
/// the standard "Prob1" precomputation for unbounded until over
/// (`allowed`, `targets`): maximal set U with targets ⊆ U such that from every
/// state of U \ targets, all paths stay in `allowed` until hitting targets.
[[nodiscard]] std::vector<bool> almost_sure_reach(const linalg::CsrMatrix& adjacency,
                                                  const linalg::CsrMatrix& transposed,
                                                  const std::vector<bool>& allowed,
                                                  const std::vector<bool>& targets);

}  // namespace arcade::graph

#endif  // ARCADE_GRAPH_SCC_HPP
