#include "graph/scc.hpp"

#include <algorithm>
#include <limits>

#include "support/errors.hpp"

namespace arcade::graph {

namespace {
constexpr std::size_t kUnvisited = std::numeric_limits<std::size_t>::max();
}  // namespace

SccDecomposition strongly_connected_components(const linalg::CsrMatrix& adjacency) {
    const std::size_t n = adjacency.rows();
    ARCADE_ASSERT(adjacency.cols() == n, "SCC needs a square adjacency");

    SccDecomposition out;
    out.component.assign(n, kUnvisited);

    std::vector<std::size_t> index(n, kUnvisited);
    std::vector<std::size_t> lowlink(n, 0);
    std::vector<bool> on_stack(n, false);
    std::vector<std::size_t> stack;          // Tarjan stack
    std::vector<std::size_t> call_vertex;    // manual recursion
    std::vector<std::size_t> call_edge;
    std::size_t next_index = 0;

    for (std::size_t root = 0; root < n; ++root) {
        if (index[root] != kUnvisited) continue;
        call_vertex.push_back(root);
        call_edge.push_back(0);
        while (!call_vertex.empty()) {
            const std::size_t v = call_vertex.back();
            std::size_t& ei = call_edge.back();
            if (ei == 0) {
                index[v] = lowlink[v] = next_index++;
                stack.push_back(v);
                on_stack[v] = true;
            }
            const auto cols = adjacency.row_columns(v);
            bool descended = false;
            while (ei < cols.size()) {
                const std::size_t w = cols[ei];
                ++ei;
                if (index[w] == kUnvisited) {
                    call_vertex.push_back(w);
                    call_edge.push_back(0);
                    descended = true;
                    break;
                }
                if (on_stack[w]) lowlink[v] = std::min(lowlink[v], index[w]);
            }
            if (descended) continue;
            // v finished
            if (lowlink[v] == index[v]) {
                const std::size_t comp = out.count++;
                while (true) {
                    const std::size_t w = stack.back();
                    stack.pop_back();
                    on_stack[w] = false;
                    out.component[w] = comp;
                    if (w == v) break;
                }
            }
            call_vertex.pop_back();
            call_edge.pop_back();
            if (!call_vertex.empty()) {
                const std::size_t parent = call_vertex.back();
                lowlink[parent] = std::min(lowlink[parent], lowlink[v]);
            }
        }
    }

    out.bottom.assign(out.count, true);
    for (std::size_t v = 0; v < n; ++v) {
        for (std::size_t w : adjacency.row_columns(v)) {
            if (out.component[w] != out.component[v]) out.bottom[out.component[v]] = false;
        }
    }
    return out;
}

std::vector<bool> backward_reachable(const linalg::CsrMatrix& transposed,
                                     const std::vector<bool>& targets) {
    return forward_reachable(transposed, targets);
}

std::vector<bool> forward_reachable(const linalg::CsrMatrix& adjacency,
                                    const std::vector<bool>& sources) {
    const std::size_t n = adjacency.rows();
    ARCADE_ASSERT(sources.size() == n, "reachability mask size mismatch");
    std::vector<bool> seen = sources;
    std::vector<std::size_t> frontier;
    for (std::size_t v = 0; v < n; ++v) {
        if (seen[v]) frontier.push_back(v);
    }
    while (!frontier.empty()) {
        const std::size_t v = frontier.back();
        frontier.pop_back();
        for (std::size_t w : adjacency.row_columns(v)) {
            if (!seen[w]) {
                seen[w] = true;
                frontier.push_back(w);
            }
        }
    }
    return seen;
}

std::vector<bool> almost_sure_reach(const linalg::CsrMatrix& adjacency,
                                    const linalg::CsrMatrix& transposed,
                                    const std::vector<bool>& allowed,
                                    const std::vector<bool>& targets) {
    const std::size_t n = adjacency.rows();
    ARCADE_ASSERT(allowed.size() == n && targets.size() == n, "mask size mismatch");

    // Standard Prob1 fixpoint: start from "can reach targets through allowed"
    // and iteratively remove states that can escape or get trapped.
    // u = states with P(reach targets staying in allowed) = 1.
    // Compute complement: states with positive probability of never reaching.
    // First: prob0 = states that cannot reach targets through allowed at all.
    std::vector<bool> can_reach(n, false);
    {
        std::vector<std::size_t> frontier;
        for (std::size_t v = 0; v < n; ++v) {
            if (targets[v]) {
                can_reach[v] = true;
                frontier.push_back(v);
            }
        }
        while (!frontier.empty()) {
            const std::size_t v = frontier.back();
            frontier.pop_back();
            for (std::size_t w : transposed.row_columns(v)) {
                if (!can_reach[w] && allowed[w] && !targets[w]) {
                    can_reach[w] = true;
                    frontier.push_back(w);
                }
            }
        }
    }
    // Iteratively remove states that have an edge to a state outside
    // (can_reach ∪ targets) — in a Markov chain every outgoing edge has
    // positive probability, so such a state fails almost-sure reachability.
    std::vector<bool> good = can_reach;
    bool changed = true;
    while (changed) {
        changed = false;
        for (std::size_t v = 0; v < n; ++v) {
            if (!good[v] || targets[v]) continue;
            for (std::size_t w : adjacency.row_columns(v)) {
                if (!good[w] && !targets[w]) {
                    good[v] = false;
                    changed = true;
                    break;
                }
            }
        }
    }
    for (std::size_t v = 0; v < n; ++v) {
        if (targets[v]) good[v] = true;
    }
    return good;
}

}  // namespace arcade::graph
