// Coarsest ordinary-lumping (strong-bisimulation) partition of a weighted
// digraph — the reduction behind the paper's "drastic state-space
// minimisation": states are merged when they carry the same per-block
// outgoing rate sums towards every other block.
//
// Two refinement algorithms compute the same fixed point:
//
// * SplitterQueue (the default) — Valmari–Franceschinis-style refinement
//   driven by a worklist of splitter blocks.  Processing splitter S touches
//   only the *predecessors* of S's members: each touched state's rates into
//   S are sorted by exact bit pattern and summed, and every block holding
//   touched states is split by those sums (states with no edge into S form
//   their own group, mirroring the presence/absence distinction of the
//   signature form).  Whenever a block splits, all parts re-enter the queue.
//   Work is proportional to the in-edges of the splitters processed instead
//   of one full O(m log n) sweep per round, which is what makes huge
//   individual encodings cheap to lump (bench_perf_lumping quantifies it).
//   Hopcroft's process-all-but-the-largest-part trick is deliberately NOT
//   used: its correctness relies on w(s, B \ B') = w(s, B) - w(s, B'), an
//   identity of exact arithmetic that floating-point sums do not satisfy
//   bitwise — re-queueing every part keeps the result identical to the
//   round-based reference on every input.
//
// * Rounds (the reference, selected by ARCADE_LUMPING=rounds) — splits every
//   block by the full signature
//     sig(s) = [ block(s), sorted { (block(target), summed rate) : targets
//                outside block(s) } ]
//   and iterates to a fixed point (Paige–Tarjan style splitting, in its
//   round-based signature form), costing O(rounds × m log n).
//
// A fixed point is exactly an ordinarily lumpable partition, and both
// refinements converge to the *coarsest* lumpable refinement of the initial
// partition: if Q is lumpable and refines partition P, then for states s,t
// sharing a Q-block and any P-block C != block_P(s), C is a union of
// Q-blocks distinct from block_Q(s), so r(s,C) = sum of per-Q-block rates =
// r(t,C) — s and t survive every split.  Per-(state, block) sums are always
// accumulated in sorted bit-pattern order, so equal rate multisets produce
// bitwise-identical sums in either algorithm and the partitions (after
// first-occurrence renumbering) coincide exactly — asserted on every test
// chain by test_lumping.
//
// Rates towards a state's *own* block (and diagonal entries) are deliberately
// ignored: intra-block transitions never change the block of the aggregated
// process, so ordinary lumpability does not constrain them.
#ifndef ARCADE_GRAPH_LUMPING_HPP
#define ARCADE_GRAPH_LUMPING_HPP

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

#include "linalg/csr_matrix.hpp"

namespace arcade::graph {

/// FNV-1a offset basis / one-word mix — the hash behind every signature
/// key in the reduction layer and the engine's model fingerprints.
inline constexpr std::uint64_t kFnv1aBasis = 1469598103934665603ull;

[[nodiscard]] constexpr std::uint64_t fnv1a_mix(std::uint64_t h,
                                                std::uint64_t v) noexcept {
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xffu;
        h *= 1099511628211ull;
    }
    return h;
}

/// Exact bit pattern of a double (signature keys must distinguish values
/// the way the refinement compares them: bitwise).
[[nodiscard]] inline std::uint64_t double_bits(double v) noexcept {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof bits);
    return bits;
}

/// Hash for word-sequence keys (per-state signatures).
struct WordVectorHash {
    std::size_t operator()(const std::vector<std::uint64_t>& key) const noexcept {
        std::uint64_t h = kFnv1aBasis;
        for (const std::uint64_t w : key) h = fnv1a_mix(h, w);
        return static_cast<std::size_t>(h);
    }
};

/// A partition of the vertex set into consecutively numbered blocks.
/// Block ids are assigned in order of first occurrence by vertex index, so
/// the numbering is deterministic (vertex 0 is always in block 0).
struct Partition {
    std::vector<std::size_t> block_of;  ///< block_of[v] = block id of vertex v
    std::size_t count = 0;              ///< number of blocks

    [[nodiscard]] std::size_t size() const noexcept { return block_of.size(); }

    /// Members of each block, in ascending vertex order.
    [[nodiscard]] std::vector<std::vector<std::size_t>> members() const;
};

/// Which refinement computes the partition (see the header comment).
enum class LumpingAlgorithm {
    SplitterQueue,  ///< worklist refinement, work ∝ splitter in-edges (default)
    Rounds,         ///< full-signature sweeps, O(rounds × m log n) (reference)
};

/// Process-wide default, read once from the ARCADE_LUMPING environment
/// variable ("rounds" selects the round-based reference; anything else, or
/// unset, selects the splitter queue).
[[nodiscard]] LumpingAlgorithm default_lumping_algorithm();

/// Work counters of one refinement run (bench_perf_lumping reports these).
struct LumpingStats {
    /// Rounds: full signature sweeps until the fixed point.
    /// SplitterQueue: splitter blocks dequeued and processed.
    std::size_t passes = 0;
    /// Block count of the final partition (block counts only ever grow, so
    /// this is also the peak).
    std::size_t blocks = 0;
    /// Total (state, rate) contributions scanned — the work actually done;
    /// the splitter queue's edge over the round-based sweeps shows up here.
    std::size_t edges_scanned = 0;
};

/// The coarsest ordinary-lumping partition of `rates` refining the initial
/// partition `initial_block_of` (vertices with equal entries start in the
/// same block; the numbering itself is irrelevant).  Diagonal entries are
/// ignored.  Rate comparisons are exact: per-(state, target-block) sums are
/// accumulated in sorted value order, so two states with the same multiset
/// of block-labelled rates produce bitwise-identical signatures.  Both
/// algorithms return the identical partition; `stats`, when given, receives
/// the run's work counters.
[[nodiscard]] Partition coarsest_lumping(
    const linalg::CsrMatrix& rates, const std::vector<std::size_t>& initial_block_of,
    LumpingAlgorithm algorithm = default_lumping_algorithm(),
    LumpingStats* stats = nullptr);

}  // namespace arcade::graph

#endif  // ARCADE_GRAPH_LUMPING_HPP
