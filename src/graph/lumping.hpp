// Coarsest ordinary-lumping (strong-bisimulation) partition of a weighted
// digraph — the reduction behind the paper's "drastic state-space
// minimisation": states are merged when they carry the same per-block
// outgoing rate sums towards every other block.
//
// The refinement operator splits every block by the signature
//   sig(s) = [ block(s), sorted { (block(target), summed rate) : targets
//              outside block(s) } ]
// and iterates to a fixed point (Paige–Tarjan style splitting, in its
// round-based signature form).  A fixed point is exactly an ordinarily
// lumpable partition, and iterating from any initial partition converges to
// the *coarsest* lumpable refinement of it: if Q is lumpable and refines
// partition P, then for states s,t sharing a Q-block and any P-block
// C != block_P(s), C is a union of Q-blocks distinct from block_Q(s), so
// r(s,C) = sum of per-Q-block rates = r(t,C) — s and t survive every split.
//
// Rates towards a state's *own* block (and diagonal entries) are deliberately
// ignored: intra-block transitions never change the block of the aggregated
// process, so ordinary lumpability does not constrain them.
#ifndef ARCADE_GRAPH_LUMPING_HPP
#define ARCADE_GRAPH_LUMPING_HPP

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

#include "linalg/csr_matrix.hpp"

namespace arcade::graph {

/// FNV-1a offset basis / one-word mix — the hash behind every signature
/// key in the reduction layer and the engine's model fingerprints.
inline constexpr std::uint64_t kFnv1aBasis = 1469598103934665603ull;

[[nodiscard]] constexpr std::uint64_t fnv1a_mix(std::uint64_t h,
                                                std::uint64_t v) noexcept {
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xffu;
        h *= 1099511628211ull;
    }
    return h;
}

/// Exact bit pattern of a double (signature keys must distinguish values
/// the way the refinement compares them: bitwise).
[[nodiscard]] inline std::uint64_t double_bits(double v) noexcept {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof bits);
    return bits;
}

/// Hash for word-sequence keys (per-state signatures).
struct WordVectorHash {
    std::size_t operator()(const std::vector<std::uint64_t>& key) const noexcept {
        std::uint64_t h = kFnv1aBasis;
        for (const std::uint64_t w : key) h = fnv1a_mix(h, w);
        return static_cast<std::size_t>(h);
    }
};

/// A partition of the vertex set into consecutively numbered blocks.
/// Block ids are assigned in order of first occurrence by vertex index, so
/// the numbering is deterministic (vertex 0 is always in block 0).
struct Partition {
    std::vector<std::size_t> block_of;  ///< block_of[v] = block id of vertex v
    std::size_t count = 0;              ///< number of blocks

    [[nodiscard]] std::size_t size() const noexcept { return block_of.size(); }

    /// Members of each block, in ascending vertex order.
    [[nodiscard]] std::vector<std::vector<std::size_t>> members() const;
};

/// The coarsest ordinary-lumping partition of `rates` refining the initial
/// partition `initial_block_of` (vertices with equal entries start in the
/// same block; the numbering itself is irrelevant).  Diagonal entries are
/// ignored.  Rate comparisons are exact: per-(state, target-block) sums are
/// accumulated in sorted value order, so two states with the same multiset
/// of block-labelled rates produce bitwise-identical signatures.
[[nodiscard]] Partition coarsest_lumping(const linalg::CsrMatrix& rates,
                                         const std::vector<std::size_t>& initial_block_of);

}  // namespace arcade::graph

#endif  // ARCADE_GRAPH_LUMPING_HPP
