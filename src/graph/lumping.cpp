#include "graph/lumping.hpp"

#include <algorithm>
#include <cstring>
#include <unordered_map>

#include "support/errors.hpp"

namespace arcade::graph {

namespace {

/// Renumbers arbitrary block labels into first-occurrence order.
Partition normalise(const std::vector<std::size_t>& labels) {
    Partition out;
    out.block_of.resize(labels.size());
    std::unordered_map<std::size_t, std::size_t> remap;
    remap.reserve(labels.size());
    for (std::size_t v = 0; v < labels.size(); ++v) {
        const auto [it, inserted] = remap.emplace(labels[v], out.count);
        if (inserted) ++out.count;
        out.block_of[v] = it->second;
    }
    return out;
}

}  // namespace

std::vector<std::vector<std::size_t>> Partition::members() const {
    std::vector<std::vector<std::size_t>> out(count);
    for (std::size_t v = 0; v < block_of.size(); ++v) out[block_of[v]].push_back(v);
    return out;
}

Partition coarsest_lumping(const linalg::CsrMatrix& rates,
                           const std::vector<std::size_t>& initial_block_of) {
    const std::size_t n = rates.rows();
    ARCADE_ASSERT(rates.cols() == n, "lumping needs a square matrix");
    ARCADE_ASSERT(initial_block_of.size() == n, "initial partition size mismatch");
    Partition partition = normalise(initial_block_of);
    if (n == 0) return partition;

    // Scratch reused across rounds.
    std::vector<std::pair<std::size_t, double>> edges;  // (target block, rate)
    std::vector<std::uint64_t> key;
    std::vector<std::size_t> next(n);

    for (;;) {
        std::unordered_map<std::vector<std::uint64_t>, std::size_t, WordVectorHash> ids;
        ids.reserve(partition.count * 2);
        std::size_t next_count = 0;
        for (std::size_t s = 0; s < n; ++s) {
            const std::size_t own = partition.block_of[s];
            edges.clear();
            const auto cols = rates.row_columns(s);
            const auto vals = rates.row_values(s);
            for (std::size_t k = 0; k < cols.size(); ++k) {
                if (cols[k] == s) continue;  // diagonal entries are not rates
                const std::size_t b = partition.block_of[cols[k]];
                if (b == own) continue;  // intra-block rates are unconstrained
                edges.emplace_back(b, vals[k]);
            }
            // Sort by (block, value) so equal multisets of block-labelled
            // rates accumulate in the same order — per-block sums become
            // bitwise comparable across states.
            std::sort(edges.begin(), edges.end(),
                      [](const auto& a, const auto& b) {
                          if (a.first != b.first) return a.first < b.first;
                          return double_bits(a.second) < double_bits(b.second);
                      });
            key.clear();
            key.push_back(own);
            for (std::size_t k = 0; k < edges.size();) {
                const std::size_t b = edges[k].first;
                double sum = 0.0;
                for (; k < edges.size() && edges[k].first == b; ++k) sum += edges[k].second;
                key.push_back(b);
                key.push_back(double_bits(sum));
            }
            const auto [it, inserted] = ids.emplace(key, next_count);
            if (inserted) ++next_count;
            next[s] = it->second;
        }
        if (next_count == partition.count) break;  // fixed point: lumpable
        partition.block_of = next;
        partition.count = next_count;
    }
    return partition;
}

}  // namespace arcade::graph
