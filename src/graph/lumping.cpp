#include "graph/lumping.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <unordered_map>

#include "support/errors.hpp"

namespace arcade::graph {

namespace {

/// Renumbers arbitrary block labels into first-occurrence order.
Partition normalise(const std::vector<std::size_t>& labels) {
    Partition out;
    out.block_of.resize(labels.size());
    std::unordered_map<std::size_t, std::size_t> remap;
    remap.reserve(labels.size());
    for (std::size_t v = 0; v < labels.size(); ++v) {
        const auto [it, inserted] = remap.emplace(labels[v], out.count);
        if (inserted) ++out.count;
        out.block_of[v] = it->second;
    }
    return out;
}

/// The round-based reference refinement: split every block by the full
/// signature until a fixed point, O(rounds × m log n).
Partition coarsest_lumping_rounds(const linalg::CsrMatrix& rates, Partition partition,
                                  LumpingStats* stats) {
    const std::size_t n = rates.rows();

    // Scratch reused across rounds.
    std::vector<std::pair<std::size_t, double>> edges;  // (target block, rate)
    std::vector<std::uint64_t> key;
    std::vector<std::size_t> next(n);

    for (;;) {
        if (stats != nullptr) ++stats->passes;
        std::unordered_map<std::vector<std::uint64_t>, std::size_t, WordVectorHash> ids;
        ids.reserve(partition.count * 2);
        std::size_t next_count = 0;
        for (std::size_t s = 0; s < n; ++s) {
            const std::size_t own = partition.block_of[s];
            edges.clear();
            const auto cols = rates.row_columns(s);
            const auto vals = rates.row_values(s);
            for (std::size_t k = 0; k < cols.size(); ++k) {
                if (cols[k] == s) continue;  // diagonal entries are not rates
                const std::size_t b = partition.block_of[cols[k]];
                if (b == own) continue;  // intra-block rates are unconstrained
                edges.emplace_back(b, vals[k]);
            }
            if (stats != nullptr) stats->edges_scanned += cols.size();
            // Sort by (block, value) so equal multisets of block-labelled
            // rates accumulate in the same order — per-block sums become
            // bitwise comparable across states.
            std::sort(edges.begin(), edges.end(),
                      [](const auto& a, const auto& b) {
                          if (a.first != b.first) return a.first < b.first;
                          return double_bits(a.second) < double_bits(b.second);
                      });
            key.clear();
            key.push_back(own);
            for (std::size_t k = 0; k < edges.size();) {
                const std::size_t b = edges[k].first;
                double sum = 0.0;
                for (; k < edges.size() && edges[k].first == b; ++k) sum += edges[k].second;
                key.push_back(b);
                key.push_back(double_bits(sum));
            }
            const auto [it, inserted] = ids.emplace(key, next_count);
            if (inserted) ++next_count;
            next[s] = it->second;
        }
        if (next_count == partition.count) break;  // fixed point: lumpable
        partition.block_of = next;
        partition.count = next_count;
    }
    return partition;
}

/// The splitter-queue refinement (see the header comment): a worklist of
/// splitter blocks; processing one touches only the predecessors of its
/// members.  Every part of every split re-enters the queue, so when the
/// queue drains each block's states carry bitwise-equal sorted rate sums
/// towards every final block — the same fixed point the round-based sweeps
/// reach, at a fraction of the scanned edges.
Partition coarsest_lumping_splitter(const linalg::CsrMatrix& rates, Partition partition,
                                    LumpingStats* stats) {
    const std::size_t n = rates.rows();

    // Incoming edges (transposed matrix), diagonal dropped: processing a
    // splitter needs "who sends rate into this block".
    std::vector<std::size_t> tbegin(n + 1, 0);
    for (std::size_t s = 0; s < n; ++s) {
        const auto cols = rates.row_columns(s);
        for (std::size_t k = 0; k < cols.size(); ++k) {
            if (cols[k] != s) ++tbegin[cols[k] + 1];
        }
    }
    for (std::size_t v = 0; v < n; ++v) tbegin[v + 1] += tbegin[v];
    std::vector<std::size_t> tsource(tbegin[n]);
    std::vector<double> trate(tbegin[n]);
    {
        std::vector<std::size_t> fill(tbegin.begin(), tbegin.end() - 1);
        for (std::size_t s = 0; s < n; ++s) {
            const auto cols = rates.row_columns(s);
            const auto vals = rates.row_values(s);
            for (std::size_t k = 0; k < cols.size(); ++k) {
                if (cols[k] == s) continue;
                const std::size_t slot = fill[cols[k]]++;
                tsource[slot] = s;
                trate[slot] = vals[k];
            }
        }
    }

    // Refinable partition: states grouped contiguously per block in `elems`,
    // with per-block [begin, end) ranges.  Blocks only ever split, so block
    // ids are stable and the arrays grow monotonically.
    std::vector<std::size_t> elems(n);
    std::vector<std::size_t> pos(n);
    std::vector<std::size_t> block_begin;
    std::vector<std::size_t> block_end;
    {
        block_begin.assign(partition.count, 0);
        block_end.assign(partition.count, 0);
        for (std::size_t s = 0; s < n; ++s) ++block_end[partition.block_of[s]];
        std::size_t offset = 0;
        for (std::size_t b = 0; b < partition.count; ++b) {
            block_begin[b] = offset;
            offset += block_end[b];
            block_end[b] = block_begin[b];
        }
        for (std::size_t s = 0; s < n; ++s) {
            const std::size_t b = partition.block_of[s];
            elems[block_end[b]] = s;
            pos[s] = block_end[b]++;
        }
    }

    std::deque<std::size_t> queue;
    std::vector<bool> in_queue(partition.count, false);
    for (std::size_t b = 0; b < partition.count; ++b) {
        queue.push_back(b);
        in_queue[b] = true;
    }

    // Scratch reused across splitters.  Contributions are grouped per source
    // state by counting sort (a global comparison sort of the contribution
    // list is the asymptotic bottleneck otherwise), then each state's few
    // rates are insertion-sorted by bit pattern before summing.
    std::vector<std::pair<std::uint64_t, std::uint64_t>> contrib;  // (state, bits)
    contrib.reserve(tbegin[n]);
    std::vector<std::uint64_t> grouped(tbegin[n]);     // bits, grouped by state
    std::vector<std::size_t> group_count(n, 0);        // contributions per state
    std::vector<std::size_t> group_offset(n, 0);       // state's slice in `grouped`
    std::vector<std::size_t> touched_states;
    std::vector<std::uint64_t> wbits(n, 0);  // summed-weight bits, touched states
    std::vector<std::size_t> marked(partition.count, 0);  // touched per block
    std::vector<std::size_t> touched_blocks;

    const auto enqueue = [&](std::size_t b) {
        if (!in_queue[b]) {
            in_queue[b] = true;
            queue.push_back(b);
        }
    };

    while (!queue.empty()) {
        const std::size_t splitter = queue.front();
        queue.pop_front();
        in_queue[splitter] = false;
        if (stats != nullptr) ++stats->passes;

        // Gather every rate sent into the splitter from outside it.  Rates
        // from the splitter's own members are unconstrained by ordinary
        // lumpability, exactly like the round-based signature skips them.
        contrib.clear();
        touched_states.clear();
        for (std::size_t i = block_begin[splitter]; i < block_end[splitter]; ++i) {
            const std::size_t u = elems[i];
            for (std::size_t k = tbegin[u]; k < tbegin[u + 1]; ++k) {
                const std::size_t s = tsource[k];
                if (partition.block_of[s] == splitter) continue;
                contrib.emplace_back(s, double_bits(trate[k]));
                if (group_count[s]++ == 0) touched_states.push_back(s);
            }
        }
        if (stats != nullptr) stats->edges_scanned += contrib.size();
        if (contrib.empty()) continue;

        // Counting sort by state: slice `grouped` per touched state, then
        // drop each contribution into its state's slice.
        std::size_t grouped_size = 0;
        for (const std::size_t s : touched_states) {
            group_offset[s] = grouped_size;
            grouped_size += group_count[s];
            group_count[s] = 0;  // reused as the fill cursor
        }
        for (const auto& [state, bits] : contrib) {
            const std::size_t s = static_cast<std::size_t>(state);
            grouped[group_offset[s] + group_count[s]++] = bits;
        }

        // Per-state sums, each accumulated in ascending bit-pattern order —
        // the same order the round-based signature uses, so the two
        // algorithms compare bitwise-identical values.  Per-state runs are a
        // handful of parallel rates: insertion sort.
        touched_blocks.clear();
        for (const std::size_t s : touched_states) {
            const std::size_t lo = group_offset[s];
            const std::size_t hi = lo + group_count[s];
            group_count[s] = 0;  // reset for the next splitter
            for (std::size_t i = lo + 1; i < hi; ++i) {
                const std::uint64_t bits = grouped[i];
                std::size_t j = i;
                for (; j > lo && grouped[j - 1] > bits; --j) grouped[j] = grouped[j - 1];
                grouped[j] = bits;
            }
            double sum = 0.0;
            for (std::size_t i = lo; i < hi; ++i) {
                double rate = 0.0;
                std::memcpy(&rate, &grouped[i], sizeof rate);
                sum += rate;
            }
            wbits[s] = double_bits(sum);
            // Move s into the touched prefix of its block.
            const std::size_t b = partition.block_of[s];
            if (marked[b]++ == 0) touched_blocks.push_back(b);
            const std::size_t dest = block_begin[b] + marked[b] - 1;
            const std::size_t other = elems[dest];
            std::swap(elems[pos[s]], elems[dest]);
            pos[other] = pos[s];
            pos[s] = dest;
        }

        // Split every touched block: its untouched members (no edge into the
        // splitter — a *different* signature than a zero-valued sum) form one
        // group, touched members group by exact weight bits.
        for (const std::size_t b : touched_blocks) {
            const std::size_t tb = block_begin[b];
            const std::size_t te = tb + marked[b];
            const std::size_t be = block_end[b];
            marked[b] = 0;
            std::sort(elems.begin() + static_cast<std::ptrdiff_t>(tb),
                      elems.begin() + static_cast<std::ptrdiff_t>(te),
                      [&](std::size_t a, std::size_t c) {
                          if (wbits[a] != wbits[c]) return wbits[a] < wbits[c];
                          return a < c;
                      });
            for (std::size_t i = tb; i < te; ++i) pos[elems[i]] = i;

            // Runs of equal weight bits in [tb, te), then the untouched
            // remainder [te, be) if non-empty.
            std::size_t parts = (te < be) ? 1 : 0;
            for (std::size_t i = tb; i < te;) {
                const std::uint64_t w = wbits[elems[i]];
                for (; i < te && wbits[elems[i]] == w; ++i) {
                }
                ++parts;
            }
            if (parts == 1) continue;  // every member touched with one weight

            // First run keeps id b; every further part becomes a fresh block.
            // All parts re-enter the queue: Hopcroft's skip-the-largest trick
            // would need exact-arithmetic weight subtraction (header comment).
            std::size_t i = tb;
            {
                const std::uint64_t w = wbits[elems[i]];
                for (; i < te && wbits[elems[i]] == w; ++i) {
                }
                block_end[b] = i;
                enqueue(b);
            }
            while (i < be) {
                const std::size_t nb = block_begin.size();
                const std::size_t part_begin = i;
                if (i < te) {
                    const std::uint64_t w = wbits[elems[i]];
                    for (; i < te && wbits[elems[i]] == w; ++i) {
                        partition.block_of[elems[i]] = nb;
                    }
                } else {
                    for (; i < be; ++i) partition.block_of[elems[i]] = nb;
                }
                block_begin.push_back(part_begin);
                block_end.push_back(i);
                marked.push_back(0);
                in_queue.push_back(false);
                ++partition.count;
                enqueue(nb);
            }
        }
    }
    return partition;
}

}  // namespace

std::vector<std::vector<std::size_t>> Partition::members() const {
    std::vector<std::vector<std::size_t>> out(count);
    for (std::size_t v = 0; v < block_of.size(); ++v) out[block_of[v]].push_back(v);
    return out;
}

LumpingAlgorithm default_lumping_algorithm() {
    static const LumpingAlgorithm algorithm = [] {
        const char* env = std::getenv("ARCADE_LUMPING");
        if (env != nullptr && std::string(env) == "rounds") return LumpingAlgorithm::Rounds;
        return LumpingAlgorithm::SplitterQueue;
    }();
    return algorithm;
}

Partition coarsest_lumping(const linalg::CsrMatrix& rates,
                           const std::vector<std::size_t>& initial_block_of,
                           LumpingAlgorithm algorithm, LumpingStats* stats) {
    const std::size_t n = rates.rows();
    ARCADE_ASSERT(rates.cols() == n, "lumping needs a square matrix");
    ARCADE_ASSERT(initial_block_of.size() == n, "initial partition size mismatch");
    Partition partition = normalise(initial_block_of);
    if (n == 0) {
        if (stats != nullptr) stats->blocks = partition.count;
        return partition;
    }
    partition = algorithm == LumpingAlgorithm::Rounds
                    ? coarsest_lumping_rounds(rates, std::move(partition), stats)
                    : coarsest_lumping_splitter(rates, std::move(partition), stats);
    if (stats != nullptr) stats->blocks = partition.count;
    // Renumber into first-occurrence order: both algorithms then return the
    // identical block_of array for the identical partition.
    return normalise(partition.block_of);
}

}  // namespace arcade::graph
