// The DSN 2010 water-treatment case study: the two process lines of Fig. 2,
// the repair strategies of Section 4, and the disasters of Section 5.
//
// Component parameters (MTTF, MTTR in hours) were recovered from the paper
// (the figure's labels are ambiguous in the text; this assignment reproduces
// Table 2's dedicated-repair availabilities to 7 decimal places and every
// qualitative statement of Section 5):
//   pumps (500, 1), softeners (2000, 5), sand filters (1000, 100),
//   reservoir (6000, 12).
#ifndef ARCADE_WATERTREE_WATERTREE_HPP
#define ARCADE_WATERTREE_WATERTREE_HPP

#include <string>
#include <vector>

#include "arcade/compiler.hpp"
#include "arcade/types.hpp"
#include "engine/session.hpp"

namespace arcade::watertree {

/// Paper parameters.
struct Parameters {
    double pump_mttf = 500.0;
    double pump_mttr = 1.0;
    double softener_mttf = 2000.0;
    double softener_mttr = 5.0;
    double sandfilter_mttf = 1000.0;
    double sandfilter_mttr = 100.0;
    double reservoir_mttf = 6000.0;
    double reservoir_mttr = 12.0;
    double failed_cost_rate = 3.0;  ///< per failed component per hour
    double idle_cost_rate = 1.0;    ///< per idle crew per hour
};

/// The repair strategies compared in the paper.
struct Strategy {
    std::string name;                ///< e.g. "DED", "FRF-1", "FFF-2"
    core::RepairPolicy policy = core::RepairPolicy::Dedicated;
    std::size_t crews = 1;
    bool preemptive = false;
};

/// DED, FRF-1, FRF-2, FFF-1, FFF-2 (the paper's Table 1 rows).
[[nodiscard]] std::vector<Strategy> paper_strategies();

/// Strategy lookup by paper name ("DED", "FRF-1", ...).  A "-pre" suffix on
/// any priority strategy ("FRF-1-pre", ...) selects its preemptive variant
/// (the scheduling ablation; dedicated repair has no crew contention to
/// preempt).  Throws InvalidArgument on unknown names.
[[nodiscard]] const Strategy& strategy(const std::string& name);

/// Builds line 1 or 2 by number.  `extra_pumps` adds spare pumps beyond the
/// paper's configuration (the required count is unchanged) — the component-
/// count scaling axis of the sweep's state-space study; 0 is the paper model.
[[nodiscard]] core::ArcadeModel line(int number, const Strategy& strategy,
                                     const Parameters& params = {},
                                     std::size_t extra_pumps = 0);

/// Session-cached compilation of one line (the figure harnesses' and the
/// sweep runner's entry point): callers asking for the same (line, strategy,
/// encoding, parameters, repair, reduction, symmetry, scale) variant share
/// one CompiledModel.  `with_repair = false` strips the repair units before
/// compiling (the reliability measure and the no-repair model variants);
/// `reduction` selects whether measures of the model run on its lumped
/// quotient; `symmetry` selects on-the-fly exploration of the orbit quotient
/// over interchangeable components (ARCADE_SYMMETRY).
[[nodiscard]] engine::AnalysisSession::CompiledPtr compile_line(
    engine::AnalysisSession& session, int number, const Strategy& strategy,
    core::Encoding encoding = core::Encoding::Individual, const Parameters& params = {},
    bool with_repair = true,
    core::ReductionPolicy reduction = core::default_reduction_policy(),
    core::SymmetryPolicy symmetry = core::default_symmetry_policy(),
    std::size_t extra_pumps = 0);

/// Line 1: 3 softeners, 3 sand filters, 1 reservoir, 4 pumps (3+1 spare).
[[nodiscard]] core::ArcadeModel line1(const Strategy& strategy,
                                      const Parameters& params = {},
                                      std::size_t extra_pumps = 0);

/// Line 2: 3 softeners, 2 sand filters, 1 reservoir, 3 pumps (2+1 spare).
[[nodiscard]] core::ArcadeModel line2(const Strategy& strategy,
                                      const Parameters& params = {},
                                      std::size_t extra_pumps = 0);

/// Phase indices shared by both lines (order of construction).
enum PhaseIndex : std::size_t {
    kSofteners = 0,
    kSandFilters = 1,
    kReservoir = 2,
    kPumps = 3,
};

/// Disaster 1: all pumps of the line fail (paper Section 5).
[[nodiscard]] core::Disaster disaster1(const core::ArcadeModel& line);

/// Disaster 2 (Line 2): two pumps, one softener, one sand filter and the
/// reservoir fail.
[[nodiscard]] core::Disaster disaster2();

/// The service-interval lower bounds of the paper:
/// Line 1: X1=1/3, X2=2/3, X3=1;  Line 2: X1=1/3, X2=1/2, X3=2/3, X4=1.
[[nodiscard]] std::vector<double> service_interval_bounds(const core::ArcadeModel& line);

}  // namespace arcade::watertree

#endif  // ARCADE_WATERTREE_WATERTREE_HPP
