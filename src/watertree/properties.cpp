#include "watertree/properties.hpp"

#include <cstdio>

#include "arcade/compiler.hpp"

namespace arcade::watertree::properties {

namespace {

/// Round-trip-exact decimal form (matches the CSL printer's %.17g).
std::string fmt(double v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

}  // namespace

std::string availability_formula() { return "S=? [ \"operational\" ]"; }

std::string steady_cost_formula() { return "R{\"cost\"}=? [ S ]"; }

std::string reliability_formula(double horizon) {
    // P(never left full service up to t) = P(G<=t !"down"); the parser
    // desugars G via duality to 1 - P(true U<=t "down") — the reliability
    // measure's arithmetic verbatim.
    return "P=? [ G<=" + fmt(horizon) + " !\"down\" ]";
}

std::string survivability_formula(double bound, double horizon) {
    return "P=? [ true U<=" + fmt(horizon) + " \"" + core::service_label(bound) + "\" ]";
}

std::string instantaneous_cost_formula(double time) {
    return "R{\"cost\"}=? [ I=" + fmt(time) + " ]";
}

std::string accumulated_cost_formula(double horizon) {
    return "R{\"cost\"}=? [ C<=" + fmt(horizon) + " ]";
}

std::vector<Property> paper_pack() {
    const double x1 = 1.0 / 3.0;
    const double x2 = 2.0 / 3.0;  // line 2's X3 is the same service level
    return {
        {"availability", availability_formula()},
        {"steady-state-cost", steady_cost_formula()},
        {"reliability", reliability_formula(1000.0)},
        {"survivability-x1", survivability_formula(x1, 100.0)},
        {"survivability-x2", survivability_formula(x2, 100.0)},
        {"survivability-full", survivability_formula(1.0, 100.0)},
        {"instantaneous-cost", instantaneous_cost_formula(4.5)},
        {"accumulated-cost", accumulated_cost_formula(10.0)},
    };
}

}  // namespace arcade::watertree::properties
