// The paper's dependability and performability measures as CSL/CSRL
// formulas — the property preset pack.
//
// Every measure of Sections 4–5 has a textual-property twin here:
//
//   availability          S=? [ "operational" ]
//   long-run cost         R{"cost"}=? [ S ]
//   reliability           P=? [ G<=t !"down" ]          (repair-free model)
//   survivability (>= x)  P=? [ true U<=t "service>=x" ]
//   instantaneous cost    R{"cost"}=? [ I=t ]
//   accumulated cost      R{"cost"}=? [ C<=t ]
//
// The service labels are the compiler's per-level labels
// (core::service_label), registered for every distinct positive service
// level of a model, so the formulas below hold verbatim on both lines and
// both encodings.  Checked through the engine path
// (logic/csl_compiled.hpp / sweep MeasureKind::Property) each formula
// reproduces its measure-pipeline twin bit for bit, with reduction Off and
// Auto — pinned by tests/test_property_sweep.cpp.
//
// Time bounds in series formulas are *nominal*: the sweep layer replaces
// them with each grid point (one shared evolver per curve).  Scalar
// evaluation uses the bound as written.
#ifndef ARCADE_WATERTREE_PROPERTIES_HPP
#define ARCADE_WATERTREE_PROPERTIES_HPP

#include <string>
#include <vector>

namespace arcade::watertree::properties {

/// One named paper measure as a formula.
struct Property {
    std::string name;     ///< e.g. "survivability-x1"
    std::string formula;  ///< CSL/CSRL source text (parse_csl round-trips it)
};

[[nodiscard]] std::string availability_formula();
[[nodiscard]] std::string steady_cost_formula();
/// `horizon` is the nominal time bound (see the header comment).
[[nodiscard]] std::string reliability_formula(double horizon);
/// Recovery to service level >= `bound` within `horizon` hours.
[[nodiscard]] std::string survivability_formula(double bound, double horizon);
[[nodiscard]] std::string instantaneous_cost_formula(double time);
[[nodiscard]] std::string accumulated_cost_formula(double horizon);

/// The whole pack with the paper's horizons (reliability to 1000 h,
/// survivability to X1/X2 within 100 h, costs at/over the figure horizons)
/// — the round-trip test surface.
[[nodiscard]] std::vector<Property> paper_pack();

}  // namespace arcade::watertree::properties

#endif  // ARCADE_WATERTREE_PROPERTIES_HPP
