#include "watertree/watertree.hpp"

#include "arcade/measures.hpp"
#include "support/errors.hpp"

namespace arcade::watertree {

std::vector<Strategy> paper_strategies() {
    return {
        {"DED", core::RepairPolicy::Dedicated, 1, false},
        {"FRF-1", core::RepairPolicy::FastestRepairFirst, 1, false},
        {"FRF-2", core::RepairPolicy::FastestRepairFirst, 2, false},
        {"FFF-1", core::RepairPolicy::FastestFailureFirst, 1, false},
        {"FFF-2", core::RepairPolicy::FastestFailureFirst, 2, false},
    };
}

const Strategy& strategy(const std::string& name) {
    static const std::vector<Strategy> all = [] {
        std::vector<Strategy> out = paper_strategies();
        // Preemptive variants of the priority strategies (the scheduling
        // ablation): same policy and crews, crews derived from the state.
        const std::size_t base = out.size();
        for (std::size_t i = 0; i < base; ++i) {
            if (out[i].policy == core::RepairPolicy::Dedicated) continue;
            Strategy pre = out[i];
            pre.name += "-pre";
            pre.preemptive = true;
            out.push_back(std::move(pre));
        }
        return out;
    }();
    for (const auto& s : all) {
        if (s.name == name) return s;
    }
    std::string valid;
    for (const auto& s : all) {
        if (!valid.empty()) valid += ", ";
        valid += s.name;
    }
    throw InvalidArgument("unknown repair strategy '" + name + "' (valid names: " + valid +
                          ")");
}

namespace {

core::ArcadeModel build_line(const std::string& name, std::size_t sandfilters,
                             std::size_t pumps, std::size_t pumps_required,
                             const Strategy& strategy, const Parameters& params) {
    core::ModelBuilder builder(name);
    builder.add_redundant_phase("softener", 3, params.softener_mttf, params.softener_mttr);
    builder.add_redundant_phase("sandfilter", sandfilters, params.sandfilter_mttf,
                                params.sandfilter_mttr);
    builder.add_redundant_phase("reservoir", 1, params.reservoir_mttf, params.reservoir_mttr);
    builder.add_spare_phase("pump", pumps, pumps_required, params.pump_mttf, params.pump_mttr);
    builder.with_failed_cost_rate(params.failed_cost_rate);
    builder.with_repair(strategy.policy, strategy.crews, strategy.preemptive);

    core::ArcadeModel model = builder.build();
    for (auto& ru : model.repair_units) ru.idle_cost_rate = params.idle_cost_rate;
    return model;
}

}  // namespace

core::ArcadeModel line1(const Strategy& strategy, const Parameters& params,
                        std::size_t extra_pumps) {
    std::string name = "line1-" + strategy.name;
    if (extra_pumps > 0) name += "+" + std::to_string(extra_pumps) + "p";
    return build_line(name, 3, 4 + extra_pumps, 3, strategy, params);
}

core::ArcadeModel line2(const Strategy& strategy, const Parameters& params,
                        std::size_t extra_pumps) {
    std::string name = "line2-" + strategy.name;
    if (extra_pumps > 0) name += "+" + std::to_string(extra_pumps) + "p";
    return build_line(name, 2, 3 + extra_pumps, 2, strategy, params);
}

core::ArcadeModel line(int number, const Strategy& strategy, const Parameters& params,
                       std::size_t extra_pumps) {
    switch (number) {
        case 1: return line1(strategy, params, extra_pumps);
        case 2: return line2(strategy, params, extra_pumps);
        default: throw InvalidArgument("line number must be 1 or 2");
    }
}

engine::AnalysisSession::CompiledPtr compile_line(engine::AnalysisSession& session,
                                                  int number, const Strategy& strategy,
                                                  core::Encoding encoding,
                                                  const Parameters& params,
                                                  bool with_repair,
                                                  core::ReductionPolicy reduction,
                                                  core::SymmetryPolicy symmetry,
                                                  std::size_t extra_pumps) {
    core::CompileOptions options;
    options.encoding = encoding;
    options.reduction = reduction;
    options.symmetry = symmetry;
    core::ArcadeModel model = line(number, strategy, params, extra_pumps);
    if (!with_repair) model = core::without_repair(model);
    return session.compile(model, options);
}

core::Disaster disaster1(const core::ArcadeModel& line) {
    core::Disaster d;
    d.name = "disaster1-all-pumps";
    d.failed_per_phase.assign(line.phases.size(), 0);
    d.failed_per_phase[kPumps] = line.phases[kPumps].components.size();
    return d;
}

core::Disaster disaster2() {
    core::Disaster d;
    d.name = "disaster2-mixed";
    d.failed_per_phase = {1, 1, 1, 2};  // softener, sand filter, reservoir, pumps
    return d;
}

std::vector<double> service_interval_bounds(const core::ArcadeModel& line) {
    std::vector<double> levels = core::service_levels(line);
    // drop 0 (total failure is not a service interval)
    std::vector<double> bounds;
    for (double x : levels) {
        if (x > 1e-9) bounds.push_back(x);
    }
    return bounds;
}

}  // namespace arcade::watertree
