#include "rewards/rewards.hpp"

#include <algorithm>
#include <cmath>

#include "ctmc/steady_state.hpp"
#include "ctmc/transient.hpp"
#include "engine/workspace.hpp"
#include "linalg/kernels.hpp"
#include "linalg/vector_ops.hpp"
#include "numeric/fox_glynn.hpp"
#include "support/errors.hpp"

namespace arcade::rewards {

RewardStructure::RewardStructure(std::string name, std::vector<double> state_rates)
    : name_(std::move(name)), rates_(std::move(state_rates)) {}

namespace {

void check(const ctmc::Ctmc& chain, const RewardStructure& reward,
           std::span<const double> initial) {
    ARCADE_ASSERT(reward.state_count() == chain.state_count(),
                  "reward structure size mismatch");
    ARCADE_ASSERT(initial.size() == chain.state_count(), "initial size mismatch");
}

/// E over one interval of length dt starting from distribution `dist`:
///   (1/L) sum_k (1 - F_k(L dt)) * (dist P^k) · rho
/// Also advances `dist` to the end of the interval (re-using the powers).
double accumulate_interval(const ctmc::Ctmc& chain, double lambda, std::vector<double>& dist,
                           const std::vector<double>& rho, double dt,
                           const ctmc::TransientOptions& options) {
    if (dt <= 0.0) return 0.0;
    const double q = lambda * dt;
    const auto weights = numeric::fox_glynn_cached(q, options.epsilon);

    // Survival function of the Poisson: S_k = P(N > k) = 1 - F_k.
    // Computed from the normalised weights; mass below `left` counts as
    // already included in F (indices < left have negligible pmf).
    const std::size_t n = chain.state_count();
    engine::ScratchVector cur_scratch(options.workspace, n);
    engine::ScratchVector next_scratch(options.workspace, n);
    engine::ScratchVector end_scratch(options.workspace, n);
    std::vector<double>& cur = cur_scratch.get();
    std::vector<double>& next = next_scratch.get();
    std::vector<double>& end_dist = end_scratch.get();
    cur = dist;
    std::fill(end_dist.begin(), end_dist.end(), 0.0);

    double cdf = 0.0;
    double total = 0.0;
    for (std::size_t k = 0;; ++k) {
        const double w = weights->weight(k);
        cdf += w;
        const double survival = std::max(0.0, 1.0 - cdf);
        // reward contribution of P^k term
        if (survival > 0.0) {
            total += survival * linalg::dot(cur, rho);
        }
        if (w != 0.0) {
            for (std::size_t i = 0; i < n; ++i) end_dist[i] += w * cur[i];
        }
        if (k == weights->right) break;
        // out = in * P with P = I + Q/lambda — the shared kernel performs
        // exactly the scalar loop this file used to hand-roll, and picks up
        // the ARCADE_KERNELS variant dispatch.
        linalg::uniformised_multiply_left(chain.rates(), lambda, cur, next);
        std::swap(cur, next);
    }
    // Indices k < left all have survival 1 and are skipped by weight(k)==0 in
    // the loop only for the *pmf*; the survival term must still be counted.
    // The loop above runs k from 0 so all survival terms are included.
    dist = end_dist;
    return total / lambda;
}

}  // namespace

double instantaneous_reward(const ctmc::Ctmc& chain, std::span<const double> initial,
                            const RewardStructure& reward, double t,
                            const ctmc::TransientOptions& options) {
    check(chain, reward, initial);
    const auto dist = ctmc::transient_distribution(chain, initial, t, options);
    return linalg::dot(dist, reward.state_rates());
}

std::vector<double> instantaneous_reward_series(const ctmc::Ctmc& chain,
                                                std::span<const double> initial,
                                                const RewardStructure& reward,
                                                std::span<const double> times,
                                                const ctmc::TransientOptions& options) {
    check(chain, reward, initial);
    ctmc::TransientEvolver evolver(chain, initial, options);
    std::vector<double> out;
    out.reserve(times.size());
    for (double t : times) {
        evolver.advance_to(t);
        out.push_back(linalg::dot(evolver.distribution(), reward.state_rates()));
    }
    return out;
}

double accumulated_reward(const ctmc::Ctmc& chain, std::span<const double> initial,
                          const RewardStructure& reward, double t,
                          const ctmc::TransientOptions& options) {
    check(chain, reward, initial);
    ARCADE_ASSERT(t >= 0.0, "negative time bound");
    const double lambda = std::max(chain.max_exit_rate(), 1e-12) * 1.02;
    std::vector<double> dist(initial.begin(), initial.end());
    return accumulate_interval(chain, lambda, dist, reward.state_rates(), t, options);
}

std::vector<double> accumulated_reward_series(const ctmc::Ctmc& chain,
                                              std::span<const double> initial,
                                              const RewardStructure& reward,
                                              std::span<const double> times,
                                              const ctmc::TransientOptions& options) {
    check(chain, reward, initial);
    const double lambda = std::max(chain.max_exit_rate(), 1e-12) * 1.02;
    std::vector<double> dist(initial.begin(), initial.end());
    std::vector<double> out;
    out.reserve(times.size());
    double acc = 0.0;
    double prev = 0.0;
    for (double t : times) {
        // Mirror TransientEvolver::advance_to: a grid point within tolerance
        // below the previous one is a duplicate (zero-length interval), an
        // earlier one is a caller error.  The raw `t - prev` of a duplicate
        // can be negative and must never reach accumulate_interval.
        if (t < prev - ctmc::TransientEvolver::kTimeTolerance) {
            throw InvalidArgument("accumulated_reward_series: t=" + std::to_string(t) +
                                  " is before the previous grid point " +
                                  std::to_string(prev) +
                                  "; grid times must be non-decreasing");
        }
        const double dt = std::max(0.0, t - prev);
        acc += accumulate_interval(chain, lambda, dist, reward.state_rates(), dt, options);
        out.push_back(acc);
        prev = std::max(prev, t);
    }
    return out;
}

double steady_state_reward(const ctmc::Ctmc& chain, const RewardStructure& reward) {
    ARCADE_ASSERT(reward.state_count() == chain.state_count(), "reward size mismatch");
    const auto pi = ctmc::steady_state(chain);
    return linalg::dot(pi, reward.state_rates());
}

}  // namespace arcade::rewards
