// Markov reward models: state reward rates attached to a CTMC, and the
// CSRL-style measures the paper uses —
//   R=? [I=t]   expected instantaneous reward rate at time t,
//   R=? [C<=t]  expected reward accumulated in [0,t],
//   R=? [S]     long-run average reward rate.
//
// Accumulated rewards use the uniformisation identity
//   E[∫_0^t rho(X_s) ds] = (1/L) * sum_k (1 - F_k(Lt)) * (pi_0 P^k) · rho
// where F_k is the Poisson cdf at rate Lt (Tijms & Veldman / standard
// Markov-reward uniformisation).
#ifndef ARCADE_REWARDS_REWARDS_HPP
#define ARCADE_REWARDS_REWARDS_HPP

#include <span>
#include <string>
#include <vector>

#include "ctmc/ctmc.hpp"
#include "ctmc/transient.hpp"

namespace arcade::rewards {

/// Named state-reward structure (reward gained per unit of time in a state).
class RewardStructure {
public:
    RewardStructure() = default;
    RewardStructure(std::string name, std::vector<double> state_rates);

    [[nodiscard]] const std::string& name() const noexcept { return name_; }
    [[nodiscard]] const std::vector<double>& state_rates() const noexcept { return rates_; }
    [[nodiscard]] std::size_t state_count() const noexcept { return rates_.size(); }

private:
    std::string name_;
    std::vector<double> rates_;
};

/// E[rho(X_t)] — instantaneous expected reward rate at time t.
[[nodiscard]] double instantaneous_reward(const ctmc::Ctmc& chain,
                                          std::span<const double> initial,
                                          const RewardStructure& reward, double t,
                                          const ctmc::TransientOptions& options = {});

/// Instantaneous reward on an ascending time grid (shared evolver).
[[nodiscard]] std::vector<double> instantaneous_reward_series(
    const ctmc::Ctmc& chain, std::span<const double> initial, const RewardStructure& reward,
    std::span<const double> times, const ctmc::TransientOptions& options = {});

/// E[∫_0^t rho(X_s) ds] — expected accumulated reward over [0,t].
[[nodiscard]] double accumulated_reward(const ctmc::Ctmc& chain,
                                        std::span<const double> initial,
                                        const RewardStructure& reward, double t,
                                        const ctmc::TransientOptions& options = {});

/// Accumulated reward on an ascending time grid.  Increments are evaluated
/// per grid interval from the evolving distribution, so the cost is
/// comparable to one transient series.
[[nodiscard]] std::vector<double> accumulated_reward_series(
    const ctmc::Ctmc& chain, std::span<const double> initial, const RewardStructure& reward,
    std::span<const double> times, const ctmc::TransientOptions& options = {});

/// Long-run average reward rate (steady-state weighted reward).
[[nodiscard]] double steady_state_reward(const ctmc::Ctmc& chain,
                                         const RewardStructure& reward);

}  // namespace arcade::rewards

#endif  // ARCADE_REWARDS_REWARDS_HPP
