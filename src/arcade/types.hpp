// The Arcade architectural dependability framework (Boudali et al., DSN'08):
// basic components, repair units and spare-management units, composed with a
// fault tree / quantitative service tree into an analysable model.
//
// This reproduction covers the nondeterminism-free subclass the DSN 2010
// water-treatment paper uses (components with one failure mode and one
// operational mode, exclusive failure occurrence), which is exactly the
// subclass that admits a CTMC translation.
#ifndef ARCADE_ARCADE_TYPES_HPP
#define ARCADE_ARCADE_TYPES_HPP

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

namespace arcade::core {

/// A basic component with exponential failure and repair behaviour.
struct BasicComponent {
    std::string name;
    double mttf = 1.0;  ///< mean time to failure [h]
    double mttr = 1.0;  ///< mean time to repair [h]
    /// Cost rate while failed [1/h].  The paper uses 3 for every component.
    double failed_cost_rate = 3.0;

    [[nodiscard]] double failure_rate() const { return 1.0 / mttf; }
    [[nodiscard]] double repair_rate() const { return 1.0 / mttr; }
};

/// Repair scheduling disciplines from the paper (plus explicit priorities).
enum class RepairPolicy {
    None,                ///< no repair (reliability models)
    Dedicated,           ///< one crew per component (DED)
    FirstComeFirstServe, ///< global arrival order (FCFS)
    FastestRepairFirst,  ///< highest repair rate first (FRF), FCFS ties
    FastestFailureFirst, ///< highest failure rate first (FFF), FCFS ties
    Priority,            ///< explicit user priorities, FCFS ties
};

[[nodiscard]] std::string to_string(RepairPolicy policy);
[[nodiscard]] RepairPolicy repair_policy_from_string(const std::string& text);

/// A repair unit: a scheduling policy plus one or more repair crews serving
/// a set of components.
///
/// Crew semantics (validated against the paper's state/transition counts):
/// crew 1 is non-preemptive and tracked in the state; additional crews serve
/// the policy-best waiting components and are derived from the state (which
/// is equivalent to preemptive-resume for those crews and is what reproduces
/// the paper's "-2" strategies exactly).  Setting `preemptive` makes all
/// crews derived (ablation variant).
struct RepairUnit {
    std::string name;
    RepairPolicy policy = RepairPolicy::Dedicated;
    std::size_t crews = 1;
    bool preemptive = false;
    /// Cost rate per idle crew [1/h].  The paper uses 1.
    double idle_cost_rate = 1.0;
    /// Indices into ArcadeModel::components.
    std::vector<std::size_t> components;
    /// Only for RepairPolicy::Priority: smaller value = repaired first;
    /// same length as `components`.
    std::vector<int> priorities;
};

/// A spare management unit: `required` active components drawn from a pool
/// of `components` (hot spares — dormant units fail like active ones, which
/// is the semantics the paper's state spaces imply).
struct SpareManagementUnit {
    std::string name;
    std::vector<std::size_t> components;
    std::size_t required = 1;
};

/// One phase of the service model: a redundant group of components in
/// series with the other phases.
///
/// * plain redundant group (no SMU): all members contribute service 1/n;
///   full service needs all of them (paper: softeners, sand filters).
/// * spare-managed group (with SMU): service is min(1, up/required);
///   spares do not create service intervals (paper: pumps).
struct ServicePhase {
    std::string name;
    std::vector<std::size_t> components;
    /// Number of working components for full service.  Equal to
    /// components.size() for plain groups; less when spares exist.
    std::size_t required = 1;
    /// True when a spare management unit controls this phase.
    bool spare_managed = false;
};

/// A complete Arcade model: components + repair structure + service model.
struct ArcadeModel {
    std::string name;
    std::vector<BasicComponent> components;
    std::vector<RepairUnit> repair_units;
    std::vector<SpareManagementUnit> spare_units;
    std::vector<ServicePhase> phases;

    /// Throws arcade::ModelError when indices are out of range, a component
    /// is covered by two repair units, priorities are malformed, etc.
    void validate() const;

    [[nodiscard]] std::size_t component_index(const std::string& component_name) const;

    /// Repair unit covering `component`, or nullopt when unrepairable.
    [[nodiscard]] std::optional<std::size_t> repair_unit_of(std::size_t component) const;

    /// Total number of repair crews (dedicated units count one per component).
    [[nodiscard]] std::size_t total_crews() const;
};

/// Fluent builder for assembling models programmatically (the API the
/// examples use).
class ModelBuilder {
public:
    explicit ModelBuilder(std::string name);

    /// Adds `count` identical components named name1..nameN; returns their
    /// indices.  A plain redundant phase is created for them.
    std::vector<std::size_t> add_redundant_phase(const std::string& name, std::size_t count,
                                                 double mttf, double mttr);

    /// Adds a phase of `total` identical components of which `required`
    /// must work for full service (spare management unit semantics).
    std::vector<std::size_t> add_spare_phase(const std::string& name, std::size_t total,
                                             std::size_t required, double mttf, double mttr);

    /// Adds a repair unit covering every component added so far that is not
    /// yet covered.
    ModelBuilder& with_repair(RepairPolicy policy, std::size_t crews = 1,
                              bool preemptive = false);

    /// Adds a repair unit covering the given components.
    ModelBuilder& with_repair_unit(RepairUnit unit);

    /// Overrides the failed-cost rate for every component (default 3/h).
    ModelBuilder& with_failed_cost_rate(double rate);

    [[nodiscard]] ArcadeModel build() const;

private:
    ArcadeModel model_;
};

}  // namespace arcade::core

#endif  // ARCADE_ARCADE_TYPES_HPP
