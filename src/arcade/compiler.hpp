// Compilation of Arcade models to explicit-state CTMCs.
//
// Two encodings are provided:
//
// * Individual — every component is tracked by identity.  Repair-unit state
//   is one tracked in-repair slot (non-preemptive crew 1) plus per-rate-class
//   FIFO ranks for waiting components.  This is the encoding that reproduces
//   the paper's Table 1 state counts exactly (111809 / 8129 for FRF/FFF,
//   2^n for dedicated repair).
//
// * Lumped — exchangeable components (same rates, same phase, same repair
//   class) are aggregated into counters.  Orders of magnitude smaller state
//   spaces with identical measures (asserted by tests); the ablation
//   benchmark quantifies the reduction.
//
// Additional crews beyond the first serve the policy-best waiting components
// and are derived from the state rather than tracked — this reproduces the
// paper's "-2" strategies (same state count as "-1", one extra repair
// transition wherever the waiting queue is non-empty).  `preemptive` repair
// units derive all crews from the state.
#ifndef ARCADE_ARCADE_COMPILER_HPP
#define ARCADE_ARCADE_COMPILER_HPP

#include <cstdint>
#include <vector>

#include "arcade/types.hpp"
#include "ctmc/ctmc.hpp"
#include "engine/state_store.hpp"
#include "rewards/rewards.hpp"

namespace arcade::core {

enum class Encoding { Individual, Lumped };

struct CompileOptions {
    Encoding encoding = Encoding::Individual;
    std::size_t max_states = 50'000'000;
    /// Worker threads for the sharded exploration; 0 = hardware concurrency.
    /// Any thread count produces the identical CTMC.
    unsigned threads = 0;
};

/// A disaster for survivability analysis: how many components of each phase
/// have failed at time zero (GOOD model — Given Occurrence Of Disaster).
struct Disaster {
    std::string name;
    /// failed_per_phase[p] = number of failed components in phase p.
    std::vector<std::size_t> failed_per_phase;
};

/// The compiled model: CTMC + per-state service levels + cost rewards.
/// The explored states live bit-packed in an engine::StateStore rather than
/// the seed's unordered_map over heap-allocated encoded vectors.
class CompiledModel {
public:
    CompiledModel(ctmc::Ctmc chain, std::vector<double> service,
                  rewards::RewardStructure cost, ArcadeModel model,
                  engine::StateStore store, Encoding encoding);

    [[nodiscard]] const ctmc::Ctmc& chain() const noexcept { return chain_; }
    [[nodiscard]] ctmc::Ctmc& chain() noexcept { return chain_; }
    [[nodiscard]] std::size_t state_count() const noexcept { return chain_.state_count(); }
    [[nodiscard]] std::size_t transition_count() const noexcept {
        return chain_.transition_count();
    }

    /// Quantitative service level of every state (paper Section 3).
    [[nodiscard]] const std::vector<double>& service_levels() const noexcept {
        return service_;
    }

    /// States with service level >= x (within 1e-9 tolerance).
    [[nodiscard]] std::vector<bool> service_at_least(double x) const;
    /// States delivering full service (the paper's operational criterion).
    [[nodiscard]] std::vector<bool> operational_states() const;
    /// States delivering no service at all.
    [[nodiscard]] std::vector<bool> total_failure_states() const;

    /// Repair-cost reward structure: 3/h per failed component + 1/h per
    /// idle crew (paper Section 5), honouring per-model overrides.
    [[nodiscard]] const rewards::RewardStructure& cost_reward() const noexcept { return cost_; }

    [[nodiscard]] const ArcadeModel& model() const noexcept { return model_; }
    [[nodiscard]] Encoding encoding() const noexcept { return encoding_; }

    /// Index of the all-up initial state (always 0).
    [[nodiscard]] std::size_t initial_state() const noexcept { return 0; }

    /// Index of the canonical state right after `disaster` struck: the
    /// policy-best failed component is in repair, the rest queue in
    /// component-index order (the paper: "we use the priority of components
    /// to define the repair ordering").  Throws ModelError when the disaster
    /// is inconsistent with the model.
    [[nodiscard]] std::size_t disaster_state(const Disaster& disaster) const;

    /// Point distribution on the disaster state (GOOD-model initial
    /// distribution).
    [[nodiscard]] std::vector<double> disaster_distribution(const Disaster& disaster) const;

    /// Raw encoded state, decoded from the packed store (tests/debugging).
    [[nodiscard]] std::vector<std::int16_t> encoded_state(std::size_t index) const;

    /// The packed state store (engine layer; exposed for perf counters).
    [[nodiscard]] const engine::StateStore& state_store() const noexcept { return store_; }

private:
    ctmc::Ctmc chain_;
    std::vector<double> service_;
    rewards::RewardStructure cost_;
    ArcadeModel model_;
    engine::StateStore store_;
    Encoding encoding_;

    [[nodiscard]] std::size_t lookup(const std::vector<std::int16_t>& encoded) const;
};

/// Compiles `model` (validated) into an explicit CTMC.
[[nodiscard]] CompiledModel compile(const ArcadeModel& model,
                                    const CompileOptions& options = {});

/// Returns a copy of `model` with every repair unit replaced by
/// RepairPolicy::None — the chain used for reliability, where repairs are
/// not considered (paper Section 5: "this measure does not consider
/// repairs").
[[nodiscard]] ArcadeModel without_repair(const ArcadeModel& model);

}  // namespace arcade::core

#endif  // ARCADE_ARCADE_COMPILER_HPP
