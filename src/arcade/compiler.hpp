// Compilation of Arcade models to explicit-state CTMCs.
//
// Two encodings are provided:
//
// * Individual — every component is tracked by identity.  Repair-unit state
//   is one tracked in-repair slot (non-preemptive crew 1) plus per-rate-class
//   FIFO ranks for waiting components.  This is the encoding that reproduces
//   the paper's Table 1 state counts exactly (111809 / 8129 for FRF/FFF,
//   2^n for dedicated repair).
//
// * Lumped — exchangeable components (same rates, same phase, same repair
//   class) are aggregated into counters.  Orders of magnitude smaller state
//   spaces with identical measures (asserted by tests); the ablation
//   benchmark quantifies the reduction.
//
// Additional crews beyond the first serve the policy-best waiting components
// and are derived from the state rather than tracked — this reproduces the
// paper's "-2" strategies (same state count as "-1", one extra repair
// transition wherever the waiting queue is non-empty).  `preemptive` repair
// units derive all crews from the state.
#ifndef ARCADE_ARCADE_COMPILER_HPP
#define ARCADE_ARCADE_COMPILER_HPP

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "arcade/types.hpp"
#include "ctmc/ctmc.hpp"
#include "rewards/rewards.hpp"

namespace arcade::core {

enum class Encoding { Individual, Lumped };

/// FNV-1a over an encoded state vector.
struct EncodedStateHash {
    std::size_t operator()(const std::vector<std::int16_t>& s) const noexcept {
        std::size_t h = 1469598103934665603ull;
        for (std::int16_t v : s) {
            h ^= static_cast<std::size_t>(static_cast<std::uint16_t>(v)) + 0x9e3779b97f4a7c15ull;
            h *= 1099511628211ull;
        }
        return h;
    }
};

struct CompileOptions {
    Encoding encoding = Encoding::Individual;
    std::size_t max_states = 50'000'000;
};

/// A disaster for survivability analysis: how many components of each phase
/// have failed at time zero (GOOD model — Given Occurrence Of Disaster).
struct Disaster {
    std::string name;
    /// failed_per_phase[p] = number of failed components in phase p.
    std::vector<std::size_t> failed_per_phase;
};

/// The compiled model: CTMC + per-state service levels + cost rewards.
class CompiledModel {
public:
    using StateIndexMap =
        std::unordered_map<std::vector<std::int16_t>, std::size_t, EncodedStateHash>;

    CompiledModel(ctmc::Ctmc chain, std::vector<double> service,
                  rewards::RewardStructure cost, ArcadeModel model,
                  StateIndexMap state_index, Encoding encoding);

    [[nodiscard]] const ctmc::Ctmc& chain() const noexcept { return chain_; }
    [[nodiscard]] ctmc::Ctmc& chain() noexcept { return chain_; }
    [[nodiscard]] std::size_t state_count() const noexcept { return chain_.state_count(); }
    [[nodiscard]] std::size_t transition_count() const noexcept {
        return chain_.transition_count();
    }

    /// Quantitative service level of every state (paper Section 3).
    [[nodiscard]] const std::vector<double>& service_levels() const noexcept {
        return service_;
    }

    /// States with service level >= x (within 1e-9 tolerance).
    [[nodiscard]] std::vector<bool> service_at_least(double x) const;
    /// States delivering full service (the paper's operational criterion).
    [[nodiscard]] std::vector<bool> operational_states() const;
    /// States delivering no service at all.
    [[nodiscard]] std::vector<bool> total_failure_states() const;

    /// Repair-cost reward structure: 3/h per failed component + 1/h per
    /// idle crew (paper Section 5), honouring per-model overrides.
    [[nodiscard]] const rewards::RewardStructure& cost_reward() const noexcept { return cost_; }

    [[nodiscard]] const ArcadeModel& model() const noexcept { return model_; }
    [[nodiscard]] Encoding encoding() const noexcept { return encoding_; }

    /// Index of the all-up initial state (always 0).
    [[nodiscard]] std::size_t initial_state() const noexcept { return 0; }

    /// Index of the canonical state right after `disaster` struck: the
    /// policy-best failed component is in repair, the rest queue in
    /// component-index order (the paper: "we use the priority of components
    /// to define the repair ordering").  Throws ModelError when the disaster
    /// is inconsistent with the model.
    [[nodiscard]] std::size_t disaster_state(const Disaster& disaster) const;

    /// Point distribution on the disaster state (GOOD-model initial
    /// distribution).
    [[nodiscard]] std::vector<double> disaster_distribution(const Disaster& disaster) const;

    /// Raw encoded state (for tests/debugging).
    [[nodiscard]] const std::vector<std::int16_t>& encoded_state(std::size_t index) const;

private:
    friend class ModelCompiler;
    ctmc::Ctmc chain_;
    std::vector<double> service_;
    rewards::RewardStructure cost_;
    ArcadeModel model_;
    StateIndexMap state_index_;
    std::vector<const std::vector<std::int16_t>*> states_;  ///< index -> encoded (into map keys)
    Encoding encoding_;

    [[nodiscard]] std::size_t lookup(const std::vector<std::int16_t>& encoded) const;
};

/// Compiles `model` (validated) into an explicit CTMC.
[[nodiscard]] CompiledModel compile(const ArcadeModel& model,
                                    const CompileOptions& options = {});

/// Returns a copy of `model` with every repair unit replaced by
/// RepairPolicy::None — the chain used for reliability, where repairs are
/// not considered (paper Section 5: "this measure does not consider
/// repairs").
[[nodiscard]] ArcadeModel without_repair(const ArcadeModel& model);

}  // namespace arcade::core

#endif  // ARCADE_ARCADE_COMPILER_HPP
