// Compilation of Arcade models to explicit-state CTMCs.
//
// Two encodings are provided:
//
// * Individual — every component is tracked by identity.  Repair-unit state
//   is one tracked in-repair slot (non-preemptive crew 1) plus per-rate-class
//   FIFO ranks for waiting components.  This is the encoding that reproduces
//   the paper's Table 1 state counts exactly (111809 / 8129 for FRF/FFF,
//   2^n for dedicated repair).
//
// * Lumped — exchangeable components (same rates, same phase, same repair
//   class) are aggregated into counters.  Orders of magnitude smaller state
//   spaces with identical measures (asserted by tests); the ablation
//   benchmark quantifies the reduction.
//
// Additional crews beyond the first serve the policy-best waiting components
// and are derived from the state rather than tracked — this reproduces the
// paper's "-2" strategies (same state count as "-1", one extra repair
// transition wherever the waiting queue is non-empty).  `preemptive` repair
// units derive all crews from the state.
#ifndef ARCADE_ARCADE_COMPILER_HPP
#define ARCADE_ARCADE_COMPILER_HPP

#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "analysis/lint.hpp"
#include "arcade/types.hpp"
#include "ctmc/ctmc.hpp"
#include "ctmc/quotient.hpp"
#include "engine/state_store.hpp"
#include "engine/symmetry.hpp"
#include "expr/vm.hpp"
#include "rewards/rewards.hpp"

namespace arcade::core {

enum class Encoding { Individual, Lumped };

/// Whether analyses of a compiled model run on the automatic
/// strong-bisimulation quotient (ctmc::QuotientCtmc) of its chain.
///   Off  — every solver runs on the explored chain as-is.
///   Auto — measures run on the coarsest quotient respecting the model's
///          full measure signature (all chain labels + service levels +
///          cost rates) and lift/aggregate results back.  Exact for every
///          measure in this library; see src/ctmc/quotient.hpp.
enum class ReductionPolicy { Off, Auto };

/// Process-wide default, read once from the ARCADE_REDUCTION environment
/// variable ("auto"/"on"/"1" select Auto; anything else, or unset, is Off).
/// Lets CI force the whole test suite through the reduction layer.
[[nodiscard]] ReductionPolicy default_reduction_policy();

/// Whether compilation explores the symmetry quotient directly (engine
/// on-the-fly reduction) instead of the full chain.  Under Auto the
/// compiler detects interchangeable component groups (same rates, same
/// phase, same repair class — the replicated pump/filter copies) and
/// canonicalises every explored state to its orbit representative, so the
/// full chain is never materialised.  The quotient is an exact ordinary
/// lumping; it composes with ReductionPolicy (symmetry first, splitter-
/// queue refinement on the residual).  See engine/symmetry.hpp.
using engine::SymmetryPolicy;
using engine::default_symmetry_policy;

/// Whether the sweep runner fuses cells that share a chain and time grid
/// into one batched uniformisation (ctmc::BatchTransientEvolver over the
/// multi-RHS kernels).
///   Off  — every cell walks its grid with its own TransientEvolver.
///   Auto — fusible cells (survivability and instantaneous cost, whose
///          initial distributions become the batch columns) are evolved as
///          one CSR×dense-block product per step.  Batched columns are
///          bitwise identical to the single-vector evolution, so every
///          exported byte is the same under either policy.
enum class BatchPolicy { Off, Auto };

/// Process-wide default, read once from the ARCADE_BATCH environment
/// variable ("auto"/"on"/"1" select Auto; anything else, or unset, is Off).
/// Lets CI force the whole test suite through the batched engine.
[[nodiscard]] BatchPolicy default_batch_policy();

/// Name of the chain label marking states with service level >= `level`
/// (within the library-wide 1e-9 tolerance): "service>=<level>", the level
/// printed round-trip exact (%.17g).  The compiler registers one such label
/// per distinct positive service level of the model, so CSL formulas can
/// name the paper's service intervals (see watertree::properties).
[[nodiscard]] std::string service_label(double level);

struct CompileOptions {
    Encoding encoding = Encoding::Individual;
    std::size_t max_states = 50'000'000;
    /// Worker threads for the sharded exploration; 0 = hardware concurrency.
    /// Any thread count produces the identical CTMC.
    unsigned threads = 0;
    /// Run analyses on the lumped quotient of the compiled chain?
    ReductionPolicy reduction = default_reduction_policy();
    /// Explore the symmetry quotient directly (ARCADE_SYMMETRY=off|auto)?
    SymmetryPolicy symmetry = default_symmetry_policy();
    /// Model linter stage (analysis/lint.hpp), run on the reactive-modules
    /// translation before exploration.  Warn reports findings to stderr;
    /// Error additionally throws ModelError when any error-severity finding
    /// exists.  Overridable per process via ARCADE_LINT=off|warn|error.
    analysis::LintLevel lint = analysis::default_lint_level();
    /// Expression evaluator requested for this compile
    /// (ARCADE_EVAL=interp|vm|codegen).  The Arcade encoders themselves are
    /// hand-written native transition functions — stage 0 of the
    /// compilation ladder whose stages 1 (bytecode VM) and 2 (generated
    /// C++, expr/codegen.hpp) serve the reactive-modules pipeline — so the
    /// mode does not change how this compiler runs; it is recorded for
    /// provenance and keys the session caches, keeping mode-comparison
    /// measurements honest.  Every mode yields the bitwise-identical chain.
    expr::EvalMode eval = expr::default_eval_mode();
    /// Batched multi-vector transient evolution (ARCADE_BATCH=off|auto).
    /// Recorded for provenance like `eval`, but deliberately NOT part of the
    /// session cache key: batching changes how grids are walked, never what
    /// is compiled — the artefact is identical under either policy.
    BatchPolicy batch = default_batch_policy();
};

/// A disaster for survivability analysis: how many components of each phase
/// have failed at time zero (GOOD model — Given Occurrence Of Disaster).
struct Disaster {
    std::string name;
    /// failed_per_phase[p] = number of failed components in phase p.
    std::vector<std::size_t> failed_per_phase;
};

/// The compiled model: CTMC + per-state service levels + cost rewards.
/// The explored states live bit-packed in an engine::StateStore rather than
/// the seed's unordered_map over heap-allocated encoded vectors.
class CompiledModel {
public:
    CompiledModel(ctmc::Ctmc chain, std::vector<double> service,
                  rewards::RewardStructure cost, ArcadeModel model,
                  engine::StateStore store, Encoding encoding,
                  ReductionPolicy reduction = ReductionPolicy::Off,
                  SymmetryPolicy symmetry = SymmetryPolicy::Off,
                  std::shared_ptr<const engine::StateSymmetry> state_symmetry = nullptr,
                  double symmetry_full_states = 0.0, double symmetry_seconds = 0.0);

    [[nodiscard]] const ctmc::Ctmc& chain() const noexcept { return chain_; }
    [[nodiscard]] ctmc::Ctmc& chain() noexcept { return chain_; }
    [[nodiscard]] std::size_t state_count() const noexcept { return chain_.state_count(); }
    [[nodiscard]] std::size_t transition_count() const noexcept {
        return chain_.transition_count();
    }

    /// Quantitative service level of every state (paper Section 3).
    [[nodiscard]] const std::vector<double>& service_levels() const noexcept {
        return service_;
    }

    /// States with service level >= x (within 1e-9 tolerance).
    [[nodiscard]] std::vector<bool> service_at_least(double x) const;
    /// States delivering full service (the paper's operational criterion).
    [[nodiscard]] std::vector<bool> operational_states() const;
    /// States delivering no service at all.
    [[nodiscard]] std::vector<bool> total_failure_states() const;

    /// Repair-cost reward structure: 3/h per failed component + 1/h per
    /// idle crew (paper Section 5), honouring per-model overrides.
    [[nodiscard]] const rewards::RewardStructure& cost_reward() const noexcept { return cost_; }

    [[nodiscard]] const ArcadeModel& model() const noexcept { return model_; }
    [[nodiscard]] Encoding encoding() const noexcept { return encoding_; }
    [[nodiscard]] ReductionPolicy reduction() const noexcept { return reduction_; }
    [[nodiscard]] SymmetryPolicy symmetry() const noexcept { return symmetry_; }

    /// True when the chain is a symmetry quotient over nontrivial orbits
    /// (policy Auto and at least one interchangeable group of size >= 2).
    [[nodiscard]] bool symmetry_reduced() const noexcept {
        return state_symmetry_ != nullptr && !state_symmetry_->trivial();
    }

    /// Exact state count of the full (unreduced) chain: the sum of orbit
    /// sizes over the explored representatives — recovered without ever
    /// materialising the full chain (engine/symmetry.hpp explains why this
    /// is exact).  Equals state_count() when no symmetry was applied.
    [[nodiscard]] double symmetry_full_states() const noexcept {
        return symmetry_reduced() ? symmetry_full_states_
                                  : static_cast<double>(state_count());
    }

    /// full states / quotient states (1.0 when symmetry is off/trivial).
    [[nodiscard]] double symmetry_ratio() const noexcept {
        return state_count() == 0
                   ? 1.0
                   : symmetry_full_states() / static_cast<double>(state_count());
    }

    /// Wall seconds of the post-exploration orbit accounting pass (the
    /// canonicalisation machinery outside the BFS hot path); 0 when off.
    [[nodiscard]] double symmetry_seconds() const noexcept { return symmetry_seconds_; }

    /// The detected orbit structure (null when symmetry is off or trivial).
    [[nodiscard]] const engine::StateSymmetry* state_symmetry() const noexcept {
        return state_symmetry_.get();
    }

    /// Findings of the lint stage that compiled this model (0/0 when the
    /// stage was off or the model has no reactive-modules translation).
    /// Warnings include notes; the AnalysisSession aggregates these into its
    /// lint_warnings/lint_errors counters.
    [[nodiscard]] int lint_warnings() const noexcept { return lint_warnings_; }
    [[nodiscard]] int lint_errors() const noexcept { return lint_errors_; }
    /// Set by arcade::compile after the lint stage runs.
    void set_lint_counts(int warnings, int errors) noexcept {
        lint_warnings_ = warnings;
        lint_errors_ = errors;
    }

    /// The model's full measure signature: every chain label plus the
    /// service-level and cost-rate vectors — the union of everything any
    /// measure in this library reads, so ONE quotient serves them all.
    [[nodiscard]] ctmc::LumpSignature lump_signature() const;

    /// The strong-bisimulation quotient of the chain w.r.t.
    /// lump_signature(), computed lazily once per model (thread-safe) and
    /// shared by every consumer.  `.second` reports whether this call built
    /// it (false = cache hit); the AnalysisSession turns that into its
    /// lump_hits/lump_misses counters.  Because the session deduplicates
    /// models by fingerprint and each model holds one quotient over its
    /// canonical signature, identical (model, signature) requests anywhere
    /// in the process share one refinement.
    [[nodiscard]] std::pair<std::shared_ptr<const ctmc::QuotientCtmc>, bool> quotient()
        const;

    /// Index of the all-up initial state (always 0).
    [[nodiscard]] std::size_t initial_state() const noexcept { return 0; }

    /// Index of the canonical state right after `disaster` struck: the
    /// policy-best failed component is in repair, the rest queue in
    /// component-index order (the paper: "we use the priority of components
    /// to define the repair ordering").  Throws ModelError when the disaster
    /// is inconsistent with the model.
    [[nodiscard]] std::size_t disaster_state(const Disaster& disaster) const;

    /// Point distribution on the disaster state (GOOD-model initial
    /// distribution).
    [[nodiscard]] std::vector<double> disaster_distribution(const Disaster& disaster) const;

    /// Raw encoded state, decoded from the packed store (tests/debugging).
    [[nodiscard]] std::vector<std::int16_t> encoded_state(std::size_t index) const;

    /// The packed state store (engine layer; exposed for perf counters).
    [[nodiscard]] const engine::StateStore& state_store() const noexcept { return store_; }

private:
    ctmc::Ctmc chain_;
    std::vector<double> service_;
    rewards::RewardStructure cost_;
    ArcadeModel model_;
    engine::StateStore store_;
    Encoding encoding_;
    ReductionPolicy reduction_ = ReductionPolicy::Off;
    SymmetryPolicy symmetry_ = SymmetryPolicy::Off;
    std::shared_ptr<const engine::StateSymmetry> state_symmetry_;
    double symmetry_full_states_ = 0.0;
    double symmetry_seconds_ = 0.0;
    int lint_warnings_ = 0;
    int lint_errors_ = 0;
    /// Lazy quotient cache.  The mutex lives behind a shared_ptr so the
    /// model stays movable (run_compile returns by value).
    mutable std::shared_ptr<std::mutex> quotient_mutex_ = std::make_shared<std::mutex>();
    mutable std::shared_ptr<const ctmc::QuotientCtmc> quotient_;

    [[nodiscard]] std::size_t lookup(const std::vector<std::int16_t>& encoded) const;
};

/// Compiles `model` (validated) into an explicit CTMC.
[[nodiscard]] CompiledModel compile(const ArcadeModel& model,
                                    const CompileOptions& options = {});

/// Returns a copy of `model` with every repair unit replaced by
/// RepairPolicy::None — the chain used for reliability, where repairs are
/// not considered (paper Section 5: "this measure does not consider
/// repairs").
[[nodiscard]] ArcadeModel without_repair(const ArcadeModel& model);

}  // namespace arcade::core

#endif  // ARCADE_ARCADE_COMPILER_HPP
