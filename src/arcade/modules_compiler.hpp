// Translation of Arcade models into stochastic reactive modules — the
// pipeline of the paper's Fig. 1 (Arcade-XML -> PRISM reactive modules).
//
// Every basic component becomes a module with a status variable
// (0 up, 1 waiting, 2 in repair) and a queue rank; repair units become
// synchronisation-free guarded commands implementing the scheduling
// policies.  The generated system explores to a CTMC that is isomorphic to
// the native compiler's (asserted by tests), and can be exported as PRISM
// source via prism::write_prism for cross-validation with the real PRISM.
//
// This path exists for fidelity and interoperability; the native compiler
// (compiler.hpp) is the fast path the benchmarks use.
#ifndef ARCADE_ARCADE_MODULES_COMPILER_HPP
#define ARCADE_ARCADE_MODULES_COMPILER_HPP

#include "arcade/types.hpp"
#include "modules/modules.hpp"

namespace arcade::core {

/// Builds the reactive-modules translation of `model` (individual encoding,
/// non-preemptive tracked-slot semantics — the paper's encoding).
/// Labels installed: "operational", "down", "total_failure".
/// Reward structure installed: "cost".
///
/// Restrictions (throws ModelError): preemptive repair units are not
/// representable in this translation; use the native compiler for those.
[[nodiscard]] modules::ModuleSystem to_reactive_modules(const ArcadeModel& model);

}  // namespace arcade::core

#endif  // ARCADE_ARCADE_MODULES_COMPILER_HPP
