#include "arcade/modules_compiler.hpp"

#include <algorithm>
#include <map>

#include "support/errors.hpp"

namespace arcade::core {

namespace {

using expr::BinaryOp;
using expr::Expr;
using expr::UnaryOp;

/// Component variable names.  Status: 0 up, 1 waiting, 2 in repair.
std::string status_var(const BasicComponent& c) { return "s_" + c.name; }
std::string rank_var(const BasicComponent& c) { return "q_" + c.name; }

Expr num(long long v) { return Expr::integer(v); }
Expr var(const std::string& name) { return Expr::identifier(name); }
Expr eq(Expr a, Expr b) { return Expr::binary(BinaryOp::Eq, std::move(a), std::move(b)); }
Expr land(Expr a, Expr b) { return Expr::binary(BinaryOp::And, std::move(a), std::move(b)); }
Expr land_all(std::vector<Expr> xs) {
    ARCADE_ASSERT(!xs.empty(), "empty conjunction");
    Expr acc = xs.front();
    for (std::size_t i = 1; i < xs.size(); ++i) acc = land(std::move(acc), xs[i]);
    return acc;
}
Expr add(Expr a, Expr b) { return Expr::binary(BinaryOp::Add, std::move(a), std::move(b)); }

/// sum over comps of (s_c = status ? 1 : 0)
Expr count_with_status(const ArcadeModel& model, const std::vector<std::size_t>& comps,
                       long long status) {
    Expr acc = num(0);
    for (std::size_t c : comps) {
        acc = add(std::move(acc),
                  Expr::ite(eq(var(status_var(model.components[c])), num(status)), num(1),
                            num(0)));
    }
    return acc;
}

Expr count_down(const ArcadeModel& model, const std::vector<std::size_t>& comps) {
    Expr acc = num(0);
    for (std::size_t c : comps) {
        acc = add(std::move(acc),
                  Expr::ite(Expr::binary(BinaryOp::Gt, var(status_var(model.components[c])),
                                         num(0)),
                            num(1), num(0)));
    }
    return acc;
}

/// Priority-ordered classes of a queue repair unit (see compiler.cpp).
std::vector<std::vector<std::size_t>> policy_classes(const ArcadeModel& model,
                                                     const RepairUnit& ru) {
    std::vector<std::pair<double, std::size_t>> keyed;
    for (std::size_t i = 0; i < ru.components.size(); ++i) {
        const std::size_t c = ru.components[i];
        double key = 0.0;
        switch (ru.policy) {
            case RepairPolicy::FastestRepairFirst:
                key = -model.components[c].repair_rate();
                break;
            case RepairPolicy::FastestFailureFirst:
                key = -model.components[c].failure_rate();
                break;
            case RepairPolicy::Priority: key = ru.priorities[i]; break;
            default: key = 0.0; break;
        }
        keyed.emplace_back(key, c);
    }
    std::sort(keyed.begin(), keyed.end());
    std::vector<std::vector<std::size_t>> classes;
    double prev = 0.0;
    for (std::size_t i = 0; i < keyed.size(); ++i) {
        if (i == 0 || keyed[i].first != prev) {
            classes.push_back({keyed[i].second});
        } else {
            classes.back().push_back(keyed[i].second);
        }
        prev = keyed[i].first;
    }
    for (auto& cls : classes) std::sort(cls.begin(), cls.end());
    return classes;
}

/// Guard: no component of classes[0..k-1] is waiting, and `w` (in class k)
/// is the FIFO head of class k.
Expr head_of_best_class(const ArcadeModel& model,
                        const std::vector<std::vector<std::size_t>>& classes, std::size_t k,
                        std::size_t w) {
    std::vector<Expr> terms;
    terms.push_back(eq(var(status_var(model.components[w])), num(1)));
    terms.push_back(eq(var(rank_var(model.components[w])), num(1)));
    for (std::size_t kk = 0; kk < k; ++kk) {
        for (std::size_t m : classes[kk]) {
            terms.push_back(Expr::unary(
                UnaryOp::Not, eq(var(status_var(model.components[m])), num(1))));
        }
    }
    return land_all(std::move(terms));
}

/// Assignments that remove the head `w` from its class queue.
std::vector<modules::Assignment> dequeue_head(const ArcadeModel& model,
                                              const std::vector<std::size_t>& cls,
                                              std::size_t w, long long new_status) {
    std::vector<modules::Assignment> out;
    out.push_back({status_var(model.components[w]), num(new_status)});
    out.push_back({rank_var(model.components[w]), num(0)});
    for (std::size_t m : cls) {
        if (m == w) continue;
        // waiting members behind the head shift forward
        out.push_back({rank_var(model.components[m]),
                       Expr::ite(land(eq(var(status_var(model.components[m])), num(1)),
                                      Expr::binary(BinaryOp::Gt,
                                                   var(rank_var(model.components[m])), num(1))),
                                 Expr::binary(BinaryOp::Sub,
                                              var(rank_var(model.components[m])), num(1)),
                                 var(rank_var(model.components[m])))});
    }
    return out;
}

}  // namespace

modules::ModuleSystem to_reactive_modules(const ArcadeModel& model) {
    model.validate();
    modules::ModuleSystem system;
    system.name = model.name;

    std::vector<bool> covered(model.components.size(), false);

    for (const auto& ru : model.repair_units) {
        if (ru.preemptive) {
            throw ModelError(
                "preemptive repair units have no reactive-modules translation; "
                "use the native compiler");
        }
        if (ru.policy != RepairPolicy::Dedicated && ru.policy != RepairPolicy::None &&
            ru.crews > 2) {
            throw ModelError(
                "the reactive-modules translation supports at most two crews per "
                "queueing repair unit (the paper's range); use the native compiler");
        }

        modules::Module module;
        module.name = ru.name;
        const bool queue =
            ru.policy != RepairPolicy::Dedicated && ru.policy != RepairPolicy::None;

        // Variables.
        for (std::size_t c : ru.components) {
            covered[c] = true;
            const auto& comp = model.components[c];
            modules::VarDecl status;
            status.name = status_var(comp);
            status.low = 0;
            status.high = ru.policy == RepairPolicy::None ? 1 : 2;
            module.variables.push_back(status);
        }
        std::vector<std::vector<std::size_t>> classes;
        if (queue) {
            classes = policy_classes(model, ru);
            for (const auto& cls : classes) {
                for (std::size_t c : cls) {
                    modules::VarDecl rank;
                    rank.name = rank_var(model.components[c]);
                    rank.low = 0;
                    rank.high = static_cast<long long>(cls.size());
                    module.variables.push_back(rank);
                }
            }
        }

        // Commands.
        if (ru.policy == RepairPolicy::None) {
            for (std::size_t c : ru.components) {
                const auto& comp = model.components[c];
                modules::Command fail;
                fail.guard = eq(var(status_var(comp)), num(0));
                fail.alternatives.push_back(
                    {Expr::real(comp.failure_rate()), {{status_var(comp), num(1)}}});
                module.commands.push_back(std::move(fail));
            }
        } else if (ru.policy == RepairPolicy::Dedicated) {
            for (std::size_t c : ru.components) {
                const auto& comp = model.components[c];
                modules::Command fail;
                fail.guard = eq(var(status_var(comp)), num(0));
                fail.alternatives.push_back(
                    {Expr::real(comp.failure_rate()), {{status_var(comp), num(2)}}});
                module.commands.push_back(std::move(fail));
                modules::Command repair;
                repair.guard = eq(var(status_var(comp)), num(2));
                repair.alternatives.push_back(
                    {Expr::real(comp.repair_rate()), {{status_var(comp), num(0)}}});
                module.commands.push_back(std::move(repair));
            }
        } else {
            const Expr idle = eq(count_with_status(model, ru.components, 2), num(0));
            const Expr busy = Expr::unary(UnaryOp::Not, idle);
            const Expr none_waiting = eq(count_with_status(model, ru.components, 1), num(0));

            // Failures.
            for (std::size_t k = 0; k < classes.size(); ++k) {
                for (std::size_t c : classes[k]) {
                    const auto& comp = model.components[c];
                    // crew idle: straight into repair
                    modules::Command direct;
                    direct.guard = land(eq(var(status_var(comp)), num(0)), idle);
                    direct.alternatives.push_back(
                        {Expr::real(comp.failure_rate()), {{status_var(comp), num(2)}}});
                    module.commands.push_back(std::move(direct));
                    // crew busy: append to the class FIFO
                    std::vector<std::size_t> others;
                    for (std::size_t m : classes[k]) {
                        if (m != c) others.push_back(m);
                    }
                    modules::Command queue_up;
                    queue_up.guard = land(eq(var(status_var(comp)), num(0)), busy);
                    queue_up.alternatives.push_back(
                        {Expr::real(comp.failure_rate()),
                         {{status_var(comp), num(1)},
                          {rank_var(comp),
                           add(num(1), count_with_status(model, others, 1))}}});
                    module.commands.push_back(std::move(queue_up));
                }
            }

            // Tracked-repair completion.
            for (std::size_t t : ru.components) {
                const auto& tcomp = model.components[t];
                // nothing waiting: crew goes idle
                modules::Command done;
                done.guard = land(eq(var(status_var(tcomp)), num(2)), none_waiting);
                done.alternatives.push_back(
                    {Expr::real(tcomp.repair_rate()), {{status_var(tcomp), num(0)}}});
                module.commands.push_back(std::move(done));
                // promote the head of the best waiting class
                for (std::size_t k = 0; k < classes.size(); ++k) {
                    for (std::size_t w : classes[k]) {
                        if (w == t) continue;
                        modules::Command promote;
                        promote.guard = land(eq(var(status_var(tcomp)), num(2)),
                                             head_of_best_class(model, classes, k, w));
                        auto assignments = dequeue_head(model, classes[k], w, 2);
                        assignments.push_back({status_var(tcomp), num(0)});
                        promote.alternatives.push_back(
                            {Expr::real(tcomp.repair_rate()), std::move(assignments)});
                        module.commands.push_back(std::move(promote));
                    }
                }
            }

            // Second crew: serves the head of the best waiting class.
            if (ru.crews >= 2) {
                for (std::size_t k = 0; k < classes.size(); ++k) {
                    for (std::size_t w : classes[k]) {
                        const auto& wcomp = model.components[w];
                        modules::Command crew2;
                        crew2.guard = head_of_best_class(model, classes, k, w);
                        crew2.alternatives.push_back({Expr::real(wcomp.repair_rate()),
                                                      dequeue_head(model, classes[k], w, 0)});
                        module.commands.push_back(std::move(crew2));
                    }
                }
            }
        }
        system.modules.push_back(std::move(module));
    }

    // Unrepairable components not covered by any repair unit.
    for (std::size_t c = 0; c < model.components.size(); ++c) {
        if (covered[c]) continue;
        const auto& comp = model.components[c];
        modules::Module module;
        module.name = "component_" + comp.name;
        modules::VarDecl status;
        status.name = status_var(comp);
        status.low = 0;
        status.high = 1;
        module.variables.push_back(status);
        modules::Command fail;
        fail.guard = eq(var(status_var(comp)), num(0));
        fail.alternatives.push_back(
            {Expr::real(comp.failure_rate()), {{status_var(comp), num(1)}}});
        module.commands.push_back(std::move(fail));
        system.modules.push_back(std::move(module));
    }

    // Labels from the service phases.
    {
        std::vector<Expr> operational_terms;
        std::vector<Expr> some_service_terms;
        for (const auto& phase : model.phases) {
            const Expr up = count_with_status(model, phase.components, 0);
            operational_terms.push_back(Expr::binary(
                BinaryOp::Ge, up, num(static_cast<long long>(phase.required))));
            some_service_terms.push_back(Expr::binary(BinaryOp::Ge, up, num(1)));
        }
        const Expr operational = land_all(std::move(operational_terms));
        const Expr some_service = land_all(std::move(some_service_terms));
        system.labels.emplace("operational", operational);
        system.labels.emplace("down", Expr::unary(UnaryOp::Not, operational));
        system.labels.emplace("total_failure", Expr::unary(UnaryOp::Not, some_service));
    }

    // Cost rewards: failed components + idle crews.
    {
        modules::RewardDecl cost;
        cost.name = "cost";
        for (const auto& comp : model.components) {
            modules::RewardItem item;
            item.guard = Expr::binary(BinaryOp::Gt, var(status_var(comp)), num(0));
            item.rate = Expr::real(comp.failed_cost_rate);
            cost.items.push_back(std::move(item));
        }
        for (const auto& ru : model.repair_units) {
            if (ru.policy == RepairPolicy::None) continue;
            if (ru.policy == RepairPolicy::Dedicated) {
                for (std::size_t c : ru.components) {
                    modules::RewardItem item;
                    item.guard = eq(var(status_var(model.components[c])), num(0));
                    item.rate = Expr::real(ru.idle_cost_rate);
                    cost.items.push_back(std::move(item));
                }
            } else {
                for (std::size_t j = 0; j < ru.crews; ++j) {
                    modules::RewardItem item;
                    item.guard = eq(count_down(model, ru.components),
                                    num(static_cast<long long>(j)));
                    item.rate = Expr::real(static_cast<double>(ru.crews - j) *
                                           ru.idle_cost_rate);
                    cost.items.push_back(std::move(item));
                }
            }
        }
        system.rewards.push_back(std::move(cost));
    }

    return system;
}

}  // namespace arcade::core
