// General AND/OR/K-of-N fault trees and the paper's quantitative service
// tree transformation.
//
// A fault tree evaluates to true when the (sub)system is DOWN; literals are
// component failure modes.  The quantitative service tree is the dual
// (AND <-> OR swap) evaluated over *operational* literals with
//   ANDq(x...) = min(x...),    ORq(x...) = mean(x...)
// (eqs. (1) and (2) of the paper); a K-of-N fault gate ("fails when at least
// K of N have failed") dualises to the spare gate min(1, up/(N-K+1)).
#ifndef ARCADE_ARCADE_FAULT_TREE_HPP
#define ARCADE_ARCADE_FAULT_TREE_HPP

#include <memory>
#include <string>
#include <vector>

#include "arcade/types.hpp"

namespace arcade::core {

class FaultTree {
public:
    enum class Gate { Literal, And, Or, KOfN, Spare };

    /// Leaf: fails iff `component` is down.
    static FaultTree literal(std::size_t component);
    /// Fails iff all children fail.
    static FaultTree all_of(std::vector<FaultTree> children);
    /// Fails iff any child fails.
    static FaultTree any_of(std::vector<FaultTree> children);
    /// Fails iff at least `k` children fail.
    static FaultTree k_of_n(std::size_t k, std::vector<FaultTree> children);

    /// Spare-managed group: `required` of the children must work for full
    /// service.  Qualitatively fails only when ALL children fail (no
    /// service); quantitatively delivers min(1, working/required) — the
    /// paper's rule that spares do not create extra service intervals.
    static FaultTree spare_group(std::size_t required, std::vector<FaultTree> children);

    /// True iff the subtree is failed given per-component up/down status.
    [[nodiscard]] bool failed(const std::vector<bool>& component_up) const;

    /// Quantitative service level in [0,1] of the *dual* service tree
    /// (paper Section 3): AND->mean over child service, OR->min,
    /// KofN -> min(1, up/(n-k+1)) over literal children.
    [[nodiscard]] double service_level(const std::vector<bool>& component_up) const;

    /// All distinct service levels the tree can produce, ascending
    /// (enumerated exactly from the gate structure, not by state-space
    /// sweeps).  Useful for picking the paper's service intervals.
    [[nodiscard]] std::vector<double> attainable_service_levels(
        std::size_t component_count) const;

    [[nodiscard]] Gate gate() const noexcept { return gate_; }
    [[nodiscard]] std::size_t component() const;
    [[nodiscard]] const std::vector<FaultTree>& children() const noexcept { return children_; }
    [[nodiscard]] std::size_t threshold() const noexcept { return k_; }

    /// The standard fault tree of a phase-structured Arcade model:
    /// the system is down when some phase has fewer than `required`
    /// working components ("fully operational" criterion when evaluated
    /// qualitatively; the service dual gives the quantitative levels).
    static FaultTree down_tree(const ArcadeModel& model);

    /// The total-failure tree: down when some phase delivers no service at
    /// all (all members failed).
    static FaultTree total_failure_tree(const ArcadeModel& model);

private:
    Gate gate_ = Gate::Literal;
    std::size_t component_ = 0;
    std::size_t k_ = 0;
    std::vector<FaultTree> children_;
};

/// Phase-based service evaluation (the fast path the compiler uses):
/// service = min over phases; plain phase = up/n, spare phase =
/// min(1, up/required).  Equals the FaultTree dual on phase-structured
/// models (asserted by tests).
[[nodiscard]] double phase_service_level(const ArcadeModel& model,
                                         const std::vector<std::size_t>& up_per_phase);

/// Distinct attainable service levels of a phase-structured model,
/// ascending, including 0 and 1.
[[nodiscard]] std::vector<double> phase_service_levels(const ArcadeModel& model);

}  // namespace arcade::core

#endif  // ARCADE_ARCADE_FAULT_TREE_HPP
