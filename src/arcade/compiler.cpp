#include "arcade/compiler.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "arcade/fault_tree.hpp"
#include "arcade/modules_compiler.hpp"
#include "engine/explore.hpp"
#include "linalg/csr_matrix.hpp"
#include "support/errors.hpp"

namespace arcade::core {

namespace {

using State = std::vector<std::int16_t>;

/// How a repair unit behaves for encoding purposes.
enum class RuKind { None, Dedicated, Queue };

struct RuPlan {
    RuKind kind = RuKind::None;
    std::size_t crews = 1;
    bool preemptive = false;
    double idle_cost_rate = 1.0;
    /// classes in priority order (best first); members in component-index order
    std::vector<std::vector<std::size_t>> classes;
    std::vector<std::size_t> components;  // all covered components
};

struct CompPlan {
    std::size_t ru = SIZE_MAX;     // repair unit index (SIZE_MAX = unrepairable)
    std::size_t cls = SIZE_MAX;    // class within the RU (queue RUs only)
    std::size_t phase = SIZE_MAX;  // service phase
    double frate = 0.0;
    double rrate = 0.0;
};

/// A lumped group: exchangeable components (same RU, class, phase, rates).
struct Group {
    std::size_t ru = SIZE_MAX;
    std::size_t cls = SIZE_MAX;
    std::size_t phase = SIZE_MAX;
    std::size_t size = 0;
    double frate = 0.0;
    double rrate = 0.0;
    double failed_cost_rate = 3.0;
    std::vector<std::size_t> members;
};

struct Plan {
    std::vector<RuPlan> rus;
    std::vector<CompPlan> comps;
    std::vector<Group> groups;                       // lumped encoding
    std::vector<std::vector<std::size_t>> ru_groups; // groups per RU, class-major order
};

double policy_key(const RepairUnit& ru, const BasicComponent& c, int priority) {
    switch (ru.policy) {
        case RepairPolicy::FastestRepairFirst: return -c.repair_rate();
        case RepairPolicy::FastestFailureFirst: return -c.failure_rate();
        case RepairPolicy::Priority: return static_cast<double>(priority);
        default: return 0.0;  // FCFS: single class
    }
}

Plan make_plan(const ArcadeModel& model) {
    Plan plan;
    plan.comps.resize(model.components.size());

    for (std::size_t p = 0; p < model.phases.size(); ++p) {
        for (std::size_t idx : model.phases[p].components) {
            plan.comps[idx].phase = p;
        }
    }
    for (std::size_t c = 0; c < model.components.size(); ++c) {
        plan.comps[c].frate = model.components[c].failure_rate();
        plan.comps[c].rrate = model.components[c].repair_rate();
    }

    for (std::size_t r = 0; r < model.repair_units.size(); ++r) {
        const RepairUnit& ru = model.repair_units[r];
        RuPlan rp;
        rp.crews = ru.crews;
        rp.preemptive = ru.preemptive;
        rp.idle_cost_rate = ru.idle_cost_rate;
        rp.components = ru.components;
        std::sort(rp.components.begin(), rp.components.end());
        switch (ru.policy) {
            case RepairPolicy::None: rp.kind = RuKind::None; break;
            case RepairPolicy::Dedicated: rp.kind = RuKind::Dedicated; break;
            default: rp.kind = RuKind::Queue; break;
        }
        if (rp.kind == RuKind::Queue) {
            // group components by policy key; classes sorted best-first
            std::vector<std::pair<double, std::size_t>> keyed;
            for (std::size_t i = 0; i < ru.components.size(); ++i) {
                const std::size_t c = ru.components[i];
                const int prio =
                    ru.policy == RepairPolicy::Priority ? ru.priorities[i] : 0;
                keyed.emplace_back(policy_key(ru, model.components[c], prio), c);
            }
            std::sort(keyed.begin(), keyed.end());
            double prev_key = 0.0;
            for (std::size_t i = 0; i < keyed.size(); ++i) {
                if (i == 0 || keyed[i].first != prev_key) {
                    rp.classes.push_back({keyed[i].second});
                } else {
                    rp.classes.back().push_back(keyed[i].second);
                }
                prev_key = keyed[i].first;
            }
            // keep members in component-index order within each class
            for (auto& cls : rp.classes) std::sort(cls.begin(), cls.end());
            for (std::size_t k = 0; k < rp.classes.size(); ++k) {
                for (std::size_t c : rp.classes[k]) {
                    plan.comps[c].ru = r;
                    plan.comps[c].cls = k;
                }
            }
        } else {
            for (std::size_t c : ru.components) {
                plan.comps[c].ru = r;
                plan.comps[c].cls = 0;
            }
        }
        plan.rus.push_back(std::move(rp));
    }

    // Lumped groups: components sharing (ru, cls, phase, rates, cost).
    for (std::size_t c = 0; c < model.components.size(); ++c) {
        const CompPlan& cp = plan.comps[c];
        bool placed = false;
        for (auto& g : plan.groups) {
            if (g.ru == cp.ru && g.cls == cp.cls && g.phase == cp.phase &&
                g.frate == cp.frate && g.rrate == cp.rrate &&
                g.failed_cost_rate == model.components[c].failed_cost_rate) {
                g.members.push_back(c);
                ++g.size;
                placed = true;
                break;
            }
        }
        if (!placed) {
            Group g;
            g.ru = cp.ru;
            g.cls = cp.cls;
            g.phase = cp.phase;
            g.size = 1;
            g.frate = cp.frate;
            g.rrate = cp.rrate;
            g.failed_cost_rate = model.components[c].failed_cost_rate;
            g.members.push_back(c);
            plan.groups.push_back(std::move(g));
        }
    }
    plan.ru_groups.resize(plan.rus.size());
    for (std::size_t r = 0; r < plan.rus.size(); ++r) {
        // class-major (priority) order
        for (std::size_t k = 0; k < std::max<std::size_t>(plan.rus[r].classes.size(), 1); ++k) {
            for (std::size_t g = 0; g < plan.groups.size(); ++g) {
                if (plan.groups[g].ru == r &&
                    (plan.rus[r].kind != RuKind::Queue || plan.groups[g].cls == k)) {
                    plan.ru_groups[r].push_back(g);
                }
            }
            if (plan.rus[r].kind != RuKind::Queue) break;
        }
    }
    return plan;
}

// ---------------------------------------------------------------------------
// Individual encoding.
// Layout: [status_0 .. status_{C-1}, rank_0 .. rank_{C-1}]
//   status: 0 = up, 1 = down-waiting (or plain down), 2 = down-in-repair.
//   rank: 1-based FIFO position among waiting components of the same class.
// ---------------------------------------------------------------------------

constexpr std::int16_t kUp = 0;
constexpr std::int16_t kWaiting = 1;
constexpr std::int16_t kInRepair = 2;

class IndividualEncoder {
public:
    IndividualEncoder(const ArcadeModel& model, const Plan& plan)
        : model_(model), plan_(plan), n_(model.components.size()) {}

    [[nodiscard]] State initial() const { return State(2 * n_, 0); }

    /// Bit-packing ranges: per-component status in [0,2] and FIFO rank in
    /// [0, class size] (always 0 for dedicated/unrepaired components).
    [[nodiscard]] std::vector<engine::FieldSpec> layout() const {
        std::vector<engine::FieldSpec> fields(2 * n_, engine::FieldSpec{0, 0});
        for (std::size_t c = 0; c < n_; ++c) {
            fields[c] = engine::FieldSpec{0, 2};
            const std::size_t ru = plan_.comps[c].ru;
            if (ru != SIZE_MAX && plan_.rus[ru].kind == RuKind::Queue) {
                const auto& cls = plan_.rus[ru].classes[plan_.comps[c].cls];
                fields[n_ + c] =
                    engine::FieldSpec{0, static_cast<std::int64_t>(cls.size())};
            }
        }
        return fields;
    }

    [[nodiscard]] std::int16_t status(const State& s, std::size_t c) const { return s[c]; }
    [[nodiscard]] std::int16_t rank(const State& s, std::size_t c) const { return s[n_ + c]; }

    /// The tracked in-repair component of a queue RU, or SIZE_MAX.
    [[nodiscard]] std::size_t tracked(const State& s, std::size_t ru) const {
        for (std::size_t c : plan_.rus[ru].components) {
            if (s[c] == kInRepair) return c;
        }
        return SIZE_MAX;
    }

    [[nodiscard]] std::size_t waiting_in_class(const State& s, std::size_t ru,
                                               std::size_t cls) const {
        std::size_t n = 0;
        for (std::size_t c : plan_.rus[ru].classes[cls]) {
            if (s[c] == kWaiting) ++n;
        }
        return n;
    }

    /// Waiting components served by derived crews, best-first, up to `k`.
    [[nodiscard]] std::vector<std::size_t> top_waiting(const State& s, std::size_t ru,
                                                       std::size_t k) const {
        std::vector<std::size_t> out;
        if (k == 0) return out;
        for (const auto& cls : plan_.rus[ru].classes) {
            // members sorted by rank
            std::vector<std::pair<std::int16_t, std::size_t>> waiting;
            for (std::size_t c : cls) {
                if (s[c] == kWaiting) waiting.emplace_back(rank(s, c), c);
            }
            std::sort(waiting.begin(), waiting.end());
            for (const auto& [rk, c] : waiting) {
                out.push_back(c);
                if (out.size() == k) return out;
            }
        }
        return out;
    }

    /// Removes `c` from its class queue: ranks above it shift down.
    void remove_from_queue(State& s, std::size_t c) const {
        const std::size_t ru = plan_.comps[c].ru;
        const std::size_t cls = plan_.comps[c].cls;
        const std::int16_t r = s[n_ + c];
        for (std::size_t m : plan_.rus[ru].classes[cls]) {
            if (s[m] == kWaiting && s[n_ + m] > r) --s[n_ + m];
        }
        s[n_ + c] = 0;
    }

    void append_to_queue(State& s, std::size_t c) const {
        const std::size_t ru = plan_.comps[c].ru;
        const std::size_t cls = plan_.comps[c].cls;
        s[c] = kWaiting;
        s[n_ + c] =
            static_cast<std::int16_t>(waiting_in_class(s, ru, cls));  // includes itself now
    }

    template <typename Emit>
    void successors(const State& s, Emit&& emit) const {
        // failures
        for (std::size_t c = 0; c < n_; ++c) {
            if (s[c] != kUp) continue;
            State t = s;
            const std::size_t ru = plan_.comps[c].ru;
            if (ru == SIZE_MAX || plan_.rus[ru].kind == RuKind::None) {
                t[c] = kWaiting;
            } else if (plan_.rus[ru].kind == RuKind::Dedicated) {
                t[c] = kInRepair;
            } else if (plan_.rus[ru].preemptive) {
                append_to_queue(t, c);
            } else {
                if (tracked(s, ru) == SIZE_MAX) {
                    t[c] = kInRepair;
                } else {
                    append_to_queue(t, c);
                }
            }
            emit(std::move(t), plan_.comps[c].frate);
        }
        // repairs
        for (std::size_t r = 0; r < plan_.rus.size(); ++r) {
            const RuPlan& ru = plan_.rus[r];
            if (ru.kind == RuKind::None) continue;
            if (ru.kind == RuKind::Dedicated) {
                for (std::size_t c : ru.components) {
                    if (s[c] != kInRepair) continue;
                    State t = s;
                    t[c] = kUp;
                    emit(std::move(t), plan_.comps[c].rrate);
                }
                continue;
            }
            if (ru.preemptive) {
                for (std::size_t c : top_waiting(s, r, ru.crews)) {
                    State t = s;
                    remove_from_queue(t, c);
                    t[c] = kUp;
                    emit(std::move(t), plan_.comps[c].rrate);
                }
                continue;
            }
            const std::size_t tr = tracked(s, r);
            if (tr == SIZE_MAX) continue;
            {
                // crew 1 completes the tracked repair; the best waiting
                // component (if any) is promoted into the tracked slot.
                State t = s;
                t[tr] = kUp;
                const auto next = top_waiting(s, r, 1);
                if (!next.empty()) {
                    const std::size_t w = next.front();
                    remove_from_queue(t, w);
                    t[w] = kInRepair;
                }
                emit(std::move(t), plan_.comps[tr].rrate);
            }
            // derived crews 2..k complete policy-best waiting repairs
            for (std::size_t c : top_waiting(s, r, ru.crews - 1)) {
                State t = s;
                remove_from_queue(t, c);
                t[c] = kUp;
                emit(std::move(t), plan_.comps[c].rrate);
            }
        }
    }

    [[nodiscard]] double service(const State& s) const {
        std::vector<std::size_t> up(model_.phases.size(), 0);
        for (std::size_t c = 0; c < n_; ++c) {
            if (s[c] == kUp) ++up[plan_.comps[c].phase];
        }
        return phase_service_level(model_, up);
    }

    [[nodiscard]] double cost_rate(const State& s) const {
        double cost = 0.0;
        for (std::size_t c = 0; c < n_; ++c) {
            if (s[c] != kUp) cost += model_.components[c].failed_cost_rate;
        }
        for (std::size_t r = 0; r < plan_.rus.size(); ++r) {
            const RuPlan& ru = plan_.rus[r];
            if (ru.kind == RuKind::None) continue;
            std::size_t down = 0;
            for (std::size_t c : ru.components) {
                if (s[c] != kUp) ++down;
            }
            const std::size_t crews =
                ru.kind == RuKind::Dedicated ? ru.components.size() : ru.crews;
            const std::size_t busy = std::min(crews, down);
            cost += static_cast<double>(crews - busy) * ru.idle_cost_rate;
        }
        return cost;
    }

    /// Canonical post-disaster state (see CompiledModel::disaster_state).
    [[nodiscard]] State disaster(const Disaster& d) const {
        ARCADE_ASSERT(d.failed_per_phase.size() == model_.phases.size(),
                      "disaster phase arity mismatch");
        State s = initial();
        std::vector<std::size_t> failed;
        for (std::size_t p = 0; p < model_.phases.size(); ++p) {
            const auto& phase = model_.phases[p];
            if (d.failed_per_phase[p] > phase.components.size()) {
                throw ModelError("disaster '" + d.name + "' fails more components than phase '" +
                                 phase.name + "' has");
            }
            for (std::size_t i = 0; i < d.failed_per_phase[p]; ++i) {
                failed.push_back(phase.components[i]);
            }
        }
        std::sort(failed.begin(), failed.end());
        // First pass: everything waiting in index order.
        for (std::size_t c : failed) {
            const std::size_t ru = plan_.comps[c].ru;
            if (ru == SIZE_MAX || plan_.rus[ru].kind == RuKind::None) {
                s[c] = kWaiting;
            } else if (plan_.rus[ru].kind == RuKind::Dedicated) {
                s[c] = kInRepair;
            } else {
                append_to_queue(s, c);
            }
        }
        // Second pass: promote the policy-best waiting member of every
        // non-preemptive queue RU into the tracked slot.
        for (std::size_t r = 0; r < plan_.rus.size(); ++r) {
            if (plan_.rus[r].kind != RuKind::Queue || plan_.rus[r].preemptive) continue;
            const auto best = top_waiting(s, r, 1);
            if (!best.empty()) {
                remove_from_queue(s, best.front());
                s[best.front()] = kInRepair;
            }
        }
        return s;
    }

private:
    const ArcadeModel& model_;
    const Plan& plan_;
    std::size_t n_;
};

// ---------------------------------------------------------------------------
// Lumped encoding.
// Layout: [wait_0 .. wait_{G-1}, tracked_0 .. tracked_{R-1}]
//   wait_g: waiting (or plain down) members of group g.
//   tracked_r: 1 + group index of the tracked in-repair component of RU r,
//              0 when idle (only non-preemptive queue RUs use this).
// ---------------------------------------------------------------------------

class LumpedEncoder {
public:
    LumpedEncoder(const ArcadeModel& model, const Plan& plan)
        : model_(model), plan_(plan), g_(plan.groups.size()), r_(plan.rus.size()) {
        // Lumping soundness: within a queue RU class, FCFS tie-breaking
        // between *different* groups is not representable.
        for (std::size_t r = 0; r < plan_.rus.size(); ++r) {
            if (plan_.rus[r].kind != RuKind::Queue) continue;
            for (std::size_t k = 0; k < plan_.rus[r].classes.size(); ++k) {
                std::size_t groups_in_class = 0;
                for (const auto& g : plan_.groups) {
                    if (g.ru == r && g.cls == k) ++groups_in_class;
                }
                if (groups_in_class > 1) {
                    throw ModelError(
                        "lumped encoding: repair class with equal rates spans "
                        "non-exchangeable components; use the individual encoding");
                }
            }
        }
    }

    [[nodiscard]] State initial() const { return State(g_ + r_, 0); }

    /// Bit-packing ranges: waiting counters in [0, group size]; tracked slot
    /// in [0, G] for non-preemptive queue RUs, constant 0 otherwise.
    [[nodiscard]] std::vector<engine::FieldSpec> layout() const {
        std::vector<engine::FieldSpec> fields(g_ + r_, engine::FieldSpec{0, 0});
        for (std::size_t g = 0; g < g_; ++g) {
            fields[g] = engine::FieldSpec{0, static_cast<std::int64_t>(plan_.groups[g].size)};
        }
        for (std::size_t r = 0; r < r_; ++r) {
            if (plan_.rus[r].kind == RuKind::Queue && !plan_.rus[r].preemptive) {
                fields[g_ + r] = engine::FieldSpec{0, static_cast<std::int64_t>(g_)};
            }
        }
        return fields;
    }

    [[nodiscard]] std::int16_t wait(const State& s, std::size_t g) const { return s[g]; }
    [[nodiscard]] std::size_t tracked_group(const State& s, std::size_t r) const {
        return s[g_ + r] == 0 ? SIZE_MAX : static_cast<std::size_t>(s[g_ + r] - 1);
    }

    [[nodiscard]] std::size_t down_of_group(const State& s, std::size_t g) const {
        std::size_t down = static_cast<std::size_t>(s[g]);
        const std::size_t r = plan_.groups[g].ru;
        if (r != SIZE_MAX && plan_.rus[r].kind == RuKind::Queue && !plan_.rus[r].preemptive &&
            tracked_group(s, r) == g) {
            ++down;
        }
        return down;
    }

    /// Served waiting members per group for derived crews, up to k total.
    [[nodiscard]] std::vector<std::pair<std::size_t, std::size_t>> served_waiting(
        const State& s, std::size_t r, std::size_t k) const {
        std::vector<std::pair<std::size_t, std::size_t>> out;  // (group, count)
        if (k == 0) return out;
        std::size_t left = k;
        for (std::size_t g : plan_.ru_groups[r]) {
            const std::size_t w = static_cast<std::size_t>(s[g]);
            if (w == 0) continue;
            const std::size_t take = std::min(left, w);
            out.emplace_back(g, take);
            left -= take;
            if (left == 0) break;
        }
        return out;
    }

    template <typename Emit>
    void successors(const State& s, Emit&& emit) const {
        // failures
        for (std::size_t g = 0; g < g_; ++g) {
            const Group& group = plan_.groups[g];
            const std::size_t down = down_of_group(s, g);
            const std::size_t up = group.size - down;
            if (up == 0) continue;
            const double rate = static_cast<double>(up) * group.frate;
            State t = s;
            const std::size_t r = group.ru;
            if (r != SIZE_MAX && plan_.rus[r].kind == RuKind::Queue &&
                !plan_.rus[r].preemptive && tracked_group(s, r) == SIZE_MAX) {
                t[g_ + r] = static_cast<std::int16_t>(g + 1);
            } else {
                ++t[g];
            }
            emit(std::move(t), rate);
        }
        // repairs
        for (std::size_t r = 0; r < r_; ++r) {
            const RuPlan& ru = plan_.rus[r];
            if (ru.kind == RuKind::None) continue;
            if (ru.kind == RuKind::Dedicated) {
                for (std::size_t g : plan_.ru_groups[r]) {
                    const std::size_t down = static_cast<std::size_t>(s[g]);
                    if (down == 0) continue;
                    State t = s;
                    --t[g];
                    emit(std::move(t), static_cast<double>(down) * plan_.groups[g].rrate);
                }
                continue;
            }
            if (ru.preemptive) {
                for (const auto& [g, count] : served_waiting(s, r, ru.crews)) {
                    State t = s;
                    --t[g];
                    emit(std::move(t), static_cast<double>(count) * plan_.groups[g].rrate);
                }
                continue;
            }
            const std::size_t tg = tracked_group(s, r);
            if (tg == SIZE_MAX) continue;
            {
                // crew 1 completes; promote the best waiting group
                State t = s;
                const auto next = served_waiting(s, r, 1);
                if (next.empty()) {
                    t[g_ + r] = 0;
                } else {
                    t[g_ + r] = static_cast<std::int16_t>(next.front().first + 1);
                    --t[next.front().first];
                }
                emit(std::move(t), plan_.groups[tg].rrate);
            }
            for (const auto& [g, count] : served_waiting(s, r, ru.crews - 1)) {
                State t = s;
                --t[g];
                emit(std::move(t), static_cast<double>(count) * plan_.groups[g].rrate);
            }
        }
    }

    [[nodiscard]] double service(const State& s) const {
        std::vector<std::size_t> up(model_.phases.size(), 0);
        for (std::size_t p = 0; p < model_.phases.size(); ++p) {
            up[p] = model_.phases[p].components.size();
        }
        for (std::size_t g = 0; g < g_; ++g) {
            up[plan_.groups[g].phase] -= down_of_group(s, g);
        }
        return phase_service_level(model_, up);
    }

    [[nodiscard]] double cost_rate(const State& s) const {
        double cost = 0.0;
        for (std::size_t g = 0; g < g_; ++g) {
            cost += static_cast<double>(down_of_group(s, g)) * plan_.groups[g].failed_cost_rate;
        }
        for (std::size_t r = 0; r < r_; ++r) {
            const RuPlan& ru = plan_.rus[r];
            if (ru.kind == RuKind::None) continue;
            std::size_t down = 0;
            for (std::size_t g : plan_.ru_groups[r]) down += down_of_group(s, g);
            const std::size_t crews =
                ru.kind == RuKind::Dedicated ? ru.components.size() : ru.crews;
            cost += static_cast<double>(crews - std::min(crews, down)) * ru.idle_cost_rate;
        }
        return cost;
    }

    [[nodiscard]] State disaster(const Disaster& d) const {
        ARCADE_ASSERT(d.failed_per_phase.size() == model_.phases.size(),
                      "disaster phase arity mismatch");
        State s = initial();
        for (std::size_t p = 0; p < model_.phases.size(); ++p) {
            std::size_t remaining = d.failed_per_phase[p];
            if (remaining > model_.phases[p].components.size()) {
                throw ModelError("disaster '" + d.name + "' fails more components than phase '" +
                                 model_.phases[p].name + "' has");
            }
            for (std::size_t g = 0; g < g_ && remaining > 0; ++g) {
                if (plan_.groups[g].phase != p) continue;
                const std::size_t take = std::min(remaining, plan_.groups[g].size);
                s[g] = static_cast<std::int16_t>(take);
                remaining -= take;
            }
            ARCADE_ASSERT(remaining == 0, "disaster allocation failed");
        }
        // promote tracked slots
        for (std::size_t r = 0; r < r_; ++r) {
            if (plan_.rus[r].kind != RuKind::Queue || plan_.rus[r].preemptive) continue;
            const auto next = served_waiting(s, r, 1);
            if (!next.empty()) {
                s[g_ + r] = static_cast<std::int16_t>(next.front().first + 1);
                --s[next.front().first];
            }
        }
        return s;
    }

private:
    const ArcadeModel& model_;
    const Plan& plan_;
    std::size_t g_;
    std::size_t r_;
};

/// Adapts an encoder (which works on int16 vectors) to the engine's int64
/// worker interface.  One adapter per worker thread: the conversion buffers
/// are worker-local, the encoder itself is shared immutable state.
template <typename Encoder>
class EncoderWorker {
public:
    explicit EncoderWorker(const Encoder& encoder, std::size_t fields)
        : encoder_(encoder), current_(fields) {}

    template <typename Emit>
    void operator()(std::span<const std::int64_t> state, Emit&& emit) {
        for (std::size_t i = 0; i < current_.size(); ++i) {
            current_[i] = static_cast<std::int16_t>(state[i]);
        }
        encoder_.successors(current_, [&](State&& target, double rate) {
            ARCADE_ASSERT(rate > 0.0, "non-positive rate emitted");
            emit(std::span<const std::int16_t>(target), rate);
        });
    }

private:
    const Encoder& encoder_;
    State current_;
};

/// Orbit structure of the individual encoding: every lumped group with two
/// or more members is a set of interchangeable components (same failure and
/// repair rates, same phase, same repair class), and permuting the members'
/// (status, rank) field pairs is a chain automorphism — ranks are unique
/// among waiting components of a repair class and the queue discipline
/// treats class members only by rank, so a swap relabels states without
/// changing any rate, service level or cost.  The lumped encoding's counter
/// fields carry no such permutation, so its orbit set is empty (trivial).
std::shared_ptr<const engine::StateSymmetry> make_state_symmetry(
    const ArcadeModel& model, const Plan& plan, Encoding encoding,
    SymmetryPolicy policy) {
    if (policy != SymmetryPolicy::Auto || encoding != Encoding::Individual) {
        return nullptr;
    }
    const std::size_t n = model.components.size();
    std::vector<engine::SymmetryOrbit> orbits;
    for (const auto& group : plan.groups) {
        if (group.members.size() < 2) continue;
        engine::SymmetryOrbit orbit;
        for (const std::size_t c : group.members) {
            orbit.instances.push_back({c, n + c});
        }
        orbits.push_back(std::move(orbit));
    }
    if (orbits.empty()) return nullptr;
    return std::make_shared<const engine::StateSymmetry>(std::move(orbits));
}

template <typename Encoder>
CompiledModel run_compile(const ArcadeModel& model, const Plan& plan, Encoder encoder,
                          Encoding encoding, const CompileOptions& options) {
    const engine::StateLayout layout(encoder.layout());
    const State initial16 = encoder.initial();
    const std::size_t fields = initial16.size();
    std::vector<std::int64_t> initial(initial16.begin(), initial16.end());

    const std::shared_ptr<const engine::StateSymmetry> symmetry =
        make_state_symmetry(model, plan, encoding, options.symmetry);

    engine::EngineOptions engine_options;
    engine_options.max_states = options.max_states;
    engine_options.threads = options.threads;
    engine_options.symmetry = symmetry.get();
    auto explored = engine::explore_bfs(
        layout, initial, [&] { return EncoderWorker<Encoder>(encoder, fields); },
        engine_options);
    engine::StateStore store = std::move(explored.store);
    const std::size_t n = store.size();

    // Orbit accounting: the full-chain state count is the sum of orbit
    // sizes over the explored representatives (exact — the automorphism
    // group fixes the initial state, so the full reachable set is the
    // disjoint union of these orbits).
    double full_states = static_cast<double>(n);
    double symmetry_seconds = 0.0;
    if (symmetry != nullptr && !symmetry->trivial()) {
        const auto t0 = std::chrono::steady_clock::now();
        full_states = 0.0;
        std::vector<std::int64_t> values(fields);
        for (std::size_t s = 0; s < n; ++s) {
            store.unpack(s, std::span<std::int64_t>(values));
            full_states += symmetry->orbit_size(values);
        }
        symmetry_seconds =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                .count();
    }

    linalg::CsrBuilder builder(n, n);
    for (const auto& t : explored.transitions) {
        if (t.source != t.target) builder.add(t.source, t.target, t.rate);
    }
    std::vector<double> init(n, 0.0);
    init[0] = 1.0;
    ctmc::Ctmc chain(builder.build(), std::move(init));

    std::vector<double> service(n);
    std::vector<double> cost(n);
    {
        State decoded(fields);
        for (std::size_t s = 0; s < n; ++s) {
            store.unpack(s, std::span<std::int16_t>(decoded));
            service[s] = encoder.service(decoded);
            cost[s] = encoder.cost_rate(decoded);
        }
    }

    chain.set_label("operational", [&] {
        std::vector<bool> bits(n);
        for (std::size_t s = 0; s < n; ++s) bits[s] = service[s] >= 1.0 - 1e-9;
        return bits;
    }());
    chain.set_label("down", [&] {
        std::vector<bool> bits(n);
        for (std::size_t s = 0; s < n; ++s) bits[s] = service[s] < 1.0 - 1e-9;
        return bits;
    }());
    chain.set_label("total_failure", [&] {
        std::vector<bool> bits(n);
        for (std::size_t s = 0; s < n; ++s) bits[s] = service[s] <= 1e-9;
        return bits;
    }());
    // One label per distinct positive service level (the paper's interval
    // bounds), with the exact bit vector service_at_least() computes — so
    // CSL formulas (watertree::properties) can name the paper's
    // survivability targets and reproduce the measure pipeline bit for bit.
    for (const double level : phase_service_levels(model)) {
        if (level <= 1e-9) continue;
        std::vector<bool> bits(n);
        for (std::size_t s = 0; s < n; ++s) bits[s] = service[s] >= level - 1e-9;
        chain.set_label(service_label(level), std::move(bits));
    }

    return CompiledModel(std::move(chain), std::move(service),
                         rewards::RewardStructure("cost", std::move(cost)), model,
                         std::move(store), encoding, options.reduction,
                         options.symmetry, symmetry, full_states, symmetry_seconds);
}

}  // namespace

CompiledModel::CompiledModel(ctmc::Ctmc chain, std::vector<double> service,
                             rewards::RewardStructure cost, ArcadeModel model,
                             engine::StateStore store, Encoding encoding,
                             ReductionPolicy reduction, SymmetryPolicy symmetry,
                             std::shared_ptr<const engine::StateSymmetry> state_symmetry,
                             double symmetry_full_states, double symmetry_seconds)
    : chain_(std::move(chain)),
      service_(std::move(service)),
      cost_(std::move(cost)),
      model_(std::move(model)),
      store_(std::move(store)),
      encoding_(encoding),
      reduction_(reduction),
      symmetry_(symmetry),
      state_symmetry_(std::move(state_symmetry)),
      symmetry_full_states_(symmetry_full_states),
      symmetry_seconds_(symmetry_seconds) {}

std::string service_label(double level) {
    char buf[40];
    std::snprintf(buf, sizeof buf, "service>=%.17g", level);
    return buf;
}

ReductionPolicy default_reduction_policy() {
    static const ReductionPolicy policy = [] {
        const char* env = std::getenv("ARCADE_REDUCTION");
        if (env == nullptr) return ReductionPolicy::Off;
        const std::string value(env);
        if (value == "auto" || value == "Auto" || value == "on" || value == "1") {
            return ReductionPolicy::Auto;
        }
        return ReductionPolicy::Off;
    }();
    return policy;
}

BatchPolicy default_batch_policy() {
    static const BatchPolicy policy = [] {
        const char* env = std::getenv("ARCADE_BATCH");
        if (env == nullptr) return BatchPolicy::Off;
        const std::string value(env);
        if (value == "auto" || value == "Auto" || value == "on" || value == "1") {
            return BatchPolicy::Auto;
        }
        return BatchPolicy::Off;
    }();
    return policy;
}

ctmc::LumpSignature CompiledModel::lump_signature() const {
    ctmc::LumpSignature signature;
    signature.labels = chain_.label_names();
    signature.values = {service_, cost_.state_rates()};
    return signature;
}

std::pair<std::shared_ptr<const ctmc::QuotientCtmc>, bool> CompiledModel::quotient()
    const {
    std::lock_guard<std::mutex> lock(*quotient_mutex_);
    if (quotient_ != nullptr) return {quotient_, false};
    quotient_ = std::make_shared<const ctmc::QuotientCtmc>(chain_, lump_signature());
    return {quotient_, true};
}

std::vector<bool> CompiledModel::service_at_least(double x) const {
    std::vector<bool> bits(service_.size());
    for (std::size_t s = 0; s < service_.size(); ++s) bits[s] = service_[s] >= x - 1e-9;
    return bits;
}

std::vector<bool> CompiledModel::operational_states() const { return service_at_least(1.0); }

std::vector<bool> CompiledModel::total_failure_states() const {
    std::vector<bool> bits(service_.size());
    for (std::size_t s = 0; s < service_.size(); ++s) bits[s] = service_[s] <= 1e-9;
    return bits;
}

std::size_t CompiledModel::lookup(const std::vector<std::int16_t>& encoded) const {
    std::vector<std::uint64_t> packed(store_.layout().words_per_state());
    if (symmetry_reduced()) {
        // Only orbit representatives are interned; canonicalise first.
        std::vector<std::int64_t> values(encoded.begin(), encoded.end());
        state_symmetry_->canonicalize(values);
        store_.layout().pack(std::span<const std::int64_t>(values), packed.data());
    } else {
        store_.layout().pack(std::span<const std::int16_t>(encoded), packed.data());
    }
    const std::size_t index = store_.find(packed.data());
    if (index == SIZE_MAX) {
        throw ModelError("encoded state is not reachable in the compiled model");
    }
    return index;
}

std::size_t CompiledModel::disaster_state(const Disaster& disaster) const {
    const Plan plan = make_plan(model_);
    if (encoding_ == Encoding::Individual) {
        IndividualEncoder enc(model_, plan);
        return lookup(enc.disaster(disaster));
    }
    LumpedEncoder enc(model_, plan);
    return lookup(enc.disaster(disaster));
}

std::vector<double> CompiledModel::disaster_distribution(const Disaster& disaster) const {
    return ctmc::Ctmc::point_distribution(state_count(), disaster_state(disaster));
}

std::vector<std::int16_t> CompiledModel::encoded_state(std::size_t index) const {
    ARCADE_ASSERT(index < store_.size(), "state index out of range");
    std::vector<std::int16_t> values(store_.layout().field_count());
    store_.unpack(index, std::span<std::int16_t>(values));
    return values;
}

namespace {

/// Lint stage of the compile pipeline.  Lints the reactive-modules
/// translation (the declarative view of the model); models outside that
/// translation's fragment (preemptive repair, >2 crews) skip the stage.
/// Returns {warnings+notes, errors}; throws under LintLevel::Error when the
/// report contains errors.
std::pair<int, int> run_lint_stage(const ArcadeModel& model, analysis::LintLevel level) {
    if (level == analysis::LintLevel::Off) return {0, 0};
    analysis::LintReport report;
    try {
        report = analysis::lint(to_reactive_modules(model));
    } catch (const ModelError&) {
        return {0, 0};  // no reactive-modules translation to lint
    }
    if (!report.clean()) {
        std::fputs(report.to_string().c_str(), stderr);
        if (level == analysis::LintLevel::Error && report.errors > 0) {
            throw ModelError("model lint failed (" + std::to_string(report.errors) +
                             " error(s)):\n" + report.to_string());
        }
    }
    return {report.warnings + report.notes, report.errors};
}

}  // namespace

CompiledModel compile(const ArcadeModel& model, const CompileOptions& options) {
    model.validate();
    const auto [lint_warnings, lint_errors] = run_lint_stage(model, options.lint);
    const Plan plan = make_plan(model);
    CompiledModel compiled =
        options.encoding == Encoding::Individual
            ? run_compile(model, plan, IndividualEncoder(model, plan), options.encoding,
                          options)
            : run_compile(model, plan, LumpedEncoder(model, plan), options.encoding,
                          options);
    compiled.set_lint_counts(lint_warnings, lint_errors);
    return compiled;
}

ArcadeModel without_repair(const ArcadeModel& model) {
    ArcadeModel copy = model;
    for (auto& ru : copy.repair_units) {
        ru.policy = RepairPolicy::None;
    }
    return copy;
}

}  // namespace arcade::core
