#include "arcade/xml_io.hpp"

#include <fstream>
#include <sstream>

#include "support/errors.hpp"
#include "support/strings.hpp"
#include "xml/xml.hpp"

namespace arcade::core {

ArcadeModel model_from_xml(const std::string& xml_text) {
    const xml::ElementPtr root = xml::parse_document(xml_text);
    if (root->name() != "arcade") {
        throw ParseError("Arcade-XML root element must be <arcade>, found <" + root->name() +
                         ">");
    }
    ArcadeModel model;
    model.name = root->attribute_or("name", "model");

    const auto components = root->first_child("components");
    if (!components) throw ParseError("<arcade> needs a <components> section");
    for (const auto& el : components->children_named("component")) {
        BasicComponent c;
        c.name = el->attribute("name");
        c.mttf = el->attribute_as_double("mttf");
        c.mttr = el->attribute_as_double("mttr");
        if (el->has_attribute("failedCostRate")) {
            c.failed_cost_rate = el->attribute_as_double("failedCostRate");
        }
        model.components.push_back(std::move(c));
    }

    if (const auto rus = root->first_child("repairUnits")) {
        for (const auto& el : rus->children_named("repairUnit")) {
            RepairUnit ru;
            ru.name = el->attribute_or("name", "ru" + std::to_string(model.repair_units.size() + 1));
            ru.policy = repair_policy_from_string(el->attribute("policy"));
            ru.crews = static_cast<std::size_t>(
                el->has_attribute("crews") ? el->attribute_as_int("crews") : 1);
            ru.preemptive = el->attribute_or("preemptive", "false") == "true";
            if (el->has_attribute("idleCostRate")) {
                ru.idle_cost_rate = el->attribute_as_double("idleCostRate");
            }
            for (const auto& serves : el->children_named("serves")) {
                ru.components.push_back(
                    model.component_index(serves->attribute("component")));
                if (ru.policy == RepairPolicy::Priority) {
                    ru.priorities.push_back(
                        static_cast<int>(serves->attribute_as_int("priority")));
                }
            }
            model.repair_units.push_back(std::move(ru));
        }
    }

    if (const auto spares = root->first_child("spareUnits")) {
        for (const auto& el : spares->children_named("spareUnit")) {
            SpareManagementUnit smu;
            smu.name = el->attribute_or("name", "smu");
            smu.required = static_cast<std::size_t>(el->attribute_as_int("required"));
            for (const auto& manages : el->children_named("manages")) {
                smu.components.push_back(
                    model.component_index(manages->attribute("component")));
            }
            model.spare_units.push_back(std::move(smu));
        }
    }

    const auto service = root->first_child("serviceModel");
    if (!service) throw ParseError("<arcade> needs a <serviceModel> section");
    for (const auto& el : service->children_named("phase")) {
        ServicePhase phase;
        phase.name = el->attribute("name");
        phase.spare_managed = el->attribute_or("spareManaged", "false") == "true";
        for (const auto& member : el->children_named("member")) {
            phase.components.push_back(model.component_index(member->attribute("component")));
        }
        phase.required = el->has_attribute("required")
                             ? static_cast<std::size_t>(el->attribute_as_int("required"))
                             : phase.components.size();
        model.phases.push_back(std::move(phase));
    }

    model.validate();
    return model;
}

std::string model_to_xml(const ArcadeModel& model) {
    model.validate();
    xml::Element root("arcade");
    root.set_attribute("name", model.name);

    auto components = root.add_child("components");
    for (const auto& c : model.components) {
        auto el = components->add_child("component");
        el->set_attribute("name", c.name);
        el->set_attribute("mttf", format_double(c.mttf));
        el->set_attribute("mttr", format_double(c.mttr));
        el->set_attribute("failedCostRate", format_double(c.failed_cost_rate));
    }

    auto rus = root.add_child("repairUnits");
    for (const auto& ru : model.repair_units) {
        auto el = rus->add_child("repairUnit");
        el->set_attribute("name", ru.name);
        el->set_attribute("policy", to_string(ru.policy));
        el->set_attribute("crews", std::to_string(ru.crews));
        if (ru.preemptive) el->set_attribute("preemptive", "true");
        el->set_attribute("idleCostRate", format_double(ru.idle_cost_rate));
        for (std::size_t i = 0; i < ru.components.size(); ++i) {
            auto serves = el->add_child("serves");
            serves->set_attribute("component", model.components[ru.components[i]].name);
            if (ru.policy == RepairPolicy::Priority) {
                serves->set_attribute("priority", std::to_string(ru.priorities[i]));
            }
        }
    }

    if (!model.spare_units.empty()) {
        auto spares = root.add_child("spareUnits");
        for (const auto& smu : model.spare_units) {
            auto el = spares->add_child("spareUnit");
            el->set_attribute("name", smu.name);
            el->set_attribute("required", std::to_string(smu.required));
            for (std::size_t idx : smu.components) {
                auto manages = el->add_child("manages");
                manages->set_attribute("component", model.components[idx].name);
            }
        }
    }

    auto service = root.add_child("serviceModel");
    for (const auto& phase : model.phases) {
        auto el = service->add_child("phase");
        el->set_attribute("name", phase.name);
        el->set_attribute("required", std::to_string(phase.required));
        if (phase.spare_managed) el->set_attribute("spareManaged", "true");
        for (std::size_t idx : phase.components) {
            auto member = el->add_child("member");
            member->set_attribute("component", model.components[idx].name);
        }
    }

    return xml::write_document(root);
}

ArcadeModel load_model(const std::string& path) {
    std::ifstream in(path);
    if (!in) throw InvalidArgument("cannot open '" + path + "' for reading");
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return model_from_xml(buffer.str());
}

void save_model(const ArcadeModel& model, const std::string& path) {
    std::ofstream out(path);
    if (!out) throw InvalidArgument("cannot open '" + path + "' for writing");
    out << model_to_xml(model);
}

}  // namespace arcade::core
