// The paper's dependability and performability measures, evaluated on a
// compiled Arcade model:
//
//   reliability      P_Reliability = 1 - P=?[true U<=t "down"]   (no repairs)
//   availability     S=?["operational"]
//   survivability    P=?[true U<=t service>=x] from a disaster state (GOOD)
//   costs            R{"cost"}=?[I=t] and R{"cost"}=?[C<=t] after a disaster
//
// Series variants share one transient evolver per curve, which is what the
// figure benchmarks rely on.  Every series function accepts a
// ctmc::TransientOptions whose workspace pool the engine's AnalysisSession
// provides — the session-flavoured overloads below wire that up and reuse
// the session's cached steady-state solution for the long-run measures.
#ifndef ARCADE_ARCADE_MEASURES_HPP
#define ARCADE_ARCADE_MEASURES_HPP

#include <span>
#include <vector>

#include "arcade/compiler.hpp"
#include "ctmc/transient.hpp"
#include "engine/session.hpp"

namespace arcade::core {

/// Long-run probability of full service (the paper's availability).
[[nodiscard]] double availability(const CompiledModel& model);

/// Session-cached availability: one steady-state solve per model per session.
[[nodiscard]] double availability(engine::AnalysisSession& session,
                                  const engine::AnalysisSession::CompiledPtr& model);

/// Availability of two independent lines combined:
/// A1 + A2 - A1*A2 (the system is up when either line is up).
[[nodiscard]] double combined_availability(double line1, double line2);

/// Reliability curve: probability that the system has *never* left full
/// service up to each time.  `model` must be compiled without repairs
/// (see without_repair); this is checked.
[[nodiscard]] std::vector<double> reliability_series(
    const CompiledModel& model, std::span<const double> times,
    const ctmc::TransientOptions& transient = {});

/// Survivability curve: P[reach service >= x within t | disaster].
[[nodiscard]] std::vector<double> survivability_series(
    const CompiledModel& model, const Disaster& disaster, double service_level,
    std::span<const double> times, const ctmc::TransientOptions& transient = {});

/// Single-point survivability.
[[nodiscard]] double survivability(const CompiledModel& model, const Disaster& disaster,
                                   double service_level, double time);

/// Expected instantaneous cost rate at each time after the disaster.
[[nodiscard]] std::vector<double> instantaneous_cost_series(
    const CompiledModel& model, const Disaster& disaster, std::span<const double> times,
    const ctmc::TransientOptions& transient = {});

/// Expected accumulated cost over [0, t] after the disaster.
[[nodiscard]] std::vector<double> accumulated_cost_series(
    const CompiledModel& model, const Disaster& disaster, std::span<const double> times,
    const ctmc::TransientOptions& transient = {});

/// Steady-state expected cost rate (normal-operation cost level).
[[nodiscard]] double steady_state_cost(const CompiledModel& model);

/// Session-cached long-run cost rate (shares the availability solve).
[[nodiscard]] double steady_state_cost(engine::AnalysisSession& session,
                                       const engine::AnalysisSession::CompiledPtr& model);

/// Transient options wired to a session's workspace pool — pass to any of
/// the series functions to reuse the session's uniformisation scratch.
[[nodiscard]] ctmc::TransientOptions session_transient(engine::AnalysisSession& session);

/// The shared evolution structure of a batch of fusible series cells: the
/// exact chain the per-cell path would evolve (until-transformed for
/// survivability, the raw or quotient chain for instantaneous cost) plus
/// the reduction applied at each grid point.  Built once per fused batch by
/// the sweep runner; the batch columns come from fused_initial() (one per
/// distinct disaster).  Because the chain construction, the (batched,
/// per-column bitwise-identical) evolution, and the reduction are the same
/// code the per-cell measure runs, every value a plan produces is byte-for-
/// byte the value survivability_series / instantaneous_cost_series returns.
/// The plan borrows the model's (or its quotient's) chain rather than
/// copying it, so it must not outlive the CompiledModel it was built from.
struct FusedSeriesPlan {
    /// Keeps the quotient alive while `chain` is in use (Auto reduction);
    /// nullptr under ReductionPolicy::Off.
    std::shared_ptr<const ctmc::QuotientCtmc> quotient;
    /// Owns the until-transformed chain when the plan builds one
    /// (survivability); the cost plans point `chain` at the model directly.
    std::shared_ptr<const ctmc::Ctmc> transformed;
    const ctmc::Ctmc* chain = nullptr;  ///< the chain every column evolves over
    std::vector<bool> mask;             ///< survivability target (empty for costs)
    std::vector<double> weights;        ///< cost rates (empty for survivability)

    /// The per-grid-point reduction: mass_in(dist, mask) for survivability,
    /// dot(dist, weights) for instantaneous cost.
    [[nodiscard]] double reduce(std::span<const double> dist) const;
};

/// Plan for P[true U<=t service>=level | disaster] cells (quotient-aware).
[[nodiscard]] FusedSeriesPlan survivability_fused_plan(const CompiledModel& model,
                                                       double service_level);

/// Plan for R{"cost"}[I=t] cells (quotient-aware).
[[nodiscard]] FusedSeriesPlan instantaneous_cost_fused_plan(const CompiledModel& model);

/// The initial distribution of a disaster cell, projected onto the
/// quotient when the model reduces — exactly the vector the per-cell
/// measure would evolve, i.e. one batch column.
[[nodiscard]] std::vector<double> fused_initial(const CompiledModel& model,
                                                const Disaster& disaster);

/// The distinct service levels of the model, ascending (0 and 1 included);
/// consecutive pairs delimit the paper's service intervals X1, X2, ...
[[nodiscard]] std::vector<double> service_levels(const ArcadeModel& model);

}  // namespace arcade::core

#endif  // ARCADE_ARCADE_MEASURES_HPP
