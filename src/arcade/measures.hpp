// The paper's dependability and performability measures, evaluated on a
// compiled Arcade model:
//
//   reliability      P_Reliability = 1 - P=?[true U<=t "down"]   (no repairs)
//   availability     S=?["operational"]
//   survivability    P=?[true U<=t service>=x] from a disaster state (GOOD)
//   costs            R{"cost"}=?[I=t] and R{"cost"}=?[C<=t] after a disaster
//
// Series variants share one transient evolver per curve, which is what the
// figure benchmarks rely on.  Every series function accepts a
// ctmc::TransientOptions whose workspace pool the engine's AnalysisSession
// provides — the session-flavoured overloads below wire that up and reuse
// the session's cached steady-state solution for the long-run measures.
#ifndef ARCADE_ARCADE_MEASURES_HPP
#define ARCADE_ARCADE_MEASURES_HPP

#include <span>
#include <vector>

#include "arcade/compiler.hpp"
#include "ctmc/transient.hpp"
#include "engine/session.hpp"

namespace arcade::core {

/// Long-run probability of full service (the paper's availability).
[[nodiscard]] double availability(const CompiledModel& model);

/// Session-cached availability: one steady-state solve per model per session.
[[nodiscard]] double availability(engine::AnalysisSession& session,
                                  const engine::AnalysisSession::CompiledPtr& model);

/// Availability of two independent lines combined:
/// A1 + A2 - A1*A2 (the system is up when either line is up).
[[nodiscard]] double combined_availability(double line1, double line2);

/// Reliability curve: probability that the system has *never* left full
/// service up to each time.  `model` must be compiled without repairs
/// (see without_repair); this is checked.
[[nodiscard]] std::vector<double> reliability_series(
    const CompiledModel& model, std::span<const double> times,
    const ctmc::TransientOptions& transient = {});

/// Survivability curve: P[reach service >= x within t | disaster].
[[nodiscard]] std::vector<double> survivability_series(
    const CompiledModel& model, const Disaster& disaster, double service_level,
    std::span<const double> times, const ctmc::TransientOptions& transient = {});

/// Single-point survivability.
[[nodiscard]] double survivability(const CompiledModel& model, const Disaster& disaster,
                                   double service_level, double time);

/// Expected instantaneous cost rate at each time after the disaster.
[[nodiscard]] std::vector<double> instantaneous_cost_series(
    const CompiledModel& model, const Disaster& disaster, std::span<const double> times,
    const ctmc::TransientOptions& transient = {});

/// Expected accumulated cost over [0, t] after the disaster.
[[nodiscard]] std::vector<double> accumulated_cost_series(
    const CompiledModel& model, const Disaster& disaster, std::span<const double> times,
    const ctmc::TransientOptions& transient = {});

/// Steady-state expected cost rate (normal-operation cost level).
[[nodiscard]] double steady_state_cost(const CompiledModel& model);

/// Session-cached long-run cost rate (shares the availability solve).
[[nodiscard]] double steady_state_cost(engine::AnalysisSession& session,
                                       const engine::AnalysisSession::CompiledPtr& model);

/// Transient options wired to a session's workspace pool — pass to any of
/// the series functions to reuse the session's uniformisation scratch.
[[nodiscard]] ctmc::TransientOptions session_transient(engine::AnalysisSession& session);

/// The distinct service levels of the model, ascending (0 and 1 included);
/// consecutive pairs delimit the paper's service intervals X1, X2, ...
[[nodiscard]] std::vector<double> service_levels(const ArcadeModel& model);

}  // namespace arcade::core

#endif  // ARCADE_ARCADE_MEASURES_HPP
