#include "arcade/types.hpp"

#include <algorithm>
#include <set>

#include "support/errors.hpp"

namespace arcade::core {

std::string to_string(RepairPolicy policy) {
    switch (policy) {
        case RepairPolicy::None: return "none";
        case RepairPolicy::Dedicated: return "dedicated";
        case RepairPolicy::FirstComeFirstServe: return "fcfs";
        case RepairPolicy::FastestRepairFirst: return "frf";
        case RepairPolicy::FastestFailureFirst: return "fff";
        case RepairPolicy::Priority: return "priority";
    }
    return "unknown";
}

RepairPolicy repair_policy_from_string(const std::string& text) {
    if (text == "none") return RepairPolicy::None;
    if (text == "dedicated" || text == "ded") return RepairPolicy::Dedicated;
    if (text == "fcfs") return RepairPolicy::FirstComeFirstServe;
    if (text == "frf" || text == "fastest-repair-first") return RepairPolicy::FastestRepairFirst;
    if (text == "fff" || text == "fastest-failure-first") return RepairPolicy::FastestFailureFirst;
    if (text == "priority") return RepairPolicy::Priority;
    throw InvalidArgument("unknown repair policy '" + text + "'");
}

void ArcadeModel::validate() const {
    if (components.empty()) throw ModelError("model '" + name + "' has no components");
    for (const auto& c : components) {
        if (!(c.mttf > 0.0) || !(c.mttr > 0.0)) {
            throw ModelError("component '" + c.name + "' needs positive MTTF and MTTR");
        }
    }
    std::set<std::string> names;
    for (const auto& c : components) {
        if (!names.insert(c.name).second) {
            throw ModelError("duplicate component name '" + c.name + "'");
        }
    }

    std::vector<bool> covered(components.size(), false);
    for (const auto& ru : repair_units) {
        if (ru.components.empty()) {
            throw ModelError("repair unit '" + ru.name + "' covers no components");
        }
        if (ru.policy != RepairPolicy::None && ru.crews == 0) {
            throw ModelError("repair unit '" + ru.name + "' needs at least one crew");
        }
        for (std::size_t idx : ru.components) {
            if (idx >= components.size()) {
                throw ModelError("repair unit '" + ru.name + "' references component #" +
                                 std::to_string(idx) + " which does not exist");
            }
            if (covered[idx]) {
                throw ModelError("component '" + components[idx].name +
                                 "' is covered by two repair units");
            }
            covered[idx] = true;
        }
        if (ru.policy == RepairPolicy::Priority &&
            ru.priorities.size() != ru.components.size()) {
            throw ModelError("repair unit '" + ru.name +
                             "' needs one priority per component");
        }
    }

    for (const auto& smu : spare_units) {
        if (smu.required == 0 || smu.required > smu.components.size()) {
            throw ModelError("spare unit '" + smu.name + "' has invalid required count");
        }
        for (std::size_t idx : smu.components) {
            if (idx >= components.size()) {
                throw ModelError("spare unit '" + smu.name + "' references missing component");
            }
        }
    }

    if (phases.empty()) throw ModelError("model '" + name + "' has no service phases");
    std::vector<bool> in_phase(components.size(), false);
    for (const auto& phase : phases) {
        if (phase.components.empty()) {
            throw ModelError("phase '" + phase.name + "' has no components");
        }
        if (phase.required == 0 || phase.required > phase.components.size()) {
            throw ModelError("phase '" + phase.name + "' has invalid required count");
        }
        for (std::size_t idx : phase.components) {
            if (idx >= components.size()) {
                throw ModelError("phase '" + phase.name + "' references missing component");
            }
            if (in_phase[idx]) {
                throw ModelError("component '" + components[idx].name +
                                 "' appears in two phases");
            }
            in_phase[idx] = true;
        }
    }
}

std::size_t ArcadeModel::component_index(const std::string& component_name) const {
    for (std::size_t i = 0; i < components.size(); ++i) {
        if (components[i].name == component_name) return i;
    }
    throw ModelError("unknown component '" + component_name + "'");
}

std::optional<std::size_t> ArcadeModel::repair_unit_of(std::size_t component) const {
    for (std::size_t r = 0; r < repair_units.size(); ++r) {
        const auto& cs = repair_units[r].components;
        if (std::find(cs.begin(), cs.end(), component) != cs.end()) return r;
    }
    return std::nullopt;
}

std::size_t ArcadeModel::total_crews() const {
    std::size_t total = 0;
    for (const auto& ru : repair_units) {
        if (ru.policy == RepairPolicy::None) continue;
        total += ru.policy == RepairPolicy::Dedicated ? ru.components.size() : ru.crews;
    }
    return total;
}

ModelBuilder::ModelBuilder(std::string name) { model_.name = std::move(name); }

std::vector<std::size_t> ModelBuilder::add_redundant_phase(const std::string& name,
                                                           std::size_t count, double mttf,
                                                           double mttr) {
    ARCADE_ASSERT(count > 0, "phase needs at least one component");
    std::vector<std::size_t> indices;
    for (std::size_t i = 0; i < count; ++i) {
        BasicComponent c;
        c.name = count == 1 ? name : name + std::to_string(i + 1);
        c.mttf = mttf;
        c.mttr = mttr;
        indices.push_back(model_.components.size());
        model_.components.push_back(std::move(c));
    }
    ServicePhase phase;
    phase.name = name;
    phase.components = indices;
    phase.required = count;
    phase.spare_managed = false;
    model_.phases.push_back(std::move(phase));
    return indices;
}

std::vector<std::size_t> ModelBuilder::add_spare_phase(const std::string& name,
                                                       std::size_t total, std::size_t required,
                                                       double mttf, double mttr) {
    ARCADE_ASSERT(required > 0 && required <= total, "invalid spare phase arity");
    std::vector<std::size_t> indices;
    for (std::size_t i = 0; i < total; ++i) {
        BasicComponent c;
        c.name = name + std::to_string(i + 1);
        c.mttf = mttf;
        c.mttr = mttr;
        indices.push_back(model_.components.size());
        model_.components.push_back(std::move(c));
    }
    SpareManagementUnit smu;
    smu.name = name + "_smu";
    smu.components = indices;
    smu.required = required;
    model_.spare_units.push_back(smu);

    ServicePhase phase;
    phase.name = name;
    phase.components = indices;
    phase.required = required;
    phase.spare_managed = true;
    model_.phases.push_back(std::move(phase));
    return indices;
}

ModelBuilder& ModelBuilder::with_repair(RepairPolicy policy, std::size_t crews,
                                        bool preemptive) {
    std::vector<bool> covered(model_.components.size(), false);
    for (const auto& ru : model_.repair_units) {
        for (std::size_t idx : ru.components) covered[idx] = true;
    }
    RepairUnit unit;
    unit.name = "ru" + std::to_string(model_.repair_units.size() + 1);
    unit.policy = policy;
    unit.crews = crews;
    unit.preemptive = preemptive;
    for (std::size_t i = 0; i < model_.components.size(); ++i) {
        if (!covered[i]) unit.components.push_back(i);
    }
    model_.repair_units.push_back(std::move(unit));
    return *this;
}

ModelBuilder& ModelBuilder::with_repair_unit(RepairUnit unit) {
    model_.repair_units.push_back(std::move(unit));
    return *this;
}

ModelBuilder& ModelBuilder::with_failed_cost_rate(double rate) {
    for (auto& c : model_.components) c.failed_cost_rate = rate;
    return *this;
}

ArcadeModel ModelBuilder::build() const {
    model_.validate();
    return model_;
}

}  // namespace arcade::core
